// Process-wide heap allocation counter for bench binaries.
//
// Including this header replaces the global allocation functions with
// malloc/free wrappers that bump an atomic counter, so benches can report
// *heap allocations per simulated round* — the metric the flat-arena
// mailbox work optimizes — without any external tooling. The replacements
// are ODR-owned by the including translation unit: include this from the
// bench's single .cpp only, never from two TUs of one binary and never
// from library code.
#pragma once

#include <atomic>
#include <cstdlib>
#include <new>

namespace benchalloc {

inline std::atomic<unsigned long long> g_heap_allocs{0};

/// Total operator-new calls in this process so far.
inline unsigned long long allocations() {
  return g_heap_allocs.load(std::memory_order_relaxed);
}

inline void* counted_alloc(std::size_t size) {
  g_heap_allocs.fetch_add(1, std::memory_order_relaxed);
  if (void* p = std::malloc(size == 0 ? 1 : size)) return p;
  throw std::bad_alloc();
}

}  // namespace benchalloc

void* operator new(std::size_t size) { return benchalloc::counted_alloc(size); }
void* operator new[](std::size_t size) {
  return benchalloc::counted_alloc(size);
}
void* operator new(std::size_t size, const std::nothrow_t&) noexcept {
  benchalloc::g_heap_allocs.fetch_add(1, std::memory_order_relaxed);
  return std::malloc(size == 0 ? 1 : size);
}
void* operator new[](std::size_t size, const std::nothrow_t&) noexcept {
  benchalloc::g_heap_allocs.fetch_add(1, std::memory_order_relaxed);
  return std::malloc(size == 0 ? 1 : size);
}
void operator delete(void* p) noexcept { std::free(p); }
void operator delete[](void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }
void operator delete[](void* p, std::size_t) noexcept { std::free(p); }
void operator delete(void* p, const std::nothrow_t&) noexcept { std::free(p); }
void operator delete[](void* p, const std::nothrow_t&) noexcept {
  std::free(p);
}
