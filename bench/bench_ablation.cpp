// E13 — ablations of the design choices docs/DESIGN.md calls out:
//   (a) helper-context reuse across embedded CLIQUE rounds (deviation 4)
//       vs. Algorithm 8 as literally written (rebuild every round);
//   (b) the γ multiplier (global messages per round);
//   (c) hash independence k vs. the receive load Lemma D.2 bounds;
//   (d) the skeleton ξ constant vs. APSP correctness — why the default is 2.
#include <cmath>
#include <iostream>

#include "core/apsp.hpp"
#include "graph/generators.hpp"
#include "graph/shortest_paths.hpp"
#include "proto/clique_embed.hpp"
#include "proto/skeleton.hpp"
#include "proto/token_routing.hpp"
#include "util/bench_io.hpp"
#include "util/table.hpp"

namespace {

using namespace hybrid;

routing_spec make_spec(const graph& g, u64 seed, double p,
                       std::vector<std::vector<routed_token>>& batch) {
  rng r(seed);
  routing_spec spec;
  for (u32 v = 0; v < g.num_nodes(); ++v) {
    if (r.next_bool(p)) spec.senders.push_back(v);
    if (r.next_bool(p)) spec.receivers.push_back(v);
  }
  if (spec.senders.empty()) spec.senders.push_back(0);
  if (spec.receivers.empty()) spec.receivers.push_back(1);
  spec.p_s = spec.p_r = p;
  spec.k_s = spec.receivers.size();
  spec.k_r = spec.senders.size();
  batch.assign(spec.senders.size(), {});
  for (u32 i = 0; i < spec.senders.size(); ++i)
    for (u32 j = 0; j < spec.receivers.size(); ++j)
      batch[i].push_back(
          {spec.senders[i], spec.receivers[j], 0, (u64{i} << 32) | j});
  return spec;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace hybrid;
  bench_recorder rec(argc, argv, "bench_ablation");

  print_section("E13a — helper-context reuse across embedded CLIQUE rounds");
  {
    const u32 n = 512;
    const graph g = gen::erdos_renyi_connected(n, 6.0, 1, 71);
    const double p = std::pow(static_cast<double>(n), -1.0 / 3.0);
    table t({"mode", "clique rounds", "HYBRID rounds total",
             "rounds/clique-round"});
    {
      hybrid_net net(g, model_config{}, 73);
      const skeleton_result sk = compute_skeleton(net, p);
      clique_embedding emb = build_clique_embedding(net, sk);
      const u64 before = net.round();
      charge_clique_rounds(net, emb, 4);
      const u64 used = net.round() - before;
      rec.add("context_reuse", {{"clique_rounds", 4}, {"hybrid_rounds", used}});
      t.add_row({"reuse context (ours)", "4",
                 table::integer(static_cast<long long>(used)),
                 table::num(used / 4.0, 1)});
    }
    {
      hybrid_net net(g, model_config{}, 73);
      const skeleton_result sk = compute_skeleton(net, p);
      // Algorithm 8 literal: Token-Routing (with helper computation) per
      // round.
      const u64 before = net.round();
      for (int round = 0; round < 4; ++round) {
        routing_spec spec;
        spec.senders = sk.nodes;
        spec.receivers = sk.nodes;
        spec.p_s = spec.p_r = sk.sample_prob;
        spec.k_s = spec.k_r = sk.nodes.size();
        std::vector<std::vector<routed_token>> batch(sk.nodes.size());
        for (u32 i = 0; i < sk.nodes.size(); ++i)
          for (u32 j = 0; j < sk.nodes.size(); ++j)
            batch[i].push_back({sk.nodes[i], sk.nodes[j],
                                static_cast<u32>(round), 1});
        run_token_routing(net, spec, batch);
      }
      const u64 used = net.round() - before;
      rec.add("context_rebuild", {{"clique_rounds", 4}, {"hybrid_rounds", used}});
      t.add_row({"rebuild per round (Alg. 8 literal)", "4",
                 table::integer(static_cast<long long>(used)),
                 table::num(used / 4.0, 1)});
    }
    t.print();
  }

  print_section("E13b — gamma multiplier vs token-routing rounds");
  {
    const graph g = gen::erdos_renyi_connected(512, 6.0, 1, 81);
    table t({"gamma_mult", "gamma", "rounds", "max recv/round"});
    for (double gm : {1.0, 2.0, 4.0, 8.0}) {
      model_config cfg;
      cfg.global_cap_mult = gm;
      std::vector<std::vector<routed_token>> batch;
      const routing_spec spec = make_spec(g, 83, 1.0 / 8, batch);
      hybrid_net net(g, cfg, 85);
      run_token_routing(net, spec, batch);
      const run_metrics m = net.snapshot();
      rec.add("gamma_sweep", {{"gamma_mult", gm},
                              {"gamma", net.global_cap()},
                              {"rounds", m.rounds},
                              {"max_recv", m.max_global_recv_per_round}});
      t.add_row({table::num(gm, 0), table::integer(net.global_cap()),
                 table::integer(static_cast<long long>(m.rounds)),
                 table::integer(m.max_global_recv_per_round)});
    }
    t.print();
  }

  print_section(
      "E13c — hash independence vs receive load (Lemma D.2 in action)");
  {
    const graph g = gen::erdos_renyi_connected(512, 6.0, 1, 91);
    table t({"independence k", "max recv/round", "gamma"});
    for (double hm : {0.25, 1.0, 3.0}) {
      model_config cfg;
      cfg.hash_independence_mult = hm;
      std::vector<std::vector<routed_token>> batch;
      const routing_spec spec = make_spec(g, 93, 1.0 / 8, batch);
      hybrid_net net(g, cfg, 95);
      run_token_routing(net, spec, batch);
      t.add_row({table::integer(net.hash_independence()),
                 table::integer(net.raw_metrics().max_global_recv_per_round),
                 table::integer(net.global_cap())});
    }
    t.print();
  }

  print_section("E13d — skeleton xi constant vs APSP correctness");
  {
    // A weighted cycle: hop distances up to n/2, so Lemma C.1 genuinely
    // gates correctness (on low-diameter graphs any h works).
    const graph g = gen::cycle(384, 12, 97);
    const auto ref = apsp_reference(g);
    table t({"xi", "h", "rounds", "wrong entries"});
    for (double xi : {0.1, 0.25, 0.5, 1.0, 2.0}) {
      model_config cfg;
      cfg.skeleton_xi = xi;
      const apsp_result res = hybrid_apsp_exact(g, cfg, 99);
      u64 wrong = 0;
      for (u32 u = 0; u < g.num_nodes(); ++u)
        for (u32 v = 0; v < g.num_nodes(); ++v)
          wrong += (res.dist[u][v] != ref[u][v]);
      rec.add("xi_sweep", {{"xi", xi},
                           {"h", res.h},
                           {"rounds", res.metrics.rounds},
                           {"wrong", wrong}});
      t.add_row({table::num(xi, 2), table::integer(res.h),
                 table::integer(static_cast<long long>(res.metrics.rounds)),
                 table::integer(static_cast<long long>(wrong))});
    }
    t.print();
    std::cout << "\n(small xi shrinks h below Lemma C.1's w.h.p. threshold "
                 "and correctness degrades — the default xi=2 is the "
                 "cheapest reliably-exact setting at these sizes)\n";
  }
  return rec.write() ? 0 : 1;
}
