// E2 — Theorem 1.1: exact APSP in Õ(√n) rounds, vs. the Õ(n^{2/3}) AHKSS20
// baseline it improves on, vs. the Ω̃(√n) lower bound (Theorem 1.5 with
// k = n).
//
// Reproduced shape: the new algorithm's fitted exponent ≈ 0.5, the
// baseline's ≈ 0.67, and the new algorithm wins at large n. Absolute round
// counts carry polylog factors and protocol constants; the fit deflates one
// log factor (see util/stats.hpp).
//
// E2e adds the distance-label oracle regime (core/dist_oracle.hpp): APSP
// whose result is queryable per-node labels instead of n×n matrices, which
// opens bounded-degree workloads up to n = 10⁵ end to end (with a
// peak-RSS budget asserted) plus a cheap skeleton diameter estimate.
// Usage: bench_apsp [n_large] [--json <path>]
#include "peak_rss.hpp"

#include <cmath>
#include <cstdlib>
#include <iostream>

#include "core/apsp.hpp"
#include "core/apsp_baseline.hpp"
#include "core/diameter.hpp"
#include "graph/diameter.hpp"
#include "graph/generators.hpp"
#include "graph/shortest_paths.hpp"
#include "util/assert.hpp"
#include "util/bench_io.hpp"
#include "util/stats.hpp"
#include "util/table.hpp"

namespace {

using namespace hybrid;

u64 count_wrong(const std::vector<std::vector<u64>>& got, const graph& g) {
  u64 wrong = 0;
  for (u32 u = 0; u < g.num_nodes(); ++u) {
    const auto ref = dijkstra(g, u);
    for (u32 v = 0; v < g.num_nodes(); ++v)
      if (got[u][v] != ref[v]) ++wrong;
  }
  return wrong;
}

struct oracle_run {
  apsp_result res;
  double wall_ms = 0;
  double peak_mb = 0;    ///< this run's own peak (water mark reset per run)
  bool peak_valid = false;  ///< reset took; otherwise peak_mb is stale
};

/// Label-only APSP with the skeleton hop budget pinned to `target_h`
/// (skeleton_xi back-solved from h = ⌈ξ·√n·ln n⌉): the practical
/// sparse-graph parameterization — h of a few hops keeps the balls, and
/// with them the labels, small (Feldmann et al. 2020's regime; the paper's
/// Õ(√n) h is a w.h.p. worst-case budget, not a memory-friendly one).
/// Token routing runs as the charged stand-in (DESIGN.md deviation 9): at
/// µ ≈ √n ≫ graph diameter the exact helper-cluster simulation is Θ(n²)
/// memory, so its budgets are charged in closed form instead.
/// Optional two-level knobs: `p` overrides the level-1 sampling probability
/// (0 keeps the 1/√n default), and `p2`/`h1` configure the super-skeleton
/// when `two_level` is set (0 keeps the pipeline defaults).
oracle_run run_oracle(const graph& g, u32 target_h, u64 seed, bool routes,
                      double p = 0.0, bool two_level = false, double p2 = 0.0,
                      u32 h1 = 0) {
  oracle_run out;
  out.peak_valid = benchrss::reset_peak_rss();
  const double n = static_cast<double>(g.num_nodes());
  model_config cfg;
  // Back-solve h = ⌈ξ·(1/p)·ln n⌉ = target_h at the p actually in force.
  const double p_eff = p > 0.0 ? p : 1.0 / std::sqrt(n);
  cfg.skeleton_xi = (static_cast<double>(target_h) - 0.25) * p_eff /
                    std::log(n);
  cfg.skeleton_p_override = p;
  cfg.super_p_override = p2;
  cfg.super_h_override = h1;
  cfg.charged_token_routing = true;
  sim_options o;
  o.storage = result_storage::kLabels;
  o.hierarchy = two_level ? oracle_hierarchy::kTwoLevel
                          : oracle_hierarchy::kSingleLevel;
  out.wall_ms =
      timed_ms([&] { out.res = hybrid_apsp_exact(g, cfg, seed, routes, o); });
  // A failed water-mark reset would make this read whatever ran before;
  // keep the field absent rather than wrong.
  out.peak_mb = out.peak_valid ? benchrss::peak_rss_mb() : 0.0;
  return out;
}

/// Sampled accuracy vs centralized Dijkstra: `finite` counts pairs the
/// oracle answers at all, `exact` the answered pairs matching ground truth.
/// At bench-scale h the oracle is exact inside each ball and an upper
/// bound beyond it (the skeleton legs add slack when h ≪ the Õ(√n)
/// w.h.p. budget) — honest partial precision, never an underestimate.
struct sampled_accuracy {
  u64 sampled = 0;
  u64 finite = 0;
  u64 exact = 0;
};

sampled_accuracy sample_rows(const graph& g, const dist_labels& lab,
                             u32 rows, u64 seed) {
  sampled_accuracy acc;
  rng r(seed);
  std::vector<u64> row;
  for (u32 i = 0; i < rows; ++i) {
    const u32 s = static_cast<u32>(r.next_below(g.num_nodes()));
    lab.row_into(s, row);
    const std::vector<u64> ref = dijkstra(g, s);
    for (u32 v = 0; v < g.num_nodes(); ++v) {
      ++acc.sampled;
      if (row[v] < kInfDist) ++acc.finite;
      if (row[v] == ref[v]) ++acc.exact;
    }
  }
  return acc;
}

/// ns/query over uniformly sampled pairs (checksummed so the loop is not
/// optimized away); also returns queries/sec via out-params for the JSON.
double query_ns(const dist_labels& lab, u32 queries, u64 seed,
                double* per_sec) {
  rng r(seed);
  std::vector<std::pair<u32, u32>> pairs(queries);
  for (auto& [u, v] : pairs) {
    u = static_cast<u32>(r.next_below(lab.n));
    v = static_cast<u32>(r.next_below(lab.n));
  }
  u64 sink = 0;
  const double ms = timed_ms([&] {
    for (const auto& [u, v] : pairs) sink += lab.query(u, v) & 0xffff;
  });
  volatile u64 keep = sink;  // the queries must not be optimized away
  (void)keep;
  *per_sec = queries / (ms / 1000.0);
  return ms * 1e6 / queries;
}

}  // namespace

int main(int argc, char** argv) {
  bench_recorder rec(argc, argv, "bench_apsp");
  u32 n_large = 100000;
  for (int i = 1; i < argc && argv[i][0] != '-'; ++i)
    n_large = static_cast<u32>(std::atoi(argv[i]));
  print_section(
      "E2 / Theorem 1.1 — exact APSP: this paper (sqrt(n)) vs AHKSS20 "
      "baseline (n^{2/3})");
  std::cout << "graphs: weighted Erdős–Rényi (avg deg 6, W=16); "
               "'wrong' counts mismatches vs centralized Dijkstra.\n";

  table t({"n", "rounds(Thm1.1)", "wrong", "|V_S|", "rounds(AHKSS20)",
           "wrong_b", "|V_S|_b", "labels_b", "speedup"});
  std::vector<double> ns, new_rounds, base_rounds;
  for (u32 n : {128, 256, 512, 1024, 2048}) {
    const graph g = gen::erdos_renyi_connected(n, 6.0, 16, 1000 + n);
    apsp_result a;
    apsp_baseline_result b;
    const double ms_a =
        timed_ms([&] { a = hybrid_apsp_exact(g, model_config{}, 7 + n); });
    const double ms_b =
        timed_ms([&] { b = baseline_apsp_ahkss(g, model_config{}, 9 + n); });
    rec.add("thm11_scaling", {{"n", n},
                              {"rounds", a.metrics.rounds},
                              {"messages", a.metrics.global_messages},
                              {"wall_ms", ms_a}});
    rec.add("ahkss_baseline", {{"n", n},
                               {"rounds", b.metrics.rounds},
                               {"messages", b.metrics.global_messages},
                               {"wall_ms", ms_b}});
    ns.push_back(n);
    new_rounds.push_back(static_cast<double>(a.metrics.rounds));
    base_rounds.push_back(static_cast<double>(b.metrics.rounds));
    t.add_row({table::integer(n),
               table::integer(static_cast<long long>(a.metrics.rounds)),
               table::integer(static_cast<long long>(count_wrong(a.dist, g))),
               table::integer(a.skeleton_size),
               table::integer(static_cast<long long>(b.metrics.rounds)),
               table::integer(static_cast<long long>(count_wrong(b.dist, g))),
               table::integer(b.skeleton_size),
               table::integer(static_cast<long long>(b.labels_broadcast)),
               table::num(static_cast<double>(b.metrics.rounds) /
                              static_cast<double>(a.metrics.rounds),
                          2)});
  }
  t.print();

  const linear_fit fn = loglog_exponent(ns, new_rounds);
  const linear_fit fb = loglog_exponent(ns, base_rounds);
  std::cout << "\nraw fitted exponents (polylog factors still inside):\n"
            << "  Theorem 1.1 : n^" << table::num(fn.slope, 3)
            << "  (claim 0.5 — also the Omega~(sqrt n) lower bound)  r2="
            << table::num(fn.r2, 3) << "\n  AHKSS20     : n^"
            << table::num(fb.slope, 3)
            << "  (claim 0.667)  r2=" << table::num(fb.r2, 3)
            << "\nthe crossover in the speedup column (baseline wins small "
               "n, Theorem 1.1 wins from n~1024 on) is the paper's "
               "improvement.\n";

  print_section("E2b — APSP phase breakdown at n=1024 (Theorem 1.1)");
  {
    const graph g = gen::erdos_renyi_connected(1024, 6.0, 16, 2024);
    const apsp_result a = hybrid_apsp_exact(g, model_config{}, 5);
    table t2({"phase", "rounds", "global msgs"});
    for (const auto& ph : a.metrics.phases)
      t2.add_row({ph.name, table::integer(static_cast<long long>(ph.rounds)),
                  table::integer(static_cast<long long>(ph.global_messages))});
    t2.print();
    std::cout << "max global receive load/round: "
              << a.metrics.max_global_recv_per_round << " (gamma = "
              << 4 * id_bits(1024) << "; Lemma D.2 predicts O(log n))\n";
  }

  print_section("E2c — exactness holds on structured graphs (n=576)");
  {
    table t3({"family", "rounds", "wrong", "|V_S|"});
    const graph grid = gen::grid(24, 24, 16, 3);
    const apsp_result ag = hybrid_apsp_exact(grid, model_config{}, 11);
    t3.add_row({"grid 24x24",
                table::integer(static_cast<long long>(ag.metrics.rounds)),
                table::integer(static_cast<long long>(count_wrong(ag.dist, grid))),
                table::integer(ag.skeleton_size)});
    const graph tor = gen::random_geometric(576, 7.0, 16, 5);
    const apsp_result at = hybrid_apsp_exact(tor, model_config{}, 13);
    t3.add_row({"geometric",
                table::integer(static_cast<long long>(at.metrics.rounds)),
                table::integer(static_cast<long long>(count_wrong(at.dist, tor))),
                table::integer(at.skeleton_size)});
    t3.print();
  }

  print_section("E2d — why hybrid: LOCAL-only needs Theta(D) rounds, "
                "NCC-only needs Omega~(n) (paper Section 1)");
  std::cout << "large-diameter local graphs (paths): LOCAL flooding costs "
               "D rounds, the NCC global mode alone needs ~n/log n rounds "
               "to move Omega(n) bits per node; HYBRID APSP beats both.\n";
  {
    table t4({"n", "D", "LOCAL-only rounds (=D)", "NCC-only LB (n/log n)",
              "HYBRID rounds (Thm 1.1)", "wrong"});
    std::vector<double> pn, pr;
    for (u32 n : {1024u, 2048u}) {
      const graph g = gen::path(n, 1, 21 + n);
      const apsp_result a = hybrid_apsp_exact(g, model_config{}, 31 + n);
      pn.push_back(n);
      pr.push_back(static_cast<double>(a.metrics.rounds));
      t4.add_row(
          {table::integer(n), table::integer(n - 1), table::integer(n - 1),
           table::integer(static_cast<long long>(n / id_bits(n))),
           table::integer(static_cast<long long>(a.metrics.rounds)),
           table::integer(static_cast<long long>(count_wrong(a.dist, g)))});
    }
    t4.print();
    // Extrapolate the measured power law to the LOCAL = Θ(n) crossover.
    const linear_fit pf = loglog_exponent(pn, pr);
    double cross = pn.back();
    while (std::exp(pf.intercept) * std::pow(cross, pf.slope) > cross - 1 &&
           cross < 1e9)
      cross *= 1.1;
    std::cout << "\nHYBRID grows as n^" << table::num(pf.slope, 2)
              << " on paths vs LOCAL's n^1; measured-curve crossover at "
                 "n ~ "
              << table::num(cross, 0)
              << " (past feasible simulation; the exponent gap is the "
                 "paper's point — and NCC-only can never do APSP in o(n))\n";
  }

  print_section(
      "E2e — distance-label oracle: APSP + diameter estimate without the "
      "n^2 matrices (core/dist_oracle.hpp)");
  // Small-instance differential: label-only storage produces labels whose
  // materialization is bit-identical (distances, next hops, metrics) to the
  // dense-storage run — the same guard the oracle test suite locks in.
  {
    const graph g = gen::erdos_renyi_connected(2048, 4.0, 8, 77);
    sim_options dense_o;
    dense_o.storage = result_storage::kDense;
    sim_options label_o;
    label_o.storage = result_storage::kLabels;
    apsp_result dense;
    apsp_result label;
    const double ms_dense = timed_ms(
        [&] { dense = hybrid_apsp_exact(g, model_config{}, 41, true, dense_o); });
    const double ms_label = timed_ms(
        [&] { label = hybrid_apsp_exact(g, model_config{}, 41, true, label_o); });
    round_executor ex;
    const auto dist = label.labels.materialize(ex);
    HYB_INVARIANT(dist == dense.dist,
                  "label materialization diverged from the dense storage");
    HYB_INVARIANT(label.labels.materialize_next_hops(dist, ex) == dense.next_hop,
                  "label next hops diverged from the dense storage");
    HYB_INVARIANT(label.metrics.rounds == dense.metrics.rounds &&
                      label.metrics.global_messages == dense.metrics.global_messages,
                  "storage mode changed charged rounds/messages");
    std::cout << "differential n=2048: label materialization bit-identical "
                 "to dense storage (dense "
              << table::num(ms_dense, 0) << " ms, labels "
              << table::num(ms_label, 0) << " ms)\n\n";
    rec.add("oracle_differential", {{"n", 2048},
                                    {"rounds", dense.metrics.rounds},
                                    {"messages", dense.metrics.global_messages},
                                    {"wall_ms", ms_dense},
                                    {"label_wall_ms", ms_label}});
  }

  // Label-mode scenarios on bounded-degree graphs (deg <= 3, unweighted):
  // n = 8192 with h = 8 (full gateway coverage — the exact single-level
  // regime) and the n_large = 10^5 scale run through the two-level
  // hierarchy (dense p₁ = 0.08 skeleton for coverage at h = 5 — the short
  // ball radius is what keeps the ball CSR and the exploration maps small —
  // super-pair table for memory) under a 2 GB peak-RSS budget.
  // 'finite'/'exact' are sampled-row counts vs Dijkstra; covered/finite
  // are gated.
  table t5({"scenario", "n", "h", "rounds", "|labels|", "covered", "finite",
            "exact", "D_est", "D_exact", "D_true", "ns/query", "wall ms",
            "peak MB"});
  {
    const u32 n_mid = 8192;
    const graph g = gen::bounded_degree(n_mid, 3, 1, 42);
    oracle_run run = run_oracle(g, 8, 7, /*routes=*/true);
    const dist_labels& lab = run.res.labels;
    const label_diameter_estimate est = diameter_estimate_from_labels(lab);
    const sampled_accuracy acc = sample_rows(g, lab, 16, 5);
    double qps = 0;
    const double ns = query_ns(lab, 200000, 9, &qps);
    double nhps = 0;
    rng r(11);
    u64 nh_sink = 0;
    const double nh_ms = timed_ms([&] {
      for (u32 q = 0; q < 20000; ++q) {
        const u32 u = static_cast<u32>(r.next_below(n_mid));
        const u32 v = static_cast<u32>(r.next_below(n_mid));
        nh_sink += lab.next_hop(u, v);
      }
    });
    volatile u64 keep = nh_sink;
    (void)keep;
    nhps = 20000 / (nh_ms / 1000.0);
    // Skip pairs the h = 8 skeleton cannot answer (a handful when the
    // skeleton graph is not fully connected at this h) — the finite/exact
    // columns quantify them.
    const u64 d_exact = labels_exact_diameter(lab, /*require_connected=*/false);
    const u64 d_true = weighted_diameter(g);
    t5.add_row({"label_oracle", table::integer(n_mid), table::integer(lab.h),
                table::integer(static_cast<long long>(run.res.metrics.rounds)),
                table::integer(static_cast<long long>(lab.label_entries())),
                table::integer(est.covered),
                table::integer(static_cast<long long>(acc.finite)),
                table::integer(static_cast<long long>(acc.exact)),
                table::integer(static_cast<long long>(est.estimate)),
                table::integer(static_cast<long long>(d_exact)),
                table::integer(static_cast<long long>(d_true)),
                table::num(ns, 0), table::num(run.wall_ms, 0),
                run.peak_valid ? table::num(run.peak_mb, 0) : "-"});
    std::vector<bench_field> fields = {
        {"n", n_mid},
        {"h", lab.h},
        {"rounds", run.res.metrics.rounds},
        {"messages", run.res.metrics.global_messages},
        {"label_entries", lab.label_entries()},
        {"covered", est.covered},
        {"sampled", acc.sampled},
        {"finite", acc.finite},
        {"exact", acc.exact},
        {"diam_estimate", est.estimate},
        {"diam_exact", d_exact},
        {"diam_true", d_true},
        {"wall_ms", run.wall_ms},
        {"queries_per_sec", qps},
        {"next_hops_per_sec", nhps}};
    if (run.peak_valid) fields.push_back({"peak_mem_mb", run.peak_mb});
    rec.add("label_oracle", std::move(fields));
  }
  if (n_large > 0) {
    const graph g = gen::bounded_degree(n_large, 3, 1, 42);
    // Two-level hierarchy: a denser level-1 skeleton (p₁ = 0.08, so h = 5
    // covers essentially every node — p₁·|ball_5| ≈ 7.5 gateways each)
    // whose n_s × n table would be far too large, with the quadratic table
    // pushed down to a p₂ = 0.05 super-skeleton (n_s2 ≈ 400) — queries
    // compose through both gateway layers (ARCHITECTURE.md, "two-level
    // hierarchy").
    oracle_run run = run_oracle(g, 5, 13, /*routes=*/false, /*p=*/0.08,
                                /*two_level=*/true, /*p2=*/0.05, /*h1=*/3);
    const dist_labels& lab = run.res.labels;
    const label_diameter_estimate est = diameter_estimate_from_labels(lab);
    const sampled_accuracy acc = sample_rows(g, lab, 8, 5);
    double qps = 0;
    const double ns = query_ns(lab, 200000, 9, &qps);
    t5.add_row({"label_large", table::integer(n_large), table::integer(lab.h),
                table::integer(static_cast<long long>(run.res.metrics.rounds)),
                table::integer(static_cast<long long>(lab.label_entries())),
                table::integer(est.covered),
                table::integer(static_cast<long long>(acc.finite)),
                table::integer(static_cast<long long>(acc.exact)),
                table::integer(static_cast<long long>(est.estimate)), "-", "-",
                table::num(ns, 0), table::num(run.wall_ms, 0),
                run.peak_valid ? table::num(run.peak_mb, 0) : "-"});
    std::vector<bench_field> fields = {
        {"n", n_large},
        {"h", lab.h},
        {"n_s", lab.n_s},
        {"n_s2", lab.n_s2},
        {"rounds", run.res.metrics.rounds},
        {"messages", run.res.metrics.global_messages},
        {"label_entries", lab.label_entries()},
        {"covered", est.covered},
        {"sampled", acc.sampled},
        {"finite", acc.finite},
        {"exact", acc.exact},
        {"diam_estimate", est.estimate},
        {"wall_ms", run.wall_ms},
        {"queries_per_sec", qps}};
    if (run.peak_valid) fields.push_back({"peak_mem_mb", run.peak_mb});
    rec.add("label_large", std::move(fields));
    // The acceptance bars at n = 10^5: sampled rows answer (near-)all pairs
    // finitely, the skeleton reaches (near-)all nodes, and the whole APSP +
    // diameter-estimate pipeline stays under 2 GB peak RSS (vs ~80 GB for
    // the dense matrices alone). covered/finite are deterministic and gated
    // in compare_bench_json.py.
    HYB_INVARIANT(acc.finite * 100 >= acc.sampled * 99,
                  "two-level oracle answered < 99% of sampled pairs");
    HYB_INVARIANT(u64{est.covered} * 100 >= u64{n_large} * 99,
                  "skeleton gateways cover < 99% of nodes");
    if (run.peak_valid)
      HYB_INVARIANT(run.peak_mb < 2048.0,
                    "label-mode APSP exceeded the 2 GB peak-RSS budget");
  }
  t5.print();
  std::cout << "\nthe dense n^2 matrices at n = " << n_large << " would need ~"
            << u64{n_large} * n_large * 8 / 1000000000
            << " GB (dist) before next hops; the oracle's labels answer "
               "query/next_hop directly.\n";

  return rec.write() ? 0 : 1;
}
