// E2 — Theorem 1.1: exact APSP in Õ(√n) rounds, vs. the Õ(n^{2/3}) AHKSS20
// baseline it improves on, vs. the Ω̃(√n) lower bound (Theorem 1.5 with
// k = n).
//
// Reproduced shape: the new algorithm's fitted exponent ≈ 0.5, the
// baseline's ≈ 0.67, and the new algorithm wins at large n. Absolute round
// counts carry polylog factors and protocol constants; the fit deflates one
// log factor (see util/stats.hpp).
#include <cmath>
#include <iostream>

#include "core/apsp.hpp"
#include "core/apsp_baseline.hpp"
#include "graph/generators.hpp"
#include "graph/shortest_paths.hpp"
#include "util/bench_io.hpp"
#include "util/stats.hpp"
#include "util/table.hpp"

namespace {

using namespace hybrid;

u64 count_wrong(const std::vector<std::vector<u64>>& got, const graph& g) {
  u64 wrong = 0;
  for (u32 u = 0; u < g.num_nodes(); ++u) {
    const auto ref = dijkstra(g, u);
    for (u32 v = 0; v < g.num_nodes(); ++v)
      if (got[u][v] != ref[v]) ++wrong;
  }
  return wrong;
}

}  // namespace

int main(int argc, char** argv) {
  bench_recorder rec(argc, argv, "bench_apsp");
  print_section(
      "E2 / Theorem 1.1 — exact APSP: this paper (sqrt(n)) vs AHKSS20 "
      "baseline (n^{2/3})");
  std::cout << "graphs: weighted Erdős–Rényi (avg deg 6, W=16); "
               "'wrong' counts mismatches vs centralized Dijkstra.\n";

  table t({"n", "rounds(Thm1.1)", "wrong", "|V_S|", "rounds(AHKSS20)",
           "wrong_b", "|V_S|_b", "labels_b", "speedup"});
  std::vector<double> ns, new_rounds, base_rounds;
  for (u32 n : {128, 256, 512, 1024, 2048}) {
    const graph g = gen::erdos_renyi_connected(n, 6.0, 16, 1000 + n);
    apsp_result a;
    apsp_baseline_result b;
    const double ms_a =
        timed_ms([&] { a = hybrid_apsp_exact(g, model_config{}, 7 + n); });
    const double ms_b =
        timed_ms([&] { b = baseline_apsp_ahkss(g, model_config{}, 9 + n); });
    rec.add("thm11_scaling", {{"n", n},
                              {"rounds", a.metrics.rounds},
                              {"messages", a.metrics.global_messages},
                              {"wall_ms", ms_a}});
    rec.add("ahkss_baseline", {{"n", n},
                               {"rounds", b.metrics.rounds},
                               {"messages", b.metrics.global_messages},
                               {"wall_ms", ms_b}});
    ns.push_back(n);
    new_rounds.push_back(static_cast<double>(a.metrics.rounds));
    base_rounds.push_back(static_cast<double>(b.metrics.rounds));
    t.add_row({table::integer(n),
               table::integer(static_cast<long long>(a.metrics.rounds)),
               table::integer(static_cast<long long>(count_wrong(a.dist, g))),
               table::integer(a.skeleton_size),
               table::integer(static_cast<long long>(b.metrics.rounds)),
               table::integer(static_cast<long long>(count_wrong(b.dist, g))),
               table::integer(b.skeleton_size),
               table::integer(static_cast<long long>(b.labels_broadcast)),
               table::num(static_cast<double>(b.metrics.rounds) /
                              static_cast<double>(a.metrics.rounds),
                          2)});
  }
  t.print();

  const linear_fit fn = loglog_exponent(ns, new_rounds);
  const linear_fit fb = loglog_exponent(ns, base_rounds);
  std::cout << "\nraw fitted exponents (polylog factors still inside):\n"
            << "  Theorem 1.1 : n^" << table::num(fn.slope, 3)
            << "  (claim 0.5 — also the Omega~(sqrt n) lower bound)  r2="
            << table::num(fn.r2, 3) << "\n  AHKSS20     : n^"
            << table::num(fb.slope, 3)
            << "  (claim 0.667)  r2=" << table::num(fb.r2, 3)
            << "\nthe crossover in the speedup column (baseline wins small "
               "n, Theorem 1.1 wins from n~1024 on) is the paper's "
               "improvement.\n";

  print_section("E2b — APSP phase breakdown at n=1024 (Theorem 1.1)");
  {
    const graph g = gen::erdos_renyi_connected(1024, 6.0, 16, 2024);
    const apsp_result a = hybrid_apsp_exact(g, model_config{}, 5);
    table t2({"phase", "rounds", "global msgs"});
    for (const auto& ph : a.metrics.phases)
      t2.add_row({ph.name, table::integer(static_cast<long long>(ph.rounds)),
                  table::integer(static_cast<long long>(ph.global_messages))});
    t2.print();
    std::cout << "max global receive load/round: "
              << a.metrics.max_global_recv_per_round << " (gamma = "
              << 4 * id_bits(1024) << "; Lemma D.2 predicts O(log n))\n";
  }

  print_section("E2c — exactness holds on structured graphs (n=576)");
  {
    table t3({"family", "rounds", "wrong", "|V_S|"});
    const graph grid = gen::grid(24, 24, 16, 3);
    const apsp_result ag = hybrid_apsp_exact(grid, model_config{}, 11);
    t3.add_row({"grid 24x24",
                table::integer(static_cast<long long>(ag.metrics.rounds)),
                table::integer(static_cast<long long>(count_wrong(ag.dist, grid))),
                table::integer(ag.skeleton_size)});
    const graph tor = gen::random_geometric(576, 7.0, 16, 5);
    const apsp_result at = hybrid_apsp_exact(tor, model_config{}, 13);
    t3.add_row({"geometric",
                table::integer(static_cast<long long>(at.metrics.rounds)),
                table::integer(static_cast<long long>(count_wrong(at.dist, tor))),
                table::integer(at.skeleton_size)});
    t3.print();
  }

  print_section("E2d — why hybrid: LOCAL-only needs Theta(D) rounds, "
                "NCC-only needs Omega~(n) (paper Section 1)");
  std::cout << "large-diameter local graphs (paths): LOCAL flooding costs "
               "D rounds, the NCC global mode alone needs ~n/log n rounds "
               "to move Omega(n) bits per node; HYBRID APSP beats both.\n";
  {
    table t4({"n", "D", "LOCAL-only rounds (=D)", "NCC-only LB (n/log n)",
              "HYBRID rounds (Thm 1.1)", "wrong"});
    std::vector<double> pn, pr;
    for (u32 n : {1024u, 2048u}) {
      const graph g = gen::path(n, 1, 21 + n);
      const apsp_result a = hybrid_apsp_exact(g, model_config{}, 31 + n);
      pn.push_back(n);
      pr.push_back(static_cast<double>(a.metrics.rounds));
      t4.add_row(
          {table::integer(n), table::integer(n - 1), table::integer(n - 1),
           table::integer(static_cast<long long>(n / id_bits(n))),
           table::integer(static_cast<long long>(a.metrics.rounds)),
           table::integer(static_cast<long long>(count_wrong(a.dist, g)))});
    }
    t4.print();
    // Extrapolate the measured power law to the LOCAL = Θ(n) crossover.
    const linear_fit pf = loglog_exponent(pn, pr);
    double cross = pn.back();
    while (std::exp(pf.intercept) * std::pow(cross, pf.slope) > cross - 1 &&
           cross < 1e9)
      cross *= 1.1;
    std::cout << "\nHYBRID grows as n^" << table::num(pf.slope, 2)
              << " on paths vs LOCAL's n^1; measured-curve crossover at "
                 "n ~ "
              << table::num(cross, 0)
              << " (past feasible simulation; the exponent gap is the "
                 "paper's point — and NCC-only can never do APSP in o(n))\n";
  }
  return rec.write() ? 0 : 1;
}
