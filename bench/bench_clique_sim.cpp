// E3 — Corollary 4.1: one CONGESTED CLIQUE round on a skeleton of Θ(n^x)
// nodes costs Õ(n^{2x−1} + n^{x/2}) HYBRID rounds.
//
// Sweep x at fixed n and n at fixed x; report measured HYBRID rounds per
// simulated clique round against the prediction. Also the E13-adjacent
// comparison: the real message-level naive CLIQUE APSP (n_S rounds) vs. the
// declared rounds of the cited fast algorithms — why charging published
// complexities is the only way to reproduce Theorems 1.2–1.4 (docs/DESIGN.md §4).
#include <cmath>
#include <iostream>

#include "clique/algorithms.hpp"
#include "graph/generators.hpp"
#include "proto/clique_embed.hpp"
#include "proto/skeleton.hpp"
#include "util/bench_io.hpp"
#include "util/table.hpp"

int main(int argc, char** argv) {
  using namespace hybrid;
  bench_recorder rec(argc, argv, "bench_clique_sim");

  print_section("E3 / Corollary 4.1 — cost of one CLIQUE round on a "
                "skeleton of n^x nodes");
  std::cout << "prediction: n^{2x-1} + n^{x/2} (up to polylog); "
               "per-round cost measured over 2 charged rounds after "
               "context setup.\n";
  table t({"n", "x", "|V_S|", "setup rounds", "rounds/clique-round",
           "prediction", "measured/pred"});
  for (u32 n : {512, 1024, 2048}) {
    for (double x : {0.45, 0.55, 2.0 / 3.0, 0.75, 0.85}) {
      const graph g = gen::erdos_renyi_connected(n, 6.0, 1, 70 + n);
      hybrid_net net(g, model_config{}, 100 + n);
      const double p = std::pow(static_cast<double>(n), x - 1.0);
      const skeleton_result sk = compute_skeleton(net, p);
      clique_embedding emb = build_clique_embedding(net, sk);
      charge_clique_rounds(net, emb, 2);
      const double per_round =
          static_cast<double>(emb.hybrid_rounds_charged) / 2.0;
      const double pred = std::pow(n, 2 * x - 1) + std::pow(n, x / 2);
      rec.add("cor41_cost_per_clique_round",
              {{"n", n},
               {"x", x},
               {"skeleton", sk.nodes.size()},
               {"rounds_per_clique_round", per_round},
               {"predicted", pred}});
      t.add_row({table::integer(n), table::num(x, 3),
                 table::integer(static_cast<long long>(sk.nodes.size())),
                 table::integer(static_cast<long long>(emb.build_rounds)),
                 table::num(per_round, 1), table::num(pred, 1),
                 table::num(per_round / pred, 1)});
    }
  }
  t.print();
  std::cout << "\n(per-round cost is flat in the additive polylog overhead "
               "until the data term n^{2x-1}+n^{x/2} takes over — "
               "measured/pred falls toward a constant ~1 as x grows, and "
               "within each x it is stable across n: Corollary 4.1's "
               "shape)\n";

  print_section("E3b — why declared rounds: naive message-level CLIQUE APSP "
                "needs n_S rounds, the cited algorithms Õ(1)..Õ(n_S^0.16)");
  table t2({"|V_S|", "naive full-exchange", "CHKL19 kSSP (1/eps)",
            "CKKLPS19 APSP (n^0.157)", "CHDKL19 SSSP (n^{1/6})"});
  for (u32 ns : {64, 128, 256, 512}) {
    // Naive: validated at message level in tests; round count is exactly n_S.
    const auto kssp = make_clique_kssp_1eps(0.25, injection::none);
    const auto alg = make_clique_apsp_algebraic(0.25, injection::none);
    const auto sssp = make_clique_sssp_exact();
    t2.add_row({table::integer(ns), table::integer(ns),
                table::integer(static_cast<long long>(kssp.declared_rounds(ns))),
                table::integer(static_cast<long long>(alg.declared_rounds(ns))),
                table::integer(static_cast<long long>(sssp.declared_rounds(ns)))});
  }
  t2.print();
  return rec.write() ? 0 : 1;
}
