// E8/E9 — Theorem 1.4: diameter approximation in the HYBRID model.
//
//   (3/2+ε)-approximation in Õ(n^{1/3}/ε)   (Cor 5.2, [7] plug-in)
//   (1+ε)-approximation  in Õ(n^{0.397}/ε)  (Cor 5.3, [8] plug-in)
//
// Both run under worst-case injection. Families span the diameter range:
// Erdős–Rényi (D small → Equation (3) computes D exactly via ĥ), grids and
// paths (D large → the skeleton estimate branch, where the approximation
// factor actually bites).
#include <cmath>
#include <iostream>

#include "core/diameter.hpp"
#include "graph/diameter.hpp"
#include "graph/generators.hpp"
#include "util/bench_io.hpp"
#include "util/stats.hpp"
#include "util/table.hpp"

namespace {

using namespace hybrid;

void run_family(const char* name, const graph& g, u64 seed, table& t,
                const clique_diameter_algorithm& alg, bench_recorder& rec,
                const char* scenario) {
  const u32 d_true = hop_diameter(g);
  diameter_result res;
  const double ms =
      timed_ms([&] { res = hybrid_diameter(g, model_config{}, seed, alg); });
  rec.add(scenario, {{"n", g.num_nodes()},
                     {"diameter", d_true},
                     {"estimate", res.estimate},
                     {"rounds", res.metrics.rounds},
                     {"messages", res.metrics.global_messages},
                     {"wall_ms", ms}});
  t.add_row({name, table::integer(g.num_nodes()),
             table::integer(static_cast<long long>(d_true)),
             table::integer(static_cast<long long>(res.estimate)),
             table::num(static_cast<double>(res.estimate) /
                            static_cast<double>(d_true),
                        3),
             table::num(res.bound, 3), res.exact_path ? "h-hat" : "skeleton",
             table::integer(static_cast<long long>(res.metrics.rounds))});
}

}  // namespace

int main(int argc, char** argv) {
  using namespace hybrid;
  bench_recorder rec(argc, argv, "bench_diameter");

  print_section(
      "E8 / Cor 5.2 — (3/2+eps)-diameter, eps=0.25, worst-case injected");
  table t1({"family", "n", "D", "estimate", "ratio", "proven bound",
            "Eq(3) branch", "rounds"});
  const auto alg32 = make_clique_diameter_32(0.25, injection::worst_case);
  run_family("ER deg8", gen::erdos_renyi_connected(1024, 8.0, 1, 11), 21, t1,
             alg32, rec, "cor52_families");
  run_family("grid 32x32", gen::grid(32, 32), 22, t1, alg32, rec,
             "cor52_families");
  run_family("grid 8x128", gen::grid(8, 128), 23, t1, alg32, rec,
             "cor52_families");
  run_family("path 1024", gen::path(1024), 24, t1, alg32, rec,
             "cor52_families");
  run_family("path 3000", gen::path(3000), 25, t1, alg32, rec,
             "cor52_families");
  t1.print();

  print_section(
      "E9 / Cor 5.3 — (1+eps)-diameter via algebraic CLIQUE APSP, eps=0.25");
  table t2({"family", "n", "D", "estimate", "ratio", "proven bound",
            "Eq(3) branch", "rounds"});
  const auto alg1e = make_clique_diameter_algebraic(0.25, injection::worst_case);
  run_family("ER deg8", gen::erdos_renyi_connected(1024, 8.0, 1, 31), 41, t2,
             alg1e, rec, "cor53_families");
  run_family("grid 32x32", gen::grid(32, 32), 42, t2, alg1e, rec,
             "cor53_families");
  run_family("path 1024", gen::path(1024), 43, t2, alg1e, rec,
             "cor53_families");
  run_family("path 3000", gen::path(3000), 44, t2, alg1e, rec,
             "cor53_families");
  t2.print();

  print_section("E8b — rounds scaling of the (3/2+eps) algorithm (claim "
                "n^{1/3} up to polylog and the 1/eps local exploration)");
  table t3({"n", "rounds", "|V_S|", "h"});
  std::vector<double> ns, rounds_v;
  for (u32 n : {256, 512, 1024, 2048}) {
    const graph g = gen::erdos_renyi_connected(n, 8.0, 1, 300 + n);
    diameter_result res;
    const double ms = timed_ms(
        [&] { res = hybrid_diameter(g, model_config{}, 50 + n, alg32); });
    rec.add("cor52_scaling", {{"n", n},
                              {"rounds", res.metrics.rounds},
                              {"messages", res.metrics.global_messages},
                              {"wall_ms", ms}});
    ns.push_back(n);
    rounds_v.push_back(static_cast<double>(res.metrics.rounds));
    t3.add_row({table::integer(n),
                table::integer(static_cast<long long>(res.metrics.rounds)),
                table::integer(res.skeleton_size), table::integer(res.h)});
  }
  t3.print();
  const linear_fit f = loglog_exponent(ns, rounds_v);
  std::cout << "\nraw fitted exponent: n^" << table::num(f.slope, 3)
            << " (claim 1/3 = 0.333 plus polylog; r2="
            << table::num(f.r2, 3) << ")\n";
  return rec.write() ? 0 : 1;
}
