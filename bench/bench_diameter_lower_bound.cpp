// E11 — Theorem 1.6 / Figure 2: computing the diameter exactly takes
// Ω((n/log²n)^{1/3}) rounds; (2−ε)-approximating the weighted diameter
// likewise.
//
// Pieces:
//   (a) the reduction's combinatorial core, machine-checked: Γ^{a,b} has
//       diameter ≤ W+2ℓ iff a,b disjoint (Lemma 7.1), resp. ℓ+1 vs ℓ+2
//       unweighted (Lemma 7.2) — over random and adversarial instances;
//   (b) the bottleneck arithmetic at the paper's parameterization
//       k = Θ((n log n)^{2/3}), ℓ = Θ((n/log² n)^{1/3}): set-disjointness
//       needs Ω(k²) bits across the Alice/Bob cut; the global mode carries
//       O(n log² n) bits/round → Ω̃(n^{1/3}) rounds;
//   (c) consistency: exact APSP (which solves exact diameter) run on Γ with
//       the cut instrumented — measured crossing bits ≥ k², measured rounds
//       ≥ the implied bound; the (3/2+ε) algorithm CANNOT distinguish the
//       two diameters (its factor exceeds the gap), shown side by side.
#include <cmath>
#include <iostream>
#include <sstream>

#include "core/apsp.hpp"
#include "core/diameter.hpp"
#include "graph/diameter.hpp"
#include "graph/generators.hpp"
#include "lb/gamma_graph.hpp"
#include "util/bench_io.hpp"
#include "util/rng.hpp"
#include "util/table.hpp"

namespace {

using namespace hybrid;

struct instance_pair {
  lb::gamma_graph disjoint_g;
  lb::gamma_graph intersect_g;
};

instance_pair make_pair(u32 k, u32 ell, u64 w, u64 seed) {
  rng r(seed);
  std::vector<u8> a(k * k, 0), b(k * k, 0);
  for (u32 i = 0; i < k * k; ++i) {
    a[i] = r.next_bool(0.5);
    b[i] = a[i] ? 0 : r.next_bool(0.5);
  }
  std::vector<u8> b2 = b;
  const u32 hit = static_cast<u32>(r.next_below(k * k));
  std::vector<u8> a2 = a;
  a2[hit] = 1;
  b2[hit] = 1;
  return {lb::build_gamma({k, ell, w}, a, b),
          lb::build_gamma({k, ell, w}, a2, b2)};
}

}  // namespace

int main(int argc, char** argv) {
  using namespace hybrid;
  bench_recorder rec(argc, argv, "bench_diameter_lower_bound");

  print_section("E11a / Lemmas 7.1 + 7.2 — the diameter gap of Gamma^{a,b}");
  table t1({"k", "ell", "W", "diam(disjoint)", "<= W+2ell",
            "diam(intersect)", ">= 2W+ell"});
  for (u32 k : {4, 6, 8}) {
    const u32 ell = k;
    const u64 w = 4 * ell;  // Lemma 7.1 needs W > ℓ
    const instance_pair p = make_pair(k, ell, w, 100 + k);
    const u64 d_dis = weighted_diameter(p.disjoint_g.g);
    const u64 d_int = weighted_diameter(p.intersect_g.g);
    t1.add_row({table::integer(k), table::integer(ell),
                table::integer(static_cast<long long>(w)),
                table::integer(static_cast<long long>(d_dis)),
                d_dis <= p.disjoint_g.low_diameter() ? "yes" : "NO",
                table::integer(static_cast<long long>(d_int)),
                d_int >= p.intersect_g.high_diameter() ? "yes" : "NO"});
  }
  t1.print();
  table t1u({"k", "ell", "diam(disjoint)", "= ell+1", "diam(intersect)",
             "= ell+2"});
  for (u32 k : {4, 6, 8}) {
    const u32 ell = k + 2;
    const instance_pair p = make_pair(k, ell, 1, 200 + k);
    const u64 d_dis = hop_diameter(p.disjoint_g.g);
    const u64 d_int = hop_diameter(p.intersect_g.g);
    t1u.add_row({table::integer(k), table::integer(ell),
                 table::integer(static_cast<long long>(d_dis)),
                 d_dis == ell + 1 ? "yes" : "NO",
                 table::integer(static_cast<long long>(d_int)),
                 d_int == ell + 2 ? "yes" : "NO"});
  }
  t1u.print();
  std::cout << "\nweighted gap (2W+ell)/(W+2ell) -> 2 as W >> ell: a (2-eps)-"
               "approximation must separate the cases (Theorem 1.6).\n";

  print_section("E11b — bottleneck arithmetic at the paper's parameters");
  table t2({"n", "k=(n ln n)^{2/3}", "ell=(n/ln^2 n)^{1/3}", "entropy k^2",
            "cap n*log^2 n [bits/rd]", "implied LB rounds", "n^{1/3}"});
  for (double n : {1e3, 1e4, 1e5, 1e6, 1e7}) {
    const double logn = std::log2(n);
    const double k = std::pow(n * std::log(n), 2.0 / 3.0);
    const double ell = std::pow(n / (std::log(n) * std::log(n)), 1.0 / 3.0);
    const double cap = n * logn * logn;
    t2.add_row({table::num(n, 0), table::num(k, 0), table::num(ell, 1),
                table::num(k * k, 0), table::num(cap, 0),
                table::num(k * k / cap, 1), table::num(std::cbrt(n), 1)});
  }
  t2.print();

  print_section("E11c — consistency run: exact APSP on Gamma with the "
                "Alice/Bob cut instrumented");
  table t3({"k", "ell", "n", "APSP rounds", "cut bits", ">= k^2",
            "diam exact ok"});
  for (u32 k : {6, 10}) {
    const u32 ell = k;
    const instance_pair p = make_pair(k, ell, 1, 300 + k);
    const lb::gamma_graph& gd = p.disjoint_g;

    model_config cfg;
    cfg.cut_side = gd.alice_bob_cut();
    const apsp_result apsp = hybrid_apsp_exact(gd.g, cfg, 9 + k);
    // Exact diameter from the APSP output (what a node would compute).
    u64 diam = 0;
    for (const auto& row : apsp.dist)
      for (u64 d : row) diam = std::max(diam, d);
    const bool diam_ok = diam == hop_diameter(gd.g);
    rec.add("cut_instrumented_apsp",
            {{"k", k},
             {"ell", ell},
             {"n", gd.g.num_nodes()},
             {"rounds", apsp.metrics.rounds},
             {"cut_bits", apsp.metrics.cut_bits},
             {"diam_ok", diam_ok ? 1 : 0}});

    t3.add_row({table::integer(k), table::integer(ell),
                table::integer(gd.g.num_nodes()),
                table::integer(static_cast<long long>(apsp.metrics.rounds)),
                table::integer(static_cast<long long>(apsp.metrics.cut_bits)),
                apsp.metrics.cut_bits >= static_cast<u64>(k) * k ? "yes"
                                                                 : "NO",
                diam_ok ? "yes" : "NO"});
  }
  t3.print();

  print_section("E11d — why approximation does not break the bound: the "
                "(α, β) bands of the two instances overlap");
  std::cout << "a (3/2+eps)-approximation may legally output any value in "
               "[D, (3/2+eps)D+beta]; for the unweighted gap ell+1 vs "
               "ell+2 the bands overlap, so the contract never forces "
               "separation — only exact (or weighted (2-eps)-approximate) "
               "computation decides disjointness, and that is what the "
               "Omega~(n^{1/3}) bound applies to.\n\n";
  table t4({"ell", "disjoint band", "intersect band", "bands overlap?"});
  for (u32 ell : {8u, 64u, 1024u}) {
    const double lo1 = ell + 1, hi1 = 1.75 * (ell + 1);
    const double lo2 = ell + 2, hi2 = 1.75 * (ell + 2);
    std::ostringstream b1, b2;
    b1 << "[" << lo1 << ", " << hi1 << "]";
    b2 << "[" << lo2 << ", " << hi2 << "]";
    t4.add_row({table::integer(ell), b1.str(), b2.str(),
                (hi1 >= lo2) ? "yes" : "NO"});
  }
  t4.print();
  std::cout << "\n(exact computation ships >> k^2 bits across the cut — "
               "measured above — which at k = Theta((n log n)^{2/3}) forces "
               "Omega~(n^{1/3}) rounds: Theorem 1.6)\n";

  print_section("E11e — the weighted-diameter story closed from above: "
                "(2+o(1))-approx UB in Õ(n^{2/5}) (Section 1.1)");
  std::cout << "one exact SSSP + max-aggregation gives 2·e(v) with "
               "D_w <= 2e(v) <= 2·D_w; Theorem 1.6 says no (2-eps)-approx "
               "can beat Omega~(n^{1/3}) rounds, so factor 2 is where the "
               "complexity drops.\n\n";
  table t5({"graph", "n", "D_w", "e(v)", "estimate 2e", "ratio", "rounds"});
  for (u32 n : {512u, 1024u, 2048u}) {
    const graph g = gen::erdos_renyi_connected(n, 6.0, 16, 400 + n);
    const u64 dw = weighted_diameter(g);
    const weighted_diameter_result res =
        hybrid_weighted_diameter_2approx(g, model_config{}, 19 + n);
    rec.add("weighted_2approx", {{"n", n},
                                 {"diameter", dw},
                                 {"estimate", res.estimate},
                                 {"rounds", res.metrics.rounds}});
    t5.add_row({"ER W=16", table::integer(n),
                table::integer(static_cast<long long>(dw)),
                table::integer(static_cast<long long>(res.eccentricity)),
                table::integer(static_cast<long long>(res.estimate)),
                table::num(static_cast<double>(res.estimate) /
                               static_cast<double>(dw),
                           3),
                table::integer(static_cast<long long>(res.metrics.rounds))});
  }
  {
    const graph g = gen::path(2048, 16, 77);
    const u64 dw = weighted_diameter(g);
    const weighted_diameter_result res =
        hybrid_weighted_diameter_2approx(g, model_config{}, 7);
    t5.add_row({"path W=16", table::integer(2048),
                table::integer(static_cast<long long>(dw)),
                table::integer(static_cast<long long>(res.eccentricity)),
                table::integer(static_cast<long long>(res.estimate)),
                table::num(static_cast<double>(res.estimate) /
                               static_cast<double>(dw),
                           3),
                table::integer(static_cast<long long>(res.metrics.rounds))});
  }
  t5.print();
  std::cout << "\n(ratio in [1, 2] always; rounds follow the SSSP's "
               "Õ(n^{2/5}))\n";
  return rec.write() ? 0 : 1;
}
