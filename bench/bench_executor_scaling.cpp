// Executor scaling: wall-clock throughput (simulated rounds/sec) of the
// node-parallel round executor at 1/2/4/8 threads on the three driver
// shapes the protocols use — LOCAL flooding (truncated eccentricity,
// Algorithm 9's hello flood), global token routing (Theorem 2.2), and the
// raw γ-saturated mailbox delivery path (sim/mailbox.hpp's parallel
// counting sort). Heap allocations per simulated round are reported next
// to throughput (bench/alloc_counter.hpp).
//
// The determinism contract (docs/CONCURRENCY.md) promises bit-identical
// results for every thread count; this bench asserts it on every scenario
// while measuring the speedup. Usage:
//
//   bench_executor_scaling [flood_n] [routing_n] [delivery_n] [--json <path>]
//
// Speedups track the machine's actual core count: on a single-core
// container all thread counts measure ≈ 1×.
#include "alloc_counter.hpp"

#include <cmath>
#include <iostream>
#include <thread>

#include "graph/generators.hpp"
#include "proto/flood.hpp"
#include "proto/token_routing.hpp"
#include "util/assert.hpp"
#include "util/bench_io.hpp"
#include "util/table.hpp"

namespace {

using namespace hybrid;

constexpr u32 kThreadCounts[] = {1, 2, 4, 8};

struct measurement {
  run_metrics metrics;
  double wall_ms = 0;
  u64 allocs = 0;
};

/// Run `body` once per thread count, capturing wall time and heap
/// allocations around it.
template <class Body>
std::vector<measurement> sweep_threads(Body&& body) {
  std::vector<measurement> runs;
  for (u32 threads : kThreadCounts) {
    measurement m;
    const u64 alloc0 = benchalloc::allocations();
    m.wall_ms = timed_ms([&] { body(threads, m); });
    m.allocs = benchalloc::allocations() - alloc0;
    runs.push_back(m);
  }
  return runs;
}

void report(const char* workload, u32 n, bench_recorder& rec,
            const std::vector<measurement>& runs) {
  table t({"workload", "n", "threads", "rounds", "messages", "wall ms",
           "rounds/s", "allocs/round", "speedup"});
  const double base_ms = runs[0].wall_ms;
  for (u32 i = 0; i < runs.size(); ++i) {
    const measurement& m = runs[i];
    // Identical rounds/messages at every thread count — the contract.
    HYB_INVARIANT(m.metrics.rounds == runs[0].metrics.rounds &&
                      m.metrics.global_messages ==
                          runs[0].metrics.global_messages &&
                      m.metrics.local_items == runs[0].metrics.local_items &&
                      m.metrics.max_global_recv_per_round ==
                          runs[0].metrics.max_global_recv_per_round,
                  "thread count changed simulation results");
    const double rps = 1000.0 * static_cast<double>(m.metrics.rounds) /
                       std::max(m.wall_ms, 1e-6);
    const double speedup = base_ms / std::max(m.wall_ms, 1e-6);
    const double apr = static_cast<double>(m.allocs) /
                       std::max<double>(static_cast<double>(m.metrics.rounds), 1);
    t.add_row({workload, table::integer(n), table::integer(kThreadCounts[i]),
               table::integer(static_cast<long long>(m.metrics.rounds)),
               table::integer(static_cast<long long>(m.metrics.global_messages)),
               table::num(m.wall_ms, 1), table::num(rps, 1),
               table::num(apr, 2), table::num(speedup, 2)});
    rec.add(workload, {{"n", static_cast<double>(n)},
                       {"threads", static_cast<double>(kThreadCounts[i])},
                       {"rounds", static_cast<double>(m.metrics.rounds)},
                       {"messages",
                        static_cast<double>(m.metrics.global_messages)},
                       {"wall_ms", m.wall_ms},
                       {"rounds_per_sec", rps},
                       {"allocs_per_round", apr},
                       {"speedup", speedup}});
  }
  t.print();
  std::cout << "\n";
}

}  // namespace

int main(int argc, char** argv) {
  bench_recorder rec(argc, argv, "bench_executor_scaling");
  // Positional sizes come first and stop at the first flag; `--json <path>`
  // follows them (sizes after a flag are not parsed).
  std::vector<u32> sizes;
  for (int i = 1; i < argc && argv[i][0] != '-'; ++i)
    sizes.push_back(static_cast<u32>(std::atoi(argv[i])));
  const u32 flood_n = sizes.size() > 0 ? sizes[0] : 4096;
  const u32 routing_n = sizes.size() > 1 ? sizes[1] : 2048;
  const u32 delivery_n = sizes.size() > 2 ? sizes[2] : flood_n;

  print_section("Executor scaling — node-parallel round steps");
  std::cout << "hardware threads: " << std::thread::hardware_concurrency()
            << "; results are asserted identical across thread counts\n\n";

  {
    const graph g = gen::erdos_renyi_connected(flood_n, 6.0, 1, 17);
    // Enough rounds to saturate the hello flood (ER diameter is O(log n)).
    const u32 rounds = 4 * id_bits(flood_n);
    report("flood", flood_n, rec, sweep_threads([&](u32 threads, measurement& m) {
             hybrid_net net(g, model_config{}, 5, sim_options{threads});
             const auto ecc = truncated_eccentricity(net, rounds);
             HYB_INVARIANT(!ecc.empty(), "flood produced no result");
             m.metrics = net.snapshot();
           }));
  }

  {
    const graph g = gen::erdos_renyi_connected(routing_n, 6.0, 1, 29);
    // Every 8th node is a sender, every 16th a receiver; one token per
    // (sender, receiver) pair.
    routing_spec spec;
    for (u32 v = 0; v < routing_n; ++v) {
      if (v % 8 == 0) spec.senders.push_back(v);
      if (v % 16 == 0) spec.receivers.push_back(v);
    }
    spec.p_s = 1.0 / 8;
    spec.p_r = 1.0 / 16;
    spec.k_s = spec.receivers.size();
    spec.k_r = spec.senders.size();
    std::vector<std::vector<routed_token>> batch(spec.senders.size());
    for (u32 i = 0; i < spec.senders.size(); ++i)
      for (u32 j = 0; j < spec.receivers.size(); ++j)
        batch[i].push_back({spec.senders[i], spec.receivers[j], 0,
                            (u64{i} << 32) | j});
    report("token_routing", routing_n, rec,
           sweep_threads([&](u32 threads, measurement& m) {
             hybrid_net net(g, model_config{}, 7, sim_options{threads});
             const auto delivered = run_token_routing(net, spec, batch);
             HYB_INVARIANT(delivered.size() == spec.receivers.size(),
                           "routing lost receivers");
             m.metrics = net.snapshot();
           }));
  }

  {
    // Raw delivery: every node saturates its γ budget with round_rng-chosen
    // destinations each round — message-bound by construction, so this
    // isolates the mailbox counting sort (no LOCAL work at all).
    const graph g = gen::erdos_renyi_connected(delivery_n, 4.0, 1, 41);
    const u32 rounds = 50;
    u64 base_digest = 0;
    bool have_base = false;
    report("delivery", delivery_n, rec,
           sweep_threads([&](u32 threads, measurement& m) {
             hybrid_net net(g, model_config{}, 13, sim_options{threads});
             u64 digest = 0;
             for (u32 r = 0; r < rounds; ++r) {
               net.executor().for_nodes(delivery_n, [&](u32 v) {
                 rng rv = net.round_rng(v);
                 while (net.global_budget(v) > 0)
                   net.try_send_global(global_msg::make(
                       v, static_cast<u32>(rv.next_below(delivery_n)), 0,
                       {rv.next()}));
               });
               net.advance_round();
               // Parallel order-insensitive digest (u64 sum of per-node
               // folds): verifies delivery without adding a sequential
               // O(n·γ) scan to the measured region.
               digest += net.executor().sum_nodes(delivery_n, [&](u32 v) {
                 u64 h = v + 1;
                 for (const global_msg& msg : net.global_inbox(v))
                   h = derive_seed(h, msg.w[0] ^ msg.src);
                 return h;
               });
             }
             if (!have_base) {
               base_digest = digest;
               have_base = true;
             }
             HYB_INVARIANT(digest == base_digest,
                           "thread count changed delivered inboxes");
             m.metrics = net.snapshot();
           }));
  }

  if (!rec.write()) {
    std::cerr << "failed to write --json output\n";
    return 1;
  }
  return 0;
}
