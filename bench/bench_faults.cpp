// Fault-degradation curves (sim/fault.hpp, docs/FAULTS.md): how the
// self-healing protocols degrade as the seeded drop probability rises,
// p ∈ {0, 0.05, 0.1, 0.3} — round overshoot, dropped traffic, and
// protocol-level retransmissions for the healed local flood
// (limited_bellman_ford under local-plane drops), token dissemination and
// token routing (both under global-plane drops), plus the end-to-end
// APSP/SSSP/diameter pipelines under drops on each plane separately. Every
// quantity except wall time and the pipelines' extra_rounds (healing
// overhead — a perf trajectory that moves with the healing engine) is
// deterministic per (seed, fault_seed), so the curves are gated against
// bench/baseline/BENCH_faults.json like the other deterministic
// trajectories. A protocol that aborts (fault_failure) records success = 0
// — the curve stays honest instead of silently dropping the row. Usage:
//
//   bench_faults [--json <path>]
#include <functional>
#include <iostream>
#include <string>
#include <utility>

#include "core/apsp.hpp"
#include "core/diameter.hpp"
#include "core/sssp.hpp"
#include "graph/generators.hpp"
#include "proto/dissemination.hpp"
#include "proto/flood.hpp"
#include "proto/token_routing.hpp"
#include "sim/hybrid_net.hpp"
#include "util/bench_io.hpp"
#include "util/table.hpp"

namespace {

using namespace hybrid;

constexpr double kProbabilities[] = {0.0, 0.05, 0.1, 0.3};
constexpr u32 kReps = 3;

double best_ms(const std::function<void()>& body) {
  double best = 0;
  for (u32 i = 0; i < kReps; ++i) {
    const double ms = timed_ms(body);
    if (i == 0 || ms < best) best = ms;
  }
  return best;
}

sim_options faulty_local(double p) {
  sim_options opts;
  opts.faults.drop_local = p;
  opts.faults.fault_seed = 17;
  return opts;
}

sim_options faulty_global(double p) {
  sim_options opts;
  opts.faults.drop_global = p;
  opts.faults.fault_seed = 17;
  return opts;
}

void bench_flood(bench_recorder& rec) {
  const u32 n = 256;
  const graph g = gen::erdos_renyi_connected(n, 4.0, 8, 7);
  const std::vector<u32> sources = {0, 63, 127, 191};
  const u32 h = 24;
  print_section("Healed local flood (limited_bellman_ford) — local drops");
  table t({"p", "sim rounds", "extra rounds", "local dropped", "success",
           "wall ms"});
  for (const double p : kProbabilities) {
    u64 rounds = 0, extra = 0, dropped = 0;
    u32 success = 1;
    const double ms = best_ms([&] {
      hybrid_net net(g, model_config{}, 5, faulty_local(p));
      try {
        limited_bellman_ford(net, sources, h);
      } catch (const fault_failure&) {
        success = 0;
      }
      rounds = net.round();
      extra = net.raw_metrics().extra_rounds;
      dropped = net.raw_metrics().local_dropped;
    });
    t.add_row({table::num(p, 2),
               table::integer(static_cast<long long>(rounds)),
               table::integer(static_cast<long long>(extra)),
               table::integer(static_cast<long long>(dropped)),
               table::integer(success), table::num(ms, 2)});
    rec.add("flood_degradation", {{"p_x100", p * 100},
                                  {"n", n},
                                  {"sim_rounds", rounds},
                                  {"extra_rounds", extra},
                                  {"local_dropped", dropped},
                                  {"success", success},
                                  {"wall_ms", ms}});
  }
  t.print();
  std::cout << "\n";
}

void bench_dissemination(bench_recorder& rec) {
  const u32 n = 256;
  const graph g = gen::erdos_renyi_connected(n, 4.0, 1, 9);
  print_section("Token dissemination (Lemma B.1) — global drops");
  table t({"p", "sim rounds", "extra rounds", "dropped", "success",
           "wall ms"});
  for (const double p : kProbabilities) {
    u64 rounds = 0, extra = 0, dropped = 0;
    u32 success = 1;
    const double ms = best_ms([&] {
      hybrid_net net(g, model_config{}, 5, faulty_global(p));
      std::vector<std::vector<token2>> initial(n);
      for (u32 v = 0; v < n; v += 4) initial[v].push_back({v, u64{v} * 3});
      try {
        disseminate(net, std::move(initial));
      } catch (const fault_failure&) {
        success = 0;
      }
      rounds = net.round();
      extra = net.raw_metrics().extra_rounds;
      dropped = net.raw_metrics().global_dropped;
    });
    t.add_row({table::num(p, 2),
               table::integer(static_cast<long long>(rounds)),
               table::integer(static_cast<long long>(extra)),
               table::integer(static_cast<long long>(dropped)),
               table::integer(success), table::num(ms, 2)});
    rec.add("dissemination_degradation", {{"p_x100", p * 100},
                                          {"n", n},
                                          {"sim_rounds", rounds},
                                          {"extra_rounds", extra},
                                          {"global_dropped", dropped},
                                          {"success", success},
                                          {"wall_ms", ms}});
  }
  t.print();
  std::cout << "\n";
}

void bench_token_routing(bench_recorder& rec) {
  const u32 n = 256;
  const graph g = gen::erdos_renyi_connected(n, 4.0, 1, 11);
  print_section("Token routing (Theorem 2.2) — global drops");
  table t({"p", "sim rounds", "retransmitted", "dropped", "success",
           "wall ms"});
  for (const double p : kProbabilities) {
    u64 rounds = 0, retx = 0, dropped = 0;
    u32 success = 1;
    const double ms = best_ms([&] {
      hybrid_net net(g, model_config{}, 5, faulty_global(p));
      routing_spec spec;
      for (u32 v = 0; v < n; v += 2) spec.senders.push_back(v);
      for (u32 v = 1; v < n; v += 2) spec.receivers.push_back(v);
      spec.k_s = 4;
      spec.k_r = 4;
      std::vector<std::vector<routed_token>> batch(spec.senders.size());
      for (u32 si = 0; si < spec.senders.size(); ++si)
        for (u32 i = 0; i < 4; ++i) {
          const u32 r = spec.receivers[(si + i) % spec.receivers.size()];
          batch[si].push_back(
              {spec.senders[si], r, i, u64{spec.senders[si]} << 16 | i});
        }
      try {
        run_token_routing(net, std::move(spec), std::move(batch));
      } catch (const fault_failure&) {
        success = 0;
      }
      rounds = net.round();
      retx = net.raw_metrics().retransmitted;
      dropped = net.raw_metrics().global_dropped;
    });
    t.add_row({table::num(p, 2),
               table::integer(static_cast<long long>(rounds)),
               table::integer(static_cast<long long>(retx)),
               table::integer(static_cast<long long>(dropped)),
               table::integer(success), table::num(ms, 2)});
    rec.add("token_routing_degradation", {{"p_x100", p * 100},
                                          {"n", n},
                                          {"sim_rounds", rounds},
                                          {"retransmitted", retx},
                                          {"global_dropped", dropped},
                                          {"success", success},
                                          {"wall_ms", ms}});
  }
  t.print();
  std::cout << "\n";
}

// End-to-end degradation: the full APSP/SSSP/diameter pipelines under
// drops on each plane separately. `identical` asserts the headline claim —
// the healed result is bit-identical to the fault-free run — and is gated;
// `extra_rounds` is the healing overhead curve (perf-tracked, see
// compare_bench_json.py).
void bench_pipelines(bench_recorder& rec) {
  const u32 n = 64;
  const graph gw = gen::erdos_renyi_connected(n, 3.0, 8, 21);  // weighted
  const graph gu = gen::erdos_renyi_connected(n, 3.0, 1, 21);  // unweighted
  const auto dia_alg = make_clique_diameter_32(0.25, injection::none);
  const auto apsp_ref = hybrid_apsp_exact(gw, model_config{}, 7);
  const auto sssp_ref = hybrid_sssp_exact(gw, model_config{}, 7, 0);
  const auto dia_ref = hybrid_diameter(gu, model_config{}, 7, dia_alg);
  print_section("Full pipelines — healed degradation on either plane");
  table t({"scenario", "p", "extra rounds", "identical", "success",
           "wall ms"});
  // run(opts) -> {identical-to-fault-free, extra_rounds}; throws
  // fault_failure when healing gives up.
  const auto family =
      [&](const std::string& scenario, bool local_plane,
          const std::function<std::pair<u32, u64>(const sim_options&)>& run) {
        for (const double p : kProbabilities) {
          u32 success = 1, identical = 0;
          u64 extra = 0;
          const double ms = best_ms([&] {
            const sim_options o = local_plane ? faulty_local(p)
                                              : faulty_global(p);
            try {
              const std::pair<u32, u64> r = run(o);
              identical = r.first;
              extra = r.second;
            } catch (const fault_failure&) {
              success = 0;
              identical = 0;
              extra = 0;
            }
          });
          t.add_row({scenario, table::num(p, 2),
                     table::integer(static_cast<long long>(extra)),
                     table::integer(identical), table::integer(success),
                     table::num(ms, 2)});
          rec.add(scenario, {{"p_x100", p * 100},
                             {"n", n},
                             {"success", success},
                             {"identical", identical},
                             {"extra_rounds", extra},
                             {"wall_ms", ms}});
        }
      };
  const auto apsp_run = [&](const sim_options& o) {
    const auto got = hybrid_apsp_exact(gw, model_config{}, 7, false, o);
    return std::pair<u32, u64>{got.dist == apsp_ref.dist,
                               got.metrics.extra_rounds};
  };
  const auto sssp_run = [&](const sim_options& o) {
    const auto got = hybrid_sssp_exact(gw, model_config{}, 7, 0, o);
    return std::pair<u32, u64>{got.dist == sssp_ref.dist,
                               got.metrics.extra_rounds};
  };
  const auto dia_run = [&](const sim_options& o) {
    const auto got = hybrid_diameter(gu, model_config{}, 7, dia_alg, o);
    return std::pair<u32, u64>{got.estimate == dia_ref.estimate &&
                                   got.h_hat == dia_ref.h_hat &&
                                   got.skeleton_estimate ==
                                       dia_ref.skeleton_estimate,
                               got.metrics.extra_rounds};
  };
  family("apsp_pipeline_local", true, apsp_run);
  family("apsp_pipeline_global", false, apsp_run);
  family("sssp_pipeline_local", true, sssp_run);
  family("sssp_pipeline_global", false, sssp_run);
  family("diameter_pipeline_local", true, dia_run);
  family("diameter_pipeline_global", false, dia_run);
  t.print();
  std::cout << "\n";
}

}  // namespace

int main(int argc, char** argv) {
  bench_recorder rec(argc, argv, "bench_faults");
  bench_flood(rec);
  bench_dissemination(rec);
  bench_token_routing(rec);
  bench_pipelines(rec);
  if (!rec.write()) {
    std::cerr << "failed to write --json output\n";
    return 1;
  }
  return 0;
}
