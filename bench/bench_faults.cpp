// Fault-degradation curves (sim/fault.hpp, docs/FAULTS.md): how the
// self-healing protocols degrade as the seeded drop probability rises,
// p ∈ {0, 0.05, 0.1, 0.3} — round overshoot, dropped traffic, and
// protocol-level retransmissions for the healed local flood
// (limited_bellman_ford under local-plane drops), token dissemination and
// token routing (both under global-plane drops). Every quantity except
// wall time is deterministic per (seed, fault_seed), so the curves are
// gated against bench/baseline/BENCH_faults.json like the other
// deterministic trajectories. A protocol that aborts (fault_failure)
// records success = 0 — the curve stays honest instead of silently
// dropping the row. Usage:
//
//   bench_faults [--json <path>]
#include <iostream>

#include "graph/generators.hpp"
#include "proto/dissemination.hpp"
#include "proto/flood.hpp"
#include "proto/token_routing.hpp"
#include "sim/hybrid_net.hpp"
#include "util/bench_io.hpp"
#include "util/table.hpp"

namespace {

using namespace hybrid;

constexpr double kProbabilities[] = {0.0, 0.05, 0.1, 0.3};
constexpr u32 kReps = 3;

double best_ms(const std::function<void()>& body) {
  double best = 0;
  for (u32 i = 0; i < kReps; ++i) {
    const double ms = timed_ms(body);
    if (i == 0 || ms < best) best = ms;
  }
  return best;
}

sim_options faulty_local(double p) {
  sim_options opts;
  opts.faults.drop_local = p;
  opts.faults.fault_seed = 17;
  return opts;
}

sim_options faulty_global(double p) {
  sim_options opts;
  opts.faults.drop_global = p;
  opts.faults.fault_seed = 17;
  return opts;
}

void bench_flood(bench_recorder& rec) {
  const u32 n = 256;
  const graph g = gen::erdos_renyi_connected(n, 4.0, 8, 7);
  const std::vector<u32> sources = {0, 63, 127, 191};
  const u32 h = 24;
  print_section("Healed local flood (limited_bellman_ford) — local drops");
  table t({"p", "sim rounds", "extra rounds", "local dropped", "success",
           "wall ms"});
  for (const double p : kProbabilities) {
    u64 rounds = 0, extra = 0, dropped = 0;
    u32 success = 1;
    const double ms = best_ms([&] {
      hybrid_net net(g, model_config{}, 5, faulty_local(p));
      try {
        limited_bellman_ford(net, sources, h);
      } catch (const fault_failure&) {
        success = 0;
      }
      rounds = net.round();
      extra = net.raw_metrics().extra_rounds;
      dropped = net.raw_metrics().local_dropped;
    });
    t.add_row({table::num(p, 2),
               table::integer(static_cast<long long>(rounds)),
               table::integer(static_cast<long long>(extra)),
               table::integer(static_cast<long long>(dropped)),
               table::integer(success), table::num(ms, 2)});
    rec.add("flood_degradation", {{"p_x100", p * 100},
                                  {"n", n},
                                  {"sim_rounds", rounds},
                                  {"extra_rounds", extra},
                                  {"local_dropped", dropped},
                                  {"success", success},
                                  {"wall_ms", ms}});
  }
  t.print();
  std::cout << "\n";
}

void bench_dissemination(bench_recorder& rec) {
  const u32 n = 256;
  const graph g = gen::erdos_renyi_connected(n, 4.0, 1, 9);
  print_section("Token dissemination (Lemma B.1) — global drops");
  table t({"p", "sim rounds", "extra rounds", "dropped", "success",
           "wall ms"});
  for (const double p : kProbabilities) {
    u64 rounds = 0, extra = 0, dropped = 0;
    u32 success = 1;
    const double ms = best_ms([&] {
      hybrid_net net(g, model_config{}, 5, faulty_global(p));
      std::vector<std::vector<token2>> initial(n);
      for (u32 v = 0; v < n; v += 4) initial[v].push_back({v, u64{v} * 3});
      try {
        disseminate(net, std::move(initial));
      } catch (const fault_failure&) {
        success = 0;
      }
      rounds = net.round();
      extra = net.raw_metrics().extra_rounds;
      dropped = net.raw_metrics().global_dropped;
    });
    t.add_row({table::num(p, 2),
               table::integer(static_cast<long long>(rounds)),
               table::integer(static_cast<long long>(extra)),
               table::integer(static_cast<long long>(dropped)),
               table::integer(success), table::num(ms, 2)});
    rec.add("dissemination_degradation", {{"p_x100", p * 100},
                                          {"n", n},
                                          {"sim_rounds", rounds},
                                          {"extra_rounds", extra},
                                          {"global_dropped", dropped},
                                          {"success", success},
                                          {"wall_ms", ms}});
  }
  t.print();
  std::cout << "\n";
}

void bench_token_routing(bench_recorder& rec) {
  const u32 n = 256;
  const graph g = gen::erdos_renyi_connected(n, 4.0, 1, 11);
  print_section("Token routing (Theorem 2.2) — global drops");
  table t({"p", "sim rounds", "retransmitted", "dropped", "success",
           "wall ms"});
  for (const double p : kProbabilities) {
    u64 rounds = 0, retx = 0, dropped = 0;
    u32 success = 1;
    const double ms = best_ms([&] {
      hybrid_net net(g, model_config{}, 5, faulty_global(p));
      routing_spec spec;
      for (u32 v = 0; v < n; v += 2) spec.senders.push_back(v);
      for (u32 v = 1; v < n; v += 2) spec.receivers.push_back(v);
      spec.k_s = 4;
      spec.k_r = 4;
      std::vector<std::vector<routed_token>> batch(spec.senders.size());
      for (u32 si = 0; si < spec.senders.size(); ++si)
        for (u32 i = 0; i < 4; ++i) {
          const u32 r = spec.receivers[(si + i) % spec.receivers.size()];
          batch[si].push_back(
              {spec.senders[si], r, i, u64{spec.senders[si]} << 16 | i});
        }
      try {
        run_token_routing(net, std::move(spec), std::move(batch));
      } catch (const fault_failure&) {
        success = 0;
      }
      rounds = net.round();
      retx = net.raw_metrics().retransmitted;
      dropped = net.raw_metrics().global_dropped;
    });
    t.add_row({table::num(p, 2),
               table::integer(static_cast<long long>(rounds)),
               table::integer(static_cast<long long>(retx)),
               table::integer(static_cast<long long>(dropped)),
               table::integer(success), table::num(ms, 2)});
    rec.add("token_routing_degradation", {{"p_x100", p * 100},
                                          {"n", n},
                                          {"sim_rounds", rounds},
                                          {"retransmitted", retx},
                                          {"global_dropped", dropped},
                                          {"success", success},
                                          {"wall_ms", ms}});
  }
  t.print();
  std::cout << "\n";
}

}  // namespace

int main(int argc, char** argv) {
  bench_recorder rec(argc, argv, "bench_faults");
  bench_flood(rec);
  bench_dissemination(rec);
  bench_token_routing(rec);
  if (!rec.write()) {
    std::cerr << "failed to write --json output\n";
    return 1;
  }
  return 0;
}
