// E4/E5/E6 — Theorem 1.2: the three k-SSP parameterizations.
//
//   row 1 (Cor 4.6): k = n^{1/3} sources, Õ(n^{1/3}/ε) rounds,
//                    (3+ε) weighted / (1+ε) unweighted;
//   row 2 (Cor 4.7): any k, Õ(n^{1/3}/ε + √k) rounds,
//                    (7+ε) weighted / (2+ε) unweighted;
//   row 3 (Cor 4.8): any k, Õ(n^{0.397} + √k) rounds, (3+o(1)) weighted.
//
// All plug-ins run under WORST-CASE error injection (every CLIQUE output
// inflated to the edge of its (α, β) contract), so the observed stretch
// genuinely exercises Theorem 4.1's end-to-end bound instead of being
// exact by construction.
#include <cmath>
#include <iostream>

#include "core/kssp_framework.hpp"
#include "graph/generators.hpp"
#include "graph/shortest_paths.hpp"
#include "util/bench_io.hpp"
#include "util/stats.hpp"
#include "util/table.hpp"

namespace {

using namespace hybrid;

struct stretch {
  double max_ratio = 1.0;
  u64 underestimates = 0;
};

stretch measure(const kssp_result& res, const graph& g) {
  stretch s;
  const auto ref = multi_source_reference(g, res.sources);
  for (u32 j = 0; j < res.sources.size(); ++j)
    for (u32 v = 0; v < g.num_nodes(); ++v) {
      if (res.dist[j][v] < ref[j][v]) ++s.underestimates;
      if (ref[j][v] > 0)
        s.max_ratio = std::max(
            s.max_ratio, static_cast<double>(res.dist[j][v]) /
                             static_cast<double>(ref[j][v]));
    }
  return s;
}

std::vector<u32> pick_sources(u32 n, u32 k, u64 seed) {
  rng r(seed);
  return r.sample_without_replacement(n, k);
}

}  // namespace

int main(int argc, char** argv) {
  using namespace hybrid;
  bench_recorder rec(argc, argv, "bench_kssp");

  print_section(
      "E4 / Thm 1.2 row 1 (Cor 4.6) — k = n^{1/3} sources, eps = 0.25, "
      "worst-case injected CLIQUE");
  table t1({"graph", "n", "k", "rounds", "max stretch", "proven bound",
            "under-est"});
  std::vector<double> ns1, rounds1;
  for (u32 n : {256, 512, 1024}) {
    for (bool weighted : {false, true}) {
      const u64 w = weighted ? 16 : 1;
      const graph g = gen::erdos_renyi_connected(n, 6.0, w, 40 + n);
      const u32 k = static_cast<u32>(std::cbrt(static_cast<double>(n)));
      const auto alg = make_clique_kssp_1eps(0.25, injection::worst_case);
      kssp_result res;
      const double ms = timed_ms([&] {
        res = hybrid_kssp(g, model_config{}, 17 + n, pick_sources(n, k, n),
                          alg);
      });
      const stretch s = measure(res, g);
      const double bound =
          weighted ? res.bound_weighted : res.bound_unweighted;
      rec.add(weighted ? "cor46_weighted" : "cor46_unweighted",
              {{"n", n},
               {"k", k},
               {"rounds", res.metrics.rounds},
               {"messages", res.metrics.global_messages},
               {"wall_ms", ms},
               {"max_stretch", s.max_ratio}});
      if (weighted) {
        ns1.push_back(n);
        rounds1.push_back(static_cast<double>(res.metrics.rounds));
      }
      t1.add_row({weighted ? "ER W=16" : "ER W=1", table::integer(n),
                  table::integer(k),
                  table::integer(static_cast<long long>(res.metrics.rounds)),
                  table::num(s.max_ratio, 3), table::num(bound, 3),
                  table::integer(static_cast<long long>(s.underestimates))});
    }
  }
  t1.print();
  const linear_fit f1 = loglog_exponent(ns1, rounds1);
  std::cout << "\nraw fitted rounds exponent: n^" << table::num(f1.slope, 3)
            << " (claim 1/3 = 0.333 plus polylog). Stretch 1.0 here is "
               "expected: on these small-diameter graphs the T_B-deep local "
               "exploration already covers every pair exactly — the paper's "
               "own min(D, complexity) remark. The approximation regime "
               "needs D >> T_B; see E4b.\n";

  print_section(
      "E4b — approximation regime (D >> T_B): long weighted paths, "
      "worst-case injected CLIQUE plug-ins");
  table t1b({"algorithm", "graph", "n", "rounds", "max stretch",
             "proven bound", "under-est"});
  // n = 6144 is past the result_storage::kAuto materialization cutoff;
  // measure() reads res.dist, so ask for the dense adapter explicitly
  // (8 × n rows — trivial at this size).
  sim_options dense_storage;
  dense_storage.storage = result_storage::kDense;
  for (u32 n : {4096u, 6144u}) {
    for (bool weighted : {false, true}) {
      const u64 w = weighted ? 16 : 1;
      const graph g = gen::path(n, w, 13 + n);
      std::vector<u32> sources = pick_sources(n, 8, 3 + n);
      {
        const auto alg = make_clique_kssp_1eps(0.25, injection::worst_case);
        const kssp_result res = hybrid_kssp(g, model_config{}, 31 + n,
                                            sources, alg, false, dense_storage);
        const stretch s = measure(res, g);
        const double bound =
            weighted ? res.bound_weighted : res.bound_unweighted;
        t1b.add_row({"CHKL19 (1+eps)", weighted ? "path W=16" : "path W=1",
                     table::integer(n),
                     table::integer(static_cast<long long>(res.metrics.rounds)),
                     table::num(s.max_ratio, 3), table::num(bound, 3),
                     table::integer(static_cast<long long>(s.underestimates))});
      }
      {
        const auto alg = make_clique_apsp_2eps(0.25, injection::worst_case);
        const kssp_result res = hybrid_kssp(g, model_config{}, 37 + n,
                                            sources, alg, false, dense_storage);
        const stretch s = measure(res, g);
        const double bound =
            weighted ? res.bound_weighted : res.bound_unweighted;
        t1b.add_row({"CHKL19 (2+eps,..)", weighted ? "path W=16" : "path W=1",
                     table::integer(n),
                     table::integer(static_cast<long long>(res.metrics.rounds)),
                     table::num(s.max_ratio, 3), table::num(bound, 3),
                     table::integer(static_cast<long long>(s.underestimates))});
      }
    }
  }
  t1b.print();
  std::cout << "\n(stretch now strictly > 1 and still within the proven "
               "bound: Theorem 4.1's error amplification measured end-to-"
               "end under contract-edge CLIQUE outputs)\n";

  print_section(
      "E5 / Thm 1.2 row 2 (Cor 4.7) — arbitrary k, (7+eps) weighted / "
      "(2+eps) unweighted");
  table t2({"graph", "n", "k", "rounds", "max stretch", "proven bound",
            "under-est"});
  const u32 n2 = 1024;
  for (u32 k : {8, 32, 128}) {
    for (bool weighted : {false, true}) {
      const u64 w = weighted ? 16 : 1;
      const graph g = gen::erdos_renyi_connected(n2, 6.0, w, 60 + k);
      const auto alg = make_clique_apsp_2eps(0.25, injection::worst_case);
      const kssp_result res = hybrid_kssp(g, model_config{}, 23 + k,
                                          pick_sources(n2, k, 5 + k), alg);
      const stretch s = measure(res, g);
      const double bound =
          weighted ? res.bound_weighted : res.bound_unweighted;
      t2.add_row({weighted ? "ER W=16" : "ER W=1", table::integer(n2),
                  table::integer(k),
                  table::integer(static_cast<long long>(res.metrics.rounds)),
                  table::num(s.max_ratio, 3), table::num(bound, 3),
                  table::integer(static_cast<long long>(s.underestimates))});
    }
  }
  t2.print();

  print_section(
      "E6 / Thm 1.2 row 3 (Cor 4.8) — algebraic CLIQUE APSP, (3+o(1)) "
      "weighted");
  table t3({"n", "k", "T_A(clique)", "rounds", "max stretch",
            "proven bound", "under-est"});
  for (u32 n : {256, 512, 1024}) {
    const graph g = gen::erdos_renyi_connected(n, 6.0, 16, 80 + n);
    const u32 k = static_cast<u32>(std::cbrt(static_cast<double>(n)));
    const auto alg = make_clique_apsp_algebraic(0.1, injection::worst_case);
    kssp_result res;
    const double ms = timed_ms([&] {
      res = hybrid_kssp(g, model_config{}, 29 + n, pick_sources(n, k, 9 + n),
                        alg);
    });
    const stretch s = measure(res, g);
    rec.add("cor48_algebraic", {{"n", n},
                                {"k", k},
                                {"rounds", res.metrics.rounds},
                                {"messages", res.metrics.global_messages},
                                {"wall_ms", ms},
                                {"max_stretch", s.max_ratio}});
    t3.add_row({table::integer(n), table::integer(k),
                table::integer(static_cast<long long>(res.clique_rounds)),
                table::integer(static_cast<long long>(res.metrics.rounds)),
                table::num(s.max_ratio, 3),
                table::num(res.bound_weighted, 3),
                table::integer(static_cast<long long>(s.underestimates))});
  }
  t3.print();
  std::cout << "\nall rows: max stretch <= proven bound and zero "
               "underestimates reproduce Theorem 1.2's guarantees.\n";
  return rec.write() ? 0 : 1;
}
