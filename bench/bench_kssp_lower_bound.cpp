// E10 — Theorem 1.5 / Figure 1: the Ω̃(√k) lower bound for k-SSP.
//
// Three reproducible pieces:
//   (a) the construction's distance gap: d(b, S2)/d(b, S1) = α' ∈ Θ(n/√k),
//       so any α ≤ α' approximation must separate the random S1/S2 split;
//   (b) the information bottleneck arithmetic: b must learn Ω(k) bits (the
//       split's entropy); everything it learns within < L rounds crossed
//       into the path through the global mode, whose capacity is
//       O(L·log² n) bits/round — implied LB ≈ k/(L·log² n) ∈ Θ̃(√k) rounds;
//   (c) consistency: running this paper's own k-SSP algorithm (Cor 4.7) on
//       the construction measures an upper bound that sits above the curve,
//       and the simulator's cut instrumentation confirms ≥ k bits of global
//       traffic actually crossed towards b's side.
#include <cmath>
#include <iostream>

#include "core/kssp_framework.hpp"
#include "graph/shortest_paths.hpp"
#include "lb/kssp_lb_graph.hpp"
#include "util/bench_io.hpp"
#include "util/table.hpp"

int main(int argc, char** argv) {
  using namespace hybrid;
  bench_recorder rec(argc, argv, "bench_kssp_lower_bound");

  print_section("E10 / Theorem 1.5, Figure 1 — k-SSP lower bound family");
  std::cout << "instance: path of Theta(n) hops, k sources split randomly "
               "between hop L = ceil(sqrt(k)) and the far end.\n";

  table t({"k", "L", "n", "alpha'=d2/d1", "entropy[bits]",
           "cut cap [bits/rd]", "implied LB rounds"});
  for (u32 k : {16, 64, 256, 1024}) {
    const u32 l = static_cast<u32>(std::ceil(std::sqrt(k)));
    const u32 path_len = 16 * l;
    rng r(k);
    const lb::kssp_lb_graph inst = lb::build_kssp_lb({path_len, k, l}, r);
    const u32 n = inst.g.num_nodes();
    const double logn = id_bits(n);
    // Entropy of the S1/S2 split ≈ k bits; global capacity of the L path
    // nodes on b's side ≈ L·γ·(payload+header) bits per round.
    const double entropy = k;
    const double cap = l * 4.0 * logn * (3 * 64 + 2 * logn);
    t.add_row({table::integer(k), table::integer(l), table::integer(n),
               table::num(inst.alpha_prime(), 1), table::num(entropy, 0),
               table::num(cap, 0), table::num(entropy / cap, 3)});
  }
  t.print();
  std::cout << "\n(implied LB = entropy / capacity ~ sqrt(k)/polylog — "
               "sub-round at simulation scale, the asymptotic shape is in "
               "the next table; alpha' = Theta(n/sqrt(k)) reproduces the "
               "approximation-hardness threshold of Theorem 1.5)\n";

  print_section("E10a' — asymptotic tightness: LB Omega~(sqrt k) vs UB "
                "Õ(n^{1/3} + sqrt k) (Thm 1.2 row 2)");
  table ta({"n", "k", "LB sqrt(k)/log^2 n", "UB n^{1/3}+sqrt(k)",
            "UB/LB (log^2 n factor)"});
  for (double n : {1e6, 1e8}) {
    const double logn = std::log2(n);
    for (double ke : {2.0 / 3.0, 0.8, 1.0}) {
      const double k = std::pow(n, ke);
      const double lb = std::sqrt(k) / (logn * logn);
      const double ub = std::cbrt(n) + std::sqrt(k);
      ta.add_row({table::num(n, 0), table::num(k, 0), table::num(lb, 1),
                  table::num(ub, 1), table::num(ub / lb, 1)});
    }
  }
  ta.print();
  std::cout << "\n(for k >= n^{2/3} the ratio is exactly the polylog — "
               "Theorem 1.5 makes the k-SSP algorithms of Theorem 1.2 "
               "near-tight for large k)\n";

  print_section("E10b — consistency: this paper's k-SSP (Cor 4.7) run on "
                "the LB family, Alice/Bob cut instrumented");
  table t2({"k", "n", "measured rounds", "sqrt(k)", "rounds/sqrt(k)",
            "cut-crossing global bits", ">= entropy k"});
  for (u32 k : {16u, 64u, 144u}) {
    const u32 l = static_cast<u32>(std::ceil(std::sqrt(k)));
    const u32 path_len = 16 * l;
    rng r(k + 1);
    const lb::kssp_lb_graph inst = lb::build_kssp_lb({path_len, k, l}, r);

    // Run the real algorithm with the Figure-1 cut registered (the first L
    // path nodes — b's side — vs. everything else).
    model_config cfg;
    cfg.cut_side = inst.path_cut();
    const auto alg = make_clique_apsp_2eps(0.25, injection::none);
    const kssp_result res = hybrid_kssp(inst.g, cfg, 5, inst.sources, alg);

    const double sqrt_k = std::sqrt(static_cast<double>(k));
    rec.add("lb_consistency", {{"k", k},
                               {"n", inst.g.num_nodes()},
                               {"rounds", res.metrics.rounds},
                               {"messages", res.metrics.global_messages},
                               {"cut_bits", res.metrics.cut_bits}});
    t2.add_row({table::integer(k), table::integer(inst.g.num_nodes()),
                table::integer(static_cast<long long>(res.metrics.rounds)),
                table::num(sqrt_k, 1),
                table::num(res.metrics.rounds / sqrt_k, 1),
                table::integer(static_cast<long long>(res.metrics.cut_bits)),
                res.metrics.cut_bits >= k ? "yes" : "NO"});
  }
  t2.print();

  std::cout << "\n(measured rounds sit above the sqrt(k) floor — consistent "
               "with the lower bound (the UB includes the Õ(n^{1/3}) "
               "framework terms); crossing bits >= k confirms the split's "
               "entropy really flowed through the bottleneck)\n";
  return rec.write() ? 0 : 1;
}
