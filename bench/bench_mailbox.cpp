// Mailbox delivery microbench: flat-arena counting-sort delivery
// (sim/mailbox.hpp, what hybrid_net uses) vs the PR-2 vector-of-vectors
// baseline, on the same γ-saturated random-destination workload.
//
// Reports heap allocations per simulated round (counted by replacing
// operator new — bench/alloc_counter.hpp), delivery wall-clock, and message
// throughput; asserts both implementations deliver bit-identical inboxes
// and that the flat arena allocates at least 2x less per round. Usage:
//
//   bench_mailbox [n] [rounds] [--json <path>]
#include "alloc_counter.hpp"

#include <algorithm>
#include <cstdlib>
#include <iostream>
#include <vector>

#include "graph/generators.hpp"
#include "sim/hybrid_net.hpp"
#include "util/assert.hpp"
#include "util/bench_io.hpp"
#include "util/table.hpp"

namespace {

using namespace hybrid;

// Deterministic workload: node v's i-th send in round r goes to pseudo-
// random dst(v, i, r); both implementations replay the same sends.
u32 send_dst(u32 n, u32 v, u32 i, u32 r) {
  return static_cast<u32>(derive_seed(derive_seed(v, i), r) % n);
}

// The pre-flat-arena mailbox, verbatim PR-2 semantics: per-node outbox and
// inbox vectors, sequential O(total messages) delivery scan at the barrier.
struct vecvec_mailbox {
  explicit vecvec_mailbox(u32 n) : inbox(n), outbox(n), sends(n, 0) {}

  void send(const global_msg& m) {
    ++sends[m.src];
    outbox[m.src].push_back(m);
  }

  void advance_round() {
    for (auto& box : inbox) box.clear();
    for (u32& s : sends) s = 0;
    for (auto& out : outbox) {
      for (const global_msg& m : out) inbox[m.dst].push_back(m);
      out.clear();
    }
  }

  std::vector<std::vector<global_msg>> inbox;
  std::vector<std::vector<global_msg>> outbox;
  std::vector<u32> sends;
};

u64 digest_msg(u64 h, const global_msg& m) {
  for (u64 x : {u64{m.src}, u64{m.dst}, u64{m.tag}, m.w[0]})
    h = derive_seed(h, x);
  return h;
}

struct run_result {
  double wall_ms = 0;
  u64 allocs = 0;
  u64 messages = 0;
  u64 digest = 0;
};

run_result run_vecvec(u32 n, u32 cap, u32 rounds) {
  run_result res;
  const auto alloc0 = benchalloc::allocations();
  res.wall_ms = timed_ms([&] {
    vecvec_mailbox mail(n);
    for (u32 r = 0; r < rounds; ++r) {
      for (u32 v = 0; v < n; ++v)
        for (u32 i = 0; i < cap; ++i)
          mail.send(global_msg::make(v, send_dst(n, v, i, r), i, {u64{v}}));
      mail.advance_round();
      res.messages += u64{n} * cap;
      for (u32 v = 0; v < n; ++v)
        for (const global_msg& m : mail.inbox[v])
          res.digest = digest_msg(res.digest, m);
    }
  });
  res.allocs = benchalloc::allocations() - alloc0;
  return res;
}

run_result run_flat(const graph& g, u32 rounds, u32 threads) {
  run_result res;
  const u32 n = g.num_nodes();
  const auto alloc0 = benchalloc::allocations();
  res.wall_ms = timed_ms([&] {
    hybrid_net net(g, model_config{}, 1, sim_options{threads});
    const u32 cap = net.global_cap();
    for (u32 r = 0; r < rounds; ++r) {
      net.executor().for_nodes(n, [&](u32 v) {
        for (u32 i = 0; i < cap; ++i)
          net.try_send_global(
              global_msg::make(v, send_dst(n, v, i, r), i, {u64{v}}));
      });
      net.advance_round();
      res.messages += u64{n} * cap;
      for (u32 v = 0; v < n; ++v)
        for (const global_msg& m : net.global_inbox(v))
          res.digest = digest_msg(res.digest, m);
    }
  });
  res.allocs = benchalloc::allocations() - alloc0;
  return res;
}

}  // namespace

int main(int argc, char** argv) {
  bench_recorder rec(argc, argv, "bench_mailbox");
  std::vector<u32> sizes;
  for (int i = 1; i < argc && argv[i][0] != '-'; ++i)
    sizes.push_back(static_cast<u32>(std::atoi(argv[i])));
  const u32 n = sizes.size() > 0 ? sizes[0] : 2048;
  const u32 rounds = sizes.size() > 1 ? sizes[1] : 100;

  const graph g = gen::erdos_renyi_connected(n, 4.0, 1, 3);
  // γ as hybrid_net computes it; the vecvec baseline replays the same sends.
  const u32 cap = hybrid_net(g, model_config{}, 1).global_cap();

  print_section("Mailbox delivery — flat arena vs vector-of-vectors");
  std::cout << "n = " << n << ", γ = " << cap << ", rounds = " << rounds
            << "; every node saturates its γ budget each round\n\n";

  const run_result vecvec = run_vecvec(n, cap, rounds);
  const run_result flat1 = run_flat(g, rounds, 1);
  HYB_INVARIANT(flat1.digest == vecvec.digest && flat1.messages == vecvec.messages,
                "flat delivery diverged from the vector-of-vectors baseline");

  table t({"impl", "threads", "wall ms", "Mmsg/s", "allocs", "allocs/round"});
  auto row = [&](const char* impl, u32 threads, const run_result& r) {
    const double mmsgs =
        static_cast<double>(r.messages) / 1e3 / std::max(r.wall_ms, 1e-6);
    const double apr = static_cast<double>(r.allocs) / rounds;
    t.add_row({impl, table::integer(threads), table::num(r.wall_ms, 1),
               table::num(mmsgs, 2),
               table::integer(static_cast<long long>(r.allocs)),
               table::num(apr, 2)});
    rec.add(impl, {{"n", n},
                   {"threads", threads},
                   {"rounds", rounds},
                   {"messages", r.messages},
                   {"wall_ms", r.wall_ms},
                   {"mmsgs_per_sec", mmsgs},
                   {"allocs", r.allocs},
                   {"allocs_per_round", apr}});
  };
  row("vecvec", 1, vecvec);
  row("flat", 1, flat1);
  HYB_INVARIANT(vecvec.allocs >= 2 * flat1.allocs,
                "flat arena should allocate at least 2x less per round");

  // Parallel delivery: same workload, counting sort across threads.
  for (u32 threads : {2u, 8u}) {
    const run_result r = run_flat(g, rounds, threads);
    HYB_INVARIANT(r.digest == vecvec.digest,
                  "thread count changed delivered inboxes");
    row("flat", threads, r);
  }
  t.print();
  std::cout << "\nalloc ratio (vecvec / flat @1 thread): "
            << static_cast<double>(vecvec.allocs) /
                   std::max<u64>(flat1.allocs, 1)
            << "x\n";

  if (!rec.write()) {
    std::cerr << "failed to write --json output\n";
    return 1;
  }
  return 0;
}
