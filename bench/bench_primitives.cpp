// E12 — primitive complexities (google-benchmark):
//   Lemma 2.1: ruling set in O(µ log n) rounds;
//   Lemma 2.2: helper sets in O(µ log n) rounds;
//   Lemma B.1: token dissemination in Õ(√k + ℓ) rounds;
//   Lemma B.2: aggregation in O(log n) rounds;
//   Appendix D: k-wise hash evaluation throughput.
// Simulated round counts are exported as counters next to wall time.
#include <benchmark/benchmark.h>

#include <cmath>

#include "graph/generators.hpp"
#include "hash/kwise.hpp"
#include "proto/aggregation.hpp"
#include "proto/dissemination.hpp"
#include "proto/helper_sets.hpp"
#include "proto/ruling_set.hpp"

namespace {

using namespace hybrid;

void bm_ruling_set(benchmark::State& state) {
  const u32 n = 512;
  const u32 mu = static_cast<u32>(state.range(0));
  const graph g = gen::erdos_renyi_connected(n, 5.0, 1, 3);
  u64 rounds = 0;
  for (auto _ : state) {
    hybrid_net net(g, model_config{}, 7);
    compute_ruling_set(net, mu);
    rounds = net.round();
  }
  state.counters["sim_rounds"] = static_cast<double>(rounds);
  state.counters["mu_logn"] = static_cast<double>(mu) * id_bits(n);
}
BENCHMARK(bm_ruling_set)->Arg(2)->Arg(4)->Arg(8)->Arg(16);

void bm_helper_sets(benchmark::State& state) {
  const u32 n = 512;
  const u32 mu = static_cast<u32>(state.range(0));
  const graph g = gen::erdos_renyi_connected(n, 5.0, 1, 5);
  rng r(9);
  std::vector<u32> w;
  for (u32 v = 0; v < n; ++v)
    if (r.next_bool(1.0 / 16)) w.push_back(v);
  u64 rounds = 0;
  for (auto _ : state) {
    hybrid_net net(g, model_config{}, 11);
    compute_helpers(net, w, mu);
    rounds = net.round();
  }
  state.counters["sim_rounds"] = static_cast<double>(rounds);
}
BENCHMARK(bm_helper_sets)->Arg(2)->Arg(4)->Arg(8);

void bm_dissemination(benchmark::State& state) {
  const u32 n = 256;
  const u32 k = static_cast<u32>(state.range(0));
  const graph g = gen::erdos_renyi_connected(n, 5.0, 1, 13);
  u64 rounds = 0;
  for (auto _ : state) {
    hybrid_net net(g, model_config{}, 17);
    rng r(19);
    std::vector<std::vector<token2>> initial(n);
    for (u32 t = 0; t < k; ++t)
      initial[r.next_below(n)].push_back({t, t});
    disseminate(net, initial);
    rounds = net.round();
  }
  state.counters["sim_rounds"] = static_cast<double>(rounds);
  state.counters["sqrt_k"] = std::sqrt(static_cast<double>(k));
}
BENCHMARK(bm_dissemination)->Arg(16)->Arg(64)->Arg(256)->Arg(1024);

void bm_aggregation(benchmark::State& state) {
  const u32 n = static_cast<u32>(state.range(0));
  const graph g = gen::path(n);
  std::vector<u64> vals(n, 3);
  u64 rounds = 0;
  for (auto _ : state) {
    hybrid_net net(g, model_config{}, 23);
    global_aggregate(net, agg_op::max, vals);
    rounds = net.round();
  }
  state.counters["sim_rounds"] = static_cast<double>(rounds);
  state.counters["log2_n"] = static_cast<double>(id_bits(n));
}
BENCHMARK(bm_aggregation)->Arg(64)->Arg(512)->Arg(4096);

void bm_kwise_hash_eval(benchmark::State& state) {
  rng r(29);
  kwise_hash h(static_cast<u32>(state.range(0)), r);
  u64 x = 12345;
  for (auto _ : state) {
    x = h.eval(x);
    benchmark::DoNotOptimize(x);
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(bm_kwise_hash_eval)->Arg(4)->Arg(16)->Arg(64);

}  // namespace

BENCHMARK_MAIN();
