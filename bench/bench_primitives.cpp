// E12 — primitive complexities (self-timing, shared util/bench_io style):
//   Lemma 2.1: ruling set in O(µ log n) rounds;
//   Lemma 2.2: helper sets in O(µ log n) rounds;
//   Lemma B.1: token dissemination in Õ(√k + ℓ) rounds;
//   Lemma B.2: aggregation in O(log n) rounds;
//   Appendix D: k-wise hash evaluation throughput.
// Simulated round counts are printed next to the paper's bound terms so the
// asymptotics can be eyeballed from the tables; wall time is the best of
// kReps runs (the simulations are deterministic, so the minimum is the
// least-noise estimate). Usage:
//
//   bench_primitives [--json <path>]
#include <cmath>
#include <iostream>

#include "graph/generators.hpp"
#include "hash/kwise.hpp"
#include "proto/aggregation.hpp"
#include "proto/dissemination.hpp"
#include "proto/helper_sets.hpp"
#include "proto/ruling_set.hpp"
#include "util/bench_io.hpp"
#include "util/table.hpp"

namespace {

using namespace hybrid;

constexpr u32 kReps = 3;

/// Best-of-kReps wall time for a deterministic body.
double best_ms(const std::function<void()>& body) {
  double best = 0;
  for (u32 i = 0; i < kReps; ++i) {
    const double ms = timed_ms(body);
    if (i == 0 || ms < best) best = ms;
  }
  return best;
}

void bench_ruling_set(bench_recorder& rec) {
  const u32 n = 512;
  const graph g = gen::erdos_renyi_connected(n, 5.0, 1, 3);
  print_section("Ruling set (Lemma 2.1) — O(µ log n) rounds");
  table t({"mu", "sim rounds", "mu·log n", "wall ms"});
  for (u32 mu : {2u, 4u, 8u, 16u}) {
    u64 rounds = 0;
    const double ms = best_ms([&] {
      hybrid_net net(g, model_config{}, 7);
      compute_ruling_set(net, mu);
      rounds = net.round();
    });
    t.add_row({table::integer(mu), table::integer(static_cast<long long>(rounds)),
               table::integer(static_cast<long long>(mu) * id_bits(n)),
               table::num(ms, 2)});
    rec.add("ruling_set", {{"n", n},
                           {"mu", mu},
                           {"sim_rounds", rounds},
                           {"mu_logn", mu * id_bits(n)},
                           {"wall_ms", ms}});
  }
  t.print();
  std::cout << "\n";
}

void bench_helper_sets(bench_recorder& rec) {
  const u32 n = 512;
  const graph g = gen::erdos_renyi_connected(n, 5.0, 1, 5);
  rng r(9);
  std::vector<u32> w;
  for (u32 v = 0; v < n; ++v)
    if (r.next_bool(1.0 / 16)) w.push_back(v);
  print_section("Helper sets (Lemma 2.2) — O(µ log n) rounds");
  table t({"mu", "sim rounds", "wall ms"});
  for (u32 mu : {2u, 4u, 8u}) {
    u64 rounds = 0;
    const double ms = best_ms([&] {
      hybrid_net net(g, model_config{}, 11);
      compute_helpers(net, w, mu);
      rounds = net.round();
    });
    t.add_row({table::integer(mu), table::integer(static_cast<long long>(rounds)),
               table::num(ms, 2)});
    rec.add("helper_sets",
            {{"n", n}, {"mu", mu}, {"sim_rounds", rounds}, {"wall_ms", ms}});
  }
  t.print();
  std::cout << "\n";
}

void bench_dissemination(bench_recorder& rec) {
  const u32 n = 256;
  const graph g = gen::erdos_renyi_connected(n, 5.0, 1, 13);
  print_section("Token dissemination (Lemma B.1) — Õ(√k + ℓ) rounds");
  table t({"k", "sim rounds", "sqrt k", "wall ms"});
  for (u32 k : {16u, 64u, 256u, 1024u}) {
    u64 rounds = 0;
    const double ms = best_ms([&] {
      hybrid_net net(g, model_config{}, 17);
      rng r(19);
      std::vector<std::vector<token2>> initial(n);
      for (u32 tok = 0; tok < k; ++tok)
        initial[r.next_below(n)].push_back({tok, tok});
      disseminate(net, initial);
      rounds = net.round();
    });
    t.add_row({table::integer(k), table::integer(static_cast<long long>(rounds)),
               table::num(std::sqrt(static_cast<double>(k)), 1),
               table::num(ms, 2)});
    rec.add("dissemination",
            {{"n", n}, {"k", k}, {"sim_rounds", rounds}, {"wall_ms", ms}});
  }
  t.print();
  std::cout << "\n";
}

void bench_aggregation(bench_recorder& rec) {
  print_section("Global aggregation (Lemma B.2) — O(log n) rounds");
  table t({"n", "sim rounds", "log2 n", "wall ms"});
  for (u32 n : {64u, 512u, 4096u}) {
    const graph g = gen::path(n);
    std::vector<u64> vals(n, 3);
    u64 rounds = 0;
    const double ms = best_ms([&] {
      hybrid_net net(g, model_config{}, 23);
      global_aggregate(net, agg_op::max, vals);
      rounds = net.round();
    });
    t.add_row({table::integer(n), table::integer(static_cast<long long>(rounds)),
               table::integer(id_bits(n)), table::num(ms, 2)});
    rec.add("aggregation",
            {{"n", n}, {"sim_rounds", rounds}, {"log2_n", id_bits(n)},
             {"wall_ms", ms}});
  }
  t.print();
  std::cout << "\n";
}

void bench_kwise_hash(bench_recorder& rec) {
  print_section("k-wise hash evaluation (Appendix D) — throughput");
  table t({"independence", "evals", "wall ms", "Meval/s"});
  const u32 evals = 200000;
  for (u32 k : {4u, 16u, 64u}) {
    rng r(29);
    kwise_hash h(k, r);
    u64 sink = 12345;
    const double ms = best_ms([&] {
      u64 x = 12345;
      for (u32 i = 0; i < evals; ++i) x = h.eval(x);
      sink ^= x;  // keep the loop observable
    });
    const double meps = evals / 1e3 / std::max(ms, 1e-6);
    t.add_row({table::integer(k), table::integer(evals), table::num(ms, 2),
               table::num(meps, 2)});
    rec.add("kwise_hash_eval", {{"independence", k},
                                {"evals", evals},
                                {"wall_ms", ms},
                                {"mevals_per_sec", meps},
                                {"sink", sink & 0xff}});
  }
  t.print();
  std::cout << "\n";
}

}  // namespace

int main(int argc, char** argv) {
  bench_recorder rec(argc, argv, "bench_primitives");
  bench_ruling_set(rec);
  bench_helper_sets(rec);
  bench_dissemination(rec);
  bench_aggregation(rec);
  bench_kwise_hash(rec);
  if (!rec.write()) {
    std::cerr << "failed to write --json output\n";
    return 1;
  }
  return 0;
}
