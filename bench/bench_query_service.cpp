// Query service over the persistent oracle store (core/oracle_store.hpp):
// the "build once in the simulator, serve forever at memory-bus speed"
// regime. The n = 2048 oracle is built, saved, and mmap-loaded; a seeded
// mix of query / next_hop / route requests is then replayed against the
// mapped view from 1, 2, and 8 reader threads, with throughput and
// p50/p99 latency columns.
//
// Deterministic fields (gated by compare_bench_json.py --gate):
//   request_digest — FNV over the generated request stream;
//   result_digest  — order-insensitive sum of per-request result hashes,
//                    identical at every thread count by construction (and
//                    identical to an in-memory replay, asserted inline);
//   file_bytes / label_entries / rounds — the stored oracle's shape.
// Perf-only fields: *_per_sec, p50/p99_latency_ns, wall_ms.
//
// Usage: bench_query_service [requests] [--json <path>]
#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <iostream>
#include <thread>
#include <vector>

#include "core/apsp.hpp"
#include "core/oracle_store.hpp"
#include "graph/generators.hpp"
#include "util/assert.hpp"
#include "util/bench_io.hpp"
#include "util/rng.hpp"
#include "util/table.hpp"

namespace {

using namespace hybrid;

constexpr u64 kFnvOffset = 0xcbf29ce484222325ull;
constexpr u64 kFnvPrime = 0x100000001b3ull;

u64 fold(u64 state, u64 word) { return (state ^ word) * kFnvPrime; }

/// Fit a u64 digest into the exactly-representable double range the bench
/// JSON uses (xor-folded to 32 bits).
u32 digest32(u64 d) { return static_cast<u32>(d ^ (d >> 32)); }

enum class req_op : u8 { query, next_hop, route };

struct request {
  req_op op;
  u32 u;
  u32 v;
};

/// Seeded request mix: 60% query, 30% next_hop, 10% route.
std::vector<request> make_requests(u32 n, u64 count, u64 seed) {
  std::vector<request> reqs(count);
  rng r(seed);
  for (request& q : reqs) {
    const u64 op = r.next_below(10);
    q.op = op < 6 ? req_op::query : op < 9 ? req_op::next_hop : req_op::route;
    q.u = static_cast<u32>(r.next_below(n));
    q.v = static_cast<u32>(r.next_below(n));
  }
  return reqs;
}

u64 request_digest(const std::vector<request>& reqs) {
  u64 d = kFnvOffset;
  for (const request& q : reqs)
    d = fold(fold(fold(d, static_cast<u64>(q.op)), q.u), q.v);
  return d;
}

/// Serve one request; returns its result hash. Route = greedy forwarding
/// along next hops (with exact labels the remaining distance strictly
/// decreases, so ≤ n hops; unreachable pairs stop at the ~0 hop).
u64 serve(const label_view& v, const request& q) {
  switch (q.op) {
    case req_op::query:
      return fold(kFnvOffset, v.query(q.u, q.v));
    case req_op::next_hop:
      return fold(kFnvOffset, v.next_hop(q.u, q.v));
    case req_op::route: {
      u32 at = q.u;
      u64 hops = 0;
      while (at != q.v && hops <= v.n) {
        const u32 nh = v.next_hop(at, q.v);
        if (nh == ~u32{0}) break;
        at = nh;
        ++hops;
      }
      return fold(fold(kFnvOffset, hops), at);
    }
  }
  return 0;
}

struct leg_result {
  u64 result_digest = 0;  ///< sum of per-request hashes: order-insensitive
  double wall_ms = 0;
  double per_sec = 0;
  double p50_ns = 0;
  double p99_ns = 0;
};

/// Replay the full stream across `threads` contiguous chunks (bulk pass,
/// for throughput and the digest), then time a strided sample of requests
/// individually on one thread for the latency percentiles.
leg_result replay(const label_view& view, const std::vector<request>& reqs,
                  u32 threads) {
  leg_result out;
  std::vector<u64> partial(threads, 0);
  out.wall_ms = timed_ms([&] {
    std::vector<std::thread> pool;
    const u64 chunk = ceil_div(reqs.size(), threads);
    for (u32 t = 0; t < threads; ++t) {
      const u64 lo = std::min<u64>(reqs.size(), t * chunk);
      const u64 hi = std::min<u64>(reqs.size(), lo + chunk);
      pool.emplace_back([&view, &reqs, &partial, t, lo, hi] {
        u64 sum = 0;
        for (u64 i = lo; i < hi; ++i) sum += serve(view, reqs[i]);
        partial[t] = sum;
      });
    }
    for (auto& th : pool) th.join();
  });
  for (const u64 p : partial) out.result_digest += p;
  out.per_sec = static_cast<double>(reqs.size()) / (out.wall_ms / 1000.0);

  // Latency sample: every k-th request, timed individually.
  const u64 stride = std::max<u64>(1, reqs.size() / 50000);
  std::vector<double> lat;
  lat.reserve(reqs.size() / stride + 1);
  volatile u64 sink = 0;
  for (u64 i = 0; i < reqs.size(); i += stride) {
    const auto t0 = std::chrono::steady_clock::now();
    sink = sink + serve(view, reqs[i]);
    const auto t1 = std::chrono::steady_clock::now();
    lat.push_back(
        std::chrono::duration<double, std::nano>(t1 - t0).count());
  }
  const auto pct = [&lat](double p) {
    const size_t k = static_cast<size_t>(p * static_cast<double>(lat.size() - 1));
    std::nth_element(lat.begin(), lat.begin() + static_cast<std::ptrdiff_t>(k),
                     lat.end());
    return lat[k];
  };
  out.p99_ns = pct(0.99);
  out.p50_ns = pct(0.50);
  return out;
}

}  // namespace

int main(int argc, char** argv) {
  bench_recorder rec(argc, argv, "bench_query_service");
  u64 total_requests = 2000000;
  for (int i = 1; i < argc && argv[i][0] != '-'; ++i)
    total_requests = static_cast<u64>(std::atoll(argv[i]));

  print_section(
      "query service — persistent mmap-ed oracle, concurrent readers "
      "(core/oracle_store.hpp)");

  // ---- build once ----------------------------------------------------------
  const u32 n = 2048;
  const graph g = gen::erdos_renyi_connected(n, 6.0, 16, 1000 + n);
  sim_options o;
  o.storage = result_storage::kLabels;
  apsp_result built;
  const double build_ms = timed_ms(
      [&] { built = hybrid_apsp_exact(g, model_config{}, 7 + n, true, o); });

  // ---- save + zero-copy load ----------------------------------------------
  const std::string path = "/tmp/bench_query_service_oracle.bin";
  const double save_ms = timed_ms([&] { save_oracle(built.labels, path); });
  mapped_oracle oracle;
  const double load_ms = timed_ms([&] {
    oracle = mapped_oracle::load(path);
    oracle.attach_topology(g);
  });
  const u64 file_bytes = oracle.header().file_bytes;
  std::cout << "built n=" << n << " oracle in " << table::num(build_ms, 0)
            << " ms; saved " << file_bytes / 1000000 << " MB in "
            << table::num(save_ms, 0) << " ms; mmap-load+validate in "
            << table::num(load_ms, 1) << " ms\n\n";

  // Round-trip identity: the mapped view must answer every sampled request
  // exactly like the in-memory oracle (the store suite proves all pairs;
  // this inline guard keeps the bench honest about what it serves).
  {
    const std::vector<request> sample = make_requests(n, 20000, 99);
    u64 mem = 0;
    u64 mapped = 0;
    const label_view mem_view = built.labels.view();
    for (const request& q : sample) {
      mem += serve(mem_view, q);
      mapped += serve(oracle.view(), q);
    }
    HYB_INVARIANT(mem == mapped,
                  "mapped oracle diverged from the in-memory labels");
  }
  rec.add("round_trip", {{"n", n},
                         {"h", built.labels.h},
                         {"rounds", built.metrics.rounds},
                         {"label_entries", built.labels.label_entries()},
                         {"file_bytes", file_bytes},
                         {"build_wall_ms", build_ms},
                         {"save_wall_ms", save_ms},
                         {"load_wall_ms", load_ms}});

  // ---- pure single-thread query throughput ---------------------------------
  // The acceptance floor: ≥ 1 M query()/sec from one thread on the mapped
  // n = 2048 oracle.
  {
    rng r(31);
    const u64 queries = std::max<u64>(total_requests, 1000000);
    std::vector<std::pair<u32, u32>> pairs(queries);
    for (auto& [u, v] : pairs) {
      u = static_cast<u32>(r.next_below(n));
      v = static_cast<u32>(r.next_below(n));
    }
    u64 digest = 0;
    const label_view& view = oracle.view();
    const double ms = timed_ms([&] {
      for (const auto& [u, v] : pairs)
        digest += fold(kFnvOffset, view.query(u, v));
    });
    const double qps = static_cast<double>(queries) / (ms / 1000.0);
    std::cout << "pure query()  : " << table::num(qps / 1e6, 2)
              << " M queries/sec single-thread (" << table::num(ms * 1e6 / static_cast<double>(queries), 0)
              << " ns/query)\n";
    HYB_INVARIANT(qps >= 1e6,
                  "mapped oracle below the 1 M queries/sec acceptance floor");
    rec.add("pure_query", {{"n", n},
                           {"queries", queries},
                           {"result_digest", digest32(digest)},
                           {"queries_per_sec", qps}});
  }

  // ---- mixed request service, 1/2/8 reader threads -------------------------
  const std::vector<request> reqs = make_requests(n, total_requests, 4242);
  const u64 req_digest = request_digest(reqs);
  table t({"threads", "requests", "req/sec", "p50 ns", "p99 ns", "digest"});
  u64 reference_digest = 0;
  for (u32 threads : {1u, 2u, 8u}) {
    const leg_result leg = replay(oracle.view(), reqs, threads);
    if (threads == 1) reference_digest = leg.result_digest;
    HYB_INVARIANT(leg.result_digest == reference_digest,
                  "result digest changed with the reader thread count");
    t.add_row({table::integer(threads),
               table::integer(static_cast<long long>(reqs.size())),
               table::num(leg.per_sec, 0), table::num(leg.p50_ns, 0),
               table::num(leg.p99_ns, 0),
               table::integer(digest32(leg.result_digest))});
    rec.add("query_service", {{"threads", threads},
                              {"n", n},
                              {"h", built.labels.h},
                              {"requests", reqs.size()},
                              {"request_digest", digest32(req_digest)},
                              {"result_digest", digest32(leg.result_digest)},
                              {"requests_per_sec", leg.per_sec},
                              {"p50_latency_ns", leg.p50_ns},
                              {"p99_latency_ns", leg.p99_ns},
                              {"wall_ms", leg.wall_ms}});
  }
  t.print();
  std::cout << "\nmix: 60% query, 30% next_hop, 10% route (greedy "
               "forwarding to the target); digests are thread-count "
               "invariant and gated vs bench/baseline.\n";

  std::remove(path.c_str());
  return rec.write() ? 0 : 1;
}
