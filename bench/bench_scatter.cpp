// Delivery-scatter microbench: isolates the flat_mailbox counting-sort
// kernel (sim/mailbox.hpp) — the count → prefix → scatter passes that
// dominate a message-bound round — with the push loops and verification
// scans kept OUTSIDE the timed region, so the reported wall-clock is the
// deliver() call alone. bench_mailbox measures the whole round loop end to
// end; this bench is the profiler's view of the kernel itself.
//
// Three workload shapes, each swept over threads {1, 2, 8}:
//   * uniform  — every node sends `fan` messages to hash-random dsts (the
//     γ-saturated delivery shape of bench_executor_scaling);
//   * hotspot  — 50 % of traffic converges on 1 % of the nodes (stresses
//     the histogram's hot columns and the slice imbalance in the scatter);
//   * filtered — uniform plus a pure hash drop filter at p = 0.1 (the
//     fault-injection path: key-stream extraction, sentinel column, trash
//     region — docs/FAULTS.md).
//
// Deterministic gated fields (bench/baseline/BENCH_scatter.json):
//   * inbox_digest32 — 32 low bits of an order-insensitive fold over every
//     delivered inbox, asserted identical across thread counts inline;
//   * zero_alloc_rounds — timed rounds that performed zero heap
//     allocations; the steady-state-allocation-free contract says ALL of
//     them, and a regression here is an algorithm change, not noise.
// Perf fields (deliver_wall_ms, mmsgs_per_sec, allocs_per_round) report
// deltas only. Usage:
//
//   bench_scatter [n] [fan] [rounds] [--json <path>]
#include "alloc_counter.hpp"

#include <chrono>
#include <cstdlib>
#include <iostream>
#include <vector>

#include "sim/hybrid_net.hpp"
#include "sim/mailbox.hpp"
#include "util/assert.hpp"
#include "util/bench_io.hpp"
#include "util/table.hpp"

namespace {

using namespace hybrid;

constexpr u32 kThreadCounts[] = {1, 2, 8};
constexpr u32 kWarmupRounds = 4;

/// Deterministic workload: node v's i-th send in round r. `hot` routes
/// half the traffic to the first max(1, n/100) nodes.
u32 send_dst(u32 n, u32 v, u32 i, u32 r, bool hot) {
  const u64 x = derive_seed(derive_seed(v, i), r);
  if (hot && (x & 1) == 0) return static_cast<u32>((x >> 1) % std::max(1u, n / 100));
  return static_cast<u32>(x % n);
}

/// Pure drop predicate (the fault path's shape): ~10 % of messages.
bool hash_drop(u32 src, u32 idx, const global_msg& m) {
  return derive_seed(derive_seed(src, idx), m.w[0]) % 10 == 0;
}

struct run_result {
  double deliver_ms = 0;  ///< wall time inside deliver() only
  u64 messages = 0;       ///< pushes over the timed rounds
  u64 delivered = 0;
  u64 timed_allocs = 0;   ///< heap allocations during the timed rounds
  u64 zero_alloc_rounds = 0;
  u64 digest = 0;
};

run_result run_kernel(u32 n, u32 fan, u32 rounds, u32 threads, bool hot,
                      bool filtered) {
  run_result res;
  round_executor exec(sim_options{threads});
  // Small initial stride so the warm-up exercises the re-stride path the
  // simulators rely on; steady state must then be allocation-free.
  flat_mailbox<global_msg> mail(n, fan, /*initial_stride=*/8);
  const flat_mailbox<global_msg>::drop_filter drop = hash_drop;
  const auto push_round = [&](u32 r) {
    exec.for_nodes(n, [&](u32 v) {
      for (u32 i = 0; i < fan; ++i)
        mail.push(global_msg::make(v, send_dst(n, v, i, r, hot), i,
                                   {(u64{v} << 32) | i}));
    });
  };
  for (u32 r = 0; r < kWarmupRounds; ++r) {
    push_round(r);
    mail.deliver(exec, filtered ? &drop : nullptr);
  }
  for (u32 r = kWarmupRounds; r < kWarmupRounds + rounds; ++r) {
    push_round(r);
    res.messages += u64{n} * fan;
    // Timed without timed_ms: its std::function parameter would charge a
    // heap allocation to the kernel and break the zero-alloc invariant.
    const u64 alloc0 = benchalloc::allocations();
    const auto t0 = std::chrono::steady_clock::now();
    mail.deliver(exec, filtered ? &drop : nullptr);
    res.deliver_ms += std::chrono::duration<double, std::milli>(
                          std::chrono::steady_clock::now() - t0)
                          .count();
    const u64 allocs = benchalloc::allocations() - alloc0;
    res.timed_allocs += allocs;
    res.zero_alloc_rounds += allocs == 0;
    res.delivered += mail.delivered_last_round();
    // Order-insensitive per-inbox fold (outside the timed region).
    res.digest += exec.sum_nodes(n, [&](u32 v) {
      u64 h = v + 1;
      for (const global_msg& m : mail.inbox(v))
        h = derive_seed(h, (u64{m.src} << 32) ^ m.w[0]);
      return h;
    });
  }
  return res;
}

}  // namespace

int main(int argc, char** argv) {
  bench_recorder rec(argc, argv, "bench_scatter");
  std::vector<u32> sizes;
  for (int i = 1; i < argc && argv[i][0] != '-'; ++i)
    sizes.push_back(static_cast<u32>(std::atoi(argv[i])));
  const u32 n = sizes.size() > 0 ? sizes[0] : 4096;
  const u32 fan = sizes.size() > 1 ? sizes[1] : 32;
  const u32 rounds = sizes.size() > 2 ? sizes[2] : 40;

  print_section("Delivery scatter kernel — deliver() wall-clock only");
  std::cout << "n = " << n << ", fan = " << fan << ", timed rounds = "
            << rounds << " (+" << kWarmupRounds << " warm-up)\n\n";

  table t({"workload", "threads", "deliver ms", "Mmsg/s", "allocs/round",
           "zero-alloc rounds", "digest32"});
  for (const auto& [name, hot, filtered] :
       {std::tuple{"uniform", false, false}, {"hotspot", true, false},
        {"filtered", false, true}}) {
    u64 base_digest = 0, base_delivered = 0;
    for (u32 threads : kThreadCounts) {
      const run_result r = run_kernel(n, fan, rounds, threads, hot, filtered);
      if (threads == kThreadCounts[0]) {
        base_digest = r.digest;
        base_delivered = r.delivered;
      }
      HYB_INVARIANT(r.digest == base_digest && r.delivered == base_delivered,
                    "thread count changed delivered inboxes");
      const double mmsgs = static_cast<double>(r.delivered) / 1e3 /
                           std::max(r.deliver_ms, 1e-6);
      const double apr = static_cast<double>(r.timed_allocs) / rounds;
      const u64 digest32 = r.digest & 0xFFFFFFFFu;
      t.add_row({name, table::integer(threads), table::num(r.deliver_ms, 2),
                 table::num(mmsgs, 2), table::num(apr, 2),
                 table::integer(static_cast<long long>(r.zero_alloc_rounds)),
                 table::integer(static_cast<long long>(digest32))});
      rec.add(name, {{"n", n},
                     {"fan", fan},
                     {"threads", threads},
                     {"rounds", rounds},
                     {"messages", r.messages},
                     {"delivered", r.delivered},
                     {"deliver_wall_ms", r.deliver_ms},
                     {"mmsgs_per_sec", mmsgs},
                     {"allocs_per_round", apr},
                     {"zero_alloc_rounds", r.zero_alloc_rounds},
                     {"inbox_digest32", digest32}});
    }
  }
  t.print();

  if (!rec.write()) {
    std::cerr << "failed to write --json output\n";
    return 1;
  }
  return 0;
}
