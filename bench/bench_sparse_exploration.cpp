// Sparse exploration at scale: the n = 10⁵ bounded-degree workload the
// dense path cannot touch (its n² distance matrix alone would be ~80 GB),
// plus a small-instance differential scenario asserting the sparse and
// dense paths produce bit-identical triples and metrics.
//
// Reports rounds, local traffic, reached-set totals (Σ|ball_h(v)| — the
// quantity that bounds sparse memory), wall-clock, heap allocations per
// round (bench/alloc_counter.hpp), and process peak RSS; asserts the large
// run stays orders of magnitude under the dense equivalent. Usage:
//
//   bench_sparse_exploration [n] [h] [--json <path>]
#include "alloc_counter.hpp"
#include "peak_rss.hpp"

#include <algorithm>
#include <cstdlib>
#include <iostream>

#include "graph/generators.hpp"
#include "proto/sparse_exploration.hpp"
#include "util/assert.hpp"
#include "util/bench_io.hpp"
#include "util/table.hpp"

namespace {

using namespace hybrid;
using benchrss::peak_rss_mb;
using benchrss::reset_peak_rss;

struct explo_run {
  sparse_exploration_result res;
  run_metrics m;
  double wall_ms = 0;
  u64 allocs = 0;
  double peak_mb = 0;    ///< this run's own peak (water mark reset per run)
  bool peak_valid = false;  ///< reset took; otherwise peak_mb is stale
};

explo_run run(const graph& g, u32 h, u32 threads, exploration_path path) {
  explo_run out;
  out.peak_valid = reset_peak_rss();
  const u64 alloc0 = benchalloc::allocations();
  out.wall_ms = timed_ms([&] {
    sim_options o;
    o.threads = threads;
    o.exploration = path;
    hybrid_net net(g, model_config{}, 1, o);
    out.res = run_local_exploration(net, h, /*advance_rounds=*/true);
    out.m = net.snapshot();
  });
  out.allocs = benchalloc::allocations() - alloc0;
  // A failed water-mark reset would make this read the previous run's
  // peak; keep the field absent rather than wrong.
  out.peak_mb = out.peak_valid ? peak_rss_mb() : 0.0;
  return out;
}

}  // namespace

int main(int argc, char** argv) {
  bench_recorder rec(argc, argv, "bench_sparse_exploration");
  std::vector<u32> sizes;
  for (int i = 1; i < argc && argv[i][0] != '-'; ++i)
    sizes.push_back(static_cast<u32>(std::atoi(argv[i])));
  const u32 n = sizes.size() > 0 ? sizes[0] : 100000;
  const u32 h = sizes.size() > 1 ? sizes[1] : 4;

  print_section("Sparse exploration — neighborhood-bounded vs dense");
  const u64 dense_equiv_mb = u64{n} * n * 8 / 1000000;
  std::cout << "n = " << n << ", degree <= 3, h = " << h
            << "; dense path would need ~" << dense_equiv_mb / 1000
            << " GB for its distance matrix alone\n\n";

  const graph big = gen::bounded_degree(n, 3, 1, 42);

  table t({"scenario", "threads", "rounds", "Mitems", "reached", "wall ms",
           "allocs/round", "peak MB"});
  auto row = [&](const char* name, u32 threads, const explo_run& r) {
    const double apr =
        static_cast<double>(r.allocs) / std::max<u64>(r.m.rounds, 1);
    t.add_row({name, table::integer(threads), table::integer(r.m.rounds),
               table::num(static_cast<double>(r.m.local_items) / 1e6, 2),
               table::integer(static_cast<long long>(r.res.total_reached())),
               table::num(r.wall_ms, 1), table::num(apr, 1),
               r.peak_valid ? table::num(r.peak_mb, 0) : "-"});
    std::vector<bench_field> fields = {
        {"n", r.res.offsets.size() - 1},
        {"h", h},
        {"threads", threads},
        {"rounds", r.m.rounds},
        {"messages", r.m.local_items},
        {"reached", r.res.total_reached()},
        {"wall_ms", r.wall_ms},
        {"allocs_per_round", apr}};
    if (r.peak_valid) fields.push_back({"peak_mem_mb", r.peak_mb});
    rec.add(name, std::move(fields));
  };

  u64 ball_total = 0;
  double large_peak = 0;
  {
    const explo_run large1 = run(big, h, 1, exploration_path::kSparse);
    row("sparse_large", 1, large1);
    const explo_run large8 = run(big, h, 8, exploration_path::kSparse);
    HYB_INVARIANT(large8.res == large1.res,
                  "thread count changed the sparse exploration result");
    HYB_INVARIANT(large8.m.rounds == large1.m.rounds &&
                      large8.m.local_items == large1.m.local_items,
                  "thread count changed charged rounds/traffic");
    row("sparse_large", 8, large8);
    ball_total = large1.res.total_reached();
    if (large1.peak_valid && large8.peak_valid)
      large_peak = std::max(large1.peak_mb, large8.peak_mb);
  }  // drop the large results so the differential rows report their own peak
  // The acceptance bound: memory stays O(Σ|ball_h(v)|), orders of magnitude
  // under the ~80 GB the dense matrices would need at n = 10⁵.
  if (large_peak > 0)
    HYB_INVARIANT(large_peak < 4096.0,
                  "sparse exploration exceeded the ball-bounded memory budget");

  // Small-instance differential: dense and sparse agree bit-for-bit, on
  // triples and on charged metrics.
  const u32 n_small = 2048;
  const graph small = gen::erdos_renyi_connected(n_small, 4.0, 6, 7);
  const explo_run dense = run(small, 6, 1, exploration_path::kDense);
  const explo_run sparse = run(small, 6, 1, exploration_path::kSparse);
  HYB_INVARIANT(dense.res == sparse.res,
                "sparse exploration diverged from the dense reference");
  HYB_INVARIANT(dense.m.rounds == sparse.m.rounds &&
                    dense.m.local_items == sparse.m.local_items,
                "sparse path charged different rounds/traffic than dense");
  row("differential_dense", 1, dense);
  row("differential_sparse", 1, sparse);
  t.print();

  std::cout << "\nΣ|ball_h(v)| = " << ball_total << " entries ("
            << ball_total * sizeof(exploration_entry) / 1000000
            << " MB flattened) vs dense " << dense_equiv_mb << " MB\n";

  if (!rec.write()) {
    std::cerr << "failed to write --json output\n";
    return 1;
  }
  return 0;
}
