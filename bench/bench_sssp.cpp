// E7 — Theorem 1.3: exact SSSP in Õ(n^{2/5}) rounds (framework of Theorem
// 4.1 with [7]'s exact CLIQUE SSSP, source summoned into the skeleton).
//
// Reproduced shape: fitted exponent ≈ 0.4; exactness on every family; the
// comparison the paper's intro makes — the AHKSS20 Õ(√SPD) algorithm is
// slower on graphs whose shortest-path diameter is large (weighted paths:
// SPD = Θ(n)) — shown as the predicted √SPD baseline curve next to our
// measured rounds.
#include <cmath>
#include <iostream>

#include "core/sssp.hpp"
#include "graph/diameter.hpp"
#include "graph/generators.hpp"
#include "graph/shortest_paths.hpp"
#include "util/bench_io.hpp"
#include "util/stats.hpp"
#include "util/table.hpp"

int main(int argc, char** argv) {
  using namespace hybrid;
  bench_recorder rec(argc, argv, "bench_sssp");

  print_section("E7 / Theorem 1.3 — exact SSSP scaling (claim n^{0.4})");
  std::cout << "graphs: weighted Erdős–Rényi (avg deg 6, W=16).\n";
  table t({"n", "rounds", "wrong", "|V_S|", "h", "T_A(clique)",
           "rounds/(n^0.4 ln n)"});
  std::vector<double> ns, rounds_v;
  for (u32 n : {256, 512, 1024, 2048, 4096}) {
    const graph g = gen::erdos_renyi_connected(n, 6.0, 16, 100 + n);
    sssp_result res;
    const double ms =
        timed_ms([&] { res = hybrid_sssp_exact(g, model_config{}, 3 + n, 0); });
    const auto ref = dijkstra(g, 0);
    u64 wrong = 0;
    for (u32 v = 0; v < n; ++v) wrong += (res.dist[v] != ref[v]);
    rec.add("er_scaling", {{"n", n},
                           {"rounds", res.metrics.rounds},
                           {"messages", res.metrics.global_messages},
                           {"wall_ms", ms},
                           {"wrong", wrong}});
    ns.push_back(n);
    rounds_v.push_back(static_cast<double>(res.metrics.rounds));
    const double pred = std::pow(n, 0.4) * std::log(n);
    t.add_row({table::integer(n),
               table::integer(static_cast<long long>(res.metrics.rounds)),
               table::integer(static_cast<long long>(wrong)),
               table::integer(res.skeleton_size), table::integer(res.h),
               table::integer(static_cast<long long>(
                   std::ceil(std::pow(res.skeleton_size, 1.0 / 6.0)))),
               table::num(res.metrics.rounds / pred, 1)});
  }
  t.print();
  const linear_fit f = loglog_exponent(ns, rounds_v);
  std::cout << "\nraw fitted exponent: n^" << table::num(f.slope, 3)
            << " (r2=" << table::num(f.r2, 3)
            << ") — at or below the claimed Õ(n^{0.4}); the bounded "
               "rounds/(n^0.4 ln n) column reproduces the upper bound's "
               "shape (global-phase terms grow slower, so the ratio drifts "
               "down, never up)\n";

  print_section(
      "E7b — large-SPD regime: measured rounds vs the AHKSS20 sqrt(SPD) "
      "prediction");
  std::cout << "weighted path graphs: SPD = n-1, so sqrt(SPD) grows as "
               "n^{0.5} while Theorem 1.3 stays at n^{0.4}.\n";
  table t2({"n", "SPD", "rounds(Thm1.3)", "wrong", "sqrt(SPD) (baseline "
            "shape)", "ratio rounds/sqrt(SPD)"});
  for (u32 n : {512, 1024, 2048, 4096}) {
    const graph g = gen::path(n, 16, 7 + n);
    sssp_result res;
    const double ms = timed_ms(
        [&] { res = hybrid_sssp_exact(g, model_config{}, 11 + n, 0); });
    rec.add("path_large_spd", {{"n", n},
                               {"rounds", res.metrics.rounds},
                               {"messages", res.metrics.global_messages},
                               {"wall_ms", ms}});
    const auto ref = dijkstra(g, 0);
    u64 wrong = 0;
    for (u32 v = 0; v < n; ++v) wrong += (res.dist[v] != ref[v]);
    const double spd = n - 1.0;  // unit-hop chain: every sp uses all hops
    t2.add_row({table::integer(n), table::integer(static_cast<long long>(spd)),
                table::integer(static_cast<long long>(res.metrics.rounds)),
                table::integer(static_cast<long long>(wrong)),
                table::num(std::sqrt(spd), 1),
                table::num(res.metrics.rounds / std::sqrt(spd), 2)});
  }
  t2.print();
  std::cout << "\n(the ratio column shrinking with n is the crossover: "
               "Õ(n^{2/5}) beats Õ(√SPD) once SPD = Θ(n))\n";
  return rec.write() ? 0 : 1;
}
