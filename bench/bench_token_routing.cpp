// E1 — Theorem 2.2: token routing runs in Õ(K/n + √k_S + √k_R) rounds,
// vs. Ω̃(√(k·|S|)) for routing by broadcasting everything (token
// dissemination, the tool available before this paper).
//
// Table 1: fixed workload shape, growing n — measured rounds vs. the
//          Õ(K/n + √k_S + √k_R) prediction, receive-load check (Lemma D.2).
// Table 2: token routing vs. broadcast baseline on the same instance — the
//          crossover the paper's Section 2 motivates.
#include <cmath>
#include <iostream>
#include <vector>

#include "graph/generators.hpp"
#include "proto/dissemination.hpp"
#include "proto/token_routing.hpp"
#include "util/bench_io.hpp"
#include "util/stats.hpp"
#include "util/table.hpp"

namespace {

using namespace hybrid;

struct instance {
  graph g;
  routing_spec spec;
  std::vector<std::vector<routed_token>> batch;
  u64 total_tokens = 0;
};

// Senders sampled at rate n^{-eps_s}, receivers at n^{-eps_r}; every sender
// sends one token to every receiver (k_S = |R|, k_R = |S|).
instance make_instance(u32 n, double eps_s, double eps_r, u64 seed) {
  instance in;
  in.g = gen::erdos_renyi_connected(n, 6.0, 1, seed);
  rng r(derive_seed(seed, 99));
  const double p_s = std::pow(n, -eps_s);
  const double p_r = std::pow(n, -eps_r);
  for (u32 v = 0; v < n; ++v) {
    if (r.next_bool(p_s)) in.spec.senders.push_back(v);
    if (r.next_bool(p_r)) in.spec.receivers.push_back(v);
  }
  if (in.spec.senders.empty()) in.spec.senders.push_back(0);
  if (in.spec.receivers.empty()) in.spec.receivers.push_back(n - 1);
  in.spec.p_s = p_s;
  in.spec.p_r = p_r;
  in.spec.k_s = in.spec.receivers.size();
  in.spec.k_r = in.spec.senders.size();
  in.batch.resize(in.spec.senders.size());
  for (u32 i = 0; i < in.spec.senders.size(); ++i)
    for (u32 j = 0; j < in.spec.receivers.size(); ++j) {
      in.batch[i].push_back({in.spec.senders[i], in.spec.receivers[j], 0,
                             (u64{i} << 32) | j});
      ++in.total_tokens;
    }
  return in;
}

}  // namespace

int main(int argc, char** argv) {
  bench_recorder rec(argc, argv, "bench_token_routing");
  print_section("E1 / Theorem 2.2 — token routing scaling");
  std::cout << "instance: S sampled at n^-0.25, R at n^-0.5; one token per\n"
               "(sender, receiver) pair; prediction = K/n + sqrt(kS) + "
               "sqrt(kR) (rounds, up to polylog)\n";

  table t1({"n", "|S|", "|R|", "K", "rounds", "K/n+rt(kS)+rt(kR)",
            "rounds/pred", "max recv", "gamma"});
  std::vector<double> ns, rounds_v;
  for (u32 n : {128, 256, 512, 1024, 2048}) {
    instance in = make_instance(n, 0.25, 0.5, 42 + n);
    hybrid_net net(in.g, model_config{}, 1000 + n);
    const double ms =
        timed_ms([&] { run_token_routing(net, in.spec, in.batch); });
    const run_metrics m = net.snapshot();
    rec.add("thm22_scaling", {{"n", n},
                              {"tokens", in.total_tokens},
                              {"rounds", m.rounds},
                              {"messages", m.global_messages},
                              {"wall_ms", ms},
                              {"max_recv", m.max_global_recv_per_round}});
    const double pred =
        static_cast<double>(in.total_tokens) / n +
        std::sqrt(static_cast<double>(in.spec.k_s)) +
        std::sqrt(static_cast<double>(in.spec.k_r));
    ns.push_back(n);
    rounds_v.push_back(static_cast<double>(m.rounds));
    t1.add_row({table::integer(n),
                table::integer(static_cast<long long>(in.spec.senders.size())),
                table::integer(static_cast<long long>(in.spec.receivers.size())),
                table::integer(static_cast<long long>(in.total_tokens)),
                table::integer(static_cast<long long>(m.rounds)),
                table::num(pred, 1), table::num(m.rounds / pred, 1),
                table::integer(m.max_global_recv_per_round),
                table::integer(net.global_cap())});
  }
  t1.print();
  const linear_fit fit = loglog_exponent_deflated(ns, rounds_v, 1.0);
  std::cout << "\nfitted rounds exponent (log-deflated): "
            << table::num(fit.slope, 3)
            << "; the near-constant rounds/pred column is the Theorem 2.2 "
               "shape (the absolute constant is the helper-set polylog)\n";

  print_section("E1b — crossover vs broadcast-everything baseline "
                "(fixed n = 256, growing workload)");
  std::cout << "baseline: disseminate all K tokens to every node (Lemma "
               "B.1, Omega~(sqrt(k|S|)) for point-to-point routing); "
               "routing pays its helper-set setup once and then scales "
               "as K/n + sqrt(k).\n";
  table t2({"tokens/pair", "K", "routing rounds", "broadcast rounds",
            "routing wins?"});
  const u32 n2 = 256;
  for (u32 per_pair : {1u, 16u, 64u, 128u}) {
    instance in = make_instance(n2, 0.5, 0.5, 7 + per_pair);
    // Expand to `per_pair` tokens per (sender, receiver) pair.
    in.total_tokens = 0;
    for (u32 i = 0; i < in.spec.senders.size(); ++i) {
      in.batch[i].clear();
      for (u32 j = 0; j < in.spec.receivers.size(); ++j)
        for (u32 t = 0; t < per_pair; ++t) {
          in.batch[i].push_back({in.spec.senders[i], in.spec.receivers[j], t,
                                 (u64{i} << 32) | (j << 16) | t});
          ++in.total_tokens;
        }
    }
    in.spec.k_s = in.spec.receivers.size() * per_pair;
    in.spec.k_r = in.spec.senders.size() * per_pair;

    u64 routing_rounds = 0, broadcast_rounds = 0;
    {
      hybrid_net net(in.g, model_config{}, 5 + per_pair);
      run_token_routing(net, in.spec, in.batch);
      routing_rounds = net.snapshot().rounds;
    }
    {
      hybrid_net net(in.g, model_config{}, 6 + per_pair);
      std::vector<std::vector<token2>> init(n2);
      for (u32 i = 0; i < in.batch.size(); ++i)
        for (const routed_token& tk : in.batch[i])
          init[tk.sender].push_back(
              {(u64{tk.sender} << 32) | (u64{tk.receiver} << 8) | tk.index,
               tk.payload});
      disseminate(net, std::move(init));
      broadcast_rounds = net.snapshot().rounds;
    }
    rec.add("routing_vs_broadcast", {{"tokens_per_pair", per_pair},
                                     {"tokens", in.total_tokens},
                                     {"routing_rounds", routing_rounds},
                                     {"broadcast_rounds", broadcast_rounds}});
    t2.add_row({table::integer(per_pair),
                table::integer(static_cast<long long>(in.total_tokens)),
                table::integer(static_cast<long long>(routing_rounds)),
                table::integer(static_cast<long long>(broadcast_rounds)),
                routing_rounds < broadcast_rounds ? "yes" : "not yet"});
  }
  t2.print();
  std::cout << "\n(broadcast grows with sqrt(K)+l; routing stays near its "
               "setup cost — the asymptotic separation Section 2 claims, "
               "with the crossover visible at simulable sizes)\n";
  return rec.write() ? 0 : 1;
}
