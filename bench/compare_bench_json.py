#!/usr/bin/env python3
"""Compare BENCH_*.json files against the committed baseline snapshot.

Usage: compare_bench_json.py [--gate] <baseline_dir> <new_dir>

Prints a GitHub-flavored-markdown report (CI appends it to the job
summary). Scenario rows are matched by (scenario name, position among
rows of that name), so repeated rows — e.g. one per thread count — pair
up positionally. Two kinds of fields are treated differently:

* perf fields (wall_ms, *_per_sec, allocs*, speedup, peak_mem*,
  *latency*, plus extra_rounds in the *pipeline* degradation scenarios,
  where it measures healing overhead and tracks the healing engine's
  round cost rather than a locked trajectory): always
  reported with a percent delta — these are *expected* to move between
  commits and across runner hardware;
* everything else (rounds, messages, n, ...): deterministic simulation
  quantities. A change is flagged loudly, because it means a PR changed
  simulated behavior, not just speed.

With --gate, deterministic drift is a hard failure: exit code 1 until
either the change is backed out or the intentional new trajectory is
committed to `bench/baseline/`. Drift includes a baselined scenario,
deterministic field, or whole BENCH_*.json file disappearing from the
run — lost coverage must be as loud as changed values. A bench with no
committed baseline is not drift — it starts a trajectory. Without
--gate the report is informational and always exits 0.
"""

import json
import os
import sys

PERF_MARKERS = ("wall_ms", "_per_sec", "allocs", "speedup", "peak_mem",
                "latency")

# Deterministic simulation outcomes whose names could pattern-match a perf
# marker someday — checked first so they always stay gated: oracle coverage
# and sampled-accuracy counts are seeded, so any movement is an algorithm
# change, never runner noise.
COVERAGE_FIELDS = ("covered", "finite", "sampled", "exact")


def is_perf_field(name, scenario=""):
    if name in COVERAGE_FIELDS:
        return False
    if any(m in name for m in PERF_MARKERS):
        return True
    return name == "extra_rounds" and "pipeline" in scenario


def load_rows(path):
    """-> list of (scenario_key, fields_dict); key disambiguates repeats."""
    with open(path) as f:
        data = json.load(f)
    seen = {}
    rows = []
    for row in data.get("scenarios", []):
        name = row.get("name", "?")
        seen[name] = seen.get(name, 0) + 1
        key = name if seen[name] == 1 else f"{name}#{seen[name]}"
        rows.append((key, {k: v for k, v in row.items() if k != "name"}))
    return data.get("bench", os.path.basename(path)), rows


def fmt(v):
    if isinstance(v, float) and v != int(v):
        return f"{v:.3g}"
    return str(int(v)) if isinstance(v, (int, float)) else str(v)


def main():
    args = sys.argv[1:]
    gate = "--gate" in args
    args = [a for a in args if a != "--gate"]
    if len(args) != 2:
        sys.exit(__doc__)
    base_dir, new_dir = args
    new_files = sorted(
        f for f in os.listdir(new_dir)
        if f.startswith("BENCH_") and f.endswith(".json"))

    print("## Bench trajectory vs committed baseline\n")
    if not new_files:
        print("_No BENCH_*.json files produced by this run._\n")

    drift = []
    for fname in new_files:
        bench, new_rows = load_rows(os.path.join(new_dir, fname))
        base_path = os.path.join(base_dir, fname)
        if not os.path.exists(base_path):
            print(f"### {bench}\n\n_New bench — no baseline committed yet "
                  f"(add `bench/baseline/{fname}` to start its trajectory)._\n")
            continue
        _, base_rows = load_rows(base_path)
        base_map = dict(base_rows)

        print(f"### {bench}\n")
        print("| scenario | field | baseline | now | delta |")
        print("|---|---|---|---|---|")
        printed = 0
        new_keys = {key for key, _ in new_rows}
        for key in base_map:
            if key not in new_keys:
                print(f"| {key} | _(all fields)_ | — | — "
                      f"| ⚠️ **scenario disappeared from this run** |")
                drift.append((bench, key, "<row missing>"))
                printed += 1
        for key, fields in new_rows:
            base_fields = base_map.get(key)
            if base_fields is None:
                print(f"| {key} | _(new scenario)_ | — | — | — |")
                printed += 1
                continue
            # A deterministic field present in the baseline but absent from
            # the fresh row is lost coverage, not a silent pass.
            for field, old_v in base_fields.items():
                if field in fields or is_perf_field(field, key):
                    continue
                print(f"| {key} | {field} | {fmt(old_v)} | — "
                      f"| ⚠️ **deterministic field disappeared** |")
                drift.append((bench, key, field))
                printed += 1
            for field, new_v in fields.items():
                if field not in base_fields:
                    continue
                old_v = base_fields[field]
                if is_perf_field(field, key):
                    if old_v:
                        pct = 100.0 * (new_v - old_v) / abs(old_v)
                        delta = f"{pct:+.1f}%"
                    else:
                        delta = "n/a"
                    print(f"| {key} | {field} | {fmt(old_v)} | {fmt(new_v)} "
                          f"| {delta} |")
                    printed += 1
                elif new_v != old_v:
                    print(f"| {key} | {field} | {fmt(old_v)} | {fmt(new_v)} "
                          f"| ⚠️ **deterministic quantity changed** |")
                    drift.append((bench, key, field))
                    printed += 1
        if printed == 0:
            print("| — | — | — | — | no comparable fields |")
        print()

    # A baselined bench that produced no JSON at all (binary or CI step
    # dropped) would otherwise vanish without a trace.
    for fname in sorted(
            f for f in os.listdir(base_dir)
            if f.startswith("BENCH_") and f.endswith(".json")):
        if fname in new_files:
            continue
        bench, _ = load_rows(os.path.join(base_dir, fname))
        print(f"### {bench}\n\n⚠️ **baselined bench produced no JSON in "
              f"this run** (`{fname}` missing).\n")
        drift.append((bench, "<file>", "<missing from run>"))

    if drift:
        print("### ⚠️ Deterministic drift\n")
        print("The following non-perf quantities changed vs the baseline "
              "(intentional algorithm changes should refresh "
              "`bench/baseline/`):\n")
        for bench, key, field in drift:
            print(f"- `{bench}` / `{key}` / `{field}`")
        print()
        if gate:
            print("**--gate: failing the job** — refresh `bench/baseline/` "
                  "if this drift is an intentional algorithm change.\n")
            sys.exit(1)


if __name__ == "__main__":
    main()
