#!/usr/bin/env python3
"""Compare BENCH_*.json files against the committed baseline snapshot.

Usage: compare_bench_json.py <baseline_dir> <new_dir>

Prints a GitHub-flavored-markdown report (CI appends it to the job
summary). Scenario rows are matched by (scenario name, position among
rows of that name), so repeated rows — e.g. one per thread count — pair
up positionally. Two kinds of fields are treated differently:

* perf fields (wall_ms, *_per_sec, allocs*, speedup): always reported
  with a percent delta — these are *expected* to move between commits
  and across runner hardware;
* everything else (rounds, messages, n, ...): deterministic simulation
  quantities. A change is flagged loudly, because it means a PR changed
  simulated behavior, not just speed.

Exit code is always 0: the report is informational; hard determinism
checks live in the benches themselves and in ctest.
"""

import json
import os
import sys

PERF_MARKERS = ("wall_ms", "_per_sec", "allocs", "speedup")


def is_perf_field(name):
    return any(m in name for m in PERF_MARKERS)


def load_rows(path):
    """-> list of (scenario_key, fields_dict); key disambiguates repeats."""
    with open(path) as f:
        data = json.load(f)
    seen = {}
    rows = []
    for row in data.get("scenarios", []):
        name = row.get("name", "?")
        seen[name] = seen.get(name, 0) + 1
        key = name if seen[name] == 1 else f"{name}#{seen[name]}"
        rows.append((key, {k: v for k, v in row.items() if k != "name"}))
    return data.get("bench", os.path.basename(path)), rows


def fmt(v):
    if isinstance(v, float) and v != int(v):
        return f"{v:.3g}"
    return str(int(v)) if isinstance(v, (int, float)) else str(v)


def main():
    if len(sys.argv) != 3:
        sys.exit(__doc__)
    base_dir, new_dir = sys.argv[1], sys.argv[2]
    new_files = sorted(
        f for f in os.listdir(new_dir)
        if f.startswith("BENCH_") and f.endswith(".json"))

    print("## Bench trajectory vs committed baseline\n")
    if not new_files:
        print("_No BENCH_*.json files produced by this run._")
        return

    drift = []
    for fname in new_files:
        bench, new_rows = load_rows(os.path.join(new_dir, fname))
        base_path = os.path.join(base_dir, fname)
        if not os.path.exists(base_path):
            print(f"### {bench}\n\n_New bench — no baseline committed yet "
                  f"(add `bench/baseline/{fname}` to start its trajectory)._\n")
            continue
        _, base_rows = load_rows(base_path)
        base_map = dict(base_rows)

        print(f"### {bench}\n")
        print("| scenario | field | baseline | now | delta |")
        print("|---|---|---|---|---|")
        printed = 0
        new_keys = {key for key, _ in new_rows}
        for key in base_map:
            if key not in new_keys:
                print(f"| {key} | _(all fields)_ | — | — "
                      f"| ⚠️ **scenario disappeared from this run** |")
                drift.append((bench, key, "<row missing>"))
                printed += 1
        for key, fields in new_rows:
            base_fields = base_map.get(key)
            if base_fields is None:
                print(f"| {key} | _(new scenario)_ | — | — | — |")
                printed += 1
                continue
            for field, new_v in fields.items():
                if field not in base_fields:
                    continue
                old_v = base_fields[field]
                if is_perf_field(field):
                    if old_v:
                        pct = 100.0 * (new_v - old_v) / abs(old_v)
                        delta = f"{pct:+.1f}%"
                    else:
                        delta = "n/a"
                    print(f"| {key} | {field} | {fmt(old_v)} | {fmt(new_v)} "
                          f"| {delta} |")
                    printed += 1
                elif new_v != old_v:
                    print(f"| {key} | {field} | {fmt(old_v)} | {fmt(new_v)} "
                          f"| ⚠️ **deterministic quantity changed** |")
                    drift.append((bench, key, field))
                    printed += 1
        if printed == 0:
            print("| — | — | — | — | no comparable fields |")
        print()

    if drift:
        print("### ⚠️ Deterministic drift\n")
        print("The following non-perf quantities changed vs the baseline "
              "(intentional algorithm changes should refresh "
              "`bench/baseline/`):\n")
        for bench, key, field in drift:
            print(f"- `{bench}` / `{key}` / `{field}`")
        print()


if __name__ == "__main__":
    main()
