// Peak-RSS probes shared by the memory-regime benches
// (bench_sparse_exploration, bench_apsp).
#pragma once

#include <cstdio>

#if defined(__unix__) || defined(__APPLE__)
#include <sys/resource.h>
#endif

namespace benchrss {

/// Reset the kernel's peak-RSS water mark so each scenario reports its own
/// peak (Linux only; elsewhere peaks stay monotone across scenarios).
inline void reset_peak_rss() {
#if defined(__linux__)
  if (std::FILE* f = std::fopen("/proc/self/clear_refs", "w")) {
    std::fputs("5", f);
    std::fclose(f);
  }
#endif
}

/// Peak RSS in MB since the last reset_peak_rss() (VmHWM on Linux; the
/// monotone process-lifetime getrusage value elsewhere; 0 when neither
/// source is available).
inline double peak_rss_mb() {
#if defined(__linux__)
  if (std::FILE* f = std::fopen("/proc/self/status", "r")) {
    char line[256];
    double kb = 0;
    bool found = false;
    while (std::fgets(line, sizeof line, f))
      if (std::sscanf(line, "VmHWM: %lf kB", &kb) == 1) {
        found = true;
        break;
      }
    std::fclose(f);
    if (found) return kb / 1024.0;
  }
#endif
#if defined(__unix__) || defined(__APPLE__)
  rusage ru{};
  if (getrusage(RUSAGE_SELF, &ru) != 0) return 0.0;
#if defined(__APPLE__)
  return static_cast<double>(ru.ru_maxrss) / (1024.0 * 1024.0);
#else
  return static_cast<double>(ru.ru_maxrss) / 1024.0;  // Linux: KB
#endif
#else
  return 0.0;
#endif
}

}  // namespace benchrss
