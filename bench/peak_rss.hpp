// Peak-RSS probes shared by the memory-regime benches
// (bench_sparse_exploration, bench_apsp).
#pragma once

#include <cstdio>

#if defined(__unix__) || defined(__APPLE__)
#include <sys/resource.h>
#endif

namespace benchrss {

/// Reset the kernel's peak-RSS water mark so each scenario reports its own
/// peak (Linux only; elsewhere peaks stay monotone across scenarios).
/// Returns true only when the reset actually took: on failure a later
/// peak_rss_mb() still reads the PREVIOUS high-water mark, so callers must
/// drop (not report) their peak field rather than publish a stale number —
/// /proc/self/clear_refs is refused in some sandboxes and containers, and
/// the kernel may only surface the error at fputs or fclose time.
[[nodiscard]] inline bool reset_peak_rss() {
#if defined(__linux__)
  std::FILE* f = std::fopen("/proc/self/clear_refs", "w");
  if (f == nullptr) return false;
  const bool wrote = std::fputs("5", f) >= 0;  // 5 = reset peak water mark
  const bool closed = std::fclose(f) == 0;
  return wrote && closed;
#else
  return false;  // no per-scenario water mark to reset elsewhere
#endif
}

/// Peak RSS in MB since the last reset_peak_rss() (VmHWM on Linux; the
/// monotone process-lifetime getrusage value elsewhere; 0 when neither
/// source is available).
inline double peak_rss_mb() {
#if defined(__linux__)
  if (std::FILE* f = std::fopen("/proc/self/status", "r")) {
    char line[256];
    double kb = 0;
    bool found = false;
    while (std::fgets(line, sizeof line, f))
      if (std::sscanf(line, "VmHWM: %lf kB", &kb) == 1) {
        found = true;
        break;
      }
    std::fclose(f);
    if (found) return kb / 1024.0;
  }
#endif
#if defined(__unix__) || defined(__APPLE__)
  rusage ru{};
  if (getrusage(RUSAGE_SELF, &ru) != 0) return 0.0;
#if defined(__APPLE__)
  return static_cast<double>(ru.ru_maxrss) / (1024.0 * 1024.0);
#else
  return static_cast<double>(ru.ru_maxrss) / 1024.0;  // Linux: KB
#endif
#else
  return 0.0;
#endif
}

}  // namespace benchrss
