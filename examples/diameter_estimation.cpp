// Diameter estimation on a metro-style street network (paper Theorem 1.4).
//
// The motivating scenario from the paper's introduction: a city-scale local
// mesh (high-bandwidth, short-range links — modeled by a grid with random
// shortcut streets) whose operators also have cellular uplinks (the global
// mode). Learning the network diameter tells them worst-case propagation
// depth, e.g. for setting flooding TTLs in IP routing.
//
//   ./examples/diameter_estimation [rows] [cols] [seed]
#include <cstdlib>
#include <iostream>

#include "core/diameter.hpp"
#include "graph/diameter.hpp"
#include "graph/generators.hpp"
#include "util/table.hpp"

namespace {

// A grid with a few random "diagonal avenue" shortcuts.
hybrid::graph make_city(hybrid::u32 rows, hybrid::u32 cols, hybrid::u64 seed) {
  using namespace hybrid;
  const graph base = gen::grid(rows, cols);
  std::vector<edge_spec> edges;
  for (u32 v = 0; v < base.num_nodes(); ++v)
    for (const edge& e : base.neighbors(v))
      if (v < e.to) edges.push_back({v, e.to, 1});
  rng r(seed);
  const u32 n = rows * cols;
  for (u32 i = 0; i < n / 64; ++i) {
    const u32 a = static_cast<u32>(r.next_below(n));
    const u32 b = static_cast<u32>(r.next_below(n));
    if (a != b) edges.push_back({a, b, 1});
  }
  return graph::from_edges(n, edges);
}

}  // namespace

int main(int argc, char** argv) {
  using namespace hybrid;
  // Default 28×28 keeps both pipeline branches exercised while staying
  // under ~2 s, so the CTest smoke run of this example no longer dominates
  // the suite's wall-clock; pass e.g. `40 40` for the paper-sized city.
  const u32 rows = argc > 1 ? static_cast<u32>(std::atoi(argv[1])) : 28;
  const u32 cols = argc > 2 ? static_cast<u32>(std::atoi(argv[2])) : 28;
  const u64 seed = argc > 3 ? static_cast<u64>(std::atoll(argv[3])) : 3;

  std::cout << "Diameter estimation demo (Theorem 1.4)\n";
  const graph g = make_city(rows, cols, seed);
  const u32 d_true = hop_diameter(g);
  std::cout << "city mesh: " << g.num_nodes() << " nodes, " << g.num_edges()
            << " links, true diameter " << d_true
            << " (computed centrally for reference)\n\n";

  table t({"algorithm", "estimate", "ratio", "proven bound", "branch",
           "rounds", "|V_S|"});
  {
    const auto alg = make_clique_diameter_32(0.25, injection::worst_case);
    const diameter_result res = hybrid_diameter(g, model_config{}, seed, alg);
    t.add_row({"(3/2+eps), Cor 5.2",
               table::integer(static_cast<long long>(res.estimate)),
               table::num(static_cast<double>(res.estimate) / d_true, 3),
               table::num(res.bound, 3),
               res.exact_path ? "h-hat (exact)" : "skeleton",
               table::integer(static_cast<long long>(res.metrics.rounds)),
               table::integer(res.skeleton_size)});
  }
  {
    const auto alg =
        make_clique_diameter_algebraic(0.25, injection::worst_case);
    const diameter_result res = hybrid_diameter(g, model_config{}, seed, alg);
    t.add_row({"(1+eps), Cor 5.3",
               table::integer(static_cast<long long>(res.estimate)),
               table::num(static_cast<double>(res.estimate) / d_true, 3),
               table::num(res.bound, 3),
               res.exact_path ? "h-hat (exact)" : "skeleton",
               table::integer(static_cast<long long>(res.metrics.rounds)),
               table::integer(res.skeleton_size)});
  }
  t.print();
  std::cout << "\nEquation (3): small diameters are caught exactly by the "
               "local h-hat sweep; only D larger than the exploration "
               "radius pays the skeleton approximation.\n";
  return 0;
}
