// Landmark-based distance oracle via k-SSP (paper Theorem 1.2).
//
// A standard application of k-source shortest paths: pick k = n^{1/3}
// landmark nodes, let every node learn its (approximate) distance to every
// landmark (one k-SSP run, Õ(n^{1/3}/ε) rounds), and answer arbitrary
// point-to-point distance queries locally as
//     d̂(u, v) = min_l  d̃(u, l) + d̃(l, v),
// a classic triangle-inequality oracle. The demo measures the oracle's
// stretch distribution over random queries.
//
//   ./examples/kssp_landmarks [n] [seed]
#include <algorithm>
#include <cmath>
#include <cstdlib>
#include <iostream>

#include "core/kssp_framework.hpp"
#include "graph/generators.hpp"
#include "graph/shortest_paths.hpp"
#include "util/table.hpp"

int main(int argc, char** argv) {
  using namespace hybrid;
  const u32 n = argc > 1 ? static_cast<u32>(std::atoi(argv[1])) : 512;
  const u64 seed = argc > 2 ? static_cast<u64>(std::atoll(argv[2])) : 5;

  std::cout << "Landmark distance oracle demo (k-SSP, Theorem 1.2)\n";
  const graph g = gen::random_geometric(n, 8.0, 8, seed);
  const u32 k = std::max<u32>(4, static_cast<u32>(std::cbrt(n)));
  rng r(derive_seed(seed, 2));
  const std::vector<u32> landmarks = r.sample_without_replacement(n, k);
  std::cout << "geometric network: n = " << n << ", m = " << g.num_edges()
            << ", landmarks k = " << k << " (= n^{1/3})\n";

  const auto alg = make_clique_kssp_1eps(0.25, injection::none);
  const kssp_result res = hybrid_kssp(g, model_config{}, seed, landmarks, alg);
  std::cout << "k-SSP finished in " << res.metrics.rounds
            << " simulated HYBRID rounds (|V_S| = " << res.skeleton_size
            << ", h = " << res.h << ")\n\n";

  // Answer random queries with the oracle; compare against Dijkstra.
  rng q(derive_seed(seed, 3));
  const u32 queries = 2000;
  std::vector<double> stretches;
  for (u32 i = 0; i < queries; ++i) {
    const u32 u = static_cast<u32>(q.next_below(n));
    const auto ref = dijkstra(g, u);
    const u32 v = static_cast<u32>(q.next_below(n));
    if (u == v || ref[v] == 0) continue;
    u64 est = kInfDist;
    for (u32 l = 0; l < k; ++l)
      est = std::min(est, res.dist[l][u] + res.dist[l][v]);
    stretches.push_back(static_cast<double>(est) /
                        static_cast<double>(ref[v]));
  }
  std::sort(stretches.begin(), stretches.end());
  auto pct = [&](double p) {
    return stretches[static_cast<std::size_t>(p * (stretches.size() - 1))];
  };
  table t({"metric", "value"});
  t.add_row({"queries answered", table::integer(static_cast<long long>(
                                      stretches.size()))});
  t.add_row({"median stretch", table::num(pct(0.5), 3)});
  t.add_row({"p90 stretch", table::num(pct(0.9), 3)});
  t.add_row({"p99 stretch", table::num(pct(0.99), 3)});
  t.add_row({"max stretch", table::num(stretches.back(), 3)});
  t.print();
  std::cout << "\n(oracle stretch ≥ 1 always — estimates never undercut "
               "true distances; landmark oracles trade one k-SSP run for "
               "O(1)-time local queries afterwards)\n";
  return 0;
}
