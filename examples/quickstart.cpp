// Quickstart: build a small hybrid network, run the paper's headline
// algorithm (exact APSP in Õ(√n) rounds, Theorem 1.1), and check the result
// against a centralized Dijkstra.
//
//   ./examples/quickstart [n] [seed]
#include <cstdlib>
#include <iostream>

#include "core/apsp.hpp"
#include "graph/generators.hpp"
#include "graph/shortest_paths.hpp"
#include "util/table.hpp"

int main(int argc, char** argv) {
  using namespace hybrid;
  const u32 n = argc > 1 ? static_cast<u32>(std::atoi(argv[1])) : 256;
  const u64 seed = argc > 2 ? static_cast<u64>(std::atoll(argv[2])) : 1;

  std::cout << "HYBRID model quickstart — exact APSP (Theorem 1.1)\n";
  const graph g = gen::erdos_renyi_connected(n, 6.0, /*max_weight=*/16, seed);
  std::cout << "local graph: n=" << g.num_nodes() << " m=" << g.num_edges()
            << " (weighted Erdős–Rényi)\n";

  const apsp_result res = hybrid_apsp_exact(g, model_config{}, seed);

  // Verify against centralized ground truth.
  const auto ref = apsp_reference(g);
  u64 wrong = 0;
  for (u32 u = 0; u < n; ++u)
    for (u32 v = 0; v < n; ++v)
      if (res.dist[u][v] != ref[u][v]) ++wrong;

  std::cout << "skeleton |V_S|=" << res.skeleton_size << ", h=" << res.h
            << "\n";
  std::cout << "simulated HYBRID rounds: " << res.metrics.rounds << "\n";
  std::cout << "global messages: " << res.metrics.global_messages
            << ", max receive load/round: "
            << res.metrics.max_global_recv_per_round << "\n";
  std::cout << "distance entries wrong vs Dijkstra: " << wrong << " of "
            << static_cast<u64>(n) * n << "\n";

  table t({"phase", "rounds", "global msgs"});
  for (const auto& ph : res.metrics.phases)
    t.add_row({ph.name, table::integer(static_cast<long long>(ph.rounds)),
               table::integer(static_cast<long long>(ph.global_messages))});
  t.print();
  return wrong == 0 ? 0 : 1;
}
