// Distributed IP-routing demo: APSP with next-hop tables (paper Section 1:
// "learning the topology of the local network … can be used for efficient
// IP-routing").
//
// After one run of Theorem 1.1's APSP (plus one local round of
// distance-vector exchange), every node owns a routing table. The demo then
// forwards sample packets hop by hop — each step consults only the current
// node's table — and verifies the realized path length equals the exact
// distance.
//
//   ./examples/routing_tables [n] [seed]
#include <cstdlib>
#include <iostream>

#include "core/apsp.hpp"
#include "graph/generators.hpp"
#include "graph/shortest_paths.hpp"
#include "util/table.hpp"

int main(int argc, char** argv) {
  using namespace hybrid;
  const u32 n = argc > 1 ? static_cast<u32>(std::atoi(argv[1])) : 200;
  const u64 seed = argc > 2 ? static_cast<u64>(std::atoll(argv[2])) : 9;

  std::cout << "Routing-table demo (Theorem 1.1 + one distance-vector "
               "round)\n";
  const graph g = gen::random_geometric(n, 7.0, 9, seed);
  const apsp_result res =
      hybrid_apsp_exact(g, model_config{}, seed, /*build_routes=*/true);
  std::cout << "network: n = " << n << ", m = " << g.num_edges()
            << "; tables built in " << res.metrics.rounds
            << " simulated rounds\n\n";

  rng r(derive_seed(seed, 4));
  table t({"packet", "path", "weight", "exact d(u,v)"});
  u32 ok = 0, total = 0;
  for (u32 q = 0; q < 5; ++q) {
    const u32 src = static_cast<u32>(r.next_below(n));
    const u32 dst = static_cast<u32>(r.next_below(n));
    std::string path = std::to_string(src);
    u64 weight = 0;
    u32 cur = src;
    u32 hops = 0;
    while (cur != dst && hops++ < n) {
      const u32 nh = res.next_hop[cur][dst];
      for (const edge& e : g.neighbors(cur))
        if (e.to == nh) {
          weight += e.weight;
          break;
        }
      cur = nh;
      if (path.size() < 48) path += "->" + std::to_string(cur);
    }
    if (path.size() >= 48) path += "->...";
    ++total;
    if (cur == dst && weight == res.dist[src][dst]) ++ok;
    t.add_row({std::to_string(src) + " => " + std::to_string(dst), path,
               table::integer(static_cast<long long>(weight)),
               table::integer(static_cast<long long>(res.dist[src][dst]))});
  }
  t.print();

  // Exhaustive verification over all pairs.
  u64 mismatches = 0;
  for (u32 u = 0; u < n; ++u)
    for (u32 v = 0; v < n; ++v) {
      u32 cur = u;
      u64 w = 0;
      u32 hops = 0;
      while (cur != v && hops++ <= n) {
        const u32 nh = res.next_hop[cur][v];
        for (const edge& e : g.neighbors(cur))
          if (e.to == nh) {
            w += e.weight;
            break;
          }
        cur = nh;
      }
      if (cur != v || w != res.dist[u][v]) ++mismatches;
    }
  std::cout << "\nexhaustive check: " << (static_cast<u64>(n) * n - mismatches)
            << " / " << static_cast<u64>(n) * n
            << " routed paths realize the exact distance\n";
  return (ok == total && mismatches == 0) ? 0 : 1;
}
