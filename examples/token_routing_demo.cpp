// Token routing walkthrough (paper Section 2): a set of sampled senders
// must deliver point-to-point tokens to sampled receivers. The demo prints
// the helper-set structure (Definition 2.1) the protocol builds, then routes
// a batch and reports the phase costs and the Lemma D.2 receive-load check.
//
//   ./examples/token_routing_demo [n] [seed]
#include <algorithm>
#include <cstdlib>
#include <iostream>

#include "graph/generators.hpp"
#include "proto/token_routing.hpp"
#include "util/table.hpp"

int main(int argc, char** argv) {
  using namespace hybrid;
  const u32 n = argc > 1 ? static_cast<u32>(std::atoi(argv[1])) : 512;
  const u64 seed = argc > 2 ? static_cast<u64>(std::atoll(argv[2])) : 7;

  std::cout << "Token routing demo (Theorem 2.2)\n";
  const graph g = gen::erdos_renyi_connected(n, 6.0, 1, seed);

  // Sample senders at rate 1/8 and receivers at rate 1/16.
  rng r(derive_seed(seed, 1));
  routing_spec spec;
  for (u32 v = 0; v < n; ++v) {
    if (r.next_bool(1.0 / 8)) spec.senders.push_back(v);
    if (r.next_bool(1.0 / 16)) spec.receivers.push_back(v);
  }
  spec.p_s = 1.0 / 8;
  spec.p_r = 1.0 / 16;
  spec.k_s = spec.receivers.size();
  spec.k_r = spec.senders.size();
  std::cout << "|S| = " << spec.senders.size()
            << ", |R| = " << spec.receivers.size()
            << ", one token per (sender, receiver) pair => K = "
            << spec.senders.size() * spec.receivers.size() << "\n";

  hybrid_net net(g, model_config{}, seed);
  net.begin_phase("context (helper sets + hash seed)");
  routing_context ctx = build_routing_context(net, spec);

  std::cout << "\nhelper-set structure (Definition 2.1):\n";
  std::cout << "  sender side:   mu_S = " << ctx.mu_s
            << (ctx.sender_helpers.trivial() ? " (trivial, H_w = {w})" : "")
            << "\n";
  std::cout << "  receiver side: mu_R = " << ctx.mu_r << "\n";
  if (!ctx.receiver_helpers.trivial()) {
    std::size_t min_h = ~std::size_t{0}, max_h = 0;
    for (const auto& hs : ctx.receiver_helpers.helpers_of) {
      min_h = std::min(min_h, hs.size());
      max_h = std::max(max_h, hs.size());
    }
    std::size_t max_roles = 0;
    for (const auto& roles : ctx.receiver_helpers.helps)
      max_roles = std::max(max_roles, roles.size());
    std::cout << "  receiver helper sets: size range [" << min_h << ", "
              << max_h << "] (>= mu_R = " << ctx.mu_r
              << " w.h.p.), max sets one node serves: " << max_roles
              << " (Õ(1))\n";
    std::cout << "  clusters: " << ctx.receiver_helpers.clusters.rulers.size()
              << " around the ruling set, max radius "
              << ctx.receiver_helpers.clusters.max_radius << " hops\n";
  }

  // Build and route the batch.
  net.begin_phase("routing");
  std::vector<std::vector<routed_token>> batch(spec.senders.size());
  u64 expected = 0;
  for (u32 i = 0; i < spec.senders.size(); ++i)
    for (u32 j = 0; j < spec.receivers.size(); ++j) {
      batch[i].push_back({spec.senders[i], spec.receivers[j], 0,
                          (u64{i} << 32) | j});
      ++expected;
    }
  const auto delivered = route_tokens(net, ctx, batch);
  u64 got = 0;
  for (const auto& d : delivered) got += d.size();

  const run_metrics m = net.snapshot();
  std::cout << "\ndelivered " << got << " / " << expected << " tokens\n";
  table t({"phase", "rounds", "global msgs"});
  for (const auto& ph : m.phases)
    t.add_row({ph.name, table::integer(static_cast<long long>(ph.rounds)),
               table::integer(static_cast<long long>(ph.global_messages))});
  t.print();
  std::cout << "max receive load/round: " << m.max_global_recv_per_round
            << " (cap gamma = " << net.global_cap()
            << "; Lemma D.2 promises O(log n) w.h.p.)\n";
  return got == expected ? 0 : 1;
}
