#include "clique/algorithms.hpp"

#include <algorithm>
#include <cmath>
#include <queue>

#include "util/assert.hpp"

namespace hybrid {

namespace {

std::vector<u64> dijkstra_idx(
    const std::vector<std::vector<std::pair<u32, u64>>>& edges, u32 src) {
  std::vector<u64> dist(edges.size(), kInfDist);
  using item = std::pair<u64, u32>;
  std::priority_queue<item, std::vector<item>, std::greater<>> pq;
  dist[src] = 0;
  pq.push({0, src});
  while (!pq.empty()) {
    auto [d, v] = pq.top();
    pq.pop();
    if (d != dist[v]) continue;
    for (const auto& [to, w] : edges[v]) {
      if (d + w < dist[to]) {
        dist[to] = d + w;
        pq.push({d + w, to});
      }
    }
  }
  return dist;
}

u64 inflate(u64 d, const approx_contract& c) {
  if (d == kInfDist || d == 0) return d;
  const double x = std::floor(c.alpha * static_cast<double>(d));
  return static_cast<u64>(x) + c.beta;
}

u64 rounds_from(double eta, double delta, u32 n_s) {
  const double t = eta * std::pow(static_cast<double>(n_s), delta);
  return std::max<u64>(1, static_cast<u64>(std::ceil(t)));
}

}  // namespace

// ---- shortest-path plug-in --------------------------------------------------

clique_sp_algorithm::clique_sp_algorithm(params p, injection inj)
    : p_(std::move(p)), inj_(inj) {
  HYB_REQUIRE(p_.eps > 0.0, "ε must be positive");
  HYB_REQUIRE(p_.delta >= 0.0, "δ must be non-negative");
}

u64 clique_sp_algorithm::declared_rounds(u32 n_s) const {
  return rounds_from(eta(), p_.delta, n_s);
}

approx_contract clique_sp_algorithm::contract(u64 max_skeleton_weight) const {
  approx_contract c;
  c.alpha = p_.alpha_base + p_.alpha_eps_mult * p_.eps;
  c.beta = p_.beta_is_skeleton_weight
               ? static_cast<u64>(std::ceil(
                     (1.0 + p_.eps) *
                     static_cast<double>(max_skeleton_weight)))
               : 0;
  return c;
}

std::vector<std::vector<u64>> clique_sp_algorithm::solve(
    const clique_problem& prob) const {
  HYB_REQUIRE(prob.edges != nullptr && prob.edges->size() == prob.n_s,
              "malformed clique problem");
  std::vector<u32> sources = prob.sources;
  if (sources.empty())
    for (u32 i = 0; i < prob.n_s; ++i) sources.push_back(i);
  const approx_contract c = contract(prob.max_edge_weight);
  std::vector<std::vector<u64>> out;
  out.reserve(sources.size());
  for (u32 s : sources) {
    HYB_REQUIRE(s < prob.n_s, "source index out of range");
    std::vector<u64> row = dijkstra_idx(*prob.edges, s);
    if (inj_ == injection::worst_case)
      for (u64& d : row) d = inflate(d, c);
    out.push_back(std::move(row));
  }
  return out;
}

// ---- diameter plug-in -------------------------------------------------------

clique_diameter_algorithm::clique_diameter_algorithm(params p, injection inj)
    : p_(std::move(p)), inj_(inj) {
  HYB_REQUIRE(p_.eps > 0.0, "ε must be positive");
}

u64 clique_diameter_algorithm::declared_rounds(u32 n_s) const {
  return rounds_from(eta(), p_.delta, n_s);
}

approx_contract clique_diameter_algorithm::contract(
    u64 max_skeleton_weight) const {
  approx_contract c;
  c.alpha = p_.alpha_base + p_.alpha_eps_mult * p_.eps;
  c.beta = p_.beta_is_skeleton_weight ? max_skeleton_weight : 0;
  return c;
}

u64 clique_diameter_algorithm::solve(const clique_problem& prob) const {
  HYB_REQUIRE(prob.edges != nullptr && prob.edges->size() == prob.n_s,
              "malformed clique problem");
  u64 diam = 0;
  for (u32 i = 0; i < prob.n_s; ++i) {
    for (u64 d : dijkstra_idx(*prob.edges, i)) {
      HYB_INVARIANT(d != kInfDist,
                    "skeleton is disconnected (Lemma C.2 event failed)");
      diam = std::max(diam, d);
    }
  }
  if (inj_ == injection::worst_case)
    diam = inflate(diam, contract(prob.max_edge_weight));
  return diam;
}

// ---- factories --------------------------------------------------------------

clique_sp_algorithm make_clique_kssp_1eps(double eps, injection inj) {
  clique_sp_algorithm::params p;
  p.name = "CHKL19-kSSP(1+eps)";
  p.delta = 0.0;
  p.eps = eps;
  p.eta_is_inv_eps = true;
  p.alpha_base = 1.0;
  p.alpha_eps_mult = 1.0;
  p.max_source_exponent = 0.5;
  return {p, inj};
}

clique_sp_algorithm make_clique_apsp_2eps(double eps, injection inj) {
  clique_sp_algorithm::params p;
  p.name = "CHKL19-APSP(2+eps)";
  p.delta = 0.0;
  p.eps = eps;
  p.eta_is_inv_eps = true;
  p.alpha_base = 2.0;
  p.alpha_eps_mult = 1.0;
  p.beta_is_skeleton_weight = true;
  p.max_source_exponent = 1.0;
  return {p, inj};
}

clique_sp_algorithm make_clique_apsp_algebraic(double eps, injection inj) {
  clique_sp_algorithm::params p;
  p.name = "CKKLPS19-APSP(1+o(1))";
  p.delta = 0.15715;  // ρ ≤ 1 − 2/ω with ω < 2.3728639
  p.eps = eps;
  p.eta_is_inv_eps = false;
  p.alpha_base = 1.0;
  p.alpha_eps_mult = 1.0;
  p.max_source_exponent = 1.0;
  return {p, inj};
}

clique_sp_algorithm make_clique_sssp_exact() {
  clique_sp_algorithm::params p;
  p.name = "CHDKL19-SSSP(exact)";
  p.delta = 1.0 / 6.0;
  p.eps = 1.0;  // unused: η = 1, α = 1, β = 0
  p.eta_is_inv_eps = false;
  p.alpha_base = 1.0;
  p.max_source_exponent = 0.0;
  return {p, injection::none};
}

clique_diameter_algorithm make_clique_diameter_32(double eps, injection inj) {
  clique_diameter_algorithm::params p;
  p.name = "CHKL19-diam(3/2+eps)";
  p.delta = 0.0;
  p.eps = eps;
  p.eta_is_inv_eps = true;
  p.alpha_base = 1.5;
  p.alpha_eps_mult = 1.0;
  p.beta_is_skeleton_weight = true;
  return {p, inj};
}

clique_diameter_algorithm make_clique_diameter_algebraic(double eps,
                                                         injection inj) {
  clique_diameter_algorithm::params p;
  p.name = "CKKLPS19-diam(1+eps)";
  p.delta = 0.15715;
  p.eps = eps;
  p.eta_is_inv_eps = true;
  p.alpha_base = 1.0;
  p.alpha_eps_mult = 1.0;
  return {p, inj};
}

// ---- message-level naive CLIQUE APSP ---------------------------------------

std::vector<std::vector<u64>> naive_clique_apsp(clique_net& net,
                                                const clique_problem& prob) {
  const u32 n_s = prob.n_s;
  HYB_REQUIRE(net.n() == n_s, "clique size mismatch");
  // Each node i owns adjacency row i, padded to length n_s with kInfDist;
  // in round r it sends entry r of its row to every node. After n_s rounds
  // everyone holds the full weight matrix and solves locally.
  std::vector<std::vector<u64>> weight(n_s, std::vector<u64>(n_s, kInfDist));
  for (u32 i = 0; i < n_s; ++i)
    for (const auto& [to, w] : (*prob.edges)[i])
      weight[i][to] = std::min(weight[i][to], w);

  // gathered[v][i][j]: what v has learned of the matrix.
  std::vector<std::vector<std::vector<u64>>> gathered(
      n_s, std::vector<std::vector<u64>>(n_s, std::vector<u64>(n_s, kInfDist)));
  // Node-parallel rounds (docs/CONCURRENCY.md): i sends from its own
  // budget, v writes only its own gathered slice.
  for (u32 r = 0; r < n_s; ++r) {
    net.executor().for_nodes(n_s, [&](u32 i) {
      for (u32 dst = 0; dst < n_s; ++dst) {
        clique_msg m;
        m.src = i;
        m.dst = dst;
        m.tag = r;
        m.w[0] = r;
        m.w[1] = weight[i][r];
        m.nw = 2;
        net.send(m);
      }
    });
    net.advance_round();
    net.executor().for_nodes(n_s, [&](u32 v) {
      for (const clique_msg& m : net.inbox(v))
        gathered[v][m.src][static_cast<u32>(m.w[0])] = m.w[1];
    });
  }
  // All nodes now solve the same instance locally; compute once and verify
  // one node's copy matches the instance.
  for (u32 i = 0; i < n_s; ++i)
    for (u32 j = 0; j < n_s; ++j)
      HYB_INVARIANT(gathered[0][i][j] == weight[i][j],
                    "full exchange failed to reproduce the weight matrix");
  std::vector<std::vector<u64>> out(n_s);
  for (u32 i = 0; i < n_s; ++i) out[i] = dijkstra_idx(*prob.edges, i);
  return out;
}

std::vector<u64> bellman_ford_clique_sssp(clique_net& net,
                                          const clique_problem& prob,
                                          u32 source) {
  const u32 n_s = prob.n_s;
  HYB_REQUIRE(net.n() == n_s, "clique size mismatch");
  HYB_REQUIRE(source < n_s, "source out of range");
  std::vector<u64> dist(n_s, kInfDist);
  std::vector<char> changed(n_s, 0);
  dist[source] = 0;
  changed[source] = 1;
  bool any = true;
  while (any) {
    net.executor().for_nodes(n_s, [&](u32 v) {
      if (!changed[v]) return;
      for (const auto& [to, w] : (*prob.edges)[v]) {
        (void)w;
        clique_msg m;
        m.src = v;
        m.dst = to;
        m.w[0] = dist[v];
        m.nw = 1;
        net.send(m);
      }
      changed[v] = 0;
    });
    net.advance_round();
    any = net.executor().sum_nodes(n_s, [&](u32 v) -> u64 {
      // Relax against the senders' skeleton edge weights (v knows its own
      // incident weights).
      u64 improved = 0;
      for (const clique_msg& m : net.inbox(v)) {
        for (const auto& [to, w] : (*prob.edges)[v]) {
          if (to != m.src) continue;
          const u64 nd = m.w[0] + w;
          if (nd < dist[v]) {
            dist[v] = nd;
            changed[v] = 1;
            improved = 1;
          }
        }
      }
      return improved;
    }) != 0;
  }
  return dist;
}

}  // namespace hybrid
