// CLIQUE-model plug-in algorithms A for the simulation framework of
// Sections 4–5 (Theorems 4.1 and 5.1).
//
// The paper consumes published CONGESTED CLIQUE algorithms as black boxes
// parameterized by (γ, δ, η, α, β): runtime T_A = Õ(η·n^δ) and an
// (α, β)-approximation contract. Re-implementing the algebraic matrix
// multiplication machinery of Censor-Hillel et al. [7, 8] is out of scope
// for a reproduction of *this* paper (docs/DESIGN.md §4); instead each plug-in
//   * produces outputs satisfying its exact (α, β) contract (computed on
//     the skeleton instance the clique nodes jointly know),
//   * declares the published round complexity T_A, which the embedding
//     charges through the real token-routing machinery at the model-maximal
//     all-to-all load (Corollary 4.1), and
//   * optionally runs under *worst-case error injection*: every output is
//     inflated to the largest value its contract allows, so the end-to-end
//     approximation bounds of Theorems 1.2/1.4 are exercised rather than
//     vacuously satisfied by exact sub-results.
//
// A message-level naive CLIQUE APSP (full edge exchange in n_S rounds) is
// also provided to validate the clique_net simulator honestly and as the
// ablation baseline of experiment E13.
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "graph/graph.hpp"
#include "sim/clique_net.hpp"
#include "util/bits.hpp"

namespace hybrid {

/// What the clique nodes jointly know: the skeleton graph and which of its
/// nodes are (representatives of) sources.
struct clique_problem {
  u32 n_s = 0;
  /// Skeleton adjacency: edges[i] = (other skeleton index, weight).
  const std::vector<std::vector<std::pair<u32, u64>>>* edges = nullptr;
  /// Skeleton indices acting as sources; empty means "all" (APSP).
  std::vector<u32> sources;
  u64 max_edge_weight = 1;
};

struct approx_contract {
  double alpha = 1.0;
  u64 beta = 0;
};

enum class injection {
  none,       ///< return exact results (every exact result meets any contract)
  worst_case  ///< inflate every value to ⌊α·d⌋ + β, the contract's edge
};

/// Shortest-path plug-in: T_A = ⌈η·n_s^δ⌉ declared rounds (polylog factors
/// of Õ(·) omitted — they only rescale constants), η = 1/ε where the cited
/// algorithm's runtime carries a 1/ε factor.
class clique_sp_algorithm {
 public:
  struct params {
    std::string name;
    double delta = 0.0;        ///< runtime exponent δ
    double eps = 0.25;         ///< ε of the cited algorithm
    bool eta_is_inv_eps = true;///< η = 1/ε (else η = 1)
    double alpha_base = 1.0;   ///< α = alpha_base + alpha_eps_mult·ε
    double alpha_eps_mult = 0.0;
    bool beta_is_skeleton_weight = false;  ///< β = ⌈(1+ε)·W_S⌉ (else 0)
    double max_source_exponent = 1.0;      ///< γ of Theorem 4.1
  };

  clique_sp_algorithm(params p, injection inj);

  const std::string& name() const { return p_.name; }
  double eta() const { return p_.eta_is_inv_eps ? 1.0 / p_.eps : 1.0; }
  double delta() const { return p_.delta; }
  double eps() const { return p_.eps; }
  double max_source_exponent() const { return p_.max_source_exponent; }
  u64 declared_rounds(u32 n_s) const;
  approx_contract contract(u64 max_skeleton_weight) const;

  /// dist[j][u] = estimate of d_S(sources[j], u) meeting the contract.
  std::vector<std::vector<u64>> solve(const clique_problem& prob) const;

 private:
  params p_;
  injection inj_;
};

/// Diameter plug-in (weighted diameter of the skeleton).
class clique_diameter_algorithm {
 public:
  struct params {
    std::string name;
    double delta = 0.0;
    double eps = 0.25;
    bool eta_is_inv_eps = true;
    double alpha_base = 1.0;
    double alpha_eps_mult = 0.0;
    bool beta_is_skeleton_weight = false;
  };

  clique_diameter_algorithm(params p, injection inj);

  const std::string& name() const { return p_.name; }
  double eta() const { return p_.eta_is_inv_eps ? 1.0 / p_.eps : 1.0; }
  double delta() const { return p_.delta; }
  double eps() const { return p_.eps; }
  u64 declared_rounds(u32 n_s) const;
  approx_contract contract(u64 max_skeleton_weight) const;
  u64 solve(const clique_problem& prob) const;

 private:
  params p_;
  injection inj_;
};

// ---- factories for the cited algorithms -----------------------------------

/// [7] Thm 1.2: (1+ε) k-SSP for k ≤ √n sources, Õ(1/ε) rounds (Cor 4.6).
clique_sp_algorithm make_clique_kssp_1eps(double eps, injection inj);
/// [7] Thm 1.1: (2+ε, (1+ε)·w)-APSP, Õ(1/ε) rounds (Cor 4.7).
clique_sp_algorithm make_clique_apsp_2eps(double eps, injection inj);
/// [8]: (1+o(1))-APSP in Õ(n^ρ), ρ < 0.15715 (Cor 4.8).
clique_sp_algorithm make_clique_apsp_algebraic(double eps, injection inj);
/// [7] Thm 5.2: exact SSSP in Õ(n^{1/6}) (Cor 4.9 / Thm 1.3).
clique_sp_algorithm make_clique_sssp_exact();
/// [7]: (3/2+ε, W)-diameter in Õ(1/ε) (Cor 5.2).
clique_diameter_algorithm make_clique_diameter_32(double eps, injection inj);
/// [8]: (1+o(1))-diameter via algebraic APSP (Cor 5.3).
clique_diameter_algorithm make_clique_diameter_algebraic(double eps,
                                                         injection inj);

// ---- message-level reference ----------------------------------------------

/// Honest CONGESTED CLIQUE APSP: every node broadcasts one adjacency entry
/// per target per round (n_s rounds of full exchange on clique_net), then
/// solves locally. Used to validate clique_net and as the E13 ablation.
std::vector<std::vector<u64>> naive_clique_apsp(clique_net& net,
                                                const clique_problem& prob);

/// Honest CONGESTED CLIQUE SSSP: synchronous Bellman–Ford over the skeleton
/// edges (each round every node sends its improved distance to each
/// skeleton neighbor — at most n_s messages, within the Lenzen cap).
/// Terminates after SPD(S) quiet rounds; returns exact distances.
std::vector<u64> bellman_ford_clique_sssp(clique_net& net,
                                          const clique_problem& prob,
                                          u32 source);

}  // namespace hybrid
