#include "core/apsp.hpp"

#include <algorithm>
#include <cmath>

#include "proto/dissemination.hpp"
#include "proto/flood.hpp"
#include "proto/skeleton.hpp"
#include "proto/sparse_exploration.hpp"
#include "proto/token_routing.hpp"
#include "util/assert.hpp"

namespace hybrid {

apsp_result hybrid_apsp_exact(const graph& g, const model_config& cfg,
                              u64 seed, bool build_routes, sim_options opts) {
  hybrid_net net(g, cfg, seed, opts);
  const u32 n = net.n();
  apsp_result out;

  // ---- 1. skeleton with p = 1/√n ----------------------------------------
  net.begin_phase("skeleton");
  const double p = 1.0 / std::sqrt(static_cast<double>(n));
  const skeleton_result sk = compute_skeleton(net, p);
  const u32 n_s = static_cast<u32>(sk.nodes.size());
  out.skeleton_size = n_s;
  out.h = sk.h;

  // ---- 2. make E_S public, solve APSP on S locally ------------------------
  net.begin_phase("skeleton_dissemination");
  std::vector<std::vector<token2>> edge_tokens(n);
  for (u32 i = 0; i < n_s; ++i)
    for (const auto& [j, w] : sk.edges[i])
      if (i < j)  // each edge announced once, by its smaller endpoint
        edge_tokens[sk.nodes[i]].push_back({(u64{i} << 32) | j, w});
  disseminate(net, std::move(edge_tokens));
  const std::vector<std::vector<u64>> dist_s = skeleton_apsp(sk);

  // Every node v: d(v, s) = min_{u near v} d_h(v, u) + d_S(u, s)
  // (free local computation; all inputs are known to v — parallel over v).
  std::vector<std::vector<u64>> to_skel(n, std::vector<u64>(n_s, kInfDist));
  net.executor().for_nodes(n, [&](u32 v) {
    for (const source_distance& sd : sk.near[v])
      for (u32 s = 0; s < n_s; ++s) {
        const u64 cand = sd.dist + dist_s[sd.source][s];
        to_skel[v][s] = std::min(to_skel[v][s], cand);
      }
  });

  // ---- 3. token routing: every v sends d(v, s) to each s ∈ V_S -----------
  net.begin_phase("token_routing");
  routing_spec spec;
  spec.senders.resize(n);
  for (u32 v = 0; v < n; ++v) spec.senders[v] = v;
  spec.receivers = sk.nodes;
  spec.p_s = 1.0;
  spec.p_r = p;
  spec.k_s = n_s;
  spec.k_r = n;
  std::vector<std::vector<routed_token>> batch(n);
  for (u32 v = 0; v < n; ++v) {
    batch[v].reserve(n_s);
    for (u32 s = 0; s < n_s; ++s)
      batch[v].push_back({v, sk.nodes[s], 0, to_skel[v][s]});
  }
  const auto delivered = run_token_routing(net, std::move(spec), batch);

  // labels[s][v] = d(s, v) assembled at skeleton node s (parallel over s).
  std::vector<std::vector<u64>> labels(n_s, std::vector<u64>(n, kInfDist));
  net.executor().for_nodes(n_s, [&](u32 s) {
    HYB_INVARIANT(delivered[s].size() == n, "skeleton node missed tokens");
    for (const routed_token& t : delivered[s]) labels[s][t.sender] = t.payload;
  });

  // ---- 4. label flood + parallel local exploration + assembly ------------
  net.begin_phase("label_flood");
  table_flood(net, sk.nodes, std::vector<u64>(n_s, n), sk.h);
  // The full h-hop exploration runs on the local network in parallel with
  // everything above (LOCAL bandwidth is unbounded): charge traffic only.
  // run_local_exploration picks the dense or ball-bounded sparse path per
  // sim_options (proto/sparse_exploration.hpp) — triples and charging are
  // bit-identical either way.
  const sparse_exploration_result local = run_local_exploration(
      net, sk.h, /*advance_rounds=*/false, nullptr, /*first_hops=*/false);

  // The O(n²·|near|) assembly is the simulator's hottest loop; each node u
  // writes only its own distance row, so it runs node-parallel.
  out.dist.assign(n, std::vector<u64>(n, kInfDist));
  net.executor().for_nodes(n, [&](u32 u) {
    std::vector<u64>& row = out.dist[u];
    for (const exploration_entry& e : local.reached(u)) row[e.source] = e.dist;
    for (const source_distance& sd : sk.near[u]) {
      const std::vector<u64>& lbl = labels[sd.source];
      for (u32 v = 0; v < n; ++v)
        row[v] = std::min(row[v], sd.dist + lbl[v]);
    }
  });

  if (build_routes) {
    // One more LOCAL round: every node shares its (exact) distance vector
    // with its neighbors; next_hop[u][v] = argmin_w w(u,w) + d(w,v). With
    // exact distances and weights ≥ 1 the remaining distance strictly
    // decreases along every hop, so greedy forwarding is loop-free and
    // realizes d(u,v) (the paper's IP-routing application).
    net.begin_phase("route_tables");
    net.charge_local(2 * g.num_edges() * n);
    net.advance_round();
    out.next_hop.assign(n, std::vector<u32>(n, ~u32{0}));
    net.executor().for_nodes(n, [&](u32 u) {
      out.next_hop[u][u] = u;
      for (const edge& e : net.g().neighbors(u)) {
        const std::vector<u64>& nbr = out.dist[e.to];
        for (u32 v = 0; v < n; ++v) {
          if (v == u || nbr[v] == kInfDist) continue;
          const u64 through = e.weight + nbr[v];
          if (through == out.dist[u][v] &&
              (out.next_hop[u][v] == ~u32{0} || e.to < out.next_hop[u][v]))
            out.next_hop[u][v] = e.to;
        }
      }
    });
  }
  out.metrics = net.snapshot();
  return out;
}

}  // namespace hybrid
