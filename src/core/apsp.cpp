#include "core/apsp.hpp"

#include <algorithm>
#include <cmath>

#include "proto/dissemination.hpp"
#include "proto/flood.hpp"
#include "proto/skeleton.hpp"
#include "proto/sparse_exploration.hpp"
#include "proto/token_routing.hpp"
#include "util/assert.hpp"

namespace hybrid {

apsp_result hybrid_apsp_exact(const graph& g, const model_config& cfg,
                              u64 seed, bool build_routes, sim_options opts) {
  hybrid_net net(g, cfg, seed, opts);
  const u32 n = net.n();
  apsp_result out;

  // ---- 1. skeleton with p = 1/√n (overridable) ---------------------------
  net.begin_phase("skeleton");
  const double p = cfg.skeleton_p_override > 0.0
                       ? cfg.skeleton_p_override
                       : 1.0 / std::sqrt(static_cast<double>(n));
  const skeleton_result sk = compute_skeleton(net, p);
  const u32 n_s = static_cast<u32>(sk.nodes.size());
  out.skeleton_size = n_s;
  out.h = sk.h;

  // ---- 2. make E_S public ------------------------------------------------
  net.begin_phase("skeleton_dissemination");
  const bool two_level = opts.hierarchy == oracle_hierarchy::kTwoLevel;
  std::vector<std::vector<token2>> edge_tokens(n);
  for (u32 i = 0; i < n_s; ++i)
    for (const auto& [j, w] : sk.edges[i])
      if (i < j)  // each edge announced once, by its smaller endpoint
        edge_tokens[sk.nodes[i]].push_back({(u64{i} << 32) | j, w});
  // Two level runs a dense level-1 skeleton (p₁ ≫ 1/√n), so the gossip
  // simulation's Θ(n·|E_S|) per-node known sets are the memory wall; the
  // charged stand-in keeps the accounting and drops the state (E_S is
  // consumed only inside the skeleton there — DESIGN.md deviation 10).
  // Under active faults the stand-in cannot heal, so the real gossip runs.
  if (two_level && !net.faults_active())
    disseminate_charged(net, std::move(edge_tokens));
  else
    disseminate(net, std::move(edge_tokens));
  super_skeleton_result ss;
  if (!two_level) {
    // ---- 3. single level: solve APSP on S locally, then token routing:
    // every v sends d(v, s) to each s ∈ V_S. d(v, s) = min_{u near v}
    // d_h(v, u) + d_S(u, s) is free local computation (all inputs known to
    // v), written straight into v's token batch — no n × n_s staging matrix
    // (parallel over v).
    const std::vector<std::vector<u64>> dist_s =
        skeleton_apsp(sk, net.executor());
    net.begin_phase("token_routing");
    routing_spec spec;
    spec.senders.resize(n);
    for (u32 v = 0; v < n; ++v) spec.senders[v] = v;
    spec.receivers = sk.nodes;
    spec.p_s = 1.0;
    spec.p_r = p;
    spec.k_s = n_s;
    spec.k_r = n;
    std::vector<std::vector<routed_token>> batch(n);
    net.executor().for_nodes(n, [&](u32 v) {
      batch[v].reserve(n_s);
      for (u32 s = 0; s < n_s; ++s)
        batch[v].push_back({v, sk.nodes[s], 0, kInfDist});
      for (const source_distance& sd : sk.near[v])
        for (u32 s = 0; s < n_s; ++s) {
          const u64 cand = sd.dist + dist_s[sd.source][s];
          batch[v][s].payload = std::min(batch[v][s].payload, cand);
        }
    });
    auto delivered = run_token_routing(net, std::move(spec), std::move(batch));

    // skel[s·n + v] = d(s, v) assembled at skeleton node s (parallel over
    // s; each delivered slice is dropped once its row is written).
    out.labels.skel.assign(u64{n_s} * n, kInfDist);
    net.executor().for_nodes(n_s, [&](u32 s) {
      HYB_INVARIANT(delivered[s].size() == n, "skeleton node missed tokens");
      u64* lbl = out.labels.skel.data() + u64{s} * n;
      for (const routed_token& t : delivered[s]) lbl[t.sender] = t.payload;
      std::vector<routed_token>().swap(delivered[s]);
    });
  } else {
    // ---- 3'. two level: recurse once instead of routing n_s × n rows.
    // A super-skeleton V_S2 ⊆ V_S is sampled and announced; ball1/gw1 over
    // G_S and the n_s2 × n_s2 super-pair table are then free local
    // computation from the public E_S (the skeleton_apsp precedent) — no
    // token-routing phase and no n_s × n table anywhere, which is the
    // whole memory story at n = 10⁵.
    net.begin_phase("super_skeleton");
    const double p2 = cfg.super_p_override > 0.0
                          ? cfg.super_p_override
                          : 1.0 / std::sqrt(static_cast<double>(n_s));
    const u32 h1 =
        cfg.super_h_override > 0
            ? cfg.super_h_override
            : std::max<u32>(
                  1, static_cast<u32>(std::ceil(
                         cfg.skeleton_xi * (1.0 / p2) *
                         std::log(std::max<double>(2.0, n_s)))));
    ss = compute_super_skeleton(net, sk, p2, h1);
    out.labels.n_s2 = static_cast<u32>(ss.members.size());
  }

  // ---- 4. label flood + parallel local exploration -----------------------
  net.begin_phase("label_flood");
  if (!two_level) {
    table_flood(net, sk.nodes, std::vector<u64>(n_s, n), sk.h);
  } else {
    // Each skeleton node floods its level-1 label row (ball1 + gw1
    // triples); super members additionally flood their super-pair row.
    std::vector<u64> words(n_s);
    for (u32 i = 0; i < n_s; ++i) {
      const u64 b1 = ss.ball_offsets[i + 1] - ss.ball_offsets[i];
      const u64 g1 = ss.gw_offsets[i + 1] - ss.gw_offsets[i];
      words[i] = 3 * b1 + 3 * g1 +
                 (ss.index_of[i] != super_skeleton_result::npos
                      ? u64{out.labels.n_s2}
                      : 0);
    }
    table_flood(net, sk.nodes, words, sk.h);
  }
  // The full h-hop exploration runs on the local network in parallel with
  // everything above (LOCAL bandwidth is unbounded): charge traffic only.
  // run_local_exploration picks the dense or ball-bounded sparse path per
  // sim_options (proto/sparse_exploration.hpp) — triples and charging are
  // bit-identical either way.
  out.labels.ball = run_local_exploration(
      net, sk.h, /*advance_rounds=*/false, nullptr, /*first_hops=*/false);

  // Every node now holds its label: ball + gateways + the flooded skeleton
  // table. Package them as the dist_labels oracle (core/dist_oracle.hpp).
  out.labels.n = n;
  out.labels.n_s = n_s;
  out.labels.h = sk.h;
  out.labels.scheme =
      two_level ? label_scheme::kTwoLevel : label_scheme::kSkeletonRows;
  out.labels.topo = &g;
  out.labels.skeleton_nodes = sk.nodes;
  if (two_level) {
    out.labels.ball1_offsets = std::move(ss.ball_offsets);
    out.labels.ball1_entries = std::move(ss.ball_entries);
    out.labels.gw1_offsets = std::move(ss.gw_offsets);
    out.labels.gw1 = std::move(ss.gateways);
    out.labels.super_nodes = std::move(ss.members);
    out.labels.skel = std::move(ss.pairs);
  }
  out.labels.gw_offsets.assign(n + 1, 0);
  for (u32 v = 0; v < n; ++v)
    out.labels.gw_offsets[v + 1] = out.labels.gw_offsets[v] + sk.near[v].size();
  out.labels.gateways.resize(out.labels.gw_offsets[n]);
  net.executor().for_nodes(n, [&](u32 v) {
    std::copy(sk.near[v].begin(), sk.near[v].end(),
              out.labels.gateways.begin() +
                  static_cast<std::ptrdiff_t>(out.labels.gw_offsets[v]));
  });

  if (build_routes) {
    // One more LOCAL round: every node shares its (exact) distance labels
    // with its neighbors; next_hop(u, v) = argmin_w w(u,w) + d(w,v). With
    // exact distances and weights ≥ 1 the remaining distance strictly
    // decreases along every hop, so greedy forwarding is loop-free and
    // realizes d(u,v) (the paper's IP-routing application).
    net.begin_phase("route_tables");
    net.charge_local(2 * g.num_edges() * n);
    // Closed-form neighbor-exchange budget: reliability-abstracted, so the
    // whole charge counts as delivered (run_metrics::local_delivered).
    net.note_local_delivered(2 * g.num_edges() * n);
    net.advance_round();
    out.labels.routes = true;
  }
  out.metrics = net.snapshot();

  // Dense adapters for pre-oracle callers (free local computation — the
  // labels already determine every entry).
  if (resolve_materialize(opts, n)) {
    out.dist = out.labels.materialize(net.executor());
    if (build_routes)
      out.next_hop = out.labels.materialize_next_hops(out.dist, net.executor());
  }
  return out;
}

}  // namespace hybrid
