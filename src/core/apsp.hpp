// Exact APSP in Õ(√n) HYBRID rounds (paper Theorem 1.1, Section 3).
//
// Pipeline (x = √n, p = 1/x):
//   1. skeleton: sample V_S with probability 1/√n, h = Õ(√n) local rounds
//      teach every node d_h to nearby skeletons and give V_S its edges;
//   2. the Õ(n) skeleton edges are token-disseminated (Õ(√n) rounds), after
//      which every node solves APSP on S locally and knows d(v, s) for all
//      s ∈ V_S (via min over nearby skeleton nodes);
//   3. the replaced bottleneck: instead of broadcasting all |V_S|·n distance
//      labels ([3]'s Õ(n^{2/3}) approach, see apsp_baseline.hpp), every node
//      v routes one token per skeleton node s carrying d(v, s) with token
//      routing — Õ(n·(n/x)/n + √n) = Õ(√n) rounds (proof of Theorem 1.1);
//   4. every skeleton node s now knows d(s, v) for all v and floods the
//      label table h hops; nodes assemble
//        d(u, v) = min(d_h(u, v), min_{s near u} d_h(u, s) + d(s, v)).
#pragma once

#include "graph/graph.hpp"
#include "sim/hybrid_net.hpp"

namespace hybrid {

struct apsp_result {
  std::vector<std::vector<u64>> dist;  ///< dist[u][v]
  /// When built (see below): next_hop[u][v] = u's neighbor on a shortest
  /// u→v path (u itself on the diagonal). Greedy forwarding along these
  /// entries realizes exactly dist[u][v] — the paper's IP-routing
  /// application (Section 1).
  std::vector<std::vector<u32>> next_hop;
  run_metrics metrics;
  u32 skeleton_size = 0;
  u32 h = 0;
};

/// Theorem 1.1. With `build_routes` every node additionally derives its
/// next-hop routing table from information it already holds (free local
/// computation: the local exploration's first hops and its chosen skeleton
/// gateway), so the round complexity is unchanged. `opts` selects the
/// executor thread count (docs/CONCURRENCY.md); results are bit-identical
/// for every thread count.
apsp_result hybrid_apsp_exact(const graph& g, const model_config& cfg,
                              u64 seed, bool build_routes = false,
                              sim_options opts = {});

}  // namespace hybrid
