// Exact APSP in Õ(√n) HYBRID rounds (paper Theorem 1.1, Section 3).
//
// Pipeline (x = √n, p = 1/x):
//   1. skeleton: sample V_S with probability 1/√n, h = Õ(√n) local rounds
//      teach every node d_h to nearby skeletons and give V_S its edges;
//   2. the Õ(n) skeleton edges are token-disseminated (Õ(√n) rounds), after
//      which every node solves APSP on S locally and knows d(v, s) for all
//      s ∈ V_S (via min over nearby skeleton nodes);
//   3. the replaced bottleneck: instead of broadcasting all |V_S|·n distance
//      labels ([3]'s Õ(n^{2/3}) approach, see apsp_baseline.hpp), every node
//      v routes one token per skeleton node s carrying d(v, s) with token
//      routing — Õ(n·(n/x)/n + √n) = Õ(√n) rounds (proof of Theorem 1.1);
//   4. every skeleton node s now knows d(s, v) for all v and floods the
//      label table h hops; every node now holds the per-node labels of
//      core/dist_oracle.hpp and can answer
//        d(u, v) = min(d_h(u, v), min_{s near u} d_h(u, s) + d(s, v))
//      as a free local computation.
//
// Fault behavior (docs/FAULTS.md): every stage self-heals under injected
// message loss on both planes plus crash/recovery — the floods and the
// exploration through their healed re-offer engines, token routing through
// its acknowledgement layer — so the labels come out bit-identical to the
// fault-free run or the pipeline throws fault_failure explicitly. The one
// refusal: charged_token_routing=true throws fault_unsupported under any
// injected fault (its closed-form budgets move no real messages).
#pragma once

#include "core/dist_oracle.hpp"
#include "graph/graph.hpp"
#include "sim/hybrid_net.hpp"

namespace hybrid {

struct apsp_result {
  /// The native output: queryable per-node distance labels (always built).
  /// `labels.query(u, v)` / `labels.next_hop(u, v)` / `labels.row(u)` answer
  /// from Õ(|ball_h(u)| + |V_S|)-word node labels; `labels.topo` points at
  /// the caller's graph, which must outlive the result.
  dist_labels labels;
  /// Dense adapters over the labels, filled when resolve_materialize(opts,
  /// n) holds (sim_options{storage}; auto = n ≤ kDenseExplorationMaxNodes)
  /// so pre-oracle callers stay source-compatible: dist[u][v], and — with
  /// `build_routes` — next_hop[u][v] = u's neighbor on a shortest u→v path
  /// (u itself on the diagonal). Greedy forwarding along next-hop entries
  /// realizes exactly dist[u][v] — the paper's IP-routing application
  /// (Section 1).
  std::vector<std::vector<u64>> dist;
  std::vector<std::vector<u32>> next_hop;
  run_metrics metrics;
  u32 skeleton_size = 0;
  u32 h = 0;

  bool materialized() const { return !dist.empty(); }
};

/// Theorem 1.1. With `build_routes` every node additionally exchanges its
/// distance labels with its neighbors in one more LOCAL round, after which
/// next-hop routing is a free local computation (the round complexity is
/// otherwise unchanged). `opts` selects the executor thread count, the
/// exploration path, and the result storage (docs/CONCURRENCY.md,
/// core/dist_oracle.hpp); distances, labels, and metrics are bit-identical
/// for every thread count, either exploration path, and either storage mode.
apsp_result hybrid_apsp_exact(const graph& g, const model_config& cfg,
                              u64 seed, bool build_routes = false,
                              sim_options opts = {});

}  // namespace hybrid
