#include "core/apsp_baseline.hpp"

#include <algorithm>
#include <cmath>

#include "proto/dissemination.hpp"
#include "proto/flood.hpp"
#include "proto/skeleton.hpp"
#include "proto/sparse_exploration.hpp"
#include "util/assert.hpp"

namespace hybrid {

apsp_baseline_result baseline_apsp_ahkss(const graph& g,
                                         const model_config& cfg, u64 seed,
                                         sim_options opts) {
  hybrid_net net(g, cfg, seed, opts);
  const u32 n = net.n();
  apsp_baseline_result out;

  // ---- 1. skeleton with p = n^{-2/3} --------------------------------------
  net.begin_phase("skeleton");
  const double p = std::pow(static_cast<double>(n), -2.0 / 3.0);
  const skeleton_result sk = compute_skeleton(net, p);
  const u32 n_s = static_cast<u32>(sk.nodes.size());
  out.skeleton_size = n_s;
  out.h = sk.h;

  // ---- 2. make E_S public ----------------------------------------------
  net.begin_phase("skeleton_dissemination");
  std::vector<std::vector<token2>> edge_tokens(n);
  for (u32 i = 0; i < n_s; ++i)
    for (const auto& [j, w] : sk.edges[i])
      if (i < j) edge_tokens[sk.nodes[i]].push_back({(u64{i} << 32) | j, w});
  disseminate(net, std::move(edge_tokens));
  const std::vector<std::vector<u64>> dist_s = skeleton_apsp(sk, net.executor());

  // ---- 3. broadcast ALL h-limited labels d_h(v, s) ------------------------
  net.begin_phase("label_dissemination");
  std::vector<std::vector<token2>> label_tokens(n);
  for (u32 v = 0; v < n; ++v)
    for (const source_distance& sd : sk.near[v]) {
      label_tokens[v].push_back({(u64{v} << 32) | sd.source, sd.dist});
      ++out.labels_broadcast;
    }
  disseminate(net, std::move(label_tokens));

  // ---- 4. per-node labels ---------------------------------------------------
  // After the broadcast every node holds all (v, s, d_h(v, s)) tokens and
  // the public d_S, i.e. the two-sided label
  //   d(u, v) = min(d_h(u, v),
  //                 min_{s1 near u, s2 near v} d_h(u,s1) + d_S(s1,s2) + d_h(v,s2))
  // — stored once as the dist_labels oracle instead of a per-node copy (the
  // same content-is-identical sharing as table_flood, DESIGN.md deviation 2).
  net.begin_phase("assembly");
  out.labels.ball = run_local_exploration(
      net, sk.h, /*advance_rounds=*/false, nullptr, /*first_hops=*/false);
  out.labels.n = n;
  out.labels.n_s = n_s;
  out.labels.h = sk.h;
  out.labels.scheme = label_scheme::kSkeletonPairs;
  out.labels.topo = &g;
  out.labels.skeleton_nodes = sk.nodes;
  out.labels.skel.assign(u64{n_s} * n_s, kInfDist);
  for (u32 i = 0; i < n_s; ++i)
    for (u32 j = 0; j < n_s; ++j) out.labels.skel[u64{i} * n_s + j] = dist_s[i][j];
  out.labels.gw_offsets.assign(n + 1, 0);
  for (u32 v = 0; v < n; ++v)
    out.labels.gw_offsets[v + 1] = out.labels.gw_offsets[v] + sk.near[v].size();
  out.labels.gateways.resize(out.labels.gw_offsets[n]);
  net.executor().for_nodes(n, [&](u32 v) {
    std::copy(sk.near[v].begin(), sk.near[v].end(),
              out.labels.gateways.begin() +
                  static_cast<std::ptrdiff_t>(out.labels.gw_offsets[v]));
  });
  out.metrics = net.snapshot();

  if (resolve_materialize(opts, n))
    out.dist = out.labels.materialize(net.executor());
  return out;
}

}  // namespace hybrid
