#include "core/apsp_baseline.hpp"

#include <algorithm>
#include <cmath>

#include "proto/dissemination.hpp"
#include "proto/flood.hpp"
#include "proto/skeleton.hpp"
#include "proto/sparse_exploration.hpp"
#include "util/assert.hpp"

namespace hybrid {

apsp_baseline_result baseline_apsp_ahkss(const graph& g,
                                         const model_config& cfg, u64 seed,
                                         sim_options opts) {
  hybrid_net net(g, cfg, seed, opts);
  const u32 n = net.n();
  apsp_baseline_result out;

  // ---- 1. skeleton with p = n^{-2/3} --------------------------------------
  net.begin_phase("skeleton");
  const double p = std::pow(static_cast<double>(n), -2.0 / 3.0);
  const skeleton_result sk = compute_skeleton(net, p);
  const u32 n_s = static_cast<u32>(sk.nodes.size());
  out.skeleton_size = n_s;
  out.h = sk.h;

  // ---- 2. make E_S public ----------------------------------------------
  net.begin_phase("skeleton_dissemination");
  std::vector<std::vector<token2>> edge_tokens(n);
  for (u32 i = 0; i < n_s; ++i)
    for (const auto& [j, w] : sk.edges[i])
      if (i < j) edge_tokens[sk.nodes[i]].push_back({(u64{i} << 32) | j, w});
  disseminate(net, std::move(edge_tokens));
  const std::vector<std::vector<u64>> dist_s = skeleton_apsp(sk);

  // ---- 3. broadcast ALL h-limited labels d_h(v, s) ------------------------
  net.begin_phase("label_dissemination");
  std::vector<std::vector<token2>> label_tokens(n);
  for (u32 v = 0; v < n; ++v)
    for (const source_distance& sd : sk.near[v]) {
      label_tokens[v].push_back({(u64{v} << 32) | sd.source, sd.dist});
      ++out.labels_broadcast;
    }
  const dissemination_result labels =
      disseminate(net, std::move(label_tokens));

  // ---- 4. assemble locally ------------------------------------------------
  net.begin_phase("assembly");
  const sparse_exploration_result local = run_local_exploration(
      net, sk.h, /*advance_rounds=*/false, nullptr, /*first_hops=*/false);

  out.dist.assign(n, std::vector<u64>(n, kInfDist));
  for (u32 u = 0; u < n; ++u) {
    std::vector<u64>& row = out.dist[u];
    for (const exploration_entry& e : local.reached(u)) row[e.source] = e.dist;
    // A[s2] = min_{s1 near u} d_h(u, s1) + d_S(s1, s2).
    std::vector<u64> a(n_s, kInfDist);
    for (const source_distance& sd : sk.near[u])
      for (u32 s2 = 0; s2 < n_s; ++s2)
        a[s2] = std::min(a[s2], sd.dist + dist_s[sd.source][s2]);
    for (const token2& t : labels.tokens) {
      const u32 v = static_cast<u32>(t.a >> 32);
      const u32 s2 = static_cast<u32>(t.a & 0xffffffffu);
      if (a[s2] == kInfDist) continue;
      row[v] = std::min(row[v], a[s2] + t.b);
    }
  }
  out.metrics = net.snapshot();
  return out;
}

}  // namespace hybrid
