// Baseline: the exact APSP algorithm of Augustine et al. [3] in Õ(n^{2/3})
// HYBRID rounds (the algorithm Theorem 1.1 improves on; Section 3 describes
// the difference).
//
// Identical pipeline to core/apsp.hpp except for the last step: instead of
// token-routing one label per (node, skeleton) pair to its skeleton node,
// ALL h-limited distance labels d_h(v, s), (v, s) ∈ V × V_S, are broadcast
// to the whole network with token dissemination. That is Θ(n·|V_S|) tokens;
// with the trade-off optimized at x = n^{2/3} (|V_S| ≈ n^{1/3}) the total
// runtime is Õ(x + n/√x) = Õ(n^{2/3}).
//
// Fault behavior (docs/FAULTS.md): like core/apsp.hpp, every stage
// self-heals under message loss on both planes plus crash/recovery, so the
// labels are bit-identical to the fault-free run or the pipeline throws
// fault_failure explicitly (this pipeline has no charged stand-in, so no
// fault_unsupported case at all).
#pragma once

#include "core/dist_oracle.hpp"
#include "graph/graph.hpp"
#include "sim/hybrid_net.hpp"

namespace hybrid {

struct apsp_baseline_result {
  /// Two-sided labels (label_scheme::kSkeletonPairs): ball + gateways + the
  /// public skeleton-pair distances. Always built; `labels.topo` points at
  /// the caller's graph.
  dist_labels labels;
  /// Dense adapter, filled when resolve_materialize(opts, n) holds.
  std::vector<std::vector<u64>> dist;
  run_metrics metrics;
  u32 skeleton_size = 0;
  u32 h = 0;
  u64 labels_broadcast = 0;

  bool materialized() const { return !dist.empty(); }
};

/// `opts` selects the executor thread count, the local-exploration path, and
/// the result storage (docs/CONCURRENCY.md, proto/sparse_exploration.hpp,
/// core/dist_oracle.hpp); results are bit-identical for every thread count
/// and either exploration path or storage mode.
apsp_baseline_result baseline_apsp_ahkss(const graph& g,
                                         const model_config& cfg, u64 seed,
                                         sim_options opts = {});

}  // namespace hybrid
