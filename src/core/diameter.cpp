#include "core/diameter.hpp"

#include <algorithm>
#include <cmath>

#include "core/sssp.hpp"
#include "graph/diameter.hpp"
#include "proto/aggregation.hpp"
#include "proto/clique_embed.hpp"
#include "proto/flood.hpp"
#include "proto/skeleton.hpp"
#include "util/assert.hpp"

namespace hybrid {

diameter_result hybrid_diameter(const graph& g, const model_config& cfg,
                                u64 seed,
                                const clique_diameter_algorithm& alg,
                                sim_options opts) {
  HYB_REQUIRE(g.is_unweighted(),
              "Theorem 5.1 approximates the unweighted diameter");
  hybrid_net net(g, cfg, seed, opts);
  const u32 n = net.n();
  diameter_result out;

  // ---- 1. skeleton ---------------------------------------------------------
  net.begin_phase("skeleton");
  const double x = 2.0 / (3.0 + 2.0 * alg.delta());  // Theorem 5.1

  const double p = std::pow(static_cast<double>(n), x - 1.0);
  const skeleton_result sk = compute_skeleton(net, p);
  const u32 n_s = static_cast<u32>(sk.nodes.size());
  out.skeleton_size = n_s;
  out.h = sk.h;

  // ---- 2. CLIQUE diameter algorithm on the skeleton ------------------------
  net.begin_phase("clique_embedding");
  clique_embedding emb = build_clique_embedding(net, sk);
  net.begin_phase("clique_simulation");
  charge_clique_rounds(net, emb, alg.declared_rounds(n_s));

  u64 max_skel_weight = 1;
  for (const auto& adj : sk.edges)
    for (const auto& [to, w] : adj) {
      (void)to;
      max_skel_weight = std::max(max_skel_weight, w);
    }
  clique_problem prob;
  prob.n_s = n_s;
  prob.edges = &sk.edges;
  prob.max_edge_weight = max_skel_weight;
  out.skeleton_estimate = alg.solve(prob);

  // ---- 3. (ηh+1)-round hello flood: h_v, and D̃(S) rides along -------------
  net.begin_phase("eccentricity_flood");
  const u64 eta_h =
      static_cast<u64>(std::ceil(alg.eta() * static_cast<double>(sk.h))) + 1;
  const auto ecc = truncated_eccentricity(net, static_cast<u32>(eta_h));
  net.charge_local(n);  // D̃(S) spreading from skeleton nodes, in parallel
  net.note_local_delivered(n);  // closed-form budget: no loss model
  out.exploration_depth = eta_h;

  // ---- 4. ĥ = max_v h_v (Lemma B.2 aggregation) ----------------------------
  net.begin_phase("aggregation");
  std::vector<u64> hv(n);
  for (u32 v = 0; v < n; ++v) hv[v] = ecc[v];
  out.h_hat = global_aggregate(net, agg_op::max, hv);

  // ---- 5. Equation (3) ------------------------------------------------------
  if (out.h_hat <= eta_h - 1) {
    out.estimate = out.h_hat;  // the flood saw the whole graph: D̃ = D
    out.exact_path = true;
  } else {
    out.estimate = out.skeleton_estimate + 2 * sk.h;
    out.exact_path = false;
  }

  out.metrics = net.snapshot();
  const double t_b = static_cast<double>(out.metrics.rounds);
  const approx_contract c = alg.contract(max_skel_weight);
  out.bound = c.alpha + 2.0 / alg.eta() + static_cast<double>(c.beta) / t_b;
  return out;
}

weighted_diameter_result hybrid_weighted_diameter_2approx(
    const graph& g, const model_config& cfg, u64 seed, u32 pivot,
    sim_options opts) {
  HYB_REQUIRE(pivot < g.num_nodes(), "pivot out of range");
  // One exact SSSP from the pivot (Theorem 1.3), then a max-aggregation
  // over every node's learned distance (Lemma B.2) yields e(pivot).
  sssp_result sssp = hybrid_sssp_exact(g, cfg, seed, pivot, opts);
  weighted_diameter_result out;
  for (u64 d : sssp.dist) {
    HYB_REQUIRE(d != kInfDist, "graph must be connected");
    out.eccentricity = std::max(out.eccentricity, d);
  }
  out.estimate = 2 * out.eccentricity;
  out.metrics = std::move(sssp.metrics);
  // Charge the aggregation that makes e(pivot) common knowledge.
  out.metrics.rounds += aggregation_rounds(g.num_nodes());
  out.metrics.global_messages += g.num_nodes();
  return out;
}

u64 labels_exact_diameter(const dist_labels& labels, bool require_connected) {
  HYB_REQUIRE(labels.scheme == label_scheme::kSkeletonRows ||
                  labels.scheme == label_scheme::kTwoLevel,
              "labels_exact_diameter consumes hybrid_apsp_exact labels");
  return diameter_of_rows(
      labels.n, [&](u32 u, std::vector<u64>& row) { labels.row_into(u, row); },
      require_connected);
}

label_diameter_estimate diameter_estimate_from_labels(
    const dist_labels& labels) {
  HYB_REQUIRE(labels.scheme == label_scheme::kSkeletonRows ||
                  labels.scheme == label_scheme::kTwoLevel,
              "the skeleton estimate consumes hybrid_apsp_exact labels");
  label_diameter_estimate out;
  // M = max finite skeleton-table entry: rows hold d(s, v) over all nodes
  // (M ≤ D directly); the two-level table holds super-pair distances, so M
  // is a diameter lower bound over V_S2 only and both query endpoints pay
  // their gateway legs in the upper bound below.
  for (u64 d : labels.skel)
    if (d < kInfDist) out.skeleton_max = std::max(out.skeleton_max, d);
  // L = max over nodes of the distance to their nearest gateway.
  for (u32 v = 0; v < labels.n; ++v) {
    u64 nearest = kInfDist;
    for (const source_distance& sd : labels.gateways_of(v))
      nearest = std::min(nearest, sd.dist);
    if (nearest == kInfDist) continue;  // uncovered node: no skeleton in reach
    ++out.covered;
    out.gateway_slack = std::max(out.gateway_slack, nearest);
  }
  const label_view view = labels.view();
  if (labels.scheme == label_scheme::kSkeletonRows) {
    // d(u, v) ≤ d_h(u, s_u) + d(s_u, v) ≤ L + M for covered u: D ≤ M + L.
    out.estimate = out.skeleton_max + out.gateway_slack;
    out.bound =
        1.0 + static_cast<double>(out.gateway_slack) /
                  static_cast<double>(std::max<u64>(out.skeleton_max, 1));
  } else {
    // L1 = max over gw1-covered skeleton nodes of min level-2 gateway dist.
    // d(u, v) ≤ L + d_S1(s_u, t_v) + L and d_S1(s, t) ≤ L1 + M + L1 when
    // both s and t reach a super member, so D ≤ M + 2·L1 + 2·L when every
    // node and skeleton node is covered.
    for (u32 s1 = 0; s1 < labels.n_s; ++s1) {
      u64 nearest = kInfDist;
      for (const source_distance& sd : view.gw1_of(s1))
        nearest = std::min(nearest, sd.dist);
      if (nearest == kInfDist) continue;
      out.super_slack = std::max(out.super_slack, nearest);
    }
    const u64 slack = 2 * out.super_slack + 2 * out.gateway_slack;
    out.estimate = out.skeleton_max + slack;
    out.bound = 1.0 + static_cast<double>(slack) /
                          static_cast<double>(std::max<u64>(out.skeleton_max, 1));
  }
  return out;
}

}  // namespace hybrid
