// Diameter approximation in the HYBRID model (paper Theorem 5.1, Algorithm
// 9; instantiations Theorem 1.4 / Corollaries 5.2–5.3). Unweighted graphs.
//
// Pipeline: skeleton of Θ(n^x) nodes (x = 2/(3+2δ)); a CLIQUE diameter
// algorithm runs on it via the embedding, giving all skeleton nodes an
// (α, β)-estimate D̃(S); an (ηh+1)-round hello flood teaches every node its
// truncated eccentricity h_v (and spreads D̃(S) along the way); a global
// max-aggregation produces ĥ = max_v h_v; finally Equation (3):
//   D̃ = ĥ             if ĥ ≤ ηh   (then D̃ = D exactly)
//   D̃ = D̃(S) + 2h     otherwise   (then D ≤ D̃ ≤ (α + 2/η + β/T_B)·D).
//
// Fault behavior (docs/FAULTS.md): every stage self-heals under message
// loss on both planes plus crash/recovery — the eccentricity flood through
// the healed exploration engine (unit weights), the skeleton and embedding
// through the healed floods — so estimate/ĥ/D̃(S) are bit-identical to the
// fault-free run or the pipeline throws fault_failure explicitly.
#pragma once

#include "clique/algorithms.hpp"
#include "core/dist_oracle.hpp"
#include "graph/graph.hpp"
#include "sim/hybrid_net.hpp"

namespace hybrid {

struct diameter_result {
  u64 estimate = 0;      ///< D̃
  bool exact_path = false;  ///< true when Equation (3) took the ĥ branch
  u64 skeleton_estimate = 0;  ///< D̃(S)
  u64 h_hat = 0;
  run_metrics metrics;
  u32 skeleton_size = 0;
  u32 h = 0;
  u64 exploration_depth = 0;
  double bound = 0.0;  ///< proven approximation factor at measured T_B
};

diameter_result hybrid_diameter(const graph& g, const model_config& cfg,
                                u64 seed,
                                const clique_diameter_algorithm& alg,
                                sim_options opts = {});

/// Weighted-diameter (2+o(1))-approximation in Õ(n^{2/5}) rounds — the
/// upper bound the paper pairs with Theorem 1.6's (2−ε) lower bound
/// (Section 1.1, footnote 6): one exact SSSP (Theorem 1.3) gives the
/// eccentricity e(v) of its source via a max-aggregation, and
/// e(v) ≤ D_w ≤ 2·e(v), so 2·e(v) is a 2-approximation from above.
struct weighted_diameter_result {
  u64 estimate = 0;     ///< 2·e(v): D_w ≤ estimate ≤ 2·D_w
  u64 eccentricity = 0; ///< e(v): e(v) ≤ D_w
  run_metrics metrics;
};

weighted_diameter_result hybrid_weighted_diameter_2approx(
    const graph& g, const model_config& cfg, u64 seed, u32 pivot = 0,
    sim_options opts = {});

// ---- diameter through the Theorem 1.1 distance labels ----------------------
//
// Once hybrid_apsp_exact has produced its labels, the weighted diameter is a
// free local derivation — no further simulated rounds. Two consumers:
//
//   * labels_exact_diameter streams one label row at a time through
//     graph/diameter's diameter_of_rows — exact, O(n) working memory, Θ(n²)
//     query work (small and mid n);
//   * diameter_estimate_from_labels touches only the skeleton table and the
//     gateway lists — Θ(n_s·n + n) work, the form that completes at n = 10⁵.
//     It is Equation (3)'s skeleton branch (D̃(S) + gateway legs) computed
//     on the oracle: with M = max_{s,v} d(s, v) and L = max_v min-gateway
//     distance, M ≤ D ≤ M + L, so `estimate` = M + L is a
//     (1 + L/M)-approximation from above whenever every node has a gateway.

/// Exact weighted diameter from APSP labels (kSkeletonRows or kTwoLevel —
/// row_into is scheme-generic). `require_connected` mirrors the centralized
/// reference; without it unreachable pairs are skipped.
u64 labels_exact_diameter(const dist_labels& labels,
                          bool require_connected = true);

struct label_diameter_estimate {
  u64 estimate = 0;      ///< D ≤ estimate when covered == n (see below)
  u64 skeleton_max = 0;  ///< M = max finite skeleton-table entry; M ≤ D
  u64 gateway_slack = 0;  ///< L = max over covered nodes of min gateway dist
  /// L1 = max over gw1-covered skeleton nodes of min level-2 gateway dist
  /// (kTwoLevel only, else 0).
  u64 super_slack = 0;
  u32 covered = 0;  ///< nodes with at least one skeleton gateway
  /// estimate ≤ bound·D when every node and skeleton node is covered
  /// (bound = 1 + slack/M; the measured 1 + ε of the skeleton
  /// approximation).
  double bound = 0.0;
};

/// Cheap diameter estimate from the skeleton part of the labels.
/// kSkeletonRows: estimate = M + L (d(u,v) ≤ d_h(u,s_u) + d(s_u,v)).
/// kTwoLevel: M is the max finite SUPER-pair distance, so both endpoints
/// pay a gateway leg at both levels: estimate = M + 2·L1 + 2·L.
label_diameter_estimate diameter_estimate_from_labels(
    const dist_labels& labels);

}  // namespace hybrid
