// The oracle's query paths are the dense assembly loops of core/apsp.cpp,
// core/apsp_baseline.cpp, and core/kssp_framework.cpp (as they stood before
// PR 5), restricted to one pair or one row. Keeping the iteration order, the
// relaxation arithmetic, and the kInfDist edge handling line-for-line
// identical to those loops is what makes query()/materialize() bit-identical
// to the retired eager matrices — the differential suite asserts it.
//
// Everything is implemented on label_view — spans, not vectors — so the
// owning dist_labels and core/oracle_store's mmap-ed labels run the same
// machine code over either storage (the round-trip suite asserts the
// bit-identity that design makes structural).
#include "core/dist_oracle.hpp"

#include <algorithm>

#include "util/assert.hpp"

namespace hybrid {

namespace {

/// Binary search one node's ball slice (sorted by source id).
u64 ball_lookup(std::span<const exploration_entry> slice, u32 target) {
  const auto it = std::lower_bound(
      slice.begin(), slice.end(), target,
      [](const exploration_entry& e, u32 v) { return e.source < v; });
  if (it == slice.end() || it->source != target) return kInfDist;
  return it->dist;
}

}  // namespace

u64 label_view::ball_dist(u32 u, u32 v) const { return ball_lookup(ball_of(u), v); }

u64 label_view::query(u32 u, u32 v) const {
  u64 best = ball_dist(u, v);
  if (scheme == label_scheme::kSkeletonRows) {
    // min_{s near u} d_h(u, s) + d(s, v) — the Theorem 1.1 assembly.
    for (const source_distance& sd : gateways_of(u)) {
      const u64 cand = sd.dist + skel[u64{sd.source} * n + v];
      best = std::min(best, cand);
    }
  } else {
    // min_{s1 near u, s2 near v} d_h(u,s1) + d_S(s1,s2) + d_h(v,s2) — the
    // baseline assembly with A[s2] = min_{s1} d_h(u,s1) + d_S(s1,s2)
    // evaluated per s2, including its skip-at-exactly-∞ filter.
    for (const source_distance& to : gateways_of(v)) {
      u64 a = kInfDist;
      for (const source_distance& from : gateways_of(u))
        a = std::min(a, from.dist + skel[u64{from.source} * n_s + to.source]);
      if (a == kInfDist) continue;
      best = std::min(best, a + to.dist);
    }
  }
  return best;
}

u32 label_view::next_hop(u32 u, u32 v) const {
  HYB_REQUIRE(routes, "next_hop requires labels built with build_routes");
  HYB_REQUIRE(topo != nullptr, "next_hop requires the local graph");
  if (u == v) return u;
  const u64 du = query(u, v);
  // The dense loop: among neighbors w with w(u,w) + d(w,v) == d(u,v), the
  // smallest ID wins; unreachable targets keep ~0.
  u32 best = ~u32{0};
  for (const edge& e : topo->neighbors(u)) {
    const u64 dn = query(e.to, v);
    if (dn == kInfDist) continue;
    if (e.weight + dn == du && (best == ~u32{0} || e.to < best)) best = e.to;
  }
  return best;
}

void label_view::row_into(u32 u, std::vector<u64>& out) const {
  out.assign(n, kInfDist);
  for (const exploration_entry& e : ball_of(u)) out[e.source] = e.dist;
  if (scheme == label_scheme::kSkeletonRows) {
    for (const source_distance& sd : gateways_of(u)) {
      const u64* lbl = skel.data() + u64{sd.source} * n;
      for (u32 v = 0; v < n; ++v) out[v] = std::min(out[v], sd.dist + lbl[v]);
    }
  } else {
    // A[s2] = min_{s1 near u} d_h(u, s1) + d_S(s1, s2), then one gateway
    // scan per target — the baseline loop with its token scan replaced by
    // the equivalent per-target gateway lists.
    std::vector<u64> a(n_s, kInfDist);
    for (const source_distance& from : gateways_of(u))
      for (u32 s2 = 0; s2 < n_s; ++s2)
        a[s2] = std::min(a[s2], from.dist + skel[u64{from.source} * n_s + s2]);
    for (u32 v = 0; v < n; ++v)
      for (const source_distance& to : gateways_of(v)) {
        if (a[to.source] == kInfDist) continue;
        out[v] = std::min(out[v], a[to.source] + to.dist);
      }
  }
}

std::vector<u64> label_view::row(u32 u) const {
  std::vector<u64> out;
  row_into(u, out);
  return out;
}

std::vector<std::vector<u64>> dist_labels::materialize(round_executor& ex) const {
  const label_view v = view();
  std::vector<std::vector<u64>> dist(n);
  ex.for_nodes(n, [&](u32 u) { v.row_into(u, dist[u]); });
  return dist;
}

std::vector<std::vector<u64>> dist_labels::materialize(sim_options opts) const {
  round_executor ex(opts);
  return materialize(ex);
}

std::vector<std::vector<u32>> dist_labels::materialize_next_hops(
    const std::vector<std::vector<u64>>& dist, round_executor& ex) const {
  HYB_REQUIRE(routes, "next-hop tables require labels built with build_routes");
  HYB_REQUIRE(topo != nullptr, "next-hop tables require the local graph");
  std::vector<std::vector<u32>> hops(n, std::vector<u32>(n, ~u32{0}));
  ex.for_nodes(n, [&](u32 u) {
    hops[u][u] = u;
    for (const edge& e : topo->neighbors(u)) {
      const std::vector<u64>& nbr = dist[e.to];
      for (u32 v = 0; v < n; ++v) {
        if (v == u || nbr[v] == kInfDist) continue;
        const u64 through = e.weight + nbr[v];
        if (through == dist[u][v] &&
            (hops[u][v] == ~u32{0} || e.to < hops[u][v]))
          hops[u][v] = e.to;
      }
    }
  });
  return hops;
}

// ---- kssp_labels -----------------------------------------------------------

u64 kssp_labels::query(u32 j, u32 v) const {
  u64 best = ball_lookup(ball.reached(v), sources[j]);
  const u64 leg = rep_leg[j];
  const u64* est_row = est.data() + u64{rep_slot[j]} * n_s;
  for (const source_distance& sd : gateways_of(v)) {
    const u64 mid = est_row[sd.source];
    if (mid == kInfDist) continue;
    best = std::min(best, sd.dist + mid + leg);
  }
  return best;
}

void kssp_labels::row_into(u32 j, std::vector<u64>& out) const {
  out.resize(n);
  for (u32 v = 0; v < n; ++v) out[v] = query(j, v);
}

std::vector<u64> kssp_labels::row(u32 j) const {
  std::vector<u64> out;
  row_into(j, out);
  return out;
}

std::vector<std::vector<u64>> kssp_labels::materialize(round_executor& ex) const {
  std::vector<std::vector<u64>> dist(sources.size(), std::vector<u64>(n));
  for (u32 j = 0; j < sources.size(); ++j)
    ex.for_nodes(n, [&](u32 v) { dist[j][v] = query(j, v); });
  return dist;
}

}  // namespace hybrid
