// The oracle's query paths are the dense assembly loops of core/apsp.cpp,
// core/apsp_baseline.cpp, and core/kssp_framework.cpp (as they stood before
// PR 5), restricted to one pair or one row. Keeping the iteration order, the
// relaxation arithmetic, and the kInfDist edge handling line-for-line
// identical to those loops is what makes query()/materialize() bit-identical
// to the retired eager matrices — the differential suite asserts it.
//
// Everything is implemented on label_view — spans, not vectors — so the
// owning dist_labels and core/oracle_store's mmap-ed labels run the same
// machine code over either storage (the round-trip suite asserts the
// bit-identity that design makes structural).
#include "core/dist_oracle.hpp"

#include <algorithm>

#include "util/assert.hpp"

namespace hybrid {

namespace {

/// Binary search one node's ball slice (sorted by source id).
u64 ball_lookup(std::span<const exploration_entry> slice, u32 target) {
  const auto it = std::lower_bound(
      slice.begin(), slice.end(), target,
      [](const exploration_entry& e, u32 v) { return e.source < v; });
  if (it == slice.end() || it->source != target) return kInfDist;
  return it->dist;
}

}  // namespace

u64 label_view::ball_dist(u32 u, u32 v) const { return ball_lookup(ball_of(u), v); }

u64 label_view::query(u32 u, u32 v) const {
  u64 best = ball_dist(u, v);
  if (scheme == label_scheme::kSkeletonRows) {
    // min_{s near u} d_h(u, s) + d(s, v) — the Theorem 1.1 assembly. ∞ rows
    // entries are skipped explicitly: with multi-level composition in the
    // codebase the kInfDist = ~u64/4 headroom argument only covers sums of
    // ≤ 3 addends, so no ∞ may ever enter an addition. (Skipping is
    // result-identical: best starts ≤ kInfDist, and a skipped candidate was
    // ≥ kInfDist.)
    for (const source_distance& sd : gateways_of(u)) {
      const u64 mid = skel[u64{sd.source} * n + v];
      if (mid >= kInfDist) continue;
      best = std::min(best, sd.dist + mid);
    }
  } else if (scheme == label_scheme::kSkeletonPairs) {
    // min_{s1 near u, s2 near v} d_h(u,s1) + d_S(s1,s2) + d_h(v,s2) — the
    // baseline assembly with A[s2] = min_{s1} d_h(u,s1) + d_S(s1,s2)
    // evaluated per s2; ∞ pair entries skipped before the addition so the
    // A[s2] == kInfDist filter is exact rather than headroom-dependent.
    for (const source_distance& to : gateways_of(v)) {
      u64 a = kInfDist;
      for (const source_distance& from : gateways_of(u)) {
        const u64 mid = skel[u64{from.source} * n_s + to.source];
        if (mid >= kInfDist) continue;
        a = std::min(a, from.dist + mid);
      }
      if (a == kInfDist) continue;
      best = std::min(best, a + to.dist);
    }
  } else {
    // kTwoLevel: d(u,v) = ball ⊓ min_{s1 near u, t1 near v} gw + d_S1 + gw,
    // where d_S1(s1,t1) itself composes ball1 with the super-pair table.
    // Every table lookup that can be ∞ is skipped before it is added — all
    // four addends of the deepest term (gw, gw1, d_S2, gw1) are finite, so
    // the u64 sums cannot wrap.
    const auto gu = gateways_of(u);
    const auto gv = gateways_of(v);
    if (gu.empty() || gv.empty()) return best;
    // (a) the ball1 cross term: gw(u,s1) + ball1(s1,t1) + gw(v,t1).
    for (const source_distance& from : gu) {
      const auto slice = ball1_of(from.source);
      for (const source_distance& to : gv) {
        const u64 mid = ball_lookup(slice, to.source);
        if (mid >= kInfDist) continue;
        best = std::min(best, from.dist + mid + to.dist);
      }
    }
    // (b) the super-pair term, factored through level 2: P = the reachable
    // super nodes from u's side (s2, gw + gw1), Q the same from v's side;
    // then min over P × Q of P + d_S2 + Q.
    std::vector<source_distance> p, q;
    for (const source_distance& from : gu)
      for (const source_distance& g2 : gw1_of(from.source))
        p.push_back({g2.source, from.dist + g2.dist, g2.via});
    for (const source_distance& to : gv)
      for (const source_distance& g2 : gw1_of(to.source))
        q.push_back({g2.source, to.dist + g2.dist, g2.via});
    for (const source_distance& ps : p) {
      const u64* row = skel.data() + u64{ps.source} * n_s2;
      for (const source_distance& qs : q) {
        const u64 mid = row[qs.source];
        if (mid >= kInfDist) continue;
        best = std::min(best, ps.dist + mid + qs.dist);
      }
    }
  }
  return best;
}

u32 label_view::next_hop(u32 u, u32 v) const {
  HYB_REQUIRE(routes, "next_hop requires labels built with build_routes");
  HYB_REQUIRE(topo != nullptr, "next_hop requires the local graph");
  if (u == v) return u;
  const u64 du = query(u, v);
  // The dense loop: among neighbors w with w(u,w) + d(w,v) == d(u,v), the
  // smallest ID wins; unreachable targets keep ~0.
  u32 best = ~u32{0};
  for (const edge& e : topo->neighbors(u)) {
    const u64 dn = query(e.to, v);
    if (dn == kInfDist) continue;
    if (e.weight + dn == du && (best == ~u32{0} || e.to < best)) best = e.to;
  }
  return best;
}

void label_view::row_into(u32 u, std::vector<u64>& out) const {
  out.assign(n, kInfDist);
  for (const exploration_entry& e : ball_of(u)) out[e.source] = e.dist;
  if (scheme == label_scheme::kSkeletonRows) {
    // ∞ row entries skipped before the addition (same invariant as query():
    // no ∞ ever enters a sum); result-identical to the old headroom-reliant
    // loop because out[v] ≤ kInfDist throughout.
    for (const source_distance& sd : gateways_of(u)) {
      const u64* lbl = skel.data() + u64{sd.source} * n;
      for (u32 v = 0; v < n; ++v) {
        if (lbl[v] >= kInfDist) continue;
        out[v] = std::min(out[v], sd.dist + lbl[v]);
      }
    }
  } else if (scheme == label_scheme::kSkeletonPairs) {
    // A[s2] = min_{s1 near u} d_h(u, s1) + d_S(s1, s2), then one gateway
    // scan per target — the baseline loop with its token scan replaced by
    // the equivalent per-target gateway lists. ∞ pair entries skipped so
    // the A[s2] filter is exact.
    std::vector<u64> a(n_s, kInfDist);
    for (const source_distance& from : gateways_of(u))
      for (u32 s2 = 0; s2 < n_s; ++s2) {
        const u64 mid = skel[u64{from.source} * n_s + s2];
        if (mid >= kInfDist) continue;
        a[s2] = std::min(a[s2], from.dist + mid);
      }
    for (u32 v = 0; v < n; ++v)
      for (const source_distance& to : gateways_of(v)) {
        if (a[to.source] == kInfDist) continue;
        out[v] = std::min(out[v], a[to.source] + to.dist);
      }
  } else {
    // kTwoLevel, the row variant of query()'s composition with the shared
    // legs hoisted. P[s2] = best u → super-node-s2 leg; B[t2] folds the
    // super-pair table over P; A[t1] = best u → skeleton-node-t1 distance
    // (ball1 cross term ⊓ B pulled back through t1's level-2 gateways);
    // the final scan composes A with each target's level-1 gateways. Every
    // ∞ is skipped before addition, and A/B/P stay exactly kInfDist when
    // unreachable, so the filters are exact.
    std::vector<u64> p(n_s2, kInfDist);
    for (const source_distance& from : gateways_of(u))
      for (const source_distance& g2 : gw1_of(from.source))
        p[g2.source] = std::min(p[g2.source], from.dist + g2.dist);
    std::vector<u64> b(n_s2, kInfDist);
    for (u32 s2 = 0; s2 < n_s2; ++s2) {
      if (p[s2] == kInfDist) continue;
      const u64* row = skel.data() + u64{s2} * n_s2;
      for (u32 t2 = 0; t2 < n_s2; ++t2) {
        if (row[t2] >= kInfDist) continue;
        b[t2] = std::min(b[t2], p[s2] + row[t2]);
      }
    }
    std::vector<u64> a(n_s, kInfDist);
    for (const source_distance& from : gateways_of(u))
      for (const exploration_entry& e : ball1_of(from.source))
        a[e.source] = std::min(a[e.source], from.dist + e.dist);
    for (u32 t1 = 0; t1 < n_s; ++t1)
      for (const source_distance& g2 : gw1_of(t1)) {
        if (b[g2.source] == kInfDist) continue;
        a[t1] = std::min(a[t1], b[g2.source] + g2.dist);
      }
    for (u32 v = 0; v < n; ++v)
      for (const source_distance& to : gateways_of(v)) {
        if (a[to.source] == kInfDist) continue;
        out[v] = std::min(out[v], a[to.source] + to.dist);
      }
  }
}

std::vector<u64> label_view::row(u32 u) const {
  std::vector<u64> out;
  row_into(u, out);
  return out;
}

std::vector<std::vector<u64>> dist_labels::materialize(round_executor& ex) const {
  const label_view v = view();
  std::vector<std::vector<u64>> dist(n);
  ex.for_nodes(n, [&](u32 u) { v.row_into(u, dist[u]); });
  return dist;
}

std::vector<std::vector<u64>> dist_labels::materialize(sim_options opts) const {
  round_executor ex(opts);
  return materialize(ex);
}

std::vector<std::vector<u32>> dist_labels::materialize_next_hops(
    const std::vector<std::vector<u64>>& dist, round_executor& ex) const {
  HYB_REQUIRE(routes, "next-hop tables require labels built with build_routes");
  HYB_REQUIRE(topo != nullptr, "next-hop tables require the local graph");
  std::vector<std::vector<u32>> hops(n, std::vector<u32>(n, ~u32{0}));
  ex.for_nodes(n, [&](u32 u) {
    hops[u][u] = u;
    for (const edge& e : topo->neighbors(u)) {
      const std::vector<u64>& nbr = dist[e.to];
      for (u32 v = 0; v < n; ++v) {
        if (v == u || nbr[v] == kInfDist) continue;
        const u64 through = e.weight + nbr[v];
        if (through == dist[u][v] &&
            (hops[u][v] == ~u32{0} || e.to < hops[u][v]))
          hops[u][v] = e.to;
      }
    }
  });
  return hops;
}

// ---- kssp_labels -----------------------------------------------------------

u64 kssp_labels::query(u32 j, u32 v) const {
  u64 best = ball_lookup(ball.reached(v), sources[j]);
  const u64 leg = rep_leg[j];
  const u64* est_row = est.data() + u64{rep_slot[j]} * n_s;
  for (const source_distance& sd : gateways_of(v)) {
    const u64 mid = est_row[sd.source];
    if (mid == kInfDist) continue;
    best = std::min(best, sd.dist + mid + leg);
  }
  return best;
}

void kssp_labels::row_into(u32 j, std::vector<u64>& out) const {
  out.resize(n);
  for (u32 v = 0; v < n; ++v) out[v] = query(j, v);
}

std::vector<u64> kssp_labels::row(u32 j) const {
  std::vector<u64> out;
  row_into(j, out);
  return out;
}

std::vector<std::vector<u64>> kssp_labels::materialize(round_executor& ex) const {
  std::vector<std::vector<u64>> dist(sources.size(), std::vector<u64>(n));
  for (u32 j = 0; j < sources.size(); ++j)
    ex.for_nodes(n, [&](u32 v) { dist[j][v] = query(j, v); });
  return dist;
}

}  // namespace hybrid
