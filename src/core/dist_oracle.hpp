// Distance-label oracle: the queryable form of the APSP/k-SSP outputs.
//
// The paper's Theorem 1.1 construction never computes an n×n matrix at any
// single node — it leaves every node v with (a) its h-hop ball distances
// d_h(v, ·), (b) its distances to the nearby skeleton nodes ("gateways"),
// and (c) the flooded skeleton label table. The distance of any pair is then
// the free local composition
//
//     d(u, v) = min( d_h(u, v),  min_{s near u} d_h(u, s) + d(s, v) )
//
// (step 4 of the Section 3 pipeline). This module stores exactly those
// per-node labels — Õ(|ball_h(v)| + |V_S|) words per node instead of n — and
// answers query/next_hop/row on demand by running the same composition the
// dense assembly loop used to run eagerly for all n² pairs. The oracle view
// mirrors Censor-Hillel et al. 2020 ("Distance Computations in the Hybrid
// Network Model via Oracle Simulations", PAPERS.md); the sparse-graph regime
// it unlocks at n ≈ 10⁵ is the one of Feldmann–Hinnenthal–Scheideler 2020.
//
// Equivalence contract (differentially tested in tests/dist_oracle_test.cpp,
// `ctest -L oracle`, gated in CI): for every pair, query()/next_hop()/row()
// and the materialize() adapters are bit-identical to the dense matrices the
// pre-oracle assembly produced, at every thread count and on either
// exploration path — the composition below is the dense loop, evaluated
// lazily.
#pragma once

#include <span>
#include <vector>

#include "graph/graph.hpp"
#include "proto/flood.hpp"
#include "proto/sparse_exploration.hpp"
#include "sim/executor.hpp"

namespace hybrid {

/// How the skeleton part of a label composes with the ball part.
enum class label_scheme : u8 {
  /// Theorem 1.1: `skel` holds d(s, v) for every skeleton index s and every
  /// node v (n_s × n, the token-routed label table each skeleton node
  /// floods). One-sided composition: ball(u,v) ⊓ min_s gw(u,s) + skel[s][v].
  kSkeletonRows,
  /// AHKSS20 baseline: `skel` holds the skeleton-pair distances d_S(s1, s2)
  /// (n_s × n_s, public after the broadcast). Two-sided composition:
  /// ball(u,v) ⊓ min_{s1 near u, s2 near v} gw(u,s1) + d_S(s1,s2) + gw(v,s2).
  kSkeletonPairs,
  /// Two-level hierarchy (the recursive Section 4 / Lemma C.1 structure): a
  /// super-skeleton V_S2 ⊆ V_S is sampled from the skeleton, each level-1
  /// node holds its h1-hop ball over the skeleton graph (`ball1`) plus
  /// gateways into level 2 (`gw1`), and `skel` shrinks to the n_s2 × n_s2
  /// super-pair table. Composition recurses one level:
  ///   d_S1(s1,t1) = ball1(s1,t1)
  ///                 ⊓ min_{s2∈gw1(s1), t2∈gw1(t1)} gw1+d_S2(s2,t2)+gw1
  ///   d(u,v)      = ball(u,v) ⊓ min_{s1 near u, t1 near v} gw+d_S1(s1,t1)+gw
  /// with every ∞ table entry skipped explicitly (four finite addends max —
  /// the kInfDist headroom argument no longer covers the sum). Each level's
  /// table is Õ(√ of the level below), which is what restores full coverage
  /// at n = 10⁵ inside the 2 GB budget (ROADMAP).
  kTwoLevel,
};

/// Storage-agnostic read-only view over one set of distance labels: every
/// query path (query/next_hop/row and the assembly composition they share)
/// is implemented ONCE against these spans, so the owning `dist_labels`
/// (spans over its vectors) and the mmap-ed `oracle_store` view (spans into
/// the mapped file) answer bit-identically by construction — there is no
/// second implementation to drift.
struct label_view {
  u32 n = 0;
  u32 n_s = 0;
  u32 n_s2 = 0;  ///< super-skeleton size |V_S2| (kTwoLevel only, else 0)
  u32 h = 0;
  label_scheme scheme = label_scheme::kSkeletonRows;
  bool routes = false;
  /// Local graph for next_hop(); may be null (query/row never need it).
  const graph* topo = nullptr;

  std::span<const u64> ball_offsets;  ///< size n + 1
  std::span<const exploration_entry> ball_entries;
  std::span<const u64> gw_offsets;  ///< size n + 1
  std::span<const source_distance> gateways;
  std::span<const u32> skeleton_nodes;  ///< size n_s
  /// n_s × n rows, n_s × n_s pairs, or n_s2 × n_s2 super-pairs (kTwoLevel).
  std::span<const u64> skel;

  // ---- level-1 slabs (kTwoLevel only; empty otherwise) -------------------
  /// h1-hop balls over the *skeleton graph*: per skeleton index s1 the
  /// triples (t1 = skeleton index, d_{h1,G_S}(s1, t1), via), sorted by t1.
  std::span<const u64> ball1_offsets;  ///< size n_s + 1
  std::span<const exploration_entry> ball1_entries;
  /// Level-2 gateways: per skeleton index s1 the nearby super-skeleton
  /// members as (source = *super* index s2, d_{h1,G_S}(s1, s2), via).
  std::span<const u64> gw1_offsets;  ///< size n_s + 1
  std::span<const source_distance> gw1;
  std::span<const u32> super_nodes;  ///< size n_s2, level-1 indices, ascending

  std::span<const exploration_entry> ball_of(u32 u) const {
    return {ball_entries.data() + ball_offsets[u],
            ball_entries.data() + ball_offsets[u + 1]};
  }
  std::span<const source_distance> gateways_of(u32 u) const {
    return {gateways.data() + gw_offsets[u], gateways.data() + gw_offsets[u + 1]};
  }
  std::span<const exploration_entry> ball1_of(u32 s1) const {
    return {ball1_entries.data() + ball1_offsets[s1],
            ball1_entries.data() + ball1_offsets[s1 + 1]};
  }
  std::span<const source_distance> gw1_of(u32 s1) const {
    return {gw1.data() + gw1_offsets[s1], gw1.data() + gw1_offsets[s1 + 1]};
  }

  /// d_h(u, v) from u's ball (kInfDist when v is outside it).
  u64 ball_dist(u32 u, u32 v) const;

  /// d(u, v) — the assembly composition for one pair; kInfDist when
  /// unreachable. Bit-identical to the dense matrix entry.
  u64 query(u32 u, u32 v) const;

  /// u's neighbor on a shortest u→v path (u on the diagonal, ~0u when v is
  /// unreachable), with the dense path's tie-break: the smallest qualifying
  /// neighbor ID. Requires routes (the charged distance-vector round).
  u32 next_hop(u32 u, u32 v) const;

  /// Full distance row of u (the dense assembly loop for one u).
  void row_into(u32 u, std::vector<u64>& out) const;
  std::vector<u64> row(u32 u) const;

  /// Total stored label entries (ball + gateway + skeleton-table words,
  /// plus the level-1 slabs when two-level).
  u64 label_entries() const {
    return ball_entries.size() + gateways.size() + skel.size() +
           ball1_entries.size() + gw1.size() + super_nodes.size();
  }
};

/// Per-node distance labels for all-pairs queries. Built natively by
/// core/apsp and core/apsp_baseline; the dense apsp_result matrices are a
/// materialize() adapter over this (sim_options{storage}, auto = materialize
/// up to kDenseExplorationMaxNodes nodes). All query paths delegate to
/// `view()` — the shared span accessor the mmap-ed oracle_store also uses.
struct dist_labels {
  u32 n = 0;     ///< nodes of the underlying local graph
  u32 n_s = 0;   ///< skeleton size |V_S|
  u32 n_s2 = 0;  ///< super-skeleton size |V_S2| (kTwoLevel only, else 0)
  u32 h = 0;     ///< skeleton hop budget (ball radius)
  label_scheme scheme = label_scheme::kSkeletonRows;
  /// True when the route-exchange round ran (hybrid_apsp_exact's
  /// build_routes): next_hop() composes neighbors' labels, information a
  /// node only holds after that charged LOCAL round.
  bool routes = false;
  /// The local graph (adjacency for next_hop()). Non-owning: the caller
  /// keeps the graph alive for the oracle's lifetime, as with clique_problem.
  const graph* topo = nullptr;

  /// Ball part: per node u the triples (v, d_h(u, v), first hop), sorted by
  /// v — the sparse exploration result, adopted wholesale.
  sparse_exploration_result ball;

  /// Gateway part: per node u the nearby skeleton nodes, flattened CSR.
  /// `source` is the skeleton *index*, `dist` is d_h(u, s) — sk.near[u]
  /// verbatim, in its original order.
  std::vector<u64> gw_offsets;  ///< size n + 1
  std::vector<source_distance> gateways;

  /// Skeleton part: node IDs of V_S plus the row-major table described by
  /// `scheme` (n_s × n rows, n_s × n_s pairs, or n_s2 × n_s2 super-pairs).
  std::vector<u32> skeleton_nodes;
  std::vector<u64> skel;

  /// Level-1 slabs (kTwoLevel only; empty otherwise) — see label_view.
  std::vector<u64> ball1_offsets;
  std::vector<exploration_entry> ball1_entries;
  std::vector<u64> gw1_offsets;
  std::vector<source_distance> gw1;
  std::vector<u32> super_nodes;

  std::span<const source_distance> gateways_of(u32 u) const {
    return {gateways.data() + gw_offsets[u], gateways.data() + gw_offsets[u + 1]};
  }

  /// The span accessor over this label set — the single query
  /// implementation, shared with oracle_store's mmap-ed labels.
  label_view view() const {
    label_view v;
    v.n = n;
    v.n_s = n_s;
    v.n_s2 = n_s2;
    v.h = h;
    v.scheme = scheme;
    v.routes = routes;
    v.topo = topo;
    v.ball_offsets = ball.offsets;
    v.ball_entries = ball.entries;
    v.gw_offsets = gw_offsets;
    v.gateways = gateways;
    v.skeleton_nodes = skeleton_nodes;
    v.skel = skel;
    v.ball1_offsets = ball1_offsets;
    v.ball1_entries = ball1_entries;
    v.gw1_offsets = gw1_offsets;
    v.gw1 = gw1;
    v.super_nodes = super_nodes;
    return v;
  }

  /// d_h(u, v) from u's ball (kInfDist when v is outside it).
  u64 ball_dist(u32 u, u32 v) const { return view().ball_dist(u, v); }

  /// d(u, v) — the assembly composition for one pair; kInfDist when
  /// unreachable. Bit-identical to the dense matrix entry.
  u64 query(u32 u, u32 v) const { return view().query(u, v); }

  /// u's neighbor on a shortest u→v path (u on the diagonal, ~0u when v is
  /// unreachable), with the dense path's tie-break: the smallest qualifying
  /// neighbor ID. Requires routes (the charged distance-vector round).
  u32 next_hop(u32 u, u32 v) const { return view().next_hop(u, v); }

  /// Full distance row of u (the dense assembly loop for one u).
  void row_into(u32 u, std::vector<u64>& out) const { view().row_into(u, out); }
  std::vector<u64> row(u32 u) const { return view().row(u); }

  /// Total stored label entries (ball + gateway + skeleton-table words,
  /// plus the level-1 slabs when two-level) — the memory the oracle is
  /// bounded by: Õ(Σᵥ|ball_h(v)| + n_s·n) single-level, and
  /// Õ(Σᵥ|ball| + Σₛ|ball1| + n_s2²) for kTwoLevel.
  u64 label_entries() const {
    return ball.entries.size() + gateways.size() + skel.size() +
           ball1_entries.size() + gw1.size() + super_nodes.size();
  }

  // ---- dense adapters (O(n²) memory — callers bound n) -------------------
  /// The pre-oracle `apsp_result::dist` matrix, node-parallel on `ex`.
  std::vector<std::vector<u64>> materialize(round_executor& ex) const;
  std::vector<std::vector<u64>> materialize(sim_options opts = {}) const;
  /// The pre-oracle `next_hop` matrix from an already-materialized `dist`
  /// (the exact argmin-over-neighbors loop, same tie-break). Requires routes.
  std::vector<std::vector<u32>> materialize_next_hops(
      const std::vector<std::vector<u64>>& dist, round_executor& ex) const;
};

/// Per-source distance labels for the k-SSP framework (Theorem 4.1): the
/// Equation (1) assembly evaluated lazily per (source, node) pair instead of
/// eagerly into k n-wide rows.
struct kssp_labels {
  u32 n = 0;
  u32 n_s = 0;
  std::vector<u32> sources;  ///< source node IDs, row index j

  /// Ball part: reached(v) holds (source node id, d, hop) for the sources
  /// within the exploration depth of v.
  sparse_exploration_result ball;
  /// Gateway part: sk.near flattened, as in dist_labels.
  std::vector<u64> gw_offsets;
  std::vector<source_distance> gateways;
  /// est[slot · n_s + s] = d̃_S(s, rep) from the CLIQUE plug-in, one row per
  /// distinct representative slot; rep_slot[j] / rep_leg[j] map source j to
  /// its slot and its d(source, rep) leg (Fact 4.4).
  std::vector<u64> est;
  std::vector<u32> rep_slot;
  std::vector<u64> rep_leg;

  std::span<const source_distance> gateways_of(u32 v) const {
    return {gateways.data() + gw_offsets[v], gateways.data() + gw_offsets[v + 1]};
  }

  /// d̃(sources[j], v) — Equation (1) for one pair, bit-identical to the
  /// dense kssp_result::dist[j][v].
  u64 query(u32 j, u32 v) const;

  void row_into(u32 j, std::vector<u64>& out) const;
  std::vector<u64> row(u32 j) const;

  u64 label_entries() const {
    return ball.entries.size() + gateways.size() + est.size();
  }

  /// The pre-oracle k × n `kssp_result::dist`, node-parallel on `ex`.
  std::vector<std::vector<u64>> materialize(round_executor& ex) const;
};

}  // namespace hybrid
