#include "core/kssp_framework.hpp"

#include <algorithm>
#include <cmath>
#include <set>

#include "proto/clique_embed.hpp"
#include "proto/flood.hpp"
#include "proto/representatives.hpp"
#include "proto/skeleton.hpp"
#include "proto/sparse_exploration.hpp"
#include "util/assert.hpp"

namespace hybrid {

kssp_result hybrid_kssp(const graph& g, const model_config& cfg, u64 seed,
                        std::vector<u32> sources,
                        const clique_sp_algorithm& alg,
                        bool source_into_skeleton, sim_options opts) {
  HYB_REQUIRE(!sources.empty(), "need at least one source");
  HYB_REQUIRE(!source_into_skeleton || sources.size() == 1,
              "γ = 0 mode requires a single source");
  {
    std::set<u32> uniq(sources.begin(), sources.end());
    HYB_REQUIRE(uniq.size() == sources.size(), "sources must be distinct");
  }

  hybrid_net net(g, cfg, seed, opts);
  const u32 n = net.n();
  kssp_result out;
  out.sources = sources;

  // ---- 1. skeleton with x = 2/(3+2δ) --------------------------------------
  net.begin_phase("skeleton");
  const double x = 2.0 / (3.0 + 2.0 * alg.delta());
  out.x_exponent = x;
  const double p = std::pow(static_cast<double>(n), x - 1.0);
  std::vector<u32> forced;
  if (source_into_skeleton) forced = sources;
  const skeleton_result sk = compute_skeleton(net, p, forced);
  const u32 n_s = static_cast<u32>(sk.nodes.size());
  out.skeleton_size = n_s;
  out.h = sk.h;

  // ---- 2. representatives (skipped when the source is in the skeleton) ----
  net.begin_phase("representatives");
  representatives_result reps;
  if (source_into_skeleton) {
    reps.rep_of = {sk.index_of[sources[0]]};
    reps.dist_to_rep = {0};
  } else {
    reps = compute_representatives(net, sk, sources);
  }
  // Deduplicate representatives — A runs once per distinct rep.
  std::vector<u32> rep_nodes;  // distinct skeleton indices
  std::vector<u32> rep_slot(sources.size());
  {
    std::vector<u32> slot_of(n_s, ~u32{0});
    for (u32 j = 0; j < sources.size(); ++j) {
      const u32 r = reps.rep_of[j];
      if (slot_of[r] == ~u32{0}) {
        slot_of[r] = static_cast<u32>(rep_nodes.size());
        rep_nodes.push_back(r);
      }
      rep_slot[j] = slot_of[r];
    }
  }

  // ---- 3. run A on the skeleton via the CLIQUE embedding ------------------
  net.begin_phase("clique_embedding");
  clique_embedding emb = build_clique_embedding(net, sk);
  net.begin_phase("clique_simulation");
  out.clique_rounds = alg.declared_rounds(n_s);
  charge_clique_rounds(net, emb, out.clique_rounds);

  u64 max_skel_weight = 1;
  for (const auto& adj : sk.edges)
    for (const auto& [to, w] : adj) {
      (void)to;
      max_skel_weight = std::max(max_skel_weight, w);
    }
  clique_problem prob;
  prob.n_s = n_s;
  prob.edges = &sk.edges;
  prob.sources = rep_nodes;
  prob.max_edge_weight = max_skel_weight;
  // est[slot][u] = d̃(u, rep) under A's (α, β) contract.
  const std::vector<std::vector<u64>> est = alg.solve(prob);

  // ---- 4. flood estimates h hops; local exploration in parallel -----------
  net.begin_phase("estimate_flood");
  table_flood(net, sk.nodes, std::vector<u64>(n_s, rep_nodes.size()), sk.h);

  net.begin_phase("local_exploration");
  const u64 eta_h =
      static_cast<u64>(std::ceil(alg.eta() * static_cast<double>(sk.h))) + 1;
  u64 elapsed = net.round();
  // Exploration runs in parallel with everything so far; only rounds beyond
  // the elapsed runtime cost extra. Under faults the elapsed runtime —
  // hence the depth — can exceed its fault-free value (healing overhead in
  // the earlier stages): the deeper ball is harmless, because d_h is
  // already exact at every depth ≥ ηh for the label queries the framework
  // answers, and per-query outputs stay identical to the fault-free run.
  out.exploration_depth = std::max(eta_h, elapsed);
  for (u64 r = elapsed; r < out.exploration_depth; ++r) net.advance_round();

  // ---- 5. per-source labels for Equation (1) ------------------------------
  // Every node now holds its exploration ball (keyed by source node id), its
  // nearby-skeleton gateways, and the flooded estimate table — the
  // kssp_labels oracle (core/dist_oracle.hpp), which evaluates Equation (1)
  // per (source, node) pair on demand instead of eagerly into k n-wide rows.
  out.labels.ball = run_local_exploration(
      net, static_cast<u32>(out.exploration_depth),
      /*advance_rounds=*/false, &sources, /*first_hops=*/false);
  out.labels.n = n;
  out.labels.n_s = n_s;
  out.labels.sources = sources;
  out.labels.rep_slot = rep_slot;
  out.labels.rep_leg = reps.dist_to_rep;
  out.labels.est.assign(u64{rep_nodes.size()} * n_s, kInfDist);
  for (u32 slot = 0; slot < rep_nodes.size(); ++slot)
    for (u32 s = 0; s < n_s; ++s)
      out.labels.est[u64{slot} * n_s + s] = est[slot][s];
  out.labels.gw_offsets.assign(n + 1, 0);
  for (u32 v = 0; v < n; ++v)
    out.labels.gw_offsets[v + 1] = out.labels.gw_offsets[v] + sk.near[v].size();
  out.labels.gateways.resize(out.labels.gw_offsets[n]);
  net.executor().for_nodes(n, [&](u32 v) {
    std::copy(sk.near[v].begin(), sk.near[v].end(),
              out.labels.gateways.begin() +
                  static_cast<std::ptrdiff_t>(out.labels.gw_offsets[v]));
  });

  out.metrics = net.snapshot();
  if (resolve_materialize(opts, n))
    out.dist = out.labels.materialize(net.executor());
  const double t_b = static_cast<double>(out.metrics.rounds);
  const approx_contract c = alg.contract(max_skel_weight);
  out.bound_weighted = 2.0 * c.alpha + 1.0 + static_cast<double>(c.beta) / t_b;
  out.bound_unweighted =
      c.alpha + 2.0 / alg.eta() + static_cast<double>(c.beta) / t_b;
  out.bound_single_source = c.alpha + static_cast<double>(c.beta) / t_b;
  return out;
}

}  // namespace hybrid
