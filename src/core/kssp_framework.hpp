// The CLIQUE→HYBRID shortest-path simulation framework (paper Theorem 4.1,
// Algorithm 5) and its instantiations (Theorem 1.2, Corollaries 4.6–4.9).
//
// Given a CLIQUE algorithm A with runtime Õ(η·n^δ) and an (α, β) contract,
// the framework runs A on a skeleton of Θ(n^x) nodes, x = 2/(3+2δ):
//   1. skeleton + (for k-SSP) representatives of the sources, made public by
//      token dissemination (the +Õ(√k) of Lemma 4.4);
//   2. A runs on the skeleton via the CLIQUE embedding (Corollary 4.1);
//   3. skeleton nodes flood the estimated distances-to-representatives h
//      hops; every node also explores the local graph for max(ηh, T_B)
//      rounds in parallel (Lemma 4.3's final remark);
//   4. every node assembles Equation (1):
//        d̃(v,s) = min(d_T(v,s),
//                      min_{u near v} d_h(v,u) + d̃(u,r_s) + d_h(r_s,s)).
//
// Approximation guarantees (with T_B the measured total runtime):
//   weighted   : 2α + 1 + β/T_B          (Theorem 4.1)
//   unweighted : α + 2/η + β/T_B
//   γ = 0      : α + β/T_B               (source joins the skeleton,
//                                          Lemma 4.5 — exact for α=1, β=0)
#pragma once

#include "clique/algorithms.hpp"
#include "core/dist_oracle.hpp"
#include "graph/graph.hpp"
#include "sim/hybrid_net.hpp"

namespace hybrid {

struct kssp_result {
  std::vector<u32> sources;
  /// The native output: per-source labels answering Equation (1) on demand
  /// (core/dist_oracle.hpp). Always built.
  kssp_labels labels;
  /// Dense adapter dist[j][v] for sources[j], filled when
  /// resolve_materialize(opts, n) holds (auto = n ≤ 4096).
  std::vector<std::vector<u64>> dist;
  run_metrics metrics;

  bool materialized() const { return !dist.empty(); }

  u32 skeleton_size = 0;
  u32 h = 0;
  double x_exponent = 0.0;
  u64 clique_rounds = 0;         ///< T_A charged
  u64 exploration_depth = 0;     ///< local exploration rounds (≥ ηh)
  /// Proven approximation factors instantiated with the measured T_B.
  double bound_weighted = 0.0;
  double bound_unweighted = 0.0;
  double bound_single_source = 0.0;
};

/// Algorithm 5. `source_into_skeleton` is the γ = 0 mode of Lemma 4.5 and
/// requires exactly one source. `opts` selects the executor thread count
/// for the node-parallel round steps (docs/CONCURRENCY.md); results are
/// bit-identical for every thread count.
kssp_result hybrid_kssp(const graph& g, const model_config& cfg, u64 seed,
                        std::vector<u32> sources,
                        const clique_sp_algorithm& alg,
                        bool source_into_skeleton = false,
                        sim_options opts = {});

}  // namespace hybrid
