// Save = stage each section's exact byte image (zeroing struct padding so
// the file is deterministic down to the byte — the golden-file test depends
// on it), checksum, then stream header + aligned slabs. Load = map the file
// read-only and walk the validation layers strictly in order, so hostile
// bytes are rejected by the earliest layer that can see the damage and no
// later layer ever dereferences an unvalidated offset.
#include "core/oracle_store.hpp"

#include <cstdio>
#include <cstring>
#include <vector>

#include "util/assert.hpp"

#if defined(_WIN32)
#include <fstream>
#else
#include <fcntl.h>
#include <sys/mman.h>
#include <sys/stat.h>
#include <unistd.h>
#endif

namespace hybrid {

namespace {

constexpr u64 kFnvPrime = 0x100000001b3ull;

enum : u32 {
  kSecBallOffsets = 0,
  kSecBallEntries = 1,
  kSecGwOffsets = 2,
  kSecGateways = 3,
  kSecSkeletonNodes = 4,
  kSecSkel = 5,
  kSecBall1Offsets = 6,
  kSecBall1Entries = 7,
  kSecGw1Offsets = 8,
  kSecGw1 = 9,
  kSecSuperNodes = 10,
};

u64 align_up(u64 x) {
  return (x + kOracleSectionAlign - 1) / kOracleSectionAlign *
         kOracleSectionAlign;
}

/// Expected skeleton-table element count for a header's scheme.
u64 expected_skel_count(u32 n, u32 n_s, u32 n_s2, label_scheme scheme) {
  switch (scheme) {
    case label_scheme::kSkeletonRows: return u64{n_s} * n;
    case label_scheme::kSkeletonPairs: return u64{n_s} * n_s;
    case label_scheme::kTwoLevel: return u64{n_s2} * n_s2;
  }
  return 0;
}

/// A CSR offsets array is valid iff it starts at 0, is nondecreasing, and
/// ends exactly at the entry arena's size — anything else would let a query
/// index past the mapped slab.
void validate_csr(std::span<const u64> offsets, u64 arena_count,
                  const char* what) {
  if (offsets.empty() || offsets.front() != 0)
    throw oracle_store_error(store_errc::bad_csr,
                             std::string(what) + " offsets must start at 0");
  for (size_t i = 1; i < offsets.size(); ++i)
    if (offsets[i] < offsets[i - 1] || offsets[i] > arena_count)
      throw oracle_store_error(
          store_errc::bad_csr,
          std::string(what) + " offsets leave the entry arena");
  if (offsets.back() != arena_count)
    throw oracle_store_error(
        store_errc::bad_csr,
        std::string(what) + " offsets do not cover the entry arena");
}

}  // namespace

const char* to_string(store_errc c) {
  switch (c) {
    case store_errc::io: return "oracle store I/O error";
    case store_errc::truncated: return "oracle store file truncated";
    case store_errc::bad_magic: return "oracle store bad magic";
    case store_errc::bad_version: return "oracle store unsupported version";
    case store_errc::bad_header: return "oracle store malformed header";
    case store_errc::bad_section: return "oracle store bad section table";
    case store_errc::bad_checksum: return "oracle store checksum mismatch";
    case store_errc::bad_csr: return "oracle store invalid CSR structure";
  }
  return "oracle store error";
}

u64 fnv1a(std::span<const std::byte> bytes, u64 state) {
  for (const std::byte b : bytes) {
    state ^= static_cast<u64>(b);
    state *= kFnvPrime;
  }
  return state;
}

u64 graph_checksum(const graph& g) {
  u64 state = 0xcbf29ce484222325ull;
  const auto mix = [&state](u64 word) {
    for (u32 i = 0; i < 8; ++i) {
      state ^= (word >> (8 * i)) & 0xff;
      state *= kFnvPrime;
    }
  };
  mix(g.num_nodes());
  for (u32 v = 0; v < g.num_nodes(); ++v)
    for (const edge& e : g.neighbors(v)) {
      mix(e.to);
      mix(e.weight);
    }
  return state;
}

// ---- save -------------------------------------------------------------------

void save_oracle(const dist_labels& lab, const std::string& path) {
  const bool two_level = lab.scheme == label_scheme::kTwoLevel;
  HYB_REQUIRE(lab.ball.offsets.size() == u64{lab.n} + 1,
              "ball offsets must have n + 1 entries");
  HYB_REQUIRE(lab.gw_offsets.size() == u64{lab.n} + 1,
              "gateway offsets must have n + 1 entries");
  HYB_REQUIRE(lab.skeleton_nodes.size() == lab.n_s,
              "skeleton node list must have n_s entries");
  HYB_REQUIRE(lab.skel.empty() ||
                  lab.skel.size() ==
                      expected_skel_count(lab.n, lab.n_s, lab.n_s2, lab.scheme),
              "skeleton table size inconsistent with the scheme");
  HYB_REQUIRE(lab.ball.offsets.back() == lab.ball.entries.size(),
              "ball CSR does not cover its entries");
  HYB_REQUIRE(lab.gw_offsets.back() == lab.gateways.size(),
              "gateway CSR does not cover its entries");
  if (two_level) {
    HYB_REQUIRE(lab.ball1_offsets.size() == u64{lab.n_s} + 1,
                "ball1 offsets must have n_s + 1 entries");
    HYB_REQUIRE(lab.gw1_offsets.size() == u64{lab.n_s} + 1,
                "gw1 offsets must have n_s + 1 entries");
    HYB_REQUIRE(lab.super_nodes.size() == lab.n_s2,
                "super node list must have n_s2 entries");
    HYB_REQUIRE(lab.ball1_offsets.back() == lab.ball1_entries.size(),
                "ball1 CSR does not cover its entries");
    HYB_REQUIRE(lab.gw1_offsets.back() == lab.gw1.size(),
                "gw1 CSR does not cover its entries");
  } else {
    HYB_REQUIRE(lab.n_s2 == 0 && lab.ball1_offsets.empty() &&
                    lab.ball1_entries.empty() && lab.gw1_offsets.empty() &&
                    lab.gw1.empty() && lab.super_nodes.empty(),
                "level-1 slabs must be empty unless the scheme is kTwoLevel");
  }

  // source_distance carries 8 bytes of struct padding; stage those sections
  // with the padding zeroed so the file image is deterministic (the mmap
  // view reads the same 24-byte layout back, padding ignored).
  const auto stage_sd = [](const std::vector<source_distance>& src) {
    std::vector<std::byte> bytes(src.size() * sizeof(source_distance),
                                 std::byte{0});
    auto* out = reinterpret_cast<source_distance*>(bytes.data());
    for (size_t i = 0; i < src.size(); ++i) {
      out[i].source = src[i].source;
      out[i].dist = src[i].dist;
      out[i].via = src[i].via;
    }
    return bytes;
  };
  const std::vector<std::byte> gw_bytes = stage_sd(lab.gateways);
  const std::vector<std::byte> gw1_bytes = stage_sd(lab.gw1);

  const std::span<const std::byte> payloads[kOracleSectionCount] = {
      std::as_bytes(std::span(lab.ball.offsets)),
      std::as_bytes(std::span(lab.ball.entries)),
      std::as_bytes(std::span(lab.gw_offsets)),
      std::span<const std::byte>(gw_bytes),
      std::as_bytes(std::span(lab.skeleton_nodes)),
      std::as_bytes(std::span(lab.skel)),
      std::as_bytes(std::span(lab.ball1_offsets)),
      std::as_bytes(std::span(lab.ball1_entries)),
      std::as_bytes(std::span(lab.gw1_offsets)),
      std::span<const std::byte>(gw1_bytes),
      std::as_bytes(std::span(lab.super_nodes))};
  const u64 counts[kOracleSectionCount] = {
      lab.ball.offsets.size(),  lab.ball.entries.size(),
      lab.gw_offsets.size(),    lab.gateways.size(),
      lab.skeleton_nodes.size(), lab.skel.size(),
      lab.ball1_offsets.size(), lab.ball1_entries.size(),
      lab.gw1_offsets.size(),   lab.gw1.size(),
      lab.super_nodes.size()};

  oracle_header hdr;
  std::memset(&hdr, 0, sizeof(hdr));
  hdr.magic = kOracleMagic;
  hdr.version = kOracleFormatVersion;
  hdr.header_bytes = sizeof(oracle_header);
  hdr.n = lab.n;
  hdr.n_s = lab.n_s;
  hdr.n_s2 = lab.n_s2;
  hdr.h = lab.h;
  hdr.scheme = static_cast<u8>(lab.scheme);
  hdr.routes = lab.routes ? 1 : 0;
  hdr.graph_checksum = lab.topo != nullptr ? graph_checksum(*lab.topo) : 0;

  u64 cursor = align_up(sizeof(oracle_header));
  u64 checksum = 0xcbf29ce484222325ull;
  for (u32 s = 0; s < kOracleSectionCount; ++s) {
    hdr.sections[s].offset = cursor;
    hdr.sections[s].count = counts[s];
    hdr.sections[s].bytes = payloads[s].size();
    cursor = align_up(cursor + payloads[s].size());
    checksum = fnv1a(payloads[s], checksum);
  }
  hdr.payload_checksum = checksum;
  hdr.file_bytes = cursor;

  std::FILE* f = std::fopen(path.c_str(), "wb");
  if (f == nullptr)
    throw oracle_store_error(store_errc::io, "cannot open " + path);
  const auto emit = [&](const void* data, u64 bytes) {
    if (bytes != 0 && std::fwrite(data, 1, bytes, f) != bytes) {
      std::fclose(f);
      throw oracle_store_error(store_errc::io, "short write to " + path);
    }
  };
  static constexpr std::byte kZeros[kOracleSectionAlign] = {};
  u64 written = 0;
  const auto pad_to = [&](u64 target) {
    HYB_INVARIANT(target >= written && target - written <= kOracleSectionAlign,
                  "section layout drifted during write");
    emit(kZeros, target - written);
    written = target;
  };
  emit(&hdr, sizeof(hdr));
  written = sizeof(hdr);
  for (u32 s = 0; s < kOracleSectionCount; ++s) {
    pad_to(hdr.sections[s].offset);
    emit(payloads[s].data(), payloads[s].size());
    written += payloads[s].size();
  }
  pad_to(hdr.file_bytes);
  if (std::fclose(f) != 0)
    throw oracle_store_error(store_errc::io, "close failed for " + path);
}

// ---- load -------------------------------------------------------------------

namespace {

/// The validated spans for one section, typed. Alignment is guaranteed by
/// the 64-byte section alignment the table check enforces.
template <class T>
std::span<const T> section_span(const std::byte* base,
                                const oracle_section& sec) {
  return {reinterpret_cast<const T*>(base + sec.offset),
          static_cast<size_t>(sec.count)};
}

void validate_section(const oracle_section& sec, u64 elem_size, u64 file_bytes,
                      const char* what) {
  if (sec.offset % kOracleSectionAlign != 0)
    throw oracle_store_error(store_errc::bad_section,
                             std::string(what) + " section misaligned");
  if (sec.bytes != sec.count * elem_size)
    throw oracle_store_error(
        store_errc::bad_section,
        std::string(what) + " section byte size inconsistent with its count");
  if (sec.offset > file_bytes || sec.bytes > file_bytes - sec.offset)
    throw oracle_store_error(store_errc::bad_section,
                             std::string(what) + " section out of bounds");
}

}  // namespace

mapped_oracle::~mapped_oracle() { reset(); }

void mapped_oracle::reset() noexcept {
  if (base_ != nullptr) {
#if defined(_WIN32)
    delete[] base_;
#else
    if (is_mmap_)
      ::munmap(const_cast<std::byte*>(base_), static_cast<size_t>(mapped_bytes_));
    else
      delete[] base_;
#endif
  }
  base_ = nullptr;
  mapped_bytes_ = 0;
  is_mmap_ = false;
  view_ = label_view{};
}

mapped_oracle::mapped_oracle(mapped_oracle&& other) noexcept
    : base_(other.base_),
      mapped_bytes_(other.mapped_bytes_),
      is_mmap_(other.is_mmap_),
      header_(other.header_),
      view_(other.view_) {
  other.base_ = nullptr;
  other.mapped_bytes_ = 0;
  other.is_mmap_ = false;
  other.view_ = label_view{};
}

mapped_oracle& mapped_oracle::operator=(mapped_oracle&& other) noexcept {
  if (this != &other) {
    reset();
    base_ = other.base_;
    mapped_bytes_ = other.mapped_bytes_;
    is_mmap_ = other.is_mmap_;
    header_ = other.header_;
    view_ = other.view_;
    other.base_ = nullptr;
    other.mapped_bytes_ = 0;
    other.is_mmap_ = false;
    other.view_ = label_view{};
  }
  return *this;
}

mapped_oracle mapped_oracle::load(const std::string& path) {
  mapped_oracle out;

#if defined(_WIN32)
  // Heap fallback: identical validation and view semantics, just not
  // zero-copy. (The POSIX branch below is the production path.)
  std::ifstream f(path, std::ios::binary | std::ios::ate);
  if (!f) throw oracle_store_error(store_errc::io, "cannot open " + path);
  const u64 size = static_cast<u64>(f.tellg());
  auto* buf = new std::byte[size > 0 ? size : 1];
  f.seekg(0);
  if (size > 0 && !f.read(reinterpret_cast<char*>(buf), size)) {
    delete[] buf;
    throw oracle_store_error(store_errc::io, "short read from " + path);
  }
  out.base_ = buf;
  out.mapped_bytes_ = size;
  out.is_mmap_ = false;
#else
  const int fd = ::open(path.c_str(), O_RDONLY);
  if (fd < 0) throw oracle_store_error(store_errc::io, "cannot open " + path);
  struct stat st;
  if (::fstat(fd, &st) != 0) {
    ::close(fd);
    throw oracle_store_error(store_errc::io, "cannot stat " + path);
  }
  const u64 size = static_cast<u64>(st.st_size);
  if (size < sizeof(oracle_header)) {
    ::close(fd);
    throw oracle_store_error(store_errc::truncated,
                             "file smaller than the header: " + path);
  }
  void* map = ::mmap(nullptr, static_cast<size_t>(size), PROT_READ,
                     MAP_PRIVATE, fd, 0);
  ::close(fd);  // the mapping keeps its own reference
  if (map == MAP_FAILED)
    throw oracle_store_error(store_errc::io, "mmap failed for " + path);
  out.base_ = static_cast<const std::byte*>(map);
  out.mapped_bytes_ = size;
  out.is_mmap_ = true;
#endif

  // ---- layer 1: size / magic / version / header ---------------------------
  if (out.mapped_bytes_ < sizeof(oracle_header))
    throw oracle_store_error(store_errc::truncated,
                             "file smaller than the header: " + path);
  oracle_header& hdr = out.header_;
  std::memcpy(&hdr, out.base_, sizeof(hdr));
  if (hdr.magic != kOracleMagic)
    throw oracle_store_error(store_errc::bad_magic, path);
  if (hdr.version != kOracleFormatVersion)
    throw oracle_store_error(
        store_errc::bad_version,
        "file version " + std::to_string(hdr.version) + ", this build speaks " +
            std::to_string(kOracleFormatVersion));
  if (hdr.header_bytes != sizeof(oracle_header))
    throw oracle_store_error(store_errc::bad_header,
                             "header size mismatch in " + path);
  if (hdr.scheme > static_cast<u8>(label_scheme::kTwoLevel) ||
      hdr.routes > 1 || hdr.pad[0] != 0 || hdr.pad[1] != 0 ||
      hdr.reserved != 0)
    throw oracle_store_error(store_errc::bad_header,
                             "invalid scheme/routes/pad bytes in " + path);
  const label_scheme scheme = static_cast<label_scheme>(hdr.scheme);
  if (scheme != label_scheme::kTwoLevel && hdr.n_s2 != 0)
    throw oracle_store_error(store_errc::bad_header,
                             "n_s2 set on a single-level scheme in " + path);
  if (hdr.file_bytes > out.mapped_bytes_)
    throw oracle_store_error(store_errc::truncated,
                             "file shorter than its declared size: " + path);
  if (hdr.file_bytes < out.mapped_bytes_)
    throw oracle_store_error(store_errc::bad_header,
                             "file longer than its declared size: " + path);

  // ---- layer 2: section table --------------------------------------------
  static constexpr u64 kElemSizes[kOracleSectionCount] = {
      sizeof(u64), sizeof(exploration_entry), sizeof(u64),
      sizeof(source_distance), sizeof(u32), sizeof(u64),
      sizeof(u64), sizeof(exploration_entry), sizeof(u64),
      sizeof(source_distance), sizeof(u32)};
  static constexpr const char* kSecNames[kOracleSectionCount] = {
      "ball-offsets", "ball-entries", "gateway-offsets",
      "gateways",     "skeleton-nodes", "skeleton-table",
      "ball1-offsets", "ball1-entries", "gw1-offsets",
      "gw1",          "super-nodes"};
  for (u32 s = 0; s < kOracleSectionCount; ++s)
    validate_section(hdr.sections[s], kElemSizes[s], hdr.file_bytes,
                     kSecNames[s]);
  const bool two_level = scheme == label_scheme::kTwoLevel;
  if (hdr.sections[kSecBallOffsets].count != u64{hdr.n} + 1 ||
      hdr.sections[kSecGwOffsets].count != u64{hdr.n} + 1)
    throw oracle_store_error(store_errc::bad_section,
                             "offset sections must hold n + 1 entries");
  if (hdr.sections[kSecSkeletonNodes].count != hdr.n_s)
    throw oracle_store_error(store_errc::bad_section,
                             "skeleton-node section must hold n_s entries");
  const u64 skel_count = hdr.sections[kSecSkel].count;
  if (skel_count != 0 &&
      skel_count != expected_skel_count(hdr.n, hdr.n_s, hdr.n_s2, scheme))
    throw oracle_store_error(store_errc::bad_section,
                             "skeleton table inconsistent with the scheme");
  // Level-1 sections: per-scheme shape — n_s + 1 offsets and n_s2 super
  // nodes when two-level, element count 0 otherwise.
  const u64 lvl1_offsets = two_level ? u64{hdr.n_s} + 1 : 0;
  if (hdr.sections[kSecBall1Offsets].count != lvl1_offsets ||
      hdr.sections[kSecGw1Offsets].count != lvl1_offsets)
    throw oracle_store_error(
        store_errc::bad_section,
        two_level ? "level-1 offset sections must hold n_s + 1 entries"
                  : "level-1 sections must be empty on a single-level scheme");
  if (hdr.sections[kSecSuperNodes].count != (two_level ? hdr.n_s2 : 0))
    throw oracle_store_error(store_errc::bad_section,
                             "super-node section must hold n_s2 entries");
  if (!two_level && (hdr.sections[kSecBall1Entries].count != 0 ||
                     hdr.sections[kSecGw1].count != 0))
    throw oracle_store_error(
        store_errc::bad_section,
        "level-1 sections must be empty on a single-level scheme");

  // ---- layer 3: payload checksum -----------------------------------------
  u64 checksum = 0xcbf29ce484222325ull;
  for (u32 s = 0; s < kOracleSectionCount; ++s)
    checksum = fnv1a({out.base_ + hdr.sections[s].offset,
                      static_cast<size_t>(hdr.sections[s].bytes)},
                     checksum);
  if (checksum != hdr.payload_checksum)
    throw oracle_store_error(store_errc::bad_checksum, path);

  // ---- layer 4: CSR structure --------------------------------------------
  label_view& v = out.view_;
  v.n = hdr.n;
  v.n_s = hdr.n_s;
  v.n_s2 = hdr.n_s2;
  v.h = hdr.h;
  v.scheme = scheme;
  v.routes = hdr.routes != 0;
  v.ball_offsets = section_span<u64>(out.base_, hdr.sections[kSecBallOffsets]);
  v.ball_entries = section_span<exploration_entry>(
      out.base_, hdr.sections[kSecBallEntries]);
  v.gw_offsets = section_span<u64>(out.base_, hdr.sections[kSecGwOffsets]);
  v.gateways =
      section_span<source_distance>(out.base_, hdr.sections[kSecGateways]);
  v.skeleton_nodes =
      section_span<u32>(out.base_, hdr.sections[kSecSkeletonNodes]);
  v.skel = section_span<u64>(out.base_, hdr.sections[kSecSkel]);
  v.ball1_offsets =
      section_span<u64>(out.base_, hdr.sections[kSecBall1Offsets]);
  v.ball1_entries = section_span<exploration_entry>(
      out.base_, hdr.sections[kSecBall1Entries]);
  v.gw1_offsets = section_span<u64>(out.base_, hdr.sections[kSecGw1Offsets]);
  v.gw1 = section_span<source_distance>(out.base_, hdr.sections[kSecGw1]);
  v.super_nodes = section_span<u32>(out.base_, hdr.sections[kSecSuperNodes]);

  validate_csr(v.ball_offsets, v.ball_entries.size(), "ball");
  validate_csr(v.gw_offsets, v.gateways.size(), "gateway");
  for (const exploration_entry& e : v.ball_entries)
    if (e.source >= v.n)
      throw oracle_store_error(store_errc::bad_csr,
                               "ball entry names a node outside [0, n)");
  for (const source_distance& sd : v.gateways)
    if (sd.source >= v.n_s)
      throw oracle_store_error(
          store_errc::bad_csr,
          "gateway names a skeleton index outside [0, n_s)");
  if (two_level) {
    validate_csr(v.ball1_offsets, v.ball1_entries.size(), "ball1");
    validate_csr(v.gw1_offsets, v.gw1.size(), "gw1");
    for (const exploration_entry& e : v.ball1_entries)
      if (e.source >= v.n_s)
        throw oracle_store_error(
            store_errc::bad_csr,
            "ball1 entry names a skeleton index outside [0, n_s)");
    for (const source_distance& sd : v.gw1)
      if (sd.source >= v.n_s2)
        throw oracle_store_error(
            store_errc::bad_csr,
            "gw1 names a super index outside [0, n_s2)");
    for (const u32 s : v.super_nodes)
      if (s >= v.n_s)
        throw oracle_store_error(
            store_errc::bad_csr,
            "super node names a skeleton index outside [0, n_s)");
    // Any level-2 gateway makes query() index the super-pair table.
    if (!v.gw1.empty() && v.skel.empty())
      throw oracle_store_error(store_errc::bad_csr,
                               "gw1 present but super-pair table empty");
  } else {
    // Any gateway makes query() index the skeleton table, so the table must
    // be present at its full per-scheme size.
    if (!v.gateways.empty() && v.skel.empty())
      throw oracle_store_error(store_errc::bad_csr,
                               "gateways present but skeleton table empty");
  }
  if (!v.skel.empty())
    for (const u32 s : v.skeleton_nodes)
      if (s >= v.n)
        throw oracle_store_error(store_errc::bad_csr,
                                 "skeleton node outside [0, n)");
  return out;
}

void mapped_oracle::attach_topology(const graph& g) {
  HYB_REQUIRE(loaded(), "attach_topology needs a loaded oracle");
  HYB_REQUIRE(g.num_nodes() == view_.n,
              "topology node count differs from the stored labels");
  HYB_REQUIRE(header_.graph_checksum == 0 ||
                  graph_checksum(g) == header_.graph_checksum,
              "topology checksum differs from the graph the labels were "
              "built against");
  view_.topo = &g;
}

}  // namespace hybrid
