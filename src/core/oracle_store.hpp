// Persistent, mmap-able distance-label oracle (the "serve the labels"
// store, ROADMAP).
//
// A dist_labels oracle is three CSR slab families plus a handful of
// scalars; this module gives it a write-once on-disk form so the oracle is
// built once in the simulator and then served forever at memory-bus speed —
// no simulator in the hot path. In the spirit of SNIPPETS.md's maph hybrid
// store: a magic + versioned header with fixed-width fields, a section
// offset table, then the label arenas laid out as 64-byte-aligned slabs in
// exactly their in-memory layout, so load is a zero-copy mmap and the
// returned label_view (core/dist_oracle.hpp) runs the SAME query
// implementation the in-memory oracle runs — bit-identity is structural,
// not re-implemented.
//
// File layout (version 2, little-endian, all offsets absolute):
//
//   oracle_header   magic "HYBORCLE", version, n/n_s/n_s2/h/scheme/routes,
//                   graph checksum (weights included), payload checksum,
//                   section table (offset, element count, byte size) × 11
//   section 0       ball offsets      u64 × (n+1)
//   section 1       ball entries      exploration_entry (16 B) × Σ|ball|
//   section 2       gateway offsets   u64 × (n+1)
//   section 3       gateways          source_distance (24 B, padding
//                                     zeroed at save) × Σ|near|
//   section 4       skeleton nodes    u32 × n_s
//   section 5       skeleton table    u64 × (n_s·n | n_s·n_s | n_s2·n_s2),
//                                     per scheme
//   section 6       ball1 offsets     u64 × (n_s+1)      } level-1 slabs,
//   section 7       ball1 entries     exploration_entry  } element counts 0
//   section 8       gw1 offsets       u64 × (n_s+1)      } unless scheme is
//   section 9       gw1               source_distance    } kTwoLevel
//   section 10      super nodes       u32 × n_s2         }
//
// Versioning policy (docs/ARCHITECTURE.md): any change to the header, the
// section set, or an element layout bumps kOracleFormatVersion; old files
// are rejected with store_errc::bad_version, never reinterpreted. (Pinned
// for the v1 → v2 bump by a kept v1 golden file that must fail with exactly
// that code — rebuild old oracles rather than migrating bytes.) The
// committed golden file (tests/data/) makes an accidental layout change a
// test failure instead of a silent corruption.
//
// Every malformed input — truncated file, flipped magic, wrong version,
// out-of-bounds section offsets, CSR indices past their arena — is rejected
// at load with a typed oracle_store_error (no UB on hostile bytes; the
// fuzz/corruption suite in tests/oracle_store_test.cpp drives each case).
#pragma once

#include <cstddef>
#include <span>
#include <stdexcept>
#include <string>

#include "core/dist_oracle.hpp"

namespace hybrid {

inline constexpr u64 kOracleMagic = 0x454C43524F425948ull;  // "HYBORCLE" LE
inline constexpr u32 kOracleFormatVersion = 2;
inline constexpr u32 kOracleSectionCount = 11;
inline constexpr u64 kOracleSectionAlign = 64;

/// One entry of the header's section table.
struct oracle_section {
  u64 offset;  ///< absolute byte offset, kOracleSectionAlign-aligned
  u64 count;   ///< element count
  u64 bytes;   ///< count × element size
};

/// The fixed-size file header. Standard layout, no implicit padding (the
/// static_asserts below pin the exact byte image the golden file commits).
struct oracle_header {
  u64 magic;
  u32 version;
  u32 header_bytes;  ///< sizeof(oracle_header), rejects layout mismatch
  u64 file_bytes;    ///< total file size, rejects truncation
  u32 n;
  u32 n_s;
  u32 h;
  u8 scheme;  ///< label_scheme as u8
  u8 routes;  ///< 0/1: next_hop() servable after attach_topology()
  u8 pad[2];  ///< zero
  u32 n_s2;      ///< super-skeleton size; 0 unless scheme is kTwoLevel
  u32 reserved;  ///< zero (future flags; validated like pad)
  u64 graph_checksum;    ///< fnv1a over the topology; 0 = no graph at save
  u64 payload_checksum;  ///< fnv1a over all section payload bytes, in order
  oracle_section sections[kOracleSectionCount];
};
static_assert(sizeof(oracle_header) ==
                  64 + kOracleSectionCount * sizeof(oracle_section),
              "oracle_header grew implicit padding — fix the layout AND bump "
              "kOracleFormatVersion");
static_assert(std::is_trivially_copyable_v<oracle_header>);
static_assert(sizeof(exploration_entry) == 16 &&
              std::is_trivially_copyable_v<exploration_entry>);
static_assert(sizeof(source_distance) == 24 &&
              std::is_trivially_copyable_v<source_distance>);

/// Why a load was rejected. Each maps to exactly one validation layer so
/// the corruption suite can assert the loader fails for the RIGHT reason.
enum class store_errc {
  io,            ///< open/stat/map/write failed
  truncated,     ///< file shorter than the header or its declared size
  bad_magic,     ///< not an oracle store file
  bad_version,   ///< format version this build does not speak
  bad_header,    ///< header fields inconsistent (scheme byte, sizes, ...)
  bad_section,   ///< section table entry out of bounds / misaligned
  bad_checksum,  ///< payload bytes do not match the header checksum
  bad_csr,       ///< CSR structure invalid (offsets past arena, bad index)
};

const char* to_string(store_errc c);

class oracle_store_error : public std::runtime_error {
 public:
  oracle_store_error(store_errc code, const std::string& what)
      : std::runtime_error(std::string(to_string(code)) + ": " + what),
        code_(code) {}
  store_errc code() const { return code_; }

 private:
  store_errc code_;
};

/// FNV-1a 64 over a byte range, chainable via `state` (exposed so tests can
/// re-seal a deliberately corrupted payload and reach the post-checksum
/// validation layers).
u64 fnv1a(std::span<const std::byte> bytes,
          u64 state = 0xcbf29ce484222325ull);

/// Checksum of a local topology (n, edge endpoints, weights — the inputs
/// next_hop composition depends on). Stored in the header at save; verified
/// by mapped_oracle::attach_topology so labels are never composed with a
/// graph they were not built from.
u64 graph_checksum(const graph& g);

/// Write-once save. `lab.topo`, when set, contributes the graph checksum
/// (pass the labels exactly as the core built them). Shape violations
/// (offset arrays of the wrong size, a skeleton table inconsistent with the
/// scheme) throw std::invalid_argument; I/O failure throws
/// oracle_store_error{store_errc::io}.
void save_oracle(const dist_labels& lab, const std::string& path);

/// A loaded, validated, read-only oracle backed by an mmap of the file
/// (zero-copy: the label arenas are served straight from the page cache).
/// Safe for any number of concurrent reader threads — the view is
/// immutable, and the torture suite runs it under TSAN.
class mapped_oracle {
 public:
  mapped_oracle() = default;
  ~mapped_oracle();
  mapped_oracle(mapped_oracle&& other) noexcept;
  mapped_oracle& operator=(mapped_oracle&& other) noexcept;
  mapped_oracle(const mapped_oracle&) = delete;
  mapped_oracle& operator=(const mapped_oracle&) = delete;

  /// Validate and map `path`. Throws oracle_store_error (see store_errc for
  /// the layers, checked in order: existence/size → magic → version →
  /// header → section table → payload checksum → CSR structure).
  static mapped_oracle load(const std::string& path);

  bool loaded() const { return base_ != nullptr; }
  const oracle_header& header() const { return header_; }

  /// The span accessor — same type, same implementation as
  /// dist_labels::view(). next_hop() additionally needs attach_topology().
  const label_view& view() const { return view_; }

  /// Wire the local graph in for next_hop(); rejects a graph whose
  /// checksum differs from the one the labels were built against.
  void attach_topology(const graph& g);

  // Convenience forwards for callers that never touch the view directly.
  u64 query(u32 u, u32 v) const { return view_.query(u, v); }
  u32 next_hop(u32 u, u32 v) const { return view_.next_hop(u, v); }
  std::vector<u64> row(u32 u) const { return view_.row(u); }

 private:
  void reset() noexcept;

  const std::byte* base_ = nullptr;
  u64 mapped_bytes_ = 0;
  bool is_mmap_ = false;  ///< false: heap fallback (non-POSIX platforms)
  oracle_header header_{};
  label_view view_{};
};

}  // namespace hybrid
