#include "core/sssp.hpp"

#include "core/kssp_framework.hpp"

namespace hybrid {

sssp_result hybrid_sssp_exact(const graph& g, const model_config& cfg,
                              u64 seed, u32 source, sim_options opts) {
  const clique_sp_algorithm alg = make_clique_sssp_exact();
  kssp_result k = hybrid_kssp(g, cfg, seed, {source}, alg,
                              /*source_into_skeleton=*/true, opts);
  sssp_result out;
  out.source = source;
  // One n-word row regardless of sim_options{storage}: take the dense
  // adapter when it was materialized, else stream it from the labels.
  out.dist = k.materialized() ? std::move(k.dist[0]) : k.labels.row(0);
  out.metrics = std::move(k.metrics);
  out.skeleton_size = k.skeleton_size;
  out.h = k.h;
  return out;
}

}  // namespace hybrid
