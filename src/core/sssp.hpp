// Exact SSSP in Õ(n^{2/5}) HYBRID rounds (paper Theorem 1.3 / Corollary
// 4.9): the Theorem 4.1 framework instantiated with the exact CLIQUE SSSP of
// [7] (δ = 1/6, η = 1, α = 1, β = 0) and the source summoned into the
// skeleton (Lemma 4.5), which makes the result exact w.h.p.
//
// Fault behavior (docs/FAULTS.md): inherits the kssp framework's healing —
// under message loss on both planes plus crash/recovery the distance vector
// comes out identical to the fault-free run (the exploration may go deeper
// when healing stretched the elapsed runtime, but d_h is already exact at
// the nominal depth), or the run throws fault_failure explicitly.
#pragma once

#include "graph/graph.hpp"
#include "sim/hybrid_net.hpp"

namespace hybrid {

struct sssp_result {
  u32 source = 0;
  std::vector<u64> dist;  ///< dist[v] = d(source, v)
  run_metrics metrics;
  u32 skeleton_size = 0;
  u32 h = 0;
};

/// `opts` selects the executor thread count (docs/CONCURRENCY.md); results
/// are bit-identical for every thread count.
sssp_result hybrid_sssp_exact(const graph& g, const model_config& cfg,
                              u64 seed, u32 source, sim_options opts = {});

}  // namespace hybrid
