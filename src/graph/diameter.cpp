#include "graph/diameter.hpp"

#include <algorithm>
#include <queue>
#include <tuple>

#include "graph/shortest_paths.hpp"
#include "util/assert.hpp"

namespace hybrid {

u64 diameter_of_rows(
    u32 n, const std::function<void(u32, std::vector<u64>&)>& fill_row,
    bool require_connected) {
  u64 best = 0;
  std::vector<u64> row;
  for (u32 u = 0; u < n; ++u) {
    fill_row(u, row);
    for (u64 d : row) {
      if (d >= kInfDist) {
        HYB_REQUIRE(!require_connected, "diameter requires a connected graph");
        continue;
      }
      best = std::max(best, d);
    }
  }
  return best;
}

u32 hop_diameter(const graph& g) {
  u32 best = 0;
  for (u32 v = 0; v < g.num_nodes(); ++v) {
    for (u32 h : bfs_hops(g, v)) {
      HYB_REQUIRE(h != ~u32{0}, "hop_diameter requires a connected graph");
      best = std::max(best, h);
    }
  }
  return best;
}

u64 weighted_diameter(const graph& g) {
  return diameter_of_rows(
      g.num_nodes(), [&](u32 u, std::vector<u64>& row) { row = dijkstra(g, u); },
      /*require_connected=*/true);
}

u32 shortest_path_diameter(const graph& g) {
  // Dijkstra ordered by (distance, hops): computes the minimum hop count
  // among shortest paths from each source.
  u32 best = 0;
  for (u32 s = 0; s < g.num_nodes(); ++s) {
    const u32 n = g.num_nodes();
    std::vector<u64> dist(n, kInfDist);
    std::vector<u32> hops(n, ~u32{0});
    using item = std::tuple<u64, u32, u32>;  // (dist, hops, node)
    std::priority_queue<item, std::vector<item>, std::greater<>> pq;
    dist[s] = 0;
    hops[s] = 0;
    pq.push({0, 0, s});
    while (!pq.empty()) {
      auto [d, h, v] = pq.top();
      pq.pop();
      if (d != dist[v] || h != hops[v]) continue;
      for (const edge& e : g.neighbors(v)) {
        const u64 nd = d + e.weight;
        const u32 nh = h + 1;
        if (nd < dist[e.to] || (nd == dist[e.to] && nh < hops[e.to])) {
          dist[e.to] = nd;
          hops[e.to] = nh;
          pq.push({nd, nh, e.to});
        }
      }
    }
    for (u32 v = 0; v < n; ++v) {
      HYB_REQUIRE(dist[v] != kInfDist, "requires a connected graph");
      best = std::max(best, hops[v]);
    }
  }
  return best;
}

}  // namespace hybrid
