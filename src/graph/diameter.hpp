// Reference diameter computations.
//
// The paper's diameter problem targets D(G) = max hop distance (the local
// graph's unweighted diameter); the weighted-diameter lower bound (Thm 1.6)
// additionally needs max weighted distance.
#pragma once

#include "graph/graph.hpp"

namespace hybrid {

/// D(G): maximum hop distance over all pairs (n BFS runs).
u32 hop_diameter(const graph& g);

/// Maximum weighted distance over all pairs (n Dijkstra runs).
u64 weighted_diameter(const graph& g);

/// Shortest-path diameter: max over pairs of the minimum hop count among
/// weighted shortest paths. Drives the SSSP baseline comparison (paper §1.1).
u32 shortest_path_diameter(const graph& g);

}  // namespace hybrid
