// Reference diameter computations.
//
// The paper's diameter problem targets D(G) = max hop distance (the local
// graph's unweighted diameter); the weighted-diameter lower bound (Thm 1.6)
// additionally needs max weighted distance.
//
// Every computation here is row-streaming: one distance row lives at a time
// (O(n) working memory), whether the row comes from a fresh Dijkstra/BFS or
// from a distance-label oracle (core/dist_oracle.hpp) — `diameter_of_rows`
// is the shared form both consume.
#pragma once

#include <functional>

#include "graph/graph.hpp"

namespace hybrid {

/// Max finite distance over the rows `fill_row(u, scratch)` for u in [0, n)
/// — the streaming diameter form. With `require_connected`, an infinite
/// entry throws (the classic reference semantics); without it, unreachable
/// pairs are skipped, so the result is the largest per-component diameter.
u64 diameter_of_rows(
    u32 n, const std::function<void(u32, std::vector<u64>&)>& fill_row,
    bool require_connected = true);

/// D(G): maximum hop distance over all pairs (n BFS runs).
u32 hop_diameter(const graph& g);

/// Maximum weighted distance over all pairs (n Dijkstra runs, streamed
/// through diameter_of_rows).
u64 weighted_diameter(const graph& g);

/// Shortest-path diameter: max over pairs of the minimum hop count among
/// weighted shortest paths. Drives the SSSP baseline comparison (paper §1.1).
u32 shortest_path_diameter(const graph& g);

}  // namespace hybrid
