#include "graph/generators.hpp"

#include <algorithm>
#include <cmath>
#include <set>

#include "util/assert.hpp"

namespace hybrid::gen {

namespace {

u64 draw_weight(rng& r, u64 max_weight) {
  return max_weight <= 1 ? 1 : r.next_in(1, max_weight);
}

graph finish(u32 n, std::vector<edge_spec>& edges) {
  return graph::from_edges(n, edges);
}

}  // namespace

graph path(u32 n, u64 max_weight, u64 seed) {
  HYB_REQUIRE(n >= 1, "path needs >= 1 node");
  rng r(seed);
  std::vector<edge_spec> edges;
  for (u32 v = 0; v + 1 < n; ++v)
    edges.push_back({v, v + 1, draw_weight(r, max_weight)});
  return finish(n, edges);
}

graph cycle(u32 n, u64 max_weight, u64 seed) {
  HYB_REQUIRE(n >= 3, "cycle needs >= 3 nodes");
  rng r(seed);
  std::vector<edge_spec> edges;
  for (u32 v = 0; v < n; ++v)
    edges.push_back({v, (v + 1) % n, draw_weight(r, max_weight)});
  return finish(n, edges);
}

graph grid(u32 rows, u32 cols, u64 max_weight, u64 seed) {
  HYB_REQUIRE(rows >= 1 && cols >= 1, "grid needs positive dimensions");
  rng r(seed);
  std::vector<edge_spec> edges;
  auto id = [cols](u32 i, u32 j) { return i * cols + j; };
  for (u32 i = 0; i < rows; ++i)
    for (u32 j = 0; j < cols; ++j) {
      if (j + 1 < cols)
        edges.push_back({id(i, j), id(i, j + 1), draw_weight(r, max_weight)});
      if (i + 1 < rows)
        edges.push_back({id(i, j), id(i + 1, j), draw_weight(r, max_weight)});
    }
  return finish(rows * cols, edges);
}

graph balanced_tree(u32 n, u32 arity, u64 max_weight, u64 seed) {
  HYB_REQUIRE(n >= 1 && arity >= 1, "tree needs nodes and positive arity");
  rng r(seed);
  std::vector<edge_spec> edges;
  for (u32 v = 1; v < n; ++v)
    edges.push_back({(v - 1) / arity, v, draw_weight(r, max_weight)});
  return finish(n, edges);
}

graph erdos_renyi_connected(u32 n, double avg_degree, u64 max_weight,
                            u64 seed) {
  HYB_REQUIRE(n >= 2, "need >= 2 nodes");
  HYB_REQUIRE(avg_degree >= 2.0, "average degree must be >= 2 (tree edges)");
  rng r(seed);
  std::vector<edge_spec> edges;
  std::set<std::pair<u32, u32>> present;
  auto add = [&](u32 a, u32 b) {
    auto key = std::minmax(a, b);
    if (a == b || !present.insert(key).second) return false;
    edges.push_back({a, b, draw_weight(r, max_weight)});
    return true;
  };
  // Uniform random attachment tree keeps the base connected.
  for (u32 v = 1; v < n; ++v) add(v, static_cast<u32>(r.next_below(v)));
  const u64 target_edges = static_cast<u64>(avg_degree * n / 2.0);
  u64 budget = 10 * target_edges + 100;  // rejection-sampling safety stop
  while (edges.size() < target_edges && budget-- > 0)
    add(static_cast<u32>(r.next_below(n)), static_cast<u32>(r.next_below(n)));
  return finish(n, edges);
}

graph random_geometric(u32 n, double avg_degree, u64 max_weight, u64 seed) {
  HYB_REQUIRE(n >= 2, "need >= 2 nodes");
  rng r(seed);
  std::vector<std::pair<double, double>> pos(n);
  for (auto& p : pos) p = {r.next_double(), r.next_double()};
  // Expected degree = n·π·rad² on the unit torus-free square (boundary
  // effects shrink it slightly; acceptable for workload generation).
  const double rad =
      std::sqrt(avg_degree / (static_cast<double>(n) * 3.14159265358979));
  std::vector<u32> order(n);
  for (u32 v = 0; v < n; ++v) order[v] = v;
  std::sort(order.begin(), order.end(),
            [&](u32 a, u32 b) { return pos[a].first < pos[b].first; });
  std::vector<edge_spec> edges;
  for (u32 a = 0; a < n; ++a)
    for (u32 b = a + 1; b < n; ++b) {
      const double dx = pos[a].first - pos[b].first;
      const double dy = pos[a].second - pos[b].second;
      if (dx * dx + dy * dy <= rad * rad)
        edges.push_back({a, b, draw_weight(r, max_weight)});
    }
  // Chain in x-order so the graph is always connected.
  for (u32 i = 0; i + 1 < n; ++i)
    edges.push_back({order[i], order[i + 1], draw_weight(r, max_weight)});
  return finish(n, edges);
}

graph barbell(u32 k, u32 path_len, u64 max_weight, u64 seed) {
  HYB_REQUIRE(k >= 2, "cliques need >= 2 nodes");
  rng r(seed);
  std::vector<edge_spec> edges;
  const u32 n = 2 * k + path_len;
  for (u32 a = 0; a < k; ++a)
    for (u32 b = a + 1; b < k; ++b) {
      edges.push_back({a, b, draw_weight(r, max_weight)});
      edges.push_back({k + a, k + b, draw_weight(r, max_weight)});
    }
  // Path bridging clique 0 (node 0) and clique 1 (node k).
  u32 prev = 0;
  for (u32 i = 0; i < path_len; ++i) {
    const u32 mid = 2 * k + i;
    edges.push_back({prev, mid, draw_weight(r, max_weight)});
    prev = mid;
  }
  edges.push_back({prev, k, draw_weight(r, max_weight)});
  return finish(n, edges);
}

graph bounded_degree(u32 n, u32 max_degree, u64 max_weight, u64 seed) {
  HYB_REQUIRE(n >= 2, "need >= 2 nodes");
  HYB_REQUIRE(max_degree >= 2, "degree cap must be >= 2 to stay connected");
  rng r(seed);
  std::vector<edge_spec> edges;
  std::vector<u32> deg(n, 0);
  // open = nodes with spare capacity; saturated nodes are swap-removed so
  // sampling stays O(1) per draw.
  std::vector<u32> open;
  open.reserve(n);
  auto bump = [&](u32 idx) {
    if (++deg[open[idx]] == max_degree) {
      open[idx] = open.back();
      open.pop_back();
    }
  };
  open.push_back(0);
  for (u32 v = 1; v < n; ++v) {
    // The attachment tree keeps the graph connected; attaching only to
    // spare-capacity nodes keeps every degree under the cap.
    const u32 idx = static_cast<u32>(r.next_below(open.size()));
    edges.push_back({open[idx], v, draw_weight(r, max_weight)});
    bump(idx);
    deg[v] = 1;
    open.push_back(v);  // max_degree >= 2, so v always has spare capacity
  }
  std::set<std::pair<u32, u32>> present;
  for (const edge_spec& e : edges) present.insert(std::minmax(e.a, e.b));
  // Extra edges between spare-capacity nodes; the attempt budget bounds the
  // rejection sampling once the open set is nearly paired up.
  u64 attempts = u64{4} * n + 64;
  while (open.size() >= 2 && attempts-- > 0) {
    const u32 i = static_cast<u32>(r.next_below(open.size()));
    const u32 j = static_cast<u32>(r.next_below(open.size()));
    const u32 a = open[i], b = open[j];
    if (a == b || !present.insert(std::minmax(a, b)).second) continue;
    edges.push_back({a, b, draw_weight(r, max_weight)});
    // Bump the higher index first so a swap-remove cannot invalidate the
    // other index.
    bump(std::max(i, j));
    bump(std::min(i, j));
  }
  return finish(n, edges);
}

graph preferential_attachment(u32 n, u32 attach, u64 max_weight, u64 seed) {
  HYB_REQUIRE(n >= 2 && attach >= 1, "need >= 2 nodes and attach >= 1");
  rng r(seed);
  std::vector<edge_spec> edges;
  // endpoint pool: each edge contributes both endpoints, so drawing
  // uniformly from the pool is degree-proportional sampling.
  std::vector<u32> pool;
  edges.push_back({0, 1, draw_weight(r, max_weight)});
  pool.push_back(0);
  pool.push_back(1);
  for (u32 v = 2; v < n; ++v) {
    std::set<u32> targets;
    const u32 want = std::min<u32>(attach, v);
    u32 guard = 40 * want + 16;
    while (targets.size() < want && guard-- > 0)
      targets.insert(pool[r.next_below(pool.size())]);
    if (targets.empty()) targets.insert(static_cast<u32>(r.next_below(v)));
    for (u32 t : targets) {
      edges.push_back({v, t, draw_weight(r, max_weight)});
      pool.push_back(v);
      pool.push_back(t);
    }
  }
  return finish(n, edges);
}

}  // namespace hybrid::gen
