// Workload graph generators.
//
// The benches run each algorithm over families with very different
// local-graph geometry: expanders (ER), flat tori (grid), paths (maximal
// diameter), trees, and the near-clique barbell. All generators return
// connected graphs; weighted variants draw integer weights uniformly from
// [1, max_weight].
#pragma once

#include "graph/graph.hpp"
#include "util/rng.hpp"

namespace hybrid::gen {

graph path(u32 n, u64 max_weight = 1, u64 seed = 1);
graph cycle(u32 n, u64 max_weight = 1, u64 seed = 1);
graph grid(u32 rows, u32 cols, u64 max_weight = 1, u64 seed = 1);
graph balanced_tree(u32 n, u32 arity = 2, u64 max_weight = 1, u64 seed = 1);

/// Connected Erdős–Rényi-style graph: a uniform random spanning tree plus
/// extra uniform edges until average degree ≈ avg_degree.
graph erdos_renyi_connected(u32 n, double avg_degree, u64 max_weight,
                            u64 seed);

/// Random geometric graph on the unit square, radius scaled to hit roughly
/// avg_degree; chained by x-order to guarantee connectivity.
graph random_geometric(u32 n, double avg_degree, u64 max_weight, u64 seed);

/// Two cliques of size k joined by a bridge with path_len intermediate
/// nodes (path_len + 1 edges).
graph barbell(u32 k, u32 path_len, u64 max_weight = 1, u64 seed = 1);

/// Connected random graph with every degree ≤ max_degree (≥ 2): a random
/// attachment tree that only attaches to nodes with spare capacity, plus
/// random extra edges between spare-capacity nodes until the capacity is
/// (nearly) used up. The bounded degree keeps h-balls polynomially small,
/// which is the regime the sparse exploration path
/// (proto/sparse_exploration.hpp) targets at n ≫ 10⁴.
graph bounded_degree(u32 n, u32 max_degree, u64 max_weight, u64 seed);

/// Scale-free graph by preferential attachment (Barabási–Albert style):
/// each new node attaches `attach` edges to endpoints drawn proportionally
/// to degree. Models P2P-overlay-like local topologies from the paper's
/// motivation. Always connected.
graph preferential_attachment(u32 n, u32 attach, u64 max_weight, u64 seed);

}  // namespace hybrid::gen
