#include "graph/graph.hpp"

#include <algorithm>
#include <map>

#include "util/assert.hpp"

namespace hybrid {

graph graph::from_edges(u32 n, std::span<const edge_spec> edges) {
  HYB_REQUIRE(n > 0, "graph needs at least one node");
  // Collapse parallel edges keeping the minimum weight.
  std::map<std::pair<u32, u32>, u64> uniq;
  for (const auto& e : edges) {
    HYB_REQUIRE(e.a < n && e.b < n, "edge endpoint out of range");
    HYB_REQUIRE(e.a != e.b, "self-loops are not allowed");
    HYB_REQUIRE(e.weight >= 1, "edge weights must be >= 1");
    auto key = std::minmax(e.a, e.b);
    auto [it, inserted] = uniq.emplace(key, e.weight);
    if (!inserted) it->second = std::min(it->second, e.weight);
  }

  graph g;
  g.n_ = n;
  std::vector<u32> deg(n, 0);
  for (const auto& [key, w] : uniq) {
    (void)w;
    ++deg[key.first];
    ++deg[key.second];
  }
  g.offset_.assign(n + 1, 0);
  for (u32 v = 0; v < n; ++v) g.offset_[v + 1] = g.offset_[v] + deg[v];
  g.adj_.resize(g.offset_[n]);
  std::vector<u32> cursor(g.offset_.begin(), g.offset_.end() - 1);
  for (const auto& [key, w] : uniq) {
    g.adj_[cursor[key.first]++] = {key.second, w};
    g.adj_[cursor[key.second]++] = {key.first, w};
    g.max_weight_ = std::max(g.max_weight_, w);
  }
  for (u32 v = 0; v < n; ++v)
    std::sort(g.adj_.begin() + g.offset_[v], g.adj_.begin() + g.offset_[v + 1],
              [](const edge& x, const edge& y) { return x.to < y.to; });
  return g;
}

bool graph::is_connected() const {
  if (n_ == 0) return false;
  std::vector<char> seen(n_, 0);
  std::vector<u32> stack{0};
  seen[0] = 1;
  u32 count = 1;
  while (!stack.empty()) {
    u32 v = stack.back();
    stack.pop_back();
    for (const edge& e : neighbors(v)) {
      if (!seen[e.to]) {
        seen[e.to] = 1;
        ++count;
        stack.push_back(e.to);
      }
    }
  }
  return count == n_;
}

}  // namespace hybrid
