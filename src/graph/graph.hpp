// Weighted undirected graph substrate (CSR) used as the HYBRID local
// communication graph G = (V, E).
//
// Conventions follow the paper's preliminaries: nodes are [0, n); edge
// weights are integers in [1, W] with W polynomial in n (unweighted means
// W = 1); distances are sums of weights, hop distances count edges.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "util/bits.hpp"

namespace hybrid {

/// Distance infinity; chosen so that INF + any edge weight cannot overflow.
inline constexpr u64 kInfDist = ~u64{0} / 4;

struct edge {
  u32 to;
  u64 weight;
};

struct edge_spec {
  u32 a;
  u32 b;
  u64 weight;
};

class graph {
 public:
  graph() = default;

  /// Build from an undirected edge list. Parallel edges are collapsed to the
  /// lightest; self-loops are rejected.
  static graph from_edges(u32 n, std::span<const edge_spec> edges);

  u32 num_nodes() const { return n_; }
  u64 num_edges() const { return adj_.size() / 2; }

  std::span<const edge> neighbors(u32 v) const {
    return {adj_.data() + offset_[v], adj_.data() + offset_[v + 1]};
  }

  u32 degree(u32 v) const { return offset_[v + 1] - offset_[v]; }

  u64 max_weight() const { return max_weight_; }
  bool is_unweighted() const { return max_weight_ <= 1; }

  bool is_connected() const;

 private:
  u32 n_ = 0;
  std::vector<u32> offset_;  // size n_ + 1
  std::vector<edge> adj_;    // both directions materialized
  u64 max_weight_ = 0;
};

}  // namespace hybrid
