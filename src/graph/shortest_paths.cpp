#include "graph/shortest_paths.hpp"

#include <queue>

#include "util/assert.hpp"

namespace hybrid {

std::vector<u64> dijkstra(const graph& g, u32 source) {
  HYB_REQUIRE(source < g.num_nodes(), "source out of range");
  std::vector<u64> dist(g.num_nodes(), kInfDist);
  using item = std::pair<u64, u32>;  // (distance, node)
  std::priority_queue<item, std::vector<item>, std::greater<>> pq;
  dist[source] = 0;
  pq.push({0, source});
  while (!pq.empty()) {
    auto [d, v] = pq.top();
    pq.pop();
    if (d != dist[v]) continue;
    for (const edge& e : g.neighbors(v)) {
      const u64 nd = d + e.weight;
      if (nd < dist[e.to]) {
        dist[e.to] = nd;
        pq.push({nd, e.to});
      }
    }
  }
  return dist;
}

std::vector<u32> bfs_hops(const graph& g, u32 source) {
  HYB_REQUIRE(source < g.num_nodes(), "source out of range");
  constexpr u32 unreached = ~u32{0};
  std::vector<u32> hop(g.num_nodes(), unreached);
  std::queue<u32> q;
  hop[source] = 0;
  q.push(source);
  while (!q.empty()) {
    u32 v = q.front();
    q.pop();
    for (const edge& e : g.neighbors(v)) {
      if (hop[e.to] == unreached) {
        hop[e.to] = hop[v] + 1;
        q.push(e.to);
      }
    }
  }
  return hop;
}

std::vector<u64> limited_distance(const graph& g, u32 source, u32 h) {
  HYB_REQUIRE(source < g.num_nodes(), "source out of range");
  std::vector<u64> cur(g.num_nodes(), kInfDist);
  cur[source] = 0;
  std::vector<u64> next = cur;
  for (u32 round = 0; round < h; ++round) {
    bool changed = false;
    for (u32 v = 0; v < g.num_nodes(); ++v) {
      if (cur[v] == kInfDist) continue;
      for (const edge& e : g.neighbors(v)) {
        const u64 nd = cur[v] + e.weight;
        if (nd < next[e.to]) {
          next[e.to] = nd;
          changed = true;
        }
      }
    }
    cur = next;
    if (!changed) break;
  }
  return cur;
}

std::vector<std::vector<u64>> apsp_reference(const graph& g) {
  std::vector<std::vector<u64>> all(g.num_nodes());
  for (u32 v = 0; v < g.num_nodes(); ++v) all[v] = dijkstra(g, v);
  return all;
}

std::vector<std::vector<u64>> multi_source_reference(
    const graph& g, std::span<const u32> sources) {
  std::vector<std::vector<u64>> all;
  all.reserve(sources.size());
  for (u32 s : sources) all.push_back(dijkstra(g, s));
  return all;
}

}  // namespace hybrid
