// Centralized reference algorithms — the ground truth every simulated
// protocol is checked against, and the paper's basic definitions
// (d, hop, d_h from the preliminaries) made executable.
#pragma once

#include <span>
#include <vector>

#include "graph/graph.hpp"

namespace hybrid {

/// Dijkstra from one source; dist[v] = d(source, v) (kInfDist if unreachable).
std::vector<u64> dijkstra(const graph& g, u32 source);

/// BFS hop distances hop(source, v).
std::vector<u32> bfs_hops(const graph& g, u32 source);

/// h-hop-limited distances d_h(source, ·) (paper preliminaries): the lightest
/// walk using at most h edges. Bellman–Ford with h relaxation rounds.
std::vector<u64> limited_distance(const graph& g, u32 source, u32 h);

/// Exact APSP (n Dijkstra runs); row v = distances from v.
std::vector<std::vector<u64>> apsp_reference(const graph& g);

/// Multi-source: dist[i][v] = d(sources[i], v).
std::vector<std::vector<u64>> multi_source_reference(
    const graph& g, std::span<const u32> sources);

}  // namespace hybrid
