#include "hash/kwise.hpp"

#include "util/assert.hpp"

namespace hybrid {

namespace {

/// Multiplication mod 2^61−1 using 128-bit intermediate + Mersenne folding.
u64 mul_mod(u64 a, u64 b) {
  const __uint128_t p = static_cast<__uint128_t>(a) * b;
  u64 lo = static_cast<u64>(p) & kwise_hash::kPrime;
  u64 hi = static_cast<u64>(p >> 61);
  u64 s = lo + hi;
  if (s >= kwise_hash::kPrime) s -= kwise_hash::kPrime;
  return s;
}

u64 add_mod(u64 a, u64 b) {
  u64 s = a + b;  // both < 2^61, no overflow
  if (s >= kwise_hash::kPrime) s -= kwise_hash::kPrime;
  return s;
}

}  // namespace

kwise_hash::kwise_hash(u32 independence, rng& seed_source)
    : independence_(independence) {
  HYB_REQUIRE(independence >= 2, "need at least pairwise independence");
  coeff_.reserve(independence);
  for (u32 i = 0; i < independence; ++i)
    coeff_.push_back(seed_source.next_below(kPrime));
}

u64 kwise_hash::eval(u64 key) const {
  u64 x = key % kPrime;
  // Horner evaluation of sum coeff_[j] * x^j.
  u64 acc = coeff_.back();
  for (u32 j = independence_ - 1; j-- > 0;)
    acc = add_mod(mul_mod(acc, x), coeff_[j]);
  return acc;
}

u32 kwise_hash::eval_to_range(u64 key, u32 range) const {
  HYB_REQUIRE(range > 0, "range must be positive");
  return static_cast<u32>(eval(key) % range);
}

u64 kwise_hash::encode_label(u32 s, u32 r, u32 i, u32 n, u32 max_i) {
  const __uint128_t combined =
      (static_cast<__uint128_t>(s) * n + r) * (static_cast<u64>(max_i) + 1) +
      i;
  HYB_REQUIRE(combined < kPrime,
              "label space exceeds hash field; shrink n or max_i");
  return static_cast<u64>(combined);
}

}  // namespace hybrid
