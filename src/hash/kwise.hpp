// k-wise independent hash family (paper Appendix D, Definition D.1 /
// Lemma D.1).
//
// The token-routing scheme (Algorithm 4) selects intermediate nodes with a
// publicly known hash h : V × V × N → V drawn from a k-wise independent
// family for k = Θ(log n). Lemma D.2 then bounds every node's receive load by
// O(log n) messages per round w.h.p. We realize the classical construction: a
// degree-(k−1) polynomial over the Mersenne-prime field GF(2^61 − 1). The seed
// is the k coefficients, i.e. k·61 ∈ O(log² n) random bits — exactly the seed
// budget Lemma 2.3 accounts for broadcasting.
#pragma once

#include <vector>

#include "util/bits.hpp"
#include "util/rng.hpp"

namespace hybrid {

class kwise_hash {
 public:
  static constexpr u64 kPrime = (u64{1} << 61) - 1;

  /// Draw a function with `independence`-wise independence from the family,
  /// consuming randomness from `seed_source` (models the broadcast seed).
  kwise_hash(u32 independence, rng& seed_source);

  /// Evaluate on an arbitrary 64-bit key (< kPrime after reduction).
  u64 eval(u64 key) const;

  /// Evaluate and map into [0, range). The map is mod-range; the residual
  /// bias is ≤ range/2^61 and irrelevant at simulation scales.
  u32 eval_to_range(u64 key, u32 range) const;

  /// Injective key encoding for token labels (s, r, i) as used by
  /// Algorithm 4. Requires the combined key to fit below kPrime.
  static u64 encode_label(u32 s, u32 r, u32 i, u32 n, u32 max_i);

  u32 independence() const { return independence_; }

  /// Number of random bits the public seed carries (Lemma 2.3: O(log² n)).
  u64 seed_bits() const { return static_cast<u64>(independence_) * 61; }

 private:
  u32 independence_;
  std::vector<u64> coeff_;
};

}  // namespace hybrid
