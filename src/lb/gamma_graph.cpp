#include "lb/gamma_graph.hpp"

#include "util/assert.hpp"

namespace hybrid::lb {

bool disjoint(const std::vector<u8>& a, const std::vector<u8>& b) {
  HYB_REQUIRE(a.size() == b.size(), "instance halves must match in length");
  for (std::size_t i = 0; i < a.size(); ++i)
    if (a[i] && b[i]) return false;
  return true;
}

gamma_graph build_gamma(const gamma_params& p, const std::vector<u8>& a,
                        const std::vector<u8>& b) {
  HYB_REQUIRE(p.k >= 2, "need k >= 2");
  HYB_REQUIRE(p.ell >= 2, "need ell >= 2");
  HYB_REQUIRE(p.w >= 1, "need W >= 1");
  const u64 universe = static_cast<u64>(p.k) * p.k;
  HYB_REQUIRE(a.size() == universe && b.size() == universe,
              "instance must have k^2 bits");

  gamma_graph out;
  out.params = p;
  std::vector<u32>& column = out.column;
  std::vector<edge_spec> edges;

  u32 next = 0;
  auto fresh = [&](u32 col) {
    column.push_back(col);
    return next++;
  };

  // Cliques.
  out.v1.resize(p.k);
  out.v2.resize(p.k);
  out.u1.resize(p.k);
  out.u2.resize(p.k);
  for (u32 i = 0; i < p.k; ++i) out.v1[i] = fresh(0);
  for (u32 i = 0; i < p.k; ++i) out.v2[i] = fresh(0);
  for (u32 i = 0; i < p.k; ++i) out.u1[i] = fresh(p.ell);
  for (u32 i = 0; i < p.k; ++i) out.u2[i] = fresh(p.ell);
  auto clique = [&](const std::vector<u32>& c) {
    for (u32 i = 0; i < c.size(); ++i)
      for (u32 j = i + 1; j < c.size(); ++j)
        edges.push_back({c[i], c[j], p.w});
  };
  clique(out.v1);
  clique(out.v2);
  clique(out.u1);
  clique(out.u2);

  // Hubs.
  out.v_hat = fresh(0);
  out.u_hat = fresh(p.ell);
  for (u32 i = 0; i < p.k; ++i) {
    edges.push_back({out.v_hat, out.v1[i], p.w});
    edges.push_back({out.v_hat, out.v2[i], p.w});
    edges.push_back({out.u_hat, out.u1[i], p.w});
    edges.push_back({out.u_hat, out.u2[i], p.w});
  }

  // ℓ-hop unit paths for the matchings and the hub path.
  auto path = [&](u32 from, u32 to) {
    u32 prev = from;
    for (u32 step = 1; step < p.ell; ++step) {
      const u32 mid = fresh(step);
      edges.push_back({prev, mid, 1});
      prev = mid;
    }
    edges.push_back({prev, to, 1});
  };
  for (u32 i = 0; i < p.k; ++i) {
    path(out.v1[i], out.u1[i]);
    path(out.v2[i], out.u2[i]);
  }
  path(out.v_hat, out.u_hat);

  // Input encoding: pair i ↦ (i / k, i % k); the RED edge exists iff the
  // bit is 0.
  for (u64 i = 0; i < universe; ++i) {
    const u32 x = static_cast<u32>(i / p.k);
    const u32 y = static_cast<u32>(i % p.k);
    if (a[i] == 0) edges.push_back({out.v1[x], out.v2[y], p.w});
    if (b[i] == 0) edges.push_back({out.u1[x], out.u2[y], p.w});
  }

  out.g = graph::from_edges(next, edges);
  return out;
}

std::vector<u8> gamma_graph::alice_bob_cut() const {
  std::vector<u8> side(g.num_nodes());
  const u32 split = params.ell / 2;
  for (u32 v = 0; v < g.num_nodes(); ++v) side[v] = column[v] > split ? 1 : 0;
  return side;
}

}  // namespace hybrid::lb
