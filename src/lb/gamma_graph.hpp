// The set-disjointness diameter graph Γ^{a,b}_{k,ℓ,W} (paper Section 7,
// Figure 2; adaptation of Holzer–Pinsker [17]).
//
// Four k-node cliques V1, V2, U1, U2 (internal edges of weight W); V_i and
// U_i are perfectly matched by ℓ-hop paths of unit edges; hub nodes v̂ (tied
// to V1 ∪ V2) and û (tied to U1 ∪ U2) with weight-W edges are joined by an
// ℓ-hop, ℓ-weight path. Bit a_i (resp. b_i) of the disjointness instance is
// encoded by ADDING the weight-W edge of pair p_i ∈ V1×V2 (q_i ∈ U1×U2) iff
// the bit is 0. Lemma 7.1 (weighted, W > ℓ): diam ≤ W+2ℓ iff a, b disjoint,
// else ≥ 2W+ℓ. Lemma 7.2 (W = 1): diam = ℓ+1 iff disjoint, else ℓ+2.
//
// The node layout exposes a column index (0 … ℓ); the Alice/Bob cut used by
// the simulation argument of Lemma 7.3 splits at column ⌊ℓ/2⌋.
#pragma once

#include <vector>

#include "graph/graph.hpp"

namespace hybrid::lb {

struct gamma_params {
  u32 k = 4;       ///< clique size; instance universe is k²
  u32 ell = 4;     ///< path length (hops); must be ≥ 2
  u64 w = 16;      ///< clique/hub edge weight (1 for the unweighted case)
};

struct gamma_graph {
  graph g;
  gamma_params params;

  // Node IDs by role.
  std::vector<u32> v1, v2, u1, u2;  ///< the four cliques, index 0..k-1
  u32 v_hat = 0, u_hat = 0;

  /// Column of each node: 0 for V1∪V2∪{v̂}, ℓ for U1∪U2∪{û}, 1..ℓ-1 for
  /// path-internal nodes (Lemma 7.3's simulation columns).
  std::vector<u32> column;

  /// Alice/Bob bipartition at column ⌊ℓ/2⌋ (0 = Alice side).
  std::vector<u8> alice_bob_cut() const;

  /// The diameter thresholds of Lemmas 7.1 / 7.2.
  u64 low_diameter() const {
    return params.w == 1 ? params.ell + 1 : params.w + 2 * params.ell;
  }
  u64 high_diameter() const {
    return params.w == 1 ? params.ell + 2 : 2 * params.w + params.ell;
  }
};

/// Build Γ^{a,b}. `a` and `b` are bit vectors of length k² (bit i maps to
/// pair (i / k, i % k), consistent with the matching).
gamma_graph build_gamma(const gamma_params& p, const std::vector<u8>& a,
                        const std::vector<u8>& b);

/// Whether two bit vectors are disjoint (no index with a_i = b_i = 1).
bool disjoint(const std::vector<u8>& a, const std::vector<u8>& b);

}  // namespace hybrid::lb
