#include "lb/kssp_lb_graph.hpp"

#include "util/assert.hpp"

namespace hybrid::lb {

kssp_lb_graph build_kssp_lb(const kssp_lb_params& p, rng& r) {
  HYB_REQUIRE(p.path_len >= 4, "path too short");
  HYB_REQUIRE(p.l >= 1 && p.l < p.path_len / 2,
              "v1 must sit strictly in the first half of the path");
  HYB_REQUIRE(p.k >= 2 && p.k % 2 == 0, "k must be even and >= 2");

  kssp_lb_graph out;
  out.params = p;

  // Path nodes 0..path_len: b = 0, v1 = node at hop L, v2 = far end.
  std::vector<edge_spec> edges;
  const u32 path_nodes = p.path_len + 1;
  for (u32 i = 0; i + 1 < path_nodes; ++i) edges.push_back({i, i + 1, 1});
  out.b = 0;
  out.v1 = p.l;
  out.v2 = p.path_len;

  // Random half/half split of the k sources.
  std::vector<u32> order(p.k);
  for (u32 i = 0; i < p.k; ++i) order[i] = i;
  r.shuffle(order);
  out.in_s1.assign(p.k, 0);
  for (u32 i = 0; i < p.k / 2; ++i) out.in_s1[order[i]] = 1;

  out.sources.resize(p.k);
  for (u32 i = 0; i < p.k; ++i) {
    const u32 s = path_nodes + i;
    out.sources[i] = s;
    edges.push_back({s, out.in_s1[i] ? out.v1 : out.v2, 1});
  }
  out.g = graph::from_edges(path_nodes + p.k, edges);
  return out;
}

std::vector<u8> kssp_lb_graph::path_cut() const {
  // Alice = b's side: path nodes at hop < L; Bob = everything else
  // (v1, the far path, and all sources).
  std::vector<u8> side(g.num_nodes(), 1);
  for (u32 i = 0; i < params.l && i < g.num_nodes(); ++i) side[i] = 0;
  return side;
}

}  // namespace hybrid::lb
