// The k-SSP lower-bound graph (paper Section 6, Figure 1, Theorem 1.5).
//
// An Ω(n)-hop unit path ends in a dedicated node b. Node v1 sits at hop
// distance L ∈ Θ̃(√k) from b, node v2 at the far end. A random half of the k
// sources attaches to v1, the other half to v2. b must learn Ω(k) bits (the
// random S1/S2 split) through a path whose global-mode capacity is
// Õ(L) bits per round, giving the Ω̃(√k) bound; and any α-approximation with
// α ≤ α' ∈ Θ(n/√k) must distinguish d(b, S1) = L+1 from d(b, S2) = Θ(n).
#pragma once

#include <vector>

#include "graph/graph.hpp"
#include "util/rng.hpp"

namespace hybrid::lb {

struct kssp_lb_params {
  u32 path_len = 256;  ///< hops of the backbone path (Ω(n))
  u32 k = 64;          ///< number of sources
  u32 l = 16;          ///< distance of v1 from b (Θ̃(√k))
};

struct kssp_lb_graph {
  graph g;
  kssp_lb_params params;
  u32 b = 0;   ///< the observer endpoint
  u32 v1 = 0;  ///< near attachment point (hop L from b)
  u32 v2 = 0;  ///< far attachment point
  std::vector<u32> sources;       ///< all k source node IDs
  std::vector<u8> in_s1;          ///< per source: 1 if attached at v1
  /// Cut for bit accounting: nodes within hop < L of b vs. the rest.
  std::vector<u8> path_cut() const;

  /// Ground-truth distances from b: L+1 for S1 sources, path_len+1 for S2.
  u64 dist_b_s1() const { return params.l + 1; }
  u64 dist_b_s2() const { return params.path_len + 1; }
  /// The approximation ratio that must be beaten to separate S1 from S2.
  double alpha_prime() const {
    return static_cast<double>(dist_b_s2()) /
           static_cast<double>(dist_b_s1());
  }
};

/// Build an instance with a uniformly random half/half S1/S2 split.
kssp_lb_graph build_kssp_lb(const kssp_lb_params& p, rng& r);

}  // namespace hybrid::lb
