#include "proto/aggregation.hpp"

#include <algorithm>
#include <array>

#include "util/assert.hpp"

namespace hybrid {

namespace {

u64 combine(agg_op op, u64 x, u64 y) {
  switch (op) {
    case agg_op::max:
      return std::max(x, y);
    case agg_op::min:
      return std::min(x, y);
    case agg_op::sum:
      return x + y;
    case agg_op::logical_and:
      return (x != 0 && y != 0) ? 1 : 0;
  }
  return 0;
}

u32 tree_depth_of(u32 v) {
  u32 d = 0;
  while (v != 0) {
    v = (v - 1) / 2;
    ++d;
  }
  return d;
}

constexpr u32 kUpTag = 0xA661;
constexpr u32 kDownTag = 0xA662;
constexpr u32 kUpAckTag = 0xA663;
constexpr u32 kDownAckTag = 0xA664;

/// Healed aggregation for faulty global planes (docs/FAULTS.md): the
/// lockstep depth schedule above assumes every message arrives, so under
/// drops/crashes we switch to an acknowledged retransmission protocol on the
/// same tree. A node re-sends its child report every round until the parent
/// acks it, and re-sends the result to each child until that child acks;
/// duplicate child reports are deduplicated per child slot because sum is
/// not idempotent. Every message carries the instance epoch (the round the
/// aggregation started at) so back-to-back aggregations ignore each other's
/// stragglers. Terminates when every node holds the result; throws
/// fault_failure when heal_budget_mult times the fault-free round budget
/// elapses first (e.g. a node that never recovers).
u64 healed_global_aggregate(hybrid_net& net, agg_op op,
                            const std::vector<u64>& values) {
  const u32 n = net.n();
  const fault_options& fo = net.faults();
  const u64 epoch = net.round();
  const u32 nominal = aggregation_rounds(n);
  const u64 budget = u64{fo.heal_budget_mult} * nominal;

  std::vector<u64> acc = values;
  // Per-node protocol state; slot 0/1 = child 2v+1 / 2v+2.
  std::vector<std::array<u8, 2>> got_child(n, {0, 0});
  std::vector<std::array<u8, 2>> down_sent(n, {0, 0});
  std::vector<std::array<u8, 2>> down_acked(n, {0, 0});
  std::vector<u8> up_sent(n, 0);
  std::vector<u8> up_acked(n, 0);
  std::vector<u8> have(n, 0);
  std::vector<u64> retx(n, 0);

  round_executor& exec = net.executor();
  u64 used = 0;
  for (;;) {
    if (used >= budget)
      throw fault_failure("aggregation healing budget exhausted");
    ++used;
    exec.for_nodes(n, [&](u32 v) {
      // A down node's inbox is empty (delivery dropped) and it sends
      // nothing; its state freezes until recovery (fail-pause).
      if (!net.is_up(v)) return;
      for (const global_msg& m : net.global_inbox(v)) {
        if (m.tag == kUpTag) {
          if (m.w[1] != epoch) continue;
          const u32 slot = (m.src == 2 * v + 1) ? 0 : 1;
          if (!got_child[v][slot]) {
            got_child[v][slot] = 1;
            acc[v] = combine(op, acc[v], m.w[0]);
          }
          // Ack even duplicates: the child retransmits until one lands.
          net.try_send_global(global_msg::make(v, m.src, kUpAckTag, {epoch}));
        } else if (m.tag == kUpAckTag) {
          if (m.w[0] == epoch) up_acked[v] = 1;
        } else if (m.tag == kDownTag) {
          if (m.w[1] != epoch) continue;
          if (!have[v]) {
            have[v] = 1;
            acc[v] = m.w[0];
          }
          net.try_send_global(
              global_msg::make(v, m.src, kDownAckTag, {epoch}));
        } else if (m.tag == kDownAckTag) {
          if (m.w[0] != epoch) continue;
          down_acked[v][(m.src == 2 * v + 1) ? 0 : 1] = 1;
        }
      }
      const bool kids_done = (2 * v + 1 >= n || got_child[v][0]) &&
                             (2 * v + 2 >= n || got_child[v][1]);
      if (v == 0) {
        if (kids_done) have[v] = 1;
      } else if (kids_done && !up_acked[v]) {
        if (net.try_send_global(
                global_msg::make(v, (v - 1) / 2, kUpTag, {acc[v], epoch})) &&
            up_sent[v])
          ++retx[v];
        up_sent[v] = 1;
      }
      if (have[v]) {
        for (u32 slot = 0; slot < 2; ++slot) {
          const u32 c = 2 * v + 1 + slot;
          if (c >= n || down_acked[v][slot]) continue;
          if (net.try_send_global(
                  global_msg::make(v, c, kDownTag, {acc[v], epoch})) &&
              down_sent[v][slot])
            ++retx[v];
          down_sent[v][slot] = 1;
        }
      }
    });
    net.advance_round();
    if (!exec.any_node(n, [&](u32 v) { return !have[v]; })) break;
  }
  u64 resent = 0;
  for (u32 v = 0; v < n; ++v) resent += retx[v];
  net.note_retransmitted(resent);
  if (used > nominal) net.note_extra_rounds(used - nominal);

  const u64 result = acc[0];
  for (u32 v = 0; v < n; ++v)
    HYB_INVARIANT(acc[v] == result, "aggregation failed to reach all nodes");
  return result;
}

}  // namespace

u32 aggregation_rounds(u32 n) {
  return 2 * tree_depth_of(n - 1) + 1;
}

u64 global_aggregate(hybrid_net& net, agg_op op,
                     const std::vector<u64>& values) {
  const u32 n = net.n();
  HYB_REQUIRE(values.size() == n, "need one value per node");
  if (net.global_faults_active())
    return healed_global_aggregate(net, op, values);

  const u32 max_depth = tree_depth_of(n - 1);
  std::vector<u32> depth(n);
  std::vector<u32> pending_children(n, 0);
  for (u32 v = 0; v < n; ++v) depth[v] = tree_depth_of(v);
  for (u32 v = 1; v < n; ++v) ++pending_children[(v - 1) / 2];

  round_executor& exec = net.executor();
  std::vector<u64> acc = values;
  // Convergecast: a node sends up once all children have reported; leaves
  // at the deepest level go first, so the whole up-phase takes max_depth
  // rounds in lockstep. Each node's step touches only its own accumulator,
  // child counter, and send budget, so the rounds run node-parallel.
  for (u32 r = 0; r < max_depth; ++r) {
    exec.for_nodes(n, [&](u32 v) {
      for (const global_msg& m : net.global_inbox(v))
        if (m.tag == kUpTag) {
          acc[v] = combine(op, acc[v], m.w[0]);
          HYB_INVARIANT(pending_children[v] > 0, "unexpected child report");
          --pending_children[v];
        }
      if (v != 0 && depth[v] == max_depth - r && pending_children[v] == 0) {
        const bool ok = net.try_send_global(
            global_msg::make(v, (v - 1) / 2, kUpTag, {acc[v]}));
        HYB_INVARIANT(ok, "aggregation exceeded the global send cap");
      }
    });
    net.advance_round();
  }
  // Drain reports that arrived in the final up round (children at depth 1).
  exec.for_nodes(n, [&](u32 v) {
    for (const global_msg& m : net.global_inbox(v))
      if (m.tag == kUpTag) acc[v] = combine(op, acc[v], m.w[0]);
  });

  // Broadcast down.
  std::vector<char> have(n, 0);
  have[0] = 1;
  for (u32 r = 0; r <= max_depth; ++r) {
    const u64 sent = exec.sum_nodes(n, [&](u32 v) -> u64 {
      for (const global_msg& m : net.global_inbox(v))
        if (m.tag == kDownTag) {
          acc[v] = m.w[0];
          have[v] = 1;
        }
      if (!have[v] || depth[v] != r) return 0;
      u64 mine = 0;
      for (u32 c : {2 * v + 1, 2 * v + 2}) {
        if (c < n) {
          const bool ok = net.try_send_global(
              global_msg::make(v, c, kDownTag, {acc[v]}));
          HYB_INVARIANT(ok, "aggregation exceeded the global send cap");
          ++mine;
        }
      }
      return mine;
    });
    net.advance_round();
    if (sent == 0 && r == max_depth) break;
  }
  // Deliver the last hop.
  exec.for_nodes(n, [&](u32 v) {
    for (const global_msg& m : net.global_inbox(v))
      if (m.tag == kDownTag) acc[v] = m.w[0];
  });

  const u64 result = acc[0];
  for (u32 v = 0; v < n; ++v)
    HYB_INVARIANT(acc[v] == result, "aggregation failed to reach all nodes");
  return result;
}

}  // namespace hybrid
