#include "proto/aggregation.hpp"

#include <algorithm>

#include "util/assert.hpp"

namespace hybrid {

namespace {

u64 combine(agg_op op, u64 x, u64 y) {
  switch (op) {
    case agg_op::max:
      return std::max(x, y);
    case agg_op::min:
      return std::min(x, y);
    case agg_op::sum:
      return x + y;
    case agg_op::logical_and:
      return (x != 0 && y != 0) ? 1 : 0;
  }
  return 0;
}

u32 tree_depth_of(u32 v) {
  u32 d = 0;
  while (v != 0) {
    v = (v - 1) / 2;
    ++d;
  }
  return d;
}

constexpr u32 kUpTag = 0xA661;
constexpr u32 kDownTag = 0xA662;

}  // namespace

u32 aggregation_rounds(u32 n) {
  return 2 * tree_depth_of(n - 1) + 1;
}

u64 global_aggregate(hybrid_net& net, agg_op op,
                     const std::vector<u64>& values) {
  const u32 n = net.n();
  HYB_REQUIRE(values.size() == n, "need one value per node");

  const u32 max_depth = tree_depth_of(n - 1);
  std::vector<u32> depth(n);
  std::vector<u32> pending_children(n, 0);
  for (u32 v = 0; v < n; ++v) depth[v] = tree_depth_of(v);
  for (u32 v = 1; v < n; ++v) ++pending_children[(v - 1) / 2];

  round_executor& exec = net.executor();
  std::vector<u64> acc = values;
  // Convergecast: a node sends up once all children have reported; leaves
  // at the deepest level go first, so the whole up-phase takes max_depth
  // rounds in lockstep. Each node's step touches only its own accumulator,
  // child counter, and send budget, so the rounds run node-parallel.
  for (u32 r = 0; r < max_depth; ++r) {
    exec.for_nodes(n, [&](u32 v) {
      for (const global_msg& m : net.global_inbox(v))
        if (m.tag == kUpTag) {
          acc[v] = combine(op, acc[v], m.w[0]);
          HYB_INVARIANT(pending_children[v] > 0, "unexpected child report");
          --pending_children[v];
        }
      if (v != 0 && depth[v] == max_depth - r && pending_children[v] == 0) {
        const bool ok = net.try_send_global(
            global_msg::make(v, (v - 1) / 2, kUpTag, {acc[v]}));
        HYB_INVARIANT(ok, "aggregation exceeded the global send cap");
      }
    });
    net.advance_round();
  }
  // Drain reports that arrived in the final up round (children at depth 1).
  exec.for_nodes(n, [&](u32 v) {
    for (const global_msg& m : net.global_inbox(v))
      if (m.tag == kUpTag) acc[v] = combine(op, acc[v], m.w[0]);
  });

  // Broadcast down.
  std::vector<char> have(n, 0);
  have[0] = 1;
  for (u32 r = 0; r <= max_depth; ++r) {
    const u64 sent = exec.sum_nodes(n, [&](u32 v) -> u64 {
      for (const global_msg& m : net.global_inbox(v))
        if (m.tag == kDownTag) {
          acc[v] = m.w[0];
          have[v] = 1;
        }
      if (!have[v] || depth[v] != r) return 0;
      u64 mine = 0;
      for (u32 c : {2 * v + 1, 2 * v + 2}) {
        if (c < n) {
          const bool ok = net.try_send_global(
              global_msg::make(v, c, kDownTag, {acc[v]}));
          HYB_INVARIANT(ok, "aggregation exceeded the global send cap");
          ++mine;
        }
      }
      return mine;
    });
    net.advance_round();
    if (sent == 0 && r == max_depth) break;
  }
  // Deliver the last hop.
  exec.for_nodes(n, [&](u32 v) {
    for (const global_msg& m : net.global_inbox(v))
      if (m.tag == kDownTag) acc[v] = m.w[0];
  });

  const u64 result = acc[0];
  for (u32 v = 0; v < n; ++v)
    HYB_INVARIANT(acc[v] == result, "aggregation failed to reach all nodes");
  return result;
}

}  // namespace hybrid
