// Global aggregation over the NCC mode (paper Lemma B.2, from Augustine et
// al. [2]): compute an aggregate-distributive function of one value per node
// and make the result known to every node in O(log n) rounds.
//
// Implementation: convergecast up a static binary tree over node IDs
// (parent(v) = (v−1)/2), then broadcast down. Each node sends at most one
// message per round, well within the γ cap.
#pragma once

#include <vector>

#include "sim/hybrid_net.hpp"

namespace hybrid {

enum class agg_op { max, min, sum, logical_and };

/// Returns the aggregate; after the call every node knows it.
/// For logical_and, nonzero values count as true.
u64 global_aggregate(hybrid_net& net, agg_op op,
                     const std::vector<u64>& values);

/// Round cost of one aggregation at network size n (2·tree-depth + 1).
u32 aggregation_rounds(u32 n);

}  // namespace hybrid
