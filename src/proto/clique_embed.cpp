#include "proto/clique_embed.hpp"

#include <utility>

#include "proto/dissemination.hpp"
#include "util/assert.hpp"

namespace hybrid {

clique_embedding build_clique_embedding(hybrid_net& net,
                                        const skeleton_result& sk) {
  const u64 start = net.round();
  clique_embedding emb;
  emb.sk = &sk;

  // Make V_S public knowledge (Corollary 4.1's preparatory dissemination:
  // every skeleton node announces itself).
  std::vector<std::vector<token2>> membership(net.n());
  for (u32 v : sk.nodes) membership[v].push_back({v, 0});
  disseminate(net, std::move(membership));

  routing_spec spec;
  spec.senders = sk.nodes;
  spec.receivers = sk.nodes;
  spec.p_s = sk.sample_prob;
  spec.p_r = sk.sample_prob;
  spec.k_s = sk.nodes.size();
  spec.k_r = sk.nodes.size();
  emb.ctx = build_routing_context(net, std::move(spec));
  emb.build_rounds = net.round() - start;
  return emb;
}

void charge_clique_rounds(hybrid_net& net, clique_embedding& emb, u64 t) {
  HYB_REQUIRE(emb.sk != nullptr, "embedding not built");
  const auto& nodes = emb.sk->nodes;
  const u32 n_s = static_cast<u32>(nodes.size());
  for (u64 r = 0; r < t; ++r) {
    const u64 start = net.round();
    std::vector<std::vector<routed_token>> batch(n_s);
    const u32 idx = static_cast<u32>(emb.clique_rounds_charged % (1u << 20));
    for (u32 i = 0; i < n_s; ++i) {
      batch[i].reserve(n_s);
      for (u32 j = 0; j < n_s; ++j) {
        // Model-maximal load: one message per ordered pair; the payload is
        // synthetic (the functional result is computed by the plug-in).
        batch[i].push_back(
            {nodes[i], nodes[j], idx, (u64{i} << 32) ^ j ^ (r * 0x9e37)});
      }
    }
    const auto delivered = route_tokens(net, emb.ctx, std::move(batch));
    u64 count = 0;
    for (const auto& d : delivered) count += d.size();
    HYB_INVARIANT(count == static_cast<u64>(n_s) * n_s,
                  "all-to-all clique round lost messages");
    ++emb.clique_rounds_charged;
    emb.hybrid_rounds_charged += net.round() - start;
  }
}

}  // namespace hybrid
