// CLIQUE-on-skeleton embedding (paper Corollary 4.1, Algorithm 8).
//
// One round of the CONGESTED CLIQUE on the skeleton nodes V_S corresponds to
// a token-routing instance with S = R = V_S and k_S = k_R = |V_S|, which by
// Theorem 2.2 costs Õ(n^{2x−1} + n^{x/2}) HYBRID rounds for |V_S| = Θ(n^x).
//
// The embedding first makes V_S public knowledge via token dissemination
// (Õ(√|V_S|)), builds a reusable routing context, and then charges every
// declared round of the plug-in algorithm with the model-maximal all-to-all
// load through the real routing machinery (docs/DESIGN.md §4: the plug-in's
// result is computed functionally under its (α, β) contract, while the
// embedding's round cost — the quantity Theorems 1.2–1.4 measure — is paid
// in full).
#pragma once

#include "proto/skeleton.hpp"
#include "proto/token_routing.hpp"
#include "sim/hybrid_net.hpp"

namespace hybrid {

struct clique_embedding {
  routing_context ctx;
  const skeleton_result* sk = nullptr;
  u64 build_rounds = 0;           ///< dissemination + context setup
  u64 clique_rounds_charged = 0;  ///< CLIQUE rounds simulated so far
  u64 hybrid_rounds_charged = 0;  ///< HYBRID rounds those cost
};

clique_embedding build_clique_embedding(hybrid_net& net,
                                        const skeleton_result& sk);

/// Simulate `t` CLIQUE rounds: per round, every skeleton node sends one
/// message to every skeleton node through token routing.
void charge_clique_rounds(hybrid_net& net, clique_embedding& emb, u64 t);

}  // namespace hybrid
