#include "proto/clustering.hpp"

#include <algorithm>
#include <unordered_set>

#include "proto/aggregation.hpp"
#include "proto/flood.hpp"
#include "util/assert.hpp"

namespace hybrid {

cluster_decomposition compute_clusters(hybrid_net& net,
                                       const ruling_set_result& rs) {
  const u32 n = net.n();
  cluster_decomposition cd;
  cd.rulers = rs.rulers;
  cd.beta = rs.beta;
  cd.cluster_of.assign(n, ~u32{0});
  cd.hops_to_ruler.assign(n, ~u32{0});
  cd.members.resize(rs.rulers.size());

  const auto heard = hop_discovery(net, rs.rulers, rs.beta,
                                   /*early_exit=*/true);
  for (u32 v = 0; v < n; ++v) {
    u32 best_cluster = ~u32{0};
    u32 best_hop = ~u32{0};
    for (const discovered_seed& d : heard[v]) {
      const u32 c = d.seed;
      // hop_discovery reports ascending hop; ties resolve to the smaller
      // ruler ID because rulers are sorted and we compare explicitly.
      if (d.hop < best_hop ||
          (d.hop == best_hop && rs.rulers[c] < rs.rulers[best_cluster])) {
        best_hop = d.hop;
        best_cluster = c;
      }
    }
    HYB_INVARIANT(best_cluster != ~u32{0},
                  "ruling set domination radius violated: node saw no ruler");
    cd.cluster_of[v] = best_cluster;
    cd.hops_to_ruler[v] = best_hop;
    cd.members[best_cluster].push_back(v);
    cd.max_radius = std::max(cd.max_radius, best_hop);
  }
  // Make max_radius common knowledge (one max-aggregation, Lemma B.2).
  const u64 agg =
      global_aggregate(net, agg_op::max,
                       std::vector<u64>(cd.hops_to_ruler.begin(),
                                        cd.hops_to_ruler.end()));
  HYB_INVARIANT(agg == cd.max_radius, "radius aggregation mismatch");
  return cd;
}

std::vector<std::vector<item128>> cluster_flood(
    hybrid_net& net, const cluster_decomposition& cd,
    std::vector<std::vector<item128>> initial, u32 rounds) {
  const graph& g = net.g();
  const u32 n = g.num_nodes();
  HYB_REQUIRE(initial.size() == n, "initial items must cover every node");

  std::vector<std::unordered_set<item128, item128_hash>> seen(n);
  std::vector<std::vector<item128>> known(n);
  std::vector<std::vector<item128>> frontier(n);
  for (u32 v = 0; v < n; ++v) {
    for (const item128& it : initial[v]) {
      if (seen[v].insert(it).second) {
        known[v].push_back(it);
        frontier[v].push_back(it);
      }
    }
  }
  for (u32 r = 0; r < rounds; ++r) {
    std::vector<std::vector<item128>> next(n);
    u64 items = 0;
    bool any = false;
    for (u32 v = 0; v < n; ++v) {
      if (frontier[v].empty()) continue;
      for (const edge& e : g.neighbors(v)) {
        if (cd.cluster_of[e.to] != cd.cluster_of[v]) continue;
        items += frontier[v].size();
        for (const item128& it : frontier[v]) {
          if (seen[e.to].insert(it).second) {
            known[e.to].push_back(it);
            next[e.to].push_back(it);
            any = true;
          }
        }
      }
    }
    net.charge_local(items);
    net.note_local_delivered(items);
    net.advance_round();
    frontier = std::move(next);
    if (!any) {
      // Saturated early: detecting that globally costs one aggregation.
      for (u32 extra = aggregation_rounds(n); extra > 0 && r + 1 < rounds;
           --extra)
        net.advance_round();
      break;
    }
  }
  return known;
}

}  // namespace hybrid
