// Cluster decomposition around a ruling set (Algorithm 1's middle section).
//
// Every node joins the cluster of its closest ruler (ties broken toward the
// smaller ruler ID). With that tie-breaking the clusters are connected
// subgraphs (standard Voronoi-cell argument), every member is within β hops
// of its ruler, and intra-cluster distances are ≤ 2β — so all per-cluster
// communication (member discovery, helper announcements, token hand-offs)
// can flood inside the cluster only, which is what cluster_flood provides.
#pragma once

#include <vector>

#include "proto/ruling_set.hpp"
#include "sim/hybrid_net.hpp"

namespace hybrid {

struct cluster_decomposition {
  std::vector<u32> rulers;            ///< cluster c has ruler rulers[c]
  std::vector<u32> cluster_of;        ///< per node: cluster index
  std::vector<u32> hops_to_ruler;     ///< per node
  std::vector<std::vector<u32>> members;  ///< per cluster, sorted node IDs
  u32 beta = 0;                       ///< domination radius guarantee
  /// Largest observed hops_to_ruler, made globally known by one charged
  /// max-aggregation at construction. Intra-cluster floods are sized by
  /// this (2·max_radius+1 rounds reach the whole cluster) instead of the
  /// worst-case β, which matters enormously on low-diameter graphs.
  u32 max_radius = 0;

  u32 flood_budget() const { return 2 * max_radius + 1; }
};

/// Build clusters from a ruling set: rulers flood for rs.beta rounds, every
/// node picks the (hop, ruler-ID)-minimal ruler it heard.
cluster_decomposition compute_clusters(hybrid_net& net,
                                       const ruling_set_result& rs);

/// 128-bit opaque item for intra-cluster flooding.
struct item128 {
  u64 a = 0;
  u64 b = 0;
  friend bool operator==(const item128&, const item128&) = default;
};

struct item128_hash {
  std::size_t operator()(const item128& x) const {
    u64 h = x.a * 0x9e3779b97f4a7c15ULL ^ (x.b + 0x517cc1b727220a95ULL);
    h ^= h >> 29;
    h *= 0xbf58476d1ce4e5b9ULL;
    return static_cast<std::size_t>(h ^ (h >> 32));
  }
};

/// Flood items within clusters for `rounds` rounds (items never cross
/// cluster boundaries). Returns everything each node has heard, own items
/// included. 2β+1 rounds reach the whole cluster.
std::vector<std::vector<item128>> cluster_flood(
    hybrid_net& net, const cluster_decomposition& cd,
    std::vector<std::vector<item128>> initial, u32 rounds);

}  // namespace hybrid
