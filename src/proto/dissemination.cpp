#include "proto/dissemination.hpp"

#include <algorithm>
#include <cmath>

#include "proto/aggregation.hpp"
#include "util/assert.hpp"

namespace hybrid {

namespace {
constexpr u32 kTokenTag = 0xD155;

struct node_state {
  std::vector<u32> known;      // token indices in arrival order
  std::vector<u64> known_bit;  // bitset over token indices
  std::vector<u32> fresh;      // learned since last local flood
  // Seeding queue: (token index, copies still to send).
  std::vector<std::pair<u32, u32>> seed_queue;

  bool knows(u32 idx) const {
    return (known_bit[idx / 64] >> (idx % 64)) & 1;
  }
  void learn(u32 idx) {
    known_bit[idx / 64] |= u64{1} << (idx % 64);
    known.push_back(idx);
    fresh.push_back(idx);
  }
};

}  // namespace

dissemination_result disseminate(hybrid_net& net,
                                 std::vector<std::vector<token2>> initial) {
  const graph& g = net.g();
  const u32 n = g.num_nodes();
  HYB_REQUIRE(initial.size() == n, "initial tokens must cover every node");

  // Global enumeration of tokens (simulator bookkeeping; nodes address
  // tokens by this index, which rides inside the O(log n)-bit message).
  std::vector<token2> tokens;
  std::vector<std::vector<u32>> owned(n);
  u64 ell = 0;
  for (u32 v = 0; v < n; ++v) {
    for (const token2& t : initial[v]) {
      owned[v].push_back(static_cast<u32>(tokens.size()));
      tokens.push_back(t);
    }
    ell = std::max<u64>(ell, initial[v].size());
  }
  const u32 k = static_cast<u32>(tokens.size());

  const u64 start_round = net.round();
  // Make k known (the protocols downstream need it for termination checks).
  std::vector<u64> counts(n);
  for (u32 v = 0; v < n; ++v) counts[v] = owned[v].size();
  const u64 k_agg = global_aggregate(net, agg_op::sum, counts);
  HYB_INVARIANT(k_agg == k, "token count aggregation mismatch");

  dissemination_result out;
  out.tokens = tokens;
  if (k == 0) {
    out.rounds_used = net.round() - start_round;
    return out;
  }

  const u32 logn = id_bits(n);
  const u32 seed_copies = std::max<u32>(
      1, static_cast<u32>(
             std::ceil(net.config().dissemination_seed_mult * logn)));
  const u32 words = (k + 63) / 64;

  std::vector<node_state> st(n);
  for (u32 v = 0; v < n; ++v) {
    st[v].known_bit.assign(words, 0);
    for (u32 idx : owned[v]) {
      st[v].learn(idx);
      st[v].seed_queue.push_back({idx, seed_copies});
    }
  }

  auto all_done = [&]() {
    for (u32 v = 0; v < n; ++v)
      if (st[v].known.size() != k || !st[v].seed_queue.empty()) return false;
    return true;
  };

  const u32 cadence = 16;  // gossip rounds between termination checks
  u64 budget = 4 * (isqrt(k) + ceil_div(ell * seed_copies, net.global_cap())) +
               cadence;
  // Fault degradation (docs/FAULTS.md): gossip is self-healing by nature —
  // every round each node re-offers uniformly random tokens from its whole
  // known set, so dropped copies get unlimited fresh chances and the
  // doubling outer loop already absorbs the slowdown. Crashed nodes pause
  // (no sends, no pulls, fresh list preserved for when they recover). The
  // only extra machinery needed is a hard budget so a node that never
  // recovers surfaces as fault_failure instead of an endless loop.
  const bool lf = net.local_faults_active();
  const bool faulty = net.faults_active();
  const u64 budget0 = budget;
  const u64 fail_budget =
      u64{net.faults().heal_budget_mult} *
      std::max<u64>(budget, aggregation_rounds(n));
  u64 spent = 0;
  std::vector<u64> dropped(lf ? n : 0, 0);
  round_executor& exec = net.executor();
  bool done = false;
  while (!done) {
    for (u64 r = 0; r < budget && !done; ++r, ++spent) {
      // Global pushes (seeding first, then uniform random gossip) and the
      // pull side of the local flood run node-parallel: node v draws from
      // its (seed, v, round) stream, spends its own γ budget, and collects
      // fresh tokens from its neighbors' frozen fresh-lists.
      std::vector<std::vector<u32>> inject(n);
      const u64 items = exec.sum_nodes(n, [&](u32 v) -> u64 {
        if (lf) dropped[v] = 0;
        if (!net.is_up(v)) return 0;  // fail-pause: no sends, no pulls
        rng rv = net.round_rng(v);
        while (!st[v].seed_queue.empty() && net.global_budget(v) > 0) {
          auto& [idx, left] = st[v].seed_queue.back();
          const u32 dst = static_cast<u32>(rv.next_below(n));
          const token2& t = tokens[idx];
          net.try_send_global(
              global_msg::make(v, dst, kTokenTag, {t.a, t.b, idx}));
          if (--left == 0) st[v].seed_queue.pop_back();
        }
        while (!st[v].known.empty() && net.global_budget(v) > 0) {
          const u32 idx = st[v].known[rv.next_below(st[v].known.size())];
          const u32 dst = static_cast<u32>(rv.next_below(n));
          const token2& t = tokens[idx];
          net.try_send_global(
              global_msg::make(v, dst, kTokenTag, {t.a, t.b, idx}));
        }
        // Local flooding, pull side: read neighbors' fresh-lists (frozen
        // this round; cleared only after the barrier below).
        u64 mine = 0;
        for (const edge& e : g.neighbors(v)) {
          const std::vector<u32>& from = st[e.to].fresh;
          const u32 cnt = static_cast<u32>(from.size());
          mine += cnt;
          for (u32 j = 0; j < cnt; ++j) {
            if (lf && net.local_drop(e.to, v, j, cnt)) {
              ++dropped[v];
              continue;
            }
            const u32 idx = from[j];
            if (!st[v].knows(idx)) inject[v].push_back(idx);
          }
        }
        return mine;
      });
      // Fresh lists of down nodes are preserved: when the node recovers it
      // re-offers them, so a crash can't permanently strand a token that
      // exists nowhere else locally.
      exec.for_nodes(n, [&](u32 v) {
        if (net.is_up(v)) st[v].fresh.clear();
      });
      u64 lost = 0;
      if (lf) {
        for (u32 v = 0; v < n; ++v) lost += dropped[v];
        net.note_local_dropped(lost);
      }
      net.charge_local(items);
      net.note_local_delivered(items - lost);
      net.advance_round();
      exec.for_nodes(n, [&](u32 v) {
        for (u32 idx : inject[v])
          if (!st[v].knows(idx)) st[v].learn(idx);
        for (const global_msg& m : net.global_inbox(v)) {
          if (m.tag != kTokenTag) continue;
          const u32 idx = static_cast<u32>(m.w[2]);
          if (!st[v].knows(idx)) st[v].learn(idx);
        }
      });
      // Termination check at fixed cadence (aggregation rounds are charged
      // by global_aggregate itself).
      if ((r + 1) % cadence == 0) {
        std::vector<u64> flags(n);
        for (u32 v = 0; v < n; ++v)
          flags[v] =
              (st[v].known.size() == k && st[v].seed_queue.empty()) ? 1 : 0;
        done = global_aggregate(net, agg_op::logical_and, flags) == 1;
      }
    }
    if (!done) {
      std::vector<u64> flags(n);
      for (u32 v = 0; v < n; ++v)
        flags[v] =
            (st[v].known.size() == k && st[v].seed_queue.empty()) ? 1 : 0;
      done = global_aggregate(net, agg_op::logical_and, flags) == 1;
      if (!done && faulty && spent >= fail_budget)
        throw fault_failure("dissemination healing budget exhausted");
      budget *= 2;
    }
  }
  // Gossip rounds beyond the initial budget count as healing overhead (the
  // fault-free run fits the first budget on every workload we bench; the
  // doubling loop exists for adversarial token distributions).
  if (faulty && spent > budget0) net.note_extra_rounds(spent - budget0);
  HYB_INVARIANT(all_done(), "dissemination terminated before completion");
  out.rounds_used = net.round() - start_round;
  return out;
}

dissemination_result disseminate_charged(
    hybrid_net& net, std::vector<std::vector<token2>> initial) {
  if (net.faults_active())
    throw fault_unsupported(
        "charged dissemination is a closed-form stand-in and cannot heal "
        "message loss; use disseminate() under active faults");
  const graph& g = net.g();
  const u32 n = g.num_nodes();
  HYB_REQUIRE(initial.size() == n, "initial tokens must cover every node");

  // Token enumeration identical to disseminate(): the shared vector is the
  // exact content every node converges to on the simulated path.
  std::vector<token2> tokens;
  std::vector<u64> counts(n);
  u64 ell = 0;
  for (u32 v = 0; v < n; ++v) {
    counts[v] = initial[v].size();
    for (const token2& t : initial[v]) tokens.push_back(t);
    ell = std::max<u64>(ell, initial[v].size());
  }
  const u32 k = static_cast<u32>(tokens.size());

  const u64 start_round = net.round();
  const u64 k_agg = global_aggregate(net, agg_op::sum, counts);
  HYB_INVARIANT(k_agg == k, "token count aggregation mismatch");

  dissemination_result out;
  out.tokens = std::move(tokens);
  if (k == 0) {
    out.rounds_used = net.round() - start_round;
    return out;
  }

  // The simulated path's guaranteed first budget (it fits every fault-free
  // benched workload; the doubling loop exists for adversarial token
  // distributions), charged as silent rounds.
  const u32 logn = id_bits(n);
  const u32 seed_copies = std::max<u32>(
      1, static_cast<u32>(
             std::ceil(net.config().dissemination_seed_mult * logn)));
  const u32 cadence = 16;
  const u64 budget =
      4 * (isqrt(k) + ceil_div(ell * seed_copies, net.global_cap())) + cadence;
  net.charge_rounds(budget);
  // Gossip pushes: every node spends its γ budget each gossip round, three
  // payload words per push (the {a, b, idx} token message).
  net.charge_global(budget * u64{n} * net.global_cap(),
                    3 * budget * u64{n} * net.global_cap());
  // Local flooding: each token enters each node's fresh-list once and is
  // read once per incident edge side — exactly 2|E|·k items on any run
  // that converges, charged as delivered (closed-form budgets are
  // reliability-abstracted, see run_metrics::local_delivered).
  const u64 items = 2 * g.num_edges() * u64{k};
  net.charge_local(items);
  net.note_local_delivered(items);
  // Termination AND-aggregations at the fixed cadence, plus the final one.
  const u64 checks = budget / cadence + 1;
  net.charge_rounds(checks * aggregation_rounds(n));
  net.charge_global(checks * 2 * u64{n}, checks * 2 * u64{n});
  out.rounds_used = net.round() - start_round;
  return out;
}

}  // namespace hybrid
