// Token dissemination (paper Lemma B.1 = Theorem 2.1 of Augustine et al.
// SODA'20): k tokens of O(log n) bits, at most ℓ per node, are made known to
// every node in Õ(√k + ℓ) rounds of the HYBRID model.
//
// Protocol (same mechanism as [3], see docs/DESIGN.md §4):
//   0. a sum-aggregation makes k known to all nodes;
//   1. seeding — every owner pushes each of its tokens to Θ(log n) uniformly
//      random nodes (priority traffic within the γ budget);
//   2. gossip — each round every node sends γ uniformly random tokens it
//      knows to uniformly random nodes, and floods newly learned tokens to
//      its local neighbors;
//   3. termination — an AND-aggregation ("I know all k tokens and my seed
//      queue is empty") runs at a fixed cadence; the gossip budget doubles
//      until the aggregate is true, so the measured round count is honest.
//
// The Õ(√k) mechanism: any radius-√k neighborhood of a connected graph has
// ≥ √k nodes, which jointly receive Θ(√k·log n) random tokens per round and
// share them by flooding; coupon-collection over k tokens finishes after
// Õ(√k) rounds.
#pragma once

#include <vector>

#include "sim/hybrid_net.hpp"

namespace hybrid {

struct token2 {
  u64 a = 0;
  u64 b = 0;
  friend bool operator==(const token2&, const token2&) = default;
};

struct dissemination_result {
  /// All k tokens; after the protocol every node knows this entire set
  /// (storage is shared because the content is identical everywhere).
  std::vector<token2> tokens;
  u64 rounds_used = 0;
};

/// Disseminate; `initial[v]` are the tokens node v starts with.
dissemination_result disseminate(hybrid_net& net,
                                 std::vector<std::vector<token2>> initial);

/// Accounting-only stand-in for `disseminate` (DESIGN.md deviation 10):
/// same token enumeration and same real k-sum aggregation, but the gossip
/// phase is charged in closed form at its guaranteed budget (rounds,
/// global pushes, the full 2|E|·k local-flood traffic, the cadence
/// termination aggregations) instead of simulated — Θ(k) simulator memory
/// instead of the gossip state's Θ(n·k). Used by the two-level APSP path,
/// where E_S is consumed only by the n_s skeleton nodes and the result
/// set is identical by construction (the tokens vector *is* the content
/// every node would converge to). Never undercharges rounds: the real
/// protocol's doubling loop fits the first budget on every fault-free
/// workload we bench. Refuses under active faults (`fault_unsupported`) —
/// a closed-form budget cannot heal; callers fall back to `disseminate`.
dissemination_result disseminate_charged(
    hybrid_net& net, std::vector<std::vector<token2>> initial);

}  // namespace hybrid
