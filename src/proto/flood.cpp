// Pull-based implementations of the LOCAL primitives, run node-parallel on
// the round executor (docs/CONCURRENCY.md). Each node's step reads its
// neighbors' round-frozen frontiers and writes only its own rows, so the
// executor may run nodes concurrently; since adjacency lists are sorted by
// node ID, the pull order reproduces the classic sequential push order
// bit-for-bit (same known/next orderings, same tie-breaks). The
// frontier-emptiness checks that drive early exit are any_node reductions —
// order-insensitive, so thread-count-invariant like every other observable.
// Fault healing (docs/FAULTS.md): under local-plane faults each primitive
// that can self-heal switches to a re-offer variant — every round every node
// offers its whole held set to its neighbors (not just the last round's
// frontier), so an item lost to a drop gets fresh chances every subsequent
// round. The variant stops once no node learned anything new for
// heal_stability_rounds consecutive rounds (rounds with a crashed node
// still down never count as quiet), throws fault_failure when
// heal_budget_mult times the fault-free round budget elapses first, and
// referees its converged state against the reliable result — premature
// stability (possible under adversarial-prefix schedules, or with ~p^k
// probability under random drops) surfaces as fault_failure, never as a
// silently incomplete return. Learned
// hop values become learn-round stamps (upper bounds on the true hop
// distance); distances in the Bellman–Ford variant stay exact because each
// node keeps the Pareto-minimal (dist, hops) pairs per source and only
// offers pairs with hops < h — so every accepted value is realized by some
// ≤h-hop walk, and at convergence it is d_h. The exploration-shaped
// primitives (full_local_exploration, truncated_eccentricity) heal through
// the shared engine in proto/sparse_exploration.cpp and return results
// bit-identical to the fault-free run; the only refusals left are the two
// documented fault_unsupported cases (frozen-round Bellman–Ford below,
// charged token routing in proto/token_routing.cpp).
#include "proto/flood.hpp"

#include <algorithm>
#include <tuple>

#include "proto/aggregation.hpp"
#include "proto/sparse_exploration.hpp"
#include "util/assert.hpp"

namespace hybrid {

namespace {

/// Connected-component labels for the referee checks below. Frontier
/// stability is a heuristic: an adversarial-prefix schedule can starve a
/// link forever and look quiet, so each healed flood validates its
/// converged state against what a reliable flood must produce and throws
/// fault_failure on any shortfall — correct-or-explicitly-failed, never a
/// silently truncated result. The validation is simulator-level, like the
/// reliable path's frontier-emptiness reductions (docs/FAULTS.md).
std::vector<u32> component_labels(const graph& g) {
  const u32 n = g.num_nodes();
  std::vector<u32> comp(n, ~u32{0});
  std::vector<u32> stack;
  u32 c = 0;
  for (u32 root = 0; root < n; ++root) {
    if (comp[root] != ~u32{0}) continue;
    comp[root] = c;
    stack.push_back(root);
    while (!stack.empty()) {
      const u32 u = stack.back();
      stack.pop_back();
      for (const edge& e : g.neighbors(u))
        if (comp[e.to] == ~u32{0}) {
          comp[e.to] = c;
          stack.push_back(e.to);
        }
    }
    ++c;
  }
  return comp;
}

/// Per-component tally of flooded item indices (seeds / publishers): at
/// convergence every node must hold exactly the items rooted in its own
/// component.
std::vector<u64> items_per_component(const std::vector<u32>& comp,
                                     const std::vector<u32>& roots) {
  std::vector<u64> count;
  for (const u32 r : roots) {
    const u32 c = comp[r];
    if (c >= count.size()) count.resize(c + 1, 0);
    ++count[c];
  }
  return count;
}

std::vector<std::vector<discovered_seed>> healed_hop_discovery(
    hybrid_net& net, const std::vector<u32>& seeds, u32 rounds,
    bool early_exit) {
  const graph& g = net.g();
  const u32 n = g.num_nodes();
  const fault_options& fo = net.faults();
  std::vector<std::vector<discovered_seed>> known(n);
  std::vector<std::vector<char>> seen(n);
  for (u32 v = 0; v < n; ++v) seen[v].assign(seeds.size(), 0);
  for (u32 i = 0; i < seeds.size(); ++i) {
    HYB_REQUIRE(seeds[i] < n, "seed out of range");
    if (!seen[seeds[i]][i]) {
      seen[seeds[i]][i] = 1;
      known[seeds[i]].push_back({i, 0});
    }
  }
  // Staged acceptances: the pull step reads known[u] of *other* nodes, so
  // it must not grow known[v] mid-round (docs/CONCURRENCY.md); new items
  // land in add[v] and merge after the barrier.
  std::vector<std::vector<discovered_seed>> add(n);
  std::vector<u8> changed(n, 0);
  const u64 budget =
      u64{fo.heal_budget_mult} * std::max<u32>(rounds, 1) +
      fo.heal_stability_rounds;
  round_executor& exec = net.executor();
  u32 quiet = 0;
  u64 used = 0;
  while (quiet < fo.heal_stability_rounds) {
    if (used >= budget)
      throw fault_failure("hop_discovery healing budget exhausted");
    const u32 r = static_cast<u32>(++used);
    std::vector<u64> dropped(n, 0);
    const u64 items = exec.sum_nodes(n, [&](u32 v) -> u64 {
      add[v].clear();
      if (!net.is_up(v)) return 0;
      u64 mine = 0;
      for (const edge& e : g.neighbors(v)) {
        const std::vector<discovered_seed>& from = known[e.to];
        const u32 count = static_cast<u32>(from.size());
        mine += count;
        for (u32 j = 0; j < count; ++j) {
          if (net.local_drop(e.to, v, j, count)) {
            ++dropped[v];
            continue;
          }
          const u32 i = from[j].seed;
          if (!seen[v][i]) add[v].push_back({i, r});
        }
      }
      return mine;
    });
    net.charge_local(items);
    u64 lost = 0;
    for (u32 v = 0; v < n; ++v) lost += dropped[v];
    net.note_local_delivered(items - lost);
    net.note_local_dropped(lost);
    net.advance_round();
    exec.for_nodes(n, [&](u32 v) {
      changed[v] = 0;
      for (const discovered_seed& d : add[v])
        if (!seen[v][d.seed]) {
          seen[v][d.seed] = 1;
          known[v].push_back(d);
          changed[v] = 1;
        }
    });
    quiet = heal_next_quiet(net, exec, n, quiet, changed);
  }
  // Referee: each node must know exactly the seeds of its own component
  // (the healed flood runs to saturation, not a T-round ball).
  {
    const std::vector<u32> comp = component_labels(g);
    const std::vector<u64> want = items_per_component(comp, seeds);
    for (u32 v = 0; v < n; ++v)
      if (known[v].size() !=
          (comp[v] < want.size() ? want[comp[v]] : 0))
        throw fault_failure(
            "hop_discovery healing stabilized before reaching every node");
  }
  // Round-accounting parity with the reliable path: pad the fixed budget
  // (or the early-exit detection aggregation), and surface the healing
  // overshoot. Stability detection itself is simulator-level, like the
  // reliable path's frontier-emptiness check.
  if (early_exit) {
    for (u32 extra = aggregation_rounds(n); extra > 0; --extra)
      net.advance_round();
  } else {
    for (; used < rounds; ++used) net.advance_round();
  }
  if (used > rounds) net.note_extra_rounds(used - rounds);
  return known;
}

/// Pareto-minimal (dist, hops) tracking for the healed Bellman–Ford: under
/// drops a smaller-dist/more-hops value can arrive before (or instead of) a
/// fewer-hops one, and downstream nodes may only extend walks with
/// hops < h — keeping just the best dist per source would silently lose
/// valid ≤h-hop distances. Sets stay sorted by dist ascending (hence hops
/// strictly descending).
struct pareto_entry {
  u64 dist;
  u32 hops;
  u32 via;
};

bool pareto_dominated(const std::vector<pareto_entry>& set, u64 dist,
                      u32 hops) {
  for (const pareto_entry& e : set)
    if (e.dist <= dist && e.hops <= hops) return true;
  return false;
}

void pareto_insert(std::vector<pareto_entry>& set, u64 dist, u32 hops,
                   u32 via) {
  set.erase(std::remove_if(set.begin(), set.end(),
                           [&](const pareto_entry& e) {
                             return e.dist >= dist && e.hops >= hops;
                           }),
            set.end());
  auto pos = std::lower_bound(set.begin(), set.end(), dist,
                              [](const pareto_entry& e, u64 d) {
                                return e.dist < d;
                              });
  set.insert(pos, {dist, hops, via});
}

std::vector<std::vector<source_distance>> healed_limited_bellman_ford(
    hybrid_net& net, const std::vector<u32>& sources, u32 h) {
  const graph& g = net.g();
  const u32 n = g.num_nodes();
  const u32 s_count = static_cast<u32>(sources.size());
  const fault_options& fo = net.faults();
  // cur[v][i]: Pareto-minimal (dist, hops) pairs v holds for source i.
  std::vector<std::vector<std::vector<pareto_entry>>> cur(
      n, std::vector<std::vector<pareto_entry>>(s_count));
  for (u32 i = 0; i < s_count; ++i) {
    HYB_REQUIRE(sources[i] < n, "source out of range");
    if (cur[sources[i]][i].empty())
      cur[sources[i]][i].push_back({0, 0, sources[i]});
  }
  // (source, dist, hops, via) acceptances staged per round, merged after
  // the barrier (steps read other nodes' cur).
  std::vector<std::vector<std::tuple<u32, u64, u32, u32>>> add(n);
  std::vector<u8> changed(n, 0);
  std::vector<u64> dropped(n, 0);
  const u64 budget = u64{fo.heal_budget_mult} * std::max<u32>(h, 1) +
                     fo.heal_stability_rounds;
  round_executor& exec = net.executor();
  u32 quiet = 0;
  u64 used = 0;
  while (quiet < fo.heal_stability_rounds) {
    if (used >= budget)
      throw fault_failure("limited_bellman_ford healing budget exhausted");
    ++used;
    const u64 items = exec.sum_nodes(n, [&](u32 v) -> u64 {
      add[v].clear();
      dropped[v] = 0;
      if (!net.is_up(v)) return 0;
      u64 mine = 0;
      for (const edge& e : g.neighbors(v)) {
        // Offered set: every held pair that can still be extended within
        // the hop budget. Enumerate once for the count (the adversarial
        // mode needs it), once for the pulls.
        u32 count = 0;
        for (u32 i = 0; i < s_count; ++i)
          for (const pareto_entry& pe : cur[e.to][i])
            if (pe.hops < h) ++count;
        mine += count;
        u32 idx = 0;
        for (u32 i = 0; i < s_count; ++i)
          for (const pareto_entry& pe : cur[e.to][i]) {
            if (pe.hops >= h) continue;
            if (net.local_drop(e.to, v, idx++, count)) {
              ++dropped[v];
              continue;
            }
            const u64 nd = pe.dist + e.weight;
            const u32 nh = pe.hops + 1;
            if (!pareto_dominated(cur[v][i], nd, nh))
              add[v].push_back({i, nd, nh, e.to});
          }
      }
      return mine;
    });
    net.charge_local(items);
    u64 lost = 0;
    for (u32 v = 0; v < n; ++v) lost += dropped[v];
    net.note_local_delivered(items - lost);
    net.note_local_dropped(lost);
    net.advance_round();
    exec.for_nodes(n, [&](u32 v) {
      changed[v] = 0;
      for (const auto& [i, nd, nh, via] : add[v]) {
        if (pareto_dominated(cur[v][i], nd, nh)) continue;
        pareto_insert(cur[v][i], nd, nh, via);
        changed[v] = 1;
      }
    });
    quiet = heal_next_quiet(net, exec, n, quiet, changed);
  }
  // Referee: replay the reliable relaxation sequentially, in memory — no
  // simulated traffic — including its via tie-breaking (first neighbor in
  // adjacency order that strictly improves, per round), and require the
  // healed distance fronts to match exactly. Healed entries are always
  // realized by ≤h-hop walks, so any divergence means the stability
  // heuristic fired before convergence. The referee's result is what gets
  // returned: healed vias depend on which copy survived the drop pattern,
  // while the callers' determinism contract promises labels bit-identical
  // to the fault-free run.
  std::vector<std::vector<u64>> ref(n, std::vector<u64>(s_count, kInfDist));
  std::vector<std::vector<u32>> ref_via(n, std::vector<u32>(s_count, ~u32{0}));
  {
    std::vector<std::vector<source_distance>> frontier(n);
    for (u32 i = 0; i < s_count; ++i)
      if (ref[sources[i]][i] > 0) {
        ref[sources[i]][i] = 0;
        ref_via[sources[i]][i] = sources[i];
        frontier[sources[i]].push_back({i, 0, sources[i]});
      }
    for (u32 r = 0; r < h; ++r) {
      std::vector<std::vector<source_distance>> next(n);
      bool any = false;
      for (u32 v = 0; v < n; ++v) {
        for (const edge& e : g.neighbors(v))
          for (const source_distance& f : frontier[e.to]) {
            const u64 nd = f.dist + e.weight;
            if (nd < ref[v][f.source]) {
              ref[v][f.source] = nd;
              ref_via[v][f.source] = e.to;
              next[v].push_back({f.source, nd, e.to});
            }
          }
        next[v].erase(std::remove_if(next[v].begin(), next[v].end(),
                                     [&](const source_distance& sd) {
                                       return sd.dist != ref[v][sd.source];
                                     }),
                      next[v].end());
        any = any || !next[v].empty();
      }
      frontier = std::move(next);
      if (!any) break;
    }
    for (u32 v = 0; v < n; ++v)
      for (u32 i = 0; i < s_count; ++i)
        if ((cur[v][i].empty() ? kInfDist : cur[v][i].front().dist) !=
            ref[v][i])
          throw fault_failure(
              "limited_bellman_ford healing stabilized before convergence");
  }
  for (; used < h; ++used) net.advance_round();
  if (used > h) net.note_extra_rounds(used - h);
  std::vector<std::vector<source_distance>> out(n);
  for (u32 v = 0; v < n; ++v)
    for (u32 i = 0; i < s_count; ++i)
      if (ref[v][i] != kInfDist) out[v].push_back({i, ref[v][i], ref_via[v][i]});
  return out;
}

std::vector<std::vector<u32>> healed_table_flood(
    hybrid_net& net, const std::vector<u32>& publishers,
    const std::vector<u64>& table_words, u32 rounds) {
  const graph& g = net.g();
  const u32 n = g.num_nodes();
  const fault_options& fo = net.faults();
  std::vector<std::vector<u32>> holds(n);
  std::vector<std::vector<char>> seen(n);
  for (u32 v = 0; v < n; ++v) seen[v].assign(publishers.size(), 0);
  for (u32 i = 0; i < publishers.size(); ++i) {
    const u32 p = publishers[i];
    HYB_REQUIRE(p < n, "publisher out of range");
    if (!seen[p][i]) {
      seen[p][i] = 1;
      holds[p].push_back(i);
    }
  }
  std::vector<std::vector<u32>> add(n);
  std::vector<u8> changed(n, 0);
  std::vector<u64> dropped(n, 0);
  const u64 budget = u64{fo.heal_budget_mult} * std::max<u32>(rounds, 1) +
                     fo.heal_stability_rounds;
  round_executor& exec = net.executor();
  u32 quiet = 0;
  u64 used = 0;
  while (quiet < fo.heal_stability_rounds) {
    if (used >= budget)
      throw fault_failure("table_flood healing budget exhausted");
    ++used;
    const u64 items = exec.sum_nodes(n, [&](u32 v) -> u64 {
      add[v].clear();
      dropped[v] = 0;
      if (!net.is_up(v)) return 0;
      u64 mine = 0;
      for (const edge& e : g.neighbors(v)) {
        const std::vector<u32>& from = holds[e.to];
        const u32 count = static_cast<u32>(from.size());
        for (u32 j = 0; j < count; ++j) {
          mine += table_words[from[j]];  // whole table crosses the edge
          if (net.local_drop(e.to, v, j, count)) {
            ++dropped[v];
            continue;
          }
          if (!seen[v][from[j]]) add[v].push_back(from[j]);
        }
      }
      return mine;
    });
    net.charge_local(items);
    u64 lost = 0;
    for (u32 v = 0; v < n; ++v) lost += dropped[v];
    net.note_local_delivered(items - lost);
    net.note_local_dropped(lost);
    net.advance_round();
    exec.for_nodes(n, [&](u32 v) {
      changed[v] = 0;
      for (u32 i : add[v])
        if (!seen[v][i]) {
          seen[v][i] = 1;
          holds[v].push_back(i);
          changed[v] = 1;
        }
    });
    quiet = heal_next_quiet(net, exec, n, quiet, changed);
  }
  // Referee: every node must hold exactly its component's tables.
  {
    const std::vector<u32> comp = component_labels(g);
    const std::vector<u64> want = items_per_component(comp, publishers);
    for (u32 v = 0; v < n; ++v)
      if (holds[v].size() !=
          (comp[v] < want.size() ? want[comp[v]] : 0))
        throw fault_failure(
            "table_flood healing stabilized before reaching every node");
  }
  for (; used < rounds; ++used) net.advance_round();
  if (used > rounds) net.note_extra_rounds(used - rounds);
  return holds;
}

}  // namespace

u32 heal_next_quiet(hybrid_net& net, round_executor& exec, u32 n, u32 quiet,
                    const std::vector<u8>& changed) {
  if (exec.any_node(n, [&](u32 v) { return changed[v] != 0; })) return 0;
  if (!net.faults().crashes.empty() &&
      exec.any_node(n, [&](u32 v) { return !net.is_up(v); }))
    return 0;
  return quiet + 1;
}

std::vector<std::vector<discovered_seed>> hop_discovery(
    hybrid_net& net, const std::vector<u32>& seeds, u32 rounds,
    bool early_exit) {
  if (net.local_faults_active())
    return healed_hop_discovery(net, seeds, rounds, early_exit);
  const graph& g = net.g();
  const u32 n = g.num_nodes();
  std::vector<std::vector<discovered_seed>> known(n);
  // frontier[v] = seed indices first learned by v in the previous round.
  std::vector<std::vector<u32>> frontier(n);
  std::vector<std::vector<char>> seen(n);
  for (u32 v = 0; v < n; ++v) seen[v].assign(seeds.size(), 0);
  for (u32 i = 0; i < seeds.size(); ++i) {
    HYB_REQUIRE(seeds[i] < n, "seed out of range");
    if (!seen[seeds[i]][i]) {
      seen[seeds[i]][i] = 1;
      known[seeds[i]].push_back({i, 0});
      frontier[seeds[i]].push_back(i);
    }
  }
  for (u32 r = 1; r <= rounds; ++r) {
    std::vector<std::vector<u32>> next(n);
    const u64 items = net.executor().sum_nodes(n, [&](u32 v) -> u64 {
      u64 mine = 0;
      for (const edge& e : g.neighbors(v)) {
        const std::vector<u32>& from = frontier[e.to];
        mine += from.size();
        for (u32 i : from) {
          if (!seen[v][i]) {
            seen[v][i] = 1;
            known[v].push_back({i, r});
            next[v].push_back(i);
          }
        }
      }
      return mine;
    });
    net.charge_local(items);
    net.note_local_delivered(items);
    net.advance_round();
    frontier = std::move(next);
    const bool any = net.executor().any_node(
        n, [&](u32 v) { return !frontier[v].empty(); });
    if (!any && r < rounds) {
      if (early_exit) {
        // Detecting global saturation costs one AND-aggregation.
        for (u32 extra = aggregation_rounds(n); extra > 0; --extra)
          net.advance_round();
      } else {
        // Fixed round budgets are part of the protocols: the remaining
        // rounds are silent but still elapse.
        for (u32 rest = r + 1; rest <= rounds; ++rest) net.advance_round();
      }
      break;
    }
  }
  return known;
}

std::vector<std::vector<source_distance>> limited_bellman_ford(
    hybrid_net& net, const std::vector<u32>& sources, u32 h,
    bool advance_rounds) {
  if (net.local_faults_active()) {
    // With a frozen round counter the fault stream would re-roll the same
    // draws every iteration — a dropped edge stays dropped forever and no
    // amount of re-offering heals it. The remediation its former
    // fault_unsupported refusal named (run with advance_rounds=true) is now
    // honored automatically: the healed path runs with real rounds, and
    // because the caller asked for a frozen counter its nominal budget is 0
    // — every round actually consumed surfaces as extra_rounds, so metrics
    // record the whole cost of the fallback (docs/FAULTS.md §3).
    if (!advance_rounds) {
      const u64 r0 = net.round();
      const u64 x0 = net.raw_metrics().extra_rounds;
      auto out = healed_limited_bellman_ford(net, sources, h);
      const u64 spent = net.round() - r0;
      const u64 noted = net.raw_metrics().extra_rounds - x0;
      if (spent > noted) net.note_extra_rounds(spent - noted);
      return out;
    }
    return healed_limited_bellman_ford(net, sources, h);
  }
  const graph& g = net.g();
  const u32 n = g.num_nodes();
  const u32 s_count = static_cast<u32>(sources.size());
  // dist[v] is v's current vector of limited distances (kInfDist = unknown);
  // via[v] the neighbor the best value arrived through.
  std::vector<std::vector<u64>> dist(n);
  std::vector<std::vector<u32>> via(n);
  for (u32 v = 0; v < n; ++v) {
    dist[v].assign(s_count, kInfDist);
    via[v].assign(s_count, ~u32{0});
  }
  // Frontier entries carry the value as of the round they were produced, so
  // one synchronous round advances a value exactly one hop (the hop budget
  // is what makes d_h well-defined).
  std::vector<std::vector<source_distance>> frontier(n);
  for (u32 i = 0; i < s_count; ++i) {
    HYB_REQUIRE(sources[i] < n, "source out of range");
    if (dist[sources[i]][i] != 0) {
      dist[sources[i]][i] = 0;
      via[sources[i]][i] = sources[i];
      frontier[sources[i]].push_back({i, 0, sources[i]});
    }
  }
  for (u32 r = 0; r < h; ++r) {
    std::vector<std::vector<source_distance>> next(n);
    const u64 items = net.executor().sum_nodes(n, [&](u32 v) -> u64 {
      u64 mine = 0;
      for (const edge& e : g.neighbors(v)) {
        const std::vector<source_distance>& from = frontier[e.to];
        mine += from.size();
        for (const source_distance& f : from) {
          const u64 nd = f.dist + e.weight;
          if (nd < dist[v][f.source]) {
            dist[v][f.source] = nd;
            via[v][f.source] = e.to;
            next[v].push_back({f.source, nd, e.to});
          }
        }
      }
      // Drop superseded entries (a later, smaller update for the same
      // source makes earlier queued ones redundant). dist[v] is final for
      // the round once this step ends — only v's own step writes it.
      next[v].erase(std::remove_if(next[v].begin(), next[v].end(),
                                   [&](const source_distance& sd) {
                                     return sd.dist != dist[v][sd.source];
                                   }),
                    next[v].end());
      return mine;
    });
    net.charge_local(items);
    net.note_local_delivered(items);
    if (advance_rounds) net.advance_round();
    frontier = std::move(next);
    const bool any = net.executor().any_node(
        n, [&](u32 v) { return !frontier[v].empty(); });
    if (!any) {
      if (advance_rounds)
        for (u32 rest = r + 1; rest < h; ++rest) net.advance_round();
      break;
    }
  }
  std::vector<std::vector<source_distance>> out(n);
  for (u32 v = 0; v < n; ++v)
    for (u32 i = 0; i < s_count; ++i)
      if (dist[v][i] != kInfDist)
        out[v].push_back({i, dist[v][i], via[v][i]});
  return out;
}

std::vector<std::vector<u64>> full_local_exploration(
    hybrid_net& net, u32 h, bool advance_rounds,
    std::vector<std::vector<u32>>* first_hop) {
  if (net.local_faults_active()) {
    // Self-heal through the shared exploration engine
    // (proto/sparse_exploration.cpp) and expand its canonical CSR triples
    // back into the dense matrix shape this primitive promises. The engine
    // returns the referee's fixed point, so dist and first_hop are
    // bit-identical to the fault-free run.
    const sparse_exploration_result got = healed_local_exploration(
        net, h, advance_rounds, nullptr, first_hop != nullptr);
    const u32 n = net.n();
    std::vector<std::vector<u64>> dist(n, std::vector<u64>(n, kInfDist));
    if (first_hop) first_hop->assign(n, std::vector<u32>(n, ~u32{0}));
    for (u32 v = 0; v < n; ++v)
      for (const exploration_entry& e : got.reached(v)) {
        dist[v][e.source] = e.dist;
        if (first_hop) (*first_hop)[v][e.source] = e.first_hop;
      }
    return dist;
  }
  const graph& g = net.g();
  const u32 n = g.num_nodes();
  std::vector<std::vector<u64>> dist(n);
  if (first_hop) first_hop->assign(n, std::vector<u32>(n, ~u32{0}));
  // As in limited_bellman_ford, frontier entries carry the value of the
  // producing round so information moves one hop per round.
  std::vector<std::vector<source_distance>> frontier(n);
  for (u32 v = 0; v < n; ++v) {
    dist[v].assign(n, kInfDist);
    dist[v][v] = 0;
    if (first_hop) (*first_hop)[v][v] = v;
    frontier[v].push_back({v, 0, v});
  }
  for (u32 r = 0; r < h; ++r) {
    std::vector<std::vector<source_distance>> next(n);
    const u64 items = net.executor().sum_nodes(n, [&](u32 v) -> u64 {
      u64 mine = 0;
      for (const edge& e : g.neighbors(v)) {
        const std::vector<source_distance>& from = frontier[e.to];
        mine += from.size();
        for (const source_distance& f : from) {
          const u64 nd = f.dist + e.weight;
          if (nd < dist[v][f.source]) {
            dist[v][f.source] = nd;
            if (first_hop) (*first_hop)[v][f.source] = e.to;
            next[v].push_back({f.source, nd, e.to});
          }
        }
      }
      next[v].erase(std::remove_if(next[v].begin(), next[v].end(),
                                   [&](const source_distance& sd) {
                                     return sd.dist != dist[v][sd.source];
                                   }),
                    next[v].end());
      return mine;
    });
    net.charge_local(items);
    net.note_local_delivered(items);
    if (advance_rounds) net.advance_round();
    frontier = std::move(next);
    const bool any = net.executor().any_node(
        n, [&](u32 v) { return !frontier[v].empty(); });
    if (!any) {
      if (advance_rounds)
        for (u32 rest = r + 1; rest < h; ++rest) net.advance_round();
      break;
    }
  }
  return dist;
}

std::vector<std::vector<u32>> table_flood(hybrid_net& net,
                                          const std::vector<u32>& publishers,
                                          const std::vector<u64>& table_words,
                                          u32 rounds) {
  HYB_REQUIRE(publishers.size() == table_words.size(),
              "each publisher needs a table size");
  if (net.local_faults_active())
    return healed_table_flood(net, publishers, table_words, rounds);
  const graph& g = net.g();
  const u32 n = g.num_nodes();
  std::vector<std::vector<u32>> holds(n);
  std::vector<std::vector<u32>> frontier(n);
  std::vector<std::vector<char>> seen(n);
  for (u32 v = 0; v < n; ++v) seen[v].assign(publishers.size(), 0);
  for (u32 i = 0; i < publishers.size(); ++i) {
    const u32 p = publishers[i];
    HYB_REQUIRE(p < n, "publisher out of range");
    if (!seen[p][i]) {
      seen[p][i] = 1;
      holds[p].push_back(i);
      frontier[p].push_back(i);
    }
  }
  for (u32 r = 1; r <= rounds; ++r) {
    std::vector<std::vector<u32>> next(n);
    const u64 items = net.executor().sum_nodes(n, [&](u32 v) -> u64 {
      u64 mine = 0;
      for (const edge& e : g.neighbors(v)) {
        for (u32 i : frontier[e.to]) {
          mine += table_words[i];  // whole table crosses the edge
          if (!seen[v][i]) {
            seen[v][i] = 1;
            holds[v].push_back(i);
            next[v].push_back(i);
          }
        }
      }
      return mine;
    });
    net.charge_local(items);
    net.note_local_delivered(items);
    net.advance_round();
    frontier = std::move(next);
    const bool any = net.executor().any_node(
        n, [&](u32 v) { return !frontier[v].empty(); });
    if (!any && r < rounds) {
      for (u32 rest = r + 1; rest <= rounds; ++rest) net.advance_round();
      break;
    }
  }
  return holds;
}

std::vector<u32> truncated_eccentricity(hybrid_net& net, u32 rounds) {
  if (net.local_faults_active()) {
    // Hello floods carry hop counts, not weighted distances, so run the
    // healed engine with unit weights (always with real rounds — frozen
    // counters cannot heal) and read each node's truncated eccentricity off
    // its reached set. The engine returns the referee's canonical fixed
    // point, so the h_v vector is bit-identical to the fault-free flood.
    const sparse_exploration_result got = healed_local_exploration(
        net, rounds, true, nullptr, false, true);
    const run_metrics& m = net.raw_metrics();
    HYB_INVARIANT(m.local_items == m.local_delivered + m.local_dropped,
                  "local plane ledger must balance after a healed flood");
    const u32 n = net.n();
    std::vector<u32> ecc(n, 0);
    for (u32 v = 0; v < n; ++v)
      for (const exploration_entry& e : got.reached(v))
        ecc[v] = std::max(ecc[v], static_cast<u32>(e.dist));
    return ecc;
  }
  // Bitset-based all-sources hello flood: O(n²/8) memory instead of storing
  // (seed, hop) lists per node.
  const graph& g = net.g();
  const u32 n = g.num_nodes();
  const u32 words = (n + 63) / 64;
  std::vector<std::vector<u64>> seen(n, std::vector<u64>(words, 0));
  std::vector<std::vector<u32>> frontier(n);
  std::vector<u32> ecc(n, 0);
  for (u32 v = 0; v < n; ++v) {
    seen[v][v / 64] |= u64{1} << (v % 64);
    frontier[v].push_back(v);
  }
  for (u32 r = 1; r <= rounds; ++r) {
    std::vector<std::vector<u32>> next(n);
    const u64 items = net.executor().sum_nodes(n, [&](u32 v) -> u64 {
      u64 mine = 0;
      for (const edge& e : g.neighbors(v)) {
        const std::vector<u32>& from = frontier[e.to];
        mine += from.size();
        for (u32 id : from) {
          u64& word = seen[v][id / 64];
          const u64 bit = u64{1} << (id % 64);
          if (!(word & bit)) {
            word |= bit;
            ecc[v] = r;
            next[v].push_back(id);
          }
        }
      }
      return mine;
    });
    net.charge_local(items);
    net.note_local_delivered(items);
    net.advance_round();
    frontier = std::move(next);
    const bool any = net.executor().any_node(
        n, [&](u32 v) { return !frontier[v].empty(); });
    if (!any && r < rounds) {
      // This branch only runs on a reliable local plane (the healed path
      // returned above), so everything charged must have arrived: the
      // ledger local_items == local_delivered + local_dropped balances with
      // a zero dropped share from this flood.
      const run_metrics& m = net.raw_metrics();
      HYB_INVARIANT(m.local_items == m.local_delivered + m.local_dropped,
                    "local plane ledger must balance at flood saturation");
      for (u32 rest = r + 1; rest <= rounds; ++rest) net.advance_round();
      break;
    }
  }
  return ecc;
}

}  // namespace hybrid
