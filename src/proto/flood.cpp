// Pull-based implementations of the LOCAL primitives, run node-parallel on
// the round executor (docs/CONCURRENCY.md). Each node's step reads its
// neighbors' round-frozen frontiers and writes only its own rows, so the
// executor may run nodes concurrently; since adjacency lists are sorted by
// node ID, the pull order reproduces the classic sequential push order
// bit-for-bit (same known/next orderings, same tie-breaks). The
// frontier-emptiness checks that drive early exit are any_node reductions —
// order-insensitive, so thread-count-invariant like every other observable.
#include "proto/flood.hpp"

#include <algorithm>

#include "proto/aggregation.hpp"
#include "util/assert.hpp"

namespace hybrid {

std::vector<std::vector<discovered_seed>> hop_discovery(
    hybrid_net& net, const std::vector<u32>& seeds, u32 rounds,
    bool early_exit) {
  const graph& g = net.g();
  const u32 n = g.num_nodes();
  std::vector<std::vector<discovered_seed>> known(n);
  // frontier[v] = seed indices first learned by v in the previous round.
  std::vector<std::vector<u32>> frontier(n);
  std::vector<std::vector<char>> seen(n);
  for (u32 v = 0; v < n; ++v) seen[v].assign(seeds.size(), 0);
  for (u32 i = 0; i < seeds.size(); ++i) {
    HYB_REQUIRE(seeds[i] < n, "seed out of range");
    if (!seen[seeds[i]][i]) {
      seen[seeds[i]][i] = 1;
      known[seeds[i]].push_back({i, 0});
      frontier[seeds[i]].push_back(i);
    }
  }
  for (u32 r = 1; r <= rounds; ++r) {
    std::vector<std::vector<u32>> next(n);
    const u64 items = net.executor().sum_nodes(n, [&](u32 v) -> u64 {
      u64 mine = 0;
      for (const edge& e : g.neighbors(v)) {
        const std::vector<u32>& from = frontier[e.to];
        mine += from.size();
        for (u32 i : from) {
          if (!seen[v][i]) {
            seen[v][i] = 1;
            known[v].push_back({i, r});
            next[v].push_back(i);
          }
        }
      }
      return mine;
    });
    net.charge_local(items);
    net.advance_round();
    frontier = std::move(next);
    const bool any = net.executor().any_node(
        n, [&](u32 v) { return !frontier[v].empty(); });
    if (!any && r < rounds) {
      if (early_exit) {
        // Detecting global saturation costs one AND-aggregation.
        for (u32 extra = aggregation_rounds(n); extra > 0; --extra)
          net.advance_round();
      } else {
        // Fixed round budgets are part of the protocols: the remaining
        // rounds are silent but still elapse.
        for (u32 rest = r + 1; rest <= rounds; ++rest) net.advance_round();
      }
      break;
    }
  }
  return known;
}

std::vector<std::vector<source_distance>> limited_bellman_ford(
    hybrid_net& net, const std::vector<u32>& sources, u32 h,
    bool advance_rounds) {
  const graph& g = net.g();
  const u32 n = g.num_nodes();
  const u32 s_count = static_cast<u32>(sources.size());
  // dist[v] is v's current vector of limited distances (kInfDist = unknown);
  // via[v] the neighbor the best value arrived through.
  std::vector<std::vector<u64>> dist(n);
  std::vector<std::vector<u32>> via(n);
  for (u32 v = 0; v < n; ++v) {
    dist[v].assign(s_count, kInfDist);
    via[v].assign(s_count, ~u32{0});
  }
  // Frontier entries carry the value as of the round they were produced, so
  // one synchronous round advances a value exactly one hop (the hop budget
  // is what makes d_h well-defined).
  std::vector<std::vector<source_distance>> frontier(n);
  for (u32 i = 0; i < s_count; ++i) {
    HYB_REQUIRE(sources[i] < n, "source out of range");
    if (dist[sources[i]][i] != 0) {
      dist[sources[i]][i] = 0;
      via[sources[i]][i] = sources[i];
      frontier[sources[i]].push_back({i, 0, sources[i]});
    }
  }
  for (u32 r = 0; r < h; ++r) {
    std::vector<std::vector<source_distance>> next(n);
    const u64 items = net.executor().sum_nodes(n, [&](u32 v) -> u64 {
      u64 mine = 0;
      for (const edge& e : g.neighbors(v)) {
        const std::vector<source_distance>& from = frontier[e.to];
        mine += from.size();
        for (const source_distance& f : from) {
          const u64 nd = f.dist + e.weight;
          if (nd < dist[v][f.source]) {
            dist[v][f.source] = nd;
            via[v][f.source] = e.to;
            next[v].push_back({f.source, nd, e.to});
          }
        }
      }
      // Drop superseded entries (a later, smaller update for the same
      // source makes earlier queued ones redundant). dist[v] is final for
      // the round once this step ends — only v's own step writes it.
      next[v].erase(std::remove_if(next[v].begin(), next[v].end(),
                                   [&](const source_distance& sd) {
                                     return sd.dist != dist[v][sd.source];
                                   }),
                    next[v].end());
      return mine;
    });
    net.charge_local(items);
    if (advance_rounds) net.advance_round();
    frontier = std::move(next);
    const bool any = net.executor().any_node(
        n, [&](u32 v) { return !frontier[v].empty(); });
    if (!any) {
      if (advance_rounds)
        for (u32 rest = r + 1; rest < h; ++rest) net.advance_round();
      break;
    }
  }
  std::vector<std::vector<source_distance>> out(n);
  for (u32 v = 0; v < n; ++v)
    for (u32 i = 0; i < s_count; ++i)
      if (dist[v][i] != kInfDist)
        out[v].push_back({i, dist[v][i], via[v][i]});
  return out;
}

std::vector<std::vector<u64>> full_local_exploration(
    hybrid_net& net, u32 h, bool advance_rounds,
    std::vector<std::vector<u32>>* first_hop) {
  const graph& g = net.g();
  const u32 n = g.num_nodes();
  std::vector<std::vector<u64>> dist(n);
  if (first_hop) first_hop->assign(n, std::vector<u32>(n, ~u32{0}));
  // As in limited_bellman_ford, frontier entries carry the value of the
  // producing round so information moves one hop per round.
  std::vector<std::vector<source_distance>> frontier(n);
  for (u32 v = 0; v < n; ++v) {
    dist[v].assign(n, kInfDist);
    dist[v][v] = 0;
    if (first_hop) (*first_hop)[v][v] = v;
    frontier[v].push_back({v, 0, v});
  }
  for (u32 r = 0; r < h; ++r) {
    std::vector<std::vector<source_distance>> next(n);
    const u64 items = net.executor().sum_nodes(n, [&](u32 v) -> u64 {
      u64 mine = 0;
      for (const edge& e : g.neighbors(v)) {
        const std::vector<source_distance>& from = frontier[e.to];
        mine += from.size();
        for (const source_distance& f : from) {
          const u64 nd = f.dist + e.weight;
          if (nd < dist[v][f.source]) {
            dist[v][f.source] = nd;
            if (first_hop) (*first_hop)[v][f.source] = e.to;
            next[v].push_back({f.source, nd, e.to});
          }
        }
      }
      next[v].erase(std::remove_if(next[v].begin(), next[v].end(),
                                   [&](const source_distance& sd) {
                                     return sd.dist != dist[v][sd.source];
                                   }),
                    next[v].end());
      return mine;
    });
    net.charge_local(items);
    if (advance_rounds) net.advance_round();
    frontier = std::move(next);
    const bool any = net.executor().any_node(
        n, [&](u32 v) { return !frontier[v].empty(); });
    if (!any) {
      if (advance_rounds)
        for (u32 rest = r + 1; rest < h; ++rest) net.advance_round();
      break;
    }
  }
  return dist;
}

std::vector<std::vector<u32>> table_flood(hybrid_net& net,
                                          const std::vector<u32>& publishers,
                                          const std::vector<u64>& table_words,
                                          u32 rounds) {
  HYB_REQUIRE(publishers.size() == table_words.size(),
              "each publisher needs a table size");
  const graph& g = net.g();
  const u32 n = g.num_nodes();
  std::vector<std::vector<u32>> holds(n);
  std::vector<std::vector<u32>> frontier(n);
  std::vector<std::vector<char>> seen(n);
  for (u32 v = 0; v < n; ++v) seen[v].assign(publishers.size(), 0);
  for (u32 i = 0; i < publishers.size(); ++i) {
    const u32 p = publishers[i];
    HYB_REQUIRE(p < n, "publisher out of range");
    if (!seen[p][i]) {
      seen[p][i] = 1;
      holds[p].push_back(i);
      frontier[p].push_back(i);
    }
  }
  for (u32 r = 1; r <= rounds; ++r) {
    std::vector<std::vector<u32>> next(n);
    const u64 items = net.executor().sum_nodes(n, [&](u32 v) -> u64 {
      u64 mine = 0;
      for (const edge& e : g.neighbors(v)) {
        for (u32 i : frontier[e.to]) {
          mine += table_words[i];  // whole table crosses the edge
          if (!seen[v][i]) {
            seen[v][i] = 1;
            holds[v].push_back(i);
            next[v].push_back(i);
          }
        }
      }
      return mine;
    });
    net.charge_local(items);
    net.advance_round();
    frontier = std::move(next);
    const bool any = net.executor().any_node(
        n, [&](u32 v) { return !frontier[v].empty(); });
    if (!any && r < rounds) {
      for (u32 rest = r + 1; rest <= rounds; ++rest) net.advance_round();
      break;
    }
  }
  return holds;
}

std::vector<u32> truncated_eccentricity(hybrid_net& net, u32 rounds) {
  // Bitset-based all-sources hello flood: O(n²/8) memory instead of storing
  // (seed, hop) lists per node.
  const graph& g = net.g();
  const u32 n = g.num_nodes();
  const u32 words = (n + 63) / 64;
  std::vector<std::vector<u64>> seen(n, std::vector<u64>(words, 0));
  std::vector<std::vector<u32>> frontier(n);
  std::vector<u32> ecc(n, 0);
  for (u32 v = 0; v < n; ++v) {
    seen[v][v / 64] |= u64{1} << (v % 64);
    frontier[v].push_back(v);
  }
  for (u32 r = 1; r <= rounds; ++r) {
    std::vector<std::vector<u32>> next(n);
    const u64 items = net.executor().sum_nodes(n, [&](u32 v) -> u64 {
      u64 mine = 0;
      for (const edge& e : g.neighbors(v)) {
        const std::vector<u32>& from = frontier[e.to];
        mine += from.size();
        for (u32 id : from) {
          u64& word = seen[v][id / 64];
          const u64 bit = u64{1} << (id % 64);
          if (!(word & bit)) {
            word |= bit;
            ecc[v] = r;
            next[v].push_back(id);
          }
        }
      }
      return mine;
    });
    net.charge_local(items);
    net.advance_round();
    frontier = std::move(next);
    const bool any = net.executor().any_node(
        n, [&](u32 v) { return !frontier[v].empty(); });
    if (!any && r < rounds) {
      for (u32 rest = r + 1; rest <= rounds; ++rest) net.advance_round();
      break;
    }
  }
  return ecc;
}

}  // namespace hybrid
