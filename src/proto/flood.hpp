// Audited LOCAL-mode primitives (paper Section 1, "The Hybrid Network
// Model": the unbounded-bandwidth LOCAL mode; used by Algorithms 1, 5, 6
// and 9).
//
// The paper's protocols use the local graph in exactly four ways; each gets
// one primitive here so that all LOCAL information flow goes through code
// that advances simulated rounds and charges traffic:
//
//  1. hop_discovery        — multi-source BFS flooding for T rounds; every
//                            node learns (seed, hop) for seeds within T hops
//                            ("flood information on R / W", Algorithm 1).
//  2. limited_bellman_ford — h synchronous relaxation rounds from a source
//                            set; node v learns d_h(v, s) (Algorithm 6's
//                            skeleton-edge discovery, Algorithm 5's local
//                            source exploration).
//  3. full_local_exploration — h rounds in which every node forwards all
//                            topology it knows; afterwards each node knows
//                            d_h(u, v) for all pairs it can see (the APSP
//                            algorithm's "local exploration", Section 3).
//  4. table_flood          — skeleton nodes publish an immutable table that
//                            floods T hops; recipients get shared read-only
//                            access (the "distribute distance labels to the
//                            Õ(x)-neighborhood" step). Payload bits are
//                            charged per edge crossing; sharing the storage
//                            is a simulator optimization, not an information
//                            leak, because the content is identical for all
//                            recipients.
//
// All primitives run over the whole graph; restricting propagation to a
// cluster is done by the clustering utilities (proto/clustering.hpp).
#pragma once

#include <memory>
#include <vector>

#include "sim/hybrid_net.hpp"

namespace hybrid {

struct discovered_seed {
  u32 seed;  ///< index into the seeds vector passed in
  u32 hop;
};

/// (1) Multi-source BFS flood for `rounds` rounds.
/// Returns per node the seeds heard with their hop distance (ascending hop).
/// With `early_exit` the flood stops once no node has anything new to
/// forward; since frontier-emptiness is global information, the saved
/// rounds cost one charged AND-aggregation (Lemma B.2). The result is
/// identical either way — once saturated, the remaining budget is silent.
std::vector<std::vector<discovered_seed>> hop_discovery(
    hybrid_net& net, const std::vector<u32>& seeds, u32 rounds,
    bool early_exit = false);

struct source_distance {
  u32 source;  ///< index into the sources vector passed in
  u64 dist;    ///< d_h(v, source) for the h used
  /// Neighbor through which the best value arrived — the node's first hop
  /// on a d_h-realizing path toward the source (self for the source).
  /// Exactly what routing-table construction needs (paper §1's IP-routing
  /// motivation).
  u32 via = ~u32{0};
  friend bool operator==(const source_distance&,
                         const source_distance&) = default;
};

/// (2) h rounds of synchronous Bellman–Ford from `sources`.
/// Returns per node the h-hop-limited distances to every source it reached.
/// When `advance_rounds` is false the primitive models the paper's "run the
/// local exploration in parallel with the rest of the algorithm" trick
/// (Lemma 4.3's final paragraph): traffic is charged but rounds are not.
/// Under local-plane faults the frozen-round trick is unavailable (healing
/// needs fresh fault draws, so the counter must move): the call falls back
/// to the healed advancing path automatically, with every consumed round
/// surfaced as extra_rounds (docs/FAULTS.md §3).
std::vector<std::vector<source_distance>> limited_bellman_ford(
    hybrid_net& net, const std::vector<u32>& sources, u32 h,
    bool advance_rounds = true);

/// (3) Full h-hop-limited APSP: matrix[u][v] = d_h(u, v) (kInfDist when v is
/// outside u's h-hop horizon). Quadratic memory — callers bound n; for the
/// neighborhood-bounded O(Σ|ball_h(v)|) variant the cores use, see
/// proto/sparse_exploration.hpp (bit-identical triples and charging).
/// When `first_hop` is non-null it receives an n×n matrix with each node's
/// first hop on a d_h-realizing path to the target (self on the diagonal,
/// ~0u when unreachable).
std::vector<std::vector<u64>> full_local_exploration(
    hybrid_net& net, u32 h, bool advance_rounds,
    std::vector<std::vector<u32>>* first_hop = nullptr);

/// (4) Flood per-publisher immutable tables for `rounds` rounds.
/// `table_words[i]` is the accounted size of publisher i's table in 64-bit
/// words. Returns for each node the publisher indices whose table it holds.
std::vector<std::vector<u32>> table_flood(hybrid_net& net,
                                          const std::vector<u32>& publishers,
                                          const std::vector<u64>& table_words,
                                          u32 rounds);

/// Hello-flood eccentricity: every node floods its ID for `rounds` rounds;
/// returns per node the largest hop at which it heard a new ID, i.e.
/// h_v = max_{u in N_rounds(v)} hop(v, u) truncated at `rounds`
/// (Algorithm 9's h_v). Under local-plane faults the flood self-heals
/// through the healed exploration engine (proto/sparse_exploration.hpp) and
/// returns the identical h_v vector.
std::vector<u32> truncated_eccentricity(hybrid_net& net, u32 rounds);

/// Quiet-window update shared by the self-healing re-offer loops
/// (docs/FAULTS.md §3). Progress this round resets the counter; so does any
/// node still being down — a paused node has pulls pending that only run
/// after recovery, so its silence is not convergence (a never-recovering
/// node pushes the loop into its budget and an explicit fault_failure).
u32 heal_next_quiet(hybrid_net& net, round_executor& exec, u32 n, u32 quiet,
                    const std::vector<u8>& changed);

}  // namespace hybrid
