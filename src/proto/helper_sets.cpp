#include "proto/helper_sets.hpp"

#include <algorithm>
#include <cmath>

#include "proto/ruling_set.hpp"
#include "util/assert.hpp"

namespace hybrid {

u32 helper_mu(u64 k, double p) {
  HYB_REQUIRE(p > 0.0 && p <= 1.0, "sampling probability in (0,1]");
  const double cap = 1.0 / p;
  const double root = std::sqrt(static_cast<double>(k));
  const double mu = std::floor(std::min(root, cap));
  return std::max<u32>(1, static_cast<u32>(mu));
}

helper_family compute_helpers(hybrid_net& net, const std::vector<u32>& w_set,
                              u32 mu) {
  const u32 n = net.n();
  helper_family fam;
  fam.mu = mu;
  fam.helpers_of.resize(w_set.size());
  fam.helps.resize(n);

  if (mu <= 1) {
    for (u32 i = 0; i < w_set.size(); ++i) {
      HYB_REQUIRE(w_set[i] < n, "W member out of range");
      fam.helpers_of[i] = {w_set[i]};
      fam.helps[w_set[i]].push_back(i);
    }
    return fam;
  }

  // Ruling set + clustering (Algorithm 1, first half).
  const ruling_set_result rs = compute_ruling_set(net, mu);
  fam.clusters = compute_clusters(net, rs);
  const cluster_decomposition& cd = fam.clusters;

  // Every node learns the W-members and size of its own cluster: flood
  // (node, in_W) records inside clusters for 2β+1 rounds (Algorithm 1's
  // "learn all members of C_r" loop).
  std::vector<u32> w_index_of(n, ~u32{0});
  for (u32 i = 0; i < w_set.size(); ++i) {
    HYB_REQUIRE(w_set[i] < n, "W member out of range");
    w_index_of[w_set[i]] = i;
  }
  std::vector<std::vector<item128>> init(n);
  for (u32 v = 0; v < n; ++v)
    init[v].push_back(
        {(u64{v} << 1) | (w_index_of[v] != ~u32{0} ? 1 : 0), 0});
  const auto heard =
      cluster_flood(net, cd, std::move(init), cd.flood_budget());

  // Join decisions (Algorithm 1, last loop).
  const double q_mult = net.config().helper_q_mult;
  for (u32 v = 0; v < n; ++v) {
    const u64 cluster_size = heard[v].size();
    HYB_INVARIANT(cluster_size >= 1, "node did not hear itself");
    const double q =
        std::min(q_mult * mu / static_cast<double>(cluster_size), 1.0);
    rng& rv = net.node_rng(v);
    for (const item128& it : heard[v]) {
      if ((it.a & 1) == 0) continue;  // not a W member
      const u32 w_node = static_cast<u32>(it.a >> 1);
      const u32 wi = w_index_of[w_node];
      if (w_node == v || rv.next_bool(q)) {
        fam.helpers_of[wi].push_back(v);
        fam.helps[v].push_back(wi);
      }
    }
  }
  for (auto& hs : fam.helpers_of) std::sort(hs.begin(), hs.end());

  // One more intra-cluster flood so each w ∈ W learns its helper set
  // (first loop of Algorithm 3); helpers announce (helper, w).
  std::vector<std::vector<item128>> ann(n);
  for (u32 v = 0; v < n; ++v)
    for (u32 wi : fam.helps[v])
      ann[v].push_back({(u64{v} << 32) | w_set[wi], 1});
  cluster_flood(net, cd, std::move(ann), cd.flood_budget());
  return fam;
}

}  // namespace hybrid
