// Helper sets (paper Definition 2.1, Algorithm 1, Lemma 2.2).
//
// Given a well-spread set W ⊆ V and a parameter µ, every w ∈ W is assigned a
// set H_w of ≥ µ helpers within Õ(µ) hops such that no node helps more than
// Õ(1) members of W. Construction: a (2µ+1, 2µ⌈log n⌉)-ruling set induces a
// cluster decomposition with clusters of ≥ µ+1 nodes and diameter O(µ log n);
// inside its cluster every node joins H_w with probability
// q = min(helper_q_mult·µ/|C|, 1). We additionally always put w into H_w so
// that token routing stays correct even if the random size bound fails
// (performance, not correctness, is the probabilistic part — see docs/DESIGN.md).
#pragma once

#include <vector>

#include "proto/clustering.hpp"
#include "sim/hybrid_net.hpp"

namespace hybrid {

struct helper_family {
  u32 mu = 1;
  /// helpers_of[i] — sorted helper node IDs of W[i] (always contains W[i]).
  std::vector<std::vector<u32>> helpers_of;
  /// helps[v] — indices into W this node helps.
  std::vector<std::vector<u32>> helps;
  /// Cluster decomposition reused for intra-cluster communication; empty
  /// (rulers empty) when µ = 1 and the machinery was skipped.
  cluster_decomposition clusters;

  bool trivial() const { return mu <= 1; }
};

/// Algorithm 1. µ = 1 short-circuits to H_w = {w} at zero round cost.
helper_family compute_helpers(hybrid_net& net, const std::vector<u32>& w_set,
                              u32 mu);

/// µ = ⌊min(√k, 1/p)⌋ as used by Algorithm 2 (at least 1).
u32 helper_mu(u64 k, double p);

}  // namespace hybrid
