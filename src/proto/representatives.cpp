#include "proto/representatives.hpp"

#include "proto/dissemination.hpp"
#include "util/assert.hpp"

namespace hybrid {

representatives_result compute_representatives(
    hybrid_net& net, const skeleton_result& sk,
    const std::vector<u32>& sources) {
  const u32 n = net.n();
  representatives_result out;
  out.rep_of.resize(sources.size());
  out.dist_to_rep.resize(sources.size());

  std::vector<std::vector<token2>> initial(n);
  for (u32 j = 0; j < sources.size(); ++j) {
    const u32 s = sources[j];
    HYB_REQUIRE(s < n, "source out of range");
    if (sk.is_skeleton(s)) {
      out.rep_of[j] = sk.index_of[s];
      out.dist_to_rep[j] = 0;
    } else {
      u32 best = skeleton_result::npos;
      u64 best_d = kInfDist;
      for (const source_distance& sd : sk.near[s]) {
        if (sd.dist < best_d ||
            (sd.dist == best_d && sd.source < best)) {
          best = sd.source;
          best_d = sd.dist;
        }
      }
      HYB_INVARIANT(best != skeleton_result::npos,
                    "source has no skeleton node within h hops "
                    "(Lemma C.1 event failed; raise skeleton_xi)");
      out.rep_of[j] = best;
      out.dist_to_rep[j] = best_d;
    }
    // Token ⟨d_h(s, r_s), ID(s), ID(r_s)⟩ (Algorithm 7).
    initial[s].push_back(
        {(u64{s} << 32) | sk.nodes[out.rep_of[j]], out.dist_to_rep[j]});
  }
  // Make all representative pairs public knowledge.
  disseminate(net, std::move(initial));
  return out;
}

}  // namespace hybrid
