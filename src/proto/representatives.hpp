// Source representatives (paper Algorithm 7, Fact 4.4).
//
// A source s of the k-SSP instance that was not sampled into the skeleton
// tags its closest skeleton node r_s (by h-hop-limited distance) as its
// representative; the pairs ⟨d_h(s, r_s), s, r_s⟩ are made public with token
// dissemination so that every node can later add the s↔r_s leg back onto
// distances computed on the skeleton.
#pragma once

#include <vector>

#include "proto/skeleton.hpp"
#include "sim/hybrid_net.hpp"

namespace hybrid {

struct representatives_result {
  /// Per source (aligned with the sources argument): skeleton index of the
  /// representative and d_h(source, representative) (0 if the source is
  /// itself a skeleton node).
  std::vector<u32> rep_of;
  std::vector<u64> dist_to_rep;
};

/// Requires every source to have a skeleton node within h hops (holds w.h.p.
/// by Lemma C.1; violated only if the ξ constant is set too small).
representatives_result compute_representatives(
    hybrid_net& net, const skeleton_result& sk,
    const std::vector<u32>& sources);

}  // namespace hybrid
