#include "proto/ruling_set.hpp"

#include <algorithm>

#include "proto/flood.hpp"
#include "util/assert.hpp"

namespace hybrid {

ruling_set_result compute_ruling_set(hybrid_net& net, u32 mu) {
  HYB_REQUIRE(mu >= 1, "ruling set parameter µ must be >= 1");
  const u32 n = net.n();
  const u32 levels = id_bits(n);
  const u32 alpha = 2 * mu + 1;

  std::vector<char> candidate(n, 1);
  for (u32 level = 0; level < levels; ++level) {
    // Only candidates with bit `level` = 0 can knock others out; flooding
    // all current candidates keeps the code simple (listeners filter) and
    // uses the same 2µ rounds.
    std::vector<u32> current;
    for (u32 v = 0; v < n; ++v)
      if (candidate[v]) current.push_back(v);
    const auto heard =
        hop_discovery(net, current, alpha - 1, /*early_exit=*/true);
    for (u32 v = 0; v < n; ++v) {
      if (!candidate[v] || ((v >> level) & 1u) == 0) continue;
      const u64 my_block = v >> (level + 1);
      for (const discovered_seed& d : heard[v]) {
        const u32 u = current[d.seed];
        if (u == v) continue;
        if (((u >> level) & 1u) == 0 && (u >> (level + 1)) == my_block) {
          candidate[v] = 0;  // a 0-side candidate of my block is too close
          break;
        }
      }
    }
  }

  ruling_set_result out;
  out.alpha = alpha;
  out.beta = 2 * mu * levels;
  for (u32 v = 0; v < n; ++v)
    if (candidate[v]) out.rulers.push_back(v);
  HYB_INVARIANT(!out.rulers.empty(), "ruling set cannot be empty");
  return out;
}

}  // namespace hybrid
