// Deterministic ruling sets in the local network (paper Lemma 2.1).
//
// The paper cites Kuhn–Maus–Weidner [22] / Awerbuch et al. [4] for a
// (2µ+1, 2µ⌈log n⌉)-ruling set in O(µ log n) LOCAL rounds. We implement the
// classical AGLP bit-merge construction: process ID bits from least to most
// significant; at level ℓ the two halves of every ID block merge, and a
// candidate whose bit ℓ is 1 survives only if no candidate with bit ℓ = 0 in
// the same block is within 2µ hops. This yields pairwise hop distance
// ≥ α = 2µ+1 and domination radius ≤ 2µ·⌈log n⌉ in exactly 2µ·⌈log n⌉
// flooding rounds.
#pragma once

#include <vector>

#include "sim/hybrid_net.hpp"

namespace hybrid {

struct ruling_set_result {
  std::vector<u32> rulers;  ///< sorted node IDs
  u32 alpha = 0;            ///< min pairwise hop distance guarantee (2µ+1)
  u32 beta = 0;             ///< domination radius guarantee (2µ·⌈log n⌉)
};

/// Compute a (2µ+1, 2µ⌈log n⌉)-ruling set of the whole node set.
ruling_set_result compute_ruling_set(hybrid_net& net, u32 mu);

}  // namespace hybrid
