#include "proto/skeleton.hpp"

#include <algorithm>
#include <cmath>
#include <queue>

#include "util/assert.hpp"

namespace hybrid {

skeleton_result compute_skeleton(hybrid_net& net, double sample_prob,
                                 const std::vector<u32>& forced) {
  HYB_REQUIRE(sample_prob > 0.0 && sample_prob <= 1.0,
              "sampling probability in (0,1]");
  const u32 n = net.n();
  skeleton_result sk;
  sk.sample_prob = sample_prob;
  sk.index_of.assign(n, skeleton_result::npos);

  std::vector<char> in(n, 0);
  for (u32 v = 0; v < n; ++v)
    if (net.node_rng(v).next_bool(sample_prob)) in[v] = 1;
  for (u32 v : forced) {
    HYB_REQUIRE(v < n, "forced node out of range");
    in[v] = 1;
  }
  for (u32 v = 0; v < n; ++v)
    if (in[v]) {
      sk.index_of[v] = static_cast<u32>(sk.nodes.size());
      sk.nodes.push_back(v);
    }
  HYB_INVARIANT(!sk.nodes.empty(),
                "skeleton sampling produced no nodes; raise p or n");

  sk.h = std::max<u32>(
      1, static_cast<u32>(std::ceil(net.config().skeleton_xi *
                                    (1.0 / sample_prob) * std::log(n))));

  // h rounds of limited Bellman–Ford from all skeleton nodes; every node
  // learns d_h to nearby skeletons, skeleton nodes derive their incident
  // skeleton edges.
  auto explore = [&]() {
    sk.near = limited_bellman_ford(net, sk.nodes, sk.h,
                                   /*advance_rounds=*/true);
    sk.edges.assign(sk.nodes.size(), {});
    for (u32 i = 0; i < sk.nodes.size(); ++i) {
      for (const source_distance& sd : sk.near[sk.nodes[i]]) {
        if (sd.source == i) continue;
        sk.edges[i].push_back({sd.source, sd.dist});
      }
    }
  };
  if (!net.local_faults_active()) {
    explore();
    return sk;
  }
  // Re-stabilization (docs/FAULTS.md): the healed Bellman–Ford can declare
  // stability while a dropped update is still pending (~p^stability per
  // entry under random drops); its built-in referee turns that into a
  // fault_failure instead of a wrong skeleton. A re-run gets fresh fault
  // draws — the round counter moved on — so retry a few times before giving
  // up. The edge-symmetry check (a converged exploration has d_h(u, v) =
  // d_h(v, u)) stays as an independent convergence witness.
  auto symmetric = [&]() {
    for (u32 i = 0; i < sk.edges.size(); ++i)
      for (const auto& [j, w] : sk.edges[i]) {
        bool found = false;
        for (const auto& [bi, bw] : sk.edges[j])
          if (bi == i && bw == w) {
            found = true;
            break;
          }
        if (!found) return false;
      }
    return true;
  };
  u32 attempts = 0;
  for (;;) {
    // Healing-overhead reconciliation: a failed attempt burns rounds the
    // primitive never reports (it threw before its accounting epilogue), so
    // top extra_rounds up to everything actually spent beyond what the
    // attempt itself noted.
    const u64 r0 = net.round();
    const u64 x0 = net.raw_metrics().extra_rounds;
    bool converged = true;
    try {
      explore();
    } catch (const fault_failure&) {
      converged = false;
    }
    const u64 spent = net.round() - r0;
    const u64 noted = net.raw_metrics().extra_rounds - x0;
    const bool done = converged && symmetric();
    // A clean attempt's nominal budget (h rounds) is not overhead; anything
    // else — failed attempts wholesale, and a clean attempt's overshoot —
    // already is or becomes extra_rounds here.
    const u64 covered = noted + (done ? sk.h : 0);
    if (spent > covered) net.note_extra_rounds(spent - covered);
    if (done) break;
    if (++attempts >= 4)
      throw fault_failure("skeleton re-stabilization failed to converge");
  }
  return sk;
}

namespace {

std::vector<u64> dijkstra_on_skeleton(
    const std::vector<std::vector<std::pair<u32, u64>>>& edges, u32 src) {
  std::vector<u64> dist(edges.size(), kInfDist);
  using item = std::pair<u64, u32>;
  std::priority_queue<item, std::vector<item>, std::greater<>> pq;
  dist[src] = 0;
  pq.push({0, src});
  while (!pq.empty()) {
    auto [d, v] = pq.top();
    pq.pop();
    if (d != dist[v]) continue;
    for (const auto& [to, w] : edges[v]) {
      if (d + w < dist[to]) {
        dist[to] = d + w;
        pq.push({d + w, to});
      }
    }
  }
  return dist;
}

}  // namespace

std::vector<std::vector<u64>> skeleton_apsp(const skeleton_result& sk) {
  std::vector<std::vector<u64>> out(sk.nodes.size());
  for (u32 i = 0; i < sk.nodes.size(); ++i)
    out[i] = dijkstra_on_skeleton(sk.edges, i);
  return out;
}

std::vector<u64> skeleton_sssp(const skeleton_result& sk, u32 src) {
  HYB_REQUIRE(src < sk.nodes.size(), "skeleton index out of range");
  return dijkstra_on_skeleton(sk.edges, src);
}

}  // namespace hybrid
