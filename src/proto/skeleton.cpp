#include "proto/skeleton.hpp"

#include <algorithm>
#include <cmath>
#include <queue>

#include "proto/dissemination.hpp"
#include "util/assert.hpp"

namespace hybrid {

skeleton_result compute_skeleton(hybrid_net& net, double sample_prob,
                                 const std::vector<u32>& forced) {
  HYB_REQUIRE(sample_prob > 0.0 && sample_prob <= 1.0,
              "sampling probability in (0,1]");
  const u32 n = net.n();
  skeleton_result sk;
  sk.sample_prob = sample_prob;
  sk.index_of.assign(n, skeleton_result::npos);

  // Parallel over nodes: each node draws one Bernoulli from its own
  // persistent stream, and node_rng(v)'s lazy init touches only slot v, so
  // sharding is race-free and the verdict vector is bit-identical to the
  // sequential sweep at every thread count.
  std::vector<char> in(n, 0);
  net.executor().for_nodes(n, [&](u32 v) {
    if (net.node_rng(v).next_bool(sample_prob)) in[v] = 1;
  });
  for (u32 v : forced) {
    HYB_REQUIRE(v < n, "forced node out of range");
    in[v] = 1;
  }
  for (u32 v = 0; v < n; ++v)
    if (in[v]) {
      sk.index_of[v] = static_cast<u32>(sk.nodes.size());
      sk.nodes.push_back(v);
    }
  HYB_INVARIANT(!sk.nodes.empty(),
                "skeleton sampling produced no nodes; raise p or n");

  sk.h = std::max<u32>(
      1, static_cast<u32>(std::ceil(net.config().skeleton_xi *
                                    (1.0 / sample_prob) * std::log(n))));

  // h rounds of exploration from all skeleton nodes; every node learns d_h
  // to nearby skeletons, skeleton nodes derive their incident skeleton
  // edges.
  const auto derive_edges = [&]() {
    sk.edges.assign(sk.nodes.size(), {});
    for (u32 i = 0; i < sk.nodes.size(); ++i) {
      for (const source_distance& sd : sk.near[sk.nodes[i]]) {
        if (sd.source == i) continue;
        sk.edges[i].push_back({sd.source, sd.dist});
      }
    }
  };
  if (!net.local_faults_active()) {
    // Memory-sparse path: the dense limited Bellman–Ford keeps an n_s-wide
    // row per node — O(n·n_s) words, which at n = 10⁵ with p ≈ 0.05 is the
    // multi-GB blowup the two-level bench exposed. run_local_exploration
    // produces the same triples with the same round/message charging (the
    // exploration equivalence contract; below the dense cutoff it literally
    // wraps limited_bellman_ford), bounded by O(Σ|ball_h|) instead.
    const sparse_exploration_result res = run_local_exploration(
        net, sk.h, /*advance_rounds=*/true, &sk.nodes, /*first_hops=*/true);
    sk.near.assign(n, {});
    for (u32 v = 0; v < n; ++v) {
      const auto slice = res.reached(v);
      sk.near[v].reserve(slice.size());
      // Entries are sorted by source node id; sk.nodes is ascending, so the
      // converted list is sorted by skeleton index — the exact order the
      // dense path produced (asserted by the API-surface suite).
      for (const exploration_entry& e : slice)
        sk.near[v].push_back({sk.index_of[e.source], e.dist, e.first_hop});
    }
    derive_edges();
    return sk;
  }
  auto explore = [&]() {
    sk.near = limited_bellman_ford(net, sk.nodes, sk.h,
                                   /*advance_rounds=*/true);
    derive_edges();
  };
  // Re-stabilization (docs/FAULTS.md): the healed Bellman–Ford can declare
  // stability while a dropped update is still pending (~p^stability per
  // entry under random drops); its built-in referee turns that into a
  // fault_failure instead of a wrong skeleton. A re-run gets fresh fault
  // draws — the round counter moved on — so retry a few times before giving
  // up. The edge-symmetry check (a converged exploration has d_h(u, v) =
  // d_h(v, u)) stays as an independent convergence witness.
  auto symmetric = [&]() {
    for (u32 i = 0; i < sk.edges.size(); ++i)
      for (const auto& [j, w] : sk.edges[i]) {
        bool found = false;
        for (const auto& [bi, bw] : sk.edges[j])
          if (bi == i && bw == w) {
            found = true;
            break;
          }
        if (!found) return false;
      }
    return true;
  };
  u32 attempts = 0;
  for (;;) {
    // Healing-overhead reconciliation: a failed attempt burns rounds the
    // primitive never reports (it threw before its accounting epilogue), so
    // top extra_rounds up to everything actually spent beyond what the
    // attempt itself noted.
    const u64 r0 = net.round();
    const u64 x0 = net.raw_metrics().extra_rounds;
    bool converged = true;
    try {
      explore();
    } catch (const fault_failure&) {
      converged = false;
    }
    const u64 spent = net.round() - r0;
    const u64 noted = net.raw_metrics().extra_rounds - x0;
    const bool done = converged && symmetric();
    // A clean attempt's nominal budget (h rounds) is not overhead; anything
    // else — failed attempts wholesale, and a clean attempt's overshoot —
    // already is or becomes extra_rounds here.
    const u64 covered = noted + (done ? sk.h : 0);
    if (spent > covered) net.note_extra_rounds(spent - covered);
    if (done) break;
    if (++attempts >= 4)
      throw fault_failure("skeleton re-stabilization failed to converge");
  }
  return sk;
}

namespace {

/// The skeleton adjacency flattened once into CSR form, so the per-source
/// Dijkstra loop shares one contiguous structure instead of re-walking the
/// vector-of-vectors per call (hot path: it is the level-1/level-2 table
/// builder in the two-level pipeline).
struct skeleton_csr {
  std::vector<u64> offsets;  ///< size n_s + 1
  std::vector<u32> targets;
  std::vector<u64> weights;

  explicit skeleton_csr(
      const std::vector<std::vector<std::pair<u32, u64>>>& edges) {
    offsets.assign(edges.size() + 1, 0);
    for (size_t i = 0; i < edges.size(); ++i)
      offsets[i + 1] = offsets[i] + edges[i].size();
    targets.resize(offsets.back());
    weights.resize(offsets.back());
    u64 at = 0;
    for (const auto& adj : edges)
      for (const auto& [to, w] : adj) {
        targets[at] = to;
        weights[at] = w;
        ++at;
      }
  }
};

void dijkstra_on_csr(const skeleton_csr& csr, u32 src,
                     std::vector<u64>& dist) {
  dist.assign(csr.offsets.size() - 1, kInfDist);
  using item = std::pair<u64, u32>;
  std::priority_queue<item, std::vector<item>, std::greater<>> pq;
  dist[src] = 0;
  pq.push({0, src});
  while (!pq.empty()) {
    auto [d, v] = pq.top();
    pq.pop();
    if (d != dist[v]) continue;
    for (u64 k = csr.offsets[v]; k < csr.offsets[v + 1]; ++k) {
      const u32 to = csr.targets[k];
      const u64 nd = d + csr.weights[k];
      if (nd < dist[to]) {
        dist[to] = nd;
        pq.push({nd, to});
      }
    }
  }
}

}  // namespace

std::vector<std::vector<u64>> skeleton_apsp(const skeleton_result& sk,
                                            round_executor& ex) {
  const u32 n_s = static_cast<u32>(sk.nodes.size());
  const skeleton_csr csr(sk.edges);
  std::vector<std::vector<u64>> out(n_s);
  // Each source's row is written only by its own item, so the parallel loop
  // is trivially deterministic (docs/CONCURRENCY.md node-parallel contract).
  ex.for_nodes(n_s, [&](u32 i) { dijkstra_on_csr(csr, i, out[i]); });
  return out;
}

std::vector<std::vector<u64>> skeleton_apsp(const skeleton_result& sk) {
  round_executor ex(sim_options{});
  return skeleton_apsp(sk, ex);
}

std::vector<u64> skeleton_sssp(const skeleton_result& sk, u32 src) {
  HYB_REQUIRE(src < sk.nodes.size(), "skeleton index out of range");
  const skeleton_csr csr(sk.edges);
  std::vector<u64> dist;
  dijkstra_on_csr(csr, src, dist);
  return dist;
}

super_skeleton_result compute_super_skeleton(hybrid_net& net,
                                             const skeleton_result& sk,
                                             double sample_prob, u32 h1) {
  HYB_REQUIRE(sample_prob > 0.0 && sample_prob <= 1.0,
              "sampling probability in (0,1]");
  HYB_REQUIRE(h1 >= 1, "super-skeleton hop budget must be at least 1");
  const u32 n_s = static_cast<u32>(sk.nodes.size());
  super_skeleton_result ss;
  ss.sample_prob = sample_prob;
  ss.h1 = h1;
  ss.index_of.assign(n_s, super_skeleton_result::npos);

  // Sample from the members' own per-node RNG streams, like level 1 —
  // parallel over members (distinct nodes, so distinct streams and
  // distinct node_rng slots).
  std::vector<char> in(n_s, 0);
  net.executor().for_nodes(n_s, [&](u32 i) {
    if (net.node_rng(sk.nodes[i]).next_bool(sample_prob)) in[i] = 1;
  });
  if (std::find(in.begin(), in.end(), char{1}) == in.end())
    in[0] = 1;  // the level-2 table must exist; deterministic fallback
  for (u32 i = 0; i < n_s; ++i)
    if (in[i]) {
      ss.index_of[i] = static_cast<u32>(ss.members.size());
      ss.members.push_back(i);
    }
  const u32 n_s2 = static_cast<u32>(ss.members.size());

  // Membership announcement: one token per member over the global plane,
  // the same pattern as the skeleton edge-set dissemination. After this,
  // ball1/gw1/pairs are free local computation from the public E_S.
  std::vector<std::vector<token2>> tokens(net.n());
  for (u32 j = 0; j < n_s2; ++j)
    tokens[sk.nodes[ss.members[j]]].push_back(
        {(u64{ss.members[j]} << 32) | j, 0});
  disseminate(net, std::move(tokens));

  // ball1: h1-hop all-sources exploration over G_S (explicit adjacency).
  sparse_exploration_result ball = explore_adjacency(sk.edges, h1, net.executor());
  ss.ball_offsets = std::move(ball.offsets);
  ss.ball_entries = std::move(ball.entries);

  // gw1 = ball1 filtered to members, re-indexed to super indices.
  ss.gw_offsets.assign(u64{n_s} + 1, 0);
  for (u32 s1 = 0; s1 < n_s; ++s1) {
    u64 cnt = 0;
    for (u64 k = ss.ball_offsets[s1]; k < ss.ball_offsets[s1 + 1]; ++k)
      cnt += ss.index_of[ss.ball_entries[k].source] !=
             super_skeleton_result::npos;
    ss.gw_offsets[s1 + 1] = ss.gw_offsets[s1] + cnt;
  }
  ss.gateways.resize(ss.gw_offsets[n_s]);
  net.executor().for_nodes(n_s, [&](u32 s1) {
    source_distance* at = ss.gateways.data() + ss.gw_offsets[s1];
    for (u64 k = ss.ball_offsets[s1]; k < ss.ball_offsets[s1 + 1]; ++k) {
      const exploration_entry& e = ss.ball_entries[k];
      const u32 s2 = ss.index_of[e.source];
      if (s2 == super_skeleton_result::npos) continue;
      *at++ = {s2, e.dist, e.first_hop};
    }
  });

  // Exact super-pair distances: Dijkstra over the full skeleton graph from
  // each member (members' rows are disjoint — node-parallel).
  const skeleton_csr csr(sk.edges);
  ss.pairs.assign(u64{n_s2} * n_s2, kInfDist);
  net.executor().for_nodes(n_s2, [&](u32 i) {
    std::vector<u64> dist;
    dijkstra_on_csr(csr, ss.members[i], dist);
    u64* row = ss.pairs.data() + u64{i} * n_s2;
    for (u32 j = 0; j < n_s2; ++j) row[j] = dist[ss.members[j]];
  });
  return ss;
}

}  // namespace hybrid
