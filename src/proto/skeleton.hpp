// Skeleton graphs (paper Appendix C, Algorithm 6).
//
// V_S ⊆ V is sampled with probability p; skeleton edges connect sampled
// nodes within h = ⌈ξ·(1/p)·ln n⌉ hops and carry weight d_h(u, v). By
// Lemma C.1 every shortest path of G has a skeleton node at least every h
// hops w.h.p., so the skeleton preserves distances between its nodes
// (Lemma C.2) and every node has a skeleton node within h hops.
//
// The h rounds of limited Bellman–Ford also give every node v its h-hop
// distances d_h(v, s) to all nearby skeleton nodes — the "local exploration"
// every algorithm in Sections 3–5 builds on.
#pragma once

#include <vector>

#include "proto/flood.hpp"
#include "sim/hybrid_net.hpp"

namespace hybrid {

struct skeleton_result {
  std::vector<u32> nodes;     ///< V_S, sorted node IDs
  std::vector<u32> index_of;  ///< node ID → skeleton index, or npos
  static constexpr u32 npos = ~u32{0};
  u32 h = 0;                  ///< hop budget used
  double sample_prob = 0.0;

  /// Skeleton adjacency: edges[i] = (other skeleton index, weight d_h).
  std::vector<std::vector<std::pair<u32, u64>>> edges;
  /// Per node: (skeleton index, d_h(v, skeleton)) for skeletons within h
  /// hops, exactly what the h-round exploration teaches v.
  std::vector<std::vector<source_distance>> near;

  bool is_skeleton(u32 v) const { return index_of[v] != npos; }
};

/// Algorithm 6. `forced` nodes (e.g. the SSSP source, Lemma 4.5) are always
/// included. Rounds consumed: h.
skeleton_result compute_skeleton(hybrid_net& net, double sample_prob,
                                 const std::vector<u32>& forced = {});

/// Local (free) computation every node can do once the skeleton edge set is
/// public: all-pairs distances within the skeleton graph. dist[i][j] indexed
/// by skeleton indices.
std::vector<std::vector<u64>> skeleton_apsp(const skeleton_result& sk);

/// Single-index variant: distances in S from skeleton index `src`.
std::vector<u64> skeleton_sssp(const skeleton_result& sk, u32 src);

}  // namespace hybrid
