// Skeleton graphs (paper Appendix C, Algorithm 6).
//
// V_S ⊆ V is sampled with probability p; skeleton edges connect sampled
// nodes within h = ⌈ξ·(1/p)·ln n⌉ hops and carry weight d_h(u, v). By
// Lemma C.1 every shortest path of G has a skeleton node at least every h
// hops w.h.p., so the skeleton preserves distances between its nodes
// (Lemma C.2) and every node has a skeleton node within h hops.
//
// The h rounds of limited Bellman–Ford also give every node v its h-hop
// distances d_h(v, s) to all nearby skeleton nodes — the "local exploration"
// every algorithm in Sections 3–5 builds on.
#pragma once

#include <vector>

#include "proto/flood.hpp"
#include "proto/sparse_exploration.hpp"
#include "sim/executor.hpp"
#include "sim/hybrid_net.hpp"

namespace hybrid {

struct skeleton_result {
  std::vector<u32> nodes;     ///< V_S, sorted node IDs
  std::vector<u32> index_of;  ///< node ID → skeleton index, or npos
  static constexpr u32 npos = ~u32{0};
  u32 h = 0;                  ///< hop budget used
  double sample_prob = 0.0;

  /// Skeleton adjacency: edges[i] = (other skeleton index, weight d_h).
  std::vector<std::vector<std::pair<u32, u64>>> edges;
  /// Per node: (skeleton index, d_h(v, skeleton)) for skeletons within h
  /// hops, exactly what the h-round exploration teaches v.
  std::vector<std::vector<source_distance>> near;

  bool is_skeleton(u32 v) const { return index_of[v] != npos; }
};

/// Algorithm 6. `forced` nodes (e.g. the SSSP source, Lemma 4.5) are always
/// included. Rounds consumed: h.
skeleton_result compute_skeleton(hybrid_net& net, double sample_prob,
                                 const std::vector<u32>& forced = {});

/// Local (free) computation every node can do once the skeleton edge set is
/// public: all-pairs distances within the skeleton graph. dist[i][j] indexed
/// by skeleton indices. The adjacency is hoisted into one flat CSR and the
/// per-source Dijkstras run node-parallel on `ex` — each source's row is
/// private, so the result is bit-identical at every thread count (tested at
/// threads {1,2,8}).
std::vector<std::vector<u64>> skeleton_apsp(const skeleton_result& sk,
                                            round_executor& ex);
/// Convenience overload on a default executor (HYBRID_THREADS honored).
std::vector<std::vector<u64>> skeleton_apsp(const skeleton_result& sk);

/// Single-index variant: distances in S from skeleton index `src`.
std::vector<u64> skeleton_sssp(const skeleton_result& sk, u32 src);

/// The second sampling level (the recursion the paper's Section 4 machinery
/// admits): V_S2 ⊆ V_S sampled with probability `sample_prob` from the
/// skeleton, explored h1 hops over the SKELETON graph G_S. Everything here
/// is indexed in skeleton/super index space, mirroring skeleton_result one
/// level up.
struct super_skeleton_result {
  std::vector<u32> members;   ///< super members as level-1 indices, ascending
  std::vector<u32> index_of;  ///< level-1 index → super index, or npos
  static constexpr u32 npos = ~u32{0};
  u32 h1 = 0;  ///< hop budget over G_S
  double sample_prob = 0.0;

  /// ball1: per skeleton index s1 the h1-hop triples over G_S
  /// (source = level-1 index, dist = d_{h1,G_S}, via), CSR sorted by source.
  std::vector<u64> ball_offsets;  ///< size n_s + 1
  std::vector<exploration_entry> ball_entries;
  /// gw1: ball1 filtered to super members, re-indexed to super indices.
  std::vector<u64> gw_offsets;  ///< size n_s + 1
  std::vector<source_distance> gateways;
  /// Exact super-pair distances d_S(members[i], members[j]) within G_S,
  /// row-major n_s2 × n_s2 (Dijkstra over the full skeleton graph — level-2
  /// distances are NOT h1-truncated, exactly as level-1 pairs are exact).
  std::vector<u64> pairs;
};

/// Build the super skeleton: sample members from sk.nodes' per-node RNGs
/// (deterministic; forced to one member if the draw is empty so the level-2
/// table exists), disseminate the membership over the global network (one
/// token per member — the same announcement pattern as the skeleton edge
/// set), then derive ball1/gw1/pairs as free local computation from the
/// already-public E_S (the skeleton_apsp precedent). Node-parallel on the
/// net's executor, bit-identical at every thread count.
super_skeleton_result compute_super_skeleton(hybrid_net& net,
                                             const skeleton_result& sk,
                                             double sample_prob, u32 h1);

}  // namespace hybrid
