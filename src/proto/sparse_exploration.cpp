// Sparse h-hop exploration: the dense pull loops of proto/flood.cpp with
// the n-wide per-node distance vectors replaced by sparse_dist_maps. The
// round structure, pull order, relaxation condition, frontier filtering,
// charging, and early-exit round accounting are kept line-for-line
// equivalent, which is what makes the sparse path bit-identical to the
// dense one (the differential suite asserts it, triples and metrics both).
#include "proto/sparse_exploration.hpp"

#include <algorithm>
#include <tuple>

#include "proto/flood.hpp"
#include "util/assert.hpp"

namespace hybrid {

namespace {

/// Fibonacci multiplicative mix; sources are sequential small ints, so the
/// multiply spreads them across the probe table.
u32 hash_source(u32 source, u32 mask) {
  return static_cast<u32>((u64{source} * 0x9E3779B97F4A7C15ull) >> 32) & mask;
}

void require_distinct(const std::vector<u32>& sources, u32 n) {
  std::vector<u32> sorted(sources);
  std::sort(sorted.begin(), sorted.end());
  HYB_REQUIRE(std::adjacent_find(sorted.begin(), sorted.end()) == sorted.end(),
              "exploration sources must be distinct");
  HYB_REQUIRE(sorted.empty() || sorted.back() < n, "source out of range");
}

/// Sequential reliable replica of sparse_local_exploration's round loop —
/// the healed engine's referee. Pure function of the graph (no simulated
/// traffic, no randomness): per-node relaxation order, frontier filtering,
/// and the final source-sorted flatten match the executor path line for
/// line, so the result is the bit-identical canonical fixed point the
/// fault-free run would return. `weight_of` abstracts the unit-weight mode
/// (truncated_eccentricity floods hop counts, not weighted distances).
sparse_exploration_result reliable_exploration_reference(
    const graph& g, u32 h, const std::vector<u32>* sources, bool first_hops,
    bool unit_weights) {
  const u32 n = g.num_nodes();
  std::vector<sparse_dist_map> dist(n);
  std::vector<std::vector<source_distance>> frontier(n);
  if (sources) {
    for (u32 s : *sources) {
      dist[s].relax(s, 0, s);
      frontier[s].push_back({s, 0, s});
    }
  } else {
    for (u32 v = 0; v < n; ++v) {
      dist[v].relax(v, 0, v);
      frontier[v].push_back({v, 0, v});
    }
  }
  for (u32 r = 0; r < h; ++r) {
    std::vector<std::vector<source_distance>> next(n);
    bool any = false;
    for (u32 v = 0; v < n; ++v) {
      sparse_dist_map& dv = dist[v];
      for (const edge& e : g.neighbors(v)) {
        const u64 w = unit_weights ? 1 : e.weight;
        for (const source_distance& f : frontier[e.to])
          if (dv.relax(f.source, f.dist + w, e.to))
            next[v].push_back({f.source, f.dist + w, e.to});
      }
      next[v].erase(std::remove_if(next[v].begin(), next[v].end(),
                                   [&](const source_distance& sd) {
                                     return sd.dist != dv.dist_of(sd.source);
                                   }),
                    next[v].end());
      any = any || !next[v].empty();
    }
    frontier = std::move(next);
    if (!any) break;
  }
  sparse_exploration_result out;
  out.offsets.assign(n + 1, 0);
  for (u32 v = 0; v < n; ++v)
    out.offsets[v + 1] = out.offsets[v] + dist[v].size();
  out.entries.resize(out.offsets[n]);
  for (u32 v = 0; v < n; ++v) {
    const std::span<const exploration_entry> src = dist[v].entries();
    exploration_entry* at = out.entries.data() + out.offsets[v];
    std::copy(src.begin(), src.end(), at);
    if (!first_hops)
      for (u32 k = 0; k < src.size(); ++k) at[k].first_hop = ~u32{0};
    std::sort(at, at + src.size(),
              [](const exploration_entry& a, const exploration_entry& b) {
                return a.source < b.source;
              });
  }
  return out;
}

/// One Pareto-minimal (dist, hops) pair the healed engine holds for a
/// source, stamped with the merge iteration that accepted it — offering a
/// pair in any later iteration than stamp + 1 is a retransmission
/// (docs/FAULTS.md §3's `retransmitted` counter).
struct healed_pareto_entry {
  u64 dist;
  u32 hops;
  u32 stamp;
};

/// Per-node healed state: sources in insertion (discovery) order, each with
/// its dist-ascending / hops-strictly-descending Pareto set. Insertion
/// order is a pure function of the merge history, which is deterministic
/// and thread-count-invariant, so the per-edge offer enumeration (and with
/// it every fault draw index) is too. Lookup is a linear scan — healed runs
/// are test/bench sized, and the referee bounds the held set by the h-ball.
struct healed_source_sets {
  std::vector<u32> sources;
  std::vector<std::vector<healed_pareto_entry>> sets;

  u32 find(u32 source) const {
    for (u32 k = 0; k < sources.size(); ++k)
      if (sources[k] == source) return k;
    return ~u32{0};
  }
  bool dominated(u32 source, u64 dist, u32 hops) const {
    const u32 k = find(source);
    if (k == ~u32{0}) return false;
    for (const healed_pareto_entry& e : sets[k])
      if (e.dist <= dist && e.hops <= hops) return true;
    return false;
  }
  void insert(u32 source, u64 dist, u32 hops, u32 stamp) {
    u32 k = find(source);
    if (k == ~u32{0}) {
      k = static_cast<u32>(sources.size());
      sources.push_back(source);
      sets.emplace_back();
    }
    std::vector<healed_pareto_entry>& set = sets[k];
    set.erase(std::remove_if(set.begin(), set.end(),
                             [&](const healed_pareto_entry& e) {
                               return e.dist >= dist && e.hops >= hops;
                             }),
              set.end());
    auto pos = std::lower_bound(set.begin(), set.end(), dist,
                                [](const healed_pareto_entry& e, u64 d) {
                                  return e.dist < d;
                                });
    set.insert(pos, {dist, hops, stamp});
  }
};

/// One self-healing attempt: re-offer rounds until a crash-aware quiet
/// window, then validate against the referee's fixed point. Returns normally
/// on success; throws fault_failure on budget exhaustion or premature
/// stability (the caller retries with fresh fault draws — the round counter
/// moved). `rounds_spent` accumulates even on throw so the caller can
/// account every burned round as healing overhead.
void healed_exploration_attempt(hybrid_net& net, u32 h,
                                const std::vector<u32>* sources,
                                bool unit_weights,
                                const sparse_exploration_result& ref,
                                u64& rounds_spent) {
  const graph& g = net.g();
  const u32 n = g.num_nodes();
  const fault_options& fo = net.faults();
  round_executor& exec = net.executor();
  std::vector<healed_source_sets> cur(n);
  if (sources) {
    for (u32 s : *sources) cur[s].insert(s, 0, 0, 0);
  } else {
    for (u32 v = 0; v < n; ++v) cur[v].insert(v, 0, 0, 0);
  }
  // (source, dist, hops) acceptances staged per round, merged after the
  // barrier (steps read other nodes' cur, docs/CONCURRENCY.md).
  std::vector<std::vector<std::tuple<u32, u64, u32>>> add(n);
  std::vector<u8> changed(n, 0);
  std::vector<u64> dropped(n, 0);
  std::vector<u64> retx(n, 0);
  const u64 budget = u64{fo.heal_budget_mult} * std::max<u32>(h, 1) +
                     fo.heal_stability_rounds;
  u32 quiet = 0;
  u64 used = 0;
  while (quiet < fo.heal_stability_rounds) {
    if (used >= budget)
      throw fault_failure("local exploration healing budget exhausted");
    const u32 it = static_cast<u32>(++used);
    const u64 items = exec.sum_nodes(n, [&](u32 v) -> u64 {
      add[v].clear();
      dropped[v] = 0;
      retx[v] = 0;
      if (!net.is_up(v)) return 0;
      u64 mine = 0;
      for (const edge& e : g.neighbors(v)) {
        // Offered set: every held pair that can still be extended within
        // the hop budget. Enumerate once for the count (the adversarial
        // mode needs it), once for the pulls.
        const healed_source_sets& from = cur[e.to];
        u32 count = 0;
        for (const std::vector<healed_pareto_entry>& set : from.sets)
          for (const healed_pareto_entry& pe : set)
            if (pe.hops < h) ++count;
        mine += count;
        const u64 w = unit_weights ? 1 : e.weight;
        u32 idx = 0;
        for (u32 k = 0; k < from.sources.size(); ++k)
          for (const healed_pareto_entry& pe : from.sets[k]) {
            if (pe.hops >= h) continue;
            // A pair first crosses edges in the iteration after its merge;
            // any later crossing is a retransmission (counted whether or
            // not this copy is then dropped — it did cross the edge).
            if (pe.stamp + 1 < it) ++retx[v];
            if (net.local_drop(e.to, v, idx++, count)) {
              ++dropped[v];
              continue;
            }
            const u64 nd = pe.dist + w;
            const u32 nh = pe.hops + 1;
            if (!cur[v].dominated(from.sources[k], nd, nh))
              add[v].push_back({from.sources[k], nd, nh});
          }
      }
      return mine;
    });
    net.charge_local(items);
    u64 lost = 0;
    u64 re = 0;
    for (u32 v = 0; v < n; ++v) {
      lost += dropped[v];
      re += retx[v];
    }
    net.note_local_delivered(items - lost);
    net.note_local_dropped(lost);
    net.note_retransmitted(re);
    // Rounds always advance, even for advance_rounds=false callers: a
    // frozen counter would re-roll the same drops forever, so healing needs
    // real rounds (the caller surfaces them all via note_extra_rounds).
    net.advance_round();
    ++rounds_spent;
    exec.for_nodes(n, [&](u32 v) {
      changed[v] = 0;
      for (const auto& [s, nd, nh] : add[v]) {
        if (cur[v].dominated(s, nd, nh)) continue;
        cur[v].insert(s, nd, nh, it);
        changed[v] = 1;
      }
    });
    quiet = heal_next_quiet(net, exec, n, quiet, changed);
  }
  // Referee check: the healed support is a subset of the reliable one
  // (every held pair is realized by a ≤h-hop walk), so matching reached
  // counts plus matching front distances on every referee entry means the
  // healed state IS the fixed point. Anything less is premature stability.
  for (u32 v = 0; v < n; ++v) {
    const std::span<const exploration_entry> want = ref.reached(v);
    if (cur[v].sources.size() != want.size())
      throw fault_failure(
          "local exploration healing stabilized before reaching the h-ball");
    for (const exploration_entry& e : want) {
      const u32 k = cur[v].find(e.source);
      if (k == ~u32{0} || cur[v].sets[k].front().dist != e.dist)
        throw fault_failure(
            "local exploration healing stabilized before convergence");
    }
  }
}

}  // namespace

u64 sparse_dist_map::dist_of(u32 source) const {
  if (table_.empty()) return kInfDist;
  u32 i = hash_source(source, mask_);
  for (;;) {
    const u32 slot = table_[i];
    if (slot == 0) return kInfDist;
    if (entries_[slot - 1].source == source) return entries_[slot - 1].dist;
    i = (i + 1) & mask_;
  }
}

u32* sparse_dist_map::find_slot(u32 source) {
  u32 i = hash_source(source, mask_);
  for (;;) {
    u32& slot = table_[i];
    if (slot == 0 || entries_[slot - 1].source == source) return &slot;
    i = (i + 1) & mask_;
  }
}

bool sparse_dist_map::relax(u32 source, u64 nd, u32 via) {
  if (table_.empty()) grow();
  u32* slot = find_slot(source);
  if (*slot != 0) {
    exploration_entry& e = entries_[*slot - 1];
    if (nd >= e.dist) return false;
    e.dist = nd;
    e.first_hop = via;
    return true;
  }
  entries_.push_back({nd, source, via});
  *slot = static_cast<u32>(entries_.size());
  // Keep load factor under 1/2 so probe chains stay short.
  if (2 * entries_.size() >= table_.size()) grow();
  return true;
}

void sparse_dist_map::grow() {
  const u32 cap = table_.empty() ? 8 : static_cast<u32>(table_.size()) * 2;
  table_.assign(cap, 0);
  mask_ = cap - 1;
  for (u32 k = 0; k < entries_.size(); ++k)
    *find_slot(entries_[k].source) = k + 1;
}

void sparse_dist_map::clear() {
  entries_.clear();
  std::fill(table_.begin(), table_.end(), 0);
}

sparse_exploration_result healed_local_exploration(
    hybrid_net& net, u32 h, bool advance_rounds,
    const std::vector<u32>* sources, bool first_hops, bool unit_weights) {
  HYB_REQUIRE(net.local_faults_active(),
              "healed exploration requires an injected local fault plane");
  const u32 n = net.n();
  if (sources) require_distinct(*sources, n);
  // The referee fixed point is computed once — it is a pure function of the
  // graph, so retries only redraw the fault schedule, never the target.
  const sparse_exploration_result ref = reliable_exploration_reference(
      net.g(), h, sources, first_hops, unit_weights);
  const u64 nominal = advance_rounds ? h : 0;
  u64 spent = 0;
  for (u32 attempt = 1;; ++attempt) {
    try {
      healed_exploration_attempt(net, h, sources, unit_weights, ref, spent);
      break;
    } catch (const fault_failure&) {
      // Each retry sees fresh fault draws (the round counter moved), so
      // random schedules converge with overwhelming probability; only
      // adversarial ones exhaust the retries.
      if (attempt >= 4) {
        net.note_extra_rounds(spent);
        throw;
      }
    }
  }
  // Round-accounting parity with the reliable path: pad up to the nominal
  // budget and surface everything beyond it as healing overhead. With
  // advance_rounds=false the nominal budget is zero — the run-in-parallel
  // trick is unavailable under faults, so every round spent is overhead.
  for (; spent < nominal; ++spent) net.advance_round();
  if (spent > nominal) net.note_extra_rounds(spent - nominal);
  // Return the referee's canonical triples: bit-identical to the fault-free
  // run (the healed state was just validated to be the same fixed point,
  // but its first hops depend on the drop pattern; the referee's do not).
  return ref;
}

sparse_exploration_result sparse_local_exploration(
    hybrid_net& net, u32 h, bool advance_rounds,
    const std::vector<u32>* sources, bool first_hops) {
  if (net.local_faults_active())
    return healed_local_exploration(net, h, advance_rounds, sources,
                                    first_hops);
  const graph& g = net.g();
  const u32 n = g.num_nodes();
  std::vector<sparse_dist_map> dist(n);
  // As in the dense loops, frontier entries carry the value of the round
  // that produced them, so information moves exactly one hop per round;
  // source_distance::source holds the source NODE id here.
  std::vector<std::vector<source_distance>> frontier(n);
  if (sources) {
    require_distinct(*sources, n);
    for (u32 s : *sources) {
      dist[s].relax(s, 0, s);
      frontier[s].push_back({s, 0, s});
    }
  } else {
    for (u32 v = 0; v < n; ++v) {
      dist[v].relax(v, 0, v);
      frontier[v].push_back({v, 0, v});
    }
  }
  for (u32 r = 0; r < h; ++r) {
    std::vector<std::vector<source_distance>> next(n);
    const u64 items = net.executor().sum_nodes(n, [&](u32 v) -> u64 {
      u64 mine = 0;
      sparse_dist_map& dv = dist[v];
      for (const edge& e : g.neighbors(v)) {
        const std::vector<source_distance>& from = frontier[e.to];
        mine += from.size();
        for (const source_distance& f : from)
          if (dv.relax(f.source, f.dist + e.weight, e.to))
            next[v].push_back({f.source, f.dist + e.weight, e.to});
      }
      // Drop superseded entries — a later, smaller update for the same
      // source makes earlier queued ones redundant (same filter as the
      // dense loops; dv is final for the round once this step ends).
      next[v].erase(std::remove_if(next[v].begin(), next[v].end(),
                                   [&](const source_distance& sd) {
                                     return sd.dist != dv.dist_of(sd.source);
                                   }),
                    next[v].end());
      return mine;
    });
    net.charge_local(items);
    net.note_local_delivered(items);
    if (advance_rounds) net.advance_round();
    frontier = std::move(next);
    const bool any = net.executor().any_node(
        n, [&](u32 v) { return !frontier[v].empty(); });
    if (!any) {
      if (advance_rounds)
        for (u32 rest = r + 1; rest < h; ++rest) net.advance_round();
      break;
    }
  }
  // Flatten the per-node maps into the CSR arena, each node's triples
  // sorted by source id (canonical order, thread-count-invariant).
  sparse_exploration_result out;
  out.offsets.assign(n + 1, 0);
  for (u32 v = 0; v < n; ++v) out.offsets[v + 1] = out.offsets[v] + dist[v].size();
  out.entries.resize(out.offsets[n]);
  net.executor().for_nodes(n, [&](u32 v) {
    const std::span<const exploration_entry> src = dist[v].entries();
    exploration_entry* at = out.entries.data() + out.offsets[v];
    std::copy(src.begin(), src.end(), at);
    if (!first_hops)
      for (u32 k = 0; k < src.size(); ++k) at[k].first_hop = ~u32{0};
    std::sort(at, at + src.size(),
              [](const exploration_entry& a, const exploration_entry& b) {
                return a.source < b.source;
              });
  });
  return out;
}

sparse_exploration_result dense_local_exploration(
    hybrid_net& net, u32 h, bool advance_rounds,
    const std::vector<u32>* sources, bool first_hops) {
  if (net.local_faults_active())
    return healed_local_exploration(net, h, advance_rounds, sources,
                                    first_hops);
  const u32 n = net.n();
  sparse_exploration_result out;
  out.offsets.assign(n + 1, 0);
  if (!sources) {
    // The n² u32 first-hop matrix is only materialized when asked for.
    std::vector<std::vector<u32>> first_hop;
    const std::vector<std::vector<u64>> dist = full_local_exploration(
        net, h, advance_rounds, first_hops ? &first_hop : nullptr);
    for (u32 v = 0; v < n; ++v) {
      u64 reached = 0;
      for (u32 s = 0; s < n; ++s) reached += dist[v][s] != kInfDist;
      out.offsets[v + 1] = out.offsets[v] + reached;
    }
    out.entries.resize(out.offsets[n]);
    net.executor().for_nodes(n, [&](u32 v) {
      exploration_entry* at = out.entries.data() + out.offsets[v];
      for (u32 s = 0; s < n; ++s)
        if (dist[v][s] != kInfDist)
          *at++ = {dist[v][s], s, first_hops ? first_hop[v][s] : ~u32{0}};
    });
    return out;
  }
  require_distinct(*sources, n);
  const std::vector<std::vector<source_distance>> got =
      limited_bellman_ford(net, *sources, h, advance_rounds);
  for (u32 v = 0; v < n; ++v)
    out.offsets[v + 1] = out.offsets[v] + got[v].size();
  out.entries.resize(out.offsets[n]);
  net.executor().for_nodes(n, [&](u32 v) {
    exploration_entry* at = out.entries.data() + out.offsets[v];
    for (const source_distance& sd : got[v])
      *at++ = {sd.dist, (*sources)[sd.source],
               first_hops ? sd.via : ~u32{0}};
    std::sort(out.entries.data() + out.offsets[v], at,
              [](const exploration_entry& a, const exploration_entry& b) {
                return a.source < b.source;
              });
  });
  return out;
}

sparse_exploration_result explore_adjacency(
    const std::vector<std::vector<std::pair<u32, u64>>>& adj, u32 h,
    round_executor& ex) {
  const u32 n = static_cast<u32>(adj.size());
  std::vector<sparse_dist_map> dist(n);
  // Same pull-based frontier as sparse_local_exploration, minus the net:
  // frontier entries carry the value of the iteration that produced them,
  // so information moves one hop per iteration; `source` is the vertex
  // index of `adj` (its own id space).
  std::vector<std::vector<source_distance>> frontier(n);
  for (u32 v = 0; v < n; ++v) {
    dist[v].relax(v, 0, v);
    frontier[v].push_back({v, 0, v});
  }
  for (u32 r = 0; r < h; ++r) {
    std::vector<std::vector<source_distance>> next(n);
    ex.for_nodes(n, [&](u32 v) {
      sparse_dist_map& dv = dist[v];
      for (const auto& [to, w] : adj[v])
        for (const source_distance& f : frontier[to])
          if (dv.relax(f.source, f.dist + w, to))
            next[v].push_back({f.source, f.dist + w, to});
      next[v].erase(std::remove_if(next[v].begin(), next[v].end(),
                                   [&](const source_distance& sd) {
                                     return sd.dist != dv.dist_of(sd.source);
                                   }),
                    next[v].end());
    });
    frontier = std::move(next);
    if (!ex.any_node(n, [&](u32 v) { return !frontier[v].empty(); })) break;
  }
  sparse_exploration_result out;
  out.offsets.assign(n + 1, 0);
  for (u32 v = 0; v < n; ++v)
    out.offsets[v + 1] = out.offsets[v] + dist[v].size();
  out.entries.resize(out.offsets[n]);
  ex.for_nodes(n, [&](u32 v) {
    const std::span<const exploration_entry> src = dist[v].entries();
    exploration_entry* at = out.entries.data() + out.offsets[v];
    std::copy(src.begin(), src.end(), at);
    std::sort(at, at + src.size(),
              [](const exploration_entry& a, const exploration_entry& b) {
                return a.source < b.source;
              });
  });
  return out;
}

sparse_exploration_result run_local_exploration(hybrid_net& net, u32 h,
                                                bool advance_rounds,
                                                const std::vector<u32>* sources,
                                                bool first_hops) {
  // Both message-level paths assume reliable neighborhood reads; under
  // local-plane faults the healed engine takes over before either runs, so
  // the dense/sparse choice never changes fault behavior (docs/FAULTS.md).
  if (net.local_faults_active())
    return healed_local_exploration(net, h, advance_rounds, sources,
                                    first_hops);
  return resolve_exploration(net.options(), net.n()) == exploration_path::kDense
             ? dense_local_exploration(net, h, advance_rounds, sources,
                                       first_hops)
             : sparse_local_exploration(net, h, advance_rounds, sources,
                                        first_hops);
}

}  // namespace hybrid
