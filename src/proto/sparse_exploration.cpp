// Sparse h-hop exploration: the dense pull loops of proto/flood.cpp with
// the n-wide per-node distance vectors replaced by sparse_dist_maps. The
// round structure, pull order, relaxation condition, frontier filtering,
// charging, and early-exit round accounting are kept line-for-line
// equivalent, which is what makes the sparse path bit-identical to the
// dense one (the differential suite asserts it, triples and metrics both).
#include "proto/sparse_exploration.hpp"

#include <algorithm>

#include "proto/flood.hpp"
#include "util/assert.hpp"

namespace hybrid {

namespace {

/// Fibonacci multiplicative mix; sources are sequential small ints, so the
/// multiply spreads them across the probe table.
u32 hash_source(u32 source, u32 mask) {
  return static_cast<u32>((u64{source} * 0x9E3779B97F4A7C15ull) >> 32) & mask;
}

void require_distinct(const std::vector<u32>& sources, u32 n) {
  std::vector<u32> sorted(sources);
  std::sort(sorted.begin(), sorted.end());
  HYB_REQUIRE(std::adjacent_find(sorted.begin(), sorted.end()) == sorted.end(),
              "exploration sources must be distinct");
  HYB_REQUIRE(sorted.empty() || sorted.back() < n, "source out of range");
}

}  // namespace

u64 sparse_dist_map::dist_of(u32 source) const {
  if (table_.empty()) return kInfDist;
  u32 i = hash_source(source, mask_);
  for (;;) {
    const u32 slot = table_[i];
    if (slot == 0) return kInfDist;
    if (entries_[slot - 1].source == source) return entries_[slot - 1].dist;
    i = (i + 1) & mask_;
  }
}

u32* sparse_dist_map::find_slot(u32 source) {
  u32 i = hash_source(source, mask_);
  for (;;) {
    u32& slot = table_[i];
    if (slot == 0 || entries_[slot - 1].source == source) return &slot;
    i = (i + 1) & mask_;
  }
}

bool sparse_dist_map::relax(u32 source, u64 nd, u32 via) {
  if (table_.empty()) grow();
  u32* slot = find_slot(source);
  if (*slot != 0) {
    exploration_entry& e = entries_[*slot - 1];
    if (nd >= e.dist) return false;
    e.dist = nd;
    e.first_hop = via;
    return true;
  }
  entries_.push_back({nd, source, via});
  *slot = static_cast<u32>(entries_.size());
  // Keep load factor under 1/2 so probe chains stay short.
  if (2 * entries_.size() >= table_.size()) grow();
  return true;
}

void sparse_dist_map::grow() {
  const u32 cap = table_.empty() ? 8 : static_cast<u32>(table_.size()) * 2;
  table_.assign(cap, 0);
  mask_ = cap - 1;
  for (u32 k = 0; k < entries_.size(); ++k)
    *find_slot(entries_[k].source) = k + 1;
}

void sparse_dist_map::clear() {
  entries_.clear();
  std::fill(table_.begin(), table_.end(), 0);
}

sparse_exploration_result sparse_local_exploration(
    hybrid_net& net, u32 h, bool advance_rounds,
    const std::vector<u32>* sources, bool first_hops) {
  const graph& g = net.g();
  const u32 n = g.num_nodes();
  std::vector<sparse_dist_map> dist(n);
  // As in the dense loops, frontier entries carry the value of the round
  // that produced them, so information moves exactly one hop per round;
  // source_distance::source holds the source NODE id here.
  std::vector<std::vector<source_distance>> frontier(n);
  if (sources) {
    require_distinct(*sources, n);
    for (u32 s : *sources) {
      dist[s].relax(s, 0, s);
      frontier[s].push_back({s, 0, s});
    }
  } else {
    for (u32 v = 0; v < n; ++v) {
      dist[v].relax(v, 0, v);
      frontier[v].push_back({v, 0, v});
    }
  }
  for (u32 r = 0; r < h; ++r) {
    std::vector<std::vector<source_distance>> next(n);
    const u64 items = net.executor().sum_nodes(n, [&](u32 v) -> u64 {
      u64 mine = 0;
      sparse_dist_map& dv = dist[v];
      for (const edge& e : g.neighbors(v)) {
        const std::vector<source_distance>& from = frontier[e.to];
        mine += from.size();
        for (const source_distance& f : from)
          if (dv.relax(f.source, f.dist + e.weight, e.to))
            next[v].push_back({f.source, f.dist + e.weight, e.to});
      }
      // Drop superseded entries — a later, smaller update for the same
      // source makes earlier queued ones redundant (same filter as the
      // dense loops; dv is final for the round once this step ends).
      next[v].erase(std::remove_if(next[v].begin(), next[v].end(),
                                   [&](const source_distance& sd) {
                                     return sd.dist != dv.dist_of(sd.source);
                                   }),
                    next[v].end());
      return mine;
    });
    net.charge_local(items);
    if (advance_rounds) net.advance_round();
    frontier = std::move(next);
    const bool any = net.executor().any_node(
        n, [&](u32 v) { return !frontier[v].empty(); });
    if (!any) {
      if (advance_rounds)
        for (u32 rest = r + 1; rest < h; ++rest) net.advance_round();
      break;
    }
  }
  // Flatten the per-node maps into the CSR arena, each node's triples
  // sorted by source id (canonical order, thread-count-invariant).
  sparse_exploration_result out;
  out.offsets.assign(n + 1, 0);
  for (u32 v = 0; v < n; ++v) out.offsets[v + 1] = out.offsets[v] + dist[v].size();
  out.entries.resize(out.offsets[n]);
  net.executor().for_nodes(n, [&](u32 v) {
    const std::span<const exploration_entry> src = dist[v].entries();
    exploration_entry* at = out.entries.data() + out.offsets[v];
    std::copy(src.begin(), src.end(), at);
    if (!first_hops)
      for (u32 k = 0; k < src.size(); ++k) at[k].first_hop = ~u32{0};
    std::sort(at, at + src.size(),
              [](const exploration_entry& a, const exploration_entry& b) {
                return a.source < b.source;
              });
  });
  return out;
}

sparse_exploration_result dense_local_exploration(
    hybrid_net& net, u32 h, bool advance_rounds,
    const std::vector<u32>* sources, bool first_hops) {
  const u32 n = net.n();
  sparse_exploration_result out;
  out.offsets.assign(n + 1, 0);
  if (!sources) {
    // The n² u32 first-hop matrix is only materialized when asked for.
    std::vector<std::vector<u32>> first_hop;
    const std::vector<std::vector<u64>> dist = full_local_exploration(
        net, h, advance_rounds, first_hops ? &first_hop : nullptr);
    for (u32 v = 0; v < n; ++v) {
      u64 reached = 0;
      for (u32 s = 0; s < n; ++s) reached += dist[v][s] != kInfDist;
      out.offsets[v + 1] = out.offsets[v] + reached;
    }
    out.entries.resize(out.offsets[n]);
    net.executor().for_nodes(n, [&](u32 v) {
      exploration_entry* at = out.entries.data() + out.offsets[v];
      for (u32 s = 0; s < n; ++s)
        if (dist[v][s] != kInfDist)
          *at++ = {dist[v][s], s, first_hops ? first_hop[v][s] : ~u32{0}};
    });
    return out;
  }
  require_distinct(*sources, n);
  const std::vector<std::vector<source_distance>> got =
      limited_bellman_ford(net, *sources, h, advance_rounds);
  for (u32 v = 0; v < n; ++v)
    out.offsets[v + 1] = out.offsets[v] + got[v].size();
  out.entries.resize(out.offsets[n]);
  net.executor().for_nodes(n, [&](u32 v) {
    exploration_entry* at = out.entries.data() + out.offsets[v];
    for (const source_distance& sd : got[v])
      *at++ = {sd.dist, (*sources)[sd.source],
               first_hops ? sd.via : ~u32{0}};
    std::sort(out.entries.data() + out.offsets[v], at,
              [](const exploration_entry& a, const exploration_entry& b) {
                return a.source < b.source;
              });
  });
  return out;
}

sparse_exploration_result run_local_exploration(hybrid_net& net, u32 h,
                                                bool advance_rounds,
                                                const std::vector<u32>* sources,
                                                bool first_hops) {
  // Both implementations assume reliable neighborhood reads; a lossy run
  // would return silently wrong h-ball contents (docs/FAULTS.md).
  net.require_reliable_local("local exploration");
  return resolve_exploration(net.options(), net.n()) == exploration_path::kDense
             ? dense_local_exploration(net, h, advance_rounds, sources,
                                       first_hops)
             : sparse_local_exploration(net, h, advance_rounds, sources,
                                        first_hops);
}

}  // namespace hybrid
