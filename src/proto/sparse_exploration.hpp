// Neighborhood-bounded local exploration (the sparse counterpart of
// proto/flood.hpp's full_local_exploration / limited_bellman_ford).
//
// The paper's APSP/k-SSP algorithms spend their local phase on h-hop
// exploration. The dense primitives keep an n-wide distance vector per node
// — O(n²) memory by design — which dies long before n ≈ 10⁵ on sparse
// graphs even though each node only ever hears from its h-ball. This module
// stores exactly what a node learns: per node v an open-addressed flat map
// from source id to (dist, first_hop), so total memory is O(Σᵥ|ball_h(v)|)
// instead of O(n²). The sparse regime is where HYBRID shines (Feldmann et
// al. 2020, PAPERS.md), and the trick is sound because Kuhn & Schneider's
// "run local exploration in parallel" step only ever needs the h-ball.
//
// Equivalence contract (differentially tested in
// tests/sparse_exploration_test.cpp, gated in CI):
//   * the sparse path produces the same (source, dist, first_hop) triples
//     as the dense path, bit for bit, at every thread count;
//   * it charges the same local traffic and advances the same rounds —
//     the round loop is structurally identical, only the per-node distance
//     storage differs;
//   * tie-breaks are identical: the first neighbor in sorted adjacency
//     order that strictly improves a source's distance becomes the first
//     hop, exactly as in the dense pull loops (docs/CONCURRENCY.md §3).
#pragma once

#include <span>
#include <vector>

#include "sim/hybrid_net.hpp"

namespace hybrid {

/// One reached source at one node: d_h(v, source) plus v's first hop on a
/// d_h-realizing path toward it (self for the source itself). Field order
/// keeps the struct at 16 bytes — the unit the O(Σ|ball_h(v)|) bound counts.
struct exploration_entry {
  u64 dist;
  u32 source;     ///< source NODE id (not an index into a sources vector)
  u32 first_hop;  ///< neighbor toward the source; self at the source
  friend bool operator==(const exploration_entry&,
                         const exploration_entry&) = default;
};

/// Open-addressed flat map keyed by source id, holding each node's reached
/// set during an exploration. Entries live in a dense insertion-ordered
/// vector (cheap iteration and flattening); the power-of-two probe table
/// stores slot indices only. clear() keeps capacity so a map can be reused
/// as per-node scratch across explorations without reallocating.
class sparse_dist_map {
 public:
  /// d(source) as currently known, kInfDist when the source was never seen.
  u64 dist_of(u32 source) const;

  /// The relaxation primitive: adopt (nd, via) iff nd strictly improves on
  /// the current distance (absent counts as kInfDist). Returns true when it
  /// did — the exact condition the dense loops use to extend the frontier.
  bool relax(u32 source, u64 nd, u32 via);

  /// Reached sources in insertion (discovery) order.
  std::span<const exploration_entry> entries() const { return entries_; }
  u32 size() const { return static_cast<u32>(entries_.size()); }
  bool empty() const { return entries_.empty(); }

  /// Forget all entries but keep both arrays' capacity.
  void clear();

 private:
  u32* find_slot(u32 source);
  void grow();

  std::vector<exploration_entry> entries_;
  /// Probe table of entry index + 1 (0 = empty); size is a power of two.
  std::vector<u32> table_;
  u32 mask_ = 0;  ///< table_.size() - 1, 0 while the table is empty
};

/// Per-node reached sets in one flat CSR arena: node v's triples are
/// entries[offsets[v] .. offsets[v+1]), sorted by source id. Memory is
/// O(total_reached()) = O(Σᵥ|ball_h(v)|), never O(n²).
struct sparse_exploration_result {
  std::vector<u64> offsets;  ///< size n + 1
  std::vector<exploration_entry> entries;

  std::span<const exploration_entry> reached(u32 v) const {
    return {entries.data() + offsets[v], entries.data() + offsets[v + 1]};
  }
  u64 total_reached() const { return entries.size(); }
  friend bool operator==(const sparse_exploration_result&,
                         const sparse_exploration_result&) = default;
};

/// h rounds of exploration from `sources` (nullptr = every node explores,
/// the full_local_exploration workload; otherwise the limited_bellman_ford
/// workload — sources must be distinct). Per-node distance state lives in
/// sparse_dist_maps, so memory is bounded by the h-ball sizes. Round and
/// traffic accounting matches the dense primitives exactly; with
/// `advance_rounds` false only traffic is charged (the paper's
/// run-in-parallel trick, Lemma 4.3). With `first_hops` false every
/// entry's first_hop is ~0 — callers that only consume (source, dist)
/// spare the dense reference path its n² first-hop matrix, and the
/// cross-path bit-identity contract holds in either mode.
sparse_exploration_result sparse_local_exploration(
    hybrid_net& net, u32 h, bool advance_rounds,
    const std::vector<u32>* sources = nullptr, bool first_hops = true);

/// The dense reference path behind the same interface: runs
/// full_local_exploration (or limited_bellman_ford for a source subset)
/// and flattens the n-wide rows into the sparse triple format. O(n²)
/// memory — callers bound n; kept for small instances and for
/// differentially testing the sparse path.
sparse_exploration_result dense_local_exploration(
    hybrid_net& net, u32 h, bool advance_rounds,
    const std::vector<u32>* sources = nullptr, bool first_hops = true);

/// What the cores call: dispatches on resolve_exploration(net.options(),
/// net.n()). Both paths return identical triples and charge identical
/// rounds/messages, so the choice is a memory/speed trade only. Under
/// local-plane faults every entry point routes to healed_local_exploration
/// below, so the choice of path never changes fault behavior either.
sparse_exploration_result run_local_exploration(
    hybrid_net& net, u32 h, bool advance_rounds,
    const std::vector<u32>* sources = nullptr, bool first_hops = true);

/// h-hop all-sources exploration over an EXPLICIT adjacency list — free
/// local computation, no hybrid_net, no rounds, no traffic charging. This
/// is the level-1 table builder of the two-level hierarchy: once the
/// skeleton edge set E_S is public (disseminated), every node can run this
/// over G_S locally, exactly like skeleton_apsp. `adj[v]` holds (neighbor,
/// weight) pairs; entries come back sorted by source INDEX (the vertices of
/// `adj` are their own id space), first_hop = the producing neighbor index
/// (self at the source). Deterministic and bit-identical at every thread
/// count of `ex` — the relaxation loop is the pull-based frontier of
/// limited_bellman_ford with per-node state private to each for_nodes item.
sparse_exploration_result explore_adjacency(
    const std::vector<std::vector<std::pair<u32, u64>>>& adj, u32 h,
    round_executor& ex);

/// Self-healing h-hop exploration for a faulty local plane (docs/FAULTS.md
/// §3) — the engine behind every exploration entry point (sparse, dense,
/// full_local_exploration, truncated_eccentricity) once
/// hybrid_net::local_faults_active(). Same correct-or-explicitly-failed
/// contract as the healed floods: per node it keeps Pareto-minimal
/// (dist, hops) sets per source with per-entry epoch stamps, re-offers every
/// extendable entry each round (stamped re-offers count as retransmitted)
/// until a crash-aware quiet window, then validates the converged state
/// against a sequential reliable recomputation of the ball-triple fixed
/// point Σ|ball_h(v)| and throws fault_failure on premature stability —
/// retrying up to four times with fresh fault draws (the round counter
/// moved) before giving up. On success it returns the referee's canonical
/// triples, so the result is bit-identical to the fault-free run, vias and
/// all.
///
/// Healing needs real rounds (a frozen round counter re-rolls the same
/// drops forever), so with `advance_rounds` false the paper's
/// run-in-parallel trick is unavailable: rounds advance anyway and every
/// one of them is surfaced through note_extra_rounds (the nominal budget is
/// h when advancing, 0 when not). With `unit_weights` every edge counts 1
/// (the truncated_eccentricity workload, which floods hop counts, not
/// weighted distances).
sparse_exploration_result healed_local_exploration(
    hybrid_net& net, u32 h, bool advance_rounds,
    const std::vector<u32>* sources = nullptr, bool first_hops = true,
    bool unit_weights = false);

}  // namespace hybrid
