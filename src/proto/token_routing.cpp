#include "proto/token_routing.hpp"

#include <algorithm>
#include <cmath>
#include <deque>

#include "proto/aggregation.hpp"
#include "proto/clustering.hpp"
#include "util/assert.hpp"
#include "util/flat_map.hpp"

namespace hybrid {

namespace {

constexpr u32 kTokenTag = 0x7071;    // sender-helper → intermediate
constexpr u32 kRequestTag = 0x7072;  // receiver-helper → intermediate
constexpr u32 kAnswerTag = 0x7073;   // intermediate → receiver-helper
constexpr u32 kTokAckTag = 0x7074;   // intermediate → sender-helper (faults)
constexpr u32 kMaxTokenIndex = 1u << 22;

/// Pack a label (s, r, i) into one word for flooding and messages.
u64 pack_label(u32 s, u32 r, u32 i) {
  HYB_REQUIRE(s < (1u << 21) && r < (1u << 21) && i < kMaxTokenIndex,
              "label component out of packing range");
  return (u64{s} << 43) | (u64{r} << 22) | i;
}
u32 label_s(u64 p) { return static_cast<u32>(p >> 43); }
u32 label_r(u64 p) { return static_cast<u32>((p >> 22) & ((1u << 21) - 1)); }
u32 label_i(u64 p) { return static_cast<u32>(p & (kMaxTokenIndex - 1)); }

struct helper_task {
  u64 label;    // packed (s, r, i)
  u64 payload;  // valid only on the sender side
};

/// Canonical balanced share: tasks sorted by label, helper with position
/// `pos` among `count` takes indices ≡ pos (mod count). Both the owner and
/// its helpers can compute this locally (Fact 2.4's "balanced assignment").
void take_share(std::vector<helper_task>& all, u32 pos, u32 count,
                std::vector<helper_task>& out) {
  std::sort(all.begin(), all.end(),
            [](const helper_task& x, const helper_task& y) {
              return x.label < y.label;
            });
  for (u32 j = pos; j < all.size(); j += count) out.push_back(all[j]);
}

}  // namespace

namespace {

/// β = 2µ⌈log n⌉: the ruling set's domination-radius guarantee, the only
/// radius the charged stand-in can budget floods by (the simulated path
/// floods by the tighter measured max_radius).
u64 charged_beta(u32 mu, u32 n) { return u64{2} * mu * id_bits(n); }

/// One intra-cluster flood's round budget: 2β+1 reaches the whole cluster.
u64 charged_flood_budget(u32 mu, u32 n) { return 2 * charged_beta(mu, n) + 1; }

/// Rounds the Algorithm 1 construction for one helper side is budgeted at
/// (DESIGN.md deviation 9's charged stand-in): the (2µ+1, 2µ⌈log n⌉)-ruling
/// set, the β-round cluster-assignment flood, and the two intra-cluster
/// floods of 2β+1 rounds each (member discovery + helper announcement).
u64 charged_setup_rounds(u32 mu, u32 n) {
  if (mu <= 1) return 0;
  return 2 * charged_beta(mu, n) + 2 * charged_flood_budget(mu, n);
}

}  // namespace

routing_context build_routing_context(hybrid_net& net, routing_spec spec) {
  const u64 start = net.round();
  routing_context ctx;
  ctx.mu_s = helper_mu(spec.k_s, spec.p_s);
  ctx.mu_r = helper_mu(spec.k_r, spec.p_r);
  ctx.spec = std::move(spec);
  if (net.config().charged_token_routing) {
    // Charged stand-in (DESIGN.md deviation 9): pay the construction's
    // round budget and the setup floods' local traffic in closed form; the
    // helper families stay empty and are never consulted. No hash is drawn
    // (the stand-in consumes no public randomness).
    const u32 n = net.n();
    for (const u32 mu : {ctx.mu_s, ctx.mu_r}) {
      net.charge_rounds(charged_setup_rounds(mu, n));
      // The two intra-cluster floods move every node's record through its
      // cluster: n records for a 2β+1-round budget, twice.
      if (mu > 1) {
        const u64 items = 2 * u64{n} * charged_flood_budget(mu, n);
        net.charge_local(items);
        // Closed-form budgets are reliability-abstracted: the whole charge
        // counts as delivered (run_metrics::local_delivered).
        net.note_local_delivered(items);
      }
    }
    // Hash-seed broadcast, charged as one aggregation (Lemma B.2).
    net.charge_rounds(aggregation_rounds(n));
    net.charge_global(n, n);
    ctx.setup_rounds = net.round() - start;
    return ctx;
  }
  ctx.sender_helpers = compute_helpers(net, ctx.spec.senders, ctx.mu_s);
  ctx.receiver_helpers = compute_helpers(net, ctx.spec.receivers, ctx.mu_r);
  // Public hash: the O(log² n)-bit seed comes from the shared randomness
  // (broadcastable in Õ(1) rounds, Lemma 2.3; we charge one aggregation's
  // worth of rounds as the broadcast).
  ctx.hash.emplace(net.hash_independence(), net.public_rng());
  global_aggregate(net, agg_op::max,
                   std::vector<u64>(net.n(), ctx.hash->seed_bits()));
  ctx.setup_rounds = net.round() - start;
  return ctx;
}

/// The charged stand-in's delivery: validate exactly as the simulated path
/// does, hand every token to its receiver slot directly (sorted by
/// (sender, index) — a canonical order; the simulated path's order is
/// unspecified), and charge Theorem 2.2's round/message/flood accounting in
/// closed form.
static std::vector<std::vector<routed_token>> charged_route_tokens(
    hybrid_net& net, routing_context& ctx,
    std::vector<std::vector<routed_token>>& by_sender) {
  const u32 n = net.n();
  const routing_spec& spec = ctx.spec;
  std::vector<u32> receiver_pos(n, ~u32{0});
  for (u32 i = 0; i < spec.receivers.size(); ++i)
    receiver_pos[spec.receivers[i]] = i;
  // The γ-saturated phases before a charged route (dissemination) leave
  // n·γ-slot arenas behind; nothing global moves while the stand-in runs,
  // so release them (memory only, they regrow on demand).
  net.trim_mailboxes();
  std::vector<std::vector<routed_token>> delivered(spec.receivers.size());
  // One pass: validate exactly like the simulated path, hand each token to
  // its receiver slot, release each sender slab as it is absorbed (the
  // whole point of this path is the n = 10⁵ memory budget).
  std::vector<u64> routed_to(spec.receivers.size(), 0);
  u64 total_routed = 0;
  for (u32 si = 0; si < by_sender.size(); ++si) {
    HYB_REQUIRE(by_sender[si].size() <= spec.k_s, "sender exceeds k_s tokens");
    for (const routed_token& t : by_sender[si]) {
      HYB_REQUIRE(t.sender == spec.senders[si],
                  "token sender does not match its slot");
      const u32 ri = receiver_pos[t.receiver];
      HYB_REQUIRE(ri != ~u32{0}, "token addressed to a non-receiver");
      // Self tokens are delivered directly and do not count against k_r,
      // exactly as on the simulated path; the label of a routed token must
      // be packable exactly as there too.
      if (t.sender != t.receiver) {
        (void)pack_label(t.sender, t.receiver, t.index);
        ++routed_to[ri];
        ++total_routed;
      }
      delivered[ri].push_back(t);
    }
    std::vector<routed_token>().swap(by_sender[si]);
  }
  for (u32 ri = 0; ri < spec.receivers.size(); ++ri) {
    HYB_REQUIRE(routed_to[ri] <= spec.k_r, "receiver exceeds k_r tokens");
    std::sort(delivered[ri].begin(), delivered[ri].end(),
              [](const routed_token& a, const routed_token& b) {
                return a.sender != b.sender ? a.sender < b.sender
                                            : a.index < b.index;
              });
  }
  if (total_routed == 0) return delivered;

  // Rounds: K/(n·γ) pipelined global rounds + the √k terms + the hand-off /
  // collection floods (budgeted at 2β+1 with β = 2µ⌈log n⌉) + the
  // completion AND-aggregation. Messages: token + request + answer per
  // routed token (2 + 1 + 2 payload words), plus one word per node for the
  // aggregation.
  const u64 gamma = net.global_cap();
  u64 rounds = ceil_div(total_routed, u64{n} * gamma);
  rounds += static_cast<u64>(std::ceil(std::sqrt(static_cast<double>(spec.k_s))));
  rounds += static_cast<u64>(std::ceil(std::sqrt(static_cast<double>(spec.k_r))));
  u64 flood_items = 0;
  if (ctx.mu_s > 1) {
    const u64 budget = charged_flood_budget(ctx.mu_s, n);
    rounds += budget;  // sender hand-off flood
    flood_items += total_routed * budget;
  }
  if (ctx.mu_r > 1) {
    const u64 budget = charged_flood_budget(ctx.mu_r, n);
    rounds += 2 * budget;  // receiver hand-off + final collection floods
    flood_items += 2 * total_routed * budget;
  }
  rounds += aggregation_rounds(n);
  net.charge_rounds(rounds);
  net.charge_local(flood_items);
  net.note_local_delivered(flood_items);  // closed-form budget: no loss model
  net.charge_global(3 * total_routed + n, 5 * total_routed + n);
  return delivered;
}

std::vector<std::vector<routed_token>> route_tokens(
    hybrid_net& net, routing_context& ctx,
    std::vector<std::vector<routed_token>> by_sender) {
  const u32 n = net.n();
  const routing_spec& spec = ctx.spec;
  HYB_REQUIRE(by_sender.size() == spec.senders.size(),
              "token batch must align with the sender list");
  if (net.config().charged_token_routing) {
    // The stand-in moves no real messages, so there is nothing to drop and
    // nothing to heal — its closed-form budgets cannot model any fault
    // plane (docs/FAULTS.md).
    if (net.faults_active())
      throw fault_unsupported(
          "charged token routing cannot run under injected faults: the "
          "stand-in charges closed-form budgets and moves no real messages, "
          "so there is nothing to drop or heal; set "
          "model_config::charged_token_routing=false to run the "
          "message-level healed path (docs/FAULTS.md)");
    return charged_route_tokens(net, ctx, by_sender);
  }
  // Fault degradation (docs/FAULTS.md): under a faulty global plane the
  // push/request/answer triangle gains an acknowledgement layer. An
  // intermediate acks every kTokenTag it receives and keeps answered tokens
  // in its store (re-requests must stay answerable); sender-helpers re-push
  // unacked tokens and receiver-helpers re-request unanswered labels every
  // few rounds (a full round trip, so in-flight acks get a chance to land
  // before the retransmission fires). Crashed nodes pause with their queues
  // intact. The progress guard becomes a heal budget: exhausting it throws
  // fault_failure instead of tripping an invariant.
  const bool faulty = net.global_faults_active();

  std::vector<u32> receiver_pos(n, ~u32{0});
  for (u32 i = 0; i < spec.receivers.size(); ++i)
    receiver_pos[spec.receivers[i]] = i;

  std::vector<std::vector<routed_token>> delivered(spec.receivers.size());

  // ---- collect labels; deliver s == r tokens directly --------------------
  // label lists per sender position / receiver position.
  std::vector<std::vector<helper_task>> sender_tokens(spec.senders.size());
  std::vector<std::vector<helper_task>> receiver_labels(
      spec.receivers.size());
  u64 total_routed = 0;
  for (u32 si = 0; si < by_sender.size(); ++si) {
    HYB_REQUIRE(by_sender[si].size() <= spec.k_s,
                "sender exceeds k_s tokens");
    for (const routed_token& t : by_sender[si]) {
      HYB_REQUIRE(t.sender == spec.senders[si],
                  "token sender does not match its slot");
      const u32 ri = receiver_pos[t.receiver];
      HYB_REQUIRE(ri != ~u32{0}, "token addressed to a non-receiver");
      if (t.sender == t.receiver) {
        delivered[ri].push_back(t);
        continue;
      }
      const u64 lbl = pack_label(t.sender, t.receiver, t.index);
      sender_tokens[si].push_back({lbl, t.payload});
      receiver_labels[ri].push_back({lbl, 0});
      ++total_routed;
    }
    // The batch slab is fully absorbed; release it before the next grows
    // the helper-side structures (memory only — nothing observable).
    std::vector<routed_token>().swap(by_sender[si]);
  }
  for (u32 ri = 0; ri < spec.receivers.size(); ++ri)
    HYB_REQUIRE(receiver_labels[ri].size() <= spec.k_r,
                "receiver exceeds k_r tokens");
  if (total_routed == 0) return delivered;

  // ---- Algorithm 3: hand tokens to sender-helpers, labels to
  // receiver-helpers -------------------------------------------------------
  // send_tasks[v]: tokens v must push to intermediates;
  // want[v]: labels v must fetch from intermediates.
  std::vector<std::vector<helper_task>> send_tasks(n);
  std::vector<std::vector<helper_task>> want(n);

  // Algorithm 3 floods every owner's tokens through its whole cluster for
  // 2(µ_S+µ_R)⌈log n⌉ rounds and lets helpers pick their share. We charge
  // exactly those rounds and the flood's traffic, but deliver each helper's
  // canonical share directly — the flood gives all cluster members strictly
  // more knowledge than the share the helpers extract from it, so outcomes
  // are identical (see docs/DESIGN.md §4 on simulator shortcuts).
  auto distribute = [&](const helper_family& fam,
                        const std::vector<u32>& owners,
                        std::vector<std::vector<helper_task>>& tasks,
                        std::vector<std::vector<helper_task>>& dest) {
    if (fam.trivial()) {
      for (u32 i = 0; i < owners.size(); ++i) {
        for (const helper_task& t : tasks[i]) dest[owners[i]].push_back(t);
        std::vector<helper_task>().swap(tasks[i]);  // handed over; release
      }
      return;
    }
    const u32 flood_rounds = fam.clusters.flood_budget();
    u64 token_count = 0;
    for (u32 i = 0; i < owners.size(); ++i) {
      token_count += tasks[i].size();
      const auto& helpers = fam.helpers_of[i];
      for (u32 pos = 0; pos < helpers.size(); ++pos) {
        std::vector<helper_task> mine;
        take_share(tasks[i], pos, static_cast<u32>(helpers.size()), mine);
        for (const helper_task& t : mine) dest[helpers[pos]].push_back(t);
      }
      std::vector<helper_task>().swap(tasks[i]);  // handed over; release
    }
    net.charge_local(token_count * flood_rounds);
    // Budgeted intra-cluster flood (no per-item drop model): delivered in
    // full to keep the local ledger balanced.
    net.note_local_delivered(token_count * flood_rounds);
    for (u32 r = 0; r < flood_rounds; ++r) net.advance_round();
  };
  distribute(ctx.sender_helpers, spec.senders, sender_tokens, send_tasks);
  distribute(ctx.receiver_helpers, spec.receivers, receiver_labels, want);

  // ---- Algorithm 4: route via hash-chosen intermediates ------------------
  const kwise_hash& h = *ctx.hash;
  auto intermediate_of = [&](u64 lbl) {
    const u64 key = kwise_hash::encode_label(label_s(lbl), label_r(lbl),
                                             label_i(lbl), n, kMaxTokenIndex);
    return h.eval_to_range(key, n);
  };

  // Per-node intermediate storage and pending (unanswerable yet) requests —
  // open-addressed flat maps (util/flat_map.hpp): the round loop below does
  // a point lookup per received message, and node-based unordered_maps made
  // each one a heap-node cache miss on the exact path's hottest edge.
  std::vector<flat_u64_map<u64>> store(n);
  std::vector<flat_u64_map<std::vector<u32>>> pending(n);
  std::vector<std::deque<std::pair<u64, u32>>> answer_queue(n);
  // fetched[v]: tokens v obtained as receiver-helper.
  std::vector<std::vector<helper_task>> fetched(n);
  std::vector<u64> want_left(n, 0);
  std::vector<u64> send_cursor(n, 0), req_cursor(n, 0);
  for (u32 v = 0; v < n; ++v) want_left[v] = want[v].size();

  // Retransmission bookkeeping, allocated only under faults: per-task
  // pushed/acked flags and a label→index map to resolve acks (sender side),
  // per-label answered flags to dedup duplicate answers (receiver side).
  std::vector<std::vector<u8>> pushed, acked, requested, answered;
  std::vector<flat_u64_map<u32>> task_of, want_of;
  std::vector<u64> acked_left(n, 0), retx;
  if (faulty) {
    pushed.resize(n);
    acked.resize(n);
    requested.resize(n);
    answered.resize(n);
    task_of.resize(n);
    want_of.resize(n);
    retx.assign(n, 0);
    for (u32 v = 0; v < n; ++v) {
      pushed[v].assign(send_tasks[v].size(), 0);
      acked[v].assign(send_tasks[v].size(), 0);
      acked_left[v] = send_tasks[v].size();
      for (u32 i = 0; i < send_tasks[v].size(); ++i)
        task_of[v][send_tasks[v][i].label] = i;
      requested[v].assign(want[v].size(), 0);
      answered[v].assign(want[v].size(), 0);
      for (u32 i = 0; i < want[v].size(); ++i)
        want_of[v][want[v][i].label] = i;
    }
  }

  round_executor& exec = net.executor();
  // Read-only early-exit scan between barriers; cheaper sequential than as
  // a pool dispatch (it usually bails at the first busy node).
  auto phase_done = [&]() {
    if (faulty) {
      // Done = every token acked by its intermediate AND every label
      // answered; cursor position alone means nothing when sends can drop.
      for (u32 v = 0; v < n; ++v)
        if (acked_left[v] != 0 || want_left[v] != 0) return false;
      return true;
    }
    for (u32 v = 0; v < n; ++v)
      if (send_cursor[v] < send_tasks[v].size() || want_left[v] != 0)
        return false;
    return true;
  };

  const u64 guard0 =
      16 * (total_routed / std::max<u64>(1, n) + spec.k_s + spec.k_r + n) +
      64;
  const u64 guard_rounds =
      faulty ? u64{net.faults().heal_budget_mult} * guard0 : guard0;
  u64 spent = 0;
  // Every node plays its three roles against its own queues, cursors, and
  // send budget; the public hash is immutable, so both halves of the round
  // run node-parallel on the executor.
  while (!phase_done()) {
    if (faulty) {
      if (spent++ >= guard_rounds)
        throw fault_failure("token routing healing budget exhausted");
    } else {
      HYB_INVARIANT(spent++ < guard_rounds,
                    "token routing failed to make progress");
    }
    exec.for_nodes(n, [&](u32 v) {
      if (faulty && !net.is_up(v)) return;  // fail-pause: queues freeze
      // Intermediate role first: answer what we can.
      while (!answer_queue[v].empty() && net.global_budget(v) > 0) {
        auto [lbl, dst] = answer_queue[v].front();
        answer_queue[v].pop_front();
        const u64* tok = store[v].find(lbl);
        HYB_INVARIANT(tok != nullptr, "answering a missing token");
        net.try_send_global(
            global_msg::make(v, dst, kAnswerTag, {lbl, *tok}));
        // Under faults the answer may drop and the receiver re-request, so
        // the store must stay answerable.
        if (!faulty) store[v].erase(lbl);
      }
      // Sender-helper role: push tokens (keep a reserve for requests).
      const u32 reserve = net.global_cap() / 4;
      while (send_cursor[v] < send_tasks[v].size() &&
             net.global_budget(v) > reserve) {
        const u32 i = static_cast<u32>(send_cursor[v]++);
        if (faulty && acked[v][i]) continue;
        const helper_task& t = send_tasks[v][i];
        net.try_send_global(global_msg::make(
            v, intermediate_of(t.label), kTokenTag, {t.label, t.payload}));
        if (faulty) {
          if (pushed[v][i]) ++retx[v];
          pushed[v][i] = 1;
        }
      }
      // v-private release of a drained queue (an empty vector satisfies the
      // cursor checks above and in phase_done, so this is memory only).
      // Under faults the queue must survive for retransmission.
      if (!faulty && !send_tasks[v].empty() &&
          send_cursor[v] == send_tasks[v].size()) {
        std::vector<helper_task>().swap(send_tasks[v]);
        send_cursor[v] = 0;
      }
      // Receiver-helper role: request labels.
      while (req_cursor[v] < want[v].size() && net.global_budget(v) > 0) {
        const u32 i = static_cast<u32>(req_cursor[v]++);
        if (faulty && answered[v][i]) continue;
        const u64 lbl = want[v][i].label;
        net.try_send_global(
            global_msg::make(v, intermediate_of(lbl), kRequestTag, {lbl}));
        if (faulty) {
          if (requested[v][i]) ++retx[v];
          requested[v][i] = 1;
        }
      }
      if (!faulty && !want[v].empty() && req_cursor[v] == want[v].size()) {
        std::vector<helper_task>().swap(want[v]);
        req_cursor[v] = 0;
      }
      // Retransmission cadence: once the sweep finished but work remains
      // unacked/unanswered, rewind the cursor every 4th round — one full
      // push→ack (or request→answer) round trip.
      if (faulty && spent % 4 == 0) {
        if (acked_left[v] != 0 && send_cursor[v] >= send_tasks[v].size())
          send_cursor[v] = 0;
        if (want_left[v] != 0 && req_cursor[v] >= want[v].size())
          req_cursor[v] = 0;
      }
    });
    net.advance_round();
    exec.for_nodes(n, [&](u32 v) {
      if (faulty && !net.is_up(v)) return;
      for (const global_msg& m : net.global_inbox(v)) {
        switch (m.tag) {
          case kTokenTag: {
            store[v].emplace(m.w[0], m.w[1]);
            if (std::vector<u32>* waiters = pending[v].find(m.w[0])) {
              for (u32 dst : *waiters)
                answer_queue[v].push_back({m.w[0], dst});
              pending[v].erase(m.w[0]);
            }
            // Ack even duplicates — the previous ack may have dropped.
            // Best-effort: a lost ack just means one more re-push.
            if (faulty)
              net.try_send_global(
                  global_msg::make(v, m.src, kTokAckTag, {m.w[0]}));
            break;
          }
          case kRequestTag: {
            if (store[v].contains(m.w[0]))
              answer_queue[v].push_back({m.w[0], m.src});
            else
              pending[v][m.w[0]].push_back(m.src);
            break;
          }
          case kAnswerTag: {
            if (faulty) {
              const u32* idx = want_of[v].find(m.w[0]);
              HYB_INVARIANT(idx != nullptr, "answer for an unrequested label");
              if (answered[v][*idx]) break;  // duplicate answer
              answered[v][*idx] = 1;
            }
            fetched[v].push_back({m.w[0], m.w[1]});
            HYB_INVARIANT(want_left[v] > 0, "unexpected answer");
            --want_left[v];
            break;
          }
          case kTokAckTag: {
            const u32* idx = task_of[v].find(m.w[0]);
            HYB_INVARIANT(idx != nullptr, "ack for an unknown token");
            if (!acked[v][*idx]) {
              acked[v][*idx] = 1;
              HYB_INVARIANT(acked_left[v] > 0, "ack bookkeeping underflow");
              --acked_left[v];
            }
            break;
          }
          default:
            break;
        }
      }
    });
  }
  if (faulty) {
    u64 resent = 0;
    for (u32 v = 0; v < n; ++v) resent += retx[v];
    net.note_retransmitted(resent);
  }
  // Distributed completion detection, charged as one AND-aggregation.
  global_aggregate(net, agg_op::logical_and, std::vector<u64>(n, 1));

  // ---- final collection: receivers gather from their helpers -------------
  // Same simulator shortcut as `distribute`: the 2µ_R⌈log n⌉-round flood is
  // charged, the tokens are handed over directly.
  if (ctx.receiver_helpers.trivial()) {
    for (u32 ri = 0; ri < spec.receivers.size(); ++ri)
      for (const helper_task& t : fetched[spec.receivers[ri]])
        delivered[ri].push_back({label_s(t.label), label_r(t.label),
                                 label_i(t.label), t.payload});
  } else {
    const u32 flood_rounds = ctx.receiver_helpers.clusters.flood_budget();
    u64 token_count = 0;
    for (u32 v = 0; v < n; ++v) {
      token_count += fetched[v].size();
      for (const helper_task& t : fetched[v]) {
        const u32 ri = receiver_pos[label_r(t.label)];
        HYB_INVARIANT(ri != ~u32{0}, "fetched token has no receiver");
        delivered[ri].push_back({label_s(t.label), label_r(t.label),
                                 label_i(t.label), t.payload});
      }
      std::vector<helper_task>().swap(fetched[v]);  // handed over; release
    }
    net.charge_local(token_count * flood_rounds);
    // Budgeted intra-cluster flood (no per-item drop model): delivered in
    // full to keep the local ledger balanced.
    net.note_local_delivered(token_count * flood_rounds);
    for (u32 r = 0; r < flood_rounds; ++r) net.advance_round();
  }
  return delivered;
}

std::vector<std::vector<routed_token>> run_token_routing(
    hybrid_net& net, routing_spec spec,
    std::vector<std::vector<routed_token>> by_sender) {
  routing_context ctx = build_routing_context(net, std::move(spec));
  return route_tokens(net, ctx, std::move(by_sender));
}

}  // namespace hybrid
