// Token routing (paper Section 2.2: Algorithms 2–4, Theorem 2.2).
//
// A set S of senders must deliver point-to-point tokens to a set R of
// receivers (each sender ≤ k_S tokens, each receiver ≤ k_R tokens, receivers
// know the labels they expect). With helper sets of size µ_S and µ_R the
// protocol runs in Õ(K/n + √k_S + √k_R) rounds:
//
//   1. every sender hands its tokens to its helpers, and every receiver
//      hands its expected labels to its helpers, by intra-cluster flooding
//      (Algorithm 3; helpers self-select their balanced share from the
//      canonical order, so no extra coordination is needed);
//   2. sender-helpers push tokens to pseudo-random intermediate nodes
//      h(s, r, i); receiver-helpers request the labels they own from the
//      same intermediates, which answer as soon as they hold the token
//      (Algorithm 4). The hash is k-wise independent with k = Θ(log n), so
//      no node receives more than O(log n) messages per round w.h.p.
//      (Lemma D.2);
//   3. receivers collect their tokens from their helpers by intra-cluster
//      flooding.
//
// The context (helper families + public hash) depends only on (S, R, µ) and
// is reused across repeated batches — e.g. the T_A rounds of an embedded
// CLIQUE algorithm (docs/DESIGN.md deviation 4).
//
// Completion of the global phase is detected with one charged AND-
// aggregation (O(log n) rounds) instead of per-round pipelined checks; see
// docs/DESIGN.md §4.
#pragma once

#include <optional>
#include <vector>

#include "hash/kwise.hpp"
#include "proto/helper_sets.hpp"
#include "sim/hybrid_net.hpp"

namespace hybrid {

struct routing_spec {
  std::vector<u32> senders;
  std::vector<u32> receivers;
  /// Sampling probabilities of S and R (Theorem 2.2's p_S, p_R); they bound
  /// µ = ⌊min(√k, 1/p)⌋.
  double p_s = 1.0;
  double p_r = 1.0;
  /// Maximum tokens per sender / per receiver in any batch.
  u64 k_s = 1;
  u64 k_r = 1;
};

struct routed_token {
  u32 sender = 0;    ///< node ID
  u32 receiver = 0;  ///< node ID
  u32 index = 0;     ///< i of the label (s, r, i); distinct per (s, r)
  u64 payload = 0;
};

struct routing_context {
  routing_spec spec;
  u32 mu_s = 1;
  u32 mu_r = 1;
  helper_family sender_helpers;    // indexed like spec.senders
  helper_family receiver_helpers;  // indexed like spec.receivers
  std::optional<kwise_hash> hash;
  u64 setup_rounds = 0;  ///< rounds consumed building the context
};

/// Algorithm 2's setup: helper families for both sides plus the public hash
/// (its O(log² n)-bit seed is drawn from the shared public randomness).
routing_context build_routing_context(hybrid_net& net, routing_spec spec);

/// Route one batch. `by_sender[i]` are the tokens of spec.senders[i]; every
/// token's sender field must match. Returns the delivered tokens grouped by
/// receiver position (aligned with spec.receivers). Taken by value so large
/// batches can be std::moved in and released slab by slab as the protocol
/// absorbs them — at K = n·|V_S| tokens (the Theorem 1.1 workload at
/// n = 10⁵) holding caller copies alive through the whole route would
/// double the peak footprint.
std::vector<std::vector<routed_token>> route_tokens(
    hybrid_net& net, routing_context& ctx,
    std::vector<std::vector<routed_token>> by_sender);

/// Convenience: build a context and route a single batch (Theorem 2.2 as
/// one call).
std::vector<std::vector<routed_token>> run_token_routing(
    hybrid_net& net, routing_spec spec,
    std::vector<std::vector<routed_token>> by_sender);

}  // namespace hybrid
