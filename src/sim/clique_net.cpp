#include "sim/clique_net.hpp"

#include <algorithm>

#include "util/assert.hpp"

namespace hybrid {

clique_net::clique_net(u32 n, sim_options opts)
    // Initial slab width 16 (clamped to n): small enough that sparse
    // workloads never pay n² memory, large enough that the unit-test
    // cliques (n ≤ 16) start overflow-free; heavier senders trigger one
    // re-stride at the next barrier and are slab-resident from then on.
    : n_(n), exec_(opts), mail_(n, n, 16), faults_(opts.faults) {
  HYB_REQUIRE(n >= 2, "clique needs at least two nodes");
  HYB_REQUIRE(faults_.drop_global >= 0.0 && faults_.drop_global <= 1.0,
              "drop probability must lie in [0, 1]");
  for (const crash_event& c : faults_.crashes) {
    HYB_REQUIRE(c.node < n, "crash event node out of range");
    HYB_REQUIRE(c.down_round < c.up_round, "crash interval must be nonempty");
  }
  fault_on_ = faults_.global_faulty();
  has_crashes_ = !faults_.crashes.empty();
  if (fault_on_) {
    // No run seed on the clique simulator: the drop stream derives from
    // fault_seed alone (documented in clique_net.hpp).
    fault_base_ = fault_plane_base(0, faults_.fault_seed, kFaultPlaneClique);
    drop_filter_ = [this](u32 src, u32 idx, const clique_msg& m) {
      return drop(src, idx, m);
    };
  }
  if (has_crashes_) {
    down_cur_.assign(n, 0);
    down_next_.assign(n, 0);
    fill_down(down_cur_, 0);
  }
}

void clique_net::fill_down(std::vector<u8>& down, u64 round) const {
  std::fill(down.begin(), down.end(), 0);
  for (const crash_event& c : faults_.crashes)
    if (round >= c.down_round && round < c.up_round) down[c.node] = 1;
}

bool clique_net::drop(u32 src, u32 idx, const clique_msg& m) const {
  // Runs inside mail_.deliver() while advance_round closes round rounds_-1:
  // down_cur_ is the send round, down_next_ the delivery round.
  if (has_crashes_ && (down_cur_[src] || down_next_[m.dst])) return true;
  if (faults_.drop_global <= 0.0) return false;
  if (faults_.mode == fault_mode::kAdversarialPrefix)
    return idx < adversarial_prefix_count(faults_.drop_global,
                                          mail_.sends(src));
  return fault_roll(fault_draw(fault_base_, src, rounds_ - 1, idx),
                    faults_.drop_global);
}

void clique_net::send(const clique_msg& m) {
  HYB_REQUIRE(m.src < n_ && m.dst < n_, "endpoint out of range");
  HYB_INVARIANT(mail_.sends(m.src) < n_,
                "node exceeded the n-messages-per-round clique cap");
  mail_.push(m);
}

void clique_net::advance_round() {
  ++rounds_;
  if (has_crashes_) fill_down(down_next_, rounds_);
  mail_.deliver(exec_, fault_on_ ? &drop_filter_ : nullptr);
  if (has_crashes_) down_cur_.swap(down_next_);
  total_msgs_ += mail_.delivered_last_round();
  total_sent_ += mail_.sent_last_round();
  total_dropped_ += mail_.dropped_last_round();
  if (mail_.delivered_last_round() == 0) return;
  // Per-shard max into a reused scratch buffer (shard-order combine, max is
  // order-insensitive): same fused-reduction shape as hybrid_net, so clique
  // rounds are allocation-free after warm-up too.
  const u32 shards = exec_.shard_count(n_);
  recv_scratch_.assign(shards, 0);
  exec_.for_shards(n_, [&](u32 s, u32 begin, u32 end) {
    u64 best = 0;
    for (u32 v = begin; v < end; ++v)
      best = std::max(best, static_cast<u64>(mail_.inbox_size(v)));
    recv_scratch_[s] = best;
  });
  for (u64 best : recv_scratch_)
    max_recv_ = std::max(max_recv_, static_cast<u32>(best));
}

}  // namespace hybrid
