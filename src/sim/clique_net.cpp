#include "sim/clique_net.hpp"

#include <algorithm>

#include "util/assert.hpp"

namespace hybrid {

clique_net::clique_net(u32 n, sim_options opts)
    // Initial slab width 16 (clamped to n): small enough that sparse
    // workloads never pay n² memory, large enough that the unit-test
    // cliques (n ≤ 16) start overflow-free; heavier senders trigger one
    // re-stride at the next barrier and are slab-resident from then on.
    : n_(n), exec_(opts), mail_(n, n, 16) {
  HYB_REQUIRE(n >= 2, "clique needs at least two nodes");
}

void clique_net::send(const clique_msg& m) {
  HYB_REQUIRE(m.src < n_ && m.dst < n_, "endpoint out of range");
  HYB_INVARIANT(mail_.sends(m.src) < n_,
                "node exceeded the n-messages-per-round clique cap");
  mail_.push(m);
}

void clique_net::advance_round() {
  ++rounds_;
  mail_.deliver(exec_);
  total_msgs_ += mail_.delivered_last_round();
  if (mail_.delivered_last_round() == 0) return;
  // Per-shard max into a reused scratch buffer (shard-order combine, max is
  // order-insensitive): same fused-reduction shape as hybrid_net, so clique
  // rounds are allocation-free after warm-up too.
  const u32 shards = exec_.shard_count(n_);
  recv_scratch_.assign(shards, 0);
  exec_.for_shards(n_, [&](u32 s, u32 begin, u32 end) {
    u64 best = 0;
    for (u32 v = begin; v < end; ++v)
      best = std::max(best, static_cast<u64>(mail_.inbox_size(v)));
    recv_scratch_[s] = best;
  });
  for (u64 best : recv_scratch_)
    max_recv_ = std::max(max_recv_, static_cast<u32>(best));
}

}  // namespace hybrid
