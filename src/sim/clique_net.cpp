#include "sim/clique_net.hpp"

#include <algorithm>

#include "util/assert.hpp"

namespace hybrid {

clique_net::clique_net(u32 n, sim_options opts)
    : n_(n), exec_(opts), inbox_(n), outbox_(n), sends_(n, 0) {
  HYB_REQUIRE(n >= 2, "clique needs at least two nodes");
}

void clique_net::send(const clique_msg& m) {
  HYB_REQUIRE(m.src < n_ && m.dst < n_, "endpoint out of range");
  HYB_INVARIANT(sends_[m.src] < n_,
                "node exceeded the n-messages-per-round clique cap");
  ++sends_[m.src];
  outbox_[m.src].push_back(m);
}

void clique_net::advance_round() {
  ++rounds_;
  for (u32 v = 0; v < n_; ++v) {
    inbox_[v].clear();
    sends_[v] = 0;
  }
  for (u32 v = 0; v < n_; ++v) {
    total_msgs_ += outbox_[v].size();
    for (const clique_msg& m : outbox_[v]) inbox_[m.dst].push_back(m);
    outbox_[v].clear();
  }
  for (u32 v = 0; v < n_; ++v)
    max_recv_ = std::max(max_recv_, static_cast<u32>(inbox_[v].size()));
}

}  // namespace hybrid
