// CONGESTED CLIQUE simulator (paper Section 4, footnotes 4 and 9).
//
// Synchronous message passing on a complete graph: per round, every node may
// send one O(log n)-bit message to every other node; with Lenzen's routing
// the equivalent guarantee is n messages per node per round to arbitrary
// targets, which is what we enforce (send cap n, receive load recorded).
//
// This simulator is used (a) standalone to unit-test CLIQUE algorithms at
// the message level, and (b) as the semantic reference for the charged-round
// CLIQUE embedding into HYBRID (proto/clique_embed).
//
// Mailboxes are the flat-arena kind (sim/mailbox.hpp): sends write into a
// reused per-node slab and advance_round() delivers with the parallel
// counting sort, same determinism contract as the HYBRID simulator. Because
// the clique cap is n per node (an n² arena if preallocated), the outbox
// starts with a small slab and re-strides itself up to the observed peak,
// so sparse workloads stay small and all-to-all workloads converge to
// allocation-free rounds after warm-up.
#pragma once

#include <array>
#include <span>
#include <vector>

#include "sim/executor.hpp"
#include "sim/mailbox.hpp"
#include "util/bits.hpp"

namespace hybrid {

struct clique_msg {
  u32 src = 0;
  u32 dst = 0;
  u32 tag = 0;
  std::array<u64, 3> w{};
  u8 nw = 0;
};

class clique_net {
 public:
  explicit clique_net(u32 n, sim_options opts = {});

  u32 n() const { return n_; }
  u64 round() const { return rounds_; }
  u32 max_recv_per_round() const { return max_recv_; }
  u64 total_messages() const { return total_msgs_; }
  /// Fault accounting (sim/fault.hpp): sends entering delivery and sends
  /// lost to injected faults; total_sent() == total_messages() +
  /// total_dropped() always. The clique's drop stream derives from
  /// fault_options::fault_seed alone (the clique simulator has no run
  /// seed); fault_options::drop_global is its drop probability and the
  /// crash schedule applies unchanged.
  u64 total_sent() const { return total_sent_; }
  u64 total_dropped() const { return total_dropped_; }
  bool faults_active() const { return fault_on_; }
  bool is_up(u32 v) const { return !has_crashes_ || !down_cur_[v]; }

  /// Node-parallel round executor; same determinism contract as the HYBRID
  /// simulator (docs/CONCURRENCY.md).
  round_executor& executor() { return exec_; }

  /// Enqueue for delivery at the next advance_round(). Enforces the
  /// n-messages-per-node-per-round cap (Lenzen routing). Thread-safe across
  /// distinct src within a parallel step: writes are src-private, totals
  /// are accounted at delivery.
  void send(const clique_msg& m);
  u32 budget(u32 src) const { return n_ - mail_.sends(src); }

  void advance_round();
  /// Messages delivered to v at the last advance_round(), sorted by
  /// (src, send-index); valid until the next advance_round().
  std::span<const clique_msg> inbox(u32 v) const { return mail_.inbox(v); }
  /// Mailbox arena occupancy/allocation probe.
  mailbox_stats mailbox_stats_probe() const { return mail_.stats(); }

 private:
  bool drop(u32 src, u32 idx, const clique_msg& m) const;
  void fill_down(std::vector<u8>& down, u64 round) const;

  u32 n_;
  round_executor exec_;
  u64 rounds_ = 0;
  u64 total_msgs_ = 0;
  u64 total_sent_ = 0;
  u64 total_dropped_ = 0;
  u32 max_recv_ = 0;
  flat_mailbox<clique_msg> mail_;
  fault_options faults_;
  bool fault_on_ = false;
  bool has_crashes_ = false;
  u64 fault_base_ = 0;
  std::vector<u8> down_cur_;
  std::vector<u8> down_next_;
  flat_mailbox<clique_msg>::drop_filter drop_filter_;
  /// Per-shard receive-load maxima for advance_round's reduction; a member
  /// so steady-state rounds stay allocation-free.
  std::vector<u64> recv_scratch_;
};

}  // namespace hybrid
