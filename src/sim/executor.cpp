#include "sim/executor.hpp"

#include <algorithm>
#include <cstdlib>

#include "util/assert.hpp"

namespace hybrid {

u32 resolve_threads(const sim_options& opts) {
  if (opts.threads != 0) return opts.threads;
  if (const char* env = std::getenv("HYBRID_THREADS")) {
    char* end = nullptr;
    const long v = std::strtol(env, &end, 10);
    if (end != env && *end == '\0' && v > 0) return static_cast<u32>(v);
  }
  const u32 hw = std::thread::hardware_concurrency();
  return hw == 0 ? 1 : hw;
}

round_executor::round_executor(sim_options opts)
    : threads_(resolve_threads(opts)) {}

round_executor::~round_executor() {
  if (workers_.empty()) return;
  {
    std::lock_guard<std::mutex> lock(mu_);
    stop_ = true;
  }
  work_cv_.notify_all();
  for (std::thread& w : workers_) w.join();
}

void round_executor::spawn_workers() {
  // Lazily started on the first parallel job; threads_ - 1 workers plus the
  // calling thread process the shards.
  if (!workers_.empty()) return;
  workers_.reserve(threads_ - 1);
  for (u32 i = 0; i + 1 < threads_; ++i)
    workers_.emplace_back([this] { worker_loop(); });
}

void round_executor::worker_loop() {
  u64 seen_generation = 0;
  for (;;) {
    {
      std::unique_lock<std::mutex> lock(mu_);
      work_cv_.wait(lock, [&] {
        return stop_ || (generation_ != seen_generation && pending_shards_ > 0);
      });
      if (stop_) return;
      seen_generation = generation_;
    }
    run_job(seen_generation);
  }
}

void round_executor::run_job(u64 my_generation) {
  for (;;) {
    const std::function<void(u32, u32, u32)>* job = nullptr;
    u32 shard = 0, begin = 0, end = 0;
    {
      std::lock_guard<std::mutex> lock(mu_);
      // A generation mismatch means this worker raced a completed job; its
      // shards are gone, so there is nothing left to claim.
      if (generation_ != my_generation || next_shard_ >= job_shards_) return;
      shard = next_shard_++;
      begin = shard_begin(job_n_, shard);
      end = shard_begin(job_n_, shard + 1);
      job = job_;
    }
    try {
      if (begin < end) (*job)(shard, begin, end);
    } catch (...) {
      std::lock_guard<std::mutex> lock(mu_);
      if (!first_error_) first_error_ = std::current_exception();
    }
    bool last;
    {
      // The generation cannot have moved here: for_shards does not return
      // (and thus no new job can start) until pending_shards_ hits zero,
      // which requires this very decrement.
      std::lock_guard<std::mutex> lock(mu_);
      last = --pending_shards_ == 0;
    }
    if (last) done_cv_.notify_all();
  }
}

void round_executor::for_shards(u32 n,
                                const std::function<void(u32, u32, u32)>& body) {
  if (n == 0) return;
  const u32 shards = shard_count(n);
  if (shards <= 1) {
    body(0, 0, n);
    return;
  }
  spawn_workers();
  u64 gen;
  {
    std::lock_guard<std::mutex> lock(mu_);
    // Dispatch is not reentrant: a step callback calling back into the
    // executor would clobber the in-flight job and break the barrier.
    HYB_REQUIRE(job_ == nullptr,
                "nested round_executor dispatch from inside a step");
    job_ = &body;
    job_n_ = n;
    job_shards_ = shards;
    next_shard_ = 0;
    pending_shards_ = shards;
    first_error_ = nullptr;
    gen = ++generation_;
  }
  work_cv_.notify_all();
  run_job(gen);  // the caller is a worker too
  std::exception_ptr err;
  {
    std::unique_lock<std::mutex> lock(mu_);
    done_cv_.wait(lock, [&] { return pending_shards_ == 0; });
    job_ = nullptr;
    err = first_error_;
    first_error_ = nullptr;
  }
  if (err) std::rethrow_exception(err);
}

void round_executor::for_nodes(u32 n, const std::function<void(u32)>& step) {
  for_shards(n, [&](u32, u32 begin, u32 end) {
    for (u32 v = begin; v < end; ++v) step(v);
  });
}

u64 round_executor::sum_nodes(u32 n, const std::function<u64(u32)>& term) {
  if (n == 0) return 0;
  std::vector<u64> partial(shard_count(n), 0);
  for_shards(n, [&](u32 shard, u32 begin, u32 end) {
    u64 acc = 0;
    for (u32 v = begin; v < end; ++v) acc += term(v);
    partial[shard] = acc;
  });
  u64 total = 0;
  for (u64 p : partial) total += p;
  return total;
}

u64 round_executor::max_nodes(u32 n, const std::function<u64(u32)>& term) {
  if (n == 0) return 0;
  std::vector<u64> partial(shard_count(n), 0);
  for_shards(n, [&](u32 shard, u32 begin, u32 end) {
    u64 best = 0;
    for (u32 v = begin; v < end; ++v) best = std::max(best, term(v));
    partial[shard] = best;
  });
  u64 best = 0;
  for (u64 p : partial) best = std::max(best, p);
  return best;
}

bool round_executor::any_node(u32 n, const std::function<bool(u32)>& pred) {
  return sum_nodes(n, [&](u32 v) -> u64 { return pred(v) ? 1 : 0; }) != 0;
}

}  // namespace hybrid
