// Parallel round executor for the synchronous simulators.
//
// The HYBRID model (paper Section 1) is a synchronous round model: within a
// round, nodes act on the state of the *previous* round only, so the
// per-node protocol steps of one round are independent and can run
// concurrently. `round_executor` exploits exactly that structure — and
// nothing more:
//
//   * node IDs [0, n) are partitioned into contiguous shards, one per
//     worker thread (static sharding, no work stealing);
//   * each shard runs its nodes' step callbacks in ID order;
//   * the executor joins all shards before returning — the round barrier —
//     after which the caller may mutate shared state (advance_round()).
//
// Determinism contract (docs/CONCURRENCY.md): a step callback for node v
// may read any round-frozen shared state but write only v-private state
// (including v's outbox/budget inside hybrid_net). Under that discipline
// every quantity the simulation produces is bit-identical for any thread
// count, because each node's write sequence is a pure function of the
// frozen round state. Reductions (`sum_nodes`) accumulate per shard and
// combine over u64 addition, which is order-insensitive.
//
// Thread count resolution: sim_options{threads} wins when nonzero; else the
// HYBRID_THREADS environment variable; else std::thread::hardware_concurrency.
// One thread means strictly inline execution — no pool is ever spawned, so
// single-threaded runs behave exactly like the pre-executor simulator.
#pragma once

#include <algorithm>
#include <condition_variable>
#include <exception>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

#include "sim/fault.hpp"
#include "util/bits.hpp"

namespace hybrid {

/// Which h-hop local-exploration implementation the cores run
/// (proto/sparse_exploration.hpp). `kDense` is the original n-wide
/// per-node distance vectors (O(n²) memory, cache-friendly at small n);
/// `kSparse` bounds memory by the h-ball sizes instead. Both produce
/// bit-identical results and charge identical rounds/messages — the dense
/// path stays selectable for small n and for differential testing.
enum class exploration_path : u8 { kAuto = 0, kDense, kSparse };

/// Result-storage mode for the oracle-producing cores (core/dist_oracle.hpp):
/// `kDense` additionally materializes the n×n result matrices from the
/// distance labels (the pre-PR-5 output format), `kLabels` keeps only the
/// queryable per-node labels — O(Σ|label(v)|) memory instead of O(n²).
/// `kAuto` materializes up to kDenseExplorationMaxNodes nodes; beyond that
/// the matrices are exactly the memory wall the labels exist to remove.
enum class result_storage : u8 { kAuto = 0, kDense, kLabels };

/// Oracle hierarchy for the label-producing APSP core (core/apsp.hpp).
/// `kSingleLevel` is the Theorem 1.1 one-sided scheme: token-routed
/// n_s × n skeleton rows, exact everywhere a gateway exists but Õ(n^1.5)
/// label words for full coverage. `kTwoLevel` samples a super-skeleton over
/// the skeleton and stores the recursive two-sided composition
/// (label_scheme::kTwoLevel) instead of the rows — each level's table is
/// Õ(√ of the level below), which is what keeps full coverage at n = 10⁵
/// inside the 2 GB budget (ROADMAP; the `label_large` bench gates it).
enum class oracle_hierarchy : u8 { kSingleLevel = 0, kTwoLevel };

struct sim_options {
  /// Worker threads for node-parallel round steps. 0 = auto: the
  /// HYBRID_THREADS environment variable when set to a positive integer,
  /// else std::thread::hardware_concurrency().
  u32 threads = 0;
  /// Local-exploration implementation; kAuto picks kDense up to
  /// kDenseExplorationMaxNodes nodes and kSparse beyond.
  exploration_path exploration = exploration_path::kAuto;
  /// Whether APSP/k-SSP results carry dense matrices besides their labels.
  result_storage storage = result_storage::kAuto;
  /// Skeleton hierarchy depth for hybrid_apsp_exact (single-level rows vs
  /// the two-level recursive labels). Orthogonal to the knobs above; the
  /// other cores ignore it.
  oracle_hierarchy hierarchy = oracle_hierarchy::kSingleLevel;
  /// Fault injection: seeded message loss and node crash/recovery
  /// (sim/fault.hpp, docs/FAULTS.md). Default-constructed = disabled, and
  /// the simulators' fault-free paths are untouched.
  fault_options faults = {};
};

/// Largest n for which exploration_path::kAuto stays on the dense path;
/// also the result_storage::kAuto materialization cutoff. Calibrated from
/// measured dense/sparse crossover sweeps (docs/ARCHITECTURE.md §6.2):
/// the true discriminator is ball density, which is unknown at resolve
/// time, so this n bounds the regret instead — dense through 4096 costs
/// at most ~155 ms / ~183 MB against the sparsest measured workload while
/// keeping a 2.3–2.7× time-and-RSS win when balls saturate; 8192 would
/// quadruple the worst-case footprint, 2048 forfeits the saturated win.
inline constexpr u32 kDenseExplorationMaxNodes = 4096;

/// The exploration path `sim_options` resolves to for an n-node network.
inline exploration_path resolve_exploration(const sim_options& opts, u32 n) {
  if (opts.exploration != exploration_path::kAuto) return opts.exploration;
  return n <= kDenseExplorationMaxNodes ? exploration_path::kDense
                                        : exploration_path::kSparse;
}

/// Whether `sim_options` asks for dense result matrices at this n.
inline bool resolve_materialize(const sim_options& opts, u32 n) {
  if (opts.storage != result_storage::kAuto)
    return opts.storage == result_storage::kDense;
  return n <= kDenseExplorationMaxNodes;
}

/// The thread count `sim_options` resolves to (see above). Never 0.
u32 resolve_threads(const sim_options& opts);

class round_executor {
 public:
  explicit round_executor(sim_options opts = {});
  ~round_executor();

  round_executor(const round_executor&) = delete;
  round_executor& operator=(const round_executor&) = delete;

  u32 threads() const { return threads_; }

  /// The static shard partition for n nodes: min(threads, n) shards of
  /// ⌈n/shards⌉ contiguous IDs; shard s covers [shard_begin(n, s),
  /// shard_begin(n, s+1)) (tail shards may be empty). Exposed so
  /// barrier-phase code (flat_mailbox delivery) can mirror the exact
  /// partition for_shards uses.
  u32 shard_count(u32 n) const { return n == 0 ? 0 : std::min(threads_, n); }
  u32 shard_begin(u32 n, u32 shard) const {
    if (n == 0) return 0;
    const u32 chunk = static_cast<u32>(ceil_div(n, shard_count(n)));
    return std::min(n, shard * chunk);
  }

  /// Run `step(v)` for every v in [0, n); returns after ALL nodes finished
  /// (the round barrier). Steps must follow the determinism contract above.
  /// Exceptions thrown by steps are rethrown here (first one wins).
  /// Dispatching is not reentrant: a step must never call back into the
  /// executor (enforced — nested dispatch throws).
  void for_nodes(u32 n, const std::function<void(u32)>& step);

  /// Shard-granular variant: `body(shard, begin, end)` runs once per
  /// contiguous shard (`shard` ascending with `begin`). Use when the step
  /// needs shard-local scratch; ranges are a static partition of [0, n)
  /// and do not depend on scheduling.
  void for_shards(u32 n, const std::function<void(u32, u32, u32)>& body);

  /// Deterministic reduction: sum of `term(v)` over v in [0, n).
  /// Accumulated per shard, combined in shard order; u64 addition is
  /// order-insensitive, so the result is thread-count-invariant.
  u64 sum_nodes(u32 n, const std::function<u64(u32)>& term);

  /// Deterministic reduction: max of `term(v)` over v in [0, n); 0 when
  /// n == 0. Order-insensitive like sum_nodes, so thread-count-invariant.
  /// Note: the simulators' advance_round hot paths use a fused for_shards
  /// instantiation of this same shape (several counters in one pass, with
  /// a member scratch buffer) instead of calling this per counter; prefer
  /// max_nodes in protocol code, where one reduction per barrier is the
  /// common case.
  u64 max_nodes(u32 n, const std::function<u64(u32)>& term);

  /// True when `pred(v)` holds for at least one node (barrier included).
  bool any_node(u32 n, const std::function<bool(u32)>& pred);

 private:
  void spawn_workers();
  void worker_loop();
  void run_job(u64 my_generation);

  u32 threads_;

  // Pool state (untouched when threads_ == 1).
  std::vector<std::thread> workers_;
  std::mutex mu_;
  std::condition_variable work_cv_;
  std::condition_variable done_cv_;
  u64 generation_ = 0;
  bool stop_ = false;
  // Current job, valid while pending_shards_ > 0.
  const std::function<void(u32, u32, u32)>* job_ = nullptr;
  u32 job_n_ = 0;
  u32 job_shards_ = 0;
  u32 next_shard_ = 0;
  u32 pending_shards_ = 0;
  std::exception_ptr first_error_;
};

}  // namespace hybrid
