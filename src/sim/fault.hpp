// Seeded fault injection for the simulators (docs/FAULTS.md).
//
// The HYBRID model assumes perfectly reliable edges; this module adds the
// fault axis the ROADMAP asks for: seeded message loss on either plane
// (local edges, NCC global sends) and an optional per-round node
// crash/recovery schedule. Two design rules govern everything here:
//
//   * Determinism: every drop decision is a pure function of
//     (seed, fault_seed, plane, link, round, msg_idx) — a dedicated stream
//     chained through derive_seed, independent of scheduling, thread count,
//     and of how many draws anything else consumed. A run is bit-identical
//     per (seed, fault_seed, threads) triple and thread-count-invariant
//     like every other observable (docs/CONCURRENCY.md).
//   * Zero overhead when off: `fault_options{}` injects nothing and every
//     fault branch in the simulators is hoisted behind one cached bool, so
//     the fault-free hot paths are unchanged.
//
// Protocols degrade in one of two explicit ways (docs/FAULTS.md):
// self-healing stages re-send until convergence and throw `fault_failure`
// when their bounded budget runs out; stages without a healing path refuse
// up front with `fault_unsupported`. Results are correct or explicitly
// failed — never silently wrong.
#pragma once

#include <cmath>
#include <stdexcept>
#include <string>
#include <vector>

#include "util/bits.hpp"
#include "util/rng.hpp"

namespace hybrid {

enum class fault_mode : u8 {
  /// Each message is dropped independently with probability p.
  kRandom = 0,
  /// Adversarial prefix: of a node's `c` sends in a round, the first
  /// ⌈p·c⌉ are dropped — a deterministic worst-ish case (it always severs
  /// the same positions, so protocols that rely on send order must
  /// reshuffle or retransmit to make progress).
  kAdversarialPrefix,
};

/// One scheduled outage: `node` is down for rounds [down_round, up_round).
/// A down node sends nothing, receives nothing (both planes), but keeps its
/// protocol state — fail-pause, not fail-stop.
struct crash_event {
  u32 node = 0;
  u64 down_round = 0;
  u64 up_round = 0;
};

struct fault_options {
  /// Per-message drop probability on the NCC global plane (and the clique).
  double drop_global = 0.0;
  /// Per-item drop probability on LOCAL-mode edge crossings.
  double drop_local = 0.0;
  /// Extra seed mixed into the drop stream; (seed, fault_seed) together
  /// determine every fault decision.
  u64 fault_seed = 0;
  fault_mode mode = fault_mode::kRandom;
  /// Crash/recovery schedule, applied to both planes.
  std::vector<crash_event> crashes;
  /// Self-healing stages stop after this many consecutive rounds in which
  /// no node learned anything new. Early false stability has probability
  /// ≲ p^stability per pending item per window; the default keeps that
  /// negligible at the drop rates the tests and benches run.
  u32 heal_stability_rounds = 8;
  /// Healing round budget multiplier: a stage with fault-free budget B may
  /// spend up to heal_budget_mult·B rounds before throwing fault_failure.
  u32 heal_budget_mult = 64;

  bool global_faulty() const { return drop_global > 0.0 || !crashes.empty(); }
  bool local_faulty() const { return drop_local > 0.0 || !crashes.empty(); }
  bool enabled() const { return global_faulty() || local_faulty(); }
};

/// A self-healing stage exhausted its bounded retry/round budget (e.g. a
/// node is crashed for longer than the budget tolerates). The computation
/// is explicitly failed, never silently wrong.
class fault_failure : public std::runtime_error {
 public:
  explicit fault_failure(const std::string& what) : std::runtime_error(what) {}
};

/// The requested stage has no self-healing path under the active fault
/// planes and refuses to produce possibly-wrong results.
class fault_unsupported : public std::runtime_error {
 public:
  explicit fault_unsupported(const std::string& what)
      : std::runtime_error(what) {}
};

// ---- the fault stream ------------------------------------------------------
//
// fault_rng(seed, fault_seed, node/link, round, msg_idx): a splitmix chain
// through derive_seed. The per-plane base is precomputed once per network;
// each decision then costs three finalizer calls and no state.

inline constexpr u64 kFaultPlaneGlobal = 0x67;  // NCC sends in hybrid_net
inline constexpr u64 kFaultPlaneLocal = 0x6C;   // LOCAL edge crossings
inline constexpr u64 kFaultPlaneClique = 0x63;  // clique_net sends

inline u64 fault_plane_base(u64 seed, u64 fault_seed, u64 plane) {
  return derive_seed(derive_seed(derive_seed(seed, 0xFA17FA17), fault_seed),
                     plane);
}

/// The raw 64-bit draw for one message. `link` identifies the sender (global
/// plane) or the directed edge packed as (from << 32) | to (local plane);
/// `idx` is the message's position within that link's sends this round.
inline u64 fault_draw(u64 plane_base, u64 link, u64 round, u64 idx) {
  return derive_seed(derive_seed(derive_seed(plane_base, link), round), idx);
}

/// Bernoulli(p) decision from a draw, mirroring rng::next_double's mapping.
inline bool fault_roll(u64 draw, double p) {
  return static_cast<double>(draw >> 11) * 0x1.0p-53 < p;
}

/// kAdversarialPrefix: how many of `count` sends are dropped (the first ones).
inline u32 adversarial_prefix_count(double p, u32 count) {
  const u32 k = static_cast<u32>(std::ceil(p * static_cast<double>(count)));
  return k > count ? count : k;
}

}  // namespace hybrid
