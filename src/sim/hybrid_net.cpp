#include "sim/hybrid_net.hpp"

#include <algorithm>
#include <cmath>

#include "util/assert.hpp"

namespace hybrid {

global_msg global_msg::make(u32 src, u32 dst, u32 tag,
                            std::initializer_list<u64> words) {
  global_msg m;
  m.src = src;
  m.dst = dst;
  m.tag = tag;
  HYB_REQUIRE(words.size() <= m.w.size(), "payload exceeds message capacity");
  u8 i = 0;
  for (u64 x : words) m.w[i++] = x;
  m.nw = i;
  return m;
}

hybrid_net::hybrid_net(const graph& g, model_config cfg, u64 seed,
                       sim_options opts)
    : g_(&g),
      cfg_(cfg),
      exec_(opts),
      inbox_(g.num_nodes()),
      outbox_(g.num_nodes()),
      sends_this_round_(g.num_nodes(), 0),
      node_rng_(g.num_nodes()),
      seed_(seed),
      public_rng_(derive_seed(seed, ~u64{0})) {
  HYB_REQUIRE(g.num_nodes() >= 2, "HYBRID networks need at least two nodes");
  const u32 logn = id_bits(g.num_nodes());
  global_cap_ = std::max<u32>(
      1, static_cast<u32>(std::ceil(cfg.global_cap_mult * logn)));
  hash_independence_ = std::max<u32>(
      2, static_cast<u32>(std::ceil(cfg.hash_independence_mult * logn)));
  header_bits_ = 2 * logn;  // src + dst IDs
  if (cfg_.cut_side.size() == n()) cut_side_ = cfg_.cut_side;
}

void hybrid_net::advance_round() {
  // The round barrier: called from the orchestrating thread only, after the
  // executor joined all per-node steps (docs/CONCURRENCY.md).
  ++metrics_.rounds;
  u32 max_recv = 0;
  for (u32 v = 0; v < n(); ++v) {
    inbox_[v].clear();
    sends_this_round_[v] = 0;
  }
  // Two passes keep delivery independent of send order within the round.
  // Aggregate metrics are accounted here rather than at send time so that
  // try_send_global writes only src-private state during parallel steps.
  for (u32 v = 0; v < n(); ++v) {
    for (const global_msg& m : outbox_[v]) {
      ++metrics_.global_messages;
      metrics_.global_payload_words += m.nw;
      if (!cut_side_.empty() && cut_side_[m.src] != cut_side_[m.dst])
        metrics_.cut_bits += static_cast<u64>(m.nw) * 64 + header_bits_;
      inbox_[m.dst].push_back(m);
    }
    outbox_[v].clear();
  }
  for (u32 v = 0; v < n(); ++v)
    max_recv = std::max(max_recv, static_cast<u32>(inbox_[v].size()));
  metrics_.max_global_recv_per_round =
      std::max(metrics_.max_global_recv_per_round, max_recv);
}

bool hybrid_net::try_send_global(const global_msg& m) {
  HYB_REQUIRE(m.src < n() && m.dst < n(), "message endpoint out of range");
  HYB_INVARIANT(m.nw <= cfg_.max_payload_words,
                "payload exceeds the O(log n)-bit model cap");
  if (sends_this_round_[m.src] >= global_cap_) return false;
  ++sends_this_round_[m.src];
  outbox_[m.src].push_back(m);
  return true;
}

u32 hybrid_net::global_budget(u32 src) const {
  return global_cap_ - sends_this_round_[src];
}

std::span<const global_msg> hybrid_net::global_inbox(u32 v) const {
  return inbox_[v];
}

rng& hybrid_net::node_rng(u32 v) {
  HYB_REQUIRE(v < n(), "node out of range");
  if (!node_rng_[v]) node_rng_[v].emplace(derive_seed(seed_, v));
  return *node_rng_[v];
}

rng hybrid_net::round_rng(u32 v) const {
  HYB_REQUIRE(v < n(), "node out of range");
  // Stream ids: v for the persistent per-node streams, ~0 for the public
  // stream; the high bit keeps the per-round family disjoint from both.
  const u64 node_stream = derive_seed(seed_, (u64{1} << 63) | v);
  return rng(derive_seed(node_stream, metrics_.rounds));
}

void hybrid_net::begin_phase(std::string name) {
  close_phase();
  open_phase_ = phase_entry{std::move(name), 0, 0};
  phase_start_rounds_ = metrics_.rounds;
  phase_start_msgs_ = metrics_.global_messages;
}

void hybrid_net::close_phase() {
  if (!open_phase_) return;
  open_phase_->rounds = metrics_.rounds - phase_start_rounds_;
  open_phase_->global_messages = metrics_.global_messages - phase_start_msgs_;
  metrics_.phases.push_back(*open_phase_);
  open_phase_.reset();
}

run_metrics hybrid_net::snapshot() {
  close_phase();
  return metrics_;
}

void hybrid_net::set_cut(std::vector<u8> side) {
  HYB_REQUIRE(side.size() == n(), "cut must label every node");
  cut_side_ = std::move(side);
}

}  // namespace hybrid
