#include "sim/hybrid_net.hpp"

#include <algorithm>
#include <cmath>

#include "util/assert.hpp"

namespace hybrid {

global_msg global_msg::make(u32 src, u32 dst, u32 tag,
                            std::initializer_list<u64> words) {
  global_msg m;
  m.src = src;
  m.dst = dst;
  m.tag = tag;
  HYB_REQUIRE(words.size() <= m.w.size(), "payload exceeds message capacity");
  u8 i = 0;
  for (u64 x : words) m.w[i++] = x;
  m.nw = i;
  return m;
}

namespace {

u32 compute_global_cap(const model_config& cfg, u32 n) {
  return std::max<u32>(
      1, static_cast<u32>(std::ceil(cfg.global_cap_mult * id_bits(n))));
}

}  // namespace

hybrid_net::hybrid_net(const graph& g, model_config cfg, u64 seed,
                       sim_options opts)
    : g_(&g),
      cfg_(cfg),
      opts_(opts),
      exec_(opts),
      global_cap_(compute_global_cap(cfg, g.num_nodes())),
      // Slabs start at 8 slots, not γ: an idle or send-light network pays
      // O(n) idle memory instead of O(n·γ), and γ-saturating protocols
      // re-stride to γ once at the first barrier and are overflow- and
      // allocation-free from then on.
      mail_(g.num_nodes(), global_cap_, std::min<u32>(global_cap_, 8)),
      node_rng_(g.num_nodes()),
      seed_(seed),
      public_rng_(derive_seed(seed, ~u64{0})) {
  HYB_REQUIRE(g.num_nodes() >= 2, "HYBRID networks need at least two nodes");
  const u32 logn = id_bits(g.num_nodes());
  hash_independence_ = std::max<u32>(
      2, static_cast<u32>(std::ceil(cfg.hash_independence_mult * logn)));
  header_bits_ = 2 * logn;  // src + dst IDs
  // Stream ids: v for the persistent per-node streams, ~0 for the public
  // stream; the high bit keeps the per-round family disjoint from both.
  node_stream_.reserve(n());
  for (u32 v = 0; v < n(); ++v)
    node_stream_.push_back(derive_seed(seed, (u64{1} << 63) | v));
  if (cfg_.cut_side.size() == n()) cut_side_ = cfg_.cut_side;

  // Fault wiring (sim/fault.hpp): everything below stays dormant — and the
  // delivery filter stays null — with the default fault_options.
  const fault_options& fo = opts_.faults;
  HYB_REQUIRE(fo.drop_global >= 0.0 && fo.drop_global <= 1.0 &&
                  fo.drop_local >= 0.0 && fo.drop_local <= 1.0,
              "drop probabilities must lie in [0, 1]");
  for (const crash_event& c : fo.crashes) {
    HYB_REQUIRE(c.node < n(), "crash event node out of range");
    HYB_REQUIRE(c.down_round < c.up_round, "crash interval must be nonempty");
  }
  fault_global_ = fo.global_faulty();
  fault_local_ = fo.local_faulty();
  has_crashes_ = !fo.crashes.empty();
  if (fault_global_)
    fault_base_global_ = fault_plane_base(seed, fo.fault_seed,
                                          kFaultPlaneGlobal);
  if (fault_local_)
    fault_base_local_ = fault_plane_base(seed, fo.fault_seed,
                                         kFaultPlaneLocal);
  if (has_crashes_) {
    down_cur_.assign(n(), 0);
    down_next_.assign(n(), 0);
    fill_down(down_cur_, 0);
  }
  if (fault_global_)
    drop_filter_ = [this](u32 src, u32 idx, const global_msg& m) {
      return global_drop(src, idx, m);
    };
}

void hybrid_net::fill_down(std::vector<u8>& down, u64 round) const {
  std::fill(down.begin(), down.end(), 0);
  for (const crash_event& c : opts_.faults.crashes)
    if (round >= c.down_round && round < c.up_round) down[c.node] = 1;
}

bool hybrid_net::global_drop(u32 src, u32 idx, const global_msg& m) const {
  // Called from inside mail_.deliver() while advance_round is closing round
  // rounds-1: down_cur_ still describes the send round, down_next_ the
  // round being opened (the delivery round).
  if (has_crashes_ && (down_cur_[src] || down_next_[m.dst])) return true;
  const fault_options& fo = opts_.faults;
  if (fo.drop_global <= 0.0) return false;
  if (fo.mode == fault_mode::kAdversarialPrefix)
    return idx < adversarial_prefix_count(fo.drop_global, mail_.sends(src));
  return fault_roll(
      fault_draw(fault_base_global_, src, metrics_.rounds - 1, idx),
      fo.drop_global);
}

bool hybrid_net::local_drop(u32 from, u32 to, u32 idx, u32 count) const {
  if (has_crashes_ && (down_cur_[from] || down_cur_[to])) return true;
  const fault_options& fo = opts_.faults;
  if (fo.drop_local <= 0.0) return false;
  if (fo.mode == fault_mode::kAdversarialPrefix)
    return idx < adversarial_prefix_count(fo.drop_local, count);
  const u64 link = (u64{from} << 32) | to;
  return fault_roll(fault_draw(fault_base_local_, link, metrics_.rounds, idx),
                    fo.drop_local);
}

void hybrid_net::advance_round() {
  // The round barrier: called from the orchestrating thread only, after the
  // executor joined all per-node steps (docs/CONCURRENCY.md). Delivery is
  // the mailbox's parallel counting sort; it fixes inbox order as
  // (src, send-index), independent of send interleaving and thread count.
  ++metrics_.rounds;
  // Crash schedule: compute the opening round's bitmap before delivery
  // (global_drop reads both — sender down at send time, receiver down at
  // delivery), then promote it to current.
  if (has_crashes_) fill_down(down_next_, metrics_.rounds);
  mail_.deliver(exec_, fault_global_ ? &drop_filter_ : nullptr);
  if (has_crashes_) down_cur_.swap(down_next_);
  // Aggregate metrics are accounted here rather than at send time so that
  // try_send_global writes only src-private state during parallel steps.
  // The executor's sum/max reductions are order-insensitive, so every
  // counter stays thread-count-invariant (docs/CONCURRENCY.md §5).
  const u64 delivered = mail_.delivered_last_round();
  metrics_.global_messages += delivered;
  metrics_.global_sent += mail_.sent_last_round();
  metrics_.global_dropped += mail_.dropped_last_round();
  if (delivered == 0) return;
  // One fused parallel pass over the delivered slices: per-shard
  // {payload words, cut bits, max recv}, combined in shard order. Sum and
  // max are order-insensitive, so every counter is thread-count-invariant
  // (docs/CONCURRENCY.md §5), and each message is visited exactly once.
  const u32 shards = exec_.shard_count(n());
  delivery_scratch_.assign(shards, {});
  const u8* cut = cut_side_.empty() ? nullptr : cut_side_.data();
  exec_.for_shards(n(), [&](u32 s, u32 begin, u32 end) {
    delivery_acc a;
    for (u32 v = begin; v < end; ++v) {
      const auto box = mail_.inbox(v);
      a.max_recv = std::max(a.max_recv, static_cast<u64>(box.size()));
      for (const global_msg& m : box) {
        a.payload_words += m.nw;
        if (cut && cut[m.src] != cut[m.dst])
          a.cut_bits += static_cast<u64>(m.nw) * 64 + header_bits_;
      }
    }
    delivery_scratch_[s] = a;
  });
  delivery_acc total;
  for (const delivery_acc& a : delivery_scratch_) {
    total.payload_words += a.payload_words;
    total.cut_bits += a.cut_bits;
    total.max_recv = std::max(total.max_recv, a.max_recv);
  }
  metrics_.global_payload_words += total.payload_words;
  metrics_.cut_bits += total.cut_bits;
  metrics_.max_global_recv_per_round =
      std::max(metrics_.max_global_recv_per_round,
               static_cast<u32>(total.max_recv));
}

bool hybrid_net::try_send_global(const global_msg& m) {
  HYB_REQUIRE(m.src < n() && m.dst < n(), "message endpoint out of range");
  HYB_INVARIANT(m.nw <= cfg_.max_payload_words,
                "payload exceeds the O(log n)-bit model cap");
  if (mail_.sends(m.src) >= global_cap_) return false;
  mail_.push(m);
  return true;
}

u32 hybrid_net::global_budget(u32 src) const {
  return global_cap_ - mail_.sends(src);
}

std::span<const global_msg> hybrid_net::global_inbox(u32 v) const {
  return mail_.inbox(v);
}

rng& hybrid_net::node_rng(u32 v) {
  HYB_REQUIRE(v < n(), "node out of range");
  if (!node_rng_[v]) node_rng_[v].emplace(derive_seed(seed_, v));
  return *node_rng_[v];
}

rng hybrid_net::round_rng(u32 v) const {
  HYB_REQUIRE(v < n(), "node out of range");
  return rng(derive_seed(node_stream_[v], metrics_.rounds));
}

void hybrid_net::begin_phase(std::string name) {
  close_phase();
  open_phase_ = phase_entry{std::move(name)};
  phase_start_rounds_ = metrics_.rounds;
  phase_start_msgs_ = metrics_.global_messages;
  phase_start_retx_ = metrics_.retransmitted;
  phase_start_extra_ = metrics_.extra_rounds;
}

void hybrid_net::close_phase() {
  if (!open_phase_) return;
  open_phase_->rounds = metrics_.rounds - phase_start_rounds_;
  open_phase_->global_messages = metrics_.global_messages - phase_start_msgs_;
  open_phase_->retransmitted = metrics_.retransmitted - phase_start_retx_;
  open_phase_->extra_rounds = metrics_.extra_rounds - phase_start_extra_;
  metrics_.phases.push_back(*open_phase_);
  open_phase_.reset();
}

run_metrics hybrid_net::snapshot() {
  close_phase();
  return metrics_;
}

void hybrid_net::set_cut(std::vector<u8> side) {
  HYB_REQUIRE(side.size() == n(), "cut must label every node");
  cut_side_ = std::move(side);
}

}  // namespace hybrid
