// The HYBRID network model simulator (paper Section 1, "The Hybrid Network
// Model": LOCAL + NCC).
//
// Synchronous rounds. In every round a node may
//   (a) exchange arbitrary messages with each neighbor in the local graph G
//       (LOCAL mode; unbounded bandwidth, traffic is accounted but not
//       capped), and
//   (b) send at most γ = global_cap() messages of at most
//       max_payload_words·64 bits each to arbitrary nodes (NCC mode; the cap
//       is enforced at send time, receive loads are recorded so tests can
//       check Lemma D.2's O(log n) bound).
//
// Protocols are written against this class: they keep per-node state arrays,
// and all information flow between nodes goes through global mailboxes or
// the audited LOCAL utilities in proto/flood.hpp (which charge local items
// and advance rounds). Node-private and public randomness both derive from
// one run seed, so every simulation is reproducible.
#pragma once

#include <array>
#include <memory>
#include <optional>
#include <span>
#include <string>
#include <vector>

#include "graph/graph.hpp"
#include "sim/executor.hpp"
#include "sim/mailbox.hpp"
#include "sim/metrics.hpp"
#include "util/bits.hpp"
#include "util/rng.hpp"

namespace hybrid {

struct model_config {
  /// γ = ceil(global_cap_mult · log2 n) global messages per node per round.
  double global_cap_mult = 4.0;
  /// Global message payload cap in 64-bit words (Θ(log n) bits).
  u32 max_payload_words = 3;
  /// Hash independence k = ceil(hash_independence_mult · log2 n) (Lemma D.2).
  double hash_independence_mult = 3.0;
  /// Skeleton hop budget h = ceil(skeleton_xi · (1/p) · ln n) (Lemma C.1's ξ).
  double skeleton_xi = 2.0;
  /// Level-1 sampling probability override for the APSP cores; 0 keeps the
  /// Theorem 1.1 default p = 1/√n. The two-level bench raises it (denser
  /// skeleton, smaller h) to trade ball size against table size.
  double skeleton_p_override = 0.0;
  /// Super-skeleton sampling probability (oracle_hierarchy::kTwoLevel);
  /// 0 = 1/√n_s, the same Õ(√·) recursion step as level 1.
  double super_p_override = 0.0;
  /// Super-skeleton hop budget h1 over the skeleton graph; 0 = the Lemma
  /// C.1 formula with skeleton_xi at level 1: ⌈ξ·(1/p₂)·ln n_s⌉ (which
  /// saturates to exact ball1 coverage at test sizes).
  u32 super_h_override = 0;
  /// Helper-set join probability q = min(helper_q_mult · µ / |C|, 1)
  /// (Algorithm 1 uses 2; larger values harden the |H_w| ≥ µ event at
  /// simulation sizes).
  double helper_q_mult = 4.0;
  /// Copies of each token seeded to random nodes before gossip in the token
  /// dissemination protocol (Θ(log n) in the analysis).
  double dissemination_seed_mult = 1.0;
  /// Charged stand-in for token routing's helper machinery (DESIGN.md §4,
  /// deviation 9): route_tokens charges the Theorem 2.2 / Algorithm 1
  /// round, message, and flood budgets in closed form and delivers tokens
  /// directly, skipping the Θ(Σ|cluster|²)-memory ruling-set/cluster
  /// simulation. Default off — everything stays message-level simulated.
  /// Needed for the n ≈ 10⁵ label-oracle workloads (bench_apsp E2e), where
  /// µ ≈ √n exceeds the graph diameter and the exact simulation of "every
  /// node learns its whole cluster" is Θ(n²) memory.
  bool charged_token_routing = false;
  /// Optional node bipartition for Section-7-style cut accounting; when its
  /// size equals n it is registered at network construction, so the full
  /// algorithms (which build their own nets) can be instrumented.
  std::vector<u8> cut_side;
};

struct global_msg {
  u32 src = 0;
  u32 dst = 0;
  u32 tag = 0;
  std::array<u64, 3> w{};  ///< payload words (w[0..nw))
  u8 nw = 0;

  static global_msg make(u32 src, u32 dst, u32 tag,
                         std::initializer_list<u64> words);
};

class hybrid_net {
 public:
  hybrid_net(const graph& g, model_config cfg, u64 seed,
             sim_options opts = {});

  const graph& g() const { return *g_; }
  u32 n() const { return g_->num_nodes(); }
  const model_config& config() const { return cfg_; }
  /// The sim_options this net was constructed with (thread count as given,
  /// exploration path unresolved — see resolve_exploration).
  const sim_options& options() const { return opts_; }

  /// Node-parallel round executor (docs/CONCURRENCY.md). Protocol drivers
  /// run their per-node round steps through this; within a step for node v,
  /// only v-private state (and v's own send budget) may be written.
  round_executor& executor() { return exec_; }

  /// γ: per-node global sends per round.
  u32 global_cap() const { return global_cap_; }
  /// Hash independence parameter for this n.
  u32 hash_independence() const { return hash_independence_; }

  // ---- round lifecycle -----------------------------------------------
  /// Close the current round: deliver queued global messages (parallel
  /// counting sort on the executor, sim/mailbox.hpp), account aggregate
  /// metrics via deterministic reductions, reset send budgets, bump the
  /// round counter. Orchestrating thread only, after the round barrier.
  void advance_round();
  u64 round() const { return metrics_.rounds; }

  // ---- NCC global mode -------------------------------------------------
  /// Send if src still has budget this round; returns false when the γ cap
  /// is exhausted (callers keep the message queued for a later round).
  /// Thread-safe across distinct src within one parallel round step: all
  /// writes are src-private; aggregate metrics are accounted when the
  /// delivering advance_round() closes the round.
  bool try_send_global(const global_msg& m);
  /// Remaining sends for src this round.
  u32 global_budget(u32 src) const;
  /// Messages delivered to v at the last advance_round(), sorted by
  /// (src, send-index). The span aliases the flat inbox arena and is
  /// valid until the next advance_round().
  std::span<const global_msg> global_inbox(u32 v) const;
  /// Mailbox arena occupancy/allocation probe (tests assert arenas stop
  /// growing after warm-up).
  mailbox_stats global_mailbox_stats() const { return mail_.stats(); }
  /// Release the mailbox high-water arenas (memory only, they regrow on
  /// demand; sim/mailbox.hpp trim()). Used by the large-n label pipelines
  /// before long global-silent stretches. Orchestrating thread only.
  void trim_mailboxes() { mail_.trim(); }

  // ---- LOCAL mode accounting -------------------------------------------
  /// Charge `items` O(log n)-bit records crossing local edges this round.
  void charge_local(u64 items) { metrics_.local_items += items; }

  // ---- fault injection (sim/fault.hpp, docs/FAULTS.md) -------------------
  const fault_options& faults() const { return opts_.faults; }
  bool faults_active() const { return fault_global_ || fault_local_; }
  /// Global plane faulty: queued global sends may be dropped at delivery.
  bool global_faults_active() const { return fault_global_; }
  /// Local plane faulty: LOCAL primitives must route every pulled item
  /// through local_drop() and take their self-healing paths.
  bool local_faults_active() const { return fault_local_; }
  /// Whether v is up in the current round (crash schedule). Down nodes
  /// send and receive nothing on either plane but keep their state.
  bool is_up(u32 v) const { return !has_crashes_ || !down_cur_[v]; }
  /// Whether the idx-th of `count` items pulled from `from` by `to` across
  /// a local edge this round is lost. Pure in (round, from, to, idx), so
  /// callable from parallel steps; callers count drops per node and report
  /// the sum through note_local_dropped (the charge_local charge includes
  /// dropped items — they did cross the edge).
  bool local_drop(u32 from, u32 to, u32 idx, u32 count) const;
  /// Items that arrived (= charged minus dropped at the charging site).
  /// Every charge_local caller reports its delivered share so the ledger
  /// local_items == local_delivered + local_dropped holds at all times;
  /// charged stand-ins report their whole charge (loss is not modeled for
  /// closed-form budgets, see run_metrics::local_delivered).
  void note_local_delivered(u64 items) { metrics_.local_delivered += items; }
  void note_local_dropped(u64 items) { metrics_.local_dropped += items; }
  void note_retransmitted(u64 count) { metrics_.retransmitted += count; }
  void note_extra_rounds(u64 rounds) { metrics_.extra_rounds += rounds; }

  // ---- charged stand-ins (DESIGN.md §4) ----------------------------------
  /// Account `rounds` silent rounds without simulating them (no delivery,
  /// no budget reset — callers must have no queued sends). Used by charged
  /// stand-ins whose round cost is a documented closed form
  /// (model_config{charged_token_routing}); orchestrating thread only.
  void charge_rounds(u64 rounds) { metrics_.rounds += rounds; }
  /// Account global messages/payload words a charged stand-in would have
  /// sent (receive-load tracking is not modeled for stand-ins).
  void charge_global(u64 messages, u64 payload_words) {
    metrics_.global_messages += messages;
    metrics_.global_payload_words += payload_words;
  }

  // ---- randomness --------------------------------------------------------
  /// Node v's persistent private stream, derived from (seed, v). Node-
  /// private, so it is safe inside a parallel step as long as only v's own
  /// step draws from it — but its draw positions depend on the node's whole
  /// history. Prefer round_rng() in parallel step code.
  rng& node_rng(u32 v);
  /// A fresh stream derived from (seed, v, round()) — the determinism
  /// contract's randomness primitive (docs/CONCURRENCY.md): draws depend
  /// only on the (seed, node, round) triple, never on scheduling or on how
  /// many values other rounds consumed.
  rng round_rng(u32 v) const;
  /// Shared public coins (the broadcastable seed of Lemma 2.3).
  rng& public_rng() { return public_rng_; }

  // ---- metrics / instrumentation -----------------------------------------
  void begin_phase(std::string name);
  /// Finalize the open phase and return a copy of the metrics.
  run_metrics snapshot();
  const run_metrics& raw_metrics() const { return metrics_; }

  /// Register a bipartition for Section-7-style cut accounting; bits of
  /// global messages crossing it accumulate in metrics().cut_bits.
  void set_cut(std::vector<u8> side);
  void clear_cut() { cut_side_.clear(); }

 private:
  void close_phase();
  /// Drop decision for one queued global message (send round = the round
  /// advance_round is closing). Pure per (round, src, idx), so the mailbox
  /// may evaluate it from parallel shards, twice per message.
  bool global_drop(u32 src, u32 idx, const global_msg& m) const;
  /// Recompute the crash bitmap for `round` into `down`.
  void fill_down(std::vector<u8>& down, u64 round) const;

  const graph* g_;
  model_config cfg_;
  sim_options opts_;
  round_executor exec_;
  u32 global_cap_;
  u32 hash_independence_;
  u32 header_bits_;

  flat_mailbox<global_msg> mail_;
  /// Per-shard metric accumulators for advance_round's fused delivery
  /// reduction; a member so steady-state rounds stay allocation-free.
  struct delivery_acc {
    u64 payload_words = 0;
    u64 cut_bits = 0;
    u64 max_recv = 0;
  };
  std::vector<delivery_acc> delivery_scratch_;

  std::vector<std::optional<rng>> node_rng_;
  /// Per-node round_rng stream ids, derived once at construction (they are
  /// a pure function of (seed_, v), so recomputing them every round was
  /// pure waste).
  std::vector<u64> node_stream_;
  u64 seed_;
  rng public_rng_;

  run_metrics metrics_;
  std::optional<phase_entry> open_phase_;
  u64 phase_start_rounds_ = 0;
  u64 phase_start_msgs_ = 0;
  u64 phase_start_retx_ = 0;
  u64 phase_start_extra_ = 0;

  std::vector<u8> cut_side_;

  // ---- fault state (all dormant when fault_options{} is default) ---------
  bool fault_global_ = false;
  bool fault_local_ = false;
  bool has_crashes_ = false;
  u64 fault_base_global_ = 0;
  u64 fault_base_local_ = 0;
  /// Crash bitmaps: down_cur_ describes the current round; during delivery
  /// down_next_ already holds the upcoming round (messages are lost when
  /// the sender was down at send time or the receiver is down at delivery).
  std::vector<u8> down_cur_;
  std::vector<u8> down_next_;
  /// The mailbox drop filter, bound once at construction (null when the
  /// global plane is reliable, which keeps delivery on the exact
  /// unfiltered path).
  flat_mailbox<global_msg>::drop_filter drop_filter_;
};

}  // namespace hybrid
