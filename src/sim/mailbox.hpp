// Flat-arena mailboxes with parallel counting-sort delivery.
//
// Both simulators (hybrid_net, clique_net) move per-round messages between
// nodes. The PR-2 implementation kept a `std::vector<std::vector<Msg>>` pair
// (outbox, inbox) and delivered with one sequential scan — O(total messages)
// of pointer-chasing plus per-round clear()/realloc churn, the last
// sequential O(n·γ) section in the round loop (ROADMAP). `flat_mailbox`
// replaces that with two reused arenas and a deterministic parallel
// counting sort:
//
//   * Outbox: one flat arena of n·stride message slots; node v's slab is
//     [v·stride, v·stride + sends(v)). push() is src-private (one slot write
//     plus a counter bump, no heap allocation), so parallel round steps can
//     send with no atomics and no locks, exactly as before. When a node
//     outgrows its slab the excess goes to a per-node overflow vector
//     (still src-private) and the arena is re-strided at the next barrier,
//     so steady state is overflow-free: slabs start small (idle networks
//     stay cheap even at large n) and converge to the observed per-round
//     peak — γ at most in the HYBRID simulator — after one warm-up round.
//   * Delivery (`deliver()`, called at the round barrier only) is a
//     counting sort by destination, parallel over the executor's static
//     source shards: (1) each shard counts its messages per destination
//     into a shard-private row, (2) the orchestrator takes an exclusive
//     prefix sum over (dst, shard) — giving each destination a slice of the
//     flat inbox arena and each (shard, dst) pair a disjoint scatter
//     cursor — then (3) each shard scatters its messages in (src,
//     send-index) order. Slices are filled shard-ascending and shards are
//     contiguous ascending node ranges, so every inbox ends up sorted by
//     (src, send-index): bit-identical to the old sequential scan at every
//     thread count (docs/CONCURRENCY.md §5).
//
// All buffers are high-water-marked and reused across rounds; after a short
// warm-up a round performs zero heap allocations (asserted by
// tests/mailbox_test.cpp via stats(), quantified by bench_mailbox).
// Fault injection (docs/FAULTS.md): deliver() optionally takes a drop
// filter. The filter is a pure predicate of (src, send-index, message); it
// is applied identically in the counting pass and the scatter pass, so the
// prefix sums are computed over the *kept* messages only and the surviving
// subset lands in the same (src, send-index) order at every thread count —
// sparse (filtered) outboxes keep the full determinism contract.
#pragma once

#include <algorithm>
#include <functional>
#include <span>
#include <vector>

#include "sim/executor.hpp"
#include "util/assert.hpp"
#include "util/bits.hpp"

namespace hybrid {

/// Arena occupancy/allocation probe (tests assert no growth after warm-up).
struct mailbox_stats {
  u32 stride = 0;             ///< current outbox slab width (slots per node)
  u64 outbox_slots = 0;       ///< total outbox arena slots (n · stride)
  u64 inbox_slots = 0;        ///< flat inbox arena high-water size (messages)
  u64 grow_events = 0;        ///< arena (re)allocations since construction
  u64 overflow_messages = 0;  ///< sends that missed the slab (pre-re-stride)
  u64 delivered_last_round = 0;
  u64 delivered_total = 0;
  u64 sent_total = 0;     ///< pushes seen by deliver() (kept + dropped)
  u64 dropped_total = 0;  ///< pushes removed by deliver()'s drop filter
};

/// Msg must expose `u32 src` / `u32 dst` members (global_msg, clique_msg).
template <class Msg>
class flat_mailbox {
 public:
  /// `per_node_cap`: hard per-round send cap per node (γ, or n for the
  /// clique). `initial_stride`: starting slab width; pass the cap to make
  /// overflow impossible, or a small value to let sparse workloads stay
  /// small (the arena re-strides itself up to the cap on demand).
  flat_mailbox(u32 n, u32 per_node_cap, u32 initial_stride)
      : n_(n),
        cap_(std::max<u32>(1, per_node_cap)),
        stride_(std::clamp<u32>(initial_stride, 1, cap_)),
        out_arena_(static_cast<std::size_t>(n) * stride_),
        out_count_(n, 0),
        overflow_(n),
        in_begin_(static_cast<std::size_t>(n) + 1, 0) {}

  u32 per_node_cap() const { return cap_; }
  u32 sends(u32 src) const { return out_count_[src]; }

  /// Enqueue for the next deliver(). src-private: touches only src's slab
  /// slot, counter, and (on slab overflow) src's overflow vector, so
  /// distinct sources may push concurrently within a parallel round step.
  void push(const Msg& m) {
    const u32 src = m.src;
    const u32 at = out_count_[src]++;
    HYB_INVARIANT(at < cap_, "per-node per-round send cap exceeded");
    if (at < stride_) {
      out_arena_[static_cast<std::size_t>(src) * stride_ + at] = m;
    } else {
      auto& spill = overflow_[src];
      // Bounded up-front reserve keeps the warm-up round to O(1)
      // allocations per overflowing node instead of O(log overflow).
      if (spill.capacity() == 0)
        spill.reserve(std::min(cap_ - stride_, 2 * stride_));
      spill.push_back(m);
    }
  }

  /// Messages delivered to v at the last deliver(); sorted by
  /// (src, send-index). Valid until the next deliver().
  std::span<const Msg> inbox(u32 v) const {
    return {in_arena_.data() + in_begin_[v], in_begin_[v + 1] - in_begin_[v]};
  }
  u32 inbox_size(u32 v) const { return in_begin_[v + 1] - in_begin_[v]; }
  u64 delivered_last_round() const { return delivered_last_; }
  u64 sent_last_round() const { return sent_last_; }
  u64 dropped_last_round() const { return sent_last_ - delivered_last_; }

  /// Drop predicate for fault injection: true = the message is lost.
  /// Must be a pure function of its arguments (it runs once in the count
  /// pass and once in the scatter pass, from parallel shards).
  using drop_filter = std::function<bool(u32 src, u32 send_idx, const Msg&)>;

  /// Barrier-phase delivery: the deterministic parallel counting sort
  /// described above. Orchestrating thread only (never from inside a step);
  /// also resets all send counters and grows/re-strides arenas as needed.
  /// With a non-null `drop`, messages the filter rejects are counted as
  /// dropped and never reach an inbox; survivors keep (src, send-index)
  /// order. Null filter = the exact unfiltered code path.
  void deliver(round_executor& exec, const drop_filter* drop = nullptr) {
    // Fast path: nothing was sent this round — common in LOCAL-only phases
    // (flood drivers advance rounds without global traffic). One early-exit
    // scan of the send counters replaces the dispatches and the O(n·T)
    // prefix below; inbox offsets only need re-zeroing if the previous
    // round delivered anything.
    bool any_sends = false;
    for (u32 v = 0; v < n_; ++v)
      if (out_count_[v] != 0) {
        any_sends = true;
        break;
      }
    if (!any_sends) {
      if (delivered_last_ != 0)
        std::fill(in_begin_.begin(), in_begin_.end(), 0);
      delivered_last_ = 0;
      sent_last_ = 0;
      return;
    }

    const u32 shards = exec.shard_count(n_);
    if (counts_.size() != static_cast<std::size_t>(shards) * n_) {
      counts_.assign(static_cast<std::size_t>(shards) * n_, 0);
      ++grow_events_;
    }
    // Tail shards can be empty (their count rows stay stale); the prefix
    // pass below must only read rows of shards that actually ran.
    u32 active = shards;
    while (active > 0 && exec.shard_begin(n_, active - 1) >= n_) --active;

    // Pass 1 (parallel over source shards): count per destination. Each
    // shard writes only its own counts_ row. With a drop filter, only kept
    // messages are counted — the prefix sums below must describe exactly
    // the set pass 2 scatters, or the inboxes would carry stale slots.
    exec.for_shards(n_, [&](u32 s, u32 begin, u32 end) {
      u32* row = counts_.data() + static_cast<std::size_t>(s) * n_;
      std::fill_n(row, n_, 0);
      if (drop == nullptr) {
        for (u32 src = begin; src < end; ++src)
          for_each_out(src, [&](const Msg& m) { ++row[m.dst]; });
      } else {
        for (u32 src = begin; src < end; ++src) {
          u32 i = 0;
          for_each_out(src, [&](const Msg& m) {
            if (!(*drop)(src, i++, m)) ++row[m.dst];
          });
        }
      }
    });

    // Exclusive prefix sum over (dst, shard) on the orchestrator — O(n·T),
    // independent of message volume. in_begin_[d] becomes the start of d's
    // inbox slice; counts_[s][d] is repurposed as shard s's scatter cursor.
    u64 total = 0;
    for (u32 d = 0; d < n_; ++d) {
      in_begin_[d] = static_cast<u32>(total);
      for (u32 s = 0; s < active; ++s) {
        u32& c = counts_[static_cast<std::size_t>(s) * n_ + d];
        const u32 cnt = c;
        c = static_cast<u32>(total);
        total += cnt;
      }
    }
    HYB_INVARIANT(total <= ~u32{0}, "round message volume overflows u32");
    in_begin_[n_] = static_cast<u32>(total);
    delivered_last_ = total;
    delivered_total_ += total;

    if (in_arena_.size() < total) {
      // Geometric growth, never shrunk: the arena is a high-water buffer.
      in_arena_.resize(std::max<std::size_t>(total, 2 * in_arena_.size()));
      ++grow_events_;
    }

    // Pass 2 (parallel over source shards): scatter. Shard-private cursor
    // rows address disjoint slices, so writes never race; walking sources
    // in ascending order within each contiguous shard yields the global
    // (src, send-index) order.
    exec.for_shards(n_, [&](u32 s, u32 begin, u32 end) {
      u32* cursor = counts_.data() + static_cast<std::size_t>(s) * n_;
      Msg* arena = in_arena_.data();
      if (drop == nullptr) {
        for (u32 src = begin; src < end; ++src)
          for_each_out(src, [&](const Msg& m) { arena[cursor[m.dst]++] = m; });
      } else {
        for (u32 src = begin; src < end; ++src) {
          u32 i = 0;
          for_each_out(src, [&](const Msg& m) {
            if (!(*drop)(src, i++, m)) arena[cursor[m.dst]++] = m;
          });
        }
      }
    });

    // Reset outboxes; re-stride once if any slab overflowed this round so
    // the same workload shape never overflows (or allocates) again.
    u32 max_count = 0;
    u64 sent = 0;
    for (u32 v = 0; v < n_; ++v) {
      max_count = std::max(max_count, out_count_[v]);
      sent += out_count_[v];
      out_count_[v] = 0;
      if (!overflow_[v].empty()) {
        overflow_total_ += overflow_[v].size();
        overflow_[v].clear();  // keeps capacity; unused once re-strided
      }
    }
    if (max_count > stride_) {
      stride_ = std::min(cap_, std::max(max_count, 2 * stride_));
      out_arena_.resize(static_cast<std::size_t>(n_) * stride_);
      ++grow_events_;
    }
    sent_last_ = sent;
    sent_total_ += sent;
    dropped_total_ += sent - delivered_last_;
  }

  mailbox_stats stats() const {
    return {stride_,
            static_cast<u64>(n_) * stride_,
            in_arena_.size(),
            grow_events_,
            overflow_total_,
            delivered_last_,
            delivered_total_,
            sent_total_,
            dropped_total_};
  }

  /// Release the high-water arenas back to their construction size (memory
  /// only — no observable change; they regrow on demand). For long idle
  /// stretches at large n, e.g. after a γ-saturated phase whose arenas
  /// (n·γ slots both sides) would otherwise sit on hundreds of MB while a
  /// charged stand-in or LOCAL-only phase runs. Orchestrating thread only,
  /// between rounds (nothing queued, previous inboxes no longer read).
  void trim() {
    HYB_INVARIANT(std::all_of(out_count_.begin(), out_count_.end(),
                              [](u32 c) { return c == 0; }),
                  "trim with queued sends");
    stride_ = 1;
    std::vector<Msg>(static_cast<std::size_t>(n_)).swap(out_arena_);
    std::vector<Msg>().swap(in_arena_);
    std::vector<u32>().swap(counts_);
    std::fill(in_begin_.begin(), in_begin_.end(), 0);
    for (auto& spill : overflow_) std::vector<Msg>().swap(spill);
    delivered_last_ = 0;
    sent_last_ = 0;
    ++grow_events_;
  }

 private:
  /// Visit src's queued messages in send order (slab, then overflow).
  template <class F>
  void for_each_out(u32 src, F&& f) const {
    const u32 count = out_count_[src];
    const Msg* slab = out_arena_.data() + static_cast<std::size_t>(src) * stride_;
    const u32 in_slab = std::min(count, stride_);
    for (u32 i = 0; i < in_slab; ++i) f(slab[i]);
    for (u32 i = in_slab; i < count; ++i) f(overflow_[src][i - in_slab]);
  }

  u32 n_;
  u32 cap_;
  u32 stride_;
  std::vector<Msg> out_arena_;   ///< n · stride slots, slab per node
  std::vector<u32> out_count_;   ///< sends this round, per node
  std::vector<std::vector<Msg>> overflow_;  ///< slab spill (rare, re-strided)
  std::vector<Msg> in_arena_;    ///< delivered messages, dst-contiguous
  std::vector<u32> in_begin_;    ///< inbox slice offsets, size n+1
  std::vector<u32> counts_;      ///< shard-count / scatter-cursor matrix
  u64 delivered_last_ = 0;
  u64 delivered_total_ = 0;
  u64 sent_last_ = 0;
  u64 sent_total_ = 0;
  u64 dropped_total_ = 0;
  u64 overflow_total_ = 0;
  u64 grow_events_ = 0;
};

}  // namespace hybrid
