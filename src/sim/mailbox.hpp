// Flat-arena mailboxes with parallel counting-sort delivery.
//
// Both simulators (hybrid_net, clique_net) move per-round messages between
// nodes. The PR-2 implementation kept a `std::vector<std::vector<Msg>>` pair
// (outbox, inbox) and delivered with one sequential scan — O(total messages)
// of pointer-chasing plus per-round clear()/realloc churn, the last
// sequential O(n·γ) section in the round loop (ROADMAP). `flat_mailbox`
// replaces that with two reused arenas and a deterministic parallel
// counting sort:
//
//   * Outbox: one flat arena of n·stride message slots; node v's slab is
//     [v·stride, v·stride + sends(v)). push() is src-private (one slot write
//     plus a counter bump, no heap allocation), so parallel round steps can
//     send with no atomics and no locks, exactly as before. When a node
//     outgrows its slab the excess goes to a per-node overflow vector
//     (still src-private) and the arena is re-strided at the next barrier,
//     so steady state is overflow-free: slabs start small (idle networks
//     stay cheap even at large n) and converge to the observed per-round
//     peak — γ at most in the HYBRID simulator — after one warm-up round.
//   * Delivery (`deliver()`, called at the round barrier only) is a
//     counting sort by destination, parallel over the executor's static
//     source shards and restructured (PR 10) so every inner loop is a
//     contiguous stream the compiler can auto-vectorize:
//       (1) COUNT (parallel): each shard histograms its messages into its
//           private (n+1)-wide count row. On filtered (faulty) rounds the
//           shard first freezes the drop verdicts into a contiguous u32
//           key stream — the filter is evaluated exactly ONCE per message,
//           dropped messages become the sentinel key `n` — and histograms
//           that stream branchlessly (drops land in the sentinel column);
//           unfiltered rounds histogram the slabs directly, which measures
//           faster than paying an extraction pass they don't need;
//       (2) PREFIX (orchestrator, O(n·T) independent of message volume):
//           three shard-row-contiguous sweeps — column totals across the
//           active rows, one exclusive prefix over the totals, and the
//           conversion of each count row into scatter cursors — replacing
//           the old dst-outer/shard-inner walk whose stride-n row hops
//           defeated both the cache and the vectorizer;
//       (3) SCATTER (parallel): each shard walks its sources ascending and
//           copies each message to `arena[cursor[dst]++]` — a single
//           branchless fixed-stride-read line for the filtered and
//           unfiltered paths alike, because on filtered rounds dst comes
//           from the key stream and dropped messages scatter into a
//           write-only trash region after the kept slices (cursor column
//           n), never into an inbox.
//     Slices are filled shard-ascending and shards are contiguous
//     ascending node ranges, so every inbox ends up sorted by
//     (src, send-index): bit-identical to the old sequential scan at every
//     thread count (docs/CONCURRENCY.md §5).
//
// All buffers are high-water-marked and reused across rounds; after a short
// warm-up a round performs zero heap allocations (asserted by
// tests/mailbox_test.cpp via stats(), quantified by bench_mailbox and
// bench_scatter). Fault injection (docs/FAULTS.md): the drop filter is a
// pure predicate of (src, send-index, message); its verdicts are frozen
// into the key stream, so the prefix sums describe exactly the kept set
// and the surviving subset lands in the same (src, send-index) order at
// every thread count — sparse (filtered) outboxes keep the full
// determinism contract.
#pragma once

#include <algorithm>
#include <functional>
#include <span>
#include <vector>

#include "sim/executor.hpp"
#include "util/assert.hpp"
#include "util/bits.hpp"

namespace hybrid {

/// Arena occupancy/allocation probe (tests assert no growth after warm-up).
struct mailbox_stats {
  u32 stride = 0;             ///< current outbox slab width (slots per node)
  u64 outbox_slots = 0;       ///< total outbox arena slots (n · stride)
  u64 inbox_slots = 0;        ///< flat inbox arena high-water size (messages)
  u64 grow_events = 0;        ///< arena (re)allocations since construction
  u64 overflow_messages = 0;  ///< sends that missed the slab (pre-re-stride)
  u64 delivered_last_round = 0;
  u64 delivered_total = 0;
  u64 sent_total = 0;     ///< pushes seen by deliver() (kept + dropped)
  u64 dropped_total = 0;  ///< pushes removed by deliver()'s drop filter
};

/// Msg must expose `u32 src` / `u32 dst` members (global_msg, clique_msg).
template <class Msg>
class flat_mailbox {
 public:
  /// `per_node_cap`: hard per-round send cap per node (γ, or n for the
  /// clique). `initial_stride`: starting slab width; pass the cap to make
  /// overflow impossible, or a small value to let sparse workloads stay
  /// small (the arena re-strides itself up to the cap on demand).
  flat_mailbox(u32 n, u32 per_node_cap, u32 initial_stride)
      : n_(n),
        cap_(std::max<u32>(1, per_node_cap)),
        stride_(std::clamp<u32>(initial_stride, 1, cap_)),
        out_arena_(static_cast<std::size_t>(n) * stride_),
        out_count_(n, 0),
        overflow_(n),
        in_begin_(static_cast<std::size_t>(n) + 1, 0) {}

  u32 per_node_cap() const { return cap_; }
  u32 sends(u32 src) const { return out_count_[src]; }

  /// Enqueue for the next deliver(). src-private: touches only src's slab
  /// slot, counter, and (on slab overflow) src's overflow vector, so
  /// distinct sources may push concurrently within a parallel round step.
  void push(const Msg& m) {
    const u32 src = m.src;
    const u32 at = out_count_[src]++;
    HYB_INVARIANT(at < cap_, "per-node per-round send cap exceeded");
    if (at < stride_) {
      out_arena_[static_cast<std::size_t>(src) * stride_ + at] = m;
    } else {
      auto& spill = overflow_[src];
      // Bounded up-front reserve keeps the warm-up round to O(1)
      // allocations per overflowing node instead of O(log overflow).
      if (spill.capacity() == 0)
        spill.reserve(std::min(cap_ - stride_, 2 * stride_));
      spill.push_back(m);
    }
  }

  /// Messages delivered to v at the last deliver(); sorted by
  /// (src, send-index). Valid until the next deliver().
  std::span<const Msg> inbox(u32 v) const {
    return {in_arena_.data() + in_begin_[v], in_begin_[v + 1] - in_begin_[v]};
  }
  u32 inbox_size(u32 v) const { return in_begin_[v + 1] - in_begin_[v]; }
  u64 delivered_last_round() const { return delivered_last_; }
  u64 sent_last_round() const { return sent_last_; }
  u64 dropped_last_round() const { return sent_last_ - delivered_last_; }

  /// Drop predicate for fault injection: true = the message is lost.
  /// Must be a pure function of its arguments; it runs exactly once per
  /// message, from the count pass's parallel shards (the verdict is frozen
  /// into the per-shard key stream that the scatter pass replays).
  using drop_filter = std::function<bool(u32 src, u32 send_idx, const Msg&)>;

  /// Barrier-phase delivery: the deterministic parallel counting sort
  /// described above. Orchestrating thread only (never from inside a step);
  /// also resets all send counters and grows/re-strides arenas as needed.
  /// With a non-null `drop`, messages the filter rejects are counted as
  /// dropped and never reach an inbox; survivors keep (src, send-index)
  /// order. Null filter = the exact unfiltered code path.
  void deliver(round_executor& exec, const drop_filter* drop = nullptr) {
    // Fast path: nothing was sent this round — common in LOCAL-only phases
    // (flood drivers advance rounds without global traffic). One early-exit
    // scan of the send counters replaces the dispatches and the O(n·T)
    // prefix below; inbox offsets only need re-zeroing if the previous
    // round delivered anything.
    bool any_sends = false;
    for (u32 v = 0; v < n_; ++v)
      if (out_count_[v] != 0) {
        any_sends = true;
        break;
      }
    if (!any_sends) {
      if (delivered_last_ != 0)
        std::fill(in_begin_.begin(), in_begin_.end(), 0);
      delivered_last_ = 0;
      sent_last_ = 0;
      return;
    }

    const u32 shards = exec.shard_count(n_);
    // Count rows are (n + 1) wide: columns [0, n) are real destinations,
    // column n is the sentinel that collects filtered-out messages so the
    // histogram and scatter loops below stay branchless.
    const std::size_t cols = static_cast<std::size_t>(n_) + 1;
    if (counts_.size() != static_cast<std::size_t>(shards) * cols) {
      counts_.assign(static_cast<std::size_t>(shards) * cols, 0);
      ++grow_events_;
    }
    if (totals_.size() != cols) {
      totals_.assign(cols, 0);
      ++grow_events_;
    }
    // Tail shards can be empty (their count rows stay stale); the prefix
    // pass below must only read rows of shards that actually ran.
    u32 active = shards;
    while (active > 0 && exec.shard_begin(n_, active - 1) >= n_) --active;

    // Filtered rounds freeze the drop verdicts into a per-shard contiguous
    // key stream: shard s's messages map to keys_[key_begin_[s],
    // key_begin_[s+1]) in (src, send-index) order, dropped ones as the
    // sentinel key n. The filter (a std::function — the expensive part of
    // a faulty round) then runs exactly ONCE per message instead of once
    // in the count pass and again in the scatter, and both downstream
    // loops stay branchless. Unfiltered rounds skip the stream entirely:
    // for them the extraction pass is pure overhead (measured ~20 % on
    // bench_mailbox), and their count/scatter loops are already
    // sentinel-free.
    const bool keyed = drop != nullptr;
    if (keyed) {
      if (key_begin_.size() != static_cast<std::size_t>(shards) + 1)
        key_begin_.assign(static_cast<std::size_t>(shards) + 1, 0);
      u64 queued = 0;
      for (u32 s = 0; s < shards; ++s) {
        key_begin_[s] = queued;
        const u32 begin = exec.shard_begin(n_, s);
        const u32 end = exec.shard_begin(n_, s + 1);
        for (u32 src = begin; src < end; ++src) queued += out_count_[src];
      }
      key_begin_[shards] = queued;
      if (keys_.size() < queued) {
        keys_.resize(std::max<std::size_t>(queued, 2 * keys_.size()));
        ++grow_events_;
      }
    }

    // Pass 1 (parallel over source shards): count per destination — for
    // filtered rounds, extract the key stream first and histogram the
    // contiguous u32 stream (branchless: drops land in the sentinel
    // column). Each shard writes only its own counts_ row. The dispatch
    // lambdas capture `this` ALONE (the filter travels via active_drop_)
    // so the executor's std::function wrapper always fits its 16-byte
    // small-buffer slot: deliver() stays at ZERO heap allocations per
    // steady-state round no matter how many parameters the passes need —
    // gated by bench_scatter's zero_alloc_rounds field, which caught a
    // capture-one-local-too-many regression costing an allocation per
    // dispatch while this kernel was being written.
    active_drop_ = drop;
    exec.for_shards(n_, [this](u32 s, u32 begin, u32 end) {
      count_shard(s, begin, end);
    });

    // Prefix (orchestrator, O(n·T) independent of message volume) as three
    // shard-row-contiguous sweeps — every loop below walks consecutive
    // memory, so they auto-vectorize where the old dst-outer/shard-inner
    // walk (stride-n hops between rows per destination) could not.
    // (a) Column totals across the active rows.
    {
      const u32* row0 = counts_.data();
      std::copy(row0, row0 + cols, totals_.data());
      for (u32 s = 1; s < active; ++s) {
        const u32* row = counts_.data() + static_cast<std::size_t>(s) * cols;
        u32* t = totals_.data();
        for (std::size_t d = 0; d < cols; ++d) t[d] += row[d];
      }
    }
    // (b) Exclusive prefix over the totals: in_begin_[d] becomes the start
    // of d's inbox slice and totals_[d] the column's first free slot. The
    // sentinel column's slots — the trash region dropped messages scatter
    // into — sit after every kept slice, so inboxes never see them.
    u64 total = 0;
    for (u32 d = 0; d < n_; ++d) {
      in_begin_[d] = static_cast<u32>(total);
      const u32 cnt = totals_[d];
      totals_[d] = static_cast<u32>(total);
      total += cnt;
    }
    const u64 dropped_now = totals_[n_];
    in_begin_[n_] = static_cast<u32>(total);
    totals_[n_] = static_cast<u32>(total);
    HYB_INVARIANT(total + dropped_now <= ~u32{0},
                  "round message volume overflows u32");
    delivered_last_ = total;
    delivered_total_ += total;

    // (c) Convert each count row into scatter cursors: cursor[s][d] =
    // column start + messages of earlier shards. Row-contiguous again.
    for (u32 s = 0; s < active; ++s) {
      u32* row = counts_.data() + static_cast<std::size_t>(s) * cols;
      u32* t = totals_.data();
      for (std::size_t d = 0; d < cols; ++d) {
        const u32 cnt = row[d];
        row[d] = t[d];
        t[d] += cnt;
      }
    }

    if (in_arena_.size() < total + dropped_now) {
      // Geometric growth, never shrunk: the arena is a high-water buffer.
      // The trash region (dropped_now slots) lives past the kept slices.
      in_arena_.resize(
          std::max<std::size_t>(total + dropped_now, 2 * in_arena_.size()));
      ++grow_events_;
    }

    // Pass 2 (parallel over source shards): scatter. Shard-private cursor
    // rows address disjoint slices (including disjoint trash sub-regions
    // for the sentinel column), so writes never race; walking sources in
    // ascending order within each contiguous shard yields the global
    // (src, send-index) order. One branchless line per message: the source
    // side is a fixed-stride slab read plus the sequential key stream.
    exec.for_shards(n_, [this](u32 s, u32 begin, u32 end) {
      scatter_shard(s, begin, end);
    });
    active_drop_ = nullptr;

    // Reset outboxes; re-stride once if any slab overflowed this round so
    // the same workload shape never overflows (or allocates) again.
    u32 max_count = 0;
    u64 sent = 0;
    for (u32 v = 0; v < n_; ++v) {
      max_count = std::max(max_count, out_count_[v]);
      sent += out_count_[v];
      out_count_[v] = 0;
      if (!overflow_[v].empty()) {
        overflow_total_ += overflow_[v].size();
        overflow_[v].clear();  // keeps capacity; unused once re-strided
      }
    }
    if (max_count > stride_) {
      stride_ = std::min(cap_, std::max(max_count, 2 * stride_));
      out_arena_.resize(static_cast<std::size_t>(n_) * stride_);
      ++grow_events_;
    }
    sent_last_ = sent;
    sent_total_ += sent;
    dropped_total_ += sent - delivered_last_;
  }

  mailbox_stats stats() const {
    return {stride_,
            static_cast<u64>(n_) * stride_,
            in_arena_.size(),
            grow_events_,
            overflow_total_,
            delivered_last_,
            delivered_total_,
            sent_total_,
            dropped_total_};
  }

  /// Release the high-water arenas back to their construction size (memory
  /// only — no observable change; they regrow on demand). For long idle
  /// stretches at large n, e.g. after a γ-saturated phase whose arenas
  /// (n·γ slots both sides) would otherwise sit on hundreds of MB while a
  /// charged stand-in or LOCAL-only phase runs. Orchestrating thread only,
  /// between rounds (nothing queued, previous inboxes no longer read).
  void trim() {
    HYB_INVARIANT(std::all_of(out_count_.begin(), out_count_.end(),
                              [](u32 c) { return c == 0; }),
                  "trim with queued sends");
    stride_ = 1;
    std::vector<Msg>(static_cast<std::size_t>(n_)).swap(out_arena_);
    std::vector<Msg>().swap(in_arena_);
    std::vector<u32>().swap(counts_);
    std::vector<u32>().swap(totals_);
    std::vector<u32>().swap(keys_);
    std::vector<u64>().swap(key_begin_);
    std::fill(in_begin_.begin(), in_begin_.end(), 0);
    for (auto& spill : overflow_) std::vector<Msg>().swap(spill);
    delivered_last_ = 0;
    sent_last_ = 0;
    ++grow_events_;
  }

 private:
  /// Visit src's queued messages in send order (slab, then overflow).
  template <class F>
  void for_each_out(u32 src, F&& f) const {
    const u32 count = out_count_[src];
    const Msg* slab = out_arena_.data() + static_cast<std::size_t>(src) * stride_;
    const u32 in_slab = std::min(count, stride_);
    for (u32 i = 0; i < in_slab; ++i) f(slab[i]);
    for (u32 i = in_slab; i < count; ++i) f(overflow_[src][i - in_slab]);
  }

  /// Delivery pass 1 for one shard (parallel; writes only row s of counts_
  /// and shard s's key-stream segment). active_drop_ is set by deliver().
  void count_shard(u32 s, u32 begin, u32 end) {
    const std::size_t cols = static_cast<std::size_t>(n_) + 1;
    u32* row = counts_.data() + static_cast<std::size_t>(s) * cols;
    std::fill_n(row, cols, 0);
    if (active_drop_ == nullptr) {
      for (u32 src = begin; src < end; ++src)
        for_each_out(src, [&](const Msg& m) { ++row[m.dst]; });
    } else {
      u32* keys = keys_.data() + key_begin_[s];
      u32 k = 0;
      for (u32 src = begin; src < end; ++src) {
        u32 i = 0;
        for_each_out(src, [&](const Msg& m) {
          keys[k++] = (*active_drop_)(src, i++, m) ? n_ : m.dst;
        });
      }
      for (u32 j = 0; j < k; ++j) ++row[keys[j]];
    }
  }

  /// Delivery pass 2 for one shard (parallel; writes only the arena slices
  /// row s's cursors address — kept slices plus shard s's trash segment).
  void scatter_shard(u32 s, u32 begin, u32 end) {
    const std::size_t cols = static_cast<std::size_t>(n_) + 1;
    u32* cursor = counts_.data() + static_cast<std::size_t>(s) * cols;
    Msg* arena = in_arena_.data();
    if (active_drop_ == nullptr) {
      for (u32 src = begin; src < end; ++src)
        for_each_out(src, [&](const Msg& m) { arena[cursor[m.dst]++] = m; });
    } else {
      const u32* keys = keys_.data() + key_begin_[s];
      u32 k = 0;
      for (u32 src = begin; src < end; ++src)
        for_each_out(src,
                     [&](const Msg& m) { arena[cursor[keys[k++]]++] = m; });
    }
  }

  u32 n_;
  u32 cap_;
  u32 stride_;
  std::vector<Msg> out_arena_;   ///< n · stride slots, slab per node
  std::vector<u32> out_count_;   ///< sends this round, per node
  std::vector<std::vector<Msg>> overflow_;  ///< slab spill (rare, re-strided)
  std::vector<Msg> in_arena_;    ///< delivered messages, dst-contiguous
  std::vector<u32> in_begin_;    ///< inbox slice offsets, size n+1
  std::vector<u32> counts_;      ///< shard-count / scatter-cursor matrix,
                                 ///< (n+1)-wide rows (column n = dropped)
  std::vector<u32> totals_;      ///< prefix scratch: column totals → next
                                 ///< free slot per column, size n+1
  std::vector<u32> keys_;        ///< per-shard contiguous dst-key streams
                                 ///< (sentinel n = dropped), high-water
  std::vector<u64> key_begin_;   ///< key-stream offset per shard, size T+1
  const drop_filter* active_drop_ = nullptr;  ///< this deliver()'s filter
  u64 delivered_last_ = 0;
  u64 delivered_total_ = 0;
  u64 sent_last_ = 0;
  u64 sent_total_ = 0;
  u64 dropped_total_ = 0;
  u64 overflow_total_ = 0;
  u64 grow_events_ = 0;
};

}  // namespace hybrid
