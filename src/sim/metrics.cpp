#include "sim/metrics.hpp"

#include <algorithm>

namespace hybrid {

void run_metrics::absorb(const run_metrics& sub) {
  rounds += sub.rounds;
  global_messages += sub.global_messages;
  global_payload_words += sub.global_payload_words;
  local_items += sub.local_items;
  max_global_recv_per_round =
      std::max(max_global_recv_per_round, sub.max_global_recv_per_round);
  cut_bits += sub.cut_bits;
  global_sent += sub.global_sent;
  global_dropped += sub.global_dropped;
  local_delivered += sub.local_delivered;
  local_dropped += sub.local_dropped;
  retransmitted += sub.retransmitted;
  extra_rounds += sub.extra_rounds;
  phases.insert(phases.end(), sub.phases.begin(), sub.phases.end());
}

}  // namespace hybrid
