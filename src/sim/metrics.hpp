// Round/message/bit accounting for simulated protocols.
//
// Rounds are the quantity every theorem in the paper bounds; the rest exists
// to check the model's bandwidth assumptions (Lemma D.2 receive loads, the
// Alice/Bob cut capacity in Section 7) and to compare communication volumes
// between algorithms.
#pragma once

#include <string>
#include <vector>

#include "util/bits.hpp"

namespace hybrid {

struct phase_entry {
  std::string name;
  u64 rounds = 0;
  u64 global_messages = 0;
  /// Healing cost attributable to this phase (docs/FAULTS.md §3): protocol
  /// re-sends and rounds beyond the stage's fault-free budget. Both stay 0
  /// with fault injection off.
  u64 retransmitted = 0;
  u64 extra_rounds = 0;
};

struct run_metrics {
  u64 rounds = 0;
  u64 global_messages = 0;
  u64 global_payload_words = 0;
  /// Local-mode traffic in "items" (one O(log n)-bit record crossing one
  /// edge). The LOCAL mode is unbounded, so this is informational only.
  u64 local_items = 0;
  /// Worst per-node global receive load observed in any round — the
  /// quantity Lemma D.2 bounds by O(log n) w.h.p.
  u32 max_global_recv_per_round = 0;
  /// Bits of global messages that crossed the registered node cut
  /// (Section 7's information bottleneck).
  u64 cut_bits = 0;

  // ---- fault accounting (sim/fault.hpp, docs/FAULTS.md) --------------------
  // Always maintained; everything below stays 0 with fault injection off
  // (local_delivered == local_items then, global_sent == global_messages).
  // Invariants (asserted in sim_test, and for the local plane inside
  // truncated_eccentricity's early-exit branch):
  //   global_sent == global_messages + global_dropped
  //   local_items == local_delivered + local_dropped
  /// Global-plane sends entering delivery (delivered + dropped).
  u64 global_sent = 0;
  /// Global-plane sends lost to injected faults.
  u64 global_dropped = 0;
  /// LOCAL-mode items that actually arrived. Charged stand-ins (the closed-
  /// form flood budgets of token routing, clustering, route tables) count
  /// as delivered in full: they model bandwidth reliability-abstracted,
  /// never per-item loss.
  u64 local_delivered = 0;
  /// LOCAL-mode items lost to injected faults (still charged to local_items).
  u64 local_dropped = 0;
  /// Protocol-level re-sends performed by the self-healing stages.
  u64 retransmitted = 0;
  /// Healing rounds spent beyond the stages' fault-free round budgets.
  u64 extra_rounds = 0;

  std::vector<phase_entry> phases;

  /// Merge a sub-run (e.g., a nested protocol measured separately).
  void absorb(const run_metrics& sub);
};

}  // namespace hybrid
