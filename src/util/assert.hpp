// Lightweight contract checking used across the library.
//
// HYB_REQUIRE   — precondition on public API arguments; always on, throws
//                 std::invalid_argument so callers can test misuse.
// HYB_INVARIANT — internal invariant; always on, aborts via std::logic_error.
//                 Protocol code uses this for model violations that indicate a
//                 bug in the implementation (e.g., a message exceeding the cap
//                 after it was already validated).
#pragma once

#include <sstream>
#include <stdexcept>
#include <string>

namespace hybrid {

[[noreturn]] inline void contract_failure(const char* kind, const char* expr,
                                          const char* file, int line,
                                          const std::string& msg) {
  std::ostringstream os;
  os << kind << " failed: (" << expr << ") at " << file << ':' << line;
  if (!msg.empty()) os << " — " << msg;
  if (kind[0] == 'r') throw std::invalid_argument(os.str());
  throw std::logic_error(os.str());
}

}  // namespace hybrid

#define HYB_REQUIRE(expr, msg)                                             \
  do {                                                                     \
    if (!(expr))                                                           \
      ::hybrid::contract_failure("requirement", #expr, __FILE__, __LINE__, \
                                 (msg));                                   \
  } while (0)

#define HYB_INVARIANT(expr, msg)                                         \
  do {                                                                   \
    if (!(expr))                                                         \
      ::hybrid::contract_failure("invariant", #expr, __FILE__, __LINE__, \
                                 (msg));                                 \
  } while (0)
