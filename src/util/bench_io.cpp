#include "util/bench_io.hpp"

#include <chrono>
#include <cmath>
#include <cstring>
#include <fstream>
#include <sstream>

namespace hybrid {

bench_recorder::bench_recorder(int argc, char** argv, std::string bench_name)
    : bench_(std::move(bench_name)) {
  for (int i = 1; i + 1 < argc; ++i)
    if (std::strcmp(argv[i], "--json") == 0) path_ = argv[i + 1];
}

void bench_recorder::add(const std::string& scenario,
                         std::vector<bench_field> fields) {
  rows_.push_back({scenario, std::move(fields)});
}

namespace {

// Numbers print as integers when integral (the common case: rounds,
// messages, n) and with full precision otherwise.
std::string json_number(double v) {
  std::ostringstream os;
  if (std::isfinite(v) && v == std::floor(v) && std::fabs(v) < 1e15)
    os << static_cast<long long>(v);
  else
    os << v;
  return os.str();
}

}  // namespace

bool bench_recorder::write() const {
  if (!enabled()) return true;
  std::ofstream out(path_);
  if (!out) return false;
  out << "{\n  \"bench\": \"" << bench_ << "\",\n  \"scenarios\": [\n";
  for (std::size_t i = 0; i < rows_.size(); ++i) {
    out << "    {\"name\": \"" << rows_[i].scenario << "\"";
    for (const bench_field& f : rows_[i].fields)
      out << ", \"" << f.name << "\": " << json_number(f.value);
    out << "}" << (i + 1 < rows_.size() ? "," : "") << "\n";
  }
  out << "  ]\n}\n";
  return static_cast<bool>(out);
}

double timed_ms(const std::function<void()>& fn) {
  const auto start = std::chrono::steady_clock::now();
  fn();
  const auto end = std::chrono::steady_clock::now();
  return std::chrono::duration<double, std::milli>(end - start).count();
}

}  // namespace hybrid
