// JSON output for the self-timing benches.
//
// Every bench binary accepts `--json <path>`; when given, it writes a
// machine-readable record of the scenarios it ran (rounds, messages,
// wall-clock, and bench-specific fields) next to the human-readable tables,
// so perf PRs can track round/message/throughput trajectories across
// commits (ROADMAP open item; CI uploads the BENCH_*.json files as an
// artifact).
//
// Usage:
//   bench_recorder rec(argc, argv, "bench_sssp");
//   ...
//   rec.add("scaling", {{"n", n}, {"rounds", rounds}, {"wall_ms", ms}});
//   ...
//   rec.write();   // no-op unless --json was passed
#pragma once

#include <functional>
#include <string>
#include <utility>
#include <vector>

#include "util/bits.hpp"

namespace hybrid {

/// One (name, value) cell; the template constructor absorbs any arithmetic
/// type so call sites can pass u32/u64 counters without narrowing casts.
struct bench_field {
  std::string name;
  double value;
  template <class T>
  bench_field(const char* field_name, T v)
      : name(field_name), value(static_cast<double>(v)) {}
};

class bench_recorder {
 public:
  /// Parses `--json <path>` out of argv (leaves other arguments alone).
  bench_recorder(int argc, char** argv, std::string bench_name);

  bool enabled() const { return !path_.empty(); }

  /// Record one scenario row. Values are doubles (u64 counters at bench
  /// scales fit exactly).
  void add(const std::string& scenario, std::vector<bench_field> fields);

  /// Write the JSON file when --json was given; returns false on I/O error.
  bool write() const;

 private:
  std::string bench_;
  std::string path_;
  struct row {
    std::string scenario;
    std::vector<bench_field> fields;
  };
  std::vector<row> rows_;
};

/// Milliseconds of wall-clock elapsed while running `fn` (steady clock).
double timed_ms(const std::function<void()>& fn);

}  // namespace hybrid
