// Small integer helpers shared by the simulator and protocols.
#pragma once

#include <bit>
#include <cstdint>

namespace hybrid {

using u8 = std::uint8_t;
using u16 = std::uint16_t;
using u32 = std::uint32_t;
using u64 = std::uint64_t;
using i64 = std::int64_t;

/// ⌈log2(x)⌉ for x ≥ 1; 0 for x ∈ {0, 1}. Used for "log n" round budgets.
constexpr u32 ceil_log2(u64 x) {
  if (x <= 1) return 0;
  return 64 - static_cast<u32>(std::countl_zero(x - 1));
}

/// Number of ID bits used by protocols: max(1, ⌈log2 n⌉).
constexpr u32 id_bits(u64 n) {
  u32 b = ceil_log2(n);
  return b == 0 ? 1 : b;
}

/// ⌈a / b⌉ for b > 0.
constexpr u64 ceil_div(u64 a, u64 b) { return (a + b - 1) / b; }

/// Integer square root (floor).
constexpr u64 isqrt(u64 x) {
  u64 r = 0;
  u64 bit = u64{1} << 62;
  while (bit > x) bit >>= 2;
  while (bit != 0) {
    if (x >= r + bit) {
      x -= r + bit;
      r = (r >> 1) + bit;
    } else {
      r >>= 1;
    }
    bit >>= 2;
  }
  return r;
}

}  // namespace hybrid
