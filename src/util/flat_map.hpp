// Open-addressed u64-keyed flat map — the sparse_dist_map recipe
// (proto/sparse_exploration.hpp) generalized over the mapped type, for
// protocol state that used to live in per-node std::unordered_map:
// insertion-ordered entries in one dense vector (pointer-stable only until
// the next mutation, like unordered_map iterators), a power-of-two linear
// probe table holding entry indices, and tombstone deletion with
// swap-remove so neither lookups nor erasure ever chase list nodes or
// touch the allocator per element. Token routing's exact path keeps
// hundreds of thousands of tiny per-node maps (store / pending / task_of /
// want_of, src/proto/token_routing.cpp); node-hashed buckets there made
// every find a cache miss into a separately heap-allocated node.
//
// Determinism: callers must not depend on iteration order across
// implementations — token routing only ever does point lookups — but the
// structure itself is fully deterministic: layout is a pure function of
// the operation sequence, never of pointer values or a seeded hash.
#pragma once

#include <algorithm>
#include <utility>
#include <vector>

#include "util/bits.hpp"

namespace hybrid {

/// Maps u64 keys to V. V must be movable; erase() swap-removes, so V moves
/// must not invalidate the mapped state (vectors, scalars are fine).
template <class V>
class flat_u64_map {
 public:
  struct entry {
    u64 key;
    V value;
  };

  /// The mapped value, or nullptr when absent. Valid until the next
  /// mutating call (exactly the unordered_map iterator contract callers
  /// already obeyed).
  V* find(u64 key) {
    return const_cast<V*>(static_cast<const flat_u64_map*>(this)->find(key));
  }
  const V* find(u64 key) const {
    if (table_.empty()) return nullptr;
    u32 i = probe_start(key);
    for (;;) {
      const u32 slot = table_[i];
      if (slot == kEmpty) return nullptr;
      if (slot != kTomb && entries_[slot - 1].key == key)
        return &entries_[slot - 1].value;
      i = (i + 1) & mask_;
    }
  }
  bool contains(u64 key) const { return find(key) != nullptr; }

  /// The mapped value, default-constructed and inserted when absent (the
  /// unordered_map operator[] semantics).
  V& operator[](u64 key) {
    if (table_.empty()) grow();
    u32* target = nullptr;
    u32 i = probe_start(key);
    for (;;) {
      u32& slot = table_[i];
      if (slot == kEmpty) {
        if (target == nullptr) target = &slot;
        break;
      }
      if (slot == kTomb) {
        if (target == nullptr) target = &slot;
      } else if (entries_[slot - 1].key == key) {
        return entries_[slot - 1].value;
      }
      i = (i + 1) & mask_;
    }
    if (*target == kTomb) --tombstones_;
    entries_.push_back({key, V{}});
    *target = static_cast<u32>(entries_.size());
    V& value = entries_.back().value;
    // Keep (live + tombstone) load under 1/2 so probe chains stay short.
    if (2 * (entries_.size() + tombstones_) >= table_.size()) grow();
    return value;
  }

  /// Insert (key, value) iff absent; returns whether it inserted (the
  /// unordered_map emplace contract — never overwrites).
  bool emplace(u64 key, V value) {
    if (contains(key)) return false;
    (*this)[key] = std::move(value);
    return true;
  }

  /// Remove key if present. Swap-removes the entry and tombstones the
  /// probe slot, so erase is O(probe) with no heap traffic.
  void erase(u64 key) {
    if (table_.empty()) return;
    u32 i = probe_start(key);
    for (;;) {
      u32& slot = table_[i];
      if (slot == kEmpty) return;
      if (slot != kTomb && entries_[slot - 1].key == key) {
        const u32 idx = slot - 1;
        slot = kTomb;
        ++tombstones_;
        const u32 last = static_cast<u32>(entries_.size()) - 1;
        if (idx != last) {
          // Repoint the moved entry's probe slot before the swap-remove.
          u32 j = probe_start(entries_[last].key);
          while (table_[j] != last + 1) j = (j + 1) & mask_;
          table_[j] = idx + 1;
          entries_[idx] = std::move(entries_[last]);
        }
        entries_.pop_back();
        return;
      }
      i = (i + 1) & mask_;
    }
  }

  u32 size() const { return static_cast<u32>(entries_.size()); }
  bool empty() const { return entries_.empty(); }

  /// Forget all entries but keep both arrays' capacity (scratch reuse).
  void clear() {
    entries_.clear();
    std::fill(table_.begin(), table_.end(), kEmpty);
    tombstones_ = 0;
  }

 private:
  static constexpr u32 kEmpty = 0;
  static constexpr u32 kTomb = ~u32{0};

  /// splitmix64 finalizer: full-avalanche, so sequential labels spread.
  u32 probe_start(u64 key) const {
    key ^= key >> 30;
    key *= 0xbf58476d1ce4e5b9ull;
    key ^= key >> 27;
    key *= 0x94d049bb133111ebull;
    key ^= key >> 31;
    return static_cast<u32>(key) & mask_;
  }

  /// Rehash into a table sized for the live entries (doubling while the
  /// live load alone demands it); tombstones are dropped wholesale.
  void grow() {
    u32 cap = table_.empty() ? 8 : static_cast<u32>(table_.size());
    while (2 * (entries_.size() + 1) >= cap) cap *= 2;
    table_.assign(cap, kEmpty);
    mask_ = cap - 1;
    tombstones_ = 0;
    for (u32 k = 0; k < entries_.size(); ++k) {
      u32 i = probe_start(entries_[k].key);
      while (table_[i] != kEmpty) i = (i + 1) & mask_;
      table_[i] = k + 1;
    }
  }

  std::vector<entry> entries_;
  /// Probe table of entry index + 1 (kEmpty = free, kTomb = erased);
  /// size is a power of two.
  std::vector<u32> table_;
  u32 mask_ = 0;
  u32 tombstones_ = 0;
};

}  // namespace hybrid
