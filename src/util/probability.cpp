#include "util/probability.hpp"

#include <algorithm>
#include <cmath>

#include "util/assert.hpp"

namespace hybrid {

double chernoff_upper_tail(double mu_h, double delta) {
  HYB_REQUIRE(mu_h >= 0 && delta >= 1.0,
              "this Chernoff form needs delta >= 1");
  return std::exp(-delta * mu_h / 3.0);
}

double chernoff_lower_tail(double mu_l, double delta) {
  HYB_REQUIRE(mu_l >= 0 && delta >= 0.0 && delta <= 1.0,
              "lower tail needs delta in [0,1]");
  return std::exp(-delta * delta * mu_l / 2.0);
}

double union_bound(double p, double events) {
  HYB_REQUIRE(p >= 0 && events >= 0, "probabilities cannot be negative");
  return std::min(1.0, p * events);
}

double skeleton_gap_miss_probability(double p, u64 h) {
  HYB_REQUIRE(p > 0 && p <= 1.0, "sampling rate in (0,1]");
  return std::pow(1.0 - p, static_cast<double>(h));
}

double skeleton_failure_probability(u32 n, double p, u64 h) {
  const double per_stretch = skeleton_gap_miss_probability(p, h);
  // ≤ n² pairs × ≤ n maximal stretches per pair (paper, proof of C.1).
  const double events =
      static_cast<double>(n) * static_cast<double>(n) * static_cast<double>(n);
  return union_bound(per_stretch, events);
}

double receive_overload_probability(u32 n, u64 total_sends, double delta) {
  HYB_REQUIRE(n >= 1, "need nodes");
  const double mean = static_cast<double>(total_sends) / n;
  if (delta < 1.0) {
    // Fall back to the (valid, weaker) multiplicative form exp(−δ²µ/3).
    return std::exp(-delta * delta * mean / 3.0);
  }
  return chernoff_upper_tail(mean, delta);
}

}  // namespace hybrid
