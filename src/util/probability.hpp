// The probabilistic toolkit of the paper's Appendix A, made executable.
//
// The proofs of Lemmas 2.2, C.1 and D.2 instantiate Chernoff bounds
// (Lemma A.1) and a polynomial union bound (Lemma A.2). The benches and
// property tests use these same bounds to derive failure probabilities for
// the chosen model_config constants at concrete n — e.g. "with ξ = 2 the
// per-pair skeleton-miss probability at n = 512 is ≤ 1/n²".
#pragma once

#include "util/bits.hpp"

namespace hybrid {

/// Upper-tail Chernoff (Lemma A.1, first form):
/// P(X > (1+δ)µ_H) ≤ exp(−δ·µ_H/3) for δ ≥ 1, E[X] ≤ µ_H.
double chernoff_upper_tail(double mu_h, double delta);

/// Lower-tail Chernoff (Lemma A.1, second form):
/// P(X < (1−δ)µ_L) ≤ exp(−δ²·µ_L/2) for 0 ≤ δ ≤ 1, E[X] ≥ µ_L.
double chernoff_lower_tail(double mu_l, double delta);

/// Union bound over `events` events each failing with probability ≤ p
/// (Lemma A.2 without the asymptotics): min(1, events·p).
double union_bound(double p, double events);

/// Lemma C.1's driving quantity: probability that a fixed stretch of
/// `h` hops contains no node sampled at rate p, i.e. (1−p)^h.
double skeleton_gap_miss_probability(double p, u64 h);

/// Lemma C.1 end-to-end: probability that ANY of the ≤ n² shortest paths
/// (with ≤ n sub-path stretches each, as in the paper's union bound) has an
/// h-hop stretch without a skeleton node.
double skeleton_failure_probability(u32 n, double p, u64 h);

/// Lemma D.2's receive-load tail for one node in one round: the chance that
/// a Bin(total_sends, 1/n) load exceeds (1+δ)·mean, Chernoff upper tail.
double receive_overload_probability(u32 n, u64 total_sends, double delta);

}  // namespace hybrid
