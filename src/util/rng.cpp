#include "util/rng.hpp"

#include "util/assert.hpp"

namespace hybrid {

namespace {
constexpr u64 splitmix64(u64& x) {
  x += 0x9e3779b97f4a7c15ULL;
  u64 z = x;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

constexpr u64 rotl(u64 x, int k) { return (x << k) | (x >> (64 - k)); }
}  // namespace

void rng::reseed(u64 seed) {
  u64 x = seed;
  for (auto& s : s_) s = splitmix64(x);
  // xoshiro must not start in the all-zero state.
  if ((s_[0] | s_[1] | s_[2] | s_[3]) == 0) s_[0] = 1;
}

u64 rng::next() {
  const u64 result = rotl(s_[1] * 5, 7) * 9;
  const u64 t = s_[1] << 17;
  s_[2] ^= s_[0];
  s_[3] ^= s_[1];
  s_[1] ^= s_[2];
  s_[0] ^= s_[3];
  s_[2] ^= t;
  s_[3] = rotl(s_[3], 45);
  return result;
}

u64 rng::next_below(u64 bound) {
  HYB_REQUIRE(bound > 0, "next_below needs a positive bound");
  // Lemire's method with rejection for exact uniformity.
  u64 x = next();
  __uint128_t m = static_cast<__uint128_t>(x) * bound;
  u64 l = static_cast<u64>(m);
  if (l < bound) {
    u64 threshold = (~bound + 1) % bound;
    while (l < threshold) {
      x = next();
      m = static_cast<__uint128_t>(x) * bound;
      l = static_cast<u64>(m);
    }
  }
  return static_cast<u64>(m >> 64);
}

double rng::next_double() {
  return static_cast<double>(next() >> 11) * 0x1.0p-53;
}

bool rng::next_bool(double p) {
  if (p <= 0.0) return false;
  if (p >= 1.0) return true;
  return next_double() < p;
}

u64 rng::next_in(u64 lo, u64 hi) {
  HYB_REQUIRE(lo <= hi, "empty range");
  return lo + next_below(hi - lo + 1);
}

std::vector<u32> rng::sample_without_replacement(u32 n, u32 m) {
  HYB_REQUIRE(m <= n, "cannot sample more elements than available");
  // Partial Fisher–Yates on an index array; O(n) memory, fine at sim scales.
  std::vector<u32> idx(n);
  for (u32 i = 0; i < n; ++i) idx[i] = i;
  for (u32 i = 0; i < m; ++i) {
    u32 j = i + static_cast<u32>(next_below(n - i));
    std::swap(idx[i], idx[j]);
  }
  idx.resize(m);
  return idx;
}

u64 derive_seed(u64 seed, u64 stream) {
  u64 x = seed ^ (0x510e527fade682d1ULL * (stream + 1));
  return splitmix64(x);
}

}  // namespace hybrid
