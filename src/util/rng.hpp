// Deterministic, seedable randomness for simulations.
//
// The simulator needs (a) per-node private randomness and (b) public shared
// randomness (the paper's protocols assume a broadcastable O(log² n)-bit seed;
// lower-bound arguments assume public coins). Both derive from a single run
// seed so every experiment is reproducible from one integer.
#pragma once

#include <cstdint>
#include <vector>

#include "util/bits.hpp"

namespace hybrid {

/// xoshiro256** by Blackman & Vigna: fast, high-quality, tiny state.
class rng {
 public:
  explicit rng(u64 seed) { reseed(seed); }

  void reseed(u64 seed);

  u64 next();

  /// Uniform in [0, bound) via Lemire's unbiased multiply-shift rejection.
  u64 next_below(u64 bound);

  /// Uniform double in [0, 1).
  double next_double();

  /// Bernoulli trial with success probability p.
  bool next_bool(double p);

  /// Uniform in [lo, hi] inclusive; requires lo <= hi.
  u64 next_in(u64 lo, u64 hi);

  /// Fisher–Yates shuffle.
  template <class T>
  void shuffle(std::vector<T>& v) {
    for (u64 i = v.size(); i > 1; --i) {
      u64 j = next_below(i);
      std::swap(v[i - 1], v[j]);
    }
  }

  /// Sample m distinct values from [0, n) (m <= n), in random order.
  std::vector<u32> sample_without_replacement(u32 n, u32 m);

 private:
  u64 s_[4];
};

/// Derive a child seed from (seed, stream) — used to give every node and
/// every protocol phase an independent stream. SplitMix64 finalizer.
u64 derive_seed(u64 seed, u64 stream);

}  // namespace hybrid
