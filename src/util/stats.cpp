#include "util/stats.hpp"

#include <algorithm>
#include <cmath>

#include "util/assert.hpp"

namespace hybrid {

linear_fit fit_line(const std::vector<double>& x,
                    const std::vector<double>& y) {
  HYB_REQUIRE(x.size() == y.size() && x.size() >= 2,
              "need at least two matched points");
  const double n = static_cast<double>(x.size());
  double sx = 0, sy = 0, sxx = 0, sxy = 0, syy = 0;
  for (std::size_t i = 0; i < x.size(); ++i) {
    sx += x[i];
    sy += y[i];
    sxx += x[i] * x[i];
    sxy += x[i] * y[i];
    syy += y[i] * y[i];
  }
  linear_fit f;
  const double den = n * sxx - sx * sx;
  HYB_REQUIRE(den != 0.0, "degenerate x values");
  f.slope = (n * sxy - sx * sy) / den;
  f.intercept = (sy - f.slope * sx) / n;
  double ss_res = 0, ss_tot = 0;
  const double ybar = sy / n;
  for (std::size_t i = 0; i < x.size(); ++i) {
    const double pred = f.slope * x[i] + f.intercept;
    ss_res += (y[i] - pred) * (y[i] - pred);
    ss_tot += (y[i] - ybar) * (y[i] - ybar);
  }
  f.r2 = ss_tot == 0.0 ? 1.0 : 1.0 - ss_res / ss_tot;
  return f;
}

linear_fit loglog_exponent(const std::vector<double>& n,
                           const std::vector<double>& rounds) {
  return loglog_exponent_deflated(n, rounds, 0.0);
}

linear_fit loglog_exponent_deflated(const std::vector<double>& n,
                                    const std::vector<double>& rounds,
                                    double log_power) {
  std::vector<double> lx(n.size()), ly(rounds.size());
  for (std::size_t i = 0; i < n.size(); ++i) {
    HYB_REQUIRE(n[i] > 0 && rounds[i] > 0, "log-log fit needs positive data");
    lx[i] = std::log(n[i]);
    ly[i] = std::log(rounds[i] / std::pow(std::log2(n[i]), log_power));
  }
  return fit_line(lx, ly);
}

double mean(const std::vector<double>& v) {
  HYB_REQUIRE(!v.empty(), "mean of empty set");
  double s = 0;
  for (double x : v) s += x;
  return s / static_cast<double>(v.size());
}

double max_value(const std::vector<double>& v) {
  HYB_REQUIRE(!v.empty(), "max of empty set");
  return *std::max_element(v.begin(), v.end());
}

}  // namespace hybrid
