// Statistics helpers for the benchmark harnesses.
//
// The paper's claims are round-complexity exponents (Õ(n^c)); benches fit the
// exponent of measured rounds against n on a log-log scale and report it next
// to the claimed value.
#pragma once

#include <cstddef>
#include <vector>

namespace hybrid {

struct linear_fit {
  double slope = 0.0;
  double intercept = 0.0;
  double r2 = 0.0;  ///< coefficient of determination
};

/// Ordinary least squares y = slope·x + intercept.
linear_fit fit_line(const std::vector<double>& x, const std::vector<double>& y);

/// Fit rounds ≈ c·n^e: returns e (slope of log(rounds) vs log(n)).
/// Polylog factors in Õ(·) bias the fitted exponent upward slightly at small
/// n; `loglog_exponent_deflated` divides out a log^p n factor first.
linear_fit loglog_exponent(const std::vector<double>& n,
                           const std::vector<double>& rounds);
linear_fit loglog_exponent_deflated(const std::vector<double>& n,
                                    const std::vector<double>& rounds,
                                    double log_power);

double mean(const std::vector<double>& v);
double max_value(const std::vector<double>& v);

}  // namespace hybrid
