#include "util/table.hpp"

#include <algorithm>
#include <iomanip>
#include <sstream>

#include "util/assert.hpp"

namespace hybrid {

table::table(std::vector<std::string> headers) : headers_(std::move(headers)) {
  HYB_REQUIRE(!headers_.empty(), "table needs at least one column");
}

table& table::add_row(std::vector<std::string> cells) {
  HYB_REQUIRE(cells.size() == headers_.size(),
              "row width must match header width");
  rows_.push_back(std::move(cells));
  return *this;
}

void table::print(std::ostream& os) const {
  std::vector<std::size_t> width(headers_.size());
  for (std::size_t c = 0; c < headers_.size(); ++c)
    width[c] = headers_[c].size();
  for (const auto& row : rows_)
    for (std::size_t c = 0; c < row.size(); ++c)
      width[c] = std::max(width[c], row[c].size());

  auto print_row = [&](const std::vector<std::string>& row) {
    os << "|";
    for (std::size_t c = 0; c < row.size(); ++c)
      os << ' ' << std::setw(static_cast<int>(width[c])) << row[c] << " |";
    os << '\n';
  };
  print_row(headers_);
  os << "|";
  for (std::size_t c = 0; c < headers_.size(); ++c)
    os << std::string(width[c] + 2, '-') << "|";
  os << '\n';
  for (const auto& row : rows_) print_row(row);
  os.flush();
}

std::string table::num(double v, int precision) {
  std::ostringstream os;
  os << std::fixed << std::setprecision(precision) << v;
  return os.str();
}

std::string table::integer(long long v) { return std::to_string(v); }

void print_section(const std::string& title, std::ostream& os) {
  os << "\n### " << title << "\n\n";
}

}  // namespace hybrid
