// Minimal fixed-width table printer; every bench binary prints paper-style
// rows with it so experiment write-ups can quote output verbatim
// (docs/DESIGN.md §5).
#pragma once

#include <iostream>
#include <string>
#include <vector>

namespace hybrid {

class table {
 public:
  explicit table(std::vector<std::string> headers);

  table& add_row(std::vector<std::string> cells);

  void print(std::ostream& os = std::cout) const;

  /// Format helpers.
  static std::string num(double v, int precision = 2);
  static std::string integer(long long v);

 private:
  std::vector<std::string> headers_;
  std::vector<std::vector<std::string>> rows_;
};

/// Print a "### title" section header the harnesses use between tables.
void print_section(const std::string& title, std::ostream& os = std::cout);

}  // namespace hybrid
