// Contract tests for the remaining public API surface: graph accessors,
// phase metrics of the full algorithms, simulator lifecycle details, and
// determinism of the randomized primitives.
#include <gtest/gtest.h>

#include <algorithm>
#include <set>

#include "core/diameter.hpp"
#include "core/kssp_framework.hpp"
#include "graph/generators.hpp"
#include "proto/dissemination.hpp"
#include "proto/skeleton.hpp"
#include "sim/clique_net.hpp"

namespace hybrid {
namespace {

model_config cfg() { return model_config{}; }

TEST(GraphApi, NeighborsSortedAndSymmetric) {
  const graph g = gen::erdos_renyi_connected(80, 5.0, 4, 3);
  for (u32 v = 0; v < 80; ++v) {
    const auto nb = g.neighbors(v);
    for (std::size_t i = 1; i < nb.size(); ++i)
      EXPECT_LT(nb[i - 1].to, nb[i].to);
    EXPECT_EQ(nb.size(), g.degree(v));
    for (const edge& e : nb) {
      // Reverse edge exists with the same weight.
      bool found = false;
      for (const edge& r : g.neighbors(e.to))
        if (r.to == v && r.weight == e.weight) found = true;
      EXPECT_TRUE(found) << v << "<->" << e.to;
    }
  }
}

TEST(GraphApi, EdgeCountMatchesAdjacency) {
  const graph g = gen::grid(7, 9);
  u64 half_edges = 0;
  for (u32 v = 0; v < g.num_nodes(); ++v) half_edges += g.degree(v);
  EXPECT_EQ(half_edges, 2 * g.num_edges());
}

TEST(PhaseMetrics, KsspFrameworkNamesAllPhases) {
  const graph g = gen::erdos_renyi_connected(128, 5.0, 6, 7);
  const auto alg = make_clique_kssp_1eps(0.25, injection::none);
  const kssp_result res = hybrid_kssp(g, cfg(), 5, {3, 9}, alg);
  std::set<std::string> names;
  for (const auto& ph : res.metrics.phases) names.insert(ph.name);
  for (const char* expect :
       {"skeleton", "representatives", "clique_embedding",
        "clique_simulation", "estimate_flood", "local_exploration"})
    EXPECT_TRUE(names.count(expect)) << expect;
  u64 total = 0;
  for (const auto& ph : res.metrics.phases) total += ph.rounds;
  EXPECT_EQ(total, res.metrics.rounds);
}

TEST(PhaseMetrics, DiameterNamesAllPhases) {
  const graph g = gen::grid(12, 12);
  const auto alg = make_clique_diameter_32(0.25, injection::none);
  const diameter_result res = hybrid_diameter(g, cfg(), 3, alg);
  std::set<std::string> names;
  for (const auto& ph : res.metrics.phases) names.insert(ph.name);
  for (const char* expect : {"skeleton", "clique_embedding",
                             "clique_simulation", "eccentricity_flood",
                             "aggregation"})
    EXPECT_TRUE(names.count(expect)) << expect;
}

TEST(SimLifecycle, InboxClearedBetweenRounds) {
  clique_net net(4);
  clique_msg m;
  m.src = 0;
  m.dst = 1;
  net.send(m);
  net.advance_round();
  EXPECT_EQ(net.inbox(1).size(), 1u);
  net.advance_round();
  EXPECT_TRUE(net.inbox(1).empty());
}

TEST(SimLifecycle, SnapshotClosesOpenPhase) {
  const graph g = gen::path(4);
  hybrid_net net(g, cfg(), 1);
  net.begin_phase("only");
  net.advance_round();
  const run_metrics m = net.snapshot();
  ASSERT_EQ(m.phases.size(), 1u);
  EXPECT_EQ(m.phases[0].rounds, 1u);
}

TEST(SimLifecycle, MetricsWithoutPhasesStillCount) {
  const graph g = gen::path(4);
  hybrid_net net(g, cfg(), 1);
  net.advance_round();
  net.advance_round();
  const run_metrics m = net.snapshot();
  EXPECT_EQ(m.rounds, 2u);
  EXPECT_TRUE(m.phases.empty());
}

TEST(Determinism, DisseminationIdenticalPerSeed) {
  const graph g = gen::erdos_renyi_connected(96, 5.0, 1, 11);
  auto run = [&](u64 seed) {
    hybrid_net net(g, cfg(), seed);
    std::vector<std::vector<token2>> initial(96);
    for (u32 t = 0; t < 64; ++t) initial[t % 96].push_back({t, t * 3});
    disseminate(net, initial);
    return net.snapshot();
  };
  const run_metrics a = run(5), b = run(5), c = run(6);
  EXPECT_EQ(a.rounds, b.rounds);
  EXPECT_EQ(a.global_messages, b.global_messages);
  EXPECT_EQ(a.max_global_recv_per_round, b.max_global_recv_per_round);
  // Different seeds still complete (message totals may legitimately
  // coincide: every node spends its full γ budget each gossip round).
  EXPECT_GT(c.rounds, 0u);
}

TEST(Determinism, SkeletonSamplingPerSeed) {
  const graph g = gen::grid(10, 10);
  hybrid_net n1(g, cfg(), 7), n2(g, cfg(), 7), n3(g, cfg(), 8);
  EXPECT_EQ(compute_skeleton(n1, 0.2).nodes, compute_skeleton(n2, 0.2).nodes);
  EXPECT_NE(compute_skeleton(n3, 0.2).nodes.size(), 0u);
}

TEST(SkeletonApi, NearListsSortedBySourceIndex) {
  const graph g = gen::grid(10, 10, 3, 5);
  hybrid_net net(g, cfg(), 5);
  const skeleton_result sk = compute_skeleton(net, 0.15);
  for (u32 v = 0; v < g.num_nodes(); ++v) {
    for (std::size_t i = 1; i < sk.near[v].size(); ++i)
      EXPECT_LT(sk.near[v][i - 1].source, sk.near[v][i].source);
  }
}

TEST(SkeletonApi, EdgesAreSymmetricAcrossNodes) {
  const graph g = gen::erdos_renyi_connected(120, 5.0, 5, 9);
  hybrid_net net(g, cfg(), 9);
  const skeleton_result sk = compute_skeleton(net, 0.12);
  for (u32 i = 0; i < sk.nodes.size(); ++i)
    for (const auto& [j, w] : sk.edges[i]) {
      bool found = false;
      for (const auto& [back, w2] : sk.edges[j])
        if (back == i && w2 == w) found = true;
      EXPECT_TRUE(found) << i << "<->" << j;
    }
}

}  // namespace
}  // namespace hybrid
