// Tests for the CLIQUE plug-in algorithms: contracts, declared rounds,
// worst-case error injection, and the message-level naive CLIQUE APSP.
#include <gtest/gtest.h>

#include <cmath>

#include "clique/algorithms.hpp"
#include "graph/diameter.hpp"
#include "graph/generators.hpp"
#include "graph/shortest_paths.hpp"
#include "proto/skeleton.hpp"
#include "sim/hybrid_net.hpp"

namespace hybrid {
namespace {

// A small weighted graph reinterpreted as a "skeleton" adjacency.
struct problem_fixture {
  graph g;
  std::vector<std::vector<std::pair<u32, u64>>> edges;
  clique_problem prob;
  std::vector<std::vector<u64>> ref;

  explicit problem_fixture(u32 n, u64 seed) {
    g = gen::erdos_renyi_connected(n, 4.0, 9, seed);
    edges.resize(n);
    for (u32 v = 0; v < n; ++v)
      for (const edge& e : g.neighbors(v)) edges[v].push_back({e.to, e.weight});
    prob.n_s = n;
    prob.edges = &edges;
    prob.max_edge_weight = g.max_weight();
    ref = apsp_reference(g);
  }
};

TEST(CliqueSp, ExactSolveMatchesReference) {
  problem_fixture f(40, 3);
  const auto alg = make_clique_sssp_exact();
  f.prob.sources = {0, 7, 13};
  const auto got = alg.solve(f.prob);
  ASSERT_EQ(got.size(), 3u);
  EXPECT_EQ(got[0], f.ref[0]);
  EXPECT_EQ(got[1], f.ref[7]);
  EXPECT_EQ(got[2], f.ref[13]);
}

TEST(CliqueSp, EmptySourcesMeansApsp) {
  problem_fixture f(24, 5);
  const auto alg = make_clique_apsp_2eps(0.25, injection::none);
  const auto got = alg.solve(f.prob);
  ASSERT_EQ(got.size(), 24u);
  for (u32 v = 0; v < 24; ++v) EXPECT_EQ(got[v], f.ref[v]);
}

TEST(CliqueSp, WorstCaseInjectionRespectsContract) {
  problem_fixture f(40, 7);
  const auto alg = make_clique_apsp_2eps(0.5, injection::worst_case);
  const approx_contract c = alg.contract(f.prob.max_edge_weight);
  EXPECT_DOUBLE_EQ(c.alpha, 2.5);
  EXPECT_EQ(c.beta, static_cast<u64>(std::ceil(1.5 * f.g.max_weight())));
  f.prob.sources = {0};
  const auto got = alg.solve(f.prob);
  for (u32 v = 1; v < 40; ++v) {
    EXPECT_GE(got[0][v], f.ref[0][v]) << v;
    EXPECT_LE(got[0][v],
              static_cast<u64>(c.alpha * static_cast<double>(f.ref[0][v])) +
                  c.beta)
        << v;
    EXPECT_GT(got[0][v], f.ref[0][v]) << "injection must actually distort";
  }
  EXPECT_EQ(got[0][0], 0u) << "distance to self stays 0";
}

TEST(CliqueSp, DeclaredRoundsFollowEtaAndDelta) {
  const auto fast = make_clique_kssp_1eps(0.25, injection::none);
  EXPECT_EQ(fast.declared_rounds(1000), 4u);  // ⌈1/ε⌉, δ = 0
  const auto algebraic = make_clique_apsp_algebraic(0.25, injection::none);
  EXPECT_EQ(algebraic.declared_rounds(4096),
            static_cast<u64>(std::ceil(std::pow(4096.0, 0.15715))));
  const auto sssp = make_clique_sssp_exact();
  EXPECT_EQ(sssp.declared_rounds(64), 2u);  // 64^{1/6} = 2
}

TEST(CliqueSp, ContractParameters) {
  EXPECT_DOUBLE_EQ(
      make_clique_kssp_1eps(0.1, injection::none).contract(5).alpha, 1.1);
  EXPECT_EQ(make_clique_kssp_1eps(0.1, injection::none).contract(5).beta, 0u);
  const auto a2 = make_clique_apsp_2eps(0.1, injection::none).contract(10);
  EXPECT_DOUBLE_EQ(a2.alpha, 2.1);
  EXPECT_EQ(a2.beta, 11u);
}

TEST(CliqueDiameter, ExactAndInjected) {
  problem_fixture f(32, 11);
  const u64 true_diam = weighted_diameter(f.g);
  const auto exact = make_clique_diameter_32(0.25, injection::none);
  EXPECT_EQ(exact.solve(f.prob), true_diam);

  const auto inj = make_clique_diameter_32(0.25, injection::worst_case);
  const approx_contract c = inj.contract(f.prob.max_edge_weight);
  const u64 got = inj.solve(f.prob);
  EXPECT_GE(got, true_diam);
  EXPECT_LE(got, static_cast<u64>(c.alpha * static_cast<double>(true_diam)) +
                     c.beta);
}

TEST(CliqueDiameter, AlgebraicVariantTighter) {
  problem_fixture f(32, 13);
  const u64 true_diam = weighted_diameter(f.g);
  const auto inj = make_clique_diameter_algebraic(0.1, injection::worst_case);
  const u64 got = inj.solve(f.prob);
  EXPECT_LE(got, static_cast<u64>(1.1 * static_cast<double>(true_diam)) + 1);
}

TEST(NaiveCliqueApsp, MessageLevelFullExchange) {
  problem_fixture f(16, 17);
  clique_net net(16);
  const auto got = naive_clique_apsp(net, f.prob);
  EXPECT_EQ(net.round(), 16u);  // exactly n_s rounds
  EXPECT_EQ(net.total_messages(), 16u * 16 * 16);
  EXPECT_EQ(net.max_recv_per_round(), 16u);  // Lenzen cap respected
  for (u32 v = 0; v < 16; ++v) EXPECT_EQ(got[v], f.ref[v]);
}

TEST(NaiveCliqueApsp, SizeMismatchRejected) {
  problem_fixture f(8, 19);
  clique_net net(9);
  EXPECT_THROW(naive_clique_apsp(net, f.prob), std::invalid_argument);
}

TEST(CliqueSp, RejectsBadProblem) {
  const auto alg = make_clique_sssp_exact();
  clique_problem bad;
  bad.n_s = 4;
  bad.edges = nullptr;
  EXPECT_THROW(alg.solve(bad), std::invalid_argument);
}

TEST(BellmanFordCliqueSssp, ExactOnWeightedSkeleton) {
  problem_fixture f(48, 23);
  clique_net net(48);
  const auto got = bellman_ford_clique_sssp(net, f.prob, 5);
  EXPECT_EQ(got, f.ref[5]);
  EXPECT_GT(net.round(), 0u);
}

TEST(BellmanFordCliqueSssp, RoundsTrackShortestPathHops) {
  // On a path skeleton, synchronous BF needs ~n rounds — the cost that
  // motivates the fast (charged) CLIQUE algorithms.
  const u32 n = 24;
  std::vector<std::vector<std::pair<u32, u64>>> edges(n);
  for (u32 i = 0; i + 1 < n; ++i) {
    edges[i].push_back({i + 1, 2});
    edges[i + 1].push_back({i, 2});
  }
  clique_problem prob;
  prob.n_s = n;
  prob.edges = &edges;
  prob.max_edge_weight = 2;
  clique_net net(n);
  const auto got = bellman_ford_clique_sssp(net, prob, 0);
  for (u32 v = 0; v < n; ++v) EXPECT_EQ(got[v], 2u * v);
  EXPECT_GE(net.round(), n - 1);
  EXPECT_LE(net.round(), n + 1);
}

TEST(BellmanFordCliqueSssp, StaysWithinLenzenCap) {
  problem_fixture f(32, 29);
  clique_net net(32);
  bellman_ford_clique_sssp(net, f.prob, 0);
  EXPECT_LE(net.max_recv_per_round(), 32u);
}

}  // namespace
}  // namespace hybrid
