// End-to-end tests of the paper's headline algorithms against centralized
// ground truth: Theorem 1.1 (exact APSP), the AHKSS20 baseline, Theorem 4.1
// (k-SSP framework + worst-case error injection), Theorem 1.3 (exact SSSP),
// Theorem 5.1 (diameter).
#include <gtest/gtest.h>

#include <cmath>

#include "core/apsp.hpp"
#include "core/apsp_baseline.hpp"
#include "core/diameter.hpp"
#include "core/kssp_framework.hpp"
#include "core/sssp.hpp"
#include "graph/diameter.hpp"
#include "graph/generators.hpp"
#include "graph/shortest_paths.hpp"

namespace hybrid {
namespace {

model_config cfg() { return model_config{}; }

graph make_graph(int kind, u32 n, u64 max_w, u64 seed) {
  switch (kind) {
    case 0: return gen::erdos_renyi_connected(n, 5.0, max_w, seed);
    case 1: return gen::grid(n / 16, 16, max_w, seed);
    default: return gen::path(n, max_w, seed);
  }
}

// ---- Theorem 1.1: exact APSP -----------------------------------------------

class ApspExactness : public ::testing::TestWithParam<std::tuple<int, u64>> {};

TEST_P(ApspExactness, MatchesDijkstraEverywhere) {
  const auto [kind, seed] = GetParam();
  const graph g = make_graph(kind, 192, 9, seed);
  const apsp_result res = hybrid_apsp_exact(g, cfg(), seed);
  const auto ref = apsp_reference(g);
  for (u32 u = 0; u < g.num_nodes(); ++u)
    ASSERT_EQ(res.dist[u], ref[u]) << "row " << u << " kind " << kind;
  EXPECT_GT(res.metrics.rounds, 0u);
  EXPECT_LE(res.metrics.max_global_recv_per_round,
            4u * 4 * id_bits(g.num_nodes()));
}

INSTANTIATE_TEST_SUITE_P(Graphs, ApspExactness,
                         ::testing::Combine(::testing::Values(0, 1, 2),
                                            ::testing::Values(1u, 2u)));

TEST(Apsp, UnweightedGraphs) {
  const graph g = gen::erdos_renyi_connected(160, 6.0, 1, 4);
  const apsp_result res = hybrid_apsp_exact(g, cfg(), 4);
  const auto ref = apsp_reference(g);
  for (u32 u = 0; u < g.num_nodes(); ++u) EXPECT_EQ(res.dist[u], ref[u]);
}

TEST(Apsp, PhaseBreakdownPresent) {
  const graph g = gen::erdos_renyi_connected(128, 5.0, 4, 8);
  const apsp_result res = hybrid_apsp_exact(g, cfg(), 8);
  ASSERT_GE(res.metrics.phases.size(), 4u);
  EXPECT_EQ(res.metrics.phases[0].name, "skeleton");
  u64 total = 0;
  for (const auto& ph : res.metrics.phases) total += ph.rounds;
  EXPECT_EQ(total, res.metrics.rounds);
}

// ---- AHKSS20 baseline --------------------------------------------------------

TEST(ApspBaseline, ExactToo) {
  const graph g = gen::erdos_renyi_connected(160, 5.0, 7, 31);
  const apsp_baseline_result res = baseline_apsp_ahkss(g, cfg(), 31);
  const auto ref = apsp_reference(g);
  for (u32 u = 0; u < g.num_nodes(); ++u) ASSERT_EQ(res.dist[u], ref[u]);
  EXPECT_GT(res.labels_broadcast, 0u);
}

// ---- Theorem 1.3: exact SSSP --------------------------------------------------

class SsspExactness : public ::testing::TestWithParam<std::tuple<int, u64>> {};

TEST_P(SsspExactness, MatchesDijkstra) {
  const auto [kind, seed] = GetParam();
  const graph g = make_graph(kind, 224, 8, seed);
  const u32 source = static_cast<u32>(seed % g.num_nodes());
  const sssp_result res = hybrid_sssp_exact(g, cfg(), seed, source);
  const auto ref = dijkstra(g, source);
  EXPECT_EQ(res.dist, ref) << "kind " << kind;
}

INSTANTIATE_TEST_SUITE_P(Graphs, SsspExactness,
                         ::testing::Combine(::testing::Values(0, 1, 2),
                                            ::testing::Values(3u, 4u)));

// ---- Theorem 4.1 / 1.2: k-SSP approximations ---------------------------------

struct kssp_case {
  int graph_kind;
  u64 max_w;  // 1 = unweighted
  bool inject;
};

class KsspApprox : public ::testing::TestWithParam<kssp_case> {};

TEST_P(KsspApprox, WithinProvenBounds) {
  const kssp_case c = GetParam();
  const graph g = make_graph(c.graph_kind, 192, c.max_w, 7);
  const u32 n = g.num_nodes();
  // k ≈ n^{1/3} sources (Corollary 4.6's regime).
  const u32 k = static_cast<u32>(std::cbrt(static_cast<double>(n))) + 2;
  rng r(17);
  std::vector<u32> sources = r.sample_without_replacement(n, k);

  const auto alg = make_clique_kssp_1eps(
      0.25, c.inject ? injection::worst_case : injection::none);
  const kssp_result res = hybrid_kssp(g, cfg(), 7, sources, alg);

  const auto ref = multi_source_reference(g, sources);
  const double bound =
      c.max_w == 1 ? res.bound_unweighted : res.bound_weighted;
  for (u32 j = 0; j < sources.size(); ++j)
    for (u32 v = 0; v < n; ++v) {
      ASSERT_GE(res.dist[j][v], ref[j][v])
          << "underestimate at source " << j << " node " << v;
      ASSERT_LE(static_cast<double>(res.dist[j][v]),
                bound * static_cast<double>(ref[j][v]) + 1e-9)
          << "bound " << bound << " violated at source " << j << " node "
          << v;
    }
}

INSTANTIATE_TEST_SUITE_P(
    Cases, KsspApprox,
    ::testing::Values(kssp_case{0, 1, false}, kssp_case{0, 1, true},
                      kssp_case{0, 9, false}, kssp_case{0, 9, true},
                      kssp_case{1, 1, true}, kssp_case{2, 6, true}));

TEST(Kssp, ExactWhenNoInjectionAndAlphaOne) {
  // α = 1, β = 0, single source in skeleton ⇒ exact (Lemma 4.5).
  const graph g = make_graph(0, 160, 5, 23);
  const kssp_result res = hybrid_kssp(g, cfg(), 23, {12},
                                      make_clique_sssp_exact(),
                                      /*source_into_skeleton=*/true);
  EXPECT_EQ(res.dist[0], dijkstra(g, 12));
}

TEST(Kssp, SevenPlusEpsVariant) {
  // Corollary 4.7 under worst-case injection on a weighted graph.
  const graph g = make_graph(0, 192, 12, 29);
  rng r(5);
  std::vector<u32> sources = r.sample_without_replacement(g.num_nodes(), 24);
  const auto alg = make_clique_apsp_2eps(0.25, injection::worst_case);
  const kssp_result res = hybrid_kssp(g, cfg(), 29, sources, alg);
  const auto ref = multi_source_reference(g, sources);
  for (u32 j = 0; j < sources.size(); ++j)
    for (u32 v = 0; v < g.num_nodes(); ++v) {
      ASSERT_GE(res.dist[j][v], ref[j][v]);
      ASSERT_LE(static_cast<double>(res.dist[j][v]),
                res.bound_weighted * static_cast<double>(ref[j][v]) + 1e-9);
    }
  EXPECT_LE(res.bound_weighted, 7.0 + 4 * 0.25 + 1.0)
      << "2α+1 with α=2+ε plus β/T_B should stay near 7+ε";
}

TEST(Kssp, RejectsDuplicateSources) {
  const graph g = gen::path(64);
  EXPECT_THROW(hybrid_kssp(g, cfg(), 1, {3, 3},
                           make_clique_kssp_1eps(0.25, injection::none)),
               std::invalid_argument);
}

TEST(Kssp, GammaZeroRequiresSingleSource) {
  const graph g = gen::path(64);
  EXPECT_THROW(hybrid_kssp(g, cfg(), 1, {3, 4}, make_clique_sssp_exact(),
                           /*source_into_skeleton=*/true),
               std::invalid_argument);
}

// ---- Theorem 5.1 / 1.4: diameter ----------------------------------------------

class DiameterApprox : public ::testing::TestWithParam<std::tuple<int, u64>> {};

TEST_P(DiameterApprox, WithinBoundsAndNeverUnder) {
  const auto [kind, seed] = GetParam();
  const graph g = make_graph(kind, 192, 1, seed);
  const u32 d_true = hop_diameter(g);
  const auto alg = make_clique_diameter_32(0.25, injection::worst_case);
  const diameter_result res = hybrid_diameter(g, cfg(), seed, alg);
  EXPECT_GE(res.estimate, d_true) << "diameter must not be underestimated";
  EXPECT_LE(static_cast<double>(res.estimate),
            res.bound * static_cast<double>(d_true) + 1e-9)
      << "claimed bound " << res.bound;
}

INSTANTIATE_TEST_SUITE_P(Graphs, DiameterApprox,
                         ::testing::Combine(::testing::Values(0, 1, 2),
                                            ::testing::Values(5u, 6u)));

TEST(Diameter, SmallDiameterComputedExactly) {
  // ER graphs have tiny diameter: the ĥ branch of Equation (3) fires.
  const graph g = gen::erdos_renyi_connected(256, 8.0, 1, 9);
  const auto alg = make_clique_diameter_32(0.25, injection::worst_case);
  const diameter_result res = hybrid_diameter(g, cfg(), 9, alg);
  EXPECT_TRUE(res.exact_path);
  EXPECT_EQ(res.estimate, hop_diameter(g));
}

TEST(Diameter, LargeDiameterUsesSkeletonEstimate) {
  const graph g = gen::path(1500);
  const auto alg = make_clique_diameter_32(0.25, injection::none);
  const diameter_result res = hybrid_diameter(g, cfg(), 3, alg);
  const u32 d_true = 1499;
  if (!res.exact_path) {
    EXPECT_GE(res.estimate, static_cast<u64>(d_true));
    EXPECT_LE(static_cast<double>(res.estimate),
              res.bound * static_cast<double>(d_true));
  } else {
    EXPECT_EQ(res.estimate, d_true);
  }
}

TEST(Diameter, RejectsWeightedGraphs) {
  const graph g = gen::path(64, 5, 2);
  const auto alg = make_clique_diameter_32(0.25, injection::none);
  EXPECT_THROW(hybrid_diameter(g, cfg(), 1, alg), std::invalid_argument);
}

}  // namespace
}  // namespace hybrid
