// Differential suite for the distance-label oracle (core/dist_oracle.hpp):
// on randomized ER / grid / star / bounded-degree / disconnected graphs,
// query(u, v) and next_hop(u, v) must be bit-identical to the materialized
// dense matrices and to centralized Dijkstra ground truth, at threads
// ∈ {1, 2, 8} and on both exploration paths; plus the h = 0 /
// isolated-vertex / singleton-component / unreachable-pair (∞) edge cases,
// the baseline's two-sided labels, the k-SSP labels, and the diameter
// label path (exact + the (1+ε̂) skeleton estimate). Runs in the TSAN CI
// job at 8 threads; `ctest -L oracle` runs it standalone.
#include <gtest/gtest.h>

#include <vector>

#include "core/apsp.hpp"
#include "core/apsp_baseline.hpp"
#include "core/diameter.hpp"
#include "core/kssp_framework.hpp"
#include "core/sssp.hpp"
#include "graph/diameter.hpp"
#include "graph/generators.hpp"
#include "graph/shortest_paths.hpp"

namespace hybrid {
namespace {

model_config cfg() { return model_config{}; }

sim_options opts(u32 threads, exploration_path explo, result_storage storage) {
  sim_options o;
  o.threads = threads;
  o.exploration = explo;
  o.storage = storage;
  return o;
}

void expect_metrics_eq(const run_metrics& a, const run_metrics& b) {
  EXPECT_EQ(a.rounds, b.rounds);
  EXPECT_EQ(a.local_items, b.local_items);
  EXPECT_EQ(a.global_messages, b.global_messages);
  EXPECT_EQ(a.global_payload_words, b.global_payload_words);
  EXPECT_EQ(a.max_global_recv_per_round, b.max_global_recv_per_round);
}

/// Dense reference at one thread vs label-only runs at threads {1, 2, 8} on
/// both exploration paths: per-pair query/next_hop identity, materialize()
/// identity, metric identity, and Dijkstra ground truth.
void apsp_differential(const graph& g, u64 seed) {
  const u32 n = g.num_nodes();
  const apsp_result ref = hybrid_apsp_exact(
      g, cfg(), seed, /*build_routes=*/true,
      opts(1, exploration_path::kDense, result_storage::kDense));
  ASSERT_EQ(ref.dist.size(), n);
  const auto truth = apsp_reference(g);
  for (u32 u = 0; u < n; ++u) ASSERT_EQ(ref.dist[u], truth[u]) << "row " << u;

  for (u32 threads : {1u, 2u, 8u})
    for (exploration_path explo :
         {exploration_path::kDense, exploration_path::kSparse}) {
      const apsp_result lab = hybrid_apsp_exact(
          g, cfg(), seed, /*build_routes=*/true,
          opts(threads, explo, result_storage::kLabels));
      ASSERT_TRUE(!lab.materialized());
      ASSERT_TRUE(lab.labels.routes);
      expect_metrics_eq(lab.metrics, ref.metrics);
      for (u32 u = 0; u < n; ++u)
        for (u32 v = 0; v < n; ++v) {
          ASSERT_EQ(lab.labels.query(u, v), ref.dist[u][v])
              << u << "->" << v << " threads=" << threads;
          ASSERT_EQ(lab.labels.next_hop(u, v), ref.next_hop[u][v])
              << u << "->" << v << " threads=" << threads;
        }
      // The dense adapters reproduce the matrices bit for bit.
      round_executor ex(opts(threads, explo, result_storage::kLabels));
      const auto dist = lab.labels.materialize(ex);
      ASSERT_EQ(dist, ref.dist);
      ASSERT_EQ(lab.labels.materialize_next_hops(dist, ex), ref.next_hop);
    }
}

// ---- randomized differential runs ------------------------------------------

TEST(DistOracleDiff, ErdosRenyiRandomized) {
  for (u64 seed : {51u, 52u, 53u}) {
    rng r(seed);
    const u32 n = 48 + static_cast<u32>(r.next_below(72));
    const double deg = 3.5 + r.next_double() * 2.5;
    const u64 max_w = r.next_bool(0.5) ? 1 : 9;
    apsp_differential(gen::erdos_renyi_connected(n, deg, max_w, seed), seed);
  }
}

TEST(DistOracleDiff, Grid) { apsp_differential(gen::grid(9, 9, 6, 23), 23); }

TEST(DistOracleDiff, Star) {
  // balanced_tree with arity n-1 is a star: every leaf routes through the
  // hub, so gateway composition and next-hop tie-breaks get a dense workout.
  apsp_differential(gen::balanced_tree(40, 39, 4, 7), 7);
}

TEST(DistOracleDiff, BoundedDegree) {
  apsp_differential(gen::bounded_degree(72, 3, 5, 11), 11);
}

TEST(DistOracleDiff, DisconnectedWithIsolatedVertices) {
  // Two components (path, triangle) plus two isolated vertices: queries
  // across components must return kInfDist exactly where Dijkstra does, and
  // next_hop must stay ~0 there.
  std::vector<edge_spec> edges{{0, 1, 2}, {1, 2, 1}, {2, 3, 3},
                               {4, 5, 1}, {5, 6, 2}, {4, 6, 2}};
  const graph g = graph::from_edges(9, edges);
  apsp_differential(g, 3);
  const apsp_result lab = hybrid_apsp_exact(
      g, cfg(), 3, true, opts(1, exploration_path::kSparse, result_storage::kLabels));
  for (u32 v : {7u, 8u}) {
    EXPECT_EQ(lab.labels.query(v, v), 0u);       // singleton component
    EXPECT_EQ(lab.labels.next_hop(v, v), v);
    EXPECT_EQ(lab.labels.query(v, 0), kInfDist);  // unreachable pair
    EXPECT_EQ(lab.labels.next_hop(v, 0), ~u32{0});
    EXPECT_EQ(lab.labels.query(0, v), kInfDist);
  }
  EXPECT_EQ(lab.labels.query(0, 5), kInfDist);  // across the two components
}

// ---- edge cases -------------------------------------------------------------

TEST(DistOracleEdge, HZeroBallOnlyLabels) {
  // h = 0 labels built directly: every ball is the node itself, no
  // gateways, empty skeleton table — query must fall through the (absent)
  // skeleton part and report self-distance 0 / kInfDist elsewhere.
  dist_labels lab;
  lab.n = 3;
  lab.n_s = 0;
  lab.h = 0;
  lab.ball.offsets = {0, 1, 2, 3};
  lab.ball.entries = {{0, 0, 0}, {0, 1, 1}, {0, 2, 2}};
  lab.gw_offsets = {0, 0, 0, 0};
  for (u32 u = 0; u < 3; ++u)
    for (u32 v = 0; v < 3; ++v)
      EXPECT_EQ(lab.query(u, v), u == v ? 0 : kInfDist) << u << "->" << v;
  EXPECT_EQ(lab.row(1), (std::vector<u64>{kInfDist, 0, kInfDist}));
}

TEST(DistOracleEdge, BallOnlyTwoSidedLabels) {
  // The two-sided scheme with no gateways likewise degenerates to the ball.
  dist_labels lab;
  lab.n = 2;
  lab.n_s = 1;
  lab.scheme = label_scheme::kSkeletonPairs;
  lab.ball.offsets = {0, 1, 2};
  lab.ball.entries = {{0, 0, 0}, {0, 1, 1}};
  lab.gw_offsets = {0, 0, 0};
  lab.skel = {0};
  EXPECT_EQ(lab.query(0, 1), kInfDist);
  EXPECT_EQ(lab.query(1, 1), 0u);
}

TEST(DistOracleEdge, NextHopRequiresRoutes) {
  const graph g = gen::path(32, 3, 5);
  const apsp_result lab = hybrid_apsp_exact(
      g, cfg(), 5, /*build_routes=*/false,
      opts(1, exploration_path::kAuto, result_storage::kLabels));
  EXPECT_FALSE(lab.labels.routes);
  EXPECT_EQ(lab.labels.query(0, 31), dijkstra(g, 0)[31]);
  EXPECT_THROW(lab.labels.next_hop(0, 31), std::invalid_argument);
}

TEST(DistOracleEdge, StorageResolution) {
  const graph g = gen::erdos_renyi_connected(64, 4.0, 5, 9);
  // kAuto materializes below the cutoff; kLabels never does; the dense
  // matrices agree with the labels in either mode.
  const apsp_result dense = hybrid_apsp_exact(g, cfg(), 9);
  ASSERT_TRUE(dense.materialized());
  const apsp_result label_only = hybrid_apsp_exact(
      g, cfg(), 9, false, opts(0, exploration_path::kAuto, result_storage::kLabels));
  EXPECT_FALSE(label_only.materialized());
  EXPECT_TRUE(label_only.dist.empty() && label_only.next_hop.empty());
  for (u32 u = 0; u < 64; ++u)
    ASSERT_EQ(label_only.labels.row(u), dense.dist[u]) << "row " << u;
  // The standalone materialize(sim_options) overload works without a net.
  ASSERT_EQ(label_only.labels.materialize(), dense.dist);
}

// ---- materialize() with unreachable pairs (explicit ∞ handling) -------------

TEST(DistOracleMaterialize, DisconnectedInfinityRowsScheme) {
  // materialize() on labels with unreachable pairs: every cross-component
  // entry must come out as EXACTLY kInfDist (the composition saturates at
  // the ball's ∞ — no wraparound, no kInfDist-plus-a-leg artifacts), and
  // the next-hop matrix must keep ~0 there.
  std::vector<edge_spec> edges{{0, 1, 2}, {1, 2, 1}, {3, 4, 5},
                               {4, 5, 1}, {3, 5, 4}};
  const graph g = graph::from_edges(8, edges);  // + isolated 6, 7
  const apsp_result lab = hybrid_apsp_exact(
      g, cfg(), 13, /*build_routes=*/true,
      opts(1, exploration_path::kAuto, result_storage::kLabels));
  round_executor ex;
  const auto dist = lab.labels.materialize(ex);
  const auto hops = lab.labels.materialize_next_hops(dist, ex);
  const auto truth = apsp_reference(g);
  for (u32 u = 0; u < 8; ++u)
    for (u32 v = 0; v < 8; ++v) {
      ASSERT_EQ(dist[u][v], truth[u][v]) << u << "->" << v;
      if (truth[u][v] == kInfDist) {
        ASSERT_EQ(dist[u][v], kInfDist) << u << "->" << v;
        ASSERT_EQ(hops[u][v], ~u32{0}) << u << "->" << v;
      }
    }
  // The component structure is what makes this a real ∞ test.
  ASSERT_EQ(dist[0][3], kInfDist);
  ASSERT_EQ(dist[6][7], kInfDist);
  ASSERT_EQ(dist[6][6], 0u);
}

TEST(DistOracleMaterialize, DisconnectedInfinityPairsScheme) {
  // Same property through the baseline's two-sided composition, whose
  // skip-at-exactly-∞ filter is the line that keeps ∞ from leaking a
  // finite gateway leg into an unreachable pair.
  std::vector<edge_spec> edges{{0, 1, 1}, {1, 2, 3}, {3, 4, 2}};
  const graph g = graph::from_edges(7, edges);  // + isolated 5, 6
  const apsp_baseline_result lab = baseline_apsp_ahkss(
      g, cfg(), 17, opts(1, exploration_path::kSparse, result_storage::kLabels));
  ASSERT_EQ(lab.labels.scheme, label_scheme::kSkeletonPairs);
  round_executor ex;
  const auto dist = lab.labels.materialize(ex);
  const auto truth = apsp_reference(g);
  for (u32 u = 0; u < 7; ++u)
    for (u32 v = 0; v < 7; ++v) {
      ASSERT_EQ(dist[u][v], truth[u][v]) << u << "->" << v;
      if (truth[u][v] == kInfDist) {
        ASSERT_EQ(dist[u][v], kInfDist) << u << "->" << v;
      }
    }
  ASSERT_EQ(dist[2][3], kInfDist);
  ASSERT_EQ(dist[5][0], kInfDist);
}

// ---- the baseline's two-sided labels ----------------------------------------

TEST(DistOracleBaseline, QueryMatchesDenseAndDijkstra) {
  const graph g = gen::erdos_renyi_connected(96, 4.5, 7, 31);
  const apsp_baseline_result ref = baseline_apsp_ahkss(
      g, cfg(), 31, opts(1, exploration_path::kDense, result_storage::kDense));
  const auto truth = apsp_reference(g);
  for (u32 u = 0; u < 96; ++u) ASSERT_EQ(ref.dist[u], truth[u]);
  for (u32 threads : {1u, 8u}) {
    const apsp_baseline_result lab = baseline_apsp_ahkss(
        g, cfg(), 31, opts(threads, exploration_path::kSparse, result_storage::kLabels));
    EXPECT_FALSE(lab.materialized());
    EXPECT_EQ(lab.labels.scheme, label_scheme::kSkeletonPairs);
    expect_metrics_eq(lab.metrics, ref.metrics);
    for (u32 u = 0; u < 96; ++u)
      for (u32 v = 0; v < 96; ++v)
        ASSERT_EQ(lab.labels.query(u, v), ref.dist[u][v]) << u << "->" << v;
    round_executor ex(opts(threads, exploration_path::kAuto, result_storage::kAuto));
    ASSERT_EQ(lab.labels.materialize(ex), ref.dist);
  }
}

TEST(DistOracleBaseline, DisconnectedTwoSided) {
  std::vector<edge_spec> edges{{0, 1, 1}, {1, 2, 2}, {3, 4, 1}};
  const graph g = graph::from_edges(6, edges);
  const apsp_baseline_result ref = baseline_apsp_ahkss(
      g, cfg(), 5, opts(1, exploration_path::kDense, result_storage::kDense));
  const apsp_baseline_result lab = baseline_apsp_ahkss(
      g, cfg(), 5, opts(1, exploration_path::kSparse, result_storage::kLabels));
  const auto truth = apsp_reference(g);
  for (u32 u = 0; u < 6; ++u)
    for (u32 v = 0; v < 6; ++v) {
      ASSERT_EQ(ref.dist[u][v], truth[u][v]);
      ASSERT_EQ(lab.labels.query(u, v), truth[u][v]) << u << "->" << v;
    }
}

// ---- k-SSP labels -----------------------------------------------------------

TEST(DistOracleKssp, QueryMatchesDenseRows) {
  const graph g = gen::erdos_renyi_connected(96, 4.0, 5, 7);
  const auto alg = make_clique_kssp_1eps(0.25, injection::none);
  const std::vector<u32> sources{4, 31, 77};
  const kssp_result ref = hybrid_kssp(
      g, cfg(), 7, sources, alg, false,
      opts(1, exploration_path::kDense, result_storage::kDense));
  ASSERT_TRUE(ref.materialized());
  for (u32 threads : {1u, 8u}) {
    const kssp_result lab = hybrid_kssp(
        g, cfg(), 7, sources, alg, false,
        opts(threads, exploration_path::kSparse, result_storage::kLabels));
    EXPECT_FALSE(lab.materialized());
    expect_metrics_eq(lab.metrics, ref.metrics);
    for (u32 j = 0; j < sources.size(); ++j) {
      ASSERT_EQ(lab.labels.row(j), ref.dist[j]) << "source " << j;
      for (u32 v = 0; v < 96; ++v)
        ASSERT_EQ(lab.labels.query(j, v), ref.dist[j][v]);
    }
    round_executor ex(opts(threads, exploration_path::kAuto, result_storage::kAuto));
    ASSERT_EQ(lab.labels.materialize(ex), ref.dist);
  }
}

TEST(DistOracleKssp, SsspRowIdenticalAcrossStorageModes) {
  const graph g = gen::grid(12, 12, 6, 13);
  const sssp_result dense = hybrid_sssp_exact(
      g, cfg(), 13, 5, opts(1, exploration_path::kAuto, result_storage::kDense));
  const sssp_result lab = hybrid_sssp_exact(
      g, cfg(), 13, 5, opts(1, exploration_path::kAuto, result_storage::kLabels));
  EXPECT_EQ(lab.dist, dense.dist);
  EXPECT_EQ(lab.dist, dijkstra(g, 5));
}

// ---- the charged-routing stand-in preserves results -------------------------

TEST(DistOracleCharged, ChargedRoutingPreservesDistances) {
  // model_config{charged_token_routing} (DESIGN.md deviation 9) replaces
  // the helper-machinery simulation with closed-form charging — the switch
  // the n = 10⁵ bench scenarios flip. Distances must be untouched.
  const graph g = gen::erdos_renyi_connected(96, 4.0, 6, 19);
  model_config charged = cfg();
  charged.charged_token_routing = true;
  const apsp_result lab = hybrid_apsp_exact(
      g, charged, 19, false,
      opts(1, exploration_path::kAuto, result_storage::kLabels));
  const auto truth = apsp_reference(g);
  for (u32 u = 0; u < 96; ++u)
    for (u32 v = 0; v < 96; ++v)
      ASSERT_EQ(lab.labels.query(u, v), truth[u][v]) << u << "->" << v;
  EXPECT_GT(lab.metrics.rounds, 0u);
}

// ---- diameter through the label path ----------------------------------------

TEST(DistOracleDiameter, ExactMatchesCentralizedReference) {
  for (u64 seed : {3u, 4u}) {
    const graph g = gen::erdos_renyi_connected(96, 4.5, 7, seed);
    const apsp_result lab = hybrid_apsp_exact(
        g, cfg(), seed, false,
        opts(1, exploration_path::kAuto, result_storage::kLabels));
    EXPECT_EQ(labels_exact_diameter(lab.labels), weighted_diameter(g));
  }
  const graph grid = gen::grid(8, 8, 5, 21);
  const apsp_result lab = hybrid_apsp_exact(grid, cfg(), 21);
  EXPECT_EQ(labels_exact_diameter(lab.labels), weighted_diameter(grid));
}

TEST(DistOracleDiameter, ExactSkipsUnreachablePairsWhenAsked) {
  std::vector<edge_spec> edges{{0, 1, 3}, {1, 2, 4}, {3, 4, 2}};
  const graph g = graph::from_edges(5, edges);
  const apsp_result lab = hybrid_apsp_exact(
      g, cfg(), 9, false, opts(1, exploration_path::kAuto, result_storage::kLabels));
  EXPECT_THROW(labels_exact_diameter(lab.labels), std::invalid_argument);
  EXPECT_EQ(labels_exact_diameter(lab.labels, /*require_connected=*/false), 7u);
}

TEST(DistOracleDiameter, EstimateWithinBoundOn50SeededGraphs) {
  // The (1 + ε̂) skeleton estimate: D ≤ estimate ≤ bound·D on connected
  // random graphs (full gateway coverage at default parameters), with
  // ε̂ = L/M measured from the labels themselves.
  for (u64 seed = 1; seed <= 50; ++seed) {
    rng r(1000 + seed);
    const u32 n = 40 + static_cast<u32>(r.next_below(80));
    const double deg = 3.0 + r.next_double() * 3.0;
    const u64 max_w = r.next_bool(0.5) ? 1 : 8;
    const graph g = gen::erdos_renyi_connected(n, deg, max_w, seed);
    const apsp_result lab = hybrid_apsp_exact(
        g, cfg(), seed, false,
        opts(1, exploration_path::kAuto, result_storage::kLabels));
    const label_diameter_estimate est = diameter_estimate_from_labels(lab.labels);
    ASSERT_EQ(est.covered, n) << "seed " << seed;
    const u64 d_true = weighted_diameter(g);
    ASSERT_GE(est.estimate, d_true) << "seed " << seed;
    ASSERT_LE(static_cast<double>(est.estimate),
              est.bound * static_cast<double>(d_true) + 1e-9)
        << "seed " << seed << " bound " << est.bound;
    ASSERT_LE(est.skeleton_max, d_true) << "seed " << seed;
  }
}

}  // namespace
}  // namespace hybrid
