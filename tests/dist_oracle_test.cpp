// Differential suite for the distance-label oracle (core/dist_oracle.hpp):
// on randomized ER / grid / star / bounded-degree / disconnected graphs,
// query(u, v) and next_hop(u, v) must be bit-identical to the materialized
// dense matrices and to centralized Dijkstra ground truth, at threads
// ∈ {1, 2, 8} and on both exploration paths; plus the h = 0 /
// isolated-vertex / singleton-component / unreachable-pair (∞) edge cases,
// the baseline's two-sided labels, the k-SSP labels, and the diameter
// label path (exact + the (1+ε̂) skeleton estimate). Runs in the TSAN CI
// job at 8 threads; `ctest -L oracle` runs it standalone.
#include <gtest/gtest.h>

#include <vector>

#include "core/apsp.hpp"
#include "core/apsp_baseline.hpp"
#include "core/diameter.hpp"
#include "core/kssp_framework.hpp"
#include "core/sssp.hpp"
#include "graph/diameter.hpp"
#include "graph/generators.hpp"
#include "graph/shortest_paths.hpp"

namespace hybrid {
namespace {

model_config cfg() { return model_config{}; }

sim_options opts(u32 threads, exploration_path explo, result_storage storage) {
  sim_options o;
  o.threads = threads;
  o.exploration = explo;
  o.storage = storage;
  return o;
}

void expect_metrics_eq(const run_metrics& a, const run_metrics& b) {
  EXPECT_EQ(a.rounds, b.rounds);
  EXPECT_EQ(a.local_items, b.local_items);
  EXPECT_EQ(a.global_messages, b.global_messages);
  EXPECT_EQ(a.global_payload_words, b.global_payload_words);
  EXPECT_EQ(a.max_global_recv_per_round, b.max_global_recv_per_round);
}

/// Dense reference at one thread vs label-only runs at threads {1, 2, 8} on
/// both exploration paths: per-pair query/next_hop identity, materialize()
/// identity, metric identity, and Dijkstra ground truth.
void apsp_differential(const graph& g, u64 seed) {
  const u32 n = g.num_nodes();
  const apsp_result ref = hybrid_apsp_exact(
      g, cfg(), seed, /*build_routes=*/true,
      opts(1, exploration_path::kDense, result_storage::kDense));
  ASSERT_EQ(ref.dist.size(), n);
  const auto truth = apsp_reference(g);
  for (u32 u = 0; u < n; ++u) ASSERT_EQ(ref.dist[u], truth[u]) << "row " << u;

  for (u32 threads : {1u, 2u, 8u})
    for (exploration_path explo :
         {exploration_path::kDense, exploration_path::kSparse}) {
      const apsp_result lab = hybrid_apsp_exact(
          g, cfg(), seed, /*build_routes=*/true,
          opts(threads, explo, result_storage::kLabels));
      ASSERT_TRUE(!lab.materialized());
      ASSERT_TRUE(lab.labels.routes);
      expect_metrics_eq(lab.metrics, ref.metrics);
      for (u32 u = 0; u < n; ++u)
        for (u32 v = 0; v < n; ++v) {
          ASSERT_EQ(lab.labels.query(u, v), ref.dist[u][v])
              << u << "->" << v << " threads=" << threads;
          ASSERT_EQ(lab.labels.next_hop(u, v), ref.next_hop[u][v])
              << u << "->" << v << " threads=" << threads;
        }
      // The dense adapters reproduce the matrices bit for bit.
      round_executor ex(opts(threads, explo, result_storage::kLabels));
      const auto dist = lab.labels.materialize(ex);
      ASSERT_EQ(dist, ref.dist);
      ASSERT_EQ(lab.labels.materialize_next_hops(dist, ex), ref.next_hop);
    }
}

// ---- randomized differential runs ------------------------------------------

TEST(DistOracleDiff, ErdosRenyiRandomized) {
  for (u64 seed : {51u, 52u, 53u}) {
    rng r(seed);
    const u32 n = 48 + static_cast<u32>(r.next_below(72));
    const double deg = 3.5 + r.next_double() * 2.5;
    const u64 max_w = r.next_bool(0.5) ? 1 : 9;
    apsp_differential(gen::erdos_renyi_connected(n, deg, max_w, seed), seed);
  }
}

TEST(DistOracleDiff, Grid) { apsp_differential(gen::grid(9, 9, 6, 23), 23); }

TEST(DistOracleDiff, Star) {
  // balanced_tree with arity n-1 is a star: every leaf routes through the
  // hub, so gateway composition and next-hop tie-breaks get a dense workout.
  apsp_differential(gen::balanced_tree(40, 39, 4, 7), 7);
}

TEST(DistOracleDiff, BoundedDegree) {
  apsp_differential(gen::bounded_degree(72, 3, 5, 11), 11);
}

TEST(DistOracleDiff, DisconnectedWithIsolatedVertices) {
  // Two components (path, triangle) plus two isolated vertices: queries
  // across components must return kInfDist exactly where Dijkstra does, and
  // next_hop must stay ~0 there.
  std::vector<edge_spec> edges{{0, 1, 2}, {1, 2, 1}, {2, 3, 3},
                               {4, 5, 1}, {5, 6, 2}, {4, 6, 2}};
  const graph g = graph::from_edges(9, edges);
  apsp_differential(g, 3);
  const apsp_result lab = hybrid_apsp_exact(
      g, cfg(), 3, true, opts(1, exploration_path::kSparse, result_storage::kLabels));
  for (u32 v : {7u, 8u}) {
    EXPECT_EQ(lab.labels.query(v, v), 0u);       // singleton component
    EXPECT_EQ(lab.labels.next_hop(v, v), v);
    EXPECT_EQ(lab.labels.query(v, 0), kInfDist);  // unreachable pair
    EXPECT_EQ(lab.labels.next_hop(v, 0), ~u32{0});
    EXPECT_EQ(lab.labels.query(0, v), kInfDist);
  }
  EXPECT_EQ(lab.labels.query(0, 5), kInfDist);  // across the two components
}

// ---- edge cases -------------------------------------------------------------

TEST(DistOracleEdge, HZeroBallOnlyLabels) {
  // h = 0 labels built directly: every ball is the node itself, no
  // gateways, empty skeleton table — query must fall through the (absent)
  // skeleton part and report self-distance 0 / kInfDist elsewhere.
  dist_labels lab;
  lab.n = 3;
  lab.n_s = 0;
  lab.h = 0;
  lab.ball.offsets = {0, 1, 2, 3};
  lab.ball.entries = {{0, 0, 0}, {0, 1, 1}, {0, 2, 2}};
  lab.gw_offsets = {0, 0, 0, 0};
  for (u32 u = 0; u < 3; ++u)
    for (u32 v = 0; v < 3; ++v)
      EXPECT_EQ(lab.query(u, v), u == v ? 0 : kInfDist) << u << "->" << v;
  EXPECT_EQ(lab.row(1), (std::vector<u64>{kInfDist, 0, kInfDist}));
}

TEST(DistOracleEdge, BallOnlyTwoSidedLabels) {
  // The two-sided scheme with no gateways likewise degenerates to the ball.
  dist_labels lab;
  lab.n = 2;
  lab.n_s = 1;
  lab.scheme = label_scheme::kSkeletonPairs;
  lab.ball.offsets = {0, 1, 2};
  lab.ball.entries = {{0, 0, 0}, {0, 1, 1}};
  lab.gw_offsets = {0, 0, 0};
  lab.skel = {0};
  EXPECT_EQ(lab.query(0, 1), kInfDist);
  EXPECT_EQ(lab.query(1, 1), 0u);
}

TEST(DistOracleEdge, NextHopRequiresRoutes) {
  const graph g = gen::path(32, 3, 5);
  const apsp_result lab = hybrid_apsp_exact(
      g, cfg(), 5, /*build_routes=*/false,
      opts(1, exploration_path::kAuto, result_storage::kLabels));
  EXPECT_FALSE(lab.labels.routes);
  EXPECT_EQ(lab.labels.query(0, 31), dijkstra(g, 0)[31]);
  EXPECT_THROW(lab.labels.next_hop(0, 31), std::invalid_argument);
}

TEST(DistOracleEdge, StorageResolution) {
  const graph g = gen::erdos_renyi_connected(64, 4.0, 5, 9);
  // kAuto materializes below the cutoff; kLabels never does; the dense
  // matrices agree with the labels in either mode.
  const apsp_result dense = hybrid_apsp_exact(g, cfg(), 9);
  ASSERT_TRUE(dense.materialized());
  const apsp_result label_only = hybrid_apsp_exact(
      g, cfg(), 9, false, opts(0, exploration_path::kAuto, result_storage::kLabels));
  EXPECT_FALSE(label_only.materialized());
  EXPECT_TRUE(label_only.dist.empty() && label_only.next_hop.empty());
  for (u32 u = 0; u < 64; ++u)
    ASSERT_EQ(label_only.labels.row(u), dense.dist[u]) << "row " << u;
  // The standalone materialize(sim_options) overload works without a net.
  ASSERT_EQ(label_only.labels.materialize(), dense.dist);
}

// ---- materialize() with unreachable pairs (explicit ∞ handling) -------------

TEST(DistOracleMaterialize, DisconnectedInfinityRowsScheme) {
  // materialize() on labels with unreachable pairs: every cross-component
  // entry must come out as EXACTLY kInfDist (the composition saturates at
  // the ball's ∞ — no wraparound, no kInfDist-plus-a-leg artifacts), and
  // the next-hop matrix must keep ~0 there.
  std::vector<edge_spec> edges{{0, 1, 2}, {1, 2, 1}, {3, 4, 5},
                               {4, 5, 1}, {3, 5, 4}};
  const graph g = graph::from_edges(8, edges);  // + isolated 6, 7
  const apsp_result lab = hybrid_apsp_exact(
      g, cfg(), 13, /*build_routes=*/true,
      opts(1, exploration_path::kAuto, result_storage::kLabels));
  round_executor ex;
  const auto dist = lab.labels.materialize(ex);
  const auto hops = lab.labels.materialize_next_hops(dist, ex);
  const auto truth = apsp_reference(g);
  for (u32 u = 0; u < 8; ++u)
    for (u32 v = 0; v < 8; ++v) {
      ASSERT_EQ(dist[u][v], truth[u][v]) << u << "->" << v;
      if (truth[u][v] == kInfDist) {
        ASSERT_EQ(dist[u][v], kInfDist) << u << "->" << v;
        ASSERT_EQ(hops[u][v], ~u32{0}) << u << "->" << v;
      }
    }
  // The component structure is what makes this a real ∞ test.
  ASSERT_EQ(dist[0][3], kInfDist);
  ASSERT_EQ(dist[6][7], kInfDist);
  ASSERT_EQ(dist[6][6], 0u);
}

TEST(DistOracleMaterialize, DisconnectedInfinityPairsScheme) {
  // Same property through the baseline's two-sided composition, whose
  // skip-at-exactly-∞ filter is the line that keeps ∞ from leaking a
  // finite gateway leg into an unreachable pair.
  std::vector<edge_spec> edges{{0, 1, 1}, {1, 2, 3}, {3, 4, 2}};
  const graph g = graph::from_edges(7, edges);  // + isolated 5, 6
  const apsp_baseline_result lab = baseline_apsp_ahkss(
      g, cfg(), 17, opts(1, exploration_path::kSparse, result_storage::kLabels));
  ASSERT_EQ(lab.labels.scheme, label_scheme::kSkeletonPairs);
  round_executor ex;
  const auto dist = lab.labels.materialize(ex);
  const auto truth = apsp_reference(g);
  for (u32 u = 0; u < 7; ++u)
    for (u32 v = 0; v < 7; ++v) {
      ASSERT_EQ(dist[u][v], truth[u][v]) << u << "->" << v;
      if (truth[u][v] == kInfDist) {
        ASSERT_EQ(dist[u][v], kInfDist) << u << "->" << v;
      }
    }
  ASSERT_EQ(dist[2][3], kInfDist);
  ASSERT_EQ(dist[5][0], kInfDist);
}

// ---- the baseline's two-sided labels ----------------------------------------

TEST(DistOracleBaseline, QueryMatchesDenseAndDijkstra) {
  const graph g = gen::erdos_renyi_connected(96, 4.5, 7, 31);
  const apsp_baseline_result ref = baseline_apsp_ahkss(
      g, cfg(), 31, opts(1, exploration_path::kDense, result_storage::kDense));
  const auto truth = apsp_reference(g);
  for (u32 u = 0; u < 96; ++u) ASSERT_EQ(ref.dist[u], truth[u]);
  for (u32 threads : {1u, 8u}) {
    const apsp_baseline_result lab = baseline_apsp_ahkss(
        g, cfg(), 31, opts(threads, exploration_path::kSparse, result_storage::kLabels));
    EXPECT_FALSE(lab.materialized());
    EXPECT_EQ(lab.labels.scheme, label_scheme::kSkeletonPairs);
    expect_metrics_eq(lab.metrics, ref.metrics);
    for (u32 u = 0; u < 96; ++u)
      for (u32 v = 0; v < 96; ++v)
        ASSERT_EQ(lab.labels.query(u, v), ref.dist[u][v]) << u << "->" << v;
    round_executor ex(opts(threads, exploration_path::kAuto, result_storage::kAuto));
    ASSERT_EQ(lab.labels.materialize(ex), ref.dist);
  }
}

TEST(DistOracleBaseline, DisconnectedTwoSided) {
  std::vector<edge_spec> edges{{0, 1, 1}, {1, 2, 2}, {3, 4, 1}};
  const graph g = graph::from_edges(6, edges);
  const apsp_baseline_result ref = baseline_apsp_ahkss(
      g, cfg(), 5, opts(1, exploration_path::kDense, result_storage::kDense));
  const apsp_baseline_result lab = baseline_apsp_ahkss(
      g, cfg(), 5, opts(1, exploration_path::kSparse, result_storage::kLabels));
  const auto truth = apsp_reference(g);
  for (u32 u = 0; u < 6; ++u)
    for (u32 v = 0; v < 6; ++v) {
      ASSERT_EQ(ref.dist[u][v], truth[u][v]);
      ASSERT_EQ(lab.labels.query(u, v), truth[u][v]) << u << "->" << v;
    }
}

// ---- k-SSP labels -----------------------------------------------------------

TEST(DistOracleKssp, QueryMatchesDenseRows) {
  const graph g = gen::erdos_renyi_connected(96, 4.0, 5, 7);
  const auto alg = make_clique_kssp_1eps(0.25, injection::none);
  const std::vector<u32> sources{4, 31, 77};
  const kssp_result ref = hybrid_kssp(
      g, cfg(), 7, sources, alg, false,
      opts(1, exploration_path::kDense, result_storage::kDense));
  ASSERT_TRUE(ref.materialized());
  for (u32 threads : {1u, 8u}) {
    const kssp_result lab = hybrid_kssp(
        g, cfg(), 7, sources, alg, false,
        opts(threads, exploration_path::kSparse, result_storage::kLabels));
    EXPECT_FALSE(lab.materialized());
    expect_metrics_eq(lab.metrics, ref.metrics);
    for (u32 j = 0; j < sources.size(); ++j) {
      ASSERT_EQ(lab.labels.row(j), ref.dist[j]) << "source " << j;
      for (u32 v = 0; v < 96; ++v)
        ASSERT_EQ(lab.labels.query(j, v), ref.dist[j][v]);
    }
    round_executor ex(opts(threads, exploration_path::kAuto, result_storage::kAuto));
    ASSERT_EQ(lab.labels.materialize(ex), ref.dist);
  }
}

TEST(DistOracleKssp, SsspRowIdenticalAcrossStorageModes) {
  const graph g = gen::grid(12, 12, 6, 13);
  const sssp_result dense = hybrid_sssp_exact(
      g, cfg(), 13, 5, opts(1, exploration_path::kAuto, result_storage::kDense));
  const sssp_result lab = hybrid_sssp_exact(
      g, cfg(), 13, 5, opts(1, exploration_path::kAuto, result_storage::kLabels));
  EXPECT_EQ(lab.dist, dense.dist);
  EXPECT_EQ(lab.dist, dijkstra(g, 5));
}

// ---- the charged-routing stand-in preserves results -------------------------

TEST(DistOracleCharged, ChargedRoutingPreservesDistances) {
  // model_config{charged_token_routing} (DESIGN.md deviation 9) replaces
  // the helper-machinery simulation with closed-form charging — the switch
  // the n = 10⁵ bench scenarios flip. Distances must be untouched.
  const graph g = gen::erdos_renyi_connected(96, 4.0, 6, 19);
  model_config charged = cfg();
  charged.charged_token_routing = true;
  const apsp_result lab = hybrid_apsp_exact(
      g, charged, 19, false,
      opts(1, exploration_path::kAuto, result_storage::kLabels));
  const auto truth = apsp_reference(g);
  for (u32 u = 0; u < 96; ++u)
    for (u32 v = 0; v < 96; ++v)
      ASSERT_EQ(lab.labels.query(u, v), truth[u][v]) << u << "->" << v;
  EXPECT_GT(lab.metrics.rounds, 0u);
}

// ---- diameter through the label path ----------------------------------------

TEST(DistOracleDiameter, ExactMatchesCentralizedReference) {
  for (u64 seed : {3u, 4u}) {
    const graph g = gen::erdos_renyi_connected(96, 4.5, 7, seed);
    const apsp_result lab = hybrid_apsp_exact(
        g, cfg(), seed, false,
        opts(1, exploration_path::kAuto, result_storage::kLabels));
    EXPECT_EQ(labels_exact_diameter(lab.labels), weighted_diameter(g));
  }
  const graph grid = gen::grid(8, 8, 5, 21);
  const apsp_result lab = hybrid_apsp_exact(grid, cfg(), 21);
  EXPECT_EQ(labels_exact_diameter(lab.labels), weighted_diameter(grid));
}

TEST(DistOracleDiameter, ExactSkipsUnreachablePairsWhenAsked) {
  std::vector<edge_spec> edges{{0, 1, 3}, {1, 2, 4}, {3, 4, 2}};
  const graph g = graph::from_edges(5, edges);
  const apsp_result lab = hybrid_apsp_exact(
      g, cfg(), 9, false, opts(1, exploration_path::kAuto, result_storage::kLabels));
  EXPECT_THROW(labels_exact_diameter(lab.labels), std::invalid_argument);
  EXPECT_EQ(labels_exact_diameter(lab.labels, /*require_connected=*/false), 7u);
}

TEST(DistOracleDiameter, EstimateWithinBoundOn50SeededGraphs) {
  // The (1 + ε̂) skeleton estimate: D ≤ estimate ≤ bound·D on connected
  // random graphs (full gateway coverage at default parameters), with
  // ε̂ = L/M measured from the labels themselves.
  for (u64 seed = 1; seed <= 50; ++seed) {
    rng r(1000 + seed);
    const u32 n = 40 + static_cast<u32>(r.next_below(80));
    const double deg = 3.0 + r.next_double() * 3.0;
    const u64 max_w = r.next_bool(0.5) ? 1 : 8;
    const graph g = gen::erdos_renyi_connected(n, deg, max_w, seed);
    const apsp_result lab = hybrid_apsp_exact(
        g, cfg(), seed, false,
        opts(1, exploration_path::kAuto, result_storage::kLabels));
    const label_diameter_estimate est = diameter_estimate_from_labels(lab.labels);
    ASSERT_EQ(est.covered, n) << "seed " << seed;
    const u64 d_true = weighted_diameter(g);
    ASSERT_GE(est.estimate, d_true) << "seed " << seed;
    ASSERT_LE(static_cast<double>(est.estimate),
              est.bound * static_cast<double>(d_true) + 1e-9)
        << "seed " << seed << " bound " << est.bound;
    ASSERT_LE(est.skeleton_max, d_true) << "seed " << seed;
  }
}

// ---- the two-level hierarchy (kTwoLevel) ------------------------------------

sim_options two_level_opts(u32 threads) {
  sim_options o = opts(threads, exploration_path::kAuto, result_storage::kLabels);
  o.hierarchy = oracle_hierarchy::kTwoLevel;
  return o;
}

TEST(DistOracleTwoLevel, QueryRowMaterializeAgreeAndNeverUnderestimate) {
  // The composition through ball1/gw1/super-pairs is an upper bound by
  // construction (every candidate is a real walk), must agree with itself
  // across query/row_into/materialize, and must keep ∞ exact: an
  // unreachable pair composes to EXACTLY kInfDist, never a wrapped sum.
  for (u64 seed : {201u, 202u, 203u}) {
    rng r(seed);
    const u32 n = 48 + static_cast<u32>(r.next_below(72));
    const double deg = 3.5 + r.next_double() * 2.5;
    const u64 max_w = r.next_bool(0.5) ? 1 : 9;
    const graph g = gen::erdos_renyi_connected(n, deg, max_w, seed);
    const apsp_result lab =
        hybrid_apsp_exact(g, cfg(), seed, false, two_level_opts(1));
    ASSERT_EQ(lab.labels.scheme, label_scheme::kTwoLevel);
    ASSERT_GE(lab.labels.n_s2, 1u);
    ASSERT_LE(lab.labels.n_s2, lab.labels.n_s);
    const auto truth = apsp_reference(g);
    round_executor ex;
    const auto dense = lab.labels.materialize(ex);
    std::vector<u64> row;
    for (u32 u = 0; u < n; ++u) {
      lab.labels.row_into(u, row);
      ASSERT_EQ(row, dense[u]) << "row " << u;
      for (u32 v = 0; v < n; ++v) {
        const u64 q = lab.labels.query(u, v);
        ASSERT_EQ(q, row[v]) << u << "->" << v;
        ASSERT_GE(q, truth[u][v]) << u << "->" << v;  // never underestimate
        if (truth[u][v] == kInfDist) {
          ASSERT_EQ(q, kInfDist) << u << "->" << v;
        }
      }
    }
  }
}

TEST(DistOracleTwoLevel, ExactAtSaturatedDefaults) {
  // At default parameters on these seeds the skeleton and super-skeleton
  // hop budgets saturate (Lemma C.2 at both levels), so the two-level
  // composition is exact — and with exact distances the route exchange
  // works unchanged, so next_hop matches the single-level oracle too.
  for (u64 seed : {31u, 32u}) {
    const graph g = gen::erdos_renyi_connected(96, 4.5, 7, seed);
    const apsp_result two =
        hybrid_apsp_exact(g, cfg(), seed, true, two_level_opts(1));
    const apsp_result one = hybrid_apsp_exact(
        g, cfg(), seed, true,
        opts(1, exploration_path::kAuto, result_storage::kLabels));
    const auto truth = apsp_reference(g);
    for (u32 u = 0; u < 96; ++u)
      for (u32 v = 0; v < 96; ++v) {
        ASSERT_EQ(two.labels.query(u, v), truth[u][v])
            << u << "->" << v << " seed " << seed;
        ASSERT_EQ(two.labels.next_hop(u, v), one.labels.next_hop(u, v))
            << u << "->" << v << " seed " << seed;
      }
    // The label-path diameter consumers accept the scheme.
    EXPECT_EQ(labels_exact_diameter(two.labels), weighted_diameter(g));
    const label_diameter_estimate est =
        diameter_estimate_from_labels(two.labels);
    EXPECT_EQ(est.covered, 96u);
    EXPECT_GE(est.estimate, weighted_diameter(g));
  }
}

TEST(DistOracleTwoLevel, ConstructionBitIdenticalAcrossThreads) {
  // The whole two-level build (skeleton, super-skeleton sampling, ball1/gw1
  // flattening, super-pair Dijkstras) runs on the deterministic executor:
  // every label array and every metric must be bit-identical at any thread
  // count (docs/CONCURRENCY.md contract).
  const graph g = gen::erdos_renyi_connected(90, 4.0, 6, 57);
  const apsp_result ref = hybrid_apsp_exact(g, cfg(), 57, false, two_level_opts(1));
  for (u32 threads : {2u, 8u}) {
    const apsp_result got =
        hybrid_apsp_exact(g, cfg(), 57, false, two_level_opts(threads));
    EXPECT_EQ(got.labels.n_s2, ref.labels.n_s2) << "threads " << threads;
    EXPECT_EQ(got.labels.ball.offsets, ref.labels.ball.offsets);
    EXPECT_EQ(got.labels.ball.entries, ref.labels.ball.entries);
    EXPECT_EQ(got.labels.gw_offsets, ref.labels.gw_offsets);
    EXPECT_EQ(got.labels.gateways, ref.labels.gateways);
    EXPECT_EQ(got.labels.skeleton_nodes, ref.labels.skeleton_nodes);
    EXPECT_EQ(got.labels.skel, ref.labels.skel);
    EXPECT_EQ(got.labels.ball1_offsets, ref.labels.ball1_offsets);
    EXPECT_EQ(got.labels.ball1_entries, ref.labels.ball1_entries);
    EXPECT_EQ(got.labels.gw1_offsets, ref.labels.gw1_offsets);
    EXPECT_EQ(got.labels.gw1, ref.labels.gw1);
    EXPECT_EQ(got.labels.super_nodes, ref.labels.super_nodes);
    expect_metrics_eq(got.metrics, ref.metrics);
  }
}

TEST(DistOracleTwoLevel, DisconnectedSuperSkeletonInfinityRegression) {
  // Hand-built labels with a DISCONNECTED super-skeleton and gateway legs
  // near kInfDist: the composition's deepest term has five addends, so an
  // unskipped ∞ super-pair entry would wrap u64 and surface as a small
  // finite distance. The ∞ skip must keep the answer exactly kInfDist.
  const u64 huge = kInfDist - 1;  // finite, maximal — the wraparound fuel
  dist_labels lab;
  lab.n = 4;
  lab.n_s = 2;
  lab.n_s2 = 2;
  lab.h = 1;
  lab.scheme = label_scheme::kTwoLevel;
  lab.ball.offsets = {0, 1, 2, 3, 4};
  lab.ball.entries = {{0, 0, 0}, {0, 1, 1}, {0, 2, 2}, {0, 3, 3}};  // self only
  // Node 0 reaches skeleton index 0, node 3 reaches skeleton index 1; the
  // skeleton nodes reach themselves.
  lab.gw_offsets = {0, 1, 2, 3, 4};
  lab.gateways = {{0, huge, 1}, {0, 0, 1}, {1, 0, 2}, {1, huge, 2}};
  lab.skeleton_nodes = {1, 2};
  // Level 1: each skeleton node's ball1 holds only itself, and its super
  // gateway leg is also maximal — the unskipped candidate would sum to
  // 4·(kInfDist−1) + kInfDist > 2^64 and wrap to a value BELOW kInfDist,
  // turning an unreachable pair into a bogus finite answer. The two super
  // components never meet: all cross entries ∞.
  lab.ball1_offsets = {0, 1, 2};
  lab.ball1_entries = {{0, 0, 0}, {0, 1, 1}};
  lab.gw1_offsets = {0, 1, 2};
  lab.gw1 = {{0, huge, 0}, {1, huge, 1}};
  lab.super_nodes = {0, 1};
  lab.skel = {0, kInfDist, kInfDist, 0};
  // Within a component ({0,1} through skeleton node 1, {2,3} through
  // skeleton node 2) the one finite leg is `huge`; every cross-component
  // pair must compose to exactly kInfDist.
  for (u32 u = 0; u < 4; ++u)
    for (u32 v = 0; v < 4; ++v) {
      const u64 want =
          u == v ? 0 : ((u < 2) == (v < 2) ? huge : kInfDist);
      EXPECT_EQ(lab.query(u, v), want) << u << "->" << v;
    }
  EXPECT_EQ(lab.row(0), (std::vector<u64>{0, huge, kInfDist, kInfDist}));
  EXPECT_EQ(lab.row(3), (std::vector<u64>{kInfDist, kInfDist, huge, 0}));
}

TEST(DistOracleEdge, SkeletonRowsInfinityEntrySkippedExactly) {
  // kSkeletonRows regression for the same invariant: the only gateway's row
  // entry is ∞ with a maximal finite gateway leg — the sum exceeds kInfDist,
  // and the answer must be EXACTLY kInfDist, not a clamped or wrapped value.
  dist_labels lab;
  lab.n = 2;
  lab.n_s = 1;
  lab.h = 1;
  lab.scheme = label_scheme::kSkeletonRows;
  lab.ball.offsets = {0, 1, 2};
  lab.ball.entries = {{0, 0, 0}, {0, 1, 1}};
  lab.gw_offsets = {0, 1, 2};
  lab.gateways = {{0, kInfDist - 1, 1}, {0, 0, 1}};
  lab.skeleton_nodes = {1};
  lab.skel = {kInfDist, 0};  // d(s, 0) = ∞: node 0 is severed from s
  EXPECT_EQ(lab.query(0, 1), kInfDist - 1);  // the finite leg still works
  EXPECT_EQ(lab.query(1, 0), kInfDist);      // ∞ entry skipped, not added
  EXPECT_EQ(lab.row(1), (std::vector<u64>{kInfDist, 0}));
}

}  // namespace
}  // namespace hybrid
