// Edge-case and shape tests that don't fit the per-module files:
// dissemination's √k behavior where it actually shows (paths), degenerate
// instances, all-ones/all-zeros disjointness encodings, and the k-SSP
// framework driven to its k = n extreme.
#include <gtest/gtest.h>

#include <cmath>

#include "core/kssp_framework.hpp"
#include "graph/diameter.hpp"
#include "graph/generators.hpp"
#include "graph/shortest_paths.hpp"
#include "lb/gamma_graph.hpp"
#include "proto/dissemination.hpp"
#include "proto/representatives.hpp"
#include "proto/skeleton.hpp"
#include "proto/token_routing.hpp"

namespace hybrid {
namespace {

model_config cfg() { return model_config{}; }

// ---- dissemination where √k matters ------------------------------------------

TEST(DisseminationShape, SublinearGrowthInK) {
  // Small k completes within the per-node receive budget γ·rounds; the
  // interesting regime is k >> n·γ, where the ball-collectively-receives
  // argument gives Õ(√k). 16× more tokens must cost far less than 16×.
  const graph g = gen::path(128);
  std::vector<u64> rounds;
  for (u32 k : {1024u, 16384u}) {
    hybrid_net net(g, cfg(), 5);
    rng r(9);
    std::vector<std::vector<token2>> initial(128);
    for (u32 t = 0; t < k; ++t)
      initial[r.next_below(128)].push_back({t, t});
    disseminate(net, initial);
    rounds.push_back(net.round());
  }
  EXPECT_GT(rounds[1], rounds[0]);
  EXPECT_LT(rounds[1], 10 * rounds[0]);  // Õ(√k) predicts ≈ 4×
}

TEST(DisseminationShape, SingleHeavyOwnerPaysEll) {
  // ℓ = k concentrated on one node: the ℓ term dominates (Lemma B.1).
  const graph g = gen::erdos_renyi_connected(128, 5.0, 1, 3);
  u64 concentrated, spread;
  {
    hybrid_net net(g, cfg(), 7);
    std::vector<std::vector<token2>> initial(128);
    for (u32 t = 0; t < 512; ++t) initial[0].push_back({t, t});
    disseminate(net, initial);
    concentrated = net.round();
  }
  {
    hybrid_net net(g, cfg(), 7);
    rng r(11);
    std::vector<std::vector<token2>> initial(128);
    for (u32 t = 0; t < 512; ++t)
      initial[r.next_below(128)].push_back({t, t});
    disseminate(net, initial);
    spread = net.round();
  }
  EXPECT_GE(concentrated, spread);
}

// ---- degenerate & adversarial instances --------------------------------------

TEST(GammaGraph, AllOnesMaximalIntersection) {
  // a = b = all-ones: no red edges at all; diameter must exceed the
  // disjoint threshold.
  const u32 k = 4, ell = 4;
  std::vector<u8> ones(k * k, 1);
  const lb::gamma_graph gg = lb::build_gamma({k, ell, 16}, ones, ones);
  EXPECT_GE(weighted_diameter(gg.g), gg.high_diameter());
}

TEST(GammaGraph, AllZerosFullyRed) {
  // a = b = all-zeros: every red edge present (disjoint instance).
  const u32 k = 4, ell = 4;
  std::vector<u8> zeros(k * k, 0);
  const lb::gamma_graph gg = lb::build_gamma({k, ell, 16}, zeros, zeros);
  EXPECT_LE(weighted_diameter(gg.g), gg.low_diameter());
}

TEST(TokenRouting, SingleSenderSingleReceiver) {
  const graph g = gen::grid(8, 8);
  routing_spec spec;
  spec.senders = {0};
  spec.receivers = {63};
  spec.k_s = 1;
  spec.k_r = 1;
  std::vector<std::vector<routed_token>> batch(1);
  batch[0].push_back({0, 63, 0, 0xCAFE});
  hybrid_net net(g, cfg(), 3);
  const auto got = run_token_routing(net, spec, batch);
  ASSERT_EQ(got[0].size(), 1u);
  EXPECT_EQ(got[0][0].payload, 0xCAFEu);
}

TEST(Skeleton, SampleProbabilityOneIsWholeGraph) {
  const graph g = gen::grid(6, 6, 4, 2);
  hybrid_net net(g, cfg(), 2);
  const skeleton_result sk = compute_skeleton(net, 1.0);
  EXPECT_EQ(sk.nodes.size(), g.num_nodes());
  // With every node sampled, skeleton distances are graph distances.
  const auto dist_s = skeleton_apsp(sk);
  const auto ref = apsp_reference(g);
  for (u32 i = 0; i < sk.nodes.size(); ++i)
    for (u32 j = 0; j < sk.nodes.size(); ++j)
      EXPECT_EQ(dist_s[i][j], ref[sk.nodes[i]][sk.nodes[j]]);
}

TEST(Representatives, AllSourcesAreSkeleton) {
  const graph g = gen::grid(8, 8);
  hybrid_net net(g, cfg(), 4);
  const skeleton_result sk = compute_skeleton(net, 1.0);
  const std::vector<u32> sources = {0, 21, 63};
  const auto reps = compute_representatives(net, sk, sources);
  for (u32 j = 0; j < sources.size(); ++j) {
    EXPECT_EQ(reps.rep_of[j], sk.index_of[sources[j]]);
    EXPECT_EQ(reps.dist_to_rep[j], 0u);
  }
}

// ---- k-SSP at its extremes ----------------------------------------------------

TEST(KsspExtremes, AllNodesAsSources) {
  // k = n: the framework degenerates toward APSP (Lemma 4.4's regime).
  const graph g = gen::erdos_renyi_connected(96, 5.0, 6, 7);
  std::vector<u32> sources(96);
  for (u32 v = 0; v < 96; ++v) sources[v] = v;
  const auto alg = make_clique_apsp_2eps(0.25, injection::none);
  const kssp_result res = hybrid_kssp(g, cfg(), 13, sources, alg);
  const auto ref = apsp_reference(g);
  for (u32 j = 0; j < 96; ++j)
    for (u32 v = 0; v < 96; ++v) {
      ASSERT_GE(res.dist[j][v], ref[j][v]);
      ASSERT_LE(static_cast<double>(res.dist[j][v]),
                res.bound_weighted * static_cast<double>(ref[j][v]) + 1e-9);
    }
}

TEST(KsspExtremes, TwoNodeNetwork) {
  const graph g = gen::path(2, 5, 3);
  const auto alg = make_clique_sssp_exact();
  const kssp_result res = hybrid_kssp(g, cfg(), 1, {0}, alg, true);
  EXPECT_EQ(res.dist[0][0], 0u);
  EXPECT_EQ(res.dist[0][1], dijkstra(g, 0)[1]);
}

TEST(KsspExtremes, SourcesShareOneRepresentative) {
  // A star-ish graph with one skeleton node forced: several sources close
  // together must be allowed to share a representative (dedup path).
  const graph g = gen::balanced_tree(64, 4, 1, 5);
  model_config c = cfg();
  hybrid_net net(g, c, 3);
  const skeleton_result sk = compute_skeleton(net, 0.02, {0});
  const std::vector<u32> sources = {1, 2, 3, 4};
  const auto reps = compute_representatives(net, sk, sources);
  // However reps land, they must be valid skeleton indices with correct d_h.
  for (u32 j = 0; j < sources.size(); ++j) {
    ASSERT_LT(reps.rep_of[j], sk.nodes.size());
    const auto lim = limited_distance(g, sk.nodes[reps.rep_of[j]], sk.h);
    EXPECT_EQ(reps.dist_to_rep[j], lim[sources[j]]);
  }
}

}  // namespace
}  // namespace hybrid
