// Tests for the parallel round executor and its determinism contract
// (docs/CONCURRENCY.md): sharding coverage, reductions, exception
// propagation, thread-count-invariant simulation outputs, and a
// TSAN-friendly stress of concurrent γ-budget accounting.
#include <gtest/gtest.h>

#include <atomic>
#include <cstdlib>
#include <stdexcept>

#include "core/apsp.hpp"
#include "core/sssp.hpp"
#include "graph/generators.hpp"
#include "graph/shortest_paths.hpp"
#include "proto/dissemination.hpp"
#include "sim/executor.hpp"
#include "sim/hybrid_net.hpp"

namespace hybrid {
namespace {

TEST(ResolveThreads, ExplicitKnobWins) {
  EXPECT_EQ(resolve_threads(sim_options{3}), 3u);
  EXPECT_EQ(resolve_threads(sim_options{1}), 1u);
}

TEST(ResolveThreads, EnvOverrideWhenAuto) {
  setenv("HYBRID_THREADS", "5", 1);
  EXPECT_EQ(resolve_threads(sim_options{}), 5u);
  EXPECT_EQ(resolve_threads(sim_options{2}), 2u);  // explicit still wins
  setenv("HYBRID_THREADS", "garbage", 1);
  EXPECT_GE(resolve_threads(sim_options{}), 1u);  // falls through to auto
  unsetenv("HYBRID_THREADS");
  EXPECT_GE(resolve_threads(sim_options{}), 1u);
}

TEST(RoundExecutor, EveryNodeRunsExactlyOnce) {
  for (u32 threads : {1u, 2u, 8u}) {
    round_executor exec(sim_options{threads});
    const u32 n = 1000;
    std::vector<u32> count(n, 0);
    exec.for_nodes(n, [&](u32 v) { ++count[v]; });  // node-private writes
    for (u32 v = 0; v < n; ++v) EXPECT_EQ(count[v], 1u) << "node " << v;
  }
}

TEST(RoundExecutor, ShardsPartitionTheRange) {
  round_executor exec(sim_options{4});
  const u32 n = 103;  // not a multiple of the thread count
  std::vector<std::atomic<u32>> hits(n);
  std::vector<std::atomic<u32>> shard_hits(4);
  exec.for_shards(n, [&](u32 shard, u32 begin, u32 end) {
    ASSERT_LT(begin, end);
    ASSERT_LT(shard, 4u);
    ++shard_hits[shard];
    for (u32 v = begin; v < end; ++v) ++hits[v];
  });
  for (u32 v = 0; v < n; ++v) EXPECT_EQ(hits[v].load(), 1u);
  for (u32 s = 0; s < 4; ++s) EXPECT_EQ(shard_hits[s].load(), 1u);
}

TEST(RoundExecutor, NestedDispatchIsRejected) {
  round_executor exec(sim_options{4});
  EXPECT_THROW(
      exec.for_nodes(64, [&](u32) { exec.sum_nodes(4, [](u32) -> u64 { return 1; }); }),
      std::invalid_argument);
  // The pool recovers for subsequent (well-formed) jobs.
  EXPECT_EQ(exec.sum_nodes(10, [](u32) -> u64 { return 1; }), 10u);
}

TEST(RoundExecutor, SumMatchesSequential) {
  for (u32 threads : {1u, 3u, 8u}) {
    round_executor exec(sim_options{threads});
    const u64 got =
        exec.sum_nodes(1234, [](u32 v) -> u64 { return u64{v} * v; });
    u64 want = 0;
    for (u64 v = 0; v < 1234; ++v) want += v * v;
    EXPECT_EQ(got, want) << threads << " threads";
  }
}

TEST(RoundExecutor, MaxMatchesSequentialAndIsThreadInvariant) {
  auto term = [](u32 v) -> u64 { return (u64{v} * 2654435761u) % 10007; };
  u64 want = 0;
  for (u32 v = 0; v < 1234; ++v) want = std::max(want, term(v));
  for (u32 threads : {1u, 3u, 8u}) {
    round_executor exec(sim_options{threads});
    EXPECT_EQ(exec.max_nodes(1234, term), want) << threads << " threads";
    EXPECT_EQ(exec.max_nodes(0, term), 0u);
  }
}

TEST(RoundExecutor, ShardPartitionHelpersMatchDispatch) {
  round_executor exec(sim_options{4});
  for (u32 n : {1u, 3u, 4u, 5u, 103u}) {
    const u32 shards = exec.shard_count(n);
    EXPECT_EQ(shards, std::min(4u, n));
    EXPECT_EQ(exec.shard_begin(n, 0), 0u);
    EXPECT_EQ(exec.shard_begin(n, shards), n);  // partition covers [0, n)
    // The ranges for_shards actually dispatches are exactly these.
    std::vector<std::pair<u32, u32>> seen(shards, {~0u, ~0u});
    exec.for_shards(n, [&](u32 s, u32 begin, u32 end) {
      seen[s] = {begin, end};
    });
    for (u32 s = 0; s < shards; ++s) {
      const u32 begin = exec.shard_begin(n, s);
      const u32 end = exec.shard_begin(n, s + 1);
      if (begin < end)
        EXPECT_EQ(seen[s], std::make_pair(begin, end)) << "n=" << n;
      else
        EXPECT_EQ(seen[s].first, ~0u) << "empty shard was dispatched";
    }
  }
}

TEST(RoundExecutor, AnyNode) {
  round_executor exec(sim_options{4});
  EXPECT_TRUE(exec.any_node(100, [](u32 v) { return v == 99; }));
  EXPECT_FALSE(exec.any_node(100, [](u32) { return false; }));
  EXPECT_FALSE(exec.any_node(0, [](u32) { return true; }));
}

TEST(RoundExecutor, ExceptionsPropagateThroughTheBarrier) {
  for (u32 threads : {1u, 4u}) {
    round_executor exec(sim_options{threads});
    EXPECT_THROW(exec.for_nodes(64,
                                [](u32 v) {
                                  if (v == 33) throw std::runtime_error("boom");
                                }),
                 std::runtime_error);
    // The pool survives a throwing job.
    EXPECT_EQ(exec.sum_nodes(10, [](u32) -> u64 { return 1; }), 10u);
  }
}

TEST(RoundExecutor, ReusableAcrossManyJobs) {
  round_executor exec(sim_options{4});
  u64 total = 0;
  for (u32 i = 0; i < 200; ++i)
    total += exec.sum_nodes(64, [](u32) -> u64 { return 1; });
  EXPECT_EQ(total, 200u * 64);
}

// ---- determinism across thread counts ------------------------------------

TEST(Determinism, SsspIdenticalAcrossThreadCounts) {
  const graph g = gen::erdos_renyi_connected(256, 6.0, 16, 42);
  const auto ref = dijkstra(g, 0);
  sssp_result base;
  for (u32 threads : {1u, 2u, 8u}) {
    const sssp_result res =
        hybrid_sssp_exact(g, model_config{}, 7, 0, sim_options{threads});
    for (u32 v = 0; v < 256; ++v)
      ASSERT_EQ(res.dist[v], ref[v]) << "wrong distance at " << threads;
    if (threads == 1) {
      base = res;
      continue;
    }
    EXPECT_EQ(res.dist, base.dist) << threads << " threads";
    EXPECT_EQ(res.metrics.rounds, base.metrics.rounds);
    EXPECT_EQ(res.metrics.global_messages, base.metrics.global_messages);
    EXPECT_EQ(res.metrics.global_payload_words,
              base.metrics.global_payload_words);
    EXPECT_EQ(res.metrics.local_items, base.metrics.local_items);
    EXPECT_EQ(res.metrics.max_global_recv_per_round,
              base.metrics.max_global_recv_per_round);
    EXPECT_EQ(res.skeleton_size, base.skeleton_size);
  }
}

TEST(Determinism, ApspIdenticalAcrossThreadCounts) {
  const graph g = gen::erdos_renyi_connected(96, 5.0, 8, 13);
  apsp_result base;
  for (u32 threads : {1u, 2u, 8u}) {
    apsp_result res = hybrid_apsp_exact(g, model_config{}, 11,
                                        /*build_routes=*/true,
                                        sim_options{threads});
    if (threads == 1) {
      // Ground truth once: the simulated distances are exact.
      for (u32 u = 0; u < 96; ++u) {
        const auto ref = dijkstra(g, u);
        ASSERT_EQ(res.dist[u], ref) << "source " << u;
      }
      base = std::move(res);
      continue;
    }
    EXPECT_EQ(res.dist, base.dist) << threads << " threads";
    EXPECT_EQ(res.next_hop, base.next_hop);
    EXPECT_EQ(res.metrics.rounds, base.metrics.rounds);
    EXPECT_EQ(res.metrics.global_messages, base.metrics.global_messages);
    EXPECT_EQ(res.metrics.local_items, base.metrics.local_items);
    EXPECT_EQ(res.metrics.max_global_recv_per_round,
              base.metrics.max_global_recv_per_round);
  }
}

TEST(Determinism, DisseminationIdenticalAcrossThreadCounts) {
  const graph g = gen::erdos_renyi_connected(128, 5.0, 1, 23);
  auto run = [&](u32 threads) {
    hybrid_net net(g, model_config{}, 99, sim_options{threads});
    std::vector<std::vector<token2>> initial(128);
    for (u32 t = 0; t < 96; ++t) initial[(t * 7) % 128].push_back({t, t ^ 5});
    const dissemination_result res = disseminate(net, std::move(initial));
    return std::make_pair(res.rounds_used, net.snapshot());
  };
  const auto [rounds1, m1] = run(1);
  const auto [rounds2, m2] = run(2);
  const auto [rounds8, m8] = run(8);
  EXPECT_EQ(rounds1, rounds2);
  EXPECT_EQ(rounds1, rounds8);
  EXPECT_EQ(m1.global_messages, m2.global_messages);
  EXPECT_EQ(m1.global_messages, m8.global_messages);
  EXPECT_EQ(m1.local_items, m8.local_items);
  EXPECT_EQ(m1.max_global_recv_per_round, m8.max_global_recv_per_round);
}

TEST(Determinism, RoundRngDependsOnlyOnSeedNodeRound) {
  const graph g = gen::path(16);
  hybrid_net a(g, model_config{}, 5), b(g, model_config{}, 5);
  // Same (seed, node, round) → same stream, regardless of draw history.
  (void)a.round_rng(3).next();  // draws do not advance the derived stream
  EXPECT_EQ(a.round_rng(3).next(), b.round_rng(3).next());
  EXPECT_NE(a.round_rng(3).next(), a.round_rng(4).next());
  a.advance_round();
  EXPECT_NE(a.round_rng(3).next(), b.round_rng(3).next());  // round moved
  b.advance_round();
  EXPECT_EQ(a.round_rng(3).next(), b.round_rng(3).next());
}

// ---- TSAN-friendly stress of concurrent budget accounting ----------------
// Every node spends its entire γ budget each round from a parallel step;
// under ThreadSanitizer this exercises try_send_global / global_budget /
// advance_round for races, and in any build it checks that per-src budgets
// and delivery-time metric accounting stay exact under concurrency.

TEST(StressConcurrency, GlobalBudgetAccountingUnderParallelSends) {
  const u32 n = 512;
  const graph g = gen::erdos_renyi_connected(n, 4.0, 1, 3);
  const u32 rounds = 25;
  run_metrics base;
  for (u32 threads : {1u, 8u}) {
    hybrid_net net(g, model_config{}, 77, sim_options{threads});
    const u32 cap = net.global_cap();
    for (u32 r = 0; r < rounds; ++r) {
      net.executor().for_nodes(n, [&](u32 v) {
        rng rv = net.round_rng(v);
        // Spend the whole budget; the cap must hold exactly.
        u32 sent = 0;
        while (net.global_budget(v) > 0) {
          const u32 dst = static_cast<u32>(rv.next_below(n));
          ASSERT_TRUE(net.try_send_global(
              global_msg::make(v, dst, 1, {u64{v} << 32 | r})));
          ++sent;
        }
        ASSERT_EQ(sent, cap);
        ASSERT_FALSE(
            net.try_send_global(global_msg::make(v, 0, 1, {u64{9}})));
      });
      net.advance_round();
      // Every enqueued message was delivered somewhere.
      const u64 delivered = net.executor().sum_nodes(
          n, [&](u32 v) -> u64 { return net.global_inbox(v).size(); });
      ASSERT_EQ(delivered, u64{n} * cap);
    }
    const run_metrics m = net.snapshot();
    EXPECT_EQ(m.global_messages, u64{n} * cap * rounds);
    EXPECT_EQ(m.rounds, rounds);
    if (threads == 1)
      base = m;
    else {
      EXPECT_EQ(m.global_messages, base.global_messages);
      EXPECT_EQ(m.global_payload_words, base.global_payload_words);
      EXPECT_EQ(m.max_global_recv_per_round, base.max_global_recv_per_round);
    }
  }
}

}  // namespace
}  // namespace hybrid
