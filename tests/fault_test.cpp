// Fault-model suite (sim/fault.hpp, docs/FAULTS.md): the seeded drop
// stream's purity and statistics; drop/crash semantics and determinism of
// both simulators per (seed, fault_seed, threads); the self-healing
// protocol paths (flood re-offer, Pareto Bellman–Ford, acked aggregation,
// gossip dissemination, retransmitting token routing, skeleton
// re-stabilization, and the healed exploration engine behind
// full/truncated/sparse local exploration) against their fault-free
// results; the two remaining documented refusals with remediation-naming
// messages; and the correct-or-explicitly-failed contract of the full
// APSP/SSSP/diameter pipelines under drops on either plane plus
// crash/recovery.
//
// Everything here is deterministic per (seed, fault_seed): a property that
// passes once passes forever, so the multi-seed loops are real coverage,
// not flake lotteries. Carries the `faults` ctest label (the CI fault
// matrix runs exactly this suite over global p ∈ {0, 0.1, 0.3} and local
// p ∈ {0, 0.1, 0.3} cells × threads {1, 8}).
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdlib>
#include <set>
#include <string>
#include <tuple>
#include <utility>
#include <vector>

#include "core/apsp.hpp"
#include "core/apsp_baseline.hpp"
#include "core/diameter.hpp"
#include "core/sssp.hpp"
#include "graph/generators.hpp"
#include "graph/shortest_paths.hpp"
#include "proto/aggregation.hpp"
#include "proto/dissemination.hpp"
#include "proto/flood.hpp"
#include "proto/skeleton.hpp"
#include "proto/sparse_exploration.hpp"
#include "proto/token_routing.hpp"
#include "sim/clique_net.hpp"
#include "sim/hybrid_net.hpp"

namespace hybrid {
namespace {

model_config default_cfg() { return model_config{}; }

sim_options with_faults(fault_options f, u32 threads = 0) {
  sim_options o;
  o.threads = threads == 0 ? 1 : threads;
  o.faults = std::move(f);
  return o;
}

fault_options drop_global_opts(double p, u64 fault_seed = 1) {
  fault_options f;
  f.drop_global = p;
  f.fault_seed = fault_seed;
  return f;
}

fault_options drop_local_opts(double p, u64 fault_seed = 1) {
  fault_options f;
  f.drop_local = p;
  f.fault_seed = fault_seed;
  return f;
}

template <class Msg>
u64 inbox_digest(std::span<const Msg> box) {
  u64 h = 1469598103934665603ull;
  auto mix = [&](u64 x) {
    h ^= x;
    h *= 1099511628211ull;
  };
  for (const Msg& m : box) {
    mix(m.src);
    mix(m.dst);
    mix(m.tag);
    for (u8 i = 0; i < m.nw; ++i) mix(m.w[i]);
  }
  return h;
}

// ---- the fault stream ------------------------------------------------------

TEST(FaultRng, DrawIsPureAndInputSensitive) {
  const u64 base = fault_plane_base(7, 9, kFaultPlaneGlobal);
  EXPECT_EQ(fault_draw(base, 3, 5, 0), fault_draw(base, 3, 5, 0));
  EXPECT_NE(fault_draw(base, 3, 5, 0), fault_draw(base, 3, 5, 1));
  EXPECT_NE(fault_draw(base, 3, 5, 0), fault_draw(base, 3, 6, 0));
  EXPECT_NE(fault_draw(base, 4, 5, 0), fault_draw(base, 3, 5, 0));
  EXPECT_NE(fault_plane_base(7, 9, kFaultPlaneGlobal),
            fault_plane_base(7, 9, kFaultPlaneLocal));
  EXPECT_NE(fault_plane_base(7, 9, kFaultPlaneGlobal),
            fault_plane_base(7, 10, kFaultPlaneGlobal));
  EXPECT_NE(fault_plane_base(8, 9, kFaultPlaneGlobal),
            fault_plane_base(7, 9, kFaultPlaneGlobal));
}

TEST(FaultRng, RollFrequencyMatchesProbability) {
  const u64 base = fault_plane_base(3, 4, kFaultPlaneLocal);
  for (double p : {0.05, 0.3, 0.7}) {
    u32 hits = 0;
    const u32 trials = 20000;
    for (u32 i = 0; i < trials; ++i)
      if (fault_roll(fault_draw(base, 1, i / 8, i % 8), p)) ++hits;
    const double freq = static_cast<double>(hits) / trials;
    EXPECT_NEAR(freq, p, 0.02) << "p=" << p;
  }
  EXPECT_FALSE(fault_roll(0, 0.0));
  EXPECT_TRUE(fault_roll(0, 1.0));
}

TEST(FaultRng, AdversarialPrefixCountCeilsAndClamps) {
  EXPECT_EQ(adversarial_prefix_count(0.0, 10), 0u);
  EXPECT_EQ(adversarial_prefix_count(0.3, 10), 3u);
  EXPECT_EQ(adversarial_prefix_count(0.25, 10), 3u);  // ceil
  EXPECT_EQ(adversarial_prefix_count(1.0, 5), 5u);
  EXPECT_EQ(adversarial_prefix_count(0.5, 1), 1u);
  EXPECT_EQ(adversarial_prefix_count(0.3, 0), 0u);
}

// ---- simulator drop/crash semantics ---------------------------------------

TEST(HybridNetFaults, DefaultOptionsInjectNothing) {
  const graph g = gen::path(8);
  hybrid_net net(g, default_cfg(), 1);
  EXPECT_FALSE(net.faults_active());
  for (u32 r = 0; r < 3; ++r) {
    net.try_send_global(global_msg::make(0, 7, r, {r}));
    net.advance_round();
  }
  EXPECT_EQ(net.raw_metrics().global_sent, 3u);
  EXPECT_EQ(net.raw_metrics().global_messages, 3u);
  EXPECT_EQ(net.raw_metrics().global_dropped, 0u);
}

TEST(HybridNetFaults, DropsAreDeterministicPerSeedPair) {
  const graph g = gen::path(32);
  auto run = [&](u64 fault_seed) {
    hybrid_net net(g, default_cfg(), 11,
                   with_faults(drop_global_opts(0.5, fault_seed)));
    std::vector<u64> digests;
    for (u32 r = 0; r < 8; ++r) {
      net.executor().for_nodes(32, [&](u32 v) {
        for (u32 i = 0; i < 4; ++i)
          net.try_send_global(
              global_msg::make(v, (v + i + 1) % 32, i, {u64{v} * 100 + r}));
      });
      net.advance_round();
      u64 d = 0;
      for (u32 v = 0; v < 32; ++v)
        d ^= (v + 1) * inbox_digest(net.global_inbox(v));
      digests.push_back(d);
    }
    return std::make_pair(digests, net.raw_metrics().global_dropped);
  };
  const auto a = run(5);
  const auto b = run(5);
  const auto c = run(6);
  EXPECT_EQ(a, b);
  EXPECT_NE(a.first, c.first) << "fault_seed must steer the drop pattern";
  EXPECT_GT(a.second, 0u);
  EXPECT_LT(a.second, u64{8} * 32 * 4);
}

TEST(HybridNetFaults, DropsAreThreadCountInvariant) {
  const u32 n = 257;
  const graph g = gen::erdos_renyi_connected(n, 4.0, 1, 11);
  auto run = [&](u32 threads) {
    hybrid_net net(g, default_cfg(), 31,
                   with_faults(drop_global_opts(0.3, 7), threads));
    std::vector<u64> digests;
    for (u32 r = 0; r < 8; ++r) {
      net.executor().for_nodes(n, [&](u32 v) {
        rng rv = net.round_rng(v);
        const u32 k = static_cast<u32>(rv.next_below(net.global_cap() + 1));
        for (u32 i = 0; i < k; ++i)
          net.try_send_global(global_msg::make(
              v, static_cast<u32>(rv.next_below(n)), i, {rv.next()}));
      });
      net.advance_round();
      u64 d = 0;
      for (u32 v = 0; v < n; ++v)
        d ^= (v + 1) * inbox_digest(net.global_inbox(v));
      digests.push_back(d);
    }
    const run_metrics m = net.raw_metrics();
    return std::make_tuple(digests, m.global_sent, m.global_messages,
                           m.global_dropped);
  };
  const auto base = run(1);
  EXPECT_EQ(run(2), base);
  EXPECT_EQ(run(8), base);
  EXPECT_GT(std::get<3>(base), 0u);
}

TEST(HybridNetFaults, AdversarialPrefixDropsLeadingSends) {
  const graph g = gen::path(8);
  fault_options f;
  f.drop_global = 0.5;
  f.mode = fault_mode::kAdversarialPrefix;
  hybrid_net net(g, default_cfg(), 1, with_faults(f));
  for (u32 i = 0; i < 4; ++i)
    net.try_send_global(global_msg::make(0, 5, i, {i}));
  net.advance_round();
  // ⌈0.5·4⌉ = 2 leading sends lost; the survivors keep send order.
  const auto box = net.global_inbox(5);
  ASSERT_EQ(box.size(), 2u);
  EXPECT_EQ(box[0].tag, 2u);
  EXPECT_EQ(box[1].tag, 3u);
  EXPECT_EQ(net.raw_metrics().global_dropped, 2u);
}

TEST(HybridNetFaults, CrashedSenderAndReceiverLoseMessages) {
  const graph g = gen::path(8);
  fault_options f;
  f.crashes.push_back({2, 0, 2});  // node 2 down for rounds 0 and 1
  hybrid_net net(g, default_cfg(), 1, with_faults(f));
  EXPECT_FALSE(net.is_up(2));
  EXPECT_TRUE(net.is_up(3));
  // Round 0: down sender's message lost, message TO the down node is lost
  // too (it is still down at delivery in round 1).
  net.try_send_global(global_msg::make(2, 5, 0, {1}));
  net.try_send_global(global_msg::make(5, 2, 0, {2}));
  net.advance_round();
  EXPECT_TRUE(net.global_inbox(5).empty());
  EXPECT_TRUE(net.global_inbox(2).empty());
  EXPECT_FALSE(net.is_up(2));
  // Round 1: node 2 recovers at round 2, so a message sent now IS delivered
  // (receiver up at delivery round 2).
  net.try_send_global(global_msg::make(5, 2, 1, {3}));
  net.advance_round();
  EXPECT_TRUE(net.is_up(2));
  ASSERT_EQ(net.global_inbox(2).size(), 1u);
  EXPECT_EQ(net.global_inbox(2)[0].w[0], 3u);
  // Recovered node sends normally.
  net.try_send_global(global_msg::make(2, 5, 2, {4}));
  net.advance_round();
  EXPECT_EQ(net.global_inbox(5).size(), 1u);
  EXPECT_EQ(net.raw_metrics().global_dropped, 2u);
}

TEST(HybridNetFaults, LocalDropIsPureAndCrashAware) {
  const graph g = gen::path(8);
  fault_options f = drop_local_opts(0.4, 3);
  f.crashes.push_back({6, 1, 2});
  hybrid_net net(g, default_cfg(), 9, with_faults(f));
  // Pure per (from, to, idx) at a fixed round.
  for (u32 idx = 0; idx < 16; ++idx)
    EXPECT_EQ(net.local_drop(0, 1, idx, 16), net.local_drop(0, 1, idx, 16));
  u32 direction_diff = 0, dropped = 0;
  for (u32 idx = 0; idx < 64; ++idx) {
    if (net.local_drop(0, 1, idx, 64) != net.local_drop(1, 0, idx, 64))
      ++direction_diff;
    if (net.local_drop(0, 1, idx, 64)) ++dropped;
  }
  EXPECT_GT(direction_diff, 0u) << "directed edges must draw independently";
  EXPECT_GT(dropped, 10u);
  EXPECT_LT(dropped, 45u);
  // Crash round: every crossing touching the down node is lost.
  net.advance_round();  // now at round 1, node 6 down
  EXPECT_FALSE(net.is_up(6));
  for (u32 idx = 0; idx < 8; ++idx) {
    EXPECT_TRUE(net.local_drop(6, 7, idx, 8));
    EXPECT_TRUE(net.local_drop(7, 6, idx, 8));
  }
}

TEST(HybridNetFaults, InvalidOptionsAreRejected) {
  const graph g = gen::path(4);
  EXPECT_THROW(hybrid_net(g, default_cfg(), 1,
                          with_faults(drop_global_opts(1.5))),
               std::invalid_argument);
  EXPECT_THROW(hybrid_net(g, default_cfg(), 1,
                          with_faults(drop_local_opts(-0.1))),
               std::invalid_argument);
  fault_options bad_node;
  bad_node.crashes.push_back({9, 0, 2});
  EXPECT_THROW(hybrid_net(g, default_cfg(), 1, with_faults(bad_node)),
               std::invalid_argument);
  fault_options empty_interval;
  empty_interval.crashes.push_back({1, 3, 3});
  EXPECT_THROW(hybrid_net(g, default_cfg(), 1, with_faults(empty_interval)),
               std::invalid_argument);
}

TEST(CliqueNetFaults, DropsDeterministicAndAccounted) {
  auto run = [&](u64 fault_seed) {
    clique_net net(16, with_faults(drop_global_opts(0.4, fault_seed), 2));
    std::vector<u64> digests;
    for (u32 r = 0; r < 6; ++r) {
      net.executor().for_nodes(16, [&](u32 v) {
        for (u32 i = 0; i < 8; ++i) {
          clique_msg m;
          m.src = v;
          m.dst = (v + i + 1) % 16;
          m.tag = r * 8 + i;
          net.send(m);
        }
      });
      net.advance_round();
      u64 d = 0;
      for (u32 v = 0; v < 16; ++v) d ^= (v + 1) * inbox_digest(net.inbox(v));
      digests.push_back(d);
    }
    return std::make_tuple(digests, net.total_sent(), net.total_messages(),
                           net.total_dropped());
  };
  const auto a = run(3);
  EXPECT_EQ(run(3), a);
  EXPECT_NE(std::get<0>(run(4)), std::get<0>(a));
  EXPECT_EQ(std::get<1>(a), u64{6} * 16 * 8);
  EXPECT_EQ(std::get<1>(a), std::get<2>(a) + std::get<3>(a));
  EXPECT_GT(std::get<3>(a), 0u);
}

TEST(CliqueNetFaults, CrashScheduleAppliesToBothDirections) {
  fault_options f;
  f.crashes.push_back({1, 0, 1});
  clique_net net(4, with_faults(f));
  clique_msg out;
  out.src = 1;
  out.dst = 2;
  clique_msg in;
  in.src = 3;
  in.dst = 1;
  net.send(out);
  net.send(in);
  net.advance_round();
  EXPECT_TRUE(net.inbox(2).empty());  // sender was down at send time
  // Node 1 recovered at round 1 == delivery round, but the SEND round
  // decides for outgoing and the delivery round for incoming: the message
  // to it was checked against delivery round 1, where it is up again.
  ASSERT_EQ(net.inbox(1).size(), 1u);
  EXPECT_EQ(net.total_dropped(), 1u);
}

// ---- healed local floods ---------------------------------------------------

TEST(FaultHealing, FloodReachesAllNodesOnFiftySeeds) {
  const u32 n = 24;
  const graph g = gen::erdos_renyi_connected(n, 3.0, 1, 42);
  for (u64 fs = 0; fs < 50; ++fs) {
    hybrid_net net(g, default_cfg(), 17,
                   with_faults(drop_local_opts(0.3, fs), 2));
    // A 4-round budget is far below convergence + the stability window, so
    // the healed flood must overshoot (extra_rounds) — and still reach
    // every node, since it runs to saturation and referees the result.
    const auto known = hop_discovery(net, {0}, 4);
    for (u32 v = 0; v < n; ++v)
      ASSERT_EQ(known[v].size(), 1u) << "node " << v << " fault_seed " << fs;
    ASSERT_GT(net.raw_metrics().extra_rounds, 0u) << fs;
    ASSERT_GT(net.raw_metrics().local_dropped, 0u) << fs;
  }
}

TEST(FaultHealing, FloodMatchesFaultFreeReachabilityAndBoundsHops) {
  const u32 n = 32;
  const graph g = gen::erdos_renyi_connected(n, 3.0, 1, 7);
  const std::vector<u32> seeds = {0, 5, 13};
  hybrid_net clean(g, default_cfg(), 9);
  const auto want = hop_discovery(clean, seeds, n);
  hybrid_net net(g, default_cfg(), 9, with_faults(drop_local_opts(0.3, 2), 2));
  const auto got = hop_discovery(net, seeds, n);
  for (u32 v = 0; v < n; ++v) {
    ASSERT_EQ(got[v].size(), want[v].size()) << v;
    // Same seed sets; healed hop stamps are learn rounds, i.e. upper bounds
    // on (and never below) the true hop distance.
    std::set<u32> a, b;
    for (const auto& d : got[v]) a.insert(d.seed);
    for (const auto& d : want[v]) b.insert(d.seed);
    EXPECT_EQ(a, b) << v;
    for (const auto& dg : got[v])
      for (const auto& dw : want[v])
        if (dg.seed == dw.seed) {
          EXPECT_GE(dg.hop, dw.hop) << v;
        }
  }
}

TEST(FaultHealing, BellmanFordExactDistancesUnderDrops) {
  const u32 n = 24;
  const graph g = gen::erdos_renyi_connected(n, 3.0, 9, 21);  // weighted
  const std::vector<u32> sources = {0, 7};
  hybrid_net clean(g, default_cfg(), 3);
  const auto want = limited_bellman_ford(clean, sources, n);
  for (u64 fs = 0; fs < 10; ++fs) {
    hybrid_net net(g, default_cfg(), 3,
                   with_faults(drop_local_opts(0.3, fs), 2));
    const auto got = limited_bellman_ford(net, sources, n);
    for (u32 v = 0; v < n; ++v) {
      ASSERT_EQ(got[v].size(), want[v].size()) << v << " fs=" << fs;
      for (u32 i = 0; i < got[v].size(); ++i) {
        EXPECT_EQ(got[v][i].source, want[v][i].source) << v;
        EXPECT_EQ(got[v][i].dist, want[v][i].dist) << v << " fs=" << fs;
      }
    }
  }
}

TEST(FaultHealing, BellmanFordRespectsHopLimit) {
  // Weighted path 0-1-...-11: d_h from node 0 reaches exactly h hops, so a
  // healed run that leaked items past the hop budget would show extra
  // entries; one that lost the few-hops Pareto entries would miss some.
  const u32 n = 12;
  std::vector<edge_spec> edges;
  for (u32 v = 0; v + 1 < n; ++v) edges.push_back({v, v + 1, 2});
  const graph g = graph::from_edges(n, edges);
  const u32 h = 4;
  hybrid_net clean(g, default_cfg(), 5);
  const auto want = limited_bellman_ford(clean, {0}, h);
  for (u64 fs = 0; fs < 10; ++fs) {
    hybrid_net net(g, default_cfg(), 5, with_faults(drop_local_opts(0.3, fs)));
    const auto got = limited_bellman_ford(net, {0}, h);
    for (u32 v = 0; v < n; ++v) {
      ASSERT_EQ(got[v].size(), want[v].size())
          << "node " << v << " fs=" << fs;
      if (!got[v].empty()) {
        EXPECT_EQ(got[v][0].dist, want[v][0].dist) << v;
        EXPECT_EQ(got[v][0].via, want[v][0].via) << v;
      }
    }
    EXPECT_TRUE(got[h].size() == 1 && got[h + 1].empty());
  }
}

TEST(FaultHealing, TableFloodDeliversEveryTableUnderDrops) {
  const u32 n = 24;
  const graph g = gen::erdos_renyi_connected(n, 3.0, 1, 13);
  const std::vector<u32> publishers = {1, 9, 17};
  const std::vector<u64> words = {4, 4, 4};
  hybrid_net clean(g, default_cfg(), 2);
  const auto want = table_flood(clean, publishers, words, n);
  hybrid_net net(g, default_cfg(), 2, with_faults(drop_local_opts(0.3, 5), 2));
  const auto got = table_flood(net, publishers, words, n);
  for (u32 v = 0; v < n; ++v) {
    std::set<u32> a(got[v].begin(), got[v].end());
    std::set<u32> b(want[v].begin(), want[v].end());
    EXPECT_EQ(a, b) << v;
  }
  EXPECT_GT(net.raw_metrics().local_dropped, 0u);
}

TEST(FaultHealing, HealedFloodDeterministicAcrossThreads) {
  const u32 n = 48;
  const graph g = gen::erdos_renyi_connected(n, 3.0, 5, 33);
  auto run = [&](u32 threads) {
    hybrid_net net(g, default_cfg(), 13,
                   with_faults(drop_local_opts(0.3, 4), threads));
    const auto got = limited_bellman_ford(net, {0, 11, 30}, 10);
    u64 digest = 1469598103934665603ull;
    for (u32 v = 0; v < n; ++v)
      for (const auto& sd : got[v]) {
        digest ^= (u64{v} << 40) ^ (u64{sd.source} << 32) ^ sd.dist ^
                  (u64{sd.via} << 8);
        digest *= 1099511628211ull;
      }
    const run_metrics m = net.raw_metrics();
    return std::make_tuple(digest, m.rounds, m.local_items, m.local_dropped,
                           m.extra_rounds);
  };
  const auto base = run(1);
  EXPECT_EQ(run(2), base);
  EXPECT_EQ(run(8), base);
}

TEST(FaultHealing, OnlyDocumentedStageRefusesAndNamesRemediation) {
  // Exactly one fault_unsupported case remains (docs/FAULTS.md §3): the
  // charged routing stand-in
  // (FaultRouting.ChargedStandInRefusesFaultsNamingRemediation). Everything
  // exploration-shaped heals now — pinned by the no-throw calls below.
  const graph g = gen::path(8);
  hybrid_net net(g, default_cfg(), 1, with_faults(drop_local_opts(0.1)));
  EXPECT_NO_THROW(limited_bellman_ford(net, {0}, 3, /*advance_rounds=*/false));
  EXPECT_NO_THROW(full_local_exploration(net, 3, true));
  EXPECT_NO_THROW(truncated_eccentricity(net, 3));
  EXPECT_NO_THROW(run_local_exploration(net, 3, true));
  EXPECT_NO_THROW(hop_discovery(net, {0}, 8));
}

TEST(FaultHealing, FrozenRoundBellmanFordHonorsItsRemediation) {
  // The formerly refusing frozen-round Bellman–Ford (PR 8's documented
  // leftover) now falls back to the advancing healed path automatically.
  // Its results must match the fault-free frozen-round run exactly, and —
  // because the caller's nominal budget with advance_rounds=false is zero
  // rounds — every round the fallback consumed must be surfaced as
  // extra_rounds.
  const u32 n = 24;
  const graph g = gen::erdos_renyi_connected(n, 3.0, 9, 21);  // weighted
  const std::vector<u32> sources = {0, 7};
  const u32 h = 6;
  hybrid_net clean(g, default_cfg(), 3);
  const auto want = limited_bellman_ford(clean, sources, h,
                                         /*advance_rounds=*/false);
  EXPECT_EQ(clean.round(), 0u);  // the trick really freezes the counter
  for (u64 fs = 0; fs < 5; ++fs) {
    hybrid_net net(g, default_cfg(), 3,
                   with_faults(drop_local_opts(0.3, fs), 2));
    const auto got = limited_bellman_ford(net, sources, h,
                                          /*advance_rounds=*/false);
    for (u32 v = 0; v < n; ++v) {
      ASSERT_EQ(got[v].size(), want[v].size()) << v << " fs=" << fs;
      for (u32 i = 0; i < got[v].size(); ++i) {
        EXPECT_EQ(got[v][i].source, want[v][i].source) << v;
        EXPECT_EQ(got[v][i].dist, want[v][i].dist) << v << " fs=" << fs;
        EXPECT_EQ(got[v][i].via, want[v][i].via) << v << " fs=" << fs;
      }
    }
    // Healing consumed real rounds, and all of them are accounted extra.
    const run_metrics m = net.raw_metrics();
    EXPECT_GT(net.round(), 0u) << fs;
    EXPECT_EQ(m.extra_rounds, net.round()) << fs;
    EXPECT_EQ(m.local_items, m.local_delivered + m.local_dropped) << fs;
  }
}

// ---- healed exploration engine ---------------------------------------------

TEST(FaultHealing, ExplorationMatchesFaultFreeOnFiftySeeds) {
  const u32 n = 24;
  const graph g = gen::erdos_renyi_connected(n, 3.0, 9, 37);  // weighted
  const u32 h = 5;
  for (const bool first_hops : {true, false}) {
    hybrid_net clean(g, default_cfg(), 11);
    const sparse_exploration_result want =
        run_local_exploration(clean, h, true, nullptr, first_hops);
    for (u64 fs = 0; fs < 50; ++fs) {
      const u32 threads = fs % 3 == 0 ? 1 : fs % 3 == 1 ? 2 : 8;
      hybrid_net net(g, default_cfg(), 11,
                     with_faults(drop_local_opts(0.3, fs), threads));
      const sparse_exploration_result got =
          run_local_exploration(net, h, true, nullptr, first_hops);
      ASSERT_EQ(got, want) << "fs=" << fs << " first_hops=" << first_hops;
      ASSERT_GT(net.raw_metrics().local_dropped, 0u) << fs;
      ASSERT_GT(net.raw_metrics().extra_rounds, 0u) << fs;
      // The local ledger balances through the healed engine.
      const run_metrics m = net.raw_metrics();
      ASSERT_EQ(m.local_items, m.local_delivered + m.local_dropped) << fs;
    }
  }
}

TEST(FaultHealing, ExplorationSourceSubsetMatchesFaultFree) {
  const u32 n = 24;
  const graph g = gen::erdos_renyi_connected(n, 3.0, 9, 37);
  const std::vector<u32> sources = {0, 7, 19};
  hybrid_net clean(g, default_cfg(), 11);
  const sparse_exploration_result want =
      run_local_exploration(clean, 6, true, &sources, true);
  for (u64 fs = 0; fs < 10; ++fs) {
    hybrid_net net(g, default_cfg(), 11,
                   with_faults(drop_local_opts(0.3, fs), 2));
    EXPECT_EQ(run_local_exploration(net, 6, true, &sources, true), want)
        << fs;
  }
}

TEST(FaultHealing, ExplorationDeterministicAcrossThreads) {
  const u32 n = 48;
  const graph g = gen::erdos_renyi_connected(n, 3.0, 5, 33);
  auto run = [&](u32 threads) {
    hybrid_net net(g, default_cfg(), 13,
                   with_faults(drop_local_opts(0.3, 4), threads));
    const sparse_exploration_result got =
        run_local_exploration(net, 8, true, nullptr, true);
    u64 digest = 1469598103934665603ull;
    for (const exploration_entry& e : got.entries) {
      digest ^= e.dist ^ (u64{e.source} << 32) ^ (u64{e.first_hop} << 8);
      digest *= 1099511628211ull;
    }
    const run_metrics m = net.raw_metrics();
    return std::make_tuple(digest, m.rounds, m.local_items, m.local_delivered,
                           m.local_dropped, m.retransmitted, m.extra_rounds);
  };
  const auto base = run(1);
  EXPECT_EQ(run(2), base);
  EXPECT_EQ(run(8), base);
  EXPECT_GT(std::get<5>(base), 0u) << "re-offers must count retransmissions";
}

TEST(FaultHealing, FullExplorationMatrixAndFirstHopsHealed) {
  const u32 n = 20;
  const graph g = gen::erdos_renyi_connected(n, 3.0, 9, 41);
  hybrid_net clean(g, default_cfg(), 3);
  std::vector<std::vector<u32>> want_fh;
  const auto want = full_local_exploration(clean, 5, true, &want_fh);
  for (u64 fs = 0; fs < 10; ++fs) {
    hybrid_net net(g, default_cfg(), 3,
                   with_faults(drop_local_opts(0.3, fs), 2));
    std::vector<std::vector<u32>> got_fh;
    const auto got = full_local_exploration(net, 5, true, &got_fh);
    ASSERT_EQ(got, want) << fs;
    // First hops too: the healed path returns the referee's canonical ones,
    // not drop-pattern-dependent arrival orders.
    ASSERT_EQ(got_fh, want_fh) << fs;
  }
}

TEST(FaultHealing, TruncatedEccentricityExactUnderDrops) {
  const u32 n = 24;
  const graph g = gen::erdos_renyi_connected(n, 3.0, 1, 29);
  for (const u32 rounds : {2u, 5u, n}) {
    hybrid_net clean(g, default_cfg(), 7);
    const std::vector<u32> want = truncated_eccentricity(clean, rounds);
    for (u64 fs = 0; fs < 10; ++fs) {
      hybrid_net net(g, default_cfg(), 7,
                     with_faults(drop_local_opts(0.3, fs), 2));
      ASSERT_EQ(truncated_eccentricity(net, rounds), want)
          << "rounds=" << rounds << " fs=" << fs;
      ASSERT_GT(net.raw_metrics().local_dropped, 0u) << fs;
    }
  }
}

TEST(FaultHealing, ExplorationSurvivesCrashRecoveryMidBallGrowth) {
  const u32 n = 24;
  const graph g = gen::erdos_renyi_connected(n, 3.0, 9, 37);
  hybrid_net clean(g, default_cfg(), 11);
  const sparse_exploration_result want =
      run_local_exploration(clean, 5, true, nullptr, true);
  // Node 3 crashes mid-ball-growth and stays down well past the quiet
  // window: with heal_stability_rounds = 2, counting its down rounds as
  // quiet would declare stability around round 4 with its items still
  // pending — the crash-aware quiet rule (down rounds never count) is what
  // lets this run converge instead of tripping the referee.
  fault_options f = drop_local_opts(0.1, 3);
  f.heal_stability_rounds = 2;
  f.crashes.push_back({3, 2, 20});
  hybrid_net net(g, default_cfg(), 11, with_faults(f, 2));
  const sparse_exploration_result got =
      run_local_exploration(net, 5, true, nullptr, true);
  EXPECT_EQ(got, want);
  const run_metrics m = net.raw_metrics();
  EXPECT_GT(m.retransmitted, 0u);
  EXPECT_GT(m.extra_rounds, 0u);
  EXPECT_EQ(m.local_items, m.local_delivered + m.local_dropped);
}

TEST(FaultHealing, ExplorationAdversarialPrefixFailsExplicitly) {
  // Same starvation argument as the flood case above: a path node's whole
  // offer set sits in the adversarial prefix every round, so the engine
  // stabilizes prematurely and the referee must surface fault_failure —
  // after all four retry attempts burn out.
  const graph g = gen::path(6);
  fault_options f = drop_local_opts(0.9, 1);
  f.mode = fault_mode::kAdversarialPrefix;
  f.heal_budget_mult = 4;
  hybrid_net net(g, default_cfg(), 1, with_faults(f));
  EXPECT_THROW(run_local_exploration(net, 6, true), fault_failure);
  hybrid_net net2(g, default_cfg(), 1, with_faults(f));
  EXPECT_THROW(truncated_eccentricity(net2, 6), fault_failure);
}

TEST(FaultHealing, AdversarialPrefixFailsExplicitly) {
  // kAdversarialPrefix drops the same positions every round; a path node
  // re-offering its single known item always loses it, so the flood looks
  // stable with nodes unreached. The referee must turn that into an
  // explicit fault_failure, never a silently truncated result.
  const graph g = gen::path(6);
  fault_options f = drop_local_opts(0.9, 1);
  f.mode = fault_mode::kAdversarialPrefix;
  f.heal_budget_mult = 4;  // keep a budget-exhaustion path short too
  hybrid_net net(g, default_cfg(), 1, with_faults(f));
  EXPECT_THROW(hop_discovery(net, {0}, 6), fault_failure);
  hybrid_net net2(g, default_cfg(), 1, with_faults(f));
  EXPECT_THROW(limited_bellman_ford(net2, {0}, 6), fault_failure);
  hybrid_net net3(g, default_cfg(), 1, with_faults(f));
  EXPECT_THROW(table_flood(net3, {0}, {4}, 6), fault_failure);
}

// ---- healed aggregation ----------------------------------------------------

TEST(FaultAggregation, AllOpsMatchFaultFreeUnderDrops) {
  const u32 n = 13;  // uneven binary tree
  const graph g = gen::path(n);
  std::vector<u64> values(n);
  for (u32 v = 0; v < n; ++v) values[v] = (v * 37 + 5) % 11;
  hybrid_net clean(g, default_cfg(), 1);
  for (agg_op op :
       {agg_op::max, agg_op::min, agg_op::sum, agg_op::logical_and}) {
    const u64 want = global_aggregate(clean, op, values);
    hybrid_net net(g, default_cfg(), 1,
                   with_faults(drop_global_opts(0.3, 8), 2));
    EXPECT_EQ(global_aggregate(net, op, values), want);
    EXPECT_GT(net.raw_metrics().global_dropped, 0u);
  }
}

TEST(FaultAggregation, SurvivesCrashRecoveryAndCountsRetransmissions) {
  const u32 n = 13;
  const graph g = gen::path(n);
  std::vector<u64> values(n, 1);
  values[7] = 40;
  fault_options f;
  f.crashes.push_back({1, 1, 5});  // an inner tree node pauses mid-protocol
  hybrid_net net(g, default_cfg(), 1, with_faults(f));
  EXPECT_EQ(global_aggregate(net, agg_op::sum, values), u64{12 + 40});
  const run_metrics m = net.raw_metrics();
  EXPECT_GT(m.retransmitted, 0u);
  EXPECT_GT(m.extra_rounds, 0u);
  EXPECT_EQ(m.global_sent, m.global_messages + m.global_dropped);
}

TEST(FaultAggregation, PermanentCrashFailsExplicitly) {
  const u32 n = 13;
  const graph g = gen::path(n);
  fault_options f;
  f.crashes.push_back({3, 0, ~u64{0}});  // never recovers
  f.heal_budget_mult = 8;                // keep the failing run short
  hybrid_net net(g, default_cfg(), 1, with_faults(f));
  EXPECT_THROW(global_aggregate(net, agg_op::sum, std::vector<u64>(n, 1)),
               fault_failure);
}

TEST(FaultAggregation, DeterministicPerFaultSeedAcrossThreads) {
  const u32 n = 61;
  const graph g = gen::path(n);
  std::vector<u64> values(n);
  for (u32 v = 0; v < n; ++v) values[v] = v * v % 97;
  auto run = [&](u32 threads) {
    hybrid_net net(g, default_cfg(), 5,
                   with_faults(drop_global_opts(0.25, 12), threads));
    const u64 r = global_aggregate(net, agg_op::sum, values);
    const run_metrics m = net.raw_metrics();
    return std::make_tuple(r, m.rounds, m.global_sent, m.global_dropped,
                           m.retransmitted, m.extra_rounds);
  };
  const auto base = run(1);
  EXPECT_EQ(run(2), base);
  EXPECT_EQ(run(8), base);
  EXPECT_GT(std::get<4>(base), 0u);
}

// ---- skeleton re-stabilization --------------------------------------------

TEST(FaultSkeleton, ConvergesToFaultFreeSkeletonOnFiftySeeds) {
  const u32 n = 24;
  const graph g = gen::erdos_renyi_connected(n, 3.0, 4, 19);
  hybrid_net clean(g, default_cfg(), 7);
  const skeleton_result want = compute_skeleton(clean, 0.4);
  for (u64 fs = 0; fs < 50; ++fs) {
    hybrid_net net(g, default_cfg(), 7,
                   with_faults(drop_local_opts(0.3, fs), 2));
    const skeleton_result got = compute_skeleton(net, 0.4);
    ASSERT_EQ(got.nodes, want.nodes) << fs;  // sampling is fault-blind
    ASSERT_EQ(got.h, want.h) << fs;
    ASSERT_EQ(got.edges, want.edges) << fs;  // healed BF is exact
  }
}

TEST(FaultSkeleton, SurvivesCrashRecovery) {
  const u32 n = 24;
  const graph g = gen::erdos_renyi_connected(n, 3.0, 4, 19);
  hybrid_net clean(g, default_cfg(), 7);
  const skeleton_result want = compute_skeleton(clean, 0.4);
  fault_options f = drop_local_opts(0.1, 3);
  f.crashes.push_back({5, 2, 6});
  f.crashes.push_back({14, 4, 7});
  hybrid_net net(g, default_cfg(), 7, with_faults(f, 2));
  const skeleton_result got = compute_skeleton(net, 0.4);
  EXPECT_EQ(got.nodes, want.nodes);
  EXPECT_EQ(got.edges, want.edges);
}

// ---- dissemination under faults -------------------------------------------

TEST(FaultDissemination, CompletesUnderGlobalDrops) {
  const u32 n = 32;
  const graph g = gen::erdos_renyi_connected(n, 3.0, 1, 23);
  auto make_initial = [&]() {
    std::vector<std::vector<token2>> initial(n);
    for (u32 v = 0; v < n; v += 3) initial[v].push_back({v, u64{v} * 7});
    return initial;
  };
  hybrid_net clean(g, default_cfg(), 3);
  const auto want = disseminate(clean, make_initial());
  hybrid_net net(g, default_cfg(), 3, with_faults(drop_global_opts(0.2, 6), 2));
  const auto got = disseminate(net, make_initial());
  EXPECT_EQ(got.tokens, want.tokens);
  EXPECT_GT(net.raw_metrics().global_dropped, 0u);
  EXPECT_EQ(net.raw_metrics().global_sent,
            net.raw_metrics().global_messages +
                net.raw_metrics().global_dropped);
}

TEST(FaultDissemination, CompletesUnderBothPlanesAndCrashes) {
  const u32 n = 32;
  const graph g = gen::erdos_renyi_connected(n, 3.0, 1, 23);
  std::vector<std::vector<token2>> initial(n);
  for (u32 v = 0; v < n; v += 4) initial[v].push_back({v + 1, v + 2});
  fault_options f = drop_global_opts(0.15, 9);
  f.drop_local = 0.15;
  f.crashes.push_back({3, 2, 8});
  hybrid_net net(g, default_cfg(), 3, with_faults(f, 2));
  const auto got = disseminate(net, initial);
  EXPECT_EQ(got.tokens.size(), 8u);  // completion is the proof: the final
                                     // AND-aggregation saw every node done
  EXPECT_GT(net.raw_metrics().local_dropped + net.raw_metrics().global_dropped,
            0u);
}

// ---- token routing under faults -------------------------------------------

std::vector<routed_token> sorted_flat(
    std::vector<std::vector<routed_token>> by_receiver) {
  std::vector<routed_token> all;
  for (auto& part : by_receiver)
    for (const routed_token& t : part) all.push_back(t);
  std::sort(all.begin(), all.end(),
            [](const routed_token& a, const routed_token& b) {
              return std::tie(a.sender, a.receiver, a.index, a.payload) <
                     std::tie(b.sender, b.receiver, b.index, b.payload);
            });
  return all;
}

routing_spec cross_spec(u32 n) {
  routing_spec spec;
  for (u32 v = 0; v < n; v += 2) spec.senders.push_back(v);
  for (u32 v = 1; v < n; v += 2) spec.receivers.push_back(v);
  spec.k_s = 4;
  spec.k_r = 4;
  return spec;
}

std::vector<std::vector<routed_token>> cross_batch(const routing_spec& spec) {
  std::vector<std::vector<routed_token>> batch(spec.senders.size());
  for (u32 si = 0; si < spec.senders.size(); ++si) {
    const u32 s = spec.senders[si];
    for (u32 i = 0; i < 4; ++i) {
      const u32 r = spec.receivers[(si + i) % spec.receivers.size()];
      batch[si].push_back({s, r, i, u64{s} << 16 | i});
    }
  }
  return batch;
}

TEST(FaultRouting, RoutesEveryTokenUnderDropsWithRetransmissions) {
  const u32 n = 24;
  const graph g = gen::path(n);
  const routing_spec spec = cross_spec(n);
  hybrid_net clean(g, default_cfg(), 5);
  routing_spec spec_copy = spec;
  const auto want =
      sorted_flat(run_token_routing(clean, spec_copy, cross_batch(spec)));
  for (u64 fs = 0; fs < 5; ++fs) {
    hybrid_net net(g, default_cfg(), 5,
                   with_faults(drop_global_opts(0.2, fs), 2));
    routing_spec sc = spec;
    const auto got =
        sorted_flat(run_token_routing(net, sc, cross_batch(spec)));
    ASSERT_EQ(got.size(), want.size()) << fs;
    for (u32 i = 0; i < got.size(); ++i) {
      EXPECT_EQ(got[i].sender, want[i].sender) << fs;
      EXPECT_EQ(got[i].receiver, want[i].receiver) << fs;
      EXPECT_EQ(got[i].index, want[i].index) << fs;
      EXPECT_EQ(got[i].payload, want[i].payload) << fs;
    }
    EXPECT_GT(net.raw_metrics().retransmitted, 0u) << fs;
  }
}

TEST(FaultRouting, SurvivesCrashRecovery) {
  const u32 n = 24;
  const graph g = gen::path(n);
  const routing_spec spec = cross_spec(n);
  hybrid_net clean(g, default_cfg(), 5);
  routing_spec spec_copy = spec;
  const auto want =
      sorted_flat(run_token_routing(clean, spec_copy, cross_batch(spec)));
  fault_options f;
  f.crashes.push_back({4, 3, 9});    // a sender pauses
  f.crashes.push_back({11, 5, 12});  // a receiver pauses
  hybrid_net net(g, default_cfg(), 5, with_faults(f, 2));
  routing_spec sc = spec;
  const auto got = sorted_flat(run_token_routing(net, sc, cross_batch(spec)));
  ASSERT_EQ(got.size(), want.size());
  for (u32 i = 0; i < got.size(); ++i)
    EXPECT_EQ(got[i].payload, want[i].payload) << i;
}

TEST(FaultRouting, ChargedStandInRefusesFaultsNamingRemediation) {
  // The second of the two documented fault_unsupported cases: the charged
  // stand-in moves no real messages, so it refuses under EITHER faulty
  // plane — and its message must name the way out.
  const u32 n = 16;
  const graph g = gen::path(n);
  model_config cfg;
  cfg.charged_token_routing = true;
  for (const fault_options& f :
       {drop_global_opts(0.1), drop_local_opts(0.1)}) {
    hybrid_net net(g, cfg, 5, with_faults(f));
    routing_spec spec = cross_spec(n);
    try {
      run_token_routing(net, spec, cross_batch(cross_spec(n)));
      FAIL() << "charged routing must refuse under injected faults";
    } catch (const fault_unsupported& e) {
      EXPECT_NE(std::string(e.what()).find("charged_token_routing=false"),
                std::string::npos)
          << e.what();
    }
  }
}

// ---- full pipelines --------------------------------------------------------

TEST(FaultPipelines, ZeroProbabilityIsBitIdenticalToFaultFree) {
  const u32 n = 40;
  const graph g = gen::erdos_renyi_connected(n, 3.0, 8, 51);
  const auto base = hybrid_sssp_exact(g, default_cfg(), 21, 0);
  // p = 0 with a nonzero fault_seed and no crashes must not change a bit —
  // the fault machinery stays entirely dormant.
  for (u32 threads : {1u, 2u, 8u}) {
    const auto run = hybrid_sssp_exact(g, default_cfg(), 21, 0,
                                       with_faults(drop_global_opts(0.0, 99),
                                                   threads));
    EXPECT_EQ(run.dist, base.dist) << threads;
    EXPECT_EQ(run.metrics.rounds, base.metrics.rounds) << threads;
    EXPECT_EQ(run.metrics.global_messages, base.metrics.global_messages)
        << threads;
    EXPECT_EQ(run.metrics.global_dropped, 0u) << threads;
    EXPECT_EQ(run.metrics.retransmitted, 0u) << threads;
  }
}

TEST(FaultPipelines, SsspExactUnderGlobalDrops) {
  const u32 n = 40;
  const graph g = gen::erdos_renyi_connected(n, 3.0, 8, 51);
  const auto ref = dijkstra(g, 0);
  const auto run = hybrid_sssp_exact(g, default_cfg(), 21, 0,
                                     with_faults(drop_global_opts(0.1, 4), 2));
  EXPECT_EQ(run.dist, ref);
  EXPECT_GT(run.metrics.global_dropped, 0u);
  EXPECT_EQ(run.metrics.global_sent,
            run.metrics.global_messages + run.metrics.global_dropped);
}

TEST(FaultPipelines, ApspExactUnderGlobalDrops) {
  const u32 n = 32;
  const graph g = gen::erdos_renyi_connected(n, 3.0, 8, 15);
  const auto ref = apsp_reference(g);
  const auto run = hybrid_apsp_exact(g, default_cfg(), 9, false,
                                     with_faults(drop_global_opts(0.1, 2), 2));
  ASSERT_TRUE(run.materialized());
  EXPECT_EQ(run.dist, ref);
  EXPECT_GT(run.metrics.global_dropped, 0u);
}

TEST(FaultPipelines, ApspDeterministicPerFaultSeedAcrossThreads) {
  const u32 n = 32;
  const graph g = gen::erdos_renyi_connected(n, 3.0, 8, 15);
  auto run = [&](u32 threads) {
    const auto r = hybrid_apsp_exact(g, default_cfg(), 9, false,
                                     with_faults(drop_global_opts(0.1, 5),
                                                 threads));
    return std::make_tuple(r.dist, r.metrics.rounds, r.metrics.global_sent,
                           r.metrics.global_dropped, r.metrics.retransmitted,
                           r.metrics.extra_rounds);
  };
  const auto base = run(1);
  EXPECT_EQ(run(2), base);
  EXPECT_EQ(run(8), base);
}

void expect_labels_identical(const dist_labels& got, const dist_labels& want) {
  ASSERT_EQ(got.n, want.n);
  ASSERT_EQ(got.n_s, want.n_s);
  ASSERT_EQ(got.h, want.h);
  ASSERT_EQ(got.scheme, want.scheme);
  ASSERT_EQ(got.routes, want.routes);
  ASSERT_EQ(got.ball, want.ball);
  ASSERT_EQ(got.gw_offsets, want.gw_offsets);
  ASSERT_EQ(got.gateways.size(), want.gateways.size());
  for (u32 i = 0; i < got.gateways.size(); ++i) {
    ASSERT_EQ(got.gateways[i].source, want.gateways[i].source) << i;
    ASSERT_EQ(got.gateways[i].dist, want.gateways[i].dist) << i;
    ASSERT_EQ(got.gateways[i].via, want.gateways[i].via) << i;
  }
  ASSERT_EQ(got.skeleton_nodes, want.skeleton_nodes);
  ASSERT_EQ(got.skel, want.skel);
  ASSERT_EQ(got.n_s2, want.n_s2);
  ASSERT_EQ(got.ball1_offsets, want.ball1_offsets);
  ASSERT_EQ(got.ball1_entries, want.ball1_entries);
  ASSERT_EQ(got.gw1_offsets, want.gw1_offsets);
  ASSERT_EQ(got.gw1, want.gw1);
  ASSERT_EQ(got.super_nodes, want.super_nodes);
}

TEST(FaultPipelines, LocalFaultsHealEndToEnd) {
  // The former refusal case: local drops on the exploration stages now heal
  // (docs/FAULTS.md §3), so the full pipelines complete with results
  // bit-identical to the fault-free runs.
  const u32 n = 24;
  const graph g = gen::erdos_renyi_connected(n, 3.0, 1, 5);
  const auto apsp_want = hybrid_apsp_exact(g, default_cfg(), 3, false);
  const auto apsp_got = hybrid_apsp_exact(g, default_cfg(), 3, false,
                                          with_faults(drop_local_opts(0.1)));
  expect_labels_identical(apsp_got.labels, apsp_want.labels);
  EXPECT_EQ(apsp_got.dist, apsp_want.dist);
  EXPECT_GT(apsp_got.metrics.local_dropped, 0u);
  const auto alg = make_clique_diameter_32(0.25, injection::none);
  const auto dia_want = hybrid_diameter(g, default_cfg(), 3, alg);
  const auto dia_got = hybrid_diameter(g, default_cfg(), 3, alg,
                                       with_faults(drop_local_opts(0.1)));
  EXPECT_EQ(dia_got.estimate, dia_want.estimate);
  EXPECT_EQ(dia_got.h_hat, dia_want.h_hat);
  EXPECT_EQ(dia_got.skeleton_estimate, dia_want.skeleton_estimate);
  EXPECT_EQ(dia_got.exact_path, dia_want.exact_path);
}

TEST(FaultPipelines, ApspLabelsIdenticalUnderLocalDropsOnFiftySeeds) {
  const u32 n = 24;
  const graph g = gen::erdos_renyi_connected(n, 3.0, 8, 15);  // weighted
  const auto want = hybrid_apsp_exact(g, default_cfg(), 9, true);
  for (u64 fs = 0; fs < 50; ++fs) {
    const u32 threads = fs % 3 == 0 ? 1 : fs % 3 == 1 ? 2 : 8;
    const auto got =
        hybrid_apsp_exact(g, default_cfg(), 9, true,
                          with_faults(drop_local_opts(0.3, fs), threads));
    expect_labels_identical(got.labels, want.labels);
    ASSERT_EQ(got.dist, want.dist) << fs;
    ASSERT_EQ(got.next_hop, want.next_hop) << fs;
    ASSERT_GT(got.metrics.local_dropped, 0u) << fs;
    ASSERT_EQ(got.metrics.local_items,
              got.metrics.local_delivered + got.metrics.local_dropped)
        << fs;
    // Healing cost lands in the per-stage breakdown: phase deltas must add
    // up to the run totals (metrics.hpp phase_entry).
    u64 phase_extra = 0, phase_retx = 0;
    for (const phase_entry& ph : got.metrics.phases) {
      phase_extra += ph.extra_rounds;
      phase_retx += ph.retransmitted;
    }
    ASSERT_EQ(phase_extra, got.metrics.extra_rounds) << fs;
    ASSERT_EQ(phase_retx, got.metrics.retransmitted) << fs;
    ASSERT_GT(got.metrics.extra_rounds, 0u) << fs;
  }
}

TEST(FaultPipelines, BaselineApspLabelsIdenticalUnderLocalDrops) {
  const u32 n = 24;
  const graph g = gen::erdos_renyi_connected(n, 3.0, 8, 15);
  const auto want = baseline_apsp_ahkss(g, default_cfg(), 9);
  for (u64 fs = 0; fs < 10; ++fs) {
    const auto got = baseline_apsp_ahkss(
        g, default_cfg(), 9, with_faults(drop_local_opts(0.3, fs), 2));
    expect_labels_identical(got.labels, want.labels);
    ASSERT_EQ(got.dist, want.dist) << fs;
  }
}

TEST(FaultPipelines, TwoLevelApspLabelsIdenticalUnderLocalDrops) {
  // The two-level path swaps its charged E_S dissemination stand-in for the
  // real healing gossip whenever a fault plane is active (DESIGN.md
  // deviation 10) — labels must come out bit-equal to the fault-free
  // two-level run, which never sees the gossip at all.
  const u32 n = 40;
  const graph g = gen::erdos_renyi_connected(n, 4.0, 8, 15);
  sim_options o;
  o.hierarchy = oracle_hierarchy::kTwoLevel;
  const auto want = hybrid_apsp_exact(g, default_cfg(), 9, false, o);
  ASSERT_EQ(want.labels.scheme, label_scheme::kTwoLevel);
  ASSERT_GE(want.labels.n_s2, 1u);
  for (u64 fs = 0; fs < 8; ++fs) {
    sim_options fo = with_faults(drop_local_opts(0.3, fs), fs % 2 ? 2 : 1);
    fo.hierarchy = oracle_hierarchy::kTwoLevel;
    const auto got = hybrid_apsp_exact(g, default_cfg(), 9, false, fo);
    expect_labels_identical(got.labels, want.labels);
    ASSERT_GT(got.metrics.local_dropped, 0u) << fs;
  }
}

TEST(FaultPipelines, SsspExactUnderBothPlanesAndCrashes) {
  const u32 n = 40;
  const graph g = gen::erdos_renyi_connected(n, 3.0, 8, 51);
  const auto ref = dijkstra(g, 0);
  const auto base = hybrid_sssp_exact(g, default_cfg(), 21, 0);
  fault_options f = drop_global_opts(0.1, 4);
  f.drop_local = 0.1;
  f.crashes.push_back({6, 3, 9});
  for (u32 threads : {1u, 2u, 8u}) {
    const auto run =
        hybrid_sssp_exact(g, default_cfg(), 21, 0, with_faults(f, threads));
    EXPECT_EQ(run.dist, ref) << threads;
    EXPECT_EQ(run.dist, base.dist) << threads;
    EXPECT_GT(run.metrics.local_dropped, 0u) << threads;
    EXPECT_GT(run.metrics.global_dropped, 0u) << threads;
    EXPECT_EQ(run.metrics.global_sent,
              run.metrics.global_messages + run.metrics.global_dropped)
        << threads;
    EXPECT_EQ(run.metrics.local_items,
              run.metrics.local_delivered + run.metrics.local_dropped)
        << threads;
  }
}

TEST(FaultPipelines, DiameterIdenticalUnderLocalDropsOnManySeeds) {
  const u32 n = 32;
  const graph g = gen::erdos_renyi_connected(n, 3.0, 1, 15);  // unweighted
  const auto alg = make_clique_diameter_32(0.25, injection::none);
  const auto want = hybrid_diameter(g, default_cfg(), 7, alg);
  for (u64 fs = 0; fs < 10; ++fs) {
    const u32 threads = fs % 3 == 0 ? 1 : fs % 3 == 1 ? 2 : 8;
    const auto got =
        hybrid_diameter(g, default_cfg(), 7, alg,
                        with_faults(drop_local_opts(0.3, fs), threads));
    ASSERT_EQ(got.estimate, want.estimate) << fs;
    ASSERT_EQ(got.h_hat, want.h_hat) << fs;
    ASSERT_EQ(got.skeleton_estimate, want.skeleton_estimate) << fs;
    ASSERT_EQ(got.exact_path, want.exact_path) << fs;
    ASSERT_GT(got.metrics.local_dropped, 0u) << fs;
  }
}

// ---- CI fault matrix hook --------------------------------------------------

// The CI fault-matrix leg re-runs `ctest -L faults` at HYBRID_FAULT_P ∈
// {0, 0.1, 0.3} × HYBRID_THREADS ∈ {1, 8}; this test reads both from the
// environment (threads via the executor's own HYBRID_THREADS handling) so
// one binary exercises every cell with genuinely different drop rates.
TEST(FaultMatrix, PipelinesCorrectAtEnvironmentProbability) {
  double p = 0.1;
  if (const char* env = std::getenv("HYBRID_FAULT_P")) {
    char* end = nullptr;
    const double parsed = std::strtod(env, &end);
    if (end != env && parsed >= 0.0 && parsed <= 1.0) p = parsed;
  }
  const u32 n = 32;
  const graph g = gen::erdos_renyi_connected(n, 3.0, 6, 27);
  sim_options opts;  // threads = 0: defer to HYBRID_THREADS
  opts.faults = drop_global_opts(p, 3);
  const auto run = hybrid_sssp_exact(g, default_cfg(), 13, 0, opts);
  EXPECT_EQ(run.dist, dijkstra(g, 0));
  EXPECT_EQ(run.metrics.global_sent,
            run.metrics.global_messages + run.metrics.global_dropped);
  if (p > 0.0) {
    EXPECT_GT(run.metrics.global_dropped, 0u);
  } else {
    EXPECT_EQ(run.metrics.global_dropped, 0u);
    EXPECT_EQ(run.metrics.retransmitted, 0u);
  }
}

TEST(FaultMatrix, PipelinesCorrectAtEnvironmentLocalProbability) {
  double p = 0.1;
  if (const char* env = std::getenv("HYBRID_FAULT_LOCAL_P")) {
    char* end = nullptr;
    const double parsed = std::strtod(env, &end);
    if (end != env && parsed >= 0.0 && parsed <= 1.0) p = parsed;
  }
  const u32 n = 32;
  const graph g = gen::erdos_renyi_connected(n, 3.0, 6, 27);
  sim_options opts;  // threads = 0: defer to HYBRID_THREADS
  opts.faults = drop_local_opts(p, 3);
  const auto run = hybrid_sssp_exact(g, default_cfg(), 13, 0, opts);
  EXPECT_EQ(run.dist, dijkstra(g, 0));
  EXPECT_EQ(run.metrics.local_items,
            run.metrics.local_delivered + run.metrics.local_dropped);
  if (p > 0.0) {
    EXPECT_GT(run.metrics.local_dropped, 0u);
  } else {
    EXPECT_EQ(run.metrics.local_dropped, 0u);
    EXPECT_EQ(run.metrics.retransmitted, 0u);
  }
}

}  // namespace
}  // namespace hybrid
