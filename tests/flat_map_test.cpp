// Unit tests for util/flat_map.hpp — the open-addressed flat map that
// backs token routing's per-node exact-path state (store / pending /
// task_of / want_of). Covers the unordered_map behaviours those call
// sites rely on (find-as-pointer, emplace-never-overwrites, erase,
// operator[] default construction) plus the open-addressing internals
// that unordered_map never exercised: tombstone reuse, swap-remove
// probe-slot repointing, and rehash under churn. Ends with a
// deterministic differential fuzz against std::unordered_map.
#include <gtest/gtest.h>

#include <unordered_map>
#include <vector>

#include "util/flat_map.hpp"
#include "util/rng.hpp"

namespace hybrid {
namespace {

TEST(FlatMap, EmptyMapFindsNothing) {
  flat_u64_map<u64> m;
  EXPECT_EQ(m.find(0), nullptr);
  EXPECT_EQ(m.find(42), nullptr);
  EXPECT_FALSE(m.contains(42));
  EXPECT_TRUE(m.empty());
  EXPECT_EQ(m.size(), 0u);
  m.erase(42);  // erase on empty is a no-op, not a fault
  EXPECT_TRUE(m.empty());
}

TEST(FlatMap, SubscriptInsertsAndFinds) {
  flat_u64_map<u64> m;
  m[7] = 70;
  m[9] = 90;
  ASSERT_NE(m.find(7), nullptr);
  EXPECT_EQ(*m.find(7), 70u);
  ASSERT_NE(m.find(9), nullptr);
  EXPECT_EQ(*m.find(9), 90u);
  EXPECT_EQ(m.find(8), nullptr);
  EXPECT_EQ(m.size(), 2u);
  m[7] = 71;  // overwrite via subscript, no new entry
  EXPECT_EQ(*m.find(7), 71u);
  EXPECT_EQ(m.size(), 2u);
}

TEST(FlatMap, SubscriptDefaultConstructs) {
  flat_u64_map<std::vector<u32>> m;
  m[5].push_back(1);
  m[5].push_back(2);
  ASSERT_NE(m.find(5), nullptr);
  EXPECT_EQ(*m.find(5), (std::vector<u32>{1, 2}));
}

TEST(FlatMap, EmplaceNeverOverwrites) {
  flat_u64_map<u64> m;
  EXPECT_TRUE(m.emplace(3, 30));
  EXPECT_FALSE(m.emplace(3, 31));  // the unordered_map emplace contract
  EXPECT_EQ(*m.find(3), 30u);
  EXPECT_EQ(m.size(), 1u);
}

TEST(FlatMap, EraseRemovesOnlyItsKey) {
  flat_u64_map<u64> m;
  for (u64 k = 0; k < 16; ++k) m[k] = k * 10;
  m.erase(5);
  m.erase(5);   // double erase is a no-op
  m.erase(99);  // absent key is a no-op
  EXPECT_EQ(m.size(), 15u);
  for (u64 k = 0; k < 16; ++k) {
    if (k == 5) {
      EXPECT_EQ(m.find(k), nullptr);
    } else {
      ASSERT_NE(m.find(k), nullptr) << "key " << k;
      EXPECT_EQ(*m.find(k), k * 10);
    }
  }
}

TEST(FlatMap, EraseThenReinsertReusesTombstone) {
  flat_u64_map<u64> m;
  m[1] = 10;
  m[2] = 20;
  m.erase(1);
  m[1] = 11;  // must land in (or before) the tombstoned slot, not duplicate
  EXPECT_EQ(m.size(), 2u);
  EXPECT_EQ(*m.find(1), 11u);
  EXPECT_EQ(*m.find(2), 20u);
}

TEST(FlatMap, SwapRemoveKeepsLastEntryReachable) {
  // erase() moves the last entry into the erased slot and must repoint its
  // probe-table slot; every surviving key stays findable after each erase.
  flat_u64_map<u64> m;
  constexpr u64 kKeys = 64;
  for (u64 k = 0; k < kKeys; ++k) m[k] = k;
  for (u64 k = 0; k < kKeys; ++k) {
    m.erase(k);
    for (u64 j = k + 1; j < kKeys; ++j) {
      ASSERT_NE(m.find(j), nullptr) << "lost key " << j << " erasing " << k;
      EXPECT_EQ(*m.find(j), j);
    }
  }
  EXPECT_TRUE(m.empty());
}

TEST(FlatMap, GrowPreservesEntriesAndDropsTombstones) {
  flat_u64_map<u64> m;
  // Heavy insert/erase churn forces several rehashes with live tombstones.
  for (u64 k = 0; k < 4096; ++k) {
    m[k] = k ^ 0xabcdu;
    if (k % 3 == 0) m.erase(k);
  }
  for (u64 k = 0; k < 4096; ++k) {
    if (k % 3 == 0) {
      EXPECT_EQ(m.find(k), nullptr);
    } else {
      ASSERT_NE(m.find(k), nullptr) << "key " << k;
      EXPECT_EQ(*m.find(k), k ^ 0xabcdu);
    }
  }
}

TEST(FlatMap, ClearKeepsMapUsable) {
  flat_u64_map<u64> m;
  for (u64 k = 0; k < 100; ++k) m[k] = k;
  m.clear();
  EXPECT_TRUE(m.empty());
  EXPECT_EQ(m.find(50), nullptr);
  m[50] = 500;
  EXPECT_EQ(*m.find(50), 500u);
  EXPECT_EQ(m.size(), 1u);
}

TEST(FlatMap, AdversarialKeysCollide) {
  // Keys chosen so raw low bits collide badly; the splitmix64 finalizer
  // plus linear probing must still keep everything findable.
  flat_u64_map<u64> m;
  std::vector<u64> keys;
  for (u64 k = 0; k < 256; ++k) keys.push_back(k << 32);  // identical low bits
  for (u64 k : keys) m[k] = k + 1;
  for (u64 k : keys) {
    ASSERT_NE(m.find(k), nullptr);
    EXPECT_EQ(*m.find(k), k + 1);
  }
}

TEST(FlatMap, DifferentialFuzzAgainstUnorderedMap) {
  // Deterministic op stream (insert / subscript / erase / lookup) applied
  // to both maps; every lookup must agree, and size must match throughout.
  flat_u64_map<u64> flat;
  std::unordered_map<u64, u64> ref;
  rng gen(0x5eedf00du);
  for (u32 step = 0; step < 50000; ++step) {
    const u64 key = gen.next() % 512;  // small space → heavy churn
    switch (gen.next() % 4) {
      case 0:
        EXPECT_EQ(flat.emplace(key, step), ref.emplace(key, step).second);
        break;
      case 1:
        flat[key] = step;
        ref[key] = step;
        break;
      case 2:
        flat.erase(key);
        ref.erase(key);
        break;
      case 3: {
        const u64* got = flat.find(key);
        const auto it = ref.find(key);
        ASSERT_EQ(got != nullptr, it != ref.end()) << "step " << step;
        if (got != nullptr) {
          EXPECT_EQ(*got, it->second);
        }
        break;
      }
    }
    ASSERT_EQ(flat.size(), ref.size()) << "step " << step;
  }
  for (const auto& [key, value] : ref) {
    const u64* got = flat.find(key);
    ASSERT_NE(got, nullptr) << "key " << key;
    EXPECT_EQ(*got, value);
  }
}

}  // namespace
}  // namespace hybrid
