// Deeper tests of the LOCAL-mode primitives: hop-accurate propagation,
// weighted relaxation semantics, round accounting of the early-exit and
// parallel-composition modes, and traffic charging.
#include <gtest/gtest.h>

#include <algorithm>

#include "graph/generators.hpp"
#include "graph/shortest_paths.hpp"
#include "proto/aggregation.hpp"
#include "proto/flood.hpp"

namespace hybrid {
namespace {

model_config cfg() { return model_config{}; }

TEST(HopDiscovery, OneHopPerRoundStrictly) {
  // A value must not travel two hops in one round regardless of node order:
  // the regression that motivated the value-carrying frontier.
  const graph g = gen::path(6);
  hybrid_net net(g, cfg(), 1);
  const auto known = hop_discovery(net, {0}, 2);
  for (u32 v = 0; v < 6; ++v) {
    const bool reached = !known[v].empty();
    EXPECT_EQ(reached, v <= 2) << v;
  }
}

TEST(HopDiscovery, DescendingIdsSameResult) {
  // Propagation must be independent of node iteration order; build a path
  // with ids reversed relative to adjacency.
  std::vector<edge_spec> edges;
  for (u32 i = 0; i + 1 < 6; ++i) edges.push_back({5 - i, 5 - (i + 1), 1});
  const graph g = graph::from_edges(6, edges);
  hybrid_net net(g, cfg(), 1);
  const auto known = hop_discovery(net, {5}, 2);  // 5 is a path endpoint
  u32 reached = 0;
  for (u32 v = 0; v < 6; ++v) reached += !known[v].empty();
  EXPECT_EQ(reached, 3u);  // self + 2 hops
}

TEST(HopDiscovery, EarlyExitChargesAggregation) {
  const graph g = gen::path(8);  // last new node at round 7, detected at 8
  hybrid_net net(g, cfg(), 1);
  hop_discovery(net, {0}, 1000, /*early_exit=*/true);
  EXPECT_LE(net.round(), 8u + aggregation_rounds(8));
  EXPECT_GE(net.round(), 7u);
}

TEST(HopDiscovery, MultipleSeedsSameNode) {
  const graph g = gen::path(5);
  hybrid_net net(g, cfg(), 1);
  const auto known = hop_discovery(net, {2, 2}, 1);  // duplicated seed
  // Both seed indices must be discoverable independently.
  u32 count_at_2 = 0;
  for (const discovered_seed& d : known[2]) {
    EXPECT_EQ(d.hop, 0u);
    ++count_at_2;
  }
  EXPECT_EQ(count_at_2, 2u);
}

TEST(LimitedBellmanFord, WeightedShortcutBeyondHopBudget) {
  // d_1(0,2) uses the heavy direct edge; d_2 uses the light 2-hop path.
  const graph g = graph::from_edges(
      3, std::vector<edge_spec>{{0, 1, 2}, {1, 2, 2}, {0, 2, 10}});
  {
    hybrid_net net(g, cfg(), 1);
    const auto got = limited_bellman_ford(net, {0}, 1);
    u64 d2 = kInfDist;
    for (const source_distance& sd : got[2]) d2 = sd.dist;
    EXPECT_EQ(d2, 10u);
  }
  {
    hybrid_net net(g, cfg(), 1);
    const auto got = limited_bellman_ford(net, {0}, 2);
    u64 d2 = kInfDist;
    for (const source_distance& sd : got[2]) d2 = sd.dist;
    EXPECT_EQ(d2, 4u);
  }
}

TEST(LimitedBellmanFord, ZeroRoundsOnlySources) {
  const graph g = gen::path(5);
  hybrid_net net(g, cfg(), 1);
  const auto got = limited_bellman_ford(net, {3}, 0);
  for (u32 v = 0; v < 5; ++v) {
    if (v == 3) {
      ASSERT_EQ(got[v].size(), 1u);
      EXPECT_EQ(got[v][0].dist, 0u);
    } else {
      EXPECT_TRUE(got[v].empty());
    }
  }
}

TEST(LimitedBellmanFord, ManySourcesMatchReference) {
  const graph g = gen::grid(9, 9, 7, 4);
  hybrid_net net(g, cfg(), 1);
  std::vector<u32> sources;
  for (u32 v = 0; v < 81; v += 8) sources.push_back(v);
  const u32 h = 6;
  const auto got = limited_bellman_ford(net, sources, h);
  for (u32 i = 0; i < sources.size(); ++i) {
    const auto ref = limited_distance(g, sources[i], h);
    for (u32 v = 0; v < 81; ++v) {
      u64 mine = kInfDist;
      for (const source_distance& sd : got[v])
        if (sd.source == i) mine = sd.dist;
      ASSERT_EQ(mine, ref[v]) << "source " << i << " node " << v;
    }
  }
}

TEST(LimitedBellmanFord, ChargesTrafficInParallelMode) {
  const graph g = gen::grid(8, 8);
  hybrid_net net(g, cfg(), 1);
  const u64 before = net.raw_metrics().local_items;
  limited_bellman_ford(net, {0}, 10, /*advance_rounds=*/false);
  EXPECT_GT(net.raw_metrics().local_items, before);
  EXPECT_EQ(net.round(), 0u);
}

TEST(FullLocalExploration, SymmetricOnUndirected) {
  const graph g = gen::erdos_renyi_connected(40, 4.0, 6, 8);
  hybrid_net net(g, cfg(), 1);
  const auto mat = full_local_exploration(net, 4, true);
  for (u32 u = 0; u < 40; ++u)
    for (u32 v = 0; v < 40; ++v) EXPECT_EQ(mat[u][v], mat[v][u]);
}

TEST(FullLocalExploration, HorizonGrowsMonotonically) {
  const graph g = gen::path(20, 5, 3);
  std::vector<std::vector<std::vector<u64>>> mats;
  for (u32 h : {1u, 3u, 9u}) {
    hybrid_net net(g, cfg(), 1);
    mats.push_back(full_local_exploration(net, h, true));
  }
  for (u32 u = 0; u < 20; ++u)
    for (u32 v = 0; v < 20; ++v) {
      EXPECT_GE(mats[0][u][v], mats[1][u][v]);
      EXPECT_GE(mats[1][u][v], mats[2][u][v]);
    }
}

TEST(TableFlood, ChargesWordsPerEdgeCrossing) {
  const graph g = gen::path(5);
  hybrid_net net(g, cfg(), 1);
  table_flood(net, {0}, {1000}, 2);
  // The table crosses at least 2 edges (plus re-offers to known holders).
  EXPECT_GE(net.raw_metrics().local_items, 2000u);
}

TEST(TableFlood, MultiplePublishersIndependentRadii) {
  const graph g = gen::grid(6, 6);
  hybrid_net net(g, cfg(), 1);
  const auto holds = table_flood(net, {0, 35}, {10, 10}, 3);
  const auto h0 = bfs_hops(g, 0);
  const auto h1 = bfs_hops(g, 35);
  for (u32 v = 0; v < 36; ++v) {
    const bool has0 =
        std::find(holds[v].begin(), holds[v].end(), 0u) != holds[v].end();
    const bool has1 =
        std::find(holds[v].begin(), holds[v].end(), 1u) != holds[v].end();
    EXPECT_EQ(has0, h0[v] <= 3) << v;
    EXPECT_EQ(has1, h1[v] <= 3) << v;
  }
}

TEST(TruncatedEccentricity, GridCenterVsCorner) {
  const graph g = gen::grid(7, 7);
  hybrid_net net(g, cfg(), 1);
  const auto ecc = truncated_eccentricity(net, 50);
  EXPECT_EQ(ecc[0], 12u);       // corner: 6 + 6
  EXPECT_EQ(ecc[3 * 7 + 3], 6u);  // center: 3 + 3
}

TEST(TruncatedEccentricity, RoundsChargedFully) {
  const graph g = gen::grid(4, 4);
  hybrid_net net(g, cfg(), 1);
  truncated_eccentricity(net, 9);
  EXPECT_EQ(net.round(), 9u);  // fixed budget, no early exit in Algorithm 9
}

}  // namespace
}  // namespace hybrid
