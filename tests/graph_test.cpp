// Tests for the graph substrate: construction, generators, reference
// shortest paths / diameters, and the lower-bound constructions' ground
// truth (Lemmas 7.1 and 7.2 verified combinatorially).
#include <gtest/gtest.h>

#include <algorithm>

#include "graph/diameter.hpp"
#include "graph/generators.hpp"
#include "graph/graph.hpp"
#include "graph/shortest_paths.hpp"
#include "lb/gamma_graph.hpp"
#include "lb/kssp_lb_graph.hpp"

namespace hybrid {
namespace {

TEST(Graph, BuildAndNeighbors) {
  const std::vector<edge_spec> es = {{0, 1, 3}, {1, 2, 1}, {0, 2, 10}};
  const graph g = graph::from_edges(3, es);
  EXPECT_EQ(g.num_nodes(), 3u);
  EXPECT_EQ(g.num_edges(), 3u);
  EXPECT_EQ(g.degree(0), 2u);
  EXPECT_EQ(g.max_weight(), 10u);
  EXPECT_FALSE(g.is_unweighted());
  EXPECT_TRUE(g.is_connected());
}

TEST(Graph, ParallelEdgesKeepLightest) {
  const std::vector<edge_spec> es = {{0, 1, 5}, {1, 0, 2}};
  const graph g = graph::from_edges(2, es);
  EXPECT_EQ(g.num_edges(), 1u);
  EXPECT_EQ(g.neighbors(0)[0].weight, 2u);
}

TEST(Graph, RejectsBadEdges) {
  EXPECT_THROW(graph::from_edges(2, std::vector<edge_spec>{{0, 0, 1}}),
               std::invalid_argument);
  EXPECT_THROW(graph::from_edges(2, std::vector<edge_spec>{{0, 5, 1}}),
               std::invalid_argument);
  EXPECT_THROW(graph::from_edges(2, std::vector<edge_spec>{{0, 1, 0}}),
               std::invalid_argument);
}

TEST(Graph, DisconnectedDetected) {
  const graph g = graph::from_edges(4, std::vector<edge_spec>{{0, 1, 1}, {2, 3, 1}});
  EXPECT_FALSE(g.is_connected());
}

TEST(Generators, PathCycleGridTree) {
  EXPECT_EQ(gen::path(10).num_edges(), 9u);
  EXPECT_EQ(gen::cycle(10).num_edges(), 10u);
  const graph grid = gen::grid(4, 5);
  EXPECT_EQ(grid.num_nodes(), 20u);
  EXPECT_EQ(grid.num_edges(), 4u * 4 + 5u * 3);
  EXPECT_TRUE(grid.is_connected());
  const graph tree = gen::balanced_tree(31, 2);
  EXPECT_EQ(tree.num_edges(), 30u);
  EXPECT_TRUE(tree.is_connected());
}

TEST(Generators, ErdosRenyiConnectedAndSized) {
  for (u64 seed : {1u, 2u, 3u}) {
    const graph g = gen::erdos_renyi_connected(200, 6.0, 8, seed);
    EXPECT_TRUE(g.is_connected());
    EXPECT_GE(g.num_edges(), 199u);
    EXPECT_LE(g.max_weight(), 8u);
  }
}

TEST(Generators, RandomGeometricConnected) {
  const graph g = gen::random_geometric(300, 8.0, 1, 7);
  EXPECT_TRUE(g.is_connected());
  EXPECT_TRUE(g.is_unweighted());
}

TEST(Generators, PreferentialAttachment) {
  const graph g = gen::preferential_attachment(300, 3, 1, 11);
  EXPECT_EQ(g.num_nodes(), 300u);
  EXPECT_TRUE(g.is_connected());
  // Scale-free skew: the max degree should far exceed the average.
  u32 max_deg = 0;
  u64 total_deg = 0;
  for (u32 v = 0; v < 300; ++v) {
    max_deg = std::max(max_deg, g.degree(v));
    total_deg += g.degree(v);
  }
  EXPECT_GE(max_deg, 4 * total_deg / 300);
}

TEST(Generators, PreferentialAttachmentWeighted) {
  const graph g = gen::preferential_attachment(100, 2, 9, 7);
  EXPECT_TRUE(g.is_connected());
  EXPECT_LE(g.max_weight(), 9u);
  EXPECT_GE(g.max_weight(), 2u);
}

TEST(Generators, BoundedDegreeRespectsCap) {
  for (u32 cap : {2u, 3u, 6u}) {
    const graph g = gen::bounded_degree(500, cap, 1, 19);
    EXPECT_EQ(g.num_nodes(), 500u);
    EXPECT_TRUE(g.is_connected());
    u64 total_deg = 0;
    for (u32 v = 0; v < 500; ++v) {
      EXPECT_LE(g.degree(v), cap);
      total_deg += g.degree(v);
    }
    // The extra-edge phase should use up most of the capacity — well
    // beyond the spanning tree's 2(n-1) = 998, which it provides by
    // construction. (With these seeds it saturates cap·n exactly.)
    EXPECT_GE(total_deg, u64{9} * cap * 500 / 10);
  }
}

TEST(Generators, BoundedDegreeWeightedAndDeterministic) {
  const graph g1 = gen::bounded_degree(200, 4, 9, 23);
  const graph g2 = gen::bounded_degree(200, 4, 9, 23);
  EXPECT_EQ(g1.num_edges(), g2.num_edges());
  EXPECT_LE(g1.max_weight(), 9u);
  for (u32 v = 0; v < 200; ++v) {
    const auto n1 = g1.neighbors(v);
    const auto n2 = g2.neighbors(v);
    ASSERT_EQ(n1.size(), n2.size());
    for (u32 i = 0; i < n1.size(); ++i) {
      EXPECT_EQ(n1[i].to, n2[i].to);
      EXPECT_EQ(n1[i].weight, n2[i].weight);
    }
  }
}

TEST(Generators, Barbell) {
  const graph g = gen::barbell(5, 10);
  EXPECT_EQ(g.num_nodes(), 20u);
  EXPECT_TRUE(g.is_connected());
  // clique hop + bridge of path_len+1 edges + clique hop
  EXPECT_EQ(hop_diameter(g), 13u);
}

TEST(ShortestPaths, DijkstraOnKnownGraph) {
  //    0 --1-- 1 --1-- 2
  //     \------5------/
  const graph g = graph::from_edges(
      3, std::vector<edge_spec>{{0, 1, 1}, {1, 2, 1}, {0, 2, 5}});
  const auto d = dijkstra(g, 0);
  EXPECT_EQ(d[0], 0u);
  EXPECT_EQ(d[1], 1u);
  EXPECT_EQ(d[2], 2u);
}

TEST(ShortestPaths, BfsHops) {
  const graph g = gen::path(6);
  const auto h = bfs_hops(g, 0);
  for (u32 v = 0; v < 6; ++v) EXPECT_EQ(h[v], v);
}

TEST(ShortestPaths, LimitedDistanceRespectsHopBudget) {
  // Direct heavy edge vs. long light path: d_h must use ≤ h hops.
  const graph g = graph::from_edges(
      5, std::vector<edge_spec>{
             {0, 4, 10}, {0, 1, 1}, {1, 2, 1}, {2, 3, 1}, {3, 4, 1}});
  EXPECT_EQ(limited_distance(g, 0, 1)[4], 10u);
  EXPECT_EQ(limited_distance(g, 0, 3)[4], 10u);
  EXPECT_EQ(limited_distance(g, 0, 4)[4], 4u);
  EXPECT_EQ(limited_distance(g, 0, 100)[4], 4u);
}

TEST(ShortestPaths, LimitedDistanceUnreachableIsInf) {
  const graph g = gen::path(10);
  EXPECT_EQ(limited_distance(g, 0, 3)[9], kInfDist);
}

TEST(ShortestPaths, ApspMatchesDijkstraRows) {
  const graph g = gen::erdos_renyi_connected(60, 4.0, 9, 11);
  const auto all = apsp_reference(g);
  for (u32 v : {0u, 13u, 59u}) {
    const auto row = dijkstra(g, v);
    EXPECT_EQ(all[v], row);
  }
  // Symmetry on undirected graphs.
  for (u32 u = 0; u < 60; u += 7)
    for (u32 v = 0; v < 60; v += 5) EXPECT_EQ(all[u][v], all[v][u]);
}

TEST(Diameter, PathAndGrid) {
  EXPECT_EQ(hop_diameter(gen::path(17)), 16u);
  EXPECT_EQ(hop_diameter(gen::grid(4, 7)), 3u + 6u);
  EXPECT_EQ(weighted_diameter(gen::path(5)), 4u);
}

TEST(Diameter, WeightedVsHop) {
  // Heavy direct edge forces weighted distance along more hops.
  const graph g = graph::from_edges(
      3, std::vector<edge_spec>{{0, 1, 1}, {1, 2, 1}, {0, 2, 100}});
  EXPECT_EQ(hop_diameter(g), 1u);
  EXPECT_EQ(weighted_diameter(g), 2u);
}

TEST(Diameter, ShortestPathDiameter) {
  // SPD counts hops of weighted shortest paths: the light path wins, so the
  // SPD is larger than the hop diameter.
  const graph g = graph::from_edges(
      5, std::vector<edge_spec>{
             {0, 4, 100}, {0, 1, 1}, {1, 2, 1}, {2, 3, 1}, {3, 4, 1}});
  EXPECT_EQ(hop_diameter(g), 2u);
  EXPECT_EQ(shortest_path_diameter(g), 4u);
}

// ---- Figure 2: Γ^{a,b} and Lemmas 7.1 / 7.2 -------------------------------

lb::gamma_graph make_gamma(u32 k, u32 ell, u64 w, bool make_disjoint,
                           u64 seed) {
  rng r(seed);
  std::vector<u8> a(k * k, 0), b(k * k, 0);
  for (u32 i = 0; i < k * k; ++i) {
    a[i] = r.next_bool(0.5);
    b[i] = a[i] ? 0 : r.next_bool(0.5);  // start disjoint
  }
  if (!make_disjoint) {
    const u32 i = static_cast<u32>(r.next_below(k * k));
    a[i] = b[i] = 1;  // plant exactly one intersection
  }
  return lb::build_gamma({k, ell, w}, a, b);
}

TEST(GammaGraph, StructureAndSize) {
  const auto gg = make_gamma(4, 5, 20, true, 1);
  // 4 cliques of k + 2 hubs + (2k+1) paths with ell−1 internal nodes.
  EXPECT_EQ(gg.g.num_nodes(), 4u * 4 + 2 + (2u * 4 + 1) * (5 - 1));
  EXPECT_TRUE(gg.g.is_connected());
  EXPECT_EQ(gg.column[gg.v_hat], 0u);
  EXPECT_EQ(gg.column[gg.u_hat], 5u);
}

TEST(GammaGraph, Lemma71WeightedDisjoint) {
  for (u64 seed : {1u, 2u, 3u, 4u}) {
    const auto gg = make_gamma(4, 4, 16, true, seed);
    ASSERT_GT(gg.params.w, gg.params.ell);  // Lemma 7.1 requires W > ℓ
    EXPECT_LE(weighted_diameter(gg.g), gg.low_diameter()) << "seed " << seed;
  }
}

TEST(GammaGraph, Lemma71WeightedIntersecting) {
  for (u64 seed : {1u, 2u, 3u, 4u}) {
    const auto gg = make_gamma(4, 4, 16, false, seed);
    EXPECT_GE(weighted_diameter(gg.g), gg.high_diameter()) << "seed " << seed;
  }
}

TEST(GammaGraph, Lemma72UnweightedGap) {
  for (u64 seed : {5u, 6u, 7u}) {
    const auto dis = make_gamma(4, 6, 1, true, seed);
    const auto inter = make_gamma(4, 6, 1, false, seed);
    EXPECT_EQ(hop_diameter(dis.g), dis.params.ell + 1) << "seed " << seed;
    EXPECT_EQ(hop_diameter(inter.g), inter.params.ell + 2) << "seed " << seed;
  }
}

TEST(GammaGraph, CutSplitsColumns) {
  const auto gg = make_gamma(3, 6, 1, true, 9);
  const auto cut = gg.alice_bob_cut();
  EXPECT_EQ(cut[gg.v_hat], 0);
  EXPECT_EQ(cut[gg.u_hat], 1);
  for (u32 i = 0; i < 3; ++i) {
    EXPECT_EQ(cut[gg.v1[i]], 0);
    EXPECT_EQ(cut[gg.u2[i]], 1);
  }
}

TEST(GammaGraph, RejectsMalformedInput) {
  EXPECT_THROW(lb::build_gamma({2, 4, 8}, std::vector<u8>(3, 0),
                               std::vector<u8>(4, 0)),
               std::invalid_argument);
}

// ---- Figure 1: the k-SSP lower-bound graph --------------------------------

TEST(KsspLbGraph, DistancesMatchConstruction) {
  rng r(3);
  const auto lbg = lb::build_kssp_lb({100, 16, 8}, r);
  EXPECT_TRUE(lbg.g.is_connected());
  const auto d = dijkstra(lbg.g, lbg.b);
  u32 s1 = 0, s2 = 0;
  for (u32 i = 0; i < lbg.sources.size(); ++i) {
    if (lbg.in_s1[i]) {
      EXPECT_EQ(d[lbg.sources[i]], lbg.dist_b_s1());
      ++s1;
    } else {
      EXPECT_EQ(d[lbg.sources[i]], lbg.dist_b_s2());
      ++s2;
    }
  }
  EXPECT_EQ(s1, s2);  // random half/half split
  EXPECT_GT(lbg.alpha_prime(), 1.0);
}

TEST(KsspLbGraph, AlphaPrimeGrowsWithPathLength) {
  rng r(4);
  const auto small = lb::build_kssp_lb({64, 16, 8}, r);
  const auto big = lb::build_kssp_lb({512, 16, 8}, r);
  EXPECT_GT(big.alpha_prime(), small.alpha_prime());
}

TEST(KsspLbGraph, CutSeparatesBFromSources) {
  rng r(5);
  const auto lbg = lb::build_kssp_lb({50, 8, 4}, r);
  const auto cut = lbg.path_cut();
  EXPECT_EQ(cut[lbg.b], 0);
  for (u32 s : lbg.sources) EXPECT_EQ(cut[s], 1);
}

}  // namespace
}  // namespace hybrid
