// Tests for the k-wise independent hash family (paper Appendix D).
#include <gtest/gtest.h>

#include <map>
#include <vector>

#include "hash/kwise.hpp"

namespace hybrid {
namespace {

TEST(KwiseHash, DeterministicGivenSeedStream) {
  rng r1(99), r2(99);
  kwise_hash h1(8, r1), h2(8, r2);
  for (u64 x = 0; x < 100; ++x) EXPECT_EQ(h1.eval(x), h2.eval(x));
}

TEST(KwiseHash, DifferentSeedsGiveDifferentFunctions) {
  rng r1(1), r2(2);
  kwise_hash h1(8, r1), h2(8, r2);
  int same = 0;
  for (u64 x = 0; x < 100; ++x) same += (h1.eval(x) == h2.eval(x));
  EXPECT_LE(same, 2);
}

TEST(KwiseHash, RangeMappingStaysInRange) {
  rng r(3);
  kwise_hash h(6, r);
  for (u64 x = 0; x < 10'000; ++x) ASSERT_LT(h.eval_to_range(x, 37), 37u);
}

TEST(KwiseHash, MarginalUniformity) {
  // Each key's image should be near-uniform over buckets across seeds.
  constexpr u32 buckets = 16;
  constexpr int trials = 4000;
  std::vector<int> counts(buckets, 0);
  for (int t = 0; t < trials; ++t) {
    rng r(1000 + t);
    kwise_hash h(4, r);
    ++counts[h.eval_to_range(/*key=*/123456, buckets)];
  }
  for (int c : counts) {
    EXPECT_GT(c, trials / buckets * 0.7);
    EXPECT_LT(c, trials / buckets * 1.3);
  }
}

TEST(KwiseHash, PairwiseIndependenceSmoke) {
  // For a fixed pair of keys, the joint distribution over a 4×4 bucket grid
  // should be near-product across random functions.
  constexpr u32 buckets = 4;
  constexpr int trials = 8000;
  std::map<std::pair<u32, u32>, int> joint;
  for (int t = 0; t < trials; ++t) {
    rng r(77 + t);
    kwise_hash h(4, r);
    joint[{h.eval_to_range(11, buckets), h.eval_to_range(22, buckets)}]++;
  }
  const double expect = trials / 16.0;
  for (u32 i = 0; i < buckets; ++i)
    for (u32 j = 0; j < buckets; ++j) {
      const double c = joint[{i, j}];
      EXPECT_GT(c, expect * 0.6) << i << "," << j;
      EXPECT_LT(c, expect * 1.4) << i << "," << j;
    }
}

TEST(KwiseHash, SeedBitsMatchLemma) {
  rng r(5);
  kwise_hash h(24, r);  // k = Θ(log n) for n ≈ 2^8..2^24
  EXPECT_EQ(h.seed_bits(), 24u * 61);  // O(log² n) bits (Lemma 2.3)
}

TEST(KwiseHash, LabelEncodingInjective) {
  std::map<u64, std::tuple<u32, u32, u32>> seen;
  const u32 n = 64;
  for (u32 s = 0; s < 8; ++s)
    for (u32 t = 0; t < 8; ++t)
      for (u32 i = 0; i < 8; ++i) {
        const u64 key = kwise_hash::encode_label(s, t, i, n, 1u << 20);
        auto [it, inserted] = seen.emplace(key, std::make_tuple(s, t, i));
        EXPECT_TRUE(inserted) << "collision at " << s << "," << t << "," << i;
      }
}

TEST(KwiseHash, EncodeRejectsOverflow) {
  EXPECT_THROW(
      kwise_hash::encode_label(1u << 30, 0, 0, 1u << 31, 1u << 30),
      std::invalid_argument);
}

TEST(KwiseHash, RejectsTrivialIndependence) {
  rng r(5);
  EXPECT_THROW(kwise_hash(1, r), std::invalid_argument);
}

}  // namespace
}  // namespace hybrid
