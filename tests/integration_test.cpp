// Cross-module integration tests: the full algorithms on the lower-bound
// constructions, determinism, configuration robustness, cut instrumentation
// through complete pipelines, and the weighted-diameter 2-approximation.
#include <gtest/gtest.h>

#include <cmath>

#include "core/apsp.hpp"
#include "core/diameter.hpp"
#include "core/kssp_framework.hpp"
#include "core/sssp.hpp"
#include "graph/diameter.hpp"
#include "graph/generators.hpp"
#include "graph/shortest_paths.hpp"
#include "lb/gamma_graph.hpp"
#include "lb/kssp_lb_graph.hpp"
#include "proto/skeleton.hpp"
#include "sim/clique_net.hpp"

namespace hybrid {
namespace {

model_config cfg() { return model_config{}; }

// ---- full pipelines on the adversarial constructions ------------------------

TEST(Integration, ApspExactOnGammaGraph) {
  rng r(3);
  std::vector<u8> a(36, 0), b(36, 0);
  for (u32 i = 0; i < 36; ++i) {
    a[i] = r.next_bool(0.5);
    b[i] = a[i] ? 0 : 1;
  }
  const lb::gamma_graph gg = lb::build_gamma({6, 6, 1}, a, b);
  const apsp_result res = hybrid_apsp_exact(gg.g, cfg(), 17);
  const auto ref = apsp_reference(gg.g);
  for (u32 u = 0; u < gg.g.num_nodes(); ++u) ASSERT_EQ(res.dist[u], ref[u]);
  // A node can derive the exact diameter — the capability Theorem 1.6
  // prices at Ω̃(n^{1/3}).
  u64 diam = 0;
  for (const auto& row : res.dist)
    for (u64 d : row) diam = std::max(diam, d);
  EXPECT_EQ(diam, hop_diameter(gg.g));
}

TEST(Integration, KsspOnLowerBoundFamilyIsCorrect) {
  rng r(5);
  const lb::kssp_lb_graph inst = lb::build_kssp_lb({128, 16, 8}, r);
  const auto alg = make_clique_apsp_2eps(0.25, injection::none);
  const kssp_result res = hybrid_kssp(inst.g, cfg(), 5, inst.sources, alg);
  // b (node 0) must learn distances that separate S1 from S2 — the
  // information whose transfer the lower bound prices.
  for (u32 j = 0; j < inst.sources.size(); ++j) {
    const u64 d = res.dist[j][inst.b];
    if (inst.in_s1[j])
      EXPECT_EQ(d, inst.dist_b_s1());
    else
      EXPECT_EQ(d, inst.dist_b_s2());
  }
}

TEST(Integration, CutInstrumentationThroughApsp) {
  rng r(7);
  const lb::kssp_lb_graph inst = lb::build_kssp_lb({64, 16, 8}, r);
  model_config c = cfg();
  c.cut_side = inst.path_cut();
  const apsp_result res = hybrid_apsp_exact(inst.g, c, 23);
  // The S1/S2 split (16 bits of entropy) must have crossed the cut, with
  // lots of slack for protocol overhead.
  EXPECT_GE(res.metrics.cut_bits, 16u);
  const auto ref = apsp_reference(inst.g);
  for (u32 u = 0; u < inst.g.num_nodes(); ++u)
    ASSERT_EQ(res.dist[u], ref[u]);
}

// ---- determinism -------------------------------------------------------------

TEST(Integration, ApspFullyDeterministicPerSeed) {
  const graph g = gen::erdos_renyi_connected(128, 5.0, 9, 31);
  const apsp_result a = hybrid_apsp_exact(g, cfg(), 42);
  const apsp_result b = hybrid_apsp_exact(g, cfg(), 42);
  EXPECT_EQ(a.metrics.rounds, b.metrics.rounds);
  EXPECT_EQ(a.metrics.global_messages, b.metrics.global_messages);
  EXPECT_EQ(a.dist, b.dist);
  EXPECT_EQ(a.skeleton_size, b.skeleton_size);
}

TEST(Integration, DifferentSeedsDifferentSkeletons) {
  const graph g = gen::erdos_renyi_connected(256, 5.0, 9, 31);
  const apsp_result a = hybrid_apsp_exact(g, cfg(), 1);
  const apsp_result b = hybrid_apsp_exact(g, cfg(), 2);
  // Results identical (exact), internals differ.
  EXPECT_EQ(a.dist, b.dist);
  EXPECT_NE(a.metrics.global_messages, b.metrics.global_messages);
}

TEST(Integration, SsspDeterministicPerSeed) {
  const graph g = gen::grid(12, 12, 5, 3);
  const sssp_result a = hybrid_sssp_exact(g, cfg(), 9, 7);
  const sssp_result b = hybrid_sssp_exact(g, cfg(), 9, 7);
  EXPECT_EQ(a.metrics.rounds, b.metrics.rounds);
  EXPECT_EQ(a.dist, b.dist);
}

// ---- configuration robustness -------------------------------------------------

class ConfigRobustness : public ::testing::TestWithParam<double> {};

TEST_P(ConfigRobustness, ApspExactUnderGammaSweep) {
  model_config c = cfg();
  c.global_cap_mult = GetParam();
  const graph g = gen::erdos_renyi_connected(128, 5.0, 7, 13);
  const apsp_result res = hybrid_apsp_exact(g, c, 19);
  const auto ref = apsp_reference(g);
  for (u32 u = 0; u < 128; ++u) ASSERT_EQ(res.dist[u], ref[u]);
}

INSTANTIATE_TEST_SUITE_P(Gammas, ConfigRobustness,
                         ::testing::Values(1.0, 2.0, 8.0));

TEST(ConfigRobustnessExtra, LowIndependenceStillDelivers) {
  // Pairwise independence only: receive loads may spike but delivery is
  // guaranteed by the queueing protocol.
  model_config c = cfg();
  c.hash_independence_mult = 0.1;  // clamps to k = 2
  const graph g = gen::erdos_renyi_connected(128, 5.0, 1, 17);
  const sssp_result res = hybrid_sssp_exact(g, c, 3, 0);
  EXPECT_EQ(res.dist, dijkstra(g, 0));
}

TEST(ConfigRobustnessExtra, TinyPayloadBudgetRejected) {
  // Token routing needs 2-word payloads; a 1-word model cap must fail fast
  // (invariant), not silently truncate.
  model_config c = cfg();
  c.max_payload_words = 1;
  const graph g = gen::erdos_renyi_connected(64, 5.0, 1, 19);
  EXPECT_THROW(hybrid_apsp_exact(g, c, 3), std::logic_error);
}

// ---- weighted diameter 2-approximation ---------------------------------------

class WeightedDiam2Approx : public ::testing::TestWithParam<std::tuple<int, u64>> {
};

TEST_P(WeightedDiam2Approx, BandHolds) {
  const auto [kind, seed] = GetParam();
  graph g;
  switch (kind) {
    case 0: g = gen::erdos_renyi_connected(160, 5.0, 12, seed); break;
    case 1: g = gen::grid(12, 13, 9, seed); break;
    default: g = gen::path(160, 12, seed); break;
  }
  const u64 dw = weighted_diameter(g);
  const weighted_diameter_result res =
      hybrid_weighted_diameter_2approx(g, cfg(), seed);
  EXPECT_LE(res.eccentricity, dw);
  EXPECT_GE(res.estimate, dw);          // never underestimates
  EXPECT_LE(res.estimate, 2 * dw);      // 2-approximation
  EXPECT_EQ(res.estimate, 2 * res.eccentricity);
}

INSTANTIATE_TEST_SUITE_P(Graphs, WeightedDiam2Approx,
                         ::testing::Combine(::testing::Values(0, 1, 2),
                                            ::testing::Values(3u, 4u)));

TEST(WeightedDiam2ApproxExtra, PivotChoiceAffectsTightnessNotSoundness) {
  const graph g = gen::path(100, 10, 5);
  const u64 dw = weighted_diameter(g);
  // Endpoint pivot: e(v) = D, estimate = 2D. Center pivot: e ≈ D/2,
  // estimate ≈ D.
  const auto end = hybrid_weighted_diameter_2approx(g, cfg(), 3, 0);
  const auto mid = hybrid_weighted_diameter_2approx(g, cfg(), 3, 50);
  EXPECT_GE(end.estimate, dw);
  EXPECT_GE(mid.estimate, dw);
  EXPECT_LE(mid.estimate, end.estimate);
}

// ---- equation (3) threshold behavior -----------------------------------------

TEST(Integration, DiameterBranchSwitchesWithEta) {
  // Same graph: a generous ε (deep exploration) catches D exactly; a tiny
  // exploration falls back to the skeleton estimate.
  const graph g = gen::path(700);
  const diameter_result deep = hybrid_diameter(
      g, cfg(), 3, make_clique_diameter_32(0.1, injection::none));
  const diameter_result shallow = hybrid_diameter(
      g, cfg(), 3, make_clique_diameter_32(1.0, injection::none));
  EXPECT_TRUE(deep.exact_path);
  EXPECT_EQ(deep.estimate, 699u);
  EXPECT_FALSE(shallow.exact_path);
  EXPECT_GE(shallow.estimate, 699u);
}

// ---- exactness across the full family matrix ---------------------------------

struct family_case {
  int kind;
  u64 max_w;
};

class ApspFamilyMatrix : public ::testing::TestWithParam<family_case> {};

TEST_P(ApspFamilyMatrix, Exact) {
  const auto [kind, max_w] = GetParam();
  graph g;
  switch (kind) {
    case 0: g = gen::cycle(150, max_w, 7); break;
    case 1: g = gen::barbell(20, 60, max_w, 7); break;
    case 2: g = gen::balanced_tree(150, 3, max_w, 7); break;
    default: g = gen::random_geometric(150, 7.0, max_w, 7); break;
  }
  const apsp_result res = hybrid_apsp_exact(g, cfg(), 29);
  const auto ref = apsp_reference(g);
  for (u32 u = 0; u < g.num_nodes(); ++u) ASSERT_EQ(res.dist[u], ref[u]);
}

INSTANTIATE_TEST_SUITE_P(Families, ApspFamilyMatrix,
                         ::testing::Values(family_case{0, 1},
                                           family_case{0, 11},
                                           family_case{1, 1},
                                           family_case{1, 8},
                                           family_case{2, 9},
                                           family_case{3, 6}));

TEST(Integration, ApspOnScaleFreeOverlay) {
  // The P2P-overlay shape from the paper's motivation: heavy-tailed degrees.
  const graph g = gen::preferential_attachment(200, 3, 7, 13);
  const apsp_result res = hybrid_apsp_exact(g, cfg(), 21);
  const auto ref = apsp_reference(g);
  for (u32 u = 0; u < g.num_nodes(); ++u) ASSERT_EQ(res.dist[u], ref[u]);
}

TEST(Integration, KsspOnScaleFreeWithInjection) {
  const graph g = gen::preferential_attachment(200, 3, 9, 17);
  rng r(5);
  const auto sources = r.sample_without_replacement(200, 10);
  const auto alg = make_clique_kssp_1eps(0.25, injection::worst_case);
  const kssp_result res = hybrid_kssp(g, cfg(), 11, sources, alg);
  const auto ref = multi_source_reference(g, sources);
  for (u32 j = 0; j < sources.size(); ++j)
    for (u32 v = 0; v < 200; ++v) {
      ASSERT_GE(res.dist[j][v], ref[j][v]);
      ASSERT_LE(static_cast<double>(res.dist[j][v]),
                res.bound_weighted * static_cast<double>(ref[j][v]) + 1e-9);
    }
}

TEST(Integration, MessageLevelCliqueSsspMatchesSkeletonSolve) {
  // Cross-validate the charged-complexity plug-ins against the honest
  // message-level CLIQUE Bellman–Ford on a real skeleton instance.
  const graph g = gen::grid(14, 14, 6, 3);
  hybrid_net net(g, cfg(), 9);
  const skeleton_result sk = compute_skeleton(net, 0.15);
  clique_problem prob;
  prob.n_s = static_cast<u32>(sk.nodes.size());
  prob.edges = &sk.edges;
  prob.max_edge_weight = 6;
  clique_net cnet(prob.n_s);
  const auto msg_level = bellman_ford_clique_sssp(cnet, prob, 0);
  EXPECT_EQ(msg_level, skeleton_sssp(sk, 0));
}

}  // namespace
}  // namespace hybrid
