// Tests for the flat-arena mailbox delivery path (sim/mailbox.hpp):
// (src, send-index) inbox ordering, bit-identical delivery and receive-load
// metrics across thread counts, arena reuse (no heap growth after warm-up,
// probed via mailbox stats), γ-cap saturation on the flat outbox, and the
// clique mirror's overflow/re-stride path. Run under -fsanitize=thread this
// suite doubles as a race detector for the parallel counting sort (the TSAN
// CI job does exactly that).
#include <gtest/gtest.h>

#include <vector>

#include "graph/generators.hpp"
#include "sim/clique_net.hpp"
#include "sim/hybrid_net.hpp"
#include "util/rng.hpp"

namespace hybrid {
namespace {

// Order-sensitive digest of one inbox span (FNV-style fold), so two runs
// agree iff contents AND order agree.
template <class Msg>
u64 inbox_digest(std::span<const Msg> box) {
  u64 h = 1469598103934665603ull;
  auto mix = [&](u64 x) {
    h ^= x;
    h *= 1099511628211ull;
  };
  for (const Msg& m : box) {
    mix(m.src);
    mix(m.dst);
    mix(m.tag);
    mix(m.nw);
    for (u8 i = 0; i < m.nw; ++i) mix(m.w[i]);
  }
  return h;
}

TEST(FlatMailbox, InboxSortedBySrcThenSendIndex) {
  const graph g = gen::path(8);
  hybrid_net net(g, model_config{}, 1);
  // Enqueue in scrambled source order; within each source, send order is
  // the tag sequence.
  EXPECT_TRUE(net.try_send_global(global_msg::make(5, 2, /*tag=*/50, {})));
  EXPECT_TRUE(net.try_send_global(global_msg::make(1, 2, 10, {})));
  EXPECT_TRUE(net.try_send_global(global_msg::make(5, 2, 51, {})));
  EXPECT_TRUE(net.try_send_global(global_msg::make(0, 2, 0, {})));
  EXPECT_TRUE(net.try_send_global(global_msg::make(1, 2, 11, {})));
  net.advance_round();
  const auto box = net.global_inbox(2);
  ASSERT_EQ(box.size(), 5u);
  const u32 want_src[] = {0, 1, 1, 5, 5};
  const u32 want_tag[] = {0, 10, 11, 50, 51};
  for (u32 i = 0; i < 5; ++i) {
    EXPECT_EQ(box[i].src, want_src[i]) << i;
    EXPECT_EQ(box[i].tag, want_tag[i]) << i;
  }
}

// A multi-round workload where every node sends a round_rng-chosen batch
// from inside a parallel step — the exact shape advance_round()'s counting
// sort must deliver identically at every thread count.
TEST(FlatMailbox, DeliveryBitIdenticalAcrossThreadCounts) {
  const u32 n = 257;  // prime-ish: exercises uneven shard tails
  const graph g = gen::erdos_renyi_connected(n, 4.0, 1, 11);
  const u32 rounds = 12;
  auto run = [&](u32 threads) {
    hybrid_net net(g, model_config{}, 31, sim_options{threads});
    std::vector<u64> digests;
    for (u32 r = 0; r < rounds; ++r) {
      net.executor().for_nodes(n, [&](u32 v) {
        rng rv = net.round_rng(v);
        const u32 k = static_cast<u32>(rv.next_below(net.global_cap() + 1));
        for (u32 i = 0; i < k; ++i) {
          const u32 dst = static_cast<u32>(rv.next_below(n));
          ASSERT_TRUE(net.try_send_global(
              global_msg::make(v, dst, i, {rv.next(), u64{v} << 32 | r})));
        }
      });
      net.advance_round();
      u64 round_digest = 0;
      for (u32 v = 0; v < n; ++v)
        round_digest ^= (v + 1) * inbox_digest(net.global_inbox(v));
      digests.push_back(round_digest);
    }
    return std::make_pair(digests, net.snapshot());
  };
  const auto [d1, m1] = run(1);
  for (u32 threads : {2u, 8u}) {
    const auto [dt, mt] = run(threads);
    EXPECT_EQ(dt, d1) << threads << " threads";
    EXPECT_EQ(mt.global_messages, m1.global_messages) << threads;
    EXPECT_EQ(mt.global_payload_words, m1.global_payload_words) << threads;
    EXPECT_EQ(mt.max_global_recv_per_round, m1.max_global_recv_per_round)
        << threads;
  }
}

TEST(FlatMailbox, ArenasStopGrowingAfterWarmup) {
  const u32 n = 128;
  const graph g = gen::erdos_renyi_connected(n, 4.0, 1, 7);
  hybrid_net net(g, model_config{}, 5, sim_options{2});
  auto saturate_round = [&](u32 r) {
    net.executor().for_nodes(n, [&](u32 v) {
      rng rv = net.round_rng(v);
      while (net.global_budget(v) > 0) {
        const u32 dst = static_cast<u32>(rv.next_below(n));
        net.try_send_global(global_msg::make(v, dst, r, {rv.next()}));
      }
    });
    net.advance_round();
  };
  for (u32 r = 0; r < 4; ++r) saturate_round(r);
  const mailbox_stats warm = net.global_mailbox_stats();
  // Slabs start small and re-stride to γ at the first barrier; the send
  // cap guarantees they never need to grow past γ.
  EXPECT_EQ(warm.stride, net.global_cap());
  EXPECT_GT(warm.overflow_messages, 0u);  // round 1 spilled, pre-re-stride
  for (u32 r = 4; r < 24; ++r) saturate_round(r);
  const mailbox_stats done = net.global_mailbox_stats();
  EXPECT_EQ(done.grow_events, warm.grow_events) << "arena grew after warm-up";
  EXPECT_EQ(done.inbox_slots, warm.inbox_slots);
  EXPECT_EQ(done.outbox_slots, warm.outbox_slots);
  EXPECT_EQ(done.overflow_messages, warm.overflow_messages)
      << "slab overflowed again after the re-stride";
  EXPECT_EQ(done.delivered_total, u64{24} * n * net.global_cap());
}

TEST(FlatMailbox, GammaCapSaturationOnFlatOutbox) {
  const u32 n = 64;
  const graph g = gen::path(n);
  hybrid_net net(g, model_config{}, 9, sim_options{4});
  const u32 cap = net.global_cap();
  net.executor().for_nodes(n, [&](u32 v) {
    for (u32 i = 0; i < cap; ++i)
      ASSERT_TRUE(net.try_send_global(
          global_msg::make(v, (v + i + 1) % n, i, {u64{v}})));
    ASSERT_EQ(net.global_budget(v), 0u);
    ASSERT_FALSE(net.try_send_global(global_msg::make(v, 0, 99, {})));
  });
  net.advance_round();
  u64 delivered = 0;
  for (u32 v = 0; v < n; ++v) {
    delivered += net.global_inbox(v).size();
    EXPECT_EQ(net.global_budget(v), cap);  // budget reset at the barrier
  }
  EXPECT_EQ(delivered, u64{n} * cap);
  EXPECT_EQ(net.raw_metrics().global_messages, u64{n} * cap);
  net.advance_round();
  for (u32 v = 0; v < n; ++v)
    EXPECT_TRUE(net.global_inbox(v).empty());  // cleared next round
}

TEST(FlatMailbox, CliqueOverflowRestridesOnceThenStaysFlat) {
  const u32 n = 64;
  const u32 per_node = 40;  // above the initial slab width of 16
  clique_net net(n, sim_options{2});
  auto full_round = [&] {
    net.executor().for_nodes(n, [&](u32 v) {
      for (u32 i = 0; i < per_node; ++i) {
        clique_msg m;
        m.src = v;
        m.dst = (v + i) % n;
        m.tag = i;
        net.send(m);
      }
    });
    net.advance_round();
  };
  full_round();
  const mailbox_stats first = net.mailbox_stats_probe();
  EXPECT_GT(first.overflow_messages, 0u);  // round 1 spilled past the slab
  EXPECT_GE(first.stride, per_node);       // ...and re-strided at the barrier
  full_round();
  full_round();
  const mailbox_stats later = net.mailbox_stats_probe();
  EXPECT_EQ(later.overflow_messages, first.overflow_messages)
      << "slab overflowed again after the re-stride";
  EXPECT_EQ(later.grow_events, first.grow_events);
  EXPECT_EQ(net.total_messages(), u64{3} * n * per_node);
  EXPECT_EQ(net.max_recv_per_round(), per_node);
  // Inboxes stay (src, send-index)-sorted through slab + overflow delivery.
  const auto box = net.inbox(0);
  ASSERT_EQ(box.size(), per_node);
  for (u32 i = 1; i < box.size(); ++i)
    EXPECT_LT(box[i - 1].src, box[i].src) << i;
}

TEST(FlatMailbox, CliqueDeliveryBitIdenticalAcrossThreadCounts) {
  const u32 n = 96;
  const u32 rounds = 6;
  auto run = [&](u32 threads) {
    clique_net net(n, sim_options{threads});
    std::vector<u64> digests;
    for (u32 r = 0; r < rounds; ++r) {
      net.executor().for_nodes(n, [&](u32 v) {
        rng rv(derive_seed(derive_seed(1234, v), r));
        const u32 k = static_cast<u32>(rv.next_below(n));
        for (u32 i = 0; i < k; ++i) {
          clique_msg m;
          m.src = v;
          m.dst = static_cast<u32>(rv.next_below(n));
          m.tag = i;
          m.w[0] = rv.next();
          m.nw = 1;
          net.send(m);
        }
      });
      net.advance_round();
      u64 round_digest = 0;
      for (u32 v = 0; v < n; ++v)
        round_digest ^= (v + 1) * inbox_digest(net.inbox(v));
      digests.push_back(round_digest);
    }
    return std::make_tuple(digests, net.total_messages(),
                           net.max_recv_per_round());
  };
  const auto base = run(1);
  EXPECT_EQ(run(2), base);
  EXPECT_EQ(run(8), base);
}

// Filtered delivery (the fault-injection drop path, sim/fault.hpp): the
// dual-pass counting sort must keep survivors in (src, send-index) order,
// deliver bit-identically at every thread count, and account sent/dropped
// consistently — specifically under sparse scatter, where most nodes send
// nothing and a rotating minority sends bursts, so shard tails see empty
// and dense source runs side by side.
TEST(FlatMailbox, FilteredSparseScatterKeepsOrderAcrossThreadCounts) {
  const u32 n = 257;
  const graph g = gen::erdos_renyi_connected(n, 4.0, 1, 11);
  const u32 rounds = 10;
  auto run = [&](u32 threads) {
    sim_options opts;
    opts.threads = threads;
    opts.faults.drop_global = 0.35;
    opts.faults.fault_seed = 13;
    hybrid_net net(g, model_config{}, 31, opts);
    std::vector<u64> digests;
    for (u32 r = 0; r < rounds; ++r) {
      net.executor().for_nodes(n, [&](u32 v) {
        if (v % 17 != r % 17) return;  // sparse: ~n/17 senders per round
        rng rv = net.round_rng(v);
        const u32 k = static_cast<u32>(rv.next_below(net.global_cap() + 1));
        for (u32 i = 0; i < k; ++i) {
          const u32 dst = static_cast<u32>(rv.next_below(n));
          ASSERT_TRUE(
              net.try_send_global(global_msg::make(v, dst, i, {rv.next()})));
        }
      });
      net.advance_round();
      u64 round_digest = 0;
      for (u32 v = 0; v < n; ++v) {
        const auto box = net.global_inbox(v);
        // Survivors keep (src, send-index) order: the tag is the per-source
        // send counter, so within one src it must stay strictly increasing
        // after the filter removed arbitrary positions.
        for (u32 i = 1; i < box.size(); ++i)
          EXPECT_TRUE(box[i - 1].src < box[i].src ||
                      (box[i - 1].src == box[i].src &&
                       box[i - 1].tag < box[i].tag))
              << "round " << r << " dst " << v << " pos " << i;
        round_digest ^= (v + 1) * inbox_digest(box);
      }
      digests.push_back(round_digest);
    }
    const run_metrics m = net.raw_metrics();
    return std::make_tuple(digests, m.global_sent, m.global_messages,
                           m.global_dropped);
  };
  const auto base = run(1);
  EXPECT_EQ(run(2), base);
  EXPECT_EQ(run(8), base);
  EXPECT_GT(std::get<3>(base), 0u);
  EXPECT_EQ(std::get<1>(base), std::get<2>(base) + std::get<3>(base));
}

// The keyed (filtered) kernel through the overflow/re-stride transition:
// the per-shard key streams are sized from the live send counts, so the
// round that spills past the initial slab width and triggers the barrier
// re-stride is exactly where a sizing bug would corrupt the frozen filter
// verdicts. Drive flat_mailbox directly (the bench_scatter shape) with a
// tiny initial stride so round 0 overflows with the filter already
// active, and require bit-identical inboxes and drop accounting at every
// thread count, before AND after the re-stride.
TEST(FlatMailbox, FilteredDeliveryBitIdenticalThroughRestride) {
  const u32 n = 97;
  const u32 cap = 24;
  const u32 rounds = 6;
  const flat_mailbox<global_msg>::drop_filter drop =
      [](u32 src, u32 idx, const global_msg& m) {
        return derive_seed(derive_seed(src, idx), m.w[0]) % 4 == 0;
      };
  auto run = [&](u32 threads) {
    round_executor exec(sim_options{threads});
    flat_mailbox<global_msg> mail(n, cap, /*initial_stride=*/3);
    std::vector<u64> digests;
    u64 delivered = 0, dropped = 0;
    for (u32 r = 0; r < rounds; ++r) {
      exec.for_nodes(n, [&](u32 v) {
        // Every node overflows the 3-slot slab in round 0; later rounds
        // mix empty, slab-only, and full senders.
        const u32 k = r == 0 ? cap : (v + r) % (cap + 1);
        for (u32 i = 0; i < k; ++i)
          mail.push(global_msg::make(v, (v * 31 + i * 7 + r) % n, i,
                                     {derive_seed(v, i ^ r)}));
      });
      mail.deliver(exec, &drop);
      delivered += mail.delivered_last_round();
      dropped += mail.dropped_last_round();
      u64 round_digest = 0;
      for (u32 v = 0; v < n; ++v) {
        const auto box = mail.inbox(v);
        for (u32 i = 1; i < box.size(); ++i)
          EXPECT_TRUE(box[i - 1].src < box[i].src ||
                      (box[i - 1].src == box[i].src &&
                       box[i - 1].tag < box[i].tag))
              << "round " << r << " dst " << v << " pos " << i;
        round_digest ^= (v + 1) * inbox_digest(box);
      }
      digests.push_back(round_digest);
      if (r == 0) {
        // The overflow round must also have re-strided at its barrier.
        EXPECT_GT(mail.stats().overflow_messages, 0u) << threads;
        EXPECT_EQ(mail.stats().stride, cap) << threads;
      }
    }
    EXPECT_GT(dropped, 0u) << threads;
    return std::make_tuple(digests, delivered, dropped);
  };
  const auto base = run(1);
  EXPECT_EQ(run(2), base);
  EXPECT_EQ(run(8), base);
}

TEST(FlatMailbox, EmptyRoundsDeliverNothingAndResetInboxes) {
  const graph g = gen::path(4);
  hybrid_net net(g, model_config{}, 3, sim_options{8});
  net.advance_round();
  for (u32 v = 0; v < 4; ++v) EXPECT_TRUE(net.global_inbox(v).empty());
  EXPECT_TRUE(net.try_send_global(global_msg::make(0, 1, 0, {7})));
  net.advance_round();
  EXPECT_EQ(net.global_inbox(1).size(), 1u);
  net.advance_round();
  for (u32 v = 0; v < 4; ++v) EXPECT_TRUE(net.global_inbox(v).empty());
  EXPECT_EQ(net.raw_metrics().global_messages, 1u);
}

}  // namespace
}  // namespace hybrid
