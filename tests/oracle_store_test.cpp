// Serialization battery for the persistent oracle store
// (core/oracle_store.hpp), `ctest -L store`:
//
//   * property-based round trips — randomized ER / grid / star /
//     bounded-degree / disconnected graphs × both label schemes: save →
//     mmap-load → query/next_hop/row bit-identical to the in-memory oracle,
//     compared from 1, 2, and 8 concurrent reader threads;
//   * corruption/fuzz cases — truncation, flipped magic, wrong version,
//     out-of-bounds section offsets, CSR indices past the arena: each file
//     must be rejected with the RIGHT typed store_errc, never UB (the suite
//     runs in the TSAN CI leg);
//   * a concurrent-reader torture test — 8 threads hammering one mapped
//     view with seeded request mixes, per-thread result digests
//     seed-deterministic and equal to an in-memory replay;
//   * a golden file — tests/data/golden_oracle_v2.bin is read bit-exactly
//     and byte-compared against a fresh save of the same labels, so ANY
//     format change forces a conscious kOracleFormatVersion bump
//     (regenerate deliberately with HYBRID_REGEN_ORACLE_GOLDEN=1). The v1
//     golden stays committed as the versioning-policy witness: today's
//     loader must reject it with exactly store_errc::bad_version.
#include "core/oracle_store.hpp"

#include <gtest/gtest.h>

#include <sys/stat.h>
#include <unistd.h>

#include <algorithm>
#include <atomic>
#include <cstdio>
#include <ctime>
#include <fstream>
#include <thread>
#include <vector>

#include "core/apsp.hpp"
#include "core/apsp_baseline.hpp"
#include "graph/generators.hpp"
#include "util/rng.hpp"

namespace hybrid {
namespace {

model_config cfg() { return model_config{}; }

// Pid-qualified: ctest -j runs each test case as its own process, so a
// fixed name would race between concurrently running cases.
std::string tmp_path(const std::string& name) {
  return ::testing::TempDir() + "oracle_store_" + name + "_" +
         std::to_string(::getpid()) + ".bin";
}

std::vector<std::byte> read_file(const std::string& path) {
  std::ifstream f(path, std::ios::binary | std::ios::ate);
  EXPECT_TRUE(f.good()) << path;
  std::vector<std::byte> bytes(static_cast<size_t>(f.tellg()));
  f.seekg(0);
  f.read(reinterpret_cast<char*>(bytes.data()),
         static_cast<std::streamsize>(bytes.size()));
  return bytes;
}

void write_file(const std::string& path, std::span<const std::byte> bytes) {
  std::ofstream f(path, std::ios::binary | std::ios::trunc);
  f.write(reinterpret_cast<const char*>(bytes.data()),
          static_cast<std::streamsize>(bytes.size()));
  ASSERT_TRUE(f.good()) << path;
}

/// Recompute the payload checksum after a deliberate payload patch, so the
/// load reaches the validation layers BEHIND the checksum (bad_csr & co).
void reseal_checksum(std::vector<std::byte>& bytes) {
  auto* hdr = reinterpret_cast<oracle_header*>(bytes.data());
  u64 checksum = 0xcbf29ce484222325ull;
  for (u32 s = 0; s < kOracleSectionCount; ++s)
    checksum = fnv1a({bytes.data() + hdr->sections[s].offset,
                      static_cast<size_t>(hdr->sections[s].bytes)},
                     checksum);
  hdr->payload_checksum = checksum;
}

store_errc load_error(const std::string& path) {
  try {
    (void)mapped_oracle::load(path);
  } catch (const oracle_store_error& e) {
    return e.code();
  }
  ADD_FAILURE() << "load unexpectedly succeeded: " << path;
  return store_errc::io;
}

/// Compare the mapped view against the in-memory labels over every pair,
/// the comparison loop partitioned across `threads` concurrent readers
/// (mismatches counted atomically; gtest assertions stay on the main
/// thread).
void expect_identical(const dist_labels& lab, const mapped_oracle& m,
                      u32 threads) {
  const label_view& mv = m.view();
  ASSERT_EQ(mv.n, lab.n);
  ASSERT_EQ(mv.n_s, lab.n_s);
  ASSERT_EQ(mv.n_s2, lab.n_s2);
  ASSERT_EQ(mv.h, lab.h);
  ASSERT_EQ(mv.scheme, lab.scheme);
  ASSERT_EQ(mv.routes, lab.routes);
  ASSERT_EQ(mv.label_entries(), lab.label_entries());
  std::atomic<u64> mismatches{0};
  std::vector<std::thread> pool;
  const u32 chunk = static_cast<u32>(ceil_div(lab.n, threads));
  for (u32 t = 0; t < threads; ++t) {
    const u32 lo = std::min(lab.n, t * chunk);
    const u32 hi = std::min(lab.n, lo + chunk);
    pool.emplace_back([&, lo, hi] {
      u64 bad = 0;
      std::vector<u64> mine, theirs;
      for (u32 u = lo; u < hi; ++u) {
        lab.row_into(u, mine);
        mv.row_into(u, theirs);
        if (mine != theirs) ++bad;
        for (u32 v = 0; v < lab.n; ++v) {
          if (mv.query(u, v) != lab.query(u, v)) ++bad;
          if (lab.routes && mv.next_hop(u, v) != lab.next_hop(u, v)) ++bad;
        }
      }
      mismatches += bad;
    });
  }
  for (auto& th : pool) th.join();
  EXPECT_EQ(mismatches.load(), 0u) << "threads=" << threads;
}

/// Build (per scheme), save, mmap-load, attach the graph, and compare at
/// reader-thread counts {1, 2, 8}.
void round_trip(const graph& g, u64 seed, label_scheme scheme,
                const std::string& name) {
  sim_options o;
  o.storage = result_storage::kLabels;
  dist_labels lab;
  if (scheme == label_scheme::kSkeletonRows) {
    lab = hybrid_apsp_exact(g, cfg(), seed, /*build_routes=*/true, o).labels;
  } else if (scheme == label_scheme::kTwoLevel) {
    o.hierarchy = oracle_hierarchy::kTwoLevel;
    lab = hybrid_apsp_exact(g, cfg(), seed, /*build_routes=*/true, o).labels;
  } else {
    lab = baseline_apsp_ahkss(g, cfg(), seed, o).labels;
  }
  const std::string path = tmp_path(name);
  save_oracle(lab, path);
  mapped_oracle m = mapped_oracle::load(path);
  if (lab.routes) m.attach_topology(g);
  for (u32 threads : {1u, 2u, 8u}) expect_identical(lab, m, threads);
  std::remove(path.c_str());
}

// ---- property-based round trips ---------------------------------------------

TEST(OracleStoreRoundTrip, ErdosRenyiRandomizedBothSchemes) {
  for (u64 seed : {61u, 62u, 63u}) {
    rng r(seed);
    const u32 n = 64 + static_cast<u32>(r.next_below(56));
    const double deg = 3.0 + r.next_double() * 3.0;
    const u64 max_w = r.next_bool(0.5) ? 1 : 9;
    const graph g = gen::erdos_renyi_connected(n, deg, max_w, seed);
    round_trip(g, seed, label_scheme::kSkeletonRows, "er_rows");
    round_trip(g, seed, label_scheme::kSkeletonPairs, "er_pairs");
  }
}

TEST(OracleStoreRoundTrip, Grid) {
  round_trip(gen::grid(8, 8, 6, 29), 29, label_scheme::kSkeletonRows, "grid");
}

TEST(OracleStoreRoundTrip, Star) {
  round_trip(gen::balanced_tree(36, 35, 4, 17), 17,
             label_scheme::kSkeletonRows, "star");
}

TEST(OracleStoreRoundTrip, BoundedDegree) {
  round_trip(gen::bounded_degree(64, 3, 5, 41), 41,
             label_scheme::kSkeletonRows, "bdeg");
}

TEST(OracleStoreRoundTrip, DisconnectedBothSchemes) {
  // Two components plus isolated vertices: the saved labels must reproduce
  // every kInfDist pair and every ~0 next hop exactly.
  std::vector<edge_spec> edges{{0, 1, 2}, {1, 2, 1}, {2, 3, 3},
                               {4, 5, 1}, {5, 6, 2}, {4, 6, 2}};
  const graph g = graph::from_edges(9, edges);
  round_trip(g, 3, label_scheme::kSkeletonRows, "disc_rows");
  round_trip(g, 3, label_scheme::kSkeletonPairs, "disc_pairs");
}

TEST(OracleStoreRoundTrip, TwoLevelRandomized) {
  // The v2 sections (ball1/gw1/super-nodes/super-pairs) through the same
  // property harness: save → mmap → bit-identical at reader threads
  // {1, 2, 8}.
  for (u64 seed : {64u, 65u, 66u}) {
    rng r(seed);
    const u32 n = 64 + static_cast<u32>(r.next_below(56));
    const double deg = 3.0 + r.next_double() * 3.0;
    const u64 max_w = r.next_bool(0.5) ? 1 : 9;
    const graph g = gen::erdos_renyi_connected(n, deg, max_w, seed);
    round_trip(g, seed, label_scheme::kTwoLevel, "er_two_level");
  }
}

TEST(OracleStoreRoundTrip, TwoLevelDisconnected) {
  // Disconnected super-skeleton on disk: ∞ super-pair entries must survive
  // the round trip and keep composing to exactly kInfDist.
  std::vector<edge_spec> edges{{0, 1, 2}, {1, 2, 1}, {2, 3, 3},
                               {4, 5, 1}, {5, 6, 2}, {4, 6, 2}};
  const graph g = graph::from_edges(9, edges);
  round_trip(g, 3, label_scheme::kTwoLevel, "disc_two_level");
}

// ---- edge cases -------------------------------------------------------------

TEST(OracleStoreEdge, EmptyGraphRoundTrips) {
  dist_labels lab;
  lab.n = 0;
  lab.ball.offsets = {0};
  lab.gw_offsets = {0};
  const std::string path = tmp_path("empty");
  save_oracle(lab, path);
  const mapped_oracle m = mapped_oracle::load(path);
  EXPECT_EQ(m.view().n, 0u);
  EXPECT_EQ(m.view().n_s, 0u);
  EXPECT_EQ(m.view().label_entries(), 0u);
  std::remove(path.c_str());
}

TEST(OracleStoreEdge, SingletonRoundTrips) {
  dist_labels lab;
  lab.n = 1;
  lab.ball.offsets = {0, 1};
  lab.ball.entries = {{0, 0, 0}};
  lab.gw_offsets = {0, 0};
  const std::string path = tmp_path("singleton");
  save_oracle(lab, path);
  const mapped_oracle m = mapped_oracle::load(path);
  EXPECT_EQ(m.query(0, 0), 0u);
  std::remove(path.c_str());
}

TEST(OracleStoreEdge, HZeroBallOnlyRoundTrips) {
  // h = 0 labels: every ball is the node itself, no gateways, no skeleton
  // table — the store must carry the degenerate shape unchanged.
  dist_labels lab;
  lab.n = 3;
  lab.h = 0;
  lab.ball.offsets = {0, 1, 2, 3};
  lab.ball.entries = {{0, 0, 0}, {0, 1, 1}, {0, 2, 2}};
  lab.gw_offsets = {0, 0, 0, 0};
  const std::string path = tmp_path("hzero");
  save_oracle(lab, path);
  const mapped_oracle m = mapped_oracle::load(path);
  for (u32 u = 0; u < 3; ++u)
    for (u32 v = 0; v < 3; ++v)
      EXPECT_EQ(m.query(u, v), u == v ? 0 : kInfDist) << u << "->" << v;
  EXPECT_EQ(m.row(1), (std::vector<u64>{kInfDist, 0, kInfDist}));
  std::remove(path.c_str());
}

TEST(OracleStoreEdge, SaveRejectsMalformedLabels) {
  dist_labels lab;
  lab.n = 2;  // offsets missing → shape violation, typed as invalid_argument
  EXPECT_THROW(save_oracle(lab, tmp_path("malformed")), std::invalid_argument);
}

TEST(OracleStoreEdge, AttachTopologyChecksRoundTripGraph) {
  const graph g = gen::erdos_renyi_connected(48, 4.0, 6, 91);
  sim_options o;
  o.storage = result_storage::kLabels;
  const apsp_result res = hybrid_apsp_exact(g, cfg(), 91, true, o);
  const std::string path = tmp_path("attach");
  save_oracle(res.labels, path);
  mapped_oracle m = mapped_oracle::load(path);
  // next_hop before attach: the view has routes but no graph.
  EXPECT_THROW((void)m.next_hop(0, 1), std::invalid_argument);
  // A different graph (same n, different weights) is rejected.
  const graph other = gen::erdos_renyi_connected(48, 4.0, 6, 92);
  EXPECT_THROW(m.attach_topology(other), std::invalid_argument);
  // A wrong-n graph is rejected.
  const graph small = gen::path(5, 2, 3);
  EXPECT_THROW(m.attach_topology(small), std::invalid_argument);
  // The original graph attaches, and next_hop serves.
  m.attach_topology(g);
  for (u32 v : {1u, 17u, 40u})
    EXPECT_EQ(m.next_hop(0, v), res.labels.next_hop(0, v));
  std::remove(path.c_str());
}

// ---- corruption / fuzz ------------------------------------------------------

class OracleStoreCorruption : public ::testing::Test {
 protected:
  void SetUp() override {
    const graph g = gen::erdos_renyi_connected(40, 4.0, 5, 71);
    sim_options o;
    o.storage = result_storage::kLabels;
    lab_ = hybrid_apsp_exact(g, cfg(), 71, true, o).labels;
    lab_.topo = nullptr;  // the corruption cases never attach a graph
    path_ = tmp_path("corrupt");
    save_oracle(lab_, path_);
    bytes_ = read_file(path_);
    ASSERT_GE(bytes_.size(), sizeof(oracle_header));
  }
  void TearDown() override { std::remove(path_.c_str()); }

  oracle_header* header() {
    return reinterpret_cast<oracle_header*>(bytes_.data());
  }
  /// Write the (possibly patched) bytes and return the typed load error.
  store_errc load_patched() {
    write_file(path_, bytes_);
    return load_error(path_);
  }

  dist_labels lab_;
  std::string path_;
  std::vector<std::byte> bytes_;
};

TEST_F(OracleStoreCorruption, PristineBytesStillLoad) {
  write_file(path_, bytes_);
  const mapped_oracle m = mapped_oracle::load(path_);
  EXPECT_EQ(m.view().n, lab_.n);
}

TEST_F(OracleStoreCorruption, TruncatedBelowHeader) {
  bytes_.resize(sizeof(oracle_header) / 2);
  EXPECT_EQ(load_patched(), store_errc::truncated);
}

TEST_F(OracleStoreCorruption, TruncatedMidPayload) {
  bytes_.resize(bytes_.size() - 1);
  EXPECT_EQ(load_patched(), store_errc::truncated);
}

TEST_F(OracleStoreCorruption, TrailingGarbageRejected) {
  bytes_.push_back(std::byte{0x5a});
  EXPECT_EQ(load_patched(), store_errc::bad_header);
}

TEST_F(OracleStoreCorruption, FlippedMagic) {
  header()->magic ^= 0xff;
  EXPECT_EQ(load_patched(), store_errc::bad_magic);
}

TEST_F(OracleStoreCorruption, WrongVersion) {
  header()->version = kOracleFormatVersion + 1;
  EXPECT_EQ(load_patched(), store_errc::bad_version);
}

TEST_F(OracleStoreCorruption, BadSchemeByte) {
  header()->scheme = 7;
  EXPECT_EQ(load_patched(), store_errc::bad_header);
}

TEST_F(OracleStoreCorruption, SectionOffsetOutOfBounds) {
  header()->sections[1].offset = header()->file_bytes + kOracleSectionAlign;
  EXPECT_EQ(load_patched(), store_errc::bad_section);
}

TEST_F(OracleStoreCorruption, SectionCountInconsistentWithBytes) {
  header()->sections[1].count += 3;
  EXPECT_EQ(load_patched(), store_errc::bad_section);
}

TEST_F(OracleStoreCorruption, SectionMisaligned) {
  header()->sections[2].offset += 8;
  EXPECT_EQ(load_patched(), store_errc::bad_section);
}

TEST_F(OracleStoreCorruption, OffsetTableWrongLength) {
  header()->sections[0].count -= 1;
  header()->sections[0].bytes -= sizeof(u64);
  EXPECT_EQ(load_patched(), store_errc::bad_section);
}

TEST_F(OracleStoreCorruption, PayloadBitFlip) {
  bytes_[header()->sections[1].offset + 5] ^= std::byte{0x10};
  EXPECT_EQ(load_patched(), store_errc::bad_checksum);
}

TEST_F(OracleStoreCorruption, CsrOffsetPastArenaEnd) {
  // Patch one ball offset beyond the entry arena and re-seal the checksum:
  // the damage must be caught by the CSR layer, not by luck.
  auto* offsets =
      reinterpret_cast<u64*>(bytes_.data() + header()->sections[0].offset);
  offsets[lab_.n / 2] = header()->sections[1].count + 5;
  reseal_checksum(bytes_);
  EXPECT_EQ(load_patched(), store_errc::bad_csr);
}

TEST_F(OracleStoreCorruption, CsrOffsetsDecreasing) {
  auto* offsets =
      reinterpret_cast<u64*>(bytes_.data() + header()->sections[2].offset);
  if (offsets[1] == 0) offsets[1] = 1;  // force non-monotone vs offsets[0]=0…
  offsets[2] = 0;                       // …or a later decrease
  reseal_checksum(bytes_);
  EXPECT_EQ(load_patched(), store_errc::bad_csr);
}

TEST_F(OracleStoreCorruption, GatewaySkeletonIndexOutOfRange) {
  auto* gws = reinterpret_cast<source_distance*>(bytes_.data() +
                                                 header()->sections[3].offset);
  ASSERT_GT(header()->sections[3].count, 0u);
  gws[0].source = lab_.n_s + 7;
  reseal_checksum(bytes_);
  EXPECT_EQ(load_patched(), store_errc::bad_csr);
}

TEST_F(OracleStoreCorruption, BallEntryNodeOutOfRange) {
  auto* entries = reinterpret_cast<exploration_entry*>(
      bytes_.data() + header()->sections[1].offset);
  entries[0].source = lab_.n + 100;
  reseal_checksum(bytes_);
  EXPECT_EQ(load_patched(), store_errc::bad_csr);
}

TEST_F(OracleStoreCorruption, SuperSizeNonzeroOnRowsScheme) {
  // A single-level file claiming a super-skeleton is self-contradictory and
  // must die in the header layer, before any section is interpreted.
  header()->n_s2 = 5;
  EXPECT_EQ(load_patched(), store_errc::bad_header);
}

TEST_F(OracleStoreCorruption, ReservedFieldNonzero) {
  header()->reserved = 1;
  EXPECT_EQ(load_patched(), store_errc::bad_header);
}

/// Corruption battery over the v2 level-1 slabs: the fixture labels are a
/// real two-level build, so sections 6–10 are all populated.
class OracleStoreTwoLevelCorruption : public ::testing::Test {
 protected:
  void SetUp() override {
    const graph g = gen::erdos_renyi_connected(40, 4.0, 5, 73);
    sim_options o;
    o.storage = result_storage::kLabels;
    o.hierarchy = oracle_hierarchy::kTwoLevel;
    lab_ = hybrid_apsp_exact(g, cfg(), 73, /*build_routes=*/false, o).labels;
    lab_.topo = nullptr;
    ASSERT_GE(lab_.n_s2, 1u);
    ASSERT_FALSE(lab_.ball1_entries.empty());
    ASSERT_FALSE(lab_.gw1.empty());
    path_ = tmp_path("corrupt2");
    save_oracle(lab_, path_);
    bytes_ = read_file(path_);
    ASSERT_GE(bytes_.size(), sizeof(oracle_header));
  }
  void TearDown() override { std::remove(path_.c_str()); }

  oracle_header* header() {
    return reinterpret_cast<oracle_header*>(bytes_.data());
  }
  store_errc load_patched() {
    write_file(path_, bytes_);
    return load_error(path_);
  }

  dist_labels lab_;
  std::string path_;
  std::vector<std::byte> bytes_;
};

TEST_F(OracleStoreTwoLevelCorruption, PristineBytesStillLoad) {
  write_file(path_, bytes_);
  const mapped_oracle m = mapped_oracle::load(path_);
  EXPECT_EQ(m.view().n_s2, lab_.n_s2);
  EXPECT_EQ(m.view().scheme, label_scheme::kTwoLevel);
}

TEST_F(OracleStoreTwoLevelCorruption, SchemeDowngradeWithLiveSuperSections) {
  // Flipping the scheme byte back to kSkeletonRows while n_s2 and the
  // level-1 sections are populated must die in the header layer.
  header()->scheme = 0;
  EXPECT_EQ(load_patched(), store_errc::bad_header);
}

TEST_F(OracleStoreTwoLevelCorruption, Ball1OffsetsCountWrong) {
  // The ball1 offset table must have exactly n_s + 1 elements.
  header()->sections[6].count -= 1;
  header()->sections[6].bytes -= sizeof(u64);
  EXPECT_EQ(load_patched(), store_errc::bad_section);
}

TEST_F(OracleStoreTwoLevelCorruption, Ball1EntrySkeletonIndexOutOfRange) {
  auto* entries = reinterpret_cast<exploration_entry*>(
      bytes_.data() + header()->sections[7].offset);
  entries[0].source = lab_.n_s + 100;
  reseal_checksum(bytes_);
  EXPECT_EQ(load_patched(), store_errc::bad_csr);
}

TEST_F(OracleStoreTwoLevelCorruption, Gw1SuperIndexOutOfRange) {
  auto* gws = reinterpret_cast<source_distance*>(bytes_.data() +
                                                 header()->sections[9].offset);
  ASSERT_GT(header()->sections[9].count, 0u);
  gws[0].source = lab_.n_s2 + 3;
  reseal_checksum(bytes_);
  EXPECT_EQ(load_patched(), store_errc::bad_csr);
}

TEST_F(OracleStoreTwoLevelCorruption, SuperNodeOutOfRange) {
  auto* supers =
      reinterpret_cast<u32*>(bytes_.data() + header()->sections[10].offset);
  supers[0] = lab_.n_s + 9;
  reseal_checksum(bytes_);
  EXPECT_EQ(load_patched(), store_errc::bad_csr);
}

TEST(OracleStoreErrors, MissingFileIsIo) {
  EXPECT_EQ(load_error(tmp_path("never_written")), store_errc::io);
}

TEST(OracleStoreErrors, ErrcStringsAreDistinct) {
  const store_errc all[] = {store_errc::io,          store_errc::truncated,
                            store_errc::bad_magic,   store_errc::bad_version,
                            store_errc::bad_header,  store_errc::bad_section,
                            store_errc::bad_checksum, store_errc::bad_csr};
  for (const store_errc a : all)
    for (const store_errc b : all)
      if (a != b) {
        EXPECT_STRNE(to_string(a), to_string(b));
      }
}

// ---- concurrent-reader torture ----------------------------------------------

/// One thread's seeded request mix against a label_view, folded into a
/// digest. Pure function of (view contents, seed) — the torture test
/// asserts the digest is identical for the in-memory and mapped views and
/// across repeated concurrent runs.
u64 replay_digest(const label_view& v, u64 seed, u32 requests) {
  rng r(seed);
  u64 digest = 0xcbf29ce484222325ull;
  const auto fold = [&digest](u64 word) {
    digest ^= word;
    digest *= 0x100000001b3ull;
  };
  for (u32 i = 0; i < requests; ++i) {
    const u32 u = static_cast<u32>(r.next_below(v.n));
    const u32 w = static_cast<u32>(r.next_below(v.n));
    const u64 op = r.next_below(10);
    if (op < 6) {
      fold(v.query(u, w));
    } else if (op < 9) {
      fold(v.next_hop(u, w));
    } else {
      // Greedy route u → w along next hops; with exact labels this must
      // terminate in ≤ n hops (docs: remaining distance strictly drops).
      u32 at = u;
      u64 hops = 0;
      while (at != w && hops <= v.n) {
        const u32 nh = v.next_hop(at, w);
        if (nh == ~u32{0}) break;
        at = nh;
        ++hops;
      }
      fold(hops);
      fold(at);
    }
  }
  return digest;
}

TEST(OracleStoreTorture, EightThreadsSeedDeterministicDigests) {
  const graph g = gen::erdos_renyi_connected(192, 4.5, 7, 55);
  sim_options o;
  o.storage = result_storage::kLabels;
  const apsp_result res = hybrid_apsp_exact(g, cfg(), 55, true, o);
  const std::string path = tmp_path("torture");
  save_oracle(res.labels, path);
  mapped_oracle m = mapped_oracle::load(path);
  m.attach_topology(g);

  constexpr u32 kThreads = 8;
  constexpr u32 kRequests = 12000;
  // Expected digests: the same per-thread streams replayed sequentially
  // against the in-memory labels.
  u64 expected[kThreads];
  for (u32 t = 0; t < kThreads; ++t)
    expected[t] = replay_digest(res.labels.view(), 9000 + t, kRequests);

  for (int run = 0; run < 2; ++run) {
    u64 got[kThreads] = {};
    std::vector<std::thread> pool;
    for (u32 t = 0; t < kThreads; ++t)
      pool.emplace_back([&m, &got, t] {
        got[t] = replay_digest(m.view(), 9000 + t, kRequests);
      });
    for (auto& th : pool) th.join();
    for (u32 t = 0; t < kThreads; ++t)
      EXPECT_EQ(got[t], expected[t]) << "thread " << t << " run " << run;
  }
  std::remove(path.c_str());
}

// ---- golden file ------------------------------------------------------------

/// Hand-built labels with fully pinned contents: no algorithm, no RNG, no
/// floating point — the committed bytes depend on the serializer alone.
/// kTwoLevel so all 11 v2 sections (including the level-1 slabs and their
/// zeroed source_distance padding) are pinned by the golden bytes.
dist_labels golden_labels() {
  dist_labels lab;
  lab.n = 4;
  lab.n_s = 2;
  lab.n_s2 = 1;
  lab.h = 2;
  lab.scheme = label_scheme::kTwoLevel;
  lab.routes = false;
  lab.ball.offsets = {0, 2, 4, 6, 8};
  lab.ball.entries = {{0, 0, 0}, {3, 1, 1},   // node 0: self, node 1 at 3
                      {3, 0, 0}, {0, 1, 1},   // node 1
                      {0, 2, 2}, {5, 3, 3},   // node 2
                      {5, 2, 2}, {0, 3, 3}};  // node 3
  lab.gw_offsets = {0, 1, 2, 3, 4};
  lab.gateways = {{0, 3, 1}, {0, 0, 1}, {1, 0, 2}, {1, 5, 2}};
  lab.skeleton_nodes = {1, 2};
  lab.skel = {0};  // the 1×1 super-pair table (member: skeleton index 0)
  lab.ball1_offsets = {0, 2, 4};
  lab.ball1_entries = {{0, 0, 0}, {9, 1, 1},   // s1 = 0: self, s1 = 1 at 9
                       {9, 0, 0}, {0, 1, 1}};  // s1 = 1
  lab.gw1_offsets = {0, 1, 2};
  lab.gw1 = {{0, 0, 0}, {0, 9, 0}};  // both reach the sole super member
  lab.super_nodes = {0};
  return lab;
}

TEST(OracleStoreGolden, V1FileRejectedWithTypedBadVersion) {
  // The versioning policy, pinned: the v1 golden stays committed, and this
  // build must reject it with exactly bad_version — never reinterpret,
  // never crash, never a vaguer error from a later layer.
  const std::string v1 = std::string(HYBRID_TEST_DATA_DIR) +
                         "/golden_oracle_v1.bin";
  ASSERT_FALSE(read_file(v1).empty()) << "v1 golden fixture missing";
  EXPECT_EQ(load_error(v1), store_errc::bad_version);
}

/// Latest mtime of the serializer's sources (what the golden bytes depend
/// on), or 0 when a file cannot be statted.
std::time_t serializer_source_mtime() {
  const std::string src_root = std::string(HYBRID_TEST_DATA_DIR) + "/../..";
  std::time_t latest = 0;
  for (const char* rel : {"/src/core/oracle_store.hpp",
                          "/src/core/oracle_store.cpp"}) {
    struct stat st{};
    if (stat((src_root + rel).c_str(), &st) != 0) return 0;
    latest = std::max(latest, st.st_mtime);
  }
  return latest;
}

TEST(OracleStoreGolden, CommittedFileReadsBitExactly) {
  const std::string golden = std::string(HYBRID_TEST_DATA_DIR) +
                             "/golden_oracle_v2.bin";
  const dist_labels lab = golden_labels();
  if (std::getenv("HYBRID_REGEN_ORACLE_GOLDEN") != nullptr) {
    // Regen refuses to run from a stale build: writing the golden with a
    // binary older than the serializer sources would commit the OLD
    // format's bytes and let the format change ride in unpinned — the
    // exact blind spot this file exists to close. Fail loudly instead of
    // silently regenerating (docs/ARCHITECTURE.md §1.1, regen workflow).
    struct stat self{};
    ASSERT_EQ(stat("/proc/self/exe", &self), 0)
        << "cannot stat the test binary to prove it is fresh — rerun the "
           "regen on Linux or regenerate by hand with extreme care";
    const std::time_t src_mtime = serializer_source_mtime();
    ASSERT_NE(src_mtime, 0) << "cannot stat src/core/oracle_store.* from "
                            << HYBRID_TEST_DATA_DIR
                            << "/../.. — regen must run from a source tree";
    ASSERT_GE(self.st_mtime, src_mtime)
        << "REGEN REFUSED: this test binary is older than "
           "src/core/oracle_store.* — it would write the previous "
           "serializer's bytes as the new golden. Rebuild first:\n"
           "  cmake --build build -j --target oracle_store_test";
    save_oracle(lab, golden);
    // Post-regen verification: the file just written must load with this
    // binary's kOracleFormatVersion. A mismatch means the version constant
    // and the writer disagree — fail before the bad golden gets committed.
    const mapped_oracle check = mapped_oracle::load(golden);
    ASSERT_EQ(check.header().version, kOracleFormatVersion)
        << "REGEN PRODUCED A BAD GOLDEN: written version does not match "
           "kOracleFormatVersion; do not commit this file";
  }

  // Today's serializer must reproduce the committed bytes exactly…
  const std::string fresh = tmp_path("golden_fresh");
  save_oracle(lab, fresh);
  const std::vector<std::byte> fresh_bytes = read_file(fresh);
  const std::vector<std::byte> golden_bytes = read_file(golden);
  ASSERT_FALSE(golden_bytes.empty())
      << "golden file missing — regenerate deliberately with "
         "HYBRID_REGEN_ORACLE_GOLDEN=1 and bump kOracleFormatVersion if the "
         "format changed";
  EXPECT_EQ(fresh_bytes, golden_bytes)
      << "serialized bytes changed — bump kOracleFormatVersion and "
         "regenerate the golden file deliberately";
  std::remove(fresh.c_str());

  // …and today's loader must serve the committed file verbatim.
  const mapped_oracle m = mapped_oracle::load(golden);
  EXPECT_EQ(m.header().version, kOracleFormatVersion);
  EXPECT_EQ(m.view().n, lab.n);
  EXPECT_EQ(m.view().n_s, lab.n_s);
  EXPECT_EQ(m.view().n_s2, lab.n_s2);
  EXPECT_EQ(m.view().h, lab.h);
  for (u32 u = 0; u < lab.n; ++u)
    for (u32 v = 0; v < lab.n; ++v)
      EXPECT_EQ(m.query(u, v), lab.query(u, v)) << u << "->" << v;
}

}  // namespace
}  // namespace hybrid
