// Tests for the Appendix-A probability toolkit: bound validity against
// Monte Carlo estimates, monotonicity, and the concrete instantiations the
// proofs of Lemmas 2.2 / C.1 / D.2 rely on.
#include <gtest/gtest.h>

#include <cmath>

#include "util/probability.hpp"
#include "util/rng.hpp"

namespace hybrid {
namespace {

double monte_carlo_binomial_upper(u32 trials, u32 n, double p,
                                  double threshold, u64 seed) {
  rng r(seed);
  u32 exceed = 0;
  for (u32 t = 0; t < trials; ++t) {
    u32 x = 0;
    for (u32 i = 0; i < n; ++i) x += r.next_bool(p);
    if (x > threshold) ++exceed;
  }
  return static_cast<double>(exceed) / trials;
}

TEST(Chernoff, UpperTailDominatesMonteCarlo) {
  // X ~ Bin(200, 0.1), µ = 20; bound P(X > 2µ) = P(δ=1).
  const double bound = chernoff_upper_tail(20.0, 1.0);
  const double mc = monte_carlo_binomial_upper(20000, 200, 0.1, 40.0, 7);
  EXPECT_GE(bound, mc);
}

TEST(Chernoff, LowerTailDominatesMonteCarlo) {
  // P(X < µ/2) with µ = 20.
  const double bound = chernoff_lower_tail(20.0, 0.5);
  rng r(11);
  u32 below = 0;
  const u32 trials = 20000;
  for (u32 t = 0; t < trials; ++t) {
    u32 x = 0;
    for (u32 i = 0; i < 200; ++i) x += r.next_bool(0.1);
    if (x < 10) ++below;
  }
  EXPECT_GE(bound, static_cast<double>(below) / trials);
}

TEST(Chernoff, TailsShrinkWithMean) {
  EXPECT_GT(chernoff_upper_tail(5, 1.0), chernoff_upper_tail(50, 1.0));
  EXPECT_GT(chernoff_lower_tail(5, 0.5), chernoff_lower_tail(50, 0.5));
}

TEST(Chernoff, RejectsOutOfRangeDelta) {
  EXPECT_THROW(chernoff_upper_tail(10, 0.5), std::invalid_argument);
  EXPECT_THROW(chernoff_lower_tail(10, 1.5), std::invalid_argument);
}

TEST(UnionBound, CapsAtOne) {
  EXPECT_DOUBLE_EQ(union_bound(0.5, 10), 1.0);
  EXPECT_DOUBLE_EQ(union_bound(1e-6, 100), 1e-4);
}

TEST(SkeletonGap, MatchesClosedForm) {
  EXPECT_NEAR(skeleton_gap_miss_probability(0.1, 10),
              std::pow(0.9, 10.0), 1e-12);
  // ξ·ln n / p hops make the miss probability ≈ n^{-ξ} — the Lemma C.1
  // design rule for h.
  const u32 n = 1024;
  const double p = 1.0 / 32.0;
  const u64 h = static_cast<u64>(2.0 * (1.0 / p) * std::log(n));
  const double miss = skeleton_gap_miss_probability(p, h);
  EXPECT_LT(miss, std::pow(static_cast<double>(n), -1.8));
}

TEST(SkeletonGap, EndToEndFailureSmallAtDefaults) {
  // With the default ξ = 2, per-run skeleton failure stays far below 1 at
  // bench sizes — this is the calculation behind model_config's default.
  const u32 n = 512;
  const double p = 1.0 / std::sqrt(static_cast<double>(n));
  const u64 h = static_cast<u64>(2.0 * (1.0 / p) * std::log(n));
  // Monte-Carlo-free analytic check: (1-p)^h * n^3 << 1 needs h large; our
  // defaults give per-stretch ≈ n^{-2}, union over n³ events may exceed 1
  // analytically — the paper's ξ ≥ 8c regime. Verify monotonicity instead:
  EXPECT_LT(skeleton_failure_probability(n, p, 4 * h),
            skeleton_failure_probability(n, p, h));
  EXPECT_LT(skeleton_failure_probability(n, p, 8 * h), 1e-6);
}

TEST(ReceiveOverload, BoundDominatesSimulatedLoads) {
  // n·γ sends to uniform targets: P(one node gets > 2·γ).
  const u32 n = 256;
  const u32 gamma = 32;
  const double bound = receive_overload_probability(n, u64{n} * gamma, 1.0);
  rng r(13);
  const u32 trials = 2000;
  u32 over = 0;
  for (u32 t = 0; t < trials; ++t) {
    std::vector<u32> load(n, 0);
    for (u32 s = 0; s < n * gamma; ++s)
      ++load[r.next_below(n)];
    if (load[0] > 2 * gamma) ++over;  // fixed node: matches the per-node bound
  }
  EXPECT_GE(bound, static_cast<double>(over) / trials);
}

TEST(ReceiveOverload, SmallDeltaFallback) {
  const double p = receive_overload_probability(256, 256 * 32, 0.5);
  EXPECT_GT(p, 0.0);
  EXPECT_LT(p, 1.0);
}

}  // namespace
}  // namespace hybrid
