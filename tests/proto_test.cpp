// Tests for the LOCAL/NCC protocol substrates: flooding primitives, ruling
// sets (Lemma 2.1), clustering, aggregation (Lemma B.2), and token
// dissemination (Lemma B.1).
#include <gtest/gtest.h>

#include <algorithm>
#include <set>

#include "graph/generators.hpp"
#include "graph/shortest_paths.hpp"
#include "proto/aggregation.hpp"
#include "proto/clustering.hpp"
#include "proto/dissemination.hpp"
#include "proto/flood.hpp"
#include "proto/ruling_set.hpp"

namespace hybrid {
namespace {

model_config cfg() { return model_config{}; }

// ---- flood primitives -------------------------------------------------------

TEST(HopDiscovery, MatchesBfsWithinRadius) {
  const graph g = gen::grid(8, 8);
  hybrid_net net(g, cfg(), 1);
  const std::vector<u32> seeds = {0, 63};
  const auto known = hop_discovery(net, seeds, 5);
  const auto h0 = bfs_hops(g, 0);
  const auto h1 = bfs_hops(g, 63);
  for (u32 v = 0; v < g.num_nodes(); ++v) {
    std::set<std::pair<u32, u32>> got;
    for (const discovered_seed& d : known[v]) got.insert({d.seed, d.hop});
    if (h0[v] <= 5) {
      EXPECT_TRUE(got.count({0, h0[v]})) << v;
    } else {
      EXPECT_FALSE(got.count({0, h0[v]})) << v;
    }
    if (h1[v] <= 5) {
      EXPECT_TRUE(got.count({1, h1[v]})) << v;
    }
  }
  EXPECT_EQ(net.round(), 5u);  // fixed budget elapses fully
}

TEST(HopDiscovery, EarlyExitStillChargesBudget) {
  const graph g = gen::path(4);
  hybrid_net net(g, cfg(), 1);
  hop_discovery(net, {0}, 50);  // graph exhausted after 3 rounds
  EXPECT_EQ(net.round(), 50u);
}

TEST(LimitedBellmanFord, MatchesReference) {
  const graph g = gen::erdos_renyi_connected(80, 5.0, 7, 3);
  hybrid_net net(g, cfg(), 1);
  const std::vector<u32> sources = {0, 17, 42};
  const u32 h = 4;
  const auto got = limited_bellman_ford(net, sources, h);
  for (u32 i = 0; i < sources.size(); ++i) {
    const auto ref = limited_distance(g, sources[i], h);
    for (u32 v = 0; v < g.num_nodes(); ++v) {
      u64 mine = kInfDist;
      for (const source_distance& sd : got[v])
        if (sd.source == i) mine = sd.dist;
      EXPECT_EQ(mine, ref[v]) << "source " << i << " node " << v;
    }
  }
}

TEST(LimitedBellmanFord, ParallelModeChargesNoRounds) {
  const graph g = gen::path(32);
  hybrid_net net(g, cfg(), 1);
  limited_bellman_ford(net, {0}, 10, /*advance_rounds=*/false);
  EXPECT_EQ(net.round(), 0u);
  EXPECT_GT(net.raw_metrics().local_items, 0u);
}

TEST(FullLocalExploration, MatchesLimitedDistanceAllPairs) {
  const graph g = gen::erdos_renyi_connected(48, 4.0, 5, 9);
  hybrid_net net(g, cfg(), 1);
  const u32 h = 3;
  const auto mat = full_local_exploration(net, h, true);
  for (u32 u = 0; u < 48; u += 7) {
    const auto ref = limited_distance(g, u, h);
    EXPECT_EQ(mat[u], ref) << "row " << u;
  }
}

TEST(TableFlood, ReachesExactlyTheRadius) {
  const graph g = gen::path(20);
  hybrid_net net(g, cfg(), 1);
  const auto holds = table_flood(net, {0, 19}, {100, 100}, 4);
  for (u32 v = 0; v < 20; ++v) {
    const bool has0 =
        std::find(holds[v].begin(), holds[v].end(), 0u) != holds[v].end();
    const bool has1 =
        std::find(holds[v].begin(), holds[v].end(), 1u) != holds[v].end();
    EXPECT_EQ(has0, v <= 4) << v;
    EXPECT_EQ(has1, v >= 15) << v;
  }
  // Traffic: each table crossing an edge charges its word size.
  EXPECT_GE(net.raw_metrics().local_items, 2u * 4 * 100);
}

TEST(TruncatedEccentricity, PathValues) {
  const graph g = gen::path(11);
  hybrid_net net(g, cfg(), 1);
  const auto ecc = truncated_eccentricity(net, 100);
  EXPECT_EQ(ecc[0], 10u);
  EXPECT_EQ(ecc[5], 5u);
  EXPECT_EQ(ecc[10], 10u);
}

TEST(TruncatedEccentricity, TruncationCaps) {
  const graph g = gen::path(11);
  hybrid_net net(g, cfg(), 1);
  const auto ecc = truncated_eccentricity(net, 3);
  EXPECT_EQ(ecc[0], 3u);
  EXPECT_EQ(ecc[5], 3u);
}

// ---- ruling set (Lemma 2.1) -------------------------------------------------

class RulingSetProperty : public ::testing::TestWithParam<std::tuple<int, int>> {
};

TEST_P(RulingSetProperty, IndependenceAndDomination) {
  const auto [graph_kind, mu] = GetParam();
  graph g;
  switch (graph_kind) {
    case 0: g = gen::path(200, 1, 5); break;
    case 1: g = gen::grid(14, 14); break;
    case 2: g = gen::erdos_renyi_connected(200, 5.0, 1, 5); break;
    default: g = gen::balanced_tree(200, 3); break;
  }
  hybrid_net net(g, cfg(), 77);
  const ruling_set_result rs =
      compute_ruling_set(net, static_cast<u32>(mu));
  ASSERT_FALSE(rs.rulers.empty());
  EXPECT_EQ(rs.alpha, 2u * mu + 1);

  // Independence: pairwise hop distance ≥ α.
  for (u32 r : rs.rulers) {
    const auto hops = bfs_hops(g, r);
    for (u32 r2 : rs.rulers) {
      if (r2 != r) {
        EXPECT_GE(hops[r2], rs.alpha) << r << " vs " << r2;
      }
    }
  }
  // Domination: every node within β hops of some ruler.
  std::vector<u32> best(g.num_nodes(), ~u32{0});
  for (u32 r : rs.rulers) {
    const auto hops = bfs_hops(g, r);
    for (u32 v = 0; v < g.num_nodes(); ++v)
      best[v] = std::min(best[v], hops[v]);
  }
  for (u32 v = 0; v < g.num_nodes(); ++v)
    EXPECT_LE(best[v], rs.beta) << "node " << v;
}

INSTANTIATE_TEST_SUITE_P(
    Graphs, RulingSetProperty,
    ::testing::Combine(::testing::Values(0, 1, 2, 3),
                       ::testing::Values(1, 2, 4)));

TEST(RulingSet, RoundCostScalesWithMu) {
  const graph g = gen::path(256);
  u64 rounds_mu2, rounds_mu8;
  {
    hybrid_net net(g, cfg(), 1);
    compute_ruling_set(net, 2);
    rounds_mu2 = net.round();
  }
  {
    hybrid_net net(g, cfg(), 1);
    compute_ruling_set(net, 8);
    rounds_mu8 = net.round();
  }
  EXPECT_EQ(rounds_mu8, 4 * rounds_mu2);  // 2µ rounds per ID level
}

// ---- clustering -------------------------------------------------------------

TEST(Clustering, PartitionCoversAndRespectsRadius) {
  const graph g = gen::grid(16, 16);
  hybrid_net net(g, cfg(), 5);
  const ruling_set_result rs = compute_ruling_set(net, 3);
  const cluster_decomposition cd = compute_clusters(net, rs);
  u32 covered = 0;
  for (u32 c = 0; c < cd.members.size(); ++c) covered += cd.members[c].size();
  EXPECT_EQ(covered, g.num_nodes());
  for (u32 v = 0; v < g.num_nodes(); ++v) {
    ASSERT_NE(cd.cluster_of[v], ~u32{0});
    EXPECT_LE(cd.hops_to_ruler[v], cd.beta);
    // The ruler of v's cluster is indeed a closest ruler.
    const auto hops = bfs_hops(g, v);
    u32 closest = ~u32{0};
    for (u32 r : rs.rulers) closest = std::min(closest, hops[r]);
    EXPECT_EQ(hops[cd.rulers[cd.cluster_of[v]]], closest) << v;
  }
}

TEST(Clustering, ClustersAreConnected) {
  // Voronoi cells under (hop, ruler-ID) tie-breaking must induce connected
  // subgraphs — required for intra-cluster flooding.
  const graph g = gen::erdos_renyi_connected(300, 4.0, 1, 13);
  hybrid_net net(g, cfg(), 13);
  const ruling_set_result rs = compute_ruling_set(net, 2);
  const cluster_decomposition cd = compute_clusters(net, rs);
  for (u32 c = 0; c < cd.members.size(); ++c) {
    if (cd.members[c].empty()) continue;
    std::set<u32> cluster(cd.members[c].begin(), cd.members[c].end());
    std::set<u32> seen;
    std::vector<u32> stack = {cd.members[c][0]};
    seen.insert(cd.members[c][0]);
    while (!stack.empty()) {
      const u32 v = stack.back();
      stack.pop_back();
      for (const edge& e : g.neighbors(v))
        if (cluster.count(e.to) && !seen.count(e.to)) {
          seen.insert(e.to);
          stack.push_back(e.to);
        }
    }
    EXPECT_EQ(seen.size(), cluster.size()) << "cluster " << c;
  }
}

TEST(ClusterFlood, StaysInsideCluster) {
  const graph g = gen::path(40);
  hybrid_net net(g, cfg(), 3);
  const ruling_set_result rs = compute_ruling_set(net, 2);
  const cluster_decomposition cd = compute_clusters(net, rs);
  ASSERT_GE(cd.members.size(), 2u) << "path should split into clusters";
  std::vector<std::vector<item128>> init(g.num_nodes());
  const u32 origin = cd.members[0][0];
  init[origin].push_back({123, 456});
  const auto heard = cluster_flood(net, cd, std::move(init), 2 * cd.beta + 1);
  for (u32 v = 0; v < g.num_nodes(); ++v) {
    const bool got = !heard[v].empty();
    if (cd.cluster_of[v] == cd.cluster_of[origin])
      EXPECT_TRUE(got) << v;  // full cluster reached within 2β+1 rounds
    else
      EXPECT_FALSE(got) << v;
  }
}

// ---- aggregation (Lemma B.2) ------------------------------------------------

class AggregationProperty : public ::testing::TestWithParam<int> {};

TEST_P(AggregationProperty, AllOpsAllSizes) {
  const u32 n = static_cast<u32>(GetParam());
  const graph g = gen::path(n);
  hybrid_net net(g, cfg(), 9);
  std::vector<u64> vals(n);
  rng r(n);
  u64 mx = 0, mn = ~u64{0}, sum = 0;
  for (u32 v = 0; v < n; ++v) {
    vals[v] = r.next_below(1000);
    mx = std::max(mx, vals[v]);
    mn = std::min(mn, vals[v]);
    sum += vals[v];
  }
  EXPECT_EQ(global_aggregate(net, agg_op::max, vals), mx);
  EXPECT_EQ(global_aggregate(net, agg_op::min, vals), mn);
  EXPECT_EQ(global_aggregate(net, agg_op::sum, vals), sum);
  EXPECT_EQ(global_aggregate(net, agg_op::logical_and, vals),
            mn > 0 ? 1u : 0u);
}

INSTANTIATE_TEST_SUITE_P(Sizes, AggregationProperty,
                         ::testing::Values(2, 3, 7, 64, 100, 257));

TEST(Aggregation, LogarithmicRounds) {
  const graph g = gen::path(1024);
  hybrid_net net(g, cfg(), 2);
  std::vector<u64> vals(1024, 1);
  global_aggregate(net, agg_op::max, vals);
  EXPECT_LE(net.round(), 2u * 11 + 2);  // 2·depth + slack (Lemma B.2)
}

TEST(Aggregation, StaysWithinSendCap) {
  const graph g = gen::path(300);
  hybrid_net net(g, cfg(), 2);
  global_aggregate(net, agg_op::sum, std::vector<u64>(300, 7));
  EXPECT_LE(net.raw_metrics().max_global_recv_per_round, 3u);
}

// ---- token dissemination (Lemma B.1) ---------------------------------------

class DisseminationProperty
    : public ::testing::TestWithParam<std::tuple<int, int>> {};

TEST_P(DisseminationProperty, EveryNodeLearnsEverything) {
  const auto [kind, tokens_total] = GetParam();
  graph g;
  switch (kind) {
    case 0: g = gen::erdos_renyi_connected(128, 5.0, 1, 21); break;
    case 1: g = gen::grid(12, 11); break;
    default: g = gen::path(128); break;
  }
  hybrid_net net(g, cfg(), 31);
  rng r(55);
  std::vector<std::vector<token2>> initial(g.num_nodes());
  for (int t = 0; t < tokens_total; ++t) {
    const u32 owner = static_cast<u32>(r.next_below(g.num_nodes()));
    initial[owner].push_back(
        {static_cast<u64>(t) << 8, static_cast<u64>(0xBEEF + t)});
  }
  const dissemination_result res = disseminate(net, initial);
  EXPECT_EQ(res.tokens.size(), static_cast<std::size_t>(tokens_total));
  // Spot-check token content survived.
  std::set<u64> payloads;
  for (const token2& t : res.tokens) payloads.insert(t.b);
  for (int t = 0; t < tokens_total; ++t)
    EXPECT_TRUE(payloads.count(0xBEEF + t));
}

INSTANTIATE_TEST_SUITE_P(
    Cases, DisseminationProperty,
    ::testing::Combine(::testing::Values(0, 1, 2),
                       ::testing::Values(1, 32, 256)));

TEST(Dissemination, EmptyInstanceCostsOnlyCountAggregation) {
  const graph g = gen::path(64);
  hybrid_net net(g, cfg(), 1);
  const auto res = disseminate(net, std::vector<std::vector<token2>>(64));
  EXPECT_TRUE(res.tokens.empty());
  EXPECT_LE(net.round(), 16u);
}

TEST(Dissemination, ReceiveLoadStaysLogarithmic) {
  const graph g = gen::erdos_renyi_connected(256, 5.0, 1, 3);
  hybrid_net net(g, cfg(), 8);
  std::vector<std::vector<token2>> initial(256);
  rng r(4);
  for (int t = 0; t < 300; ++t)
    initial[r.next_below(256)].push_back({static_cast<u64>(t), 1});
  disseminate(net, initial);
  // Lemma D.2-style bound: a small multiple of γ = 4·log2(n).
  EXPECT_LE(net.raw_metrics().max_global_recv_per_round,
            4 * net.global_cap());
}

TEST(Dissemination, SqrtKScaling) {
  // Rounds should grow far slower than k (≈ √k up to polylogs).
  const graph g = gen::erdos_renyi_connected(128, 5.0, 1, 17);
  std::vector<u64> rounds;
  for (u32 k : {64u, 1024u}) {
    hybrid_net net(g, cfg(), 19);
    rng r(6);
    std::vector<std::vector<token2>> initial(128);
    for (u32 t = 0; t < k; ++t)
      initial[r.next_below(128)].push_back({t, t});
    disseminate(net, initial);
    rounds.push_back(net.round());
  }
  // k grew 16×; Õ(√k) predicts ≈ 4×; require well under linear.
  EXPECT_LT(rounds[1], rounds[0] * 8);
}

}  // namespace
}  // namespace hybrid
