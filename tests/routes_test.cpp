// Property tests for next-hop routing (the IP-routing application of
// Theorem 1.1, Section 1) and the first-hop tracking in the flood
// primitives.
//
// The Section 1 invariant, tested as a property over every pair: greedy
// forwarding that consults only the current node's next_hop entry reaches
// the destination, realizes exactly query(u, v) total weight, and takes at
// most query(u, v) hops — with integer weights ≥ 1 the remaining distance
// strictly decreases every hop, so dist is itself a hop budget. The same
// walk is checked against the label oracle and the materialized matrices
// (they are asserted bit-identical elsewhere; here each drives its own
// forwarding pass).
#include <gtest/gtest.h>

#include "core/apsp.hpp"
#include "graph/generators.hpp"
#include "graph/shortest_paths.hpp"
#include "proto/flood.hpp"

namespace hybrid {
namespace {

model_config cfg() { return model_config{}; }

u64 edge_weight(const graph& g, u32 a, u32 b) {
  for (const edge& e : g.neighbors(a))
    if (e.to == b) return e.weight;
  return kInfDist;
}

struct walk {
  bool reached = false;
  u64 weight = 0;
  u64 hops = 0;
};

/// Forward a packet using only per-node tables; `hop_of(cur)` is the
/// current node's routing-table lookup, `budget` the maximum admissible
/// hop count (the property under test: budget = d(u, v) suffices).
template <class HopFn>
walk route(const graph& g, u32 src, u32 dst, u64 budget, HopFn hop_of) {
  walk w;
  u32 cur = src;
  while (cur != dst) {
    if (w.hops == budget) return w;  // property violated: too many hops
    const u32 nh = hop_of(cur);
    if (nh == ~u32{0}) return w;
    const u64 ew = edge_weight(g, cur, nh);
    if (ew == kInfDist) return w;  // next hop must be a neighbor
    w.weight += ew;
    ++w.hops;
    cur = nh;
  }
  w.reached = true;
  return w;
}

class RoutingTables : public ::testing::TestWithParam<std::tuple<int, u64>> {};

TEST_P(RoutingTables, GreedyForwardingRealizesQueryInAtMostDistHops) {
  const auto [kind, seed] = GetParam();
  graph g;
  switch (kind) {
    case 0: g = gen::erdos_renyi_connected(96, 5.0, 9, seed); break;
    case 1: g = gen::grid(10, 10, 7, seed); break;
    case 2: g = gen::path(96, 9, seed); break;
    default: g = gen::barbell(16, 30, 5, seed); break;
  }
  const apsp_result res = hybrid_apsp_exact(g, cfg(), seed, true);
  const u32 n = g.num_nodes();
  ASSERT_EQ(res.next_hop.size(), n);
  ASSERT_TRUE(res.labels.routes);
  for (u32 u = 0; u < n; ++u) {
    EXPECT_EQ(res.next_hop[u][u], u);
    EXPECT_EQ(res.labels.next_hop(u, u), u);
    for (u32 v = 0; v < n; ++v) {
      if (u == v) continue;
      const u64 d = res.labels.query(u, v);
      ASSERT_EQ(d, res.dist[u][v]);
      // Oracle-driven walk: every step consults labels.next_hop only.
      const walk via_labels = route(
          g, u, v, d, [&](u32 cur) { return res.labels.next_hop(cur, v); });
      ASSERT_TRUE(via_labels.reached) << u << "->" << v;
      ASSERT_EQ(via_labels.weight, d) << u << "->" << v;
      ASSERT_LE(via_labels.hops, d) << u << "->" << v;
      // Materialized-table walk realizes the same property.
      const walk via_matrix =
          route(g, u, v, d, [&](u32 cur) { return res.next_hop[cur][v]; });
      ASSERT_TRUE(via_matrix.reached) << u << "->" << v;
      ASSERT_EQ(via_matrix.weight, d) << u << "->" << v;
      ASSERT_LE(via_matrix.hops, d) << u << "->" << v;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Graphs, RoutingTables,
                         ::testing::Combine(::testing::Values(0, 1, 2, 3),
                                            ::testing::Values(1u, 2u)));

TEST(RoutingTables, PropertyHoldsInLabelOnlyStorage) {
  // The oracle alone (no materialized matrices) satisfies the forwarding
  // property — the n = 10⁵ regime's routing story in miniature.
  sim_options o;
  o.storage = result_storage::kLabels;
  const graph g = gen::random_geometric(120, 6.5, 8, 17);
  const apsp_result res = hybrid_apsp_exact(g, cfg(), 17, true, o);
  ASSERT_FALSE(res.materialized());
  rng r(99);
  for (u32 q = 0; q < 400; ++q) {
    const u32 u = static_cast<u32>(r.next_below(120));
    const u32 v = static_cast<u32>(r.next_below(120));
    if (u == v) continue;
    const u64 d = res.labels.query(u, v);
    const walk got = route(
        g, u, v, d, [&](u32 cur) { return res.labels.next_hop(cur, v); });
    ASSERT_TRUE(got.reached) << u << "->" << v;
    ASSERT_EQ(got.weight, d);
    ASSERT_LE(got.hops, d);
  }
}

TEST(RoutingTables, OffByDefault) {
  const graph g = gen::path(32);
  const apsp_result res = hybrid_apsp_exact(g, cfg(), 1);
  EXPECT_TRUE(res.next_hop.empty());
  EXPECT_FALSE(res.labels.routes);
}

TEST(RoutingTables, NextHopIsAlwaysANeighbor) {
  const graph g = gen::erdos_renyi_connected(64, 4.0, 5, 3);
  const apsp_result res = hybrid_apsp_exact(g, cfg(), 3, true);
  for (u32 u = 0; u < 64; ++u)
    for (u32 v = 0; v < 64; ++v) {
      if (u == v) continue;
      EXPECT_NE(edge_weight(g, u, res.next_hop[u][v]), kInfDist)
          << u << "->" << v;
      EXPECT_EQ(res.labels.next_hop(u, v), res.next_hop[u][v]);
    }
}

TEST(RoutingTables, ChargesOneExtraRoundAndTraffic) {
  const graph g = gen::grid(8, 8, 3, 5);
  const apsp_result plain = hybrid_apsp_exact(g, cfg(), 7, false);
  const apsp_result routed = hybrid_apsp_exact(g, cfg(), 7, true);
  EXPECT_EQ(routed.metrics.rounds, plain.metrics.rounds + 1);
  EXPECT_GT(routed.metrics.local_items, plain.metrics.local_items);
  EXPECT_EQ(routed.dist, plain.dist);  // distances unaffected
}

// ---- first-hop tracking in the primitives ----------------------------------

TEST(FirstHop, LimitedBellmanFordViaPointsBackward) {
  const graph g = gen::path(6);
  hybrid_net net(g, cfg(), 1);
  const auto got = limited_bellman_ford(net, {0}, 5);
  for (u32 v = 1; v < 6; ++v) {
    ASSERT_EQ(got[v].size(), 1u);
    EXPECT_EQ(got[v][0].via, v - 1) << v;  // path goes back toward node 0
  }
  EXPECT_EQ(got[0][0].via, 0u);  // source points to itself
}

TEST(FirstHop, FullExplorationMatrixConsistent) {
  const graph g = gen::erdos_renyi_connected(48, 4.0, 6, 9);
  hybrid_net net(g, cfg(), 1);
  std::vector<std::vector<u32>> hop;
  const auto dist = full_local_exploration(net, 6, true, &hop);
  for (u32 u = 0; u < 48; ++u) {
    EXPECT_EQ(hop[u][u], u);
    for (u32 v = 0; v < 48; ++v) {
      if (u == v || dist[u][v] == kInfDist) continue;
      const u32 w = hop[u][v];
      ASSERT_NE(w, ~u32{0}) << u << "->" << v;
      // d(u,v) = w(u, w) + d_{h-1}(w, v) ≥ w(u,w) + d_h(w,v); the first-hop
      // edge weight is consistent with a shortest ≤h-hop walk.
      EXPECT_LE(edge_weight(g, u, w), dist[u][v]);
    }
  }
}

}  // namespace
}  // namespace hybrid
