// Tests for next-hop routing tables (the IP-routing application of
// Theorem 1.1) and the first-hop tracking in the flood primitives.
#include <gtest/gtest.h>

#include "core/apsp.hpp"
#include "graph/generators.hpp"
#include "graph/shortest_paths.hpp"
#include "proto/flood.hpp"

namespace hybrid {
namespace {

model_config cfg() { return model_config{}; }

u64 edge_weight(const graph& g, u32 a, u32 b) {
  for (const edge& e : g.neighbors(a))
    if (e.to == b) return e.weight;
  return kInfDist;
}

/// Forward a packet using only per-node tables; returns (reached, weight).
std::pair<bool, u64> route(const graph& g, const apsp_result& res, u32 src,
                           u32 dst) {
  u32 cur = src;
  u64 w = 0;
  u32 hops = 0;
  while (cur != dst) {
    if (hops++ > g.num_nodes()) return {false, w};  // loop guard
    const u32 nh = res.next_hop[cur][dst];
    if (nh == ~u32{0}) return {false, w};
    const u64 ew = edge_weight(g, cur, nh);
    if (ew == kInfDist) return {false, w};  // next hop must be a neighbor
    w += ew;
    cur = nh;
  }
  return {true, w};
}

class RoutingTables : public ::testing::TestWithParam<std::tuple<int, u64>> {};

TEST_P(RoutingTables, GreedyForwardingRealizesExactDistances) {
  const auto [kind, seed] = GetParam();
  graph g;
  switch (kind) {
    case 0: g = gen::erdos_renyi_connected(96, 5.0, 9, seed); break;
    case 1: g = gen::grid(10, 10, 7, seed); break;
    case 2: g = gen::path(96, 9, seed); break;
    default: g = gen::barbell(16, 30, 5, seed); break;
  }
  const apsp_result res = hybrid_apsp_exact(g, cfg(), seed, true);
  const u32 n = g.num_nodes();
  ASSERT_EQ(res.next_hop.size(), n);
  for (u32 u = 0; u < n; ++u) {
    EXPECT_EQ(res.next_hop[u][u], u);
    for (u32 v = 0; v < n; ++v) {
      const auto [reached, w] = route(g, res, u, v);
      ASSERT_TRUE(reached) << u << "->" << v;
      ASSERT_EQ(w, res.dist[u][v]) << u << "->" << v;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Graphs, RoutingTables,
                         ::testing::Combine(::testing::Values(0, 1, 2, 3),
                                            ::testing::Values(1u, 2u)));

TEST(RoutingTables, OffByDefault) {
  const graph g = gen::path(32);
  const apsp_result res = hybrid_apsp_exact(g, cfg(), 1);
  EXPECT_TRUE(res.next_hop.empty());
}

TEST(RoutingTables, NextHopIsAlwaysANeighbor) {
  const graph g = gen::erdos_renyi_connected(64, 4.0, 5, 3);
  const apsp_result res = hybrid_apsp_exact(g, cfg(), 3, true);
  for (u32 u = 0; u < 64; ++u)
    for (u32 v = 0; v < 64; ++v) {
      if (u == v) continue;
      EXPECT_NE(edge_weight(g, u, res.next_hop[u][v]), kInfDist)
          << u << "->" << v;
    }
}

TEST(RoutingTables, ChargesOneExtraRoundAndTraffic) {
  const graph g = gen::grid(8, 8, 3, 5);
  const apsp_result plain = hybrid_apsp_exact(g, cfg(), 7, false);
  const apsp_result routed = hybrid_apsp_exact(g, cfg(), 7, true);
  EXPECT_EQ(routed.metrics.rounds, plain.metrics.rounds + 1);
  EXPECT_GT(routed.metrics.local_items, plain.metrics.local_items);
  EXPECT_EQ(routed.dist, plain.dist);  // distances unaffected
}

// ---- first-hop tracking in the primitives ----------------------------------

TEST(FirstHop, LimitedBellmanFordViaPointsBackward) {
  const graph g = gen::path(6);
  hybrid_net net(g, cfg(), 1);
  const auto got = limited_bellman_ford(net, {0}, 5);
  for (u32 v = 1; v < 6; ++v) {
    ASSERT_EQ(got[v].size(), 1u);
    EXPECT_EQ(got[v][0].via, v - 1) << v;  // path goes back toward node 0
  }
  EXPECT_EQ(got[0][0].via, 0u);  // source points to itself
}

TEST(FirstHop, FullExplorationMatrixConsistent) {
  const graph g = gen::erdos_renyi_connected(48, 4.0, 6, 9);
  hybrid_net net(g, cfg(), 1);
  std::vector<std::vector<u32>> hop;
  const auto dist = full_local_exploration(net, 6, true, &hop);
  for (u32 u = 0; u < 48; ++u) {
    EXPECT_EQ(hop[u][u], u);
    for (u32 v = 0; v < 48; ++v) {
      if (u == v || dist[u][v] == kInfDist) continue;
      const u32 w = hop[u][v];
      ASSERT_NE(w, ~u32{0}) << u << "->" << v;
      // d(u,v) = w(u, w) + d_{h-1}(w, v) ≥ w(u,w) + d_h(w,v); the first-hop
      // edge weight is consistent with a shortest ≤h-hop walk.
      EXPECT_LE(edge_weight(g, u, w), dist[u][v]);
    }
  }
}

}  // namespace
}  // namespace hybrid
