// Tests for helper sets (Definition 2.1 / Lemma 2.2) and token routing
// (Theorem 2.2) — correctness, load bounds, and the Lemma D.2 receive cap.
#include <gtest/gtest.h>

#include <algorithm>
#include <map>
#include <set>
#include <tuple>

#include "graph/generators.hpp"
#include "graph/shortest_paths.hpp"
#include "proto/helper_sets.hpp"
#include "proto/token_routing.hpp"

namespace hybrid {
namespace {

model_config cfg() { return model_config{}; }

std::vector<u32> sample_set(u32 n, double p, u64 seed) {
  rng r(seed);
  std::vector<u32> w;
  for (u32 v = 0; v < n; ++v)
    if (r.next_bool(p)) w.push_back(v);
  if (w.empty()) w.push_back(0);
  return w;
}

// ---- helper sets ------------------------------------------------------------

TEST(HelperMu, FormulaFromAlgorithm2) {
  EXPECT_EQ(helper_mu(100, 1.0), 1u);    // 1/p = 1 caps µ
  EXPECT_EQ(helper_mu(100, 0.1), 10u);   // √k = 10 caps µ
  EXPECT_EQ(helper_mu(4, 0.01), 2u);     // √k = 2
  EXPECT_EQ(helper_mu(0, 0.5), 1u);      // degenerate: at least 1
}

TEST(HelperSets, TrivialMuSkipsMachinery) {
  const graph g = gen::grid(8, 8);
  hybrid_net net(g, cfg(), 1);
  const std::vector<u32> w = {3, 17, 40};
  const helper_family fam = compute_helpers(net, w, 1);
  EXPECT_TRUE(fam.trivial());
  EXPECT_EQ(net.round(), 0u);
  for (u32 i = 0; i < w.size(); ++i)
    EXPECT_EQ(fam.helpers_of[i], std::vector<u32>{w[i]});
}

class HelperSetProperty : public ::testing::TestWithParam<std::tuple<int, u64>> {
};

TEST_P(HelperSetProperty, Definition21Invariants) {
  const auto [kind, seed] = GetParam();
  graph g;
  switch (kind) {
    case 0: g = gen::erdos_renyi_connected(256, 5.0, 1, seed); break;
    case 1: g = gen::grid(16, 16); break;
    default: g = gen::path(256); break;
  }
  const u32 n = g.num_nodes();
  hybrid_net net(g, cfg(), seed);
  const double p = 1.0 / 16.0;  // W sampled at rate p
  const std::vector<u32> w = sample_set(n, p, seed * 7 + 1);
  const u32 mu = helper_mu(/*k=*/n / 4, p);  // µ = min(√k, 1/p) = 8
  const helper_family fam = compute_helpers(net, w, mu);

  // (1) size: every W member has helpers; w.h.p. at least µ of them
  // (we assert the guaranteed ≥1 plus the statistical bound µ/2 to keep
  // fixed-seed tests stable).
  for (u32 i = 0; i < w.size(); ++i) {
    ASSERT_GE(fam.helpers_of[i].size(), 1u);
    EXPECT_GE(fam.helpers_of[i].size(), mu / 2) << "w index " << i;
    EXPECT_TRUE(std::binary_search(fam.helpers_of[i].begin(),
                                   fam.helpers_of[i].end(), w[i]))
        << "w must belong to its own helper set";
  }
  // (2) locality: helpers within Õ(µ) hops (the cluster bound 2β).
  for (u32 i = 0; i < w.size(); ++i) {
    const auto hops = bfs_hops(g, w[i]);
    for (u32 x : fam.helpers_of[i])
      EXPECT_LE(hops[x], 2 * fam.clusters.beta) << "helper " << x;
  }
  // (3) membership: no node helps more than Õ(1) W-members.
  const u32 logn = id_bits(n);
  for (u32 v = 0; v < n; ++v)
    EXPECT_LE(fam.helps[v].size(), 6u * logn) << "node " << v;
  // Consistency of the two views.
  for (u32 i = 0; i < w.size(); ++i)
    for (u32 x : fam.helpers_of[i]) {
      const auto& hs = fam.helps[x];
      EXPECT_TRUE(std::find(hs.begin(), hs.end(), i) != hs.end());
    }
}

INSTANTIATE_TEST_SUITE_P(Graphs, HelperSetProperty,
                         ::testing::Combine(::testing::Values(0, 1, 2),
                                            ::testing::Values(1u, 2u, 3u)));

TEST(HelperSets, RoundCostScalesWithMu) {
  const graph g = gen::path(256);
  const std::vector<u32> w = sample_set(256, 0.1, 5);
  u64 r4, r8;
  {
    hybrid_net net(g, cfg(), 1);
    compute_helpers(net, w, 4);
    r4 = net.round();
  }
  {
    hybrid_net net(g, cfg(), 1);
    compute_helpers(net, w, 8);
    r8 = net.round();
  }
  EXPECT_GT(r8, r4);
  EXPECT_LE(r8, 3 * r4);  // linear in µ up to constants
}

// ---- token routing ----------------------------------------------------------

struct routing_fixture {
  graph g;
  routing_spec spec;
  std::vector<std::vector<routed_token>> batch;
  std::map<std::pair<u32, u32>, u64> expected;  // (sender, receiver) → payload
};

routing_fixture make_fixture(u32 n, double p_s, double p_r, u32 tokens_per_pair,
                             u64 seed, int graph_kind = 0) {
  routing_fixture f;
  switch (graph_kind) {
    case 0: f.g = gen::erdos_renyi_connected(n, 5.0, 1, seed); break;
    case 1: f.g = gen::grid(n / 16, 16); break;
    default: f.g = gen::path(n); break;
  }
  f.spec.senders = sample_set(f.g.num_nodes(), p_s, seed + 1);
  f.spec.receivers = sample_set(f.g.num_nodes(), p_r, seed + 2);
  f.spec.p_s = p_s;
  f.spec.p_r = p_r;
  f.spec.k_s = f.spec.receivers.size() * tokens_per_pair;
  f.spec.k_r = f.spec.senders.size() * tokens_per_pair;
  f.batch.resize(f.spec.senders.size());
  for (u32 i = 0; i < f.spec.senders.size(); ++i)
    for (u32 j = 0; j < f.spec.receivers.size(); ++j)
      for (u32 t = 0; t < tokens_per_pair; ++t) {
        const u64 payload =
            (static_cast<u64>(i) << 40) | (static_cast<u64>(j) << 16) | t;
        f.batch[i].push_back({f.spec.senders[i], f.spec.receivers[j], t,
                              payload});
        if (t == 0)
          f.expected[{f.spec.senders[i], f.spec.receivers[j]}] = payload;
      }
  return f;
}

void verify_delivery(const routing_fixture& f,
                     const std::vector<std::vector<routed_token>>& got) {
  ASSERT_EQ(got.size(), f.spec.receivers.size());
  u64 total_expected = 0;
  for (const auto& b : f.batch) total_expected += b.size();
  u64 total_got = 0;
  for (u32 ri = 0; ri < got.size(); ++ri) {
    for (const routed_token& t : got[ri]) {
      EXPECT_EQ(t.receiver, f.spec.receivers[ri]);
      if (t.index == 0) {
        auto it = f.expected.find({t.sender, t.receiver});
        ASSERT_NE(it, f.expected.end());
        EXPECT_EQ(t.payload, it->second) << t.sender << "->" << t.receiver;
      }
      ++total_got;
    }
  }
  EXPECT_EQ(total_got, total_expected);
}

class TokenRoutingProperty
    : public ::testing::TestWithParam<std::tuple<int, u64>> {};

TEST_P(TokenRoutingProperty, AllTokensDeliveredIntact) {
  const auto [kind, seed] = GetParam();
  routing_fixture f = make_fixture(256, 1.0 / 8, 1.0 / 8, 1, seed, kind);
  hybrid_net net(f.g, cfg(), seed);
  const auto got = run_token_routing(net, f.spec, f.batch);
  verify_delivery(f, got);
  // Lemma D.2: receive load O(log n) — a small multiple of γ.
  EXPECT_LE(net.raw_metrics().max_global_recv_per_round,
            4 * net.global_cap());
}

INSTANTIATE_TEST_SUITE_P(Cases, TokenRoutingProperty,
                         ::testing::Combine(::testing::Values(0, 1, 2),
                                            ::testing::Values(11u, 12u, 13u)));

TEST(TokenRouting, TrivialSenderSideAllNodes) {
  // The APSP shape: S = V (p_s = 1 ⇒ µ_s = 1), R small.
  routing_fixture f = make_fixture(128, 1.0, 1.0 / 16, 1, 3);
  hybrid_net net(f.g, cfg(), 3);
  const auto got = run_token_routing(net, f.spec, f.batch);
  verify_delivery(f, got);
}

TEST(TokenRouting, MultipleTokensPerPair) {
  routing_fixture f = make_fixture(128, 1.0 / 8, 1.0 / 8, 3, 5);
  hybrid_net net(f.g, cfg(), 5);
  const auto got = run_token_routing(net, f.spec, f.batch);
  verify_delivery(f, got);
}

TEST(TokenRouting, SelfTokensDeliveredLocally) {
  const graph g = gen::path(32);
  routing_spec spec;
  spec.senders = {5};
  spec.receivers = {5, 9};
  spec.k_s = 2;
  spec.k_r = 2;
  std::vector<std::vector<routed_token>> batch(1);
  batch[0].push_back({5, 5, 0, 111});
  batch[0].push_back({5, 9, 0, 222});
  hybrid_net net(g, cfg(), 1);
  const auto got = run_token_routing(net, spec, batch);
  ASSERT_EQ(got[0].size(), 1u);
  EXPECT_EQ(got[0][0].payload, 111u);
  ASSERT_EQ(got[1].size(), 1u);
  EXPECT_EQ(got[1][0].payload, 222u);
}

TEST(TokenRouting, EmptyBatchIsFree) {
  const graph g = gen::path(32);
  routing_spec spec;
  spec.senders = {1};
  spec.receivers = {2};
  hybrid_net net(g, cfg(), 1);
  routing_context ctx = build_routing_context(net, spec);
  const u64 setup = net.round();
  const auto got =
      route_tokens(net, ctx, std::vector<std::vector<routed_token>>(1));
  EXPECT_EQ(net.round(), setup);
  EXPECT_TRUE(got[0].empty());
}

TEST(TokenRouting, ContextReuseAcrossBatches) {
  // The clique-embedding pattern: one context, many batches.
  routing_fixture f = make_fixture(128, 1.0 / 8, 1.0 / 8, 1, 9);
  hybrid_net net(f.g, cfg(), 9);
  routing_context ctx = build_routing_context(net, f.spec);
  for (int round = 0; round < 3; ++round) {
    auto batch = f.batch;
    for (auto& tokens : batch)
      for (auto& t : tokens) t.index = round;  // fresh labels per batch
    const auto got = route_tokens(net, ctx, batch);
    u64 total = 0;
    for (const auto& d : got) total += d.size();
    u64 expected = 0;
    for (const auto& b : f.batch) expected += b.size();
    EXPECT_EQ(total, expected) << "batch " << round;
  }
}

TEST(TokenRouting, RejectsForeignTokens) {
  const graph g = gen::path(16);
  routing_spec spec;
  spec.senders = {1};
  spec.receivers = {2};
  spec.k_s = 1;
  spec.k_r = 1;
  std::vector<std::vector<routed_token>> batch(1);
  batch[0].push_back({3, 2, 0, 1});  // sender mismatch
  hybrid_net net(g, cfg(), 1);
  EXPECT_THROW(run_token_routing(net, spec, batch), std::invalid_argument);
}

TEST(TokenRouting, RejectsUnknownReceiver) {
  const graph g = gen::path(16);
  routing_spec spec;
  spec.senders = {1};
  spec.receivers = {2};
  spec.k_s = 1;
  spec.k_r = 1;
  std::vector<std::vector<routed_token>> batch(1);
  batch[0].push_back({1, 7, 0, 1});  // 7 is not a receiver
  hybrid_net net(g, cfg(), 1);
  EXPECT_THROW(run_token_routing(net, spec, batch), std::invalid_argument);
}

TEST(TokenRouting, RoundsScaleWithLoadNotTokens) {
  // Theorem 2.2: K/n + √k_S + √k_R — doubling tokens-per-pair must not
  // double the rounds once µ absorbs the load.
  routing_fixture f1 = make_fixture(256, 1.0 / 8, 1.0 / 8, 1, 21);
  routing_fixture f4 = make_fixture(256, 1.0 / 8, 1.0 / 8, 4, 21);
  u64 r1, r4;
  {
    hybrid_net net(f1.g, cfg(), 2);
    run_token_routing(net, f1.spec, f1.batch);
    r1 = net.round();
  }
  {
    hybrid_net net(f4.g, cfg(), 2);
    run_token_routing(net, f4.spec, f4.batch);
    r4 = net.round();
  }
  EXPECT_LT(r4, 3 * r1) << "4x tokens must cost far less than 4x rounds";
}

// ---- charged stand-in (DESIGN.md deviation 9) -------------------------------

TEST(ChargedTokenRouting, DeliversIdenticalContentToSimulatedPath) {
  // The stand-in changes accounting, never results: per receiver, the same
  // token multiset arrives (the simulated path's order is unspecified, so
  // compare sorted).
  for (u64 seed : {11u, 12u}) {
    routing_fixture f = make_fixture(192, 1.0, 1.0 / 12, 1, seed);
    std::vector<std::vector<routed_token>> simulated, charged;
    {
      hybrid_net net(f.g, cfg(), seed);
      simulated = run_token_routing(net, f.spec, f.batch);
    }
    model_config c = cfg();
    c.charged_token_routing = true;
    hybrid_net net(f.g, c, seed);
    charged = run_token_routing(net, f.spec, f.batch);
    EXPECT_GT(net.round(), 0u);
    EXPECT_GT(net.raw_metrics().global_messages, 0u);
    ASSERT_EQ(charged.size(), simulated.size());
    auto key = [](const routed_token& a, const routed_token& b) {
      return std::tie(a.sender, a.receiver, a.index, a.payload) <
             std::tie(b.sender, b.receiver, b.index, b.payload);
    };
    for (u32 ri = 0; ri < charged.size(); ++ri) {
      auto want = simulated[ri];
      std::sort(want.begin(), want.end(), key);
      ASSERT_EQ(charged[ri].size(), want.size()) << "receiver " << ri;
      for (u32 k = 0; k < want.size(); ++k) {
        EXPECT_EQ(charged[ri][k].sender, want[k].sender);
        EXPECT_EQ(charged[ri][k].payload, want[k].payload);
      }
    }
  }
}

TEST(ChargedTokenRouting, ValidatesLikeSimulatedPath) {
  const graph g = gen::path(16);
  model_config c = cfg();
  c.charged_token_routing = true;
  routing_spec spec;
  spec.senders = {1};
  spec.receivers = {2};
  spec.k_s = 1;
  spec.k_r = 1;
  {
    std::vector<std::vector<routed_token>> batch(1);
    batch[0].push_back({3, 2, 0, 1});  // sender mismatch
    hybrid_net net(g, c, 1);
    EXPECT_THROW(run_token_routing(net, spec, batch), std::invalid_argument);
  }
  {
    std::vector<std::vector<routed_token>> batch(1);
    batch[0].push_back({1, 7, 0, 1});  // 7 is not a receiver
    hybrid_net net(g, c, 1);
    EXPECT_THROW(run_token_routing(net, spec, batch), std::invalid_argument);
  }
}

TEST(ChargedTokenRouting, ChargesDeterministically) {
  // Same inputs → identical charged rounds/messages (the closed form is a
  // pure function of (n, γ, µ, K)); a second identical run must agree.
  routing_fixture f = make_fixture(160, 1.0, 1.0 / 10, 1, 7);
  model_config c = cfg();
  c.charged_token_routing = true;
  u64 rounds[2], msgs[2];
  for (int i = 0; i < 2; ++i) {
    hybrid_net net(f.g, c, 7);
    run_token_routing(net, f.spec, f.batch);
    rounds[i] = net.round();
    msgs[i] = net.raw_metrics().global_messages;
  }
  EXPECT_EQ(rounds[0], rounds[1]);
  EXPECT_EQ(msgs[0], msgs[1]);
}

}  // namespace
}  // namespace hybrid
