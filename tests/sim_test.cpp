// Tests for the HYBRID and CLIQUE simulators: round lifecycle, cap
// enforcement, receive-load recording, cut accounting, determinism.
#include <gtest/gtest.h>

#include "graph/generators.hpp"
#include "proto/flood.hpp"
#include "sim/clique_net.hpp"
#include "sim/hybrid_net.hpp"

namespace hybrid {
namespace {

model_config default_cfg() { return model_config{}; }

TEST(HybridNet, GlobalCapScalesWithLogN) {
  const graph g = gen::path(1024);
  hybrid_net net(g, default_cfg(), 1);
  EXPECT_EQ(net.global_cap(), 4u * 10);  // γ = 4·log2(1024)
}

TEST(HybridNet, MessageDeliveryNextRound) {
  const graph g = gen::path(4);
  hybrid_net net(g, default_cfg(), 1);
  EXPECT_TRUE(net.try_send_global(global_msg::make(0, 3, 7, {42})));
  EXPECT_TRUE(net.global_inbox(3).empty());  // not yet delivered
  net.advance_round();
  ASSERT_EQ(net.global_inbox(3).size(), 1u);
  EXPECT_EQ(net.global_inbox(3)[0].w[0], 42u);
  EXPECT_EQ(net.global_inbox(3)[0].src, 0u);
  net.advance_round();
  EXPECT_TRUE(net.global_inbox(3).empty());  // inbox cleared next round
}

TEST(HybridNet, SendCapEnforced) {
  const graph g = gen::path(8);
  hybrid_net net(g, default_cfg(), 1);
  const u32 cap = net.global_cap();
  for (u32 i = 0; i < cap; ++i)
    EXPECT_TRUE(net.try_send_global(global_msg::make(0, 1, 0, {i})));
  EXPECT_FALSE(net.try_send_global(global_msg::make(0, 1, 0, {99})));
  EXPECT_EQ(net.global_budget(0), 0u);
  net.advance_round();
  EXPECT_EQ(net.global_budget(0), cap);  // budget resets per round
}

TEST(HybridNet, PayloadCapEnforced) {
  const graph g = gen::path(4);
  model_config cfg;
  cfg.max_payload_words = 2;
  hybrid_net net(g, cfg, 1);
  global_msg m = global_msg::make(0, 1, 0, {1, 2, 3});
  EXPECT_THROW(net.try_send_global(m), std::logic_error);
}

TEST(HybridNet, ReceiveLoadRecorded) {
  const graph g = gen::path(16);
  hybrid_net net(g, default_cfg(), 1);
  for (u32 v = 1; v <= 5; ++v)
    net.try_send_global(global_msg::make(v, 0, 0, {v}));
  net.advance_round();
  EXPECT_EQ(net.raw_metrics().max_global_recv_per_round, 5u);
}

TEST(HybridNet, CutAccountingCountsCrossingBitsOnly) {
  const graph g = gen::path(8);
  hybrid_net net(g, default_cfg(), 1);
  std::vector<u8> side(8, 0);
  for (u32 v = 4; v < 8; ++v) side[v] = 1;
  net.set_cut(side);
  net.try_send_global(global_msg::make(0, 1, 0, {1}));     // same side
  net.try_send_global(global_msg::make(0, 7, 0, {1, 2}));  // crosses
  net.advance_round();
  // crossing message: 2 payload words + 2·log2(8)-bit header
  EXPECT_EQ(net.raw_metrics().cut_bits, 2u * 64 + 2u * 3);
}

TEST(HybridNet, PhasesPartitionRounds) {
  const graph g = gen::path(4);
  hybrid_net net(g, default_cfg(), 1);
  net.begin_phase("a");
  net.advance_round();
  net.advance_round();
  net.begin_phase("b");
  net.advance_round();
  const run_metrics m = net.snapshot();
  ASSERT_EQ(m.phases.size(), 2u);
  EXPECT_EQ(m.phases[0].name, "a");
  EXPECT_EQ(m.phases[0].rounds, 2u);
  EXPECT_EQ(m.phases[1].rounds, 1u);
  EXPECT_EQ(m.rounds, 3u);
}

TEST(HybridNet, NodeRngDeterministicPerSeed) {
  const graph g = gen::path(4);
  hybrid_net a(g, default_cfg(), 5), b(g, default_cfg(), 5), c(g, default_cfg(), 6);
  EXPECT_EQ(a.node_rng(2).next(), b.node_rng(2).next());
  EXPECT_NE(a.node_rng(3).next(), c.node_rng(3).next());
}

TEST(HybridNet, LocalChargeAccumulates) {
  const graph g = gen::path(4);
  hybrid_net net(g, default_cfg(), 1);
  net.charge_local(10);
  net.charge_local(5);
  EXPECT_EQ(net.raw_metrics().local_items, 15u);
}

TEST(HybridNet, RejectsTinyGraphs) {
  const graph g = graph::from_edges(1, std::vector<edge_spec>{});
  EXPECT_THROW(hybrid_net(g, default_cfg(), 1), std::invalid_argument);
}

TEST(MetricsAbsorb, MergesCountersAndPhases) {
  run_metrics a, b;
  a.rounds = 5;
  a.max_global_recv_per_round = 3;
  a.phases.push_back({"x", 5, 0});
  b.rounds = 7;
  b.max_global_recv_per_round = 9;
  b.cut_bits = 11;
  a.absorb(b);
  EXPECT_EQ(a.rounds, 12u);
  EXPECT_EQ(a.max_global_recv_per_round, 9u);
  EXPECT_EQ(a.cut_bits, 11u);
}

TEST(MetricsAbsorb, SumsLocalLedgerCounters) {
  run_metrics a, b;
  a.local_items = 10;
  a.local_delivered = 8;
  a.local_dropped = 2;
  b.local_items = 5;
  b.local_delivered = 5;
  a.absorb(b);
  EXPECT_EQ(a.local_items, 15u);
  EXPECT_EQ(a.local_delivered, 13u);
  EXPECT_EQ(a.local_dropped, 2u);
  EXPECT_EQ(a.local_items, a.local_delivered + a.local_dropped);
}

TEST(CliqueNet, FullExchangeWithinCaps) {
  clique_net net(8);
  for (u32 i = 0; i < 8; ++i)
    for (u32 j = 0; j < 8; ++j) {
      clique_msg m;
      m.src = i;
      m.dst = j;
      m.w[0] = i * 100 + j;
      m.nw = 1;
      net.send(m);
    }
  net.advance_round();
  for (u32 j = 0; j < 8; ++j) EXPECT_EQ(net.inbox(j).size(), 8u);
  EXPECT_EQ(net.max_recv_per_round(), 8u);
  EXPECT_EQ(net.total_messages(), 64u);
}

TEST(CliqueNet, SendCapIsN) {
  clique_net net(4);
  clique_msg m;
  m.src = 0;
  m.dst = 1;
  for (u32 i = 0; i < 4; ++i) net.send(m);
  EXPECT_THROW(net.send(m), std::logic_error);
}

// Metrics regression (docs/FAULTS.md): sent == delivered + dropped on both
// simulators, with fault injection off (dropped pinned at 0) and on.
TEST(HybridNet, SentEqualsDeliveredPlusDroppedFaultsOff) {
  const graph g = gen::path(16);
  hybrid_net net(g, default_cfg(), 3);
  for (u32 r = 0; r < 5; ++r) {
    for (u32 v = 0; v < 16; ++v)
      net.try_send_global(global_msg::make(v, (v + r + 1) % 16, r, {v}));
    net.advance_round();
  }
  const run_metrics& m = net.raw_metrics();
  EXPECT_EQ(m.global_dropped, 0u);
  EXPECT_EQ(m.global_sent, m.global_messages);
  EXPECT_EQ(m.global_sent, u64{5} * 16);
}

TEST(HybridNet, SentEqualsDeliveredPlusDroppedFaultsOn) {
  const graph g = gen::path(16);
  sim_options opts;
  opts.threads = 2;
  opts.faults.drop_global = 0.4;
  opts.faults.fault_seed = 7;
  hybrid_net net(g, default_cfg(), 3, opts);
  for (u32 r = 0; r < 8; ++r) {
    for (u32 v = 0; v < 16; ++v)
      net.try_send_global(global_msg::make(v, (v + r + 1) % 16, r, {v}));
    net.advance_round();
  }
  const run_metrics& m = net.raw_metrics();
  EXPECT_EQ(m.global_sent, u64{8} * 16);
  EXPECT_EQ(m.global_sent, m.global_messages + m.global_dropped);
  EXPECT_GT(m.global_dropped, 0u);
  u64 delivered = 0;
  for (u32 v = 0; v < 16; ++v) delivered += net.global_inbox(v).size();
  // Last round's inboxes agree with the per-round slice of the invariant.
  EXPECT_LE(delivered, u64{16});
}

TEST(CliqueNet, SentEqualsDeliveredPlusDropped) {
  auto exchange = [](clique_net& net) {
    for (u32 r = 0; r < 4; ++r) {
      for (u32 i = 0; i < 8; ++i)
        for (u32 j = 0; j < 8; ++j) {
          clique_msg m;
          m.src = i;
          m.dst = j;
          m.w[0] = r;
          m.nw = 1;
          net.send(m);
        }
      net.advance_round();
    }
  };
  clique_net off(8);
  exchange(off);
  EXPECT_EQ(off.total_dropped(), 0u);
  EXPECT_EQ(off.total_sent(), off.total_messages());
  EXPECT_EQ(off.total_sent(), u64{4} * 64);

  sim_options opts;
  opts.faults.drop_global = 0.3;
  opts.faults.fault_seed = 5;
  clique_net on(8, opts);
  exchange(on);
  EXPECT_EQ(on.total_sent(), u64{4} * 64);
  EXPECT_EQ(on.total_sent(), on.total_messages() + on.total_dropped());
  EXPECT_GT(on.total_dropped(), 0u);
}

// Local-plane ledger (docs/FAULTS.md §2): local_items == local_delivered +
// local_dropped. Faults off exercises the reliable paths — including the
// early-exit branch of truncated_eccentricity, which stops flooding before
// its nominal budget and must not leave charged items unaccounted.
TEST(HybridNet, LocalLedgerBalancesFaultsOff) {
  const graph g = gen::path(8);  // diameter 7 << rounds: early exit fires
  hybrid_net net(g, default_cfg(), 3);
  const std::vector<u32> ecc = truncated_eccentricity(net, 32);
  EXPECT_EQ(ecc[0], 7u);
  EXPECT_EQ(ecc[4], 4u);
  const run_metrics& m = net.raw_metrics();
  EXPECT_GT(m.local_items, 0u);
  EXPECT_EQ(m.local_dropped, 0u);
  EXPECT_EQ(m.local_items, m.local_delivered + m.local_dropped);
}

TEST(HybridNet, LocalLedgerBalancesFaultsOn) {
  const graph g = gen::path(12);
  sim_options opts;
  opts.threads = 2;
  opts.faults.drop_local = 0.3;
  opts.faults.fault_seed = 9;
  hybrid_net net(g, default_cfg(), 3, opts);
  const auto heard = hop_discovery(net, {0, 11}, 11);
  for (u32 v = 0; v < 12; ++v) ASSERT_EQ(heard[v].size(), 2u) << v;
  const run_metrics& m = net.raw_metrics();
  EXPECT_GT(m.local_dropped, 0u);
  EXPECT_EQ(m.local_items, m.local_delivered + m.local_dropped);
}

}  // namespace
}  // namespace hybrid
