// Tests for skeleton graphs (Lemmas C.1/C.2, Algorithm 6), representatives
// (Algorithm 7), and the CLIQUE embedding (Corollary 4.1, Algorithm 8).
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <set>

#include "graph/generators.hpp"
#include "graph/shortest_paths.hpp"
#include "proto/clique_embed.hpp"
#include "proto/flood.hpp"
#include "proto/representatives.hpp"
#include "proto/skeleton.hpp"
#include "util/rng.hpp"

namespace hybrid {
namespace {

model_config cfg() { return model_config{}; }

class SkeletonProperty : public ::testing::TestWithParam<std::tuple<int, u64>> {
};

TEST_P(SkeletonProperty, LemmasC1C2) {
  const auto [kind, seed] = GetParam();
  graph g;
  switch (kind) {
    case 0: g = gen::erdos_renyi_connected(256, 5.0, 9, seed); break;
    case 1: g = gen::grid(16, 16, 4, seed); break;
    default: g = gen::path(256, 6, seed); break;
  }
  const u32 n = g.num_nodes();
  hybrid_net net(g, cfg(), seed);
  const double p = 1.0 / std::sqrt(static_cast<double>(n));
  const skeleton_result sk = compute_skeleton(net, p);
  ASSERT_FALSE(sk.nodes.empty());
  EXPECT_EQ(net.round(), sk.h);  // Algorithm 6 costs exactly h rounds

  // index_of consistency.
  for (u32 i = 0; i < sk.nodes.size(); ++i)
    EXPECT_EQ(sk.index_of[sk.nodes[i]], i);

  const auto ref = apsp_reference(g);

  // Lemma C.2 part 1: skeleton edges carry d_h = true distance for pairs
  // within h hops... at minimum, edge weights never underestimate.
  for (u32 i = 0; i < sk.nodes.size(); ++i)
    for (const auto& [j, w] : sk.edges[i]) {
      EXPECT_GE(w, ref[sk.nodes[i]][sk.nodes[j]]);
    }

  // Lemma C.2 part 2 (the load-bearing property): the skeleton graph
  // preserves exact distances between skeleton nodes w.h.p.
  const auto dist_s = skeleton_apsp(sk);
  for (u32 i = 0; i < sk.nodes.size(); ++i)
    for (u32 j = 0; j < sk.nodes.size(); ++j)
      EXPECT_EQ(dist_s[i][j], ref[sk.nodes[i]][sk.nodes[j]])
          << "skeleton pair " << i << "," << j << " kind " << kind;

  // Lemma C.1 corollary: every node has a skeleton node within h hops.
  for (u32 v = 0; v < n; ++v)
    EXPECT_FALSE(sk.near[v].empty()) << "node " << v;

  // near distances are exact h-limited distances.
  for (u32 v = 0; v < std::min(n, 40u); ++v) {
    for (const source_distance& sd : sk.near[v]) {
      const auto lim = limited_distance(g, sk.nodes[sd.source], sk.h);
      EXPECT_EQ(sd.dist, lim[v]);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Graphs, SkeletonProperty,
                         ::testing::Combine(::testing::Values(0, 1, 2),
                                            ::testing::Values(1u, 2u)));

TEST(Skeleton, ForcedNodesAlwaysIncluded) {
  const graph g = gen::grid(10, 10);
  hybrid_net net(g, cfg(), 3);
  const skeleton_result sk = compute_skeleton(net, 0.05, {7, 93});
  EXPECT_TRUE(sk.is_skeleton(7));
  EXPECT_TRUE(sk.is_skeleton(93));
}

TEST(Skeleton, SizeConcentratesAroundPn) {
  const graph g = gen::erdos_renyi_connected(1024, 5.0, 1, 5);
  hybrid_net net(g, cfg(), 11);
  const skeleton_result sk = compute_skeleton(net, 1.0 / 32);
  EXPECT_GE(sk.nodes.size(), 16u);   // E = 32; w.h.p. within [½, 2]·E
  EXPECT_LE(sk.nodes.size(), 64u);
}

TEST(Skeleton, SssPHelper) {
  const graph g = gen::grid(8, 8, 3, 2);
  hybrid_net net(g, cfg(), 2);
  const skeleton_result sk = compute_skeleton(net, 0.2);
  const auto all = skeleton_apsp(sk);
  for (u32 i = 0; i < sk.nodes.size(); ++i)
    EXPECT_EQ(skeleton_sssp(sk, i), all[i]);
}

TEST(Skeleton, ApspExecutorThreadCountsBitIdentical) {
  // The hoisted-CSR skeleton APSP runs its per-source Dijkstras on the
  // deterministic executor: rows must be bit-identical at every thread
  // count (and to the convenience sequential overload).
  const graph g = gen::erdos_renyi_connected(300, 5.0, 8, 43);
  hybrid_net net(g, cfg(), 43);
  const skeleton_result sk = compute_skeleton(net, 0.2);
  const auto ref = skeleton_apsp(sk);
  for (u32 threads : {1u, 2u, 8u}) {
    sim_options so;
    so.threads = threads;
    round_executor ex(so);
    EXPECT_EQ(skeleton_apsp(sk, ex), ref) << "threads " << threads;
  }
}

TEST(Skeleton, SparseExplorationPathMatchesDenseBellmanFord) {
  // compute_skeleton's fault-free path uses the ball-bounded sparse
  // exploration; the exploration equivalence contract says its triples AND
  // its round/traffic charging are bit-identical to the dense limited
  // Bellman–Ford it replaced. Verify both against a direct BF run.
  const graph g = gen::erdos_renyi_connected(220, 4.5, 8, 33);
  hybrid_net a(g, cfg(), 33);
  const skeleton_result sk = compute_skeleton(a, 0.12);
  hybrid_net b(g, cfg(), 33);
  const auto near = limited_bellman_ford(b, sk.nodes, sk.h,
                                         /*advance_rounds=*/true);
  EXPECT_EQ(a.round(), b.round());
  EXPECT_EQ(a.raw_metrics().local_items, b.raw_metrics().local_items);
  for (u32 v = 0; v < g.num_nodes(); ++v) {
    ASSERT_EQ(sk.near[v].size(), near[v].size()) << "node " << v;
    for (u32 k = 0; k < near[v].size(); ++k) {
      EXPECT_EQ(sk.near[v][k].source, near[v][k].source) << v << "/" << k;
      EXPECT_EQ(sk.near[v][k].dist, near[v][k].dist) << v << "/" << k;
      EXPECT_EQ(sk.near[v][k].via, near[v][k].via) << v << "/" << k;
    }
  }
}

// ---- explore_adjacency (the super-skeleton's ball builder) ------------------

/// h-limited all-pairs reference over an explicit adjacency: h rounds of
/// synchronous relaxation, the primitive's definition executed naively.
std::vector<std::vector<u64>> limited_apsp_brute(
    const std::vector<std::vector<std::pair<u32, u64>>>& adj, u32 h) {
  const u32 n = static_cast<u32>(adj.size());
  std::vector<std::vector<u64>> d(n, std::vector<u64>(n, kInfDist));
  for (u32 v = 0; v < n; ++v) d[v][v] = 0;
  for (u32 it = 0; it < h; ++it) {
    auto next = d;
    for (u32 v = 0; v < n; ++v)
      for (const auto& [to, w] : adj[v])
        for (u32 s = 0; s < n; ++s)
          if (d[v][s] < kInfDist)
            next[to][s] = std::min(next[to][s], d[v][s] + w);
    d = next;
  }
  return d;
}

TEST(ExploreAdjacency, MatchesBruteForceAtEveryThreadCount) {
  rng r(77);
  std::vector<std::vector<std::pair<u32, u64>>> adj(40);
  for (u32 e = 0; e < 80; ++e) {
    const u32 u = static_cast<u32>(r.next_below(40));
    const u32 v = static_cast<u32>(r.next_below(40));
    if (u == v) continue;
    const u64 w = 1 + r.next_below(9);
    adj[u].push_back({v, w});
    adj[v].push_back({u, w});
  }
  const auto brute = limited_apsp_brute(adj, 3);
  sparse_exploration_result ref;
  for (u32 threads : {1u, 2u, 8u}) {
    sim_options so;
    so.threads = threads;
    round_executor ex(so);
    const sparse_exploration_result res = explore_adjacency(adj, 3, ex);
    // Correct AND complete vs the brute force: exactly the finite pairs.
    u64 finite = 0;
    for (u32 v = 0; v < 40; ++v) {
      for (const exploration_entry& e : res.reached(v))
        EXPECT_EQ(e.dist, brute[v][e.source]) << v << "<-" << e.source;
      for (u32 s = 0; s < 40; ++s) finite += brute[v][s] < kInfDist;
    }
    EXPECT_EQ(res.entries.size(), finite);
    if (threads == 1) {
      ref = res;
    } else {
      EXPECT_EQ(res.offsets, ref.offsets) << "threads " << threads;
      EXPECT_EQ(res.entries, ref.entries) << "threads " << threads;
    }
  }
}

// ---- super-skeleton (the two-level hierarchy's level 2) ---------------------

TEST(SuperSkeleton, TablesMatchSkeletonGraphReferences) {
  const graph g = gen::erdos_renyi_connected(200, 5.0, 6, 13);
  hybrid_net net(g, cfg(), 13);
  const skeleton_result sk = compute_skeleton(net, 0.15);
  const u32 n_s = static_cast<u32>(sk.nodes.size());
  const u64 r0 = net.round();
  const super_skeleton_result ss = compute_super_skeleton(net, sk, 0.3, 2);
  EXPECT_GT(net.round(), r0);  // the membership announcement is charged
  const u32 n_s2 = static_cast<u32>(ss.members.size());
  ASSERT_GE(n_s2, 1u);
  ASSERT_LE(n_s2, n_s);

  // Membership bookkeeping: ascending members, consistent inverse index.
  for (u32 j = 0; j < n_s2; ++j) {
    if (j > 0) {
      EXPECT_LT(ss.members[j - 1], ss.members[j]);
    }
    EXPECT_EQ(ss.index_of[ss.members[j]], j);
  }

  // Super-pair rows are exact skeleton-graph distances between members.
  for (u32 i = 0; i < n_s2; ++i) {
    const std::vector<u64> dist = skeleton_sssp(sk, ss.members[i]);
    for (u32 j = 0; j < n_s2; ++j)
      EXPECT_EQ(ss.pairs[u64{i} * n_s2 + j], dist[ss.members[j]])
          << i << "," << j;
  }

  // ball1 holds exactly the h1-limited pairs over G_S…
  const auto brute = limited_apsp_brute(sk.edges, ss.h1);
  u64 finite = 0;
  for (u32 s1 = 0; s1 < n_s; ++s1) {
    for (u64 k = ss.ball_offsets[s1]; k < ss.ball_offsets[s1 + 1]; ++k) {
      const exploration_entry& e = ss.ball_entries[k];
      EXPECT_EQ(e.dist, brute[s1][e.source]) << s1 << "<-" << e.source;
    }
    for (u32 t1 = 0; t1 < n_s; ++t1) finite += brute[s1][t1] < kInfDist;
  }
  EXPECT_EQ(ss.ball_entries.size(), finite);

  // …and gw1 is that ball filtered to members, re-indexed to super indices.
  for (u32 s1 = 0; s1 < n_s; ++s1) {
    u64 at = ss.gw_offsets[s1];
    for (u64 k = ss.ball_offsets[s1]; k < ss.ball_offsets[s1 + 1]; ++k) {
      const exploration_entry& e = ss.ball_entries[k];
      if (ss.index_of[e.source] == super_skeleton_result::npos) continue;
      ASSERT_LT(at, ss.gw_offsets[s1 + 1]);
      EXPECT_EQ(ss.gateways[at].source, ss.index_of[e.source]);
      EXPECT_EQ(ss.gateways[at].dist, e.dist);
      ++at;
    }
    EXPECT_EQ(at, ss.gw_offsets[s1 + 1]) << "s1 " << s1;
  }
}

// ---- representatives --------------------------------------------------------

TEST(Representatives, SkeletonSourcesRepresentThemselves) {
  const graph g = gen::grid(12, 12);
  hybrid_net net(g, cfg(), 7);
  const skeleton_result sk = compute_skeleton(net, 0.1, {17});
  const auto reps = compute_representatives(net, sk, {17});
  EXPECT_EQ(reps.rep_of[0], sk.index_of[17]);
  EXPECT_EQ(reps.dist_to_rep[0], 0u);
}

TEST(Representatives, ClosestSkeletonChosen) {
  const graph g = gen::erdos_renyi_connected(200, 5.0, 6, 13);
  hybrid_net net(g, cfg(), 13);
  const skeleton_result sk = compute_skeleton(net, 0.08);
  std::vector<u32> sources;
  for (u32 v = 0; v < 20; ++v)
    if (!sk.is_skeleton(v)) sources.push_back(v);
  ASSERT_FALSE(sources.empty());
  const auto reps = compute_representatives(net, sk, sources);
  for (u32 j = 0; j < sources.size(); ++j) {
    // The representative minimizes d_h among nearby skeletons.
    u64 best = kInfDist;
    for (const source_distance& sd : sk.near[sources[j]])
      best = std::min(best, sd.dist);
    EXPECT_EQ(reps.dist_to_rep[j], best);
    EXPECT_LT(reps.rep_of[j], sk.nodes.size());
  }
}

TEST(Representatives, DisseminationChargesRounds) {
  const graph g = gen::grid(10, 10);
  hybrid_net net(g, cfg(), 3);
  const skeleton_result sk = compute_skeleton(net, 0.1);
  const u64 before = net.round();
  compute_representatives(net, sk, {1, 2, 3});
  EXPECT_GT(net.round(), before);  // token dissemination is not free
}

// ---- CLIQUE embedding (Corollary 4.1) --------------------------------------

TEST(CliqueEmbedding, ChargesRoundsPerCliqueRound) {
  const graph g = gen::erdos_renyi_connected(256, 5.0, 1, 17);
  hybrid_net net(g, cfg(), 17);
  const double p = std::pow(256.0, -1.0 / 3.0);  // x = 2/3
  const skeleton_result sk = compute_skeleton(net, p);
  clique_embedding emb = build_clique_embedding(net, sk);
  EXPECT_GT(emb.build_rounds, 0u);

  const u64 before = net.round();
  charge_clique_rounds(net, emb, 3);
  EXPECT_EQ(emb.clique_rounds_charged, 3u);
  EXPECT_EQ(emb.hybrid_rounds_charged, net.round() - before);
  EXPECT_GT(emb.hybrid_rounds_charged, 0u);
  // Per-round cost roughly even across rounds (context reuse).
  EXPECT_LE(emb.hybrid_rounds_charged, 3 * (emb.hybrid_rounds_charged / 3) + 3);
}

TEST(CliqueEmbedding, WholeGraphSkeletonDegenerate) {
  // p = 1: every node is a clique node, helper sets are trivial (µ = 1),
  // and a clique round is a direct n²-token routing instance.
  const graph g = gen::erdos_renyi_connected(64, 5.0, 1, 29);
  hybrid_net net(g, cfg(), 29);
  const skeleton_result sk = compute_skeleton(net, 1.0);
  ASSERT_EQ(sk.nodes.size(), 64u);
  clique_embedding emb = build_clique_embedding(net, sk);
  EXPECT_TRUE(emb.ctx.sender_helpers.trivial());
  charge_clique_rounds(net, emb, 1);
  EXPECT_EQ(emb.clique_rounds_charged, 1u);
}

TEST(CliqueEmbedding, ReceiveLoadBounded) {
  const graph g = gen::erdos_renyi_connected(256, 5.0, 1, 23);
  hybrid_net net(g, cfg(), 23);
  const skeleton_result sk = compute_skeleton(net, std::pow(256.0, -1.0 / 3.0));
  clique_embedding emb = build_clique_embedding(net, sk);
  charge_clique_rounds(net, emb, 2);
  EXPECT_LE(net.raw_metrics().max_global_recv_per_round,
            4 * net.global_cap());
}

}  // namespace
}  // namespace hybrid
