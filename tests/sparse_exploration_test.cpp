// Differential suite for the sparse (neighborhood-bounded) exploration path
// against the dense reference (proto/sparse_exploration.hpp): identical
// (source, dist, first_hop) triples and identical round/message metrics on
// randomized and adversarial graphs, at threads ∈ {1, 2, 8}; plus the
// foregrounded edge cases (h = 0, single-node components, isolated
// vertices, early-exit round accounting, first-hop tie-breaks) and the
// sparse_dist_map unit semantics. Runs in the TSAN CI job at 8 threads.
#include <gtest/gtest.h>

#include <vector>

#include "core/apsp.hpp"
#include "core/apsp_baseline.hpp"
#include "core/kssp_framework.hpp"
#include "graph/generators.hpp"
#include "graph/shortest_paths.hpp"
#include "proto/sparse_exploration.hpp"

namespace hybrid {
namespace {

model_config cfg() { return model_config{}; }

sim_options opts(u32 threads, exploration_path path) {
  sim_options o;
  o.threads = threads;
  o.exploration = path;
  return o;
}

struct run_out {
  sparse_exploration_result res;
  run_metrics m;
};

run_out run_path(const graph& g, u32 h, bool advance_rounds, u32 threads,
                 exploration_path path,
                 const std::vector<u32>* sources = nullptr) {
  hybrid_net net(g, cfg(), 1, opts(threads, path));
  run_out o;
  o.res = run_local_exploration(net, h, advance_rounds, sources);
  o.m = net.snapshot();
  return o;
}

void expect_metrics_eq(const run_metrics& a, const run_metrics& b) {
  EXPECT_EQ(a.rounds, b.rounds);
  EXPECT_EQ(a.local_items, b.local_items);
  EXPECT_EQ(a.global_messages, b.global_messages);
  EXPECT_EQ(a.global_payload_words, b.global_payload_words);
  EXPECT_EQ(a.max_global_recv_per_round, b.max_global_recv_per_round);
}

/// Both paths, every tested thread count, one dense@1 reference.
void differential(const graph& g, u32 h,
                  const std::vector<u32>* sources = nullptr) {
  const run_out ref = run_path(g, h, true, 1, exploration_path::kDense,
                               sources);
  for (u32 threads : {1u, 2u, 8u})
    for (exploration_path path :
         {exploration_path::kDense, exploration_path::kSparse}) {
      const run_out got = run_path(g, h, true, threads, path, sources);
      ASSERT_EQ(got.res, ref.res)
          << "threads=" << threads << " sparse=" << (path != exploration_path::kDense);
      expect_metrics_eq(got.m, ref.m);
    }
}

/// Two components (path, triangle) plus two isolated vertices.
graph disconnected_graph() {
  std::vector<edge_spec> edges{{0, 1, 2}, {1, 2, 1}, {2, 3, 3},
                               {4, 5, 1}, {5, 6, 2}, {4, 6, 2}};
  return graph::from_edges(9, edges);
}

// ---- randomized differential runs --------------------------------------------

TEST(SparseExplorationDiff, ErdosRenyiRandomized) {
  for (u64 seed : {11u, 12u, 13u, 14u}) {
    rng r(seed);
    const u32 n = 40 + static_cast<u32>(r.next_below(110));
    const double deg = 3.0 + r.next_double() * 3.0;
    const u64 max_w = r.next_bool(0.5) ? 1 : 7;
    const graph g = gen::erdos_renyi_connected(n, deg, max_w, seed);
    differential(g, static_cast<u32>(1 + r.next_below(6)));
  }
}

TEST(SparseExplorationDiff, Grid) {
  differential(gen::grid(8, 8, 5, 21), 5);
}

TEST(SparseExplorationDiff, Star) {
  // balanced_tree with arity n-1 is a star centered at node 0: every leaf
  // reaches every other leaf in exactly 2 hops through the hub.
  differential(gen::balanced_tree(48, 47, 3, 9), 2);
}

TEST(SparseExplorationDiff, DisconnectedWithIsolatedVertices) {
  const graph g = disconnected_graph();
  differential(g, 4);
  // Isolated vertices (7, 8) reach exactly themselves; components do not
  // leak into each other.
  const run_out got = run_path(g, 4, true, 1, exploration_path::kSparse);
  for (u32 v : {7u, 8u}) {
    ASSERT_EQ(got.res.reached(v).size(), 1u);
    EXPECT_EQ(got.res.reached(v)[0],
              (exploration_entry{0, v, v}));
  }
  for (const exploration_entry& e : got.res.reached(0))
    EXPECT_LT(e.source, 4u);  // path component only
}

TEST(SparseExplorationDiff, SourceSubset) {
  // The limited_bellman_ford-shaped workload kssp_framework runs.
  const graph g = gen::erdos_renyi_connected(90, 4.0, 6, 5);
  const std::vector<u32> sources{3, 17, 42, 88};
  differential(g, 4, &sources);
  // Distances agree with the centralized d_h reference.
  const run_out got =
      run_path(g, 4, true, 1, exploration_path::kSparse, &sources);
  for (u32 s : sources) {
    const std::vector<u64> ref = limited_distance(g, s, 4);
    for (u32 v = 0; v < 90; ++v) {
      u64 mine = kInfDist;
      for (const exploration_entry& e : got.res.reached(v))
        if (e.source == s) mine = e.dist;
      ASSERT_EQ(mine, ref[v]) << "source " << s << " node " << v;
    }
  }
}

TEST(SparseExplorationDiff, MatchesCentralizedReferenceAllSources) {
  const graph g = gen::erdos_renyi_connected(60, 4.5, 5, 31);
  const run_out got = run_path(g, 4, true, 1, exploration_path::kSparse);
  for (u32 s = 0; s < 60; ++s) {
    const std::vector<u64> ref = limited_distance(g, s, 4);
    for (u32 v = 0; v < 60; ++v) {
      u64 mine = kInfDist;
      for (const exploration_entry& e : got.res.reached(v))
        if (e.source == s) mine = e.dist;
      ASSERT_EQ(mine, ref[v]) << "source " << s << " node " << v;
    }
  }
}

// ---- edge cases ----------------------------------------------------------------

TEST(SparseExplorationEdge, HZeroReachesSelfOnly) {
  const graph g = gen::erdos_renyi_connected(30, 4.0, 3, 2);
  differential(g, 0);
  const run_out got = run_path(g, 0, true, 1, exploration_path::kSparse);
  EXPECT_EQ(got.m.rounds, 0u);
  EXPECT_EQ(got.m.local_items, 0u);
  ASSERT_EQ(got.res.total_reached(), 30u);
  for (u32 v = 0; v < 30; ++v) {
    ASSERT_EQ(got.res.reached(v).size(), 1u);
    EXPECT_EQ(got.res.reached(v)[0], (exploration_entry{0, v, v}));
  }
}

TEST(SparseExplorationEdge, SingleNodeComponents) {
  // hybrid_net requires n >= 2, so the minimal instance is two singleton
  // components: each node's whole h-ball is itself for every h.
  const graph g = graph::from_edges(2, std::vector<edge_spec>{});
  differential(g, 3);
  const run_out got = run_path(g, 3, true, 1, exploration_path::kSparse);
  EXPECT_EQ(got.res.total_reached(), 2u);
  // Budgeted rounds elapse silently even though the frontier died at once.
  EXPECT_EQ(got.m.rounds, 3u);
}

TEST(SparseExplorationEdge, EarlyExitRoundAccounting) {
  // Path of 6: the frontier saturates after 5 rounds, but the fixed budget
  // h = 20 still elapses in full when rounds advance...
  const graph g = gen::path(6, 4, 7);
  for (exploration_path path :
       {exploration_path::kDense, exploration_path::kSparse}) {
    hybrid_net net(g, cfg(), 1, opts(1, path));
    run_local_exploration(net, 20, /*advance_rounds=*/true);
    EXPECT_EQ(net.round(), 20u);
  }
  // ...and is not charged at all in run-in-parallel mode, where only
  // traffic is charged.
  run_metrics parallel_m[2];
  int i = 0;
  for (exploration_path path :
       {exploration_path::kDense, exploration_path::kSparse}) {
    hybrid_net net(g, cfg(), 1, opts(1, path));
    run_local_exploration(net, 20, /*advance_rounds=*/false);
    parallel_m[i++] = net.snapshot();
    EXPECT_EQ(net.round(), 0u);
    EXPECT_GT(net.raw_metrics().local_items, 0u);
  }
  expect_metrics_eq(parallel_m[0], parallel_m[1]);
}

TEST(SparseExplorationEdge, FirstHopTieBreakDeterminism) {
  // Diamond 0-1-3, 0-2-3: node 3 sees two equal-cost routes to source 0.
  // The contract: the first strictly-improving neighbor in sorted adjacency
  // order wins and equal later offers never overwrite — so 3's first hop
  // toward 0 is neighbor 1, on both paths, at every thread count.
  const graph unweighted = graph::from_edges(
      4, std::vector<edge_spec>{{0, 1, 1}, {0, 2, 1}, {1, 3, 1}, {2, 3, 1}});
  // Weighted twist: both routes cost 3 but arrive via different neighbors.
  const graph weighted = graph::from_edges(
      4, std::vector<edge_spec>{{0, 1, 2}, {0, 2, 1}, {1, 3, 1}, {2, 3, 2}});
  for (const graph& g : {unweighted, weighted}) {
    differential(g, 3);
    for (u32 threads : {1u, 2u, 8u})
      for (exploration_path path :
           {exploration_path::kDense, exploration_path::kSparse}) {
        const run_out got = run_path(g, 3, true, threads, path);
        u32 hop = ~u32{0};
        for (const exploration_entry& e : got.res.reached(3))
          if (e.source == 0) hop = e.first_hop;
        EXPECT_EQ(hop, 1u);
      }
  }
}

TEST(SparseExplorationEdge, NoFirstHopsModeStaysBitIdentical) {
  // The cores only consume (source, dist); first_hops = false spares the
  // dense path its n² first-hop matrix and must blank the field on both
  // paths so cross-path bit-identity still holds.
  const graph g = gen::erdos_renyi_connected(70, 4.0, 5, 3);
  sparse_exploration_result res[2];
  int i = 0;
  for (exploration_path path :
       {exploration_path::kDense, exploration_path::kSparse}) {
    hybrid_net net(g, cfg(), 1, opts(1, path));
    res[i++] = run_local_exploration(net, 4, true, nullptr,
                                     /*first_hops=*/false);
  }
  ASSERT_EQ(res[0], res[1]);
  for (const exploration_entry& e : res[0].entries)
    ASSERT_EQ(e.first_hop, ~u32{0});
  // Same triples as the first_hops mode, minus the hop field.
  const run_out with = run_path(g, 4, true, 1, exploration_path::kSparse);
  ASSERT_EQ(res[0].offsets, with.res.offsets);
  for (u64 k = 0; k < res[0].entries.size(); ++k) {
    ASSERT_EQ(res[0].entries[k].source, with.res.entries[k].source);
    ASSERT_EQ(res[0].entries[k].dist, with.res.entries[k].dist);
  }
}

TEST(SparseExplorationEdge, RejectsDuplicateSources) {
  const graph g = gen::path(8);
  const std::vector<u32> dup{2, 2};
  for (exploration_path path :
       {exploration_path::kDense, exploration_path::kSparse}) {
    hybrid_net net(g, cfg(), 1, opts(1, path));
    EXPECT_THROW(run_local_exploration(net, 2, true, &dup),
                 std::invalid_argument);
  }
}

// ---- sparse_dist_map unit semantics -------------------------------------------

TEST(SparseDistMap, RelaxInsertImproveReject) {
  sparse_dist_map m;
  EXPECT_EQ(m.dist_of(7), kInfDist);
  EXPECT_TRUE(m.relax(7, 10, 1));
  EXPECT_EQ(m.dist_of(7), 10u);
  EXPECT_FALSE(m.relax(7, 10, 2));  // equal never overwrites (tie-break)
  EXPECT_TRUE(m.relax(7, 4, 3));
  EXPECT_EQ(m.dist_of(7), 4u);
  ASSERT_EQ(m.size(), 1u);
  EXPECT_EQ(m.entries()[0], (exploration_entry{4, 7, 3}));
}

TEST(SparseDistMap, GrowthKeepsAllEntries) {
  sparse_dist_map m;
  for (u32 s = 0; s < 5000; ++s) EXPECT_TRUE(m.relax(s * 977 + 1, s + 1, s));
  ASSERT_EQ(m.size(), 5000u);
  for (u32 s = 0; s < 5000; ++s) EXPECT_EQ(m.dist_of(s * 977 + 1), s + 1);
  EXPECT_EQ(m.dist_of(0), kInfDist);
}

TEST(SparseDistMap, ClearReuses) {
  sparse_dist_map m;
  for (u32 s = 0; s < 100; ++s) m.relax(s, s, s);
  m.clear();
  EXPECT_TRUE(m.empty());
  EXPECT_EQ(m.dist_of(3), kInfDist);
  EXPECT_TRUE(m.relax(3, 9, 1));
  EXPECT_EQ(m.dist_of(3), 9u);
  EXPECT_EQ(m.size(), 1u);
}

// ---- the rewired cores agree across paths --------------------------------------

TEST(SparseExplorationCores, ApspExactIdenticalAcrossPaths) {
  const graph g = gen::erdos_renyi_connected(80, 4.0, 6, 17);
  const apsp_result dense = hybrid_apsp_exact(
      g, cfg(), 3, /*build_routes=*/true, opts(1, exploration_path::kDense));
  for (u32 threads : {1u, 8u}) {
    const apsp_result sparse = hybrid_apsp_exact(
        g, cfg(), 3, true, opts(threads, exploration_path::kSparse));
    ASSERT_EQ(sparse.dist, dense.dist);
    ASSERT_EQ(sparse.next_hop, dense.next_hop);
    expect_metrics_eq(sparse.metrics, dense.metrics);
  }
}

TEST(SparseExplorationCores, ApspBaselineIdenticalAcrossPaths) {
  const graph g = gen::grid(8, 8, 4, 13);
  const apsp_baseline_result dense =
      baseline_apsp_ahkss(g, cfg(), 5, opts(1, exploration_path::kDense));
  const apsp_baseline_result sparse =
      baseline_apsp_ahkss(g, cfg(), 5, opts(8, exploration_path::kSparse));
  ASSERT_EQ(sparse.dist, dense.dist);
  expect_metrics_eq(sparse.metrics, dense.metrics);
}

TEST(SparseExplorationCores, KsspIdenticalAcrossPaths) {
  const graph g = gen::erdos_renyi_connected(96, 4.0, 5, 7);
  const auto alg = make_clique_kssp_1eps(0.25, injection::none);
  const std::vector<u32> sources{4, 31, 77};
  const kssp_result dense = hybrid_kssp(g, cfg(), 7, sources, alg, false,
                                        opts(1, exploration_path::kDense));
  for (u32 threads : {1u, 8u}) {
    const kssp_result sparse = hybrid_kssp(g, cfg(), 7, sources, alg, false,
                                           opts(threads, exploration_path::kSparse));
    ASSERT_EQ(sparse.dist, dense.dist);
    expect_metrics_eq(sparse.metrics, dense.metrics);
  }
}

}  // namespace
}  // namespace hybrid
