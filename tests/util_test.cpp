// Unit tests for src/util: RNG determinism and uniformity, bit helpers,
// statistics fits, table formatting.
#include <gtest/gtest.h>

#include <cmath>
#include <set>
#include <sstream>

#include "util/bits.hpp"
#include "util/rng.hpp"
#include "util/stats.hpp"
#include "util/table.hpp"

namespace hybrid {
namespace {

TEST(Bits, CeilLog2) {
  EXPECT_EQ(ceil_log2(0), 0u);
  EXPECT_EQ(ceil_log2(1), 0u);
  EXPECT_EQ(ceil_log2(2), 1u);
  EXPECT_EQ(ceil_log2(3), 2u);
  EXPECT_EQ(ceil_log2(4), 2u);
  EXPECT_EQ(ceil_log2(5), 3u);
  EXPECT_EQ(ceil_log2(1024), 10u);
  EXPECT_EQ(ceil_log2(1025), 11u);
}

TEST(Bits, IdBitsNeverZero) {
  EXPECT_EQ(id_bits(1), 1u);
  EXPECT_EQ(id_bits(2), 1u);
  EXPECT_EQ(id_bits(3), 2u);
  EXPECT_EQ(id_bits(1u << 20), 20u);
}

TEST(Bits, CeilDiv) {
  EXPECT_EQ(ceil_div(0, 3), 0u);
  EXPECT_EQ(ceil_div(1, 3), 1u);
  EXPECT_EQ(ceil_div(3, 3), 1u);
  EXPECT_EQ(ceil_div(4, 3), 2u);
}

TEST(Bits, Isqrt) {
  EXPECT_EQ(isqrt(0), 0u);
  EXPECT_EQ(isqrt(1), 1u);
  EXPECT_EQ(isqrt(15), 3u);
  EXPECT_EQ(isqrt(16), 4u);
  EXPECT_EQ(isqrt(1'000'000), 1000u);
  EXPECT_EQ(isqrt(999'999), 999u);
}

TEST(Rng, DeterministicForSameSeed) {
  rng a(42), b(42);
  for (int i = 0; i < 1000; ++i) EXPECT_EQ(a.next(), b.next());
}

TEST(Rng, DifferentSeedsDiffer) {
  rng a(1), b(2);
  int same = 0;
  for (int i = 0; i < 100; ++i) same += (a.next() == b.next());
  EXPECT_LE(same, 1);
}

TEST(Rng, NextBelowInRangeAndRoughlyUniform) {
  rng r(7);
  constexpr u64 bound = 10;
  std::vector<int> buckets(bound, 0);
  constexpr int draws = 100'000;
  for (int i = 0; i < draws; ++i) {
    const u64 x = r.next_below(bound);
    ASSERT_LT(x, bound);
    ++buckets[x];
  }
  for (int c : buckets) {
    EXPECT_GT(c, draws / 10 * 0.9);
    EXPECT_LT(c, draws / 10 * 1.1);
  }
}

TEST(Rng, NextBoolRespectsProbability) {
  rng r(11);
  int hits = 0;
  constexpr int draws = 100'000;
  for (int i = 0; i < draws; ++i) hits += r.next_bool(0.3);
  EXPECT_NEAR(hits / static_cast<double>(draws), 0.3, 0.01);
  EXPECT_FALSE(r.next_bool(0.0));
  EXPECT_TRUE(r.next_bool(1.0));
}

TEST(Rng, SampleWithoutReplacement) {
  rng r(5);
  const auto sample = r.sample_without_replacement(100, 30);
  EXPECT_EQ(sample.size(), 30u);
  std::set<u32> uniq(sample.begin(), sample.end());
  EXPECT_EQ(uniq.size(), 30u);
  for (u32 x : sample) EXPECT_LT(x, 100u);
}

TEST(Rng, SampleAll) {
  rng r(5);
  const auto sample = r.sample_without_replacement(10, 10);
  std::set<u32> uniq(sample.begin(), sample.end());
  EXPECT_EQ(uniq.size(), 10u);
}

TEST(Rng, DeriveSeedSpreadsStreams) {
  std::set<u64> seen;
  for (u64 s = 0; s < 1000; ++s) seen.insert(derive_seed(123, s));
  EXPECT_EQ(seen.size(), 1000u);
}

TEST(Stats, FitLineRecoversSlope) {
  std::vector<double> x, y;
  for (int i = 1; i <= 20; ++i) {
    x.push_back(i);
    y.push_back(3.0 * i + 1.0);
  }
  const linear_fit f = fit_line(x, y);
  EXPECT_NEAR(f.slope, 3.0, 1e-9);
  EXPECT_NEAR(f.intercept, 1.0, 1e-9);
  EXPECT_NEAR(f.r2, 1.0, 1e-12);
}

TEST(Stats, LogLogExponentRecoversPowerLaw) {
  std::vector<double> n, rounds;
  for (double v : {128.0, 256.0, 512.0, 1024.0, 2048.0}) {
    n.push_back(v);
    rounds.push_back(7.5 * std::pow(v, 0.5));
  }
  const linear_fit f = loglog_exponent(n, rounds);
  EXPECT_NEAR(f.slope, 0.5, 1e-9);
}

TEST(Stats, DeflatedExponentRemovesLogFactor) {
  std::vector<double> n, rounds;
  for (double v : {256.0, 512.0, 1024.0, 2048.0, 4096.0}) {
    n.push_back(v);
    rounds.push_back(2.0 * std::pow(v, 0.5) * std::log2(v));
  }
  const linear_fit raw = loglog_exponent(n, rounds);
  const linear_fit defl = loglog_exponent_deflated(n, rounds, 1.0);
  EXPECT_GT(raw.slope, 0.5);       // the log factor inflates the raw fit
  EXPECT_NEAR(defl.slope, 0.5, 1e-9);
}

TEST(Stats, MeanAndMax) {
  EXPECT_DOUBLE_EQ(mean({1.0, 2.0, 3.0}), 2.0);
  EXPECT_DOUBLE_EQ(max_value({1.0, 5.0, 3.0}), 5.0);
}

TEST(Stats, RejectsDegenerateInput) {
  EXPECT_THROW(fit_line({1.0}, {1.0}), std::invalid_argument);
  EXPECT_THROW(fit_line({1.0, 1.0}, {1.0, 2.0}), std::invalid_argument);
  EXPECT_THROW(mean({}), std::invalid_argument);
}

TEST(Table, FormatsAlignedRows) {
  table t({"n", "rounds"});
  t.add_row({"128", "42"});
  t.add_row({"4096", "1234"});
  std::ostringstream os;
  t.print(os);
  const std::string s = os.str();
  EXPECT_NE(s.find("| 4096 |"), std::string::npos);
  EXPECT_NE(s.find("|------|"), std::string::npos);
}

TEST(Table, RejectsMismatchedRow) {
  table t({"a", "b"});
  EXPECT_THROW(t.add_row({"1"}), std::invalid_argument);
}

TEST(Table, NumberFormatting) {
  EXPECT_EQ(table::num(3.14159, 2), "3.14");
  EXPECT_EQ(table::integer(42), "42");
}

}  // namespace
}  // namespace hybrid
